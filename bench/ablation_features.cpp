// Ablation study (beyond the paper's figures): contribution of each
// ScalFrag ingredient to end-to-end MTTKRP time — adaptive launching,
// shared-memory tiling, pipelined segmentation, and the CPU hybrid.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace scalfrag;
  using namespace scalfrag::bench;

  const auto spec = gpusim::DeviceSpec::rtx3090();
  const LaunchSelector sel = make_selector(spec);
  gpusim::SimDevice dev(spec);
  PipelineExecutor exec(dev, &sel);
  PipelineExecutor static_exec(dev, nullptr);

  std::printf("\nAblation — end-to-end MTTKRP time in us (rank %u)\n\n",
              kRank);
  obs::BenchRunner runner("ablation_features");
  ConsoleTable t({"Tensor", "full", "-adaptive", "-sharedmem", "-pipeline",
                  "+hybrid", "ParTI"});

  for (const char* name : {"vast", "nell-2", "nell-1", "flickr-3d", "deli-4d"}) {
    const CooTensor x = make_frostt_tensor(name);
    const auto f = random_factors(x, kRank, 13);

    const ExecConfig full;  // adaptive + shared mem + auto pipeline
    ExecConfig no_shared = full;
    no_shared.use_shared_mem = false;
    ExecConfig no_pipe = full;
    no_pipe.num_segments = 1;
    no_pipe.num_streams = 1;
    ExecConfig hybrid = full;
    // Budget the CPU share at half the tensor's wire time so the host
    // never becomes the pipeline's critical path.
    hybrid.hybrid_cpu_threshold = auto_hybrid_threshold(
        x, 0, kRank, hybrid.cpu_spec, gpusim::transfer_ns(spec, x.bytes()) / 2);

    const auto r_full = exec.run(x, f, 0, full);
    const auto r_static = static_exec.run(x, f, 0, full);
    const auto r_noshm = exec.run(x, f, 0, no_shared);
    const auto r_nopipe = exec.run(x, f, 0, no_pipe);
    const auto r_hybrid = exec.run(x, f, 0, hybrid);
    const auto r_parti = parti::run_mttkrp(dev, x, f, 0);

    t.add_row({name, us(r_full.total_ns), us(r_static.total_ns),
               us(r_noshm.total_ns), us(r_nopipe.total_ns),
               us(r_hybrid.total_ns), us(r_parti.total_ns)});
    runner.with_case(name)
        .set("full_us", us_val(r_full.total_ns), "us",
             obs::Direction::kLowerIsBetter)
        .set("no_adaptive_us", us_val(r_static.total_ns), "us",
             obs::Direction::kLowerIsBetter)
        .set("no_sharedmem_us", us_val(r_noshm.total_ns), "us",
             obs::Direction::kLowerIsBetter)
        .set("no_pipeline_us", us_val(r_nopipe.total_ns), "us",
             obs::Direction::kLowerIsBetter)
        .set("hybrid_us", us_val(r_hybrid.total_ns), "us",
             obs::Direction::kLowerIsBetter)
        .set("parti_us", us_val(r_parti.total_ns), "us",
             obs::Direction::kLowerIsBetter)
        .set("hybrid_threshold",
             static_cast<double>(hybrid.hybrid_cpu_threshold), "nnz",
             obs::Direction::kInfo);
  }
  t.print();
  write_bench_json(runner);
  std::printf(
      "\n-adaptive : static ParTI launch heuristic for the ScalFrag "
      "kernel\n-sharedmem: per-nnz atomics instead of staged tiles\n"
      "-pipeline : one segment, one stream (no overlap)\n"
      "+hybrid   : short slices routed to the simulated i7-11700K\n");
  return 0;
}
