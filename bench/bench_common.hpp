#pragma once
// Shared helpers for the paper-reproduction bench binaries. Every bench
// regenerates its workload from the Table III profiles at kDefaultScale
// and reports simulated RTX 3090 time, so runs are deterministic and
// machine-independent.

#include <cstdio>
#include <string>
#include <vector>

#include "common/format.hpp"
#include "obs/bench_runner.hpp"
#include "parti/parti_executor.hpp"
#include "scalfrag/scalfrag.hpp"

namespace scalfrag::bench {

inline FactorList random_factors(const CooTensor& t, index_t rank,
                                 std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

/// The rank every paper experiment uses here.
inline constexpr index_t kRank = 16;

/// Train the default adaptive-launch selector (the offline phase of
/// Fig. 7). Prints the one-line training report.
inline LaunchSelector make_selector(const gpusim::DeviceSpec& spec,
                                    bool verbose = true) {
  AutoTunerConfig cfg;
  cfg.rank = kRank;
  cfg.corpus_size = 48;
  cfg.seed = 2024;
  AutoTuner tuner(spec, cfg);
  const TrainingReport rep = tuner.train();
  if (verbose) {
    std::printf(
        "[autotune] model=%s train=%.0f ms (%zu rows)  "
        "test MAPE=%.1f%%  R2=%.3f\n",
        rep.model_name.c_str(), rep.train_seconds * 1e3, rep.train_rows,
        rep.mape_test, rep.r2_test);
  }
  return tuner.selector();
}

inline std::string us(sim_ns ns) { return fmt_double(ns / 1e3, 1); }

/// Microseconds as a double, for BenchRunner metrics.
inline double us_val(sim_ns ns) { return static_cast<double>(ns) / 1e3; }

/// Write the runner's BENCH_<name>.json and say where it landed.
inline void write_bench_json(const obs::BenchRunner& runner) {
  std::printf("\n[bench] wrote %s\n", runner.write().c_str());
}

}  // namespace scalfrag::bench
