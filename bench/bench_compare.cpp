// CLI regression gate over two BENCH_*.json files (schema v1).
//
//   bench_compare <baseline.json> <current.json> [--threshold 0.10]
//
// Exit status: 0 = no gated metric regressed past the threshold,
// 1 = at least one regression, 2 = usage / I/O / schema error. CI's
// perf-smoke job runs this against the committed baselines in
// bench/baselines/ after every push (see docs/observability.md).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <vector>

#include "obs/bench_compare.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <current.json> "
               "[--threshold FRAC]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scalfrag;

  obs::CompareOptions opt;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      char* end = nullptr;
      opt.threshold = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || opt.threshold < 0) {
        std::fprintf(stderr, "bench_compare: bad threshold '%s'\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) return usage(argv[0]);

  try {
    const obs::CompareReport rep =
        obs::compare_bench_files(files[0], files[1], opt);
    std::fputs(obs::format_report(rep).c_str(), stdout);
    if (rep.has_regression()) {
      std::printf("\nFAIL: %zu metric(s) regressed past %.1f%%\n",
                  rep.regressions(), 100.0 * rep.threshold);
      return 1;
    }
    std::printf("\nOK: no regression past %.1f%%\n", 100.0 * rep.threshold);
    return 0;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "bench_compare: %s\n", ex.what());
    return 2;
  }
}
