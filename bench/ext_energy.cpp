// Extension bench (not a paper figure): estimated energy of end-to-end
// MTTKRP, ScalFrag vs ParTI. Pipelining saves energy twice over —
// faster kernels cut busy joules and a shorter makespan cuts idle
// joules (§VI-C's accelerators report exactly this "energy benefit").

#include <cstdio>

#include "bench_common.hpp"
#include "gpusim/energy.hpp"

int main() {
  using namespace scalfrag;
  using namespace scalfrag::bench;

  const auto spec = gpusim::DeviceSpec::rtx3090();
  const LaunchSelector sel = make_selector(spec);
  gpusim::SimDevice dev(spec);
  PipelineExecutor exec(dev, &sel);
  const gpusim::PowerModel pm = gpusim::PowerModel::rtx3090();

  std::printf(
      "\nEstimated energy per end-to-end MTTKRP (mJ, rank %u; %0.f W "
      "kernel / %0.f W copy / %0.f W idle)\n\n",
      kRank, pm.kernel_w, pm.copy_w, pm.idle_w);
  obs::BenchRunner runner("ext_energy");
  ConsoleTable t({"Tensor", "ParTI (mJ)", "ScalFrag (mJ)", "Savings",
                  "idle mJ saved"});

  for (const auto& p : frostt_profiles()) {
    const CooTensor x = make_frostt_tensor(p.name);
    const auto f = random_factors(x, kRank, 31);

    parti::run_mttkrp(dev, x, f, 0);
    const auto e_base = gpusim::estimate_energy(dev, pm);
    exec.run(x, f, 0);
    const auto e_ours = gpusim::estimate_energy(dev, pm);

    const double base_mj = e_base.total_j() * 1e3;
    const double ours_mj = e_ours.total_j() * 1e3;
    t.add_row({p.name, fmt_double(base_mj, 3), fmt_double(ours_mj, 3),
               fmt_double(100.0 * (1.0 - ours_mj / base_mj), 1) + "%",
               fmt_double((e_base.idle_j - e_ours.idle_j) * 1e3, 3)});
    runner.with_case(p.name)
        .set("parti_mj", base_mj, "mJ", obs::Direction::kLowerIsBetter)
        .set("scalfrag_mj", ours_mj, "mJ", obs::Direction::kLowerIsBetter)
        .set("savings_pct", 100.0 * (1.0 - ours_mj / base_mj), "%",
             obs::Direction::kHigherIsBetter);
  }
  t.print();
  write_bench_json(runner);
  std::printf(
      "\nNote the tradeoff: segmentation adds per-kernel launch energy, "
      "so a\ntensor whose kernels were already cheap relative to its "
      "transfers\n(enron) can spend slightly more total energy despite "
      "finishing sooner.\n");
  return 0;
}
