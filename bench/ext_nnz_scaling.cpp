// Extension bench (not a paper figure): how the end-to-end speedup and
// the pipeline's auto-chosen segmentation evolve as the workload grows
// from 1/4096 to 1/128 of the paper's nell-2 — the scale axis the
// paper's fixed-size figures cannot show.

#include <cstdio>

#include "bench_common.hpp"
#include "gpusim/sim_metrics.hpp"

int main() {
  using namespace scalfrag;
  using namespace scalfrag::bench;

  const auto spec = gpusim::DeviceSpec::rtx3090();
  const LaunchSelector sel = make_selector(spec);
  gpusim::SimDevice dev(spec);
  PipelineExecutor exec(dev, &sel);

  std::printf("\nnnz scaling — nell-2 profile, rank %u\n\n", kRank);
  obs::BenchRunner runner("ext_nnz_scaling");
  ConsoleTable t({"scale", "nnz", "ParTI (us)", "ScalFrag (us)", "Speedup",
                  "segments", "pipeline utilization"});

  for (int denom : {4096, 2048, 1024, 512, 256, 128}) {
    const CooTensor x =
        make_frostt_tensor("nell-2", 1.0 / denom, 51);
    const auto f = random_factors(x, kRank, 52);

    const auto base = parti::run_mttkrp(dev, x, f, 0);
    const auto ours = exec.run(x, f, 0);
    const std::string util = gpusim::utilization_summary(dev);

    t.add_row({"1/" + std::to_string(denom), human_count(x.nnz()),
               us(base.total_ns), us(ours.total_ns),
               fmt_double(static_cast<double>(base.total_ns) /
                              static_cast<double>(ours.total_ns),
                          2) +
                   "x",
               std::to_string(ours.plan.size()), util});
    runner.with_case("1/" + std::to_string(denom))
        .set("parti_us", us_val(base.total_ns), "us",
             obs::Direction::kLowerIsBetter)
        .set("scalfrag_us", us_val(ours.total_ns), "us",
             obs::Direction::kLowerIsBetter)
        .set("speedup",
             static_cast<double>(base.total_ns) /
                 static_cast<double>(ours.total_ns),
             "x", obs::Direction::kHigherIsBetter)
        .set("nnz", static_cast<double>(x.nnz()), "count",
             obs::Direction::kInfo);
  }
  t.print();
  write_bench_json(runner);
  std::printf(
      "\nSpeedup grows with scale: larger transfers amortize fixed\n"
      "latencies and give the pipeline more to overlap — consistent "
      "with\nthe paper's full-size FROSTT results sitting above ours "
      "(1.3x-2.0x).\n");
  return 0;
}
