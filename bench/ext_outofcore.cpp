// Extension bench (not a paper figure): out-of-core MTTKRP through the
// "coo_stream" backend on a tensor ~10x the configured memory budget.
// Two hard gates, enforced by exit code as well as by the baseline
// compare: the streamed output is BIT-identical to the in-core "coo"
// backend, and the peak registered residency never exceeds the budget.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "scalfrag/streaming.hpp"

int main() {
  using namespace scalfrag;
  using namespace scalfrag::bench;
  namespace fs = std::filesystem;

  // 256 KiB budget against a ~2.4 MiB tensor: every run must stream.
  const std::size_t budget = std::size_t{1} << 18;
  GeneratorConfig g{.dims = {192, 160, 128},
                    .nnz = 160000,
                    .skew = {1.4, 1.0, 1.2},
                    .seed = 71};
  const CooTensor t = generate_coo(g);
  if (t.bytes() < 8 * budget) {
    std::fprintf(stderr, "workload too small: %zu B vs budget %zu B\n",
                 t.bytes(), budget);
    return 1;
  }
  const FactorList f = random_factors(t, kRank, 72);

  std::printf(
      "\nout-of-core streaming — %s nnz (%.1fx the %zu KiB budget), "
      "rank %u\n\n",
      human_count(t.nnz()).c_str(),
      static_cast<double>(t.bytes()) / static_cast<double>(budget),
      budget >> 10, kRank);

  obs::BenchRunner runner("ext_outofcore");
  ConsoleTable table({"case", "windows", "chunks", "spill (KiB)",
                      "peak/budget", "stream (us)", "in-core (us)",
                      "identical"});
  bool all_identical = true;
  bool all_under_budget = true;

  // Serial host strategy on both sides: fixed accumulation order is
  // what makes the chunked run memcmp-comparable to the in-core one.
  const ExecConfig base = ExecConfig{}
                              .segments(2)
                              .streams(2)
                              .strategy(HostStrategy::Serial)
                              .grain(1)
                              .memory_budget(budget);

  const auto run_case =
      [&](const std::string& name, order_t mode, const std::string* path) {
        obs::MetricsRegistry met;
        ExecConfig cfg = base;
        cfg.metrics(&met);

        gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
        StreamingPlan plan(dev);
        const auto wall0 = std::chrono::steady_clock::now();
        const StreamingResult res =
            path != nullptr ? plan.run_file(*path, f, mode, cfg)
                            : plan.run(t, f, mode, cfg);
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - wall0)
                .count();

        gpusim::SimDevice dev2(gpusim::DeviceSpec::rtx3090());
        CooTensor sorted = t;
        sorted.sort_by_mode(mode);
        CooSpan view = sorted;
        view.assume_sorted_by(mode);
        const PipelineResult want = run_pipeline(dev2, view, f, mode, base);

        const bool identical =
            res.output.rows() == want.output.rows() &&
            res.output.cols() == want.output.cols() &&
            std::memcmp(res.output.data(), want.output.data(),
                        res.output.size() * sizeof(value_t)) == 0;
        const double peak =
            met.gauge(std::string(kLoaderResidentGauge) + "_peak");
        const double peak_ratio = peak / static_cast<double>(budget);
        all_identical = all_identical && identical;
        all_under_budget = all_under_budget && peak_ratio <= 1.0;

        table.add_row(
            {name, std::to_string(res.windows), std::to_string(res.chunks),
             fmt_double(static_cast<double>(res.spill_bytes) / 1024.0, 1),
             fmt_double(peak_ratio, 3), us(res.total_ns),
             us(want.total_ns), identical ? "yes" : "NO"});
        runner.with_case(name)
            .set("bit_identical", identical ? 1.0 : 0.0, "bool",
                 obs::Direction::kHigherIsBetter)
            .set("peak_budget_ratio", peak_ratio, "x",
                 obs::Direction::kLowerIsBetter)
            .set("spill_kib",
                 static_cast<double>(res.spill_bytes) / 1024.0, "KiB",
                 obs::Direction::kLowerIsBetter)
            .set("stream_us", us_val(res.total_ns), "us",
                 obs::Direction::kLowerIsBetter)
            .set("incore_us", us_val(want.total_ns), "us",
                 obs::Direction::kLowerIsBetter)
            .set("windows", static_cast<double>(res.windows), "count",
                 obs::Direction::kInfo)
            .set("chunks", static_cast<double>(res.chunks), "count",
                 obs::Direction::kInfo)
            .set("merge_passes", static_cast<double>(res.merge_passes),
                 "count", obs::Direction::kInfo)
            .set("wall_ms", wall_ms, "ms", obs::Direction::kInfo);
      };

  for (order_t mode = 0; mode < t.order(); ++mode) {
    run_case("mode" + std::to_string(mode), mode, nullptr);
  }

  // Same gates through the file path: chunked .tns ingestion feeding
  // the external sort, never holding the whole file in memory.
  const std::string path =
      (fs::temp_directory_path() / "scalfrag_ext_outofcore.tns").string();
  write_tns_file(path, t);
  run_case("file/mode0", 0, &path);
  fs::remove(path);

  table.print();
  write_bench_json(runner);

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: streamed output differs from in-core\n");
    return 1;
  }
  if (!all_under_budget) {
    std::fprintf(stderr, "FAIL: peak residency exceeded the budget\n");
    return 1;
  }
  std::printf(
      "\nAll streamed outputs are bit-identical to the in-core backend\n"
      "and peak residency stayed under the budget.\n");
  return 0;
}
