// Extension bench (not a paper figure): how the ScalFrag-vs-ParTI
// picture shifts with the CPD rank F. Larger ranks increase factor-row
// traffic (ParTI's weakness) and the shared-memory footprint (which
// squeezes ScalFrag's occupancy) — two opposing forces this sweep
// makes visible.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace scalfrag;
  using namespace scalfrag::bench;

  const auto spec = gpusim::DeviceSpec::rtx3090();
  gpusim::SimDevice dev(spec);

  std::printf("Rank sweep — kernel time (us) and speedup vs ParTI\n\n");
  obs::BenchRunner runner("ext_rank_sweep");
  ConsoleTable t({"Tensor", "F", "ParTI (us)", "ScalFrag (us)", "Speedup",
                  "shmem/block @256"});

  for (const char* name : {"nell-2", "deli-3d"}) {
    const CooTensor x = make_frostt_tensor(name);
    const auto feat = TensorFeatures::extract(x, 0);
    const gpusim::CostModel cost(spec);

    for (index_t rank : {4u, 8u, 16u, 32u, 64u}) {
      // Oracle launch for each side (isolates format/kernel effects
      // from model error).
      const auto parti_prof = parti::mttkrp_profile(feat, rank);
      const auto sf_prof = mttkrp_profile(feat, rank);
      auto best_ns = [&](const gpusim::KernelProfile& prof,
                         bool shmem) -> sim_ns {
        sim_ns best = static_cast<sim_ns>(-1);
        for (gpusim::LaunchConfig cfg : gpusim::launch_candidates(spec)) {
          if (shmem) cfg.shmem_per_block = kernel_shmem_bytes(cfg.block, rank);
          const auto kt = cost.kernel_time(cfg, prof);
          if (kt.feasible) best = std::min(best, kt.total);
        }
        return best;
      };
      const sim_ns parti_ns = best_ns(parti_prof, false);
      const sim_ns sf_ns = best_ns(sf_prof, true);
      t.add_row({name, std::to_string(rank), us(parti_ns), us(sf_ns),
                 fmt_double(static_cast<double>(parti_ns) /
                                static_cast<double>(sf_ns),
                            2) +
                     "x",
                 human_bytes(kernel_shmem_bytes(256, rank))});
      runner.with_case(std::string(name) + "/F" + std::to_string(rank))
          .set("parti_us", us_val(parti_ns), "us",
               obs::Direction::kLowerIsBetter)
          .set("scalfrag_us", us_val(sf_ns), "us",
               obs::Direction::kLowerIsBetter)
          .set("speedup",
               static_cast<double>(parti_ns) / static_cast<double>(sf_ns),
               "x", obs::Direction::kHigherIsBetter);
    }
  }
  t.print();
  write_bench_json(runner);
  std::printf(
      "\nSpeedup grows with rank while the shared-memory tile fits; the\n"
      "per-block footprint scales linearly with F and eventually costs\n"
      "occupancy (visible in the largest-F rows).\n");
  return 0;
}
