// Extension bench (not a paper figure): the multi-tenant decomposition
// service. Two hard gates, enforced by exit code as well as by the
// baseline compare:
//
//   plan_cache   a warm job must replay bit-identically to the cold
//                run that built the plan, with zero preparation charged
//                (generation, feature extraction, selection, and plan
//                construction all skipped), and
//   throughput   the same weighted job mix on a 4-device group must
//                finish in simulated time at least 1.5x better than
//                serialized 1-device execution.
//
// All gated numbers live in the deterministic sim domain — the single
// scheduler thread fixes dispatch order, so makespan / jobs-per-sec /
// p99 are exact replays run to run.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "service/service.hpp"

namespace {

using namespace scalfrag;
using namespace scalfrag::bench;
using namespace scalfrag::service;

JobSpec job(const std::string& tenant, int weight, JobKind kind,
            const std::string& tensor, ExecConfig cfg) {
  JobSpec s;
  s.tenant = tenant;
  s.weight = weight;
  s.kind = kind;
  s.tensor = tensor;
  s.scale = 1.0 / 512;
  s.exec = std::move(cfg);
  return s;
}

/// The weighted two-tenant mix both throughput runs execute: device
///-heavy MTTKRP and CPD jobs over three tensor recipes, with repeats
/// so the plan cache carries weight inside each run too.
std::vector<JobSpec> service_mix() {
  std::vector<JobSpec> jobs;
  const char* tensors[] = {"nips", "uber", "vast"};
  for (int rep = 0; rep < 2; ++rep) {
    for (const char* t : tensors) {
      jobs.push_back(job("prod", 3, JobKind::Mttkrp, t,
                         ExecConfig{}.backend("coo").rank(kRank)));
      jobs.push_back(
          job("prod", 3, JobKind::Cpd, t,
              ExecConfig{}.backend("coo").rank(kRank).max_iters(3)));
    }
    jobs.push_back(job("research", 1, JobKind::Mttkrp, "nips",
                       ExecConfig{}.backend("coo").rank(kRank)));
    jobs.push_back(
        job("research", 1, JobKind::Cpd, "uber",
            ExecConfig{}.backend("coo").rank(kRank).max_iters(3)));
  }
  return jobs;
}

}  // namespace

int main() {
  obs::BenchRunner runner("ext_service");
  bool all_ok = true;

  // --- plan_cache: warm replay is free and bit-identical --------------
  {
    DecompositionService svc({.num_devices = 1});
    const auto mtt = job("prod", 1, JobKind::Mttkrp, "nips",
                         ExecConfig{}.backend("coo").rank(kRank));
    const auto results = svc.run_batch({mtt, mtt, mtt});
    const JobResult& cold = results[0];
    const JobResult& warm = results[2];

    const bool completed = cold.state == JobState::Completed &&
                           warm.state == JobState::Completed;
    const bool identical =
        completed && cold.mttkrp_output.size() == warm.mttkrp_output.size() &&
        std::memcmp(cold.mttkrp_output.data(), warm.mttkrp_output.data(),
                    cold.mttkrp_output.size() * sizeof(value_t)) == 0;
    const bool warm_free = warm.tensor_cache_hit && warm.plan_cache_hit &&
                           warm.prepare_seconds == 0.0;
    all_ok = all_ok && identical && warm_free;

    const auto snap = svc.metrics().snapshot();
    std::printf(
        "plan_cache: cold prepare %.1f ms, warm prepare %.1f ms, "
        "bit-identical %s, plan hits %llu\n",
        cold.prepare_seconds * 1e3, warm.prepare_seconds * 1e3,
        identical ? "yes" : "NO",
        static_cast<unsigned long long>(
            snap.counter("service/cache_hits")));
    runner.with_case("plan_cache")
        .set("bit_identical", identical ? 1.0 : 0.0, "bool",
             obs::Direction::kHigherIsBetter)
        .set("warm_prepare_free", warm_free ? 1.0 : 0.0, "bool",
             obs::Direction::kHigherIsBetter)
        .set("plan_cache_hits",
             static_cast<double>(snap.counter("service/cache_hits")),
             "count", obs::Direction::kHigherIsBetter)
        .set("cold_prepare_ms", cold.prepare_seconds * 1e3, "ms",
             obs::Direction::kInfo)
        .set("warm_sim_us", us_val(warm.sim_cost_ns), "us",
             obs::Direction::kLowerIsBetter);
  }

  // --- throughput: 4 shared devices vs serialized execution -----------
  {
    const auto mix = service_mix();
    ServiceStats stats[2];
    const int device_counts[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
      DecompositionService svc({.num_devices = device_counts[i]});
      const auto results = svc.run_batch(mix);
      for (const JobResult& r : results) {
        all_ok = all_ok && r.state == JobState::Completed;
      }
      stats[i] = svc.stats();
    }
    const double speedup = static_cast<double>(stats[0].makespan_ns) /
                           static_cast<double>(stats[1].makespan_ns);
    all_ok = all_ok && speedup >= 1.5;

    std::printf(
        "throughput: %zu jobs — 1 dev %.1f us (%.0f jobs/s), "
        "4 dev %.1f us (%.0f jobs/s), speedup %.2fx, p99 %.1f us\n",
        mix.size(), us_val(stats[0].makespan_ns), stats[0].jobs_per_sec_sim,
        us_val(stats[1].makespan_ns), stats[1].jobs_per_sec_sim, speedup,
        us_val(stats[1].p99_latency_ns));
    runner.with_case("throughput")
        .set("speedup_4dev", speedup, "x", obs::Direction::kHigherIsBetter)
        .set("jobs_per_sec_sim_4dev", stats[1].jobs_per_sec_sim, "jobs/s",
             obs::Direction::kHigherIsBetter)
        .set("p99_latency_us_4dev", us_val(stats[1].p99_latency_ns), "us",
             obs::Direction::kLowerIsBetter)
        .set("p50_latency_us_4dev", us_val(stats[1].p50_latency_ns), "us",
             obs::Direction::kLowerIsBetter)
        .set("makespan_us_1dev", us_val(stats[0].makespan_ns), "us",
             obs::Direction::kInfo)
        .set("makespan_us_4dev", us_val(stats[1].makespan_ns), "us",
             obs::Direction::kLowerIsBetter)
        .set("jobs", static_cast<double>(mix.size()), "count",
             obs::Direction::kInfo);
  }

  write_bench_json(runner);
  if (!all_ok) {
    std::fprintf(stderr,
                 "FAIL: cache replay not bit-identical / not free, or "
                 "4-device speedup under 1.5x\n");
    return 1;
  }
  std::printf(
      "\nWarm jobs replay bit-identically with zero preparation and the\n"
      "4-device group clears the 1.5x serialized-throughput gate.\n");
  return 0;
}
