// Figure 10 reproduction: end-to-end MTTKRP (transfers + kernel) of the
// full ScalFrag pipeline (adaptive launch, auto segmentation, stream
// overlap) vs ParTI's synchronous flow. Expected shape: ScalFrag wins
// on every tensor (paper: 1.3x–2.0x); transfer-light tensors overlap a
// larger fraction; transfer-bound tensors (flickr-3d) still gain.

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "tensor/mode_views.hpp"

int main() {
  using namespace scalfrag;
  using namespace scalfrag::bench;

  const auto spec = gpusim::DeviceSpec::rtx3090();
  const LaunchSelector sel = make_selector(spec);
  gpusim::SimDevice dev(spec);
  PipelineExecutor exec(dev, &sel);
  obs::BenchRunner runner("fig10_end2end");

  std::printf(
      "\nFigure 10 — End-to-end MTTKRP performance, ScalFrag vs ParTI "
      "(rank %u)\n\n",
      kRank);
  ConsoleTable t({"Tensor", "ParTI (us)", "ScalFrag (us)", "Speedup",
                  "Segments", "Overlap saved (us)"});

  double min_spd = 1e9, max_spd = 0.0;
  for (const auto& p : frostt_profiles()) {
    const CooTensor x = make_frostt_tensor(p.name);
    const auto f = random_factors(x, kRank, 9);

    const auto base = parti::run_mttkrp(dev, x, f, 0);
    const auto ours = exec.run(x, f, 0);

    // Prepare phase: one fully sorted copy per mode (what planning used
    // to keep) vs the single-sort permutation views. Wall times are
    // machine-dependent (info); the byte counts are deterministic and
    // gate the >= 2x memory reduction on the 3-mode corpus.
    WallTimer legacy_timer;
    for (order_t m = 0; m < x.order(); ++m) {
      CooTensor s = x;
      s.sort_by_mode(m);
    }
    const double legacy_ms = legacy_timer.millis();
    obs::MetricsRegistry mem;
    WallTimer views_timer;
    double views_ms = 0.0;
    {
      const ModeViews views(x, &mem);
      views_ms = views_timer.millis();
    }
    const double peak_bytes =
        mem.gauge(std::string(ModeViews::kResidentGauge) + "_peak");
    const double legacy_bytes =
        static_cast<double>(ModeViews::legacy_copies_bytes(x));
    const double mem_reduction =
        peak_bytes > 0.0 ? legacy_bytes / peak_bytes : 0.0;
    const double prep_speedup = views_ms > 0.0 ? legacy_ms / views_ms : 0.0;

    const double speedup = static_cast<double>(base.total_ns) /
                           static_cast<double>(ours.total_ns);
    min_spd = std::min(min_spd, speedup);
    max_spd = std::max(max_spd, speedup);
    t.add_row({p.name, us(base.total_ns), us(ours.total_ns),
               fmt_double(speedup, 2) + "x",
               std::to_string(ours.plan.size()),
               us(ours.breakdown.overlap_saved())});
    runner.with_case(p.name)
        .set("parti_us", us_val(base.total_ns), "us",
             obs::Direction::kLowerIsBetter)
        .set("scalfrag_us", us_val(ours.total_ns), "us",
             obs::Direction::kLowerIsBetter)
        .set("speedup", speedup, "x", obs::Direction::kHigherIsBetter)
        .set("overlap_saved_us", us_val(ours.breakdown.overlap_saved()), "us",
             obs::Direction::kHigherIsBetter)
        .set("segments", static_cast<double>(ours.plan.size()), "count",
             obs::Direction::kInfo)
        .set("prepare_legacy_ms", legacy_ms, "ms", obs::Direction::kInfo)
        .set("prepare_views_ms", views_ms, "ms", obs::Direction::kInfo)
        .set("prepare_speedup", prep_speedup, "x", obs::Direction::kInfo)
        .set("peak_resident_bytes", peak_bytes, "bytes",
             obs::Direction::kLowerIsBetter)
        .set("legacy_copies_bytes", legacy_bytes, "bytes",
             obs::Direction::kInfo)
        .set("mem_reduction", mem_reduction, "x",
             obs::Direction::kHigherIsBetter);
    std::printf(
        "[prepare] %-12s legacy %.2f ms -> views %.2f ms (%.2fx), "
        "resident %.1f MB -> %.1f MB (%.2fx)\n",
        p.name.c_str(), legacy_ms, views_ms, prep_speedup,
        legacy_bytes / 1e6, peak_bytes / 1e6, mem_reduction);
  }
  t.print();
  std::printf("\nSpeedup range: %.2fx – %.2fx (paper reports 1.3x – 2.0x)\n",
              min_spd, max_spd);
  write_bench_json(runner);
  return 0;
}
