// Figure 10 reproduction: end-to-end MTTKRP (transfers + kernel) of the
// full ScalFrag pipeline (adaptive launch, auto segmentation, stream
// overlap) vs ParTI's synchronous flow. Expected shape: ScalFrag wins
// on every tensor (paper: 1.3x–2.0x); transfer-light tensors overlap a
// larger fraction; transfer-bound tensors (flickr-3d) still gain.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace scalfrag;
  using namespace scalfrag::bench;

  const auto spec = gpusim::DeviceSpec::rtx3090();
  const LaunchSelector sel = make_selector(spec);
  gpusim::SimDevice dev(spec);
  PipelineExecutor exec(dev, &sel);
  obs::BenchRunner runner("fig10_end2end");

  std::printf(
      "\nFigure 10 — End-to-end MTTKRP performance, ScalFrag vs ParTI "
      "(rank %u)\n\n",
      kRank);
  ConsoleTable t({"Tensor", "ParTI (us)", "ScalFrag (us)", "Speedup",
                  "Segments", "Overlap saved (us)"});

  double min_spd = 1e9, max_spd = 0.0;
  for (const auto& p : frostt_profiles()) {
    const CooTensor x = make_frostt_tensor(p.name);
    const auto f = random_factors(x, kRank, 9);

    const auto base = parti::run_mttkrp(dev, x, f, 0);
    const auto ours = exec.run(x, f, 0);

    const double speedup = static_cast<double>(base.total_ns) /
                           static_cast<double>(ours.total_ns);
    min_spd = std::min(min_spd, speedup);
    max_spd = std::max(max_spd, speedup);
    t.add_row({p.name, us(base.total_ns), us(ours.total_ns),
               fmt_double(speedup, 2) + "x",
               std::to_string(ours.plan.size()),
               us(ours.breakdown.overlap_saved())});
    runner.with_case(p.name)
        .set("parti_us", us_val(base.total_ns), "us",
             obs::Direction::kLowerIsBetter)
        .set("scalfrag_us", us_val(ours.total_ns), "us",
             obs::Direction::kLowerIsBetter)
        .set("speedup", speedup, "x", obs::Direction::kHigherIsBetter)
        .set("overlap_saved_us", us_val(ours.breakdown.overlap_saved()), "us",
             obs::Direction::kHigherIsBetter)
        .set("segments", static_cast<double>(ours.plan.size()), "count",
             obs::Direction::kInfo);
  }
  t.print();
  std::printf("\nSpeedup range: %.2fx – %.2fx (paper reports 1.3x – 2.0x)\n",
              min_spd, max_spd);
  write_bench_json(runner);
  return 0;
}
