// Figure 11 reproduction: MTTKRP performance sensitivity to the number
// of segments (streams fixed at 4) and the number of CUDA streams
// (segments fixed at 4). Expected shape: a shallow optimum around the
// paper's default of 4 — too few segments/streams forfeit overlap, too
// many pay per-copy latency and per-launch overhead with no extra
// parallelism.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace scalfrag;
  using namespace scalfrag::bench;

  const auto spec = gpusim::DeviceSpec::rtx3090();
  const LaunchSelector sel = make_selector(spec);
  gpusim::SimDevice dev(spec);
  PipelineExecutor exec(dev, &sel);
  obs::BenchRunner runner("fig11_segments_streams");

  const int values[] = {1, 2, 4, 8, 16};

  for (const char* name : {"nell-2", "deli-3d"}) {
    const CooTensor x = make_frostt_tensor(name);
    const auto f = random_factors(x, kRank, 11);

    std::printf(
        "\nFigure 11 — %s (nnz %s), end-to-end time in us (rank %u)\n\n",
        name, human_count(x.nnz()).c_str(), kRank);

    obs::BenchCase& c = runner.with_case(name);
    ConsoleTable seg_t({"#segments (streams=4)", "1", "2", "4", "8", "16"});
    std::vector<std::string> row{"time (us)"};
    for (int segs : values) {
      ExecConfig opt;
      opt.num_segments = segs;
      opt.num_streams = 4;
      const sim_ns ns = exec.run(x, f, 0, opt).total_ns;
      row.push_back(us(ns));
      c.set("segments_" + std::to_string(segs) + "_us", us_val(ns), "us",
            obs::Direction::kLowerIsBetter);
    }
    seg_t.add_row(std::move(row));
    seg_t.print();

    ConsoleTable str_t({"#streams (segments=4)", "1", "2", "4", "8", "16"});
    row = {"time (us)"};
    for (int streams : values) {
      ExecConfig opt;
      opt.num_segments = 4;
      opt.num_streams = streams;
      const sim_ns ns = exec.run(x, f, 0, opt).total_ns;
      row.push_back(us(ns));
      c.set("streams_" + std::to_string(streams) + "_us", us_val(ns), "us",
            obs::Direction::kLowerIsBetter);
    }
    str_t.add_row(std::move(row));
    str_t.print();
  }
  write_bench_json(runner);
  std::printf(
      "\nDifferences are modest (matching the paper: \"the difference "
      "among them\nis not obvious\") with a sweet spot near 4/4.\n");
  return 0;
}
