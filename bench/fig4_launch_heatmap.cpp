// Figure 4 reproduction: GFlops of the MTTKRP kernel under every
// (gridSize, blockSize) launch combination, one heatmap per tensor.
// The paper's observations to verify in the output:
//   * performance is poor at small grid/block, improves, then falls;
//   * the heat distribution — and the optimum — differs per tensor.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace scalfrag;
  using namespace scalfrag::bench;

  const auto spec = gpusim::DeviceSpec::rtx3090();
  const gpusim::CostModel cost(spec);
  obs::BenchRunner runner("fig4_launch_heatmap");

  std::printf(
      "Figure 4 — GFlops of MTTKRP kernel with different launch "
      "settings (rank %u)\nrows = blockSize, cols = gridSize; '-' = "
      "infeasible (shared memory)\n",
      kRank);

  for (const char* name : {"vast", "nell-2", "nips", "deli-3d"}) {
    const CooTensor t = make_frostt_tensor(name);
    const auto feat = TensorFeatures::extract(t, 0);
    const auto prof = mttkrp_profile(feat, kRank);

    std::printf("\n=== %s (nnz %s) ===\n", name,
                human_count(t.nnz()).c_str());
    std::vector<std::string> header{"blk\\grid"};
    for (std::uint32_t grid = 16; grid <= 65536; grid *= 4) {
      header.push_back(std::to_string(grid));
    }
    ConsoleTable table(header);

    double best = 0.0;
    gpusim::LaunchConfig best_cfg;
    for (std::uint32_t block = 32;
         block <= static_cast<std::uint32_t>(spec.max_threads_per_block);
         block *= 2) {
      std::vector<std::string> row{std::to_string(block)};
      for (std::uint32_t grid = 16; grid <= 65536; grid *= 4) {
        gpusim::LaunchConfig cfg{grid, block,
                                 kernel_shmem_bytes(block, kRank)};
        if (!gpusim::compute_occupancy(spec, cfg).feasible) {
          row.push_back("-");
          continue;
        }
        const double g = cost.gflops(cfg, prof);
        if (g > best) {
          best = g;
          best_cfg = cfg;
        }
        row.push_back(fmt_double(g, 1));
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("optimum: %s at %.1f GFlop/s\n", best_cfg.str().c_str(),
                best);
    runner.with_case(name)
        .set("best_gflops", best, "GF/s", obs::Direction::kHigherIsBetter)
        .set("best_grid", static_cast<double>(best_cfg.grid), "threads",
             obs::Direction::kInfo)
        .set("best_block", static_cast<double>(best_cfg.block), "threads",
             obs::Direction::kInfo);
  }
  write_bench_json(runner);
  return 0;
}
