// Figure 5 reproduction: time breakdown of the (un-pipelined, ParTI-
// style) end-to-end MTTKRP — H2D transfer vs kernel vs D2H. The paper's
// observation: "transferring data from the host to the device takes a
// lot of time ... H2D takes up the vast majority of the time".

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace scalfrag;
  using namespace scalfrag::bench;

  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  obs::BenchRunner runner("fig5_time_breakdown");

  std::printf(
      "Figure 5 — Time breakdown of MTTKRP processing "
      "(synchronous flow, rank %u)\n\n",
      kRank);
  ConsoleTable t({"Tensor", "H2D (us)", "Kernel (us)", "D2H (us)",
                  "H2D %", "Kernel %", "D2H %"});

  for (const auto& p : frostt_profiles()) {
    const CooTensor x = make_frostt_tensor(p.name);
    const auto f = random_factors(x, kRank, 5);
    const auto res = parti::run_mttkrp(dev, x, f, 0);
    const auto& b = res.breakdown;
    const double total = static_cast<double>(b.serial_sum());
    auto pct = [&](sim_ns v) {
      return fmt_double(100.0 * static_cast<double>(v) / total, 1) + "%";
    };
    t.add_row({p.name, us(b.h2d), us(b.kernel), us(b.d2h), pct(b.h2d),
               pct(b.kernel), pct(b.d2h)});
    runner.with_case(p.name)
        .set("h2d_us", us_val(b.h2d), "us", obs::Direction::kLowerIsBetter)
        .set("kernel_us", us_val(b.kernel), "us",
             obs::Direction::kLowerIsBetter)
        .set("d2h_us", us_val(b.d2h), "us", obs::Direction::kLowerIsBetter)
        .set("h2d_share", static_cast<double>(b.h2d) / total, "ratio",
             obs::Direction::kInfo);
  }
  t.print();
  std::printf(
      "\nH2D dominates end-to-end MTTKRP for the transfer-heavy tensors —\n"
      "the idle-device problem ScalFrag's pipeline (Fig. 10) attacks.\n");
  write_bench_json(runner);
  return 0;
}
