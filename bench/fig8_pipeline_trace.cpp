// Figure 8 reproduction: the segmented pipeline timeline itself.
// Fig. 8 is the paper's *method* diagram — H2D copies of segments
// streaming on multiple CUDA streams while earlier segments compute.
// This bench renders the actual simulated timeline of one pipelined
// MTTKRP as an ASCII Gantt chart and writes a Chrome-trace JSON
// (open in chrome://tracing or ui.perfetto.dev) for the real thing.

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench_common.hpp"
#include "gpusim/trace.hpp"
#include "obs/artifacts.hpp"

int main(int argc, char** argv) {
  using namespace scalfrag;
  using namespace scalfrag::bench;

  // --out <dir> overrides where the trace and BENCH json land
  // (otherwise $SCALFRAG_ARTIFACT_DIR or ./bench_artifacts).
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      obs::set_artifact_dir(argv[i + 1]);
    }
  }

  const auto spec = gpusim::DeviceSpec::rtx3090();
  const LaunchSelector sel = make_selector(spec);
  gpusim::SimDevice dev(spec);
  PipelineExecutor exec(dev, &sel);

  const CooTensor x = make_frostt_tensor("nell-2");
  const auto f = random_factors(x, kRank, 21);
  ExecConfig opt;
  opt.num_segments = 4;  // the paper's canonical diagram shows 4
  opt.num_streams = 4;
  const auto res = exec.run(x, f, 0, opt);

  std::printf(
      "\nFigure 8 — pipeline timeline for nell-2 (4 segments, 4 streams, "
      "rank %u)\ntotal %0.1f us, overlap saved %0.1f us\n\n",
      kRank, res.total_ns / 1e3, res.breakdown.overlap_saved() / 1e3);

  std::fputs(gpusim::ascii_gantt(dev).c_str(), stdout);
  std::printf("\n'=' H2D copy   '#' kernel   '<' D2H   '~' host\n");

  const std::string path = obs::artifact_path("fig8_pipeline_trace.json");
  gpusim::write_chrome_trace_file(path, dev);
  std::printf("Chrome trace written to %s\n", path.c_str());

  obs::BenchRunner runner("fig8_pipeline_trace");
  gpusim::record_timeline(dev, runner.metrics(), "gpu");
  runner.with_case("nell-2/s4x4")
      .set("total_us", us_val(res.total_ns), "us",
           obs::Direction::kLowerIsBetter)
      .set("overlap_saved_us", us_val(res.breakdown.overlap_saved()), "us",
           obs::Direction::kHigherIsBetter)
      .set("segments", static_cast<double>(res.plan.size()), "count",
           obs::Direction::kInfo);
  write_bench_json(runner);
  return 0;
}
