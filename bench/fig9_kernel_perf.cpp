// Figure 9 reproduction: kernel-only performance of ScalFrag (adaptive
// launch + shared-memory tiling) vs ParTI (static launch + per-nnz
// atomics) across all ten tensors. Expected shape: ScalFrag wins
// everywhere; the advantage is most pronounced for the smaller tensors
// (the paper reports ≈2.2x on nips, ≈1.2x on vast).

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace scalfrag;
  using namespace scalfrag::bench;

  const auto spec = gpusim::DeviceSpec::rtx3090();
  const LaunchSelector sel = make_selector(spec);
  gpusim::SimDevice dev(spec);
  PipelineExecutor exec(dev, &sel);
  obs::BenchRunner runner("fig9_kernel_perf");
  ExecConfig kernel_only;  // one segment isolates kernel behaviour
  kernel_only.num_segments = 1;
  kernel_only.num_streams = 1;
  kernel_only.metrics_sink = &runner.metrics();

  std::printf(
      "\nFigure 9 — MTTKRP kernel performance, ScalFrag vs ParTI "
      "(rank %u)\n\n",
      kRank);
  ConsoleTable t({"Tensor", "ParTI (us)", "ParTI GF/s", "ScalFrag (us)",
                  "ScalFrag GF/s", "Speedup", "Chosen launch"});

  for (const auto& p : frostt_profiles()) {
    const CooTensor x = make_frostt_tensor(p.name);
    const auto f = random_factors(x, kRank, 7);
    const std::uint64_t flops = mttkrp_flops(x, kRank);

    const auto base = parti::run_mttkrp(dev, x, f, 0);
    const auto ours = exec.run(x, f, 0, kernel_only);

    const double ours_gf =
        static_cast<double>(flops) / static_cast<double>(ours.breakdown.kernel);
    const double speedup = static_cast<double>(base.breakdown.kernel) /
                           static_cast<double>(ours.breakdown.kernel);
    t.add_row({p.name, us(base.breakdown.kernel),
               fmt_double(base.kernel_gflops, 1), us(ours.breakdown.kernel),
               fmt_double(ours_gf, 1), fmt_double(speedup, 2) + "x",
               ours.launches.at(0).str()});
    runner.with_case(p.name)
        .set("parti_kernel_us", us_val(base.breakdown.kernel), "us",
             obs::Direction::kLowerIsBetter)
        .set("scalfrag_kernel_us", us_val(ours.breakdown.kernel), "us",
             obs::Direction::kLowerIsBetter)
        .set("speedup", speedup, "x", obs::Direction::kHigherIsBetter)
        .set("scalfrag_gflops", ours_gf, "GF/s",
             obs::Direction::kHigherIsBetter);
  }
  t.print();
  write_bench_json(runner);
  return 0;
}
