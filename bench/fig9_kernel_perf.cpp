// Figure 9 reproduction: kernel-only performance of ScalFrag (adaptive
// launch + shared-memory tiling) vs ParTI (static launch + per-nnz
// atomics) across all ten tensors, plus the CSF tiled backend under the
// same chosen launch (cost-modeled from the tree's exact node counts,
// so the COO-vs-CSF comparison is deterministic and gateable). Expected
// shape: ScalFrag beats ParTI everywhere (the paper reports ≈2.2x on
// nips, ≈1.2x on vast); CSF tiled wins where fibers are long enough to
// amortize the tree walk.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace scalfrag;
  using namespace scalfrag::bench;

  const auto spec = gpusim::DeviceSpec::rtx3090();
  const LaunchSelector sel = make_selector(spec);
  gpusim::SimDevice dev(spec);
  PipelineExecutor exec(dev, &sel);
  obs::BenchRunner runner("fig9_kernel_perf");
  ExecConfig kernel_only;  // one segment isolates kernel behaviour
  kernel_only.num_segments = 1;
  kernel_only.num_streams = 1;
  kernel_only.metrics_sink = &runner.metrics();

  // The CSF series must stay machine-independent: pin the tiling to a
  // fixed worker count instead of the runtime thread pool.
  constexpr std::size_t kTileWorkers = 8;

  std::printf(
      "\nFigure 9 — MTTKRP kernel performance, ScalFrag vs ParTI "
      "(rank %u)\n\n",
      kRank);
  ConsoleTable t({"Tensor", "ParTI (us)", "ScalFrag (us)", "ScalFrag GF/s",
                  "Speedup", "CSF-tiled (us)", "CSF/COO", "Chosen launch"});

  for (const auto& p : frostt_profiles()) {
    const CooTensor x = make_frostt_tensor(p.name);
    const auto f = random_factors(x, kRank, 7);
    const std::uint64_t flops = mttkrp_flops(x, kRank);

    const auto base = parti::run_mttkrp(dev, x, f, 0);
    const auto ours = exec.run(x, f, 0, kernel_only);

    // CSF tiled under the SAME adaptive launch: the joint heuristic
    // picks the schedule, the cost model prices the tree walk.
    const auto feat = TensorFeatures::extract(x, 0);
    const JointChoice joint = heuristic_joint_choice(feat, kRank);
    const CsfTensor csf = CsfTensor::build(x, 0);
    const CsfTiling tiling =
        CsfTiling::build(csf, CsfTiling::auto_budget(csf, kTileWorkers));
    const gpusim::KernelProfile csf_prof =
        csf_tiled_profile(csf, tiling, kRank, joint.variant);
    const sim_ns csf_ns =
        dev.cost_model().kernel_ns(ours.launches.at(0), csf_prof);

    const double ours_gf =
        static_cast<double>(flops) / static_cast<double>(ours.breakdown.kernel);
    const double speedup = static_cast<double>(base.breakdown.kernel) /
                           static_cast<double>(ours.breakdown.kernel);
    const double csf_vs_coo = static_cast<double>(ours.breakdown.kernel) /
                              static_cast<double>(csf_ns);
    t.add_row({p.name, us(base.breakdown.kernel), us(ours.breakdown.kernel),
               fmt_double(ours_gf, 1), fmt_double(speedup, 2) + "x",
               us(csf_ns), fmt_double(csf_vs_coo, 2) + "x",
               ours.launches.at(0).str()});
    runner.with_case(p.name)
        .set("parti_kernel_us", us_val(base.breakdown.kernel), "us",
             obs::Direction::kLowerIsBetter)
        .set("scalfrag_kernel_us", us_val(ours.breakdown.kernel), "us",
             obs::Direction::kLowerIsBetter)
        .set("speedup", speedup, "x", obs::Direction::kHigherIsBetter)
        .set("scalfrag_gflops", ours_gf, "GF/s",
             obs::Direction::kHigherIsBetter)
        .set("csf_tiled_kernel_us", us_val(csf_ns), "us",
             obs::Direction::kLowerIsBetter)
        .set("csf_vs_coo_speedup", csf_vs_coo, "x",
             obs::Direction::kHigherIsBetter);
  }
  t.print();
  std::printf(
      "\n(CSF-tiled series: heuristic joint schedule, %zu-worker tiling, "
      "cost-modeled under ScalFrag's chosen launch)\n",
      kTileWorkers);
  write_bench_json(runner);
  return 0;
}
