// Extension figure: strong scaling of the sharded multi-device pipeline
// (1/2/4/8 simulated RTX 3090s over PCIe peer links) on the Fig. 10
// tensor set. Each device runs its contiguous nnz-balanced shard of the
// segment plan as an independent pipelined timeline; the partial
// outputs are reduced with the auto-picked collective. Expected shape:
// end-to-end time strictly decreases from 1 to 4 devices on every
// tensor (compute shrinks ~1/N while the reduction grows only with the
// output matrix), with 8 devices flattening on the smaller tensors.
//
// Second sweep: heterogeneous 3x3090 + 1x3060 groups at an HBM-bound
// rank, stepping the feature ladder — nnz-uniform barrier (the PR 4
// behaviour pinned to a mixed group) -> weighted shards -> + overlapped
// reduction -> + work stealing. The per-profile ladder is figure data:
// profiles with huge mode sizes (nell-1, flickr, deli) are bound by the
// replicated-factor H2D broadcast, a fixed per-device floor no
// sharding policy can shrink, so their ladder gains are modest by
// construction. The hard gate runs on a compute-bound case (nell-2 at
// 8x the bench scale, whose nnz/row-count density puts the kernels
// well above the broadcast): there the full ladder must beat the
// nnz-uniform barrier by >= 1.2x simulated makespan.

#include <cstdio>
#include <string_view>

#include "bench_common.hpp"

int main() {
  using namespace scalfrag;
  using namespace scalfrag::bench;

  const auto spec = gpusim::DeviceSpec::rtx3090();
  const LaunchSelector sel = make_selector(spec);
  obs::BenchRunner runner("figx_multidev");

  constexpr int kDevCounts[] = {1, 2, 4, 8};

  std::printf(
      "\nFigure X — Multi-device strong scaling, sharded pipeline "
      "(rank %u)\n\n",
      kRank);
  ConsoleTable table({"Tensor", "Devices", "Total (us)", "Compute (us)",
                      "Reduce (us)", "Speedup", "Reduce sched"});

  bool scaling_ok = true;
  for (const auto& p : frostt_profiles()) {
    CooTensor x = make_frostt_tensor(p.name);
    x.sort_by_mode(0);
    const auto f = random_factors(x, kRank, 9);

    sim_ns t1 = 0, prev = 0;
    for (const int n : kDevCounts) {
      gpusim::DeviceGroup group(spec, n);
      const ExecConfig cfg = ExecConfig{}.devices(n);
      const auto res = run_multi_pipeline(group, x, f, 0, cfg, &sel);
      if (n == 1) t1 = res.total_ns;
      const double speedup =
          static_cast<double>(t1) / static_cast<double>(res.total_ns);
      if (n > 1 && n <= 4 && res.total_ns >= prev) scaling_ok = false;
      prev = res.total_ns;

      table.add_row({p.name, std::to_string(n), us(res.total_ns),
                     us(res.compute_ns), us(res.reduce_ns),
                     fmt_double(speedup, 2) + "x",
                     n > 1 ? gpusim::reduce_schedule_name(res.reduce_schedule)
                           : "-"});
      runner.with_case(std::string(p.name) + "/d" + std::to_string(n))
          .set("total_us", us_val(res.total_ns), "us",
               obs::Direction::kLowerIsBetter)
          .set("compute_us", us_val(res.compute_ns), "us",
               obs::Direction::kLowerIsBetter)
          .set("reduce_us", us_val(res.reduce_ns), "us",
               obs::Direction::kInfo)
          .set("speedup", speedup, "x", obs::Direction::kHigherIsBetter)
          .set("segments", static_cast<double>(res.plan.plan.size()),
               "count", obs::Direction::kInfo)
          .set("max_shard_nnz",
               static_cast<double>(res.plan.max_shard_nnz()), "nnz",
               obs::Direction::kInfo)
          // nnz balance says nothing about time balance on a mixed
          // group — report the predicted-time imbalance alongside.
          .set("pred_imbalance", res.pred_imbalance, "ratio",
               obs::Direction::kInfo);
    }
  }
  table.print();
  std::printf("\nStrong scaling 1 -> 4 devices strictly decreasing: %s\n",
              scaling_ok ? "yes" : "NO (regression!)");
  runner.metrics().set("scaling_1_to_4_monotone", scaling_ok ? 1.0 : 0.0);

  // --- Heterogeneous sweep: 3x RTX 3090 + 1x RTX 3060 ------------------
  // Feature ladder against the PR 4 behaviour (nnz-uniform shards +
  // global reduction barrier) pinned onto the mixed group. Rank 64 so
  // the kernels are HBM-bandwidth-bound (~2.6x gap between the specs);
  // at rank 16 the pipeline is PCIe-copy-bound and both specs share the
  // same PCIe generation, which hides the heterogeneity this sweep is
  // about.
  constexpr index_t kHeteroRank = 64;
  constexpr int kHeteroSegments = 16;  // enough tail for stealing to act
  constexpr double kHeteroGate = 1.2;

  struct HeteroCfg {
    const char* name;
    ExecConfig cfg;
  };
  const ExecConfig hbase = ExecConfig{}.devices(4).segments(kHeteroSegments);
  const HeteroCfg ladder[] = {
      {"nnz_barrier",
       ExecConfig(hbase).weighted_shards(false).overlap_reduce(false).steal(
           false)},
      {"weighted", ExecConfig(hbase).overlap_reduce(false).steal(false)},
      {"weighted_ovl", ExecConfig(hbase).steal(false)},
      {"full", hbase},
  };

  std::printf(
      "\nFigure X (cont.) — Heterogeneous group 3x3090 + 1x3060 "
      "(rank %u)\n\n",
      static_cast<unsigned>(kHeteroRank));
  ConsoleTable htable({"Tensor", "Config", "Total (us)", "Compute (us)",
                       "Imbalance", "Steals", "Overlap (us)", "Speedup"});

  // Runs the four-rung ladder on one tensor; returns the speedup of
  // the "full" rung over the "nnz_barrier" rung.
  const auto run_ladder = [&](const std::string& tensor_label,
                              const CooTensor& x, const FactorList& f) {
    gpusim::DeviceGroup group = gpusim::DeviceGroup::mixed_3090_3060();
    const LaunchSelector hsel = make_selector(group.spec(0));
    sim_ns barrier_ns = 0;
    double full_speedup = 0.0;
    for (const auto& step : ladder) {
      const auto res = run_multi_pipeline(group, x, f, 0, step.cfg, &hsel);
      if (std::string_view(step.name) == "nnz_barrier")
        barrier_ns = res.total_ns;
      const double speedup =
          static_cast<double>(barrier_ns) / static_cast<double>(res.total_ns);
      if (std::string_view(step.name) == "full") full_speedup = speedup;

      htable.add_row({tensor_label.c_str(), step.name, us(res.total_ns),
                      us(res.compute_ns), fmt_double(res.pred_imbalance, 2),
                      std::to_string(res.steals.size()),
                      us(res.overlap_saved_ns), fmt_double(speedup, 2) + "x"});
      runner
          .with_case(std::string(tensor_label) + "/hetero_" + step.name)
          .set("total_us", us_val(res.total_ns), "us",
               obs::Direction::kLowerIsBetter)
          .set("compute_us", us_val(res.compute_ns), "us",
               obs::Direction::kLowerIsBetter)
          .set("speedup_vs_barrier", speedup, "x",
               obs::Direction::kHigherIsBetter)
          .set("pred_imbalance", res.pred_imbalance, "ratio",
               obs::Direction::kInfo)
          .set("steals", static_cast<double>(res.steals.size()), "count",
               obs::Direction::kInfo)
          .set("overlap_us", us_val(res.overlap_saved_ns), "us",
               obs::Direction::kInfo);
    }
    return full_speedup;
  };

  for (const auto& p : frostt_profiles()) {
    CooTensor x = make_frostt_tensor(p.name);
    x.sort_by_mode(0);
    run_ladder(p.name, x, random_factors(x, kHeteroRank, 9));
  }

  // The gated case: nell-2 at 8x the bench scale is kernel-bound on
  // both specs, so the ~2.6x HBM gap is fully exposed and the ladder
  // must recover it.
  CooTensor gate_x = make_frostt_tensor("nell-2", 8.0 * kDefaultScale);
  gate_x.sort_by_mode(0);
  const double gate_speedup =
      run_ladder("nell-2_x8", gate_x, random_factors(gate_x, kHeteroRank, 9));
  const bool hetero_ok = gate_speedup >= kHeteroGate;

  htable.print();
  std::printf(
      "\nHetero full ladder on compute-bound nell-2_x8: %.2fx vs "
      "nnz-uniform barrier (gate >= %.1fx): %s\n",
      gate_speedup, kHeteroGate, hetero_ok ? "yes" : "NO (regression!)");
  runner.metrics().set("hetero_gate_ok", hetero_ok ? 1.0 : 0.0);
  runner.metrics().set("hetero_gate_speedup", gate_speedup);

  write_bench_json(runner);
  return (scaling_ok && hetero_ok) ? 0 : 1;
}
