// Extension figure: strong scaling of the sharded multi-device pipeline
// (1/2/4/8 simulated RTX 3090s over PCIe peer links) on the Fig. 10
// tensor set. Each device runs its contiguous nnz-balanced shard of the
// segment plan as an independent pipelined timeline; the partial
// outputs are reduced with the auto-picked collective. Expected shape:
// end-to-end time strictly decreases from 1 to 4 devices on every
// tensor (compute shrinks ~1/N while the reduction grows only with the
// output matrix), with 8 devices flattening on the smaller tensors.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace scalfrag;
  using namespace scalfrag::bench;

  const auto spec = gpusim::DeviceSpec::rtx3090();
  const LaunchSelector sel = make_selector(spec);
  obs::BenchRunner runner("figx_multidev");

  constexpr int kDevCounts[] = {1, 2, 4, 8};

  std::printf(
      "\nFigure X — Multi-device strong scaling, sharded pipeline "
      "(rank %u)\n\n",
      kRank);
  ConsoleTable table({"Tensor", "Devices", "Total (us)", "Compute (us)",
                      "Reduce (us)", "Speedup", "Reduce sched"});

  bool scaling_ok = true;
  for (const auto& p : frostt_profiles()) {
    CooTensor x = make_frostt_tensor(p.name);
    x.sort_by_mode(0);
    const auto f = random_factors(x, kRank, 9);

    sim_ns t1 = 0, prev = 0;
    for (const int n : kDevCounts) {
      gpusim::DeviceGroup group(spec, n);
      const ExecConfig cfg = ExecConfig{}.devices(n);
      const auto res = run_multi_pipeline(group, x, f, 0, cfg, &sel);
      if (n == 1) t1 = res.total_ns;
      const double speedup =
          static_cast<double>(t1) / static_cast<double>(res.total_ns);
      if (n > 1 && n <= 4 && res.total_ns >= prev) scaling_ok = false;
      prev = res.total_ns;

      table.add_row({p.name, std::to_string(n), us(res.total_ns),
                     us(res.compute_ns), us(res.reduce_ns),
                     fmt_double(speedup, 2) + "x",
                     n > 1 ? gpusim::reduce_schedule_name(res.reduce_schedule)
                           : "-"});
      runner.with_case(std::string(p.name) + "/d" + std::to_string(n))
          .set("total_us", us_val(res.total_ns), "us",
               obs::Direction::kLowerIsBetter)
          .set("compute_us", us_val(res.compute_ns), "us",
               obs::Direction::kLowerIsBetter)
          .set("reduce_us", us_val(res.reduce_ns), "us",
               obs::Direction::kInfo)
          .set("speedup", speedup, "x", obs::Direction::kHigherIsBetter)
          .set("segments", static_cast<double>(res.plan.plan.size()),
               "count", obs::Direction::kInfo)
          .set("max_shard_nnz",
               static_cast<double>(res.plan.max_shard_nnz()), "nnz",
               obs::Direction::kInfo);
    }
  }
  table.print();
  std::printf("\nStrong scaling 1 -> 4 devices strictly decreasing: %s\n",
              scaling_ok ? "yes" : "NO (regression!)");
  runner.metrics().set("scaling_1_to_4_monotone", scaling_ok ? 1.0 : 0.0);
  write_bench_json(runner);
  return scaling_ok ? 0 : 1;
}
