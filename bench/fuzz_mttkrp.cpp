// Deterministic differential fuzz driver: generate corpus-archetype
// tensors from a seed, run EVERY registered MTTKRP execution path on
// each, and compare all of them to the dense oracle. On divergence the
// failing tensor is greedily shrunk to a minimal repro and dumped in
// .tns form, then the process exits non-zero (CI-friendly).
//
//   fuzz_mttkrp --seed 42 --iters 200              # full sweep
//   fuzz_mttkrp --archetype mega_slice --iters 50  # one archetype
//   fuzz_mttkrp --paths pipeline --iters 100       # one path family
//   fuzz_mttkrp --paths csf_tiled --iters 36       # the CSF tiled rows
//   fuzz_mttkrp --list                             # show table + corpus
//
// Every case is reproducible from the printed (archetype, seed, mode,
// rank) tuple alone — no corpus files, no RNG state.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <map>
#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "obs/bench_runner.hpp"
#include "tensor/io_tns.hpp"
#include "testing/corpus.hpp"
#include "testing/diff_check.hpp"

namespace {

using namespace scalfrag;
using namespace scalfrag::testing;

/// Ranks the sweep cycles through when --rank is not pinned: the
/// workhorse 8 plus the SIMD tail shapes — 1 and 3 (sub-lane), 7
/// (neither AVX2 nor AVX-512 divides it), 63 (full AVX-512 lanes plus a
/// 15-wide masked tail inside one rank tile) and 65 (crosses the
/// kRankTile boundary into a 1-wide tail tile).
constexpr index_t kRankCycle[] = {8, 1, 3, 7, 63, 65};

struct Args {
  std::uint64_t seed = 42;
  int iters = 200;
  std::string archetype;  // empty = round-robin over the whole corpus
  std::string paths;      // substring filter; empty = all
  index_t rank = 0;       // 0 = cycle through kRankCycle per iteration
  int size_class = 1;
  double max_seconds = 0.0;  // 0 = no wall-clock budget
  bool list = false;
};

[[noreturn]] void usage(int code) {
  std::printf(
      "usage: fuzz_mttkrp [--seed N] [--iters N] [--archetype NAME]\n"
      "                   [--paths SUBSTR] [--rank R] [--size {0,1,2}]\n"
      "                   [--max-seconds S] [--list]\n"
      "  --rank 0 (default) cycles ranks 8,1,3,7,63,65 across iterations\n"
      "  (the SIMD vector-tail shapes); a non-zero R pins every case.\n");
  std::exit(code);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (flag == "--seed") {
      a.seed = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--iters") {
      a.iters = std::atoi(next());
    } else if (flag == "--archetype") {
      a.archetype = next();
    } else if (flag == "--paths") {
      a.paths = next();
    } else if (flag == "--rank") {
      a.rank = static_cast<index_t>(std::atoi(next()));
    } else if (flag == "--size") {
      a.size_class = std::atoi(next());
    } else if (flag == "--max-seconds") {
      a.max_seconds = std::atof(next());
    } else if (flag == "--list") {
      a.list = true;
    } else if (flag == "--help" || flag == "-h") {
      usage(0);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      usage(2);
    }
  }
  if (a.iters <= 0) usage(2);
  if (!a.archetype.empty() && !is_archetype(a.archetype)) {
    std::fprintf(stderr, "unknown archetype %s (see --list)\n",
                 a.archetype.c_str());
    std::exit(2);
  }
  return a;
}

void report_failure(const CooTensor& t, order_t mode, const Args& args,
                    const std::string& archetype, std::uint64_t case_seed,
                    const DiffOptions& opt, const DiffReport& rep) {
  const Divergence& d = rep.divergences.front();
  std::printf("\nFAIL path=%s archetype=%s seed=%llu mode=%u rank=%u "
              "nnz=%llu\n",
              d.path.c_str(), archetype.c_str(),
              static_cast<unsigned long long>(case_seed),
              static_cast<unsigned>(mode), static_cast<unsigned>(opt.rank),
              static_cast<unsigned long long>(t.nnz()));
  if (d.threw) {
    std::printf("  path threw: %s\n", d.message.c_str());
  } else {
    std::printf("  first divergence at (%u, %u): got=%.9g want=%.9g "
                "tol=%.3g\n",
                static_cast<unsigned>(d.row), static_cast<unsigned>(d.col),
                d.got, d.want, d.tol);
  }

  // Shrink against the one failing path so the repro stays focused.
  DiffOptions shrink_opt = opt;
  shrink_opt.path_filter = d.path;
  const CooTensor minimal =
      shrink_tensor(t, divergence_predicate(mode, shrink_opt));
  std::printf("  shrunk %llu -> %llu nnz; minimal repro (.tns, dims",
              static_cast<unsigned long long>(t.nnz()),
              static_cast<unsigned long long>(minimal.nnz()));
  for (index_t dim : minimal.dims()) std::printf(" %u", dim);
  std::printf("):\n");
  std::ostringstream tns;
  write_tns(tns, minimal);
  std::printf("%s", tns.str().c_str());
  std::printf("  replay: fuzz_mttkrp --seed %llu --archetype %s --iters 1 "
              "--rank %u --size %d --paths '%s'\n",
              static_cast<unsigned long long>(args.seed), archetype.c_str(),
              static_cast<unsigned>(opt.rank), args.size_class,
              d.path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  if (args.list) {
    std::printf("corpus archetypes (%zu):\n", corpus_archetypes().size());
    for (const auto& a : corpus_archetypes()) std::printf("  %s\n", a.c_str());
    std::printf("registered execution paths (%zu):\n",
                conformance_paths().size());
    for (const auto& p : conformance_paths()) {
      std::printf("  %s\n", p.name.c_str());
    }
    return 0;
  }

  const auto& archetypes = corpus_archetypes();
  const auto t0 = std::chrono::steady_clock::now();
  Rng master(args.seed);
  std::map<std::string, int> per_archetype;
  std::size_t paths_total = 0;
  int iters_done = 0;

  for (int i = 0; i < args.iters; ++i) {
    if (args.max_seconds > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - t0;
      if (elapsed.count() >= args.max_seconds) break;
    }
    const std::string archetype =
        args.archetype.empty() ? archetypes[i % archetypes.size()]
                               : args.archetype;
    const std::uint64_t case_seed = master.next_u64();
    const CooTensor t = make_archetype(archetype, case_seed, args.size_class);
    const auto mode = static_cast<order_t>(i % t.order());

    DiffOptions opt;
    opt.rank = args.rank != 0
                   ? args.rank
                   : kRankCycle[static_cast<std::size_t>(i) %
                                std::size(kRankCycle)];
    opt.factor_seed = case_seed ^ 0x9e3779b97f4a7c15ULL;
    opt.path_filter = args.paths;
    const DiffReport rep = check_all_paths(t, mode, opt);
    if (!rep.ok()) {
      report_failure(t, mode, args, archetype, case_seed, opt, rep);
      return 1;
    }
    ++per_archetype[archetype];
    paths_total += rep.paths_run;
    ++iters_done;
  }

  if (args.rank != 0) {
    std::printf("fuzz_mttkrp: %d cases, %zu path executions, 0 divergences "
                "(seed=%llu rank=%u size=%d)\n",
                iters_done, paths_total,
                static_cast<unsigned long long>(args.seed),
                static_cast<unsigned>(args.rank), args.size_class);
  } else {
    std::printf("fuzz_mttkrp: %d cases, %zu path executions, 0 divergences "
                "(seed=%llu rank=cycle{8,1,3,7,63,65} size=%d)\n",
                iters_done, paths_total,
                static_cast<unsigned long long>(args.seed), args.size_class);
  }
  for (const auto& [name, count] : per_archetype) {
    std::printf("  %-16s %d\n", name.c_str(), count);
  }

  // Coverage trajectory: record how much the sweep exercised so the CI
  // artifact shows fuzz throughput alongside the perf benches. Counts
  // are configuration-dependent, not perf — info only.
  obs::BenchRunner runner("fuzz_mttkrp");
  runner.with_case("summary")
      .set("cases", static_cast<double>(iters_done), "count",
           obs::Direction::kInfo)
      .set("path_executions", static_cast<double>(paths_total), "count",
           obs::Direction::kInfo)
      .set("divergences", 0.0, "count", obs::Direction::kInfo)
      .set("archetypes_covered", static_cast<double>(per_archetype.size()),
           "count", obs::Direction::kInfo);
  std::printf("[bench] wrote %s\n", runner.write().c_str());
  return 0;
}
