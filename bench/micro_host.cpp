// google-benchmark microbenchmarks for the host-side primitives the
// framework's own overhead consists of: reference MTTKRP, mode sorting,
// feature extraction, segmentation, and model inference. These are the
// costs that must stay negligible next to the simulated device times.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace scalfrag;
using namespace scalfrag::bench;

const CooTensor& nips_tensor() {
  static const CooTensor t = make_frostt_tensor("nips", 1.0 / 512, 3);
  return t;
}

void BM_MttkrpReference(benchmark::State& state) {
  const CooTensor& t = nips_tensor();
  const auto f = random_factors(t, static_cast<index_t>(state.range(0)), 4);
  DenseMatrix out(t.dim(0), static_cast<index_t>(state.range(0)));
  for (auto _ : state) {
    mttkrp_coo_ref(t, f, 0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.nnz()));
}
BENCHMARK(BM_MttkrpReference)->Arg(8)->Arg(16)->Arg(32);

void BM_MttkrpCsf(benchmark::State& state) {
  const CooTensor& t = nips_tensor();
  const auto f = random_factors(t, 16, 4);
  const CsfTensor c = CsfTensor::build(t, 0);
  DenseMatrix out(t.dim(0), 16);
  for (auto _ : state) {
    mttkrp_csf(c, f, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.nnz()));
}
BENCHMARK(BM_MttkrpCsf);

void BM_SortByMode(benchmark::State& state) {
  const CooTensor base = nips_tensor();
  for (auto _ : state) {
    CooTensor t = base;
    t.sort_by_mode(2);
    benchmark::DoNotOptimize(t.nnz());
  }
}
BENCHMARK(BM_SortByMode);

void BM_FeatureExtraction(benchmark::State& state) {
  const CooTensor& t = nips_tensor();
  for (auto _ : state) {
    const auto f = TensorFeatures::extract(t, 0);
    benchmark::DoNotOptimize(f.num_fibers);
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_Segmentation(benchmark::State& state) {
  const CooTensor& t = nips_tensor();
  for (auto _ : state) {
    const auto plan =
        make_segments(t, 0, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(plan.segments.data());
  }
}
BENCHMARK(BM_Segmentation)->Arg(4)->Arg(16);

void BM_SelectorInference(benchmark::State& state) {
  const auto spec = gpusim::DeviceSpec::rtx3090();
  static const LaunchSelector sel = make_selector(spec, /*verbose=*/false);
  const auto feat = TensorFeatures::extract(nips_tensor(), 0);
  for (auto _ : state) {
    const Selection s = sel.select(feat);
    benchmark::DoNotOptimize(s.config.grid);
  }
}
BENCHMARK(BM_SelectorInference);

}  // namespace

BENCHMARK_MAIN();
