// google-benchmark microbenchmarks for the host-side primitives the
// framework's own overhead consists of: reference MTTKRP, the parallel
// host engine, mode sorting, feature extraction, segmentation, and
// model inference. These are the costs that must stay negligible next
// to the simulated device times.
//
// main() first runs the host-engine thread sweep (1M-nnz synthetic
// tensor, ref vs mttkrp_coo_par at 1/2/4/hw threads) and writes it to
// BENCH_host_mttkrp.json, then hands over to google-benchmark.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "tensor/mode_views.hpp"
#include "tensor/mttkrp_par.hpp"

namespace {

using namespace scalfrag;
using namespace scalfrag::bench;

const CooTensor& nips_tensor() {
  static const CooTensor t = make_frostt_tensor("nips", 1.0 / 512, 3);
  return t;
}

void BM_MttkrpReference(benchmark::State& state) {
  const CooTensor& t = nips_tensor();
  const auto f = random_factors(t, static_cast<index_t>(state.range(0)), 4);
  DenseMatrix out(t.dim(0), static_cast<index_t>(state.range(0)));
  for (auto _ : state) {
    mttkrp_coo_ref(t, f, 0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.nnz()));
}
BENCHMARK(BM_MttkrpReference)->Arg(8)->Arg(16)->Arg(32);

void BM_MttkrpParallel(benchmark::State& state) {
  const CooTensor& t = nips_tensor();
  const auto f = random_factors(t, 16, 4);
  DenseMatrix out(t.dim(0), 16);
  HostExecParams opt;
  opt.threads = static_cast<std::size_t>(state.range(0));
  opt.grain_nnz = 4096;
  for (auto _ : state) {
    mttkrp_coo_par(t, f, 0, out, /*accumulate=*/false, opt);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.nnz()));
}
BENCHMARK(BM_MttkrpParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(0);  // 0 = pool

void BM_MttkrpCsf(benchmark::State& state) {
  const CooTensor& t = nips_tensor();
  const auto f = random_factors(t, 16, 4);
  const CsfTensor c = CsfTensor::build(t, 0);
  DenseMatrix out(t.dim(0), 16);
  for (auto _ : state) {
    mttkrp_csf(c, f, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.nnz()));
}
BENCHMARK(BM_MttkrpCsf);

void BM_SortByMode(benchmark::State& state) {
  const CooTensor base = nips_tensor();
  for (auto _ : state) {
    CooTensor t = base;
    t.sort_by_mode(2);
    benchmark::DoNotOptimize(t.nnz());
  }
}
BENCHMARK(BM_SortByMode);

void BM_FeatureExtraction(benchmark::State& state) {
  const CooTensor& t = nips_tensor();
  for (auto _ : state) {
    const auto f = TensorFeatures::extract(t, 0);
    benchmark::DoNotOptimize(f.num_fibers);
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_Segmentation(benchmark::State& state) {
  const CooTensor& t = nips_tensor();
  for (auto _ : state) {
    const auto plan =
        make_segments(t, 0, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(plan.segments.data());
  }
}
BENCHMARK(BM_Segmentation)->Arg(4)->Arg(16);

void BM_SelectorInference(benchmark::State& state) {
  const auto spec = gpusim::DeviceSpec::rtx3090();
  static const LaunchSelector sel = make_selector(spec, /*verbose=*/false);
  const auto feat = TensorFeatures::extract(nips_tensor(), 0);
  for (auto _ : state) {
    const Selection s = sel.select(feat);
    benchmark::DoNotOptimize(s.config.grid);
  }
}
BENCHMARK(BM_SelectorInference);

// ---------------------------------------------------------------------
// Host-engine thread sweep → BENCH_host_mttkrp.json (schema v1).

void run_host_mttkrp_sweep() {
  GeneratorConfig g;
  g.dims = {4096, 4096, 2048};
  g.nnz = 1'000'000;
  g.skew = {1.4, 1.2, 1.0};
  g.seed = 7;
  CooTensor t = generate_coo(g);
  t.sort_by_mode(0);
  // Features are computed once by the planner in real runs; pass them so
  // strategy selection does not re-probe the index array per call.
  const auto feat = TensorFeatures::extract(t, 0);
  const auto f = random_factors(t, kRank, 8);
  DenseMatrix out(t.dim(0), kRank);
  // All metrics here are host wall clock — real measurements worth
  // tracking, but machine-dependent, so "info": recorded in the
  // trajectory yet never gated by bench_compare.
  const obs::RepeatPolicy policy{/*warmup=*/1, /*reps=*/3};
  obs::BenchRunner runner("host_mttkrp");

  std::printf("[host_mttkrp] tensor %ux%ux%u nnz=%llu rank=%u\n", g.dims[0],
              g.dims[1], g.dims[2],
              static_cast<unsigned long long>(t.nnz()), kRank);
  obs::BenchCase& ref_case = runner.with_case("ref");
  const double ref_ms =
      ref_case
          .measure("time_ms", "ms", obs::Direction::kInfo, policy,
                   [&] {
                     WallTimer timer;
                     mttkrp_coo_ref(t, f, 0, out);
                     return timer.millis();
                   })
          .median;
  std::printf("[host_mttkrp] ref                 %8.2f ms\n", ref_ms);

  const std::size_t hw = ThreadPool::global().size();
  std::vector<std::size_t> counts{1, 2, 4};
  if (std::find(counts.begin(), counts.end(), hw) == counts.end()) {
    counts.push_back(hw);
  }
  runner.metrics().set("pool_threads", static_cast<double>(hw));
  runner.metrics().count("sweep_nnz", t.nnz());

  for (const std::size_t threads : counts) {
    HostExecParams opt;
    opt.threads = threads;
    opt.features = &feat;
    const HostStrategy strat = choose_host_strategy(t, 0, opt);
    obs::BenchCase& c = runner.with_case("par_t" + std::to_string(threads));
    const double par_ms =
        c.measure("time_ms", "ms", obs::Direction::kInfo, policy,
                  [&] {
                    WallTimer timer;
                    mttkrp_coo_par(t, f, 0, out, /*accumulate=*/false, opt);
                    return timer.millis();
                  })
            .median;
    const double speedup = ref_ms / par_ms;
    c.set("speedup_vs_ref", speedup, "x", obs::Direction::kInfo);
    std::printf("[host_mttkrp] par t=%-2zu %-13s %8.2f ms  %.2fx vs ref\n",
                threads, host_strategy_name(strat), par_ms, speedup);
  }

  // Single-sort permutation views on the same tensor: the gather-view
  // kernel time (wall clock, info) and the resident-memory comparison
  // against the per-mode-copies scheme. The byte counts depend only on
  // nnz/order, so they ARE gateable — the perf-smoke job holds the
  // >= 2x reduction on this 3-mode sweep tensor.
  const ModeViews views(t);
  {
    DenseMatrix out1(t.dim(1), kRank);
    HostExecParams opt;
    opt.threads = hw;
    obs::BenchCase& c = runner.with_case("par_gather_view");
    const double gather_ms =
        c.measure("time_ms", "ms", obs::Direction::kInfo, policy,
                  [&] {
                    WallTimer timer;
                    mttkrp_coo_par(views.view(1), f, 1, out1,
                                   /*accumulate=*/false, opt);
                    return timer.millis();
                  })
            .median;
    std::printf("[host_mttkrp] gather view (m=1)   %8.2f ms\n", gather_ms);
  }
  // SIMD microkernel speedups: the same engine forced onto the scalar
  // kernel table vs the auto-detected ISA table (src/tensor/simd/), on
  // the contiguous span (mode 0) and the gather view (mode 1), at
  // 1/2/4 worker caps under compact pinning. A ratio of two wall
  // clocks from the same run is stable enough to gate at 5% — but only
  // within one ISA, so the speedups are isa_sensitive: bench_compare
  // warns instead of gating when baseline and current ISAs differ.
  {
    ThreadPool::global().apply_pinning(PinPolicy::Compact);
    const HostIsa best = detect_host_isa();
    std::printf("[host_mttkrp] simd table: %s (%d lanes, pinning=compact)\n",
                host_isa_name(best), host_isa_lanes(best));
    DenseMatrix out1(t.dim(1), kRank);
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      for (const bool gather : {false, true}) {
        HostExecParams opt;
        opt.threads = threads;
        opt.pinning = PinPolicy::Compact;
        if (!gather) opt.features = &feat;
        const order_t mode = gather ? 1 : 0;
        DenseMatrix& o = gather ? out1 : out;
        auto run_isa = [&](HostIsa isa) {
          opt.isa = isa;
          WallTimer timer;
          if (gather) {
            mttkrp_coo_par(views.view(1), f, mode, o, /*accumulate=*/false,
                           opt);
          } else {
            mttkrp_coo_par(t, f, mode, o, /*accumulate=*/false, opt);
          }
          return timer.millis();
        };
        obs::BenchCase& c = runner.with_case(
            std::string(gather ? "simd_gather_t" : "simd_ident_t") +
            std::to_string(threads));
        const double scalar_ms =
            c.measure("scalar_ms", "ms", obs::Direction::kInfo, policy,
                      [&] { return run_isa(HostIsa::Scalar); })
                .median;
        const double simd_ms =
            c.measure("simd_ms", "ms", obs::Direction::kInfo, policy,
                      [&] { return run_isa(best); })
                .median;
        c.set("speedup_vs_scalar", scalar_ms / simd_ms, "x",
              obs::Direction::kHigherIsBetter, /*isa_sensitive=*/true);
        std::printf(
            "[host_mttkrp] simd %-6s t=%-2zu scalar %8.2f ms  %s %8.2f ms "
            " %.2fx\n",
            gather ? "gather" : "ident", threads, scalar_ms,
            host_isa_name(best), simd_ms, scalar_ms / simd_ms);
      }
    }
  }
  {
    const double views_bytes = static_cast<double>(views.resident_bytes());
    const double legacy_bytes =
        static_cast<double>(ModeViews::legacy_copies_bytes(t));
    obs::BenchCase& c = runner.with_case("plan_memory");
    c.set("views_resident_bytes", views_bytes, "bytes",
          obs::Direction::kLowerIsBetter);
    c.set("legacy_copies_bytes", legacy_bytes, "bytes",
          obs::Direction::kInfo);
    c.set("memory_reduction", legacy_bytes / views_bytes, "x",
          obs::Direction::kHigherIsBetter);
    std::printf("[host_mttkrp] plan memory %.1f MB -> %.1f MB (%.2fx)\n",
                legacy_bytes / 1e6, views_bytes / 1e6,
                legacy_bytes / views_bytes);
  }
  write_bench_json(runner);
}

}  // namespace

int main(int argc, char** argv) {
  run_host_mttkrp_sweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
