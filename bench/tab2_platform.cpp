// Table II reproduction: the hardware specifications the simulator is
// parameterized with. This is the ground truth every other bench's
// simulated times derive from.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace scalfrag;
  const auto gpu = gpusim::DeviceSpec::rtx3090();
  const auto cpu = gpusim::CpuSpec::i7_11700k();

  std::printf("Table II — Hardware specifications (simulated platform)\n\n");
  ConsoleTable t({"", "CPU", "GPU"});
  t.add_row({"Model", cpu.name, gpu.name});
  t.add_row({"Frequency", fmt_double(cpu.clock_ghz) + " GHz",
             fmt_double(gpu.core_clock_ghz) + " GHz"});
  t.add_row({"Processing Units",
             std::to_string(cpu.cores) + "C" + std::to_string(cpu.threads) +
                 "T",
             std::to_string(gpu.cuda_cores) + " (" +
                 std::to_string(gpu.num_sms) + " SMs)"});
  t.add_row({"Cache", "80KB L1, 512KB L2, 16MB L3",
             "128KB L1 (per SM), " + human_bytes(gpu.l2_bytes) + " L2"});
  t.add_row({"Memory", "32 GB", human_bytes(gpu.global_mem_bytes)});
  t.add_row({"Bandwidth", fmt_double(cpu.mem_bandwidth_gbps) + " GB/s",
             fmt_double(gpu.hbm_bandwidth_gbps) + " GB/s"});
  t.add_row({"PCIe (measured)", "-",
             fmt_double(gpu.pcie_bandwidth_gbps) + " GB/s"});
  t.add_row({"Peak fp32", fmt_double(cpu.peak_gflops(), 0) + " GFlop/s",
             fmt_double(gpu.peak_gflops(), 0) + " GFlop/s"});
  t.print();

  std::printf(
      "\nSimulator-only parameters: kernel launch %.1f us, PCIe setup "
      "%.1f us,\nblock dispatch %.0f ns, L2 atomic retire %.1f ns.\n",
      gpu.kernel_launch_us, gpu.pcie_latency_us, gpu.per_block_sched_ns,
      gpu.atomic_ns);

  // Configuration echo: every other bench's simulated numbers derive
  // from these — a drift here explains a drift everywhere else.
  obs::BenchRunner runner("tab2_platform");
  runner.with_case("gpu")
      .set("peak_gflops", gpu.peak_gflops(), "GF/s", obs::Direction::kInfo)
      .set("hbm_gbps", gpu.hbm_bandwidth_gbps, "GB/s", obs::Direction::kInfo)
      .set("pcie_gbps", gpu.pcie_bandwidth_gbps, "GB/s",
           obs::Direction::kInfo)
      .set("kernel_launch_us", gpu.kernel_launch_us, "us",
           obs::Direction::kInfo);
  runner.with_case("cpu")
      .set("peak_gflops", cpu.peak_gflops(), "GF/s", obs::Direction::kInfo)
      .set("mem_gbps", cpu.mem_bandwidth_gbps, "GB/s",
           obs::Direction::kInfo);
  scalfrag::bench::write_bench_json(runner);
  return 0;
}
