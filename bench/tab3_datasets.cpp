// Table III reproduction: the dataset census — the paper's published
// FROSTT numbers next to the synthetic stand-ins every bench actually
// runs (generated at kDefaultScale).

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace scalfrag;

  std::printf(
      "Table III — Tensors used for evaluation\n"
      "(paper census vs generated stand-ins at scale 1/%d)\n\n",
      static_cast<int>(1.0 / kDefaultScale));

  obs::BenchRunner runner("tab3_datasets");
  ConsoleTable t({"Tensor", "Order", "Paper dims", "Paper #nnz",
                  "Paper density", "Gen #nnz", "Gen density",
                  "Gen maxNnz/slice"});
  for (const auto& p : frostt_profiles()) {
    std::string dims;
    for (std::size_t i = 0; i < p.paper_dims.size(); ++i) {
      dims += human_count(p.paper_dims[i]);
      if (i + 1 < p.paper_dims.size()) dims += " x ";
    }
    const CooTensor gen = make_frostt_tensor(p.name);
    const auto feat = TensorFeatures::extract(gen, 0);
    t.add_row({p.name, std::to_string(p.order()), dims,
               human_count(p.paper_nnz), fmt_density(p.paper_density()),
               human_count(gen.nnz()), fmt_density(gen.density()),
               human_count(feat.max_nnz_per_slice)});
    // Workload echo: a change here means every bench's inputs changed,
    // which is the first thing to rule out when timings move.
    runner.with_case(p.name)
        .set("gen_nnz", static_cast<double>(gen.nnz()), "count",
             obs::Direction::kInfo)
        .set("gen_density", gen.density(), "ratio", obs::Direction::kInfo)
        .set("gen_max_nnz_per_slice",
             static_cast<double>(feat.max_nnz_per_slice), "count",
             obs::Direction::kInfo);
  }
  t.print();
  bench::write_bench_json(runner);
  std::printf(
      "\nStand-ins preserve order, per-mode size ratios, and skewed\n"
      "slice-size distributions; absolute nnz shrinks by the scale so\n"
      "every reproduction binary runs in seconds (see DESIGN.md).\n");
  return 0;
}
