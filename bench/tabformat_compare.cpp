// Format comparison (paper §II-D background + §VI-A's SpTFS): storage
// footprint and host MTTKRP time of COO / CSF / HiCOO / F-COO on every
// Table III stand-in, plus the trained format selector's pick, the CSF
// tiled engine's measured time, and the joint (format, launch) backend
// decision drivers dispatch on.

#include <cstdio>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "tensor/csf.hpp"
#include "tensor/fcoo.hpp"
#include "tensor/hicoo.hpp"

int main() {
  using namespace scalfrag;
  using namespace scalfrag::bench;

  std::printf("Sparse-format comparison on Table III stand-ins (mode-0 "
              "MTTKRP, rank %u, host time)\n\n",
              kRank);

  FormatSelectorConfig cfg;
  cfg.rank = kRank;
  cfg.corpus_size = 32;
  cfg.reps = 3;
  FormatSelector selector(cfg);
  const double train_s = selector.train();
  std::printf("[format-select] trained on %d measured tensors in %.1f s\n\n",
              cfg.corpus_size, train_s);

  obs::BenchRunner runner("tabformat_compare");
  const JointSelector joint(&selector, nullptr);
  ConsoleTable t({"Tensor", "COO bytes", "CSF", "HiCOO", "F-COO",
                  "COO ms", "CSF ms", "CSF-tiled ms", "HiCOO ms", "F-COO ms",
                  "measured", "predicted", "joint pick", "regret"});
  int agree = 0, total = 0;
  double worst_regret = 0.0;
  for (const auto& p : frostt_profiles()) {
    const CooTensor x = make_frostt_tensor(p.name, kDefaultScale / 4);
    const auto feat = TensorFeatures::extract(x, 0);

    const CsfTensor csf = CsfTensor::build(x, 0);
    const HicooTensor hicoo = HicooTensor::build(x);
    const FcooTensor fcoo = FcooTensor::build(x, 0);
    const FormatTiming timing = measure_formats(x, 0, kRank, 3);
    const SparseFormat predicted = selector.predict(feat);
    // The runnable CSF engine (sync-tiled), measured like the reference
    // kernels above, plus the joint (format, launch) decision drivers
    // actually dispatch on.
    const JointChoice pick = joint.choose(feat, kRank);
    double csf_tiled_ms = 0.0;
    {
      DenseMatrix out(x.dim(0), kRank);
      const FactorList f = random_factors(x, kRank, 7);
      CsfTiledOptions topt;
      topt.variant = pick.format == SparseFormat::Csf
                         ? pick.variant
                         : CsfTiledVariant::Sync;
      WallTimer timer;
      for (int rep = 0; rep < 3; ++rep) {
        mttkrp_csf_tiled(csf, f, out, /*accumulate=*/false, topt);
      }
      csf_tiled_ms = timer.seconds() * 1e3 / 3;
    }
    agree += predicted == timing.best;
    ++total;
    // Regret: how much slower the predicted format runs vs the best —
    // the metric that matters when several formats are near ties.
    const double regret =
        timing.ms[static_cast<std::size_t>(predicted)] / timing.best_ms() -
        1.0;
    worst_regret = std::max(worst_regret, regret);

    auto rel = [&](std::size_t b) {
      return fmt_double(static_cast<double>(b) /
                            static_cast<double>(x.bytes()),
                        2) +
             "x";
    };
    t.add_row(
        {p.name, human_bytes(x.bytes()), rel(csf.bytes()),
         rel(hicoo.bytes()), rel(fcoo.bytes()),
         fmt_double(timing.ms[0], 2), fmt_double(timing.ms[1], 2),
         fmt_double(csf_tiled_ms, 2),
         fmt_double(timing.ms[2], 2), fmt_double(timing.ms[3], 2),
         sparse_format_name(timing.best), sparse_format_name(predicted),
         pick.backend,
         "+" + fmt_double(100.0 * regret, 1) + "%"});
    // Storage ratios are deterministic; host-side ms are wall clock
    // (machine-dependent) and the regret depends on them — info only.
    runner.with_case(p.name)
        .set("csf_bytes_rel",
             static_cast<double>(csf.bytes()) /
                 static_cast<double>(x.bytes()),
             "x", obs::Direction::kLowerIsBetter)
        .set("hicoo_bytes_rel",
             static_cast<double>(hicoo.bytes()) /
                 static_cast<double>(x.bytes()),
             "x", obs::Direction::kLowerIsBetter)
        .set("fcoo_bytes_rel",
             static_cast<double>(fcoo.bytes()) /
                 static_cast<double>(x.bytes()),
             "x", obs::Direction::kLowerIsBetter)
        .set("regret_pct", 100.0 * regret, "%", obs::Direction::kInfo)
        .set("csf_tiled_ms", csf_tiled_ms, "ms", obs::Direction::kInfo);
  }
  t.print();
  std::printf(
      "\nselector picked the measured-fastest format on %d/%d tensors; "
      "worst regret +%.1f%%\n(format bytes shown relative to COO; host "
      "times are wall-clock and machine-dependent)\n",
      agree, total, 100.0 * worst_regret);
  runner.with_case("summary")
      .set("selector_agreement", static_cast<double>(agree) / total, "ratio",
           obs::Direction::kHigherIsBetter)
      .set("worst_regret_pct", 100.0 * worst_regret, "%",
           obs::Direction::kInfo);
  write_bench_json(runner);
  return 0;
}
