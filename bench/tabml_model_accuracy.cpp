// §IV-B reproduction (text claims, no figure number): comparison of the
// launch-parameter prediction models — "we try various machine learning
// models such as DecisionTree, SVM, AdaBoost, Bagging ... the
// DecisionTree regressor has the lowest MAPE (less than 15%) ... the
// training time is less than 0.5 seconds".

#include <cstdio>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "ml/metrics.hpp"

int main() {
  using namespace scalfrag;
  using namespace scalfrag::bench;

  const auto spec = gpusim::DeviceSpec::rtx3090();
  std::printf(
      "Model comparison for adaptive launch selection (corpus: 48 "
      "synthetic tensors x launch grid)\n\n");

  const auto data = AutoTuner::build_dataset(spec, kRank, 48, 2024);
  auto [train, test] = data.train_test_split(0.2, 99);

  obs::BenchRunner runner("tabml_model_accuracy");
  ConsoleTable t({"Model", "MAPE (GFlops)", "MAE", "R2 (log)",
                  "Train (ms)", "Infer (us/row)"});
  for (ModelKind kind :
       {ModelKind::DecisionTree, ModelKind::Bagging, ModelKind::AdaBoost,
        ModelKind::LinearSVR, ModelKind::Knn}) {
    auto model = make_model(kind, 7);
    WallTimer fit_timer;
    model->fit(train);
    const double fit_ms = fit_timer.millis();

    WallTimer inf_timer;
    const auto pred_log = model->predict_all(test);
    const double inf_us =
        inf_timer.micros() / static_cast<double>(test.size());

    std::vector<double> truth(test.size()), pred(test.size());
    for (std::size_t i = 0; i < test.size(); ++i) {
      truth[i] = std::exp2(test.target(i));
      pred[i] = std::exp2(pred_log[i]);
    }
    t.add_row({model->name(), fmt_double(ml::mape(truth, pred), 1) + "%",
               fmt_double(ml::mae(truth, pred), 2),
               fmt_double(ml::r2(test.targets(), pred_log), 3),
               fmt_double(fit_ms, 1), fmt_double(inf_us, 2)});
    // Accuracy is deterministic (fixed corpus seed) and gated; the
    // wall-clock columns are machine-dependent, so info-only.
    runner.with_case(model->name())
        .set("mape_pct", ml::mape(truth, pred), "%",
             obs::Direction::kLowerIsBetter)
        .set("r2_log", ml::r2(test.targets(), pred_log), "r2",
             obs::Direction::kHigherIsBetter)
        .set("train_ms", fit_ms, "ms", obs::Direction::kInfo)
        .set("infer_us_per_row", inf_us, "us", obs::Direction::kInfo);
  }
  t.print();
  write_bench_json(runner);
  std::printf(
      "\nPaper claims to verify: DecisionTree MAPE < 15%%; training "
      "< 500 ms;\ninference a negligible fraction of one MTTKRP.\n");
  return 0;
}
