// Autotune explorer: inspect what the adaptive launching strategy sees
// and decides for a tensor — its sparsity features, the predicted-vs-
// oracle launch landscape, and the final selection.
//
// Usage:
//   ./build/examples/autotune_explorer [profile-name | path.tns] [mode]
// e.g.
//   ./build/examples/autotune_explorer nell-2 0
//   ./build/examples/autotune_explorer my_tensor.tns 1

#include <cstdio>
#include <cstring>
#include <string>

#include "scalfrag/scalfrag.hpp"

int main(int argc, char** argv) {
  using namespace scalfrag;

  const std::string source = argc > 1 ? argv[1] : "nell-2";
  const order_t mode =
      argc > 2 ? static_cast<order_t>(std::atoi(argv[2])) : 0;

  CooTensor t;
  if (source.size() > 4 && source.ends_with(".tns")) {
    t = read_tns_file(source);
    std::printf("loaded %s\n", source.c_str());
  } else {
    t = make_frostt_tensor(source);
    std::printf("generated Table III stand-in '%s'\n", source.c_str());
  }
  if (mode >= t.order()) {
    std::fprintf(stderr, "mode %d out of range for order-%d tensor\n", mode,
                 t.order());
    return 1;
  }
  t.sort_by_mode(mode);

  // --- features the model consumes -----------------------------------
  const auto feat = TensorFeatures::extract(t, mode);
  const auto vec = feat.to_vector();
  std::printf("\nmode-%d sparsity features:\n", mode);
  for (std::size_t i = 0; i < vec.size(); ++i) {
    std::printf("  %-22s %10.4f\n", TensorFeatures::names()[i], vec[i]);
  }

  // --- train + select --------------------------------------------------
  const auto spec = gpusim::DeviceSpec::rtx3090();
  AutoTuner tuner(spec);
  const auto rep = tuner.train();
  std::printf("\nmodel: %s (test MAPE %.1f%%, trained in %.0f ms)\n",
              rep.model_name.c_str(), rep.mape_test, rep.train_seconds * 1e3);
  const LaunchSelector sel = tuner.selector();
  const Selection s = sel.select(feat);

  // --- predicted vs oracle landscape ----------------------------------
  const index_t rank = sel.rank();
  const gpusim::CostModel cost(spec);
  const auto prof = mttkrp_profile(feat, rank);

  std::printf("\npredicted vs cost-model GFlops over the candidate grid "
              "(block=256 row shown):\n");
  std::printf("  %-8s %12s %12s\n", "grid", "predicted", "oracle");
  for (std::uint32_t grid = 16; grid <= 65536; grid *= 4) {
    gpusim::LaunchConfig cfg{grid, 256, kernel_shmem_bytes(256, rank)};
    if (!gpusim::compute_occupancy(spec, cfg).feasible) continue;
    std::printf("  %-8u %12.1f %12.1f\n", grid,
                sel.predict_gflops(feat, cfg), cost.gflops(cfg, prof));
  }

  double best = 0.0;
  gpusim::LaunchConfig best_cfg;
  for (gpusim::LaunchConfig cfg : gpusim::launch_candidates(spec)) {
    cfg.shmem_per_block = kernel_shmem_bytes(cfg.block, rank);
    if (!gpusim::compute_occupancy(spec, cfg).feasible) continue;
    const double g = cost.gflops(cfg, prof);
    if (g > best) {
      best = g;
      best_cfg = cfg;
    }
  }
  const double achieved = cost.gflops(s.config, prof);
  std::printf(
      "\nselected %s -> %.1f GFlop/s (oracle: %s at %.1f; regret %.1f%%)\n",
      s.config.str().c_str(), achieved, best_cfg.str().c_str(), best,
      100.0 * (1.0 - achieved / best));
  std::printf("selection wall time: %.0f us\n", s.inference_seconds * 1e6);
  return 0;
}
