// Lossy tensor compression via sparse Tucker (HOOI) — the classic
// scientific-data use of the decomposition ParTI also ships.
//
// We take a Table III stand-in, decompose it at a few core sizes, and
// report the storage of (core + factors) against the original COO
// bytes next to the reconstruction fit — the compression/accuracy
// frontier a practitioner tunes.
//
// Build & run:  ./build/examples/compression [profile] (default nell-2)

#include <cstdio>
#include <string>

#include "scalfrag/scalfrag.hpp"

namespace {

std::size_t model_bytes(const scalfrag::TuckerResult& m) {
  std::size_t b = m.core.size() * sizeof(scalfrag::value_t);
  for (const auto& f : m.factors) b += f.bytes();
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scalfrag;

  const std::string name = argc > 1 ? argv[1] : "nell-2";
  // Keep the tensor small: HOOI's projection kernel is O(nnz · Π r).
  const CooTensor x = make_frostt_tensor(name, 1.0 / 2048, 77);
  std::printf("tensor '%s': nnz %s, COO storage %s\n\n", name.c_str(),
              human_count(x.nnz()).c_str(), human_bytes(x.bytes()).c_str());

  ConsoleTable t({"core", "model bytes", "ratio", "fit", "iters"});
  for (index_t r : {2u, 4u, 8u, 16u}) {
    std::vector<index_t> dims(x.order(), r);
    for (order_t m = 0; m < x.order(); ++m) {
      dims[m] = std::min<index_t>(dims[m], x.dim(m));
    }
    const TuckerResult model = tucker_hooi(
        x, ExecConfig{}.core_dims(dims).max_iters(8).tol(1e-4));

    std::string core;
    for (std::size_t m = 0; m < dims.size(); ++m) {
      core += std::to_string(dims[m]);
      if (m + 1 < dims.size()) core += "x";
    }
    const std::size_t bytes = model_bytes(model);
    t.add_row({core, human_bytes(bytes),
               fmt_double(static_cast<double>(x.bytes()) /
                              static_cast<double>(bytes),
                          1) +
                   ":1",
               fmt_double(model.final_fit, 3),
               std::to_string(model.iterations)});
  }
  t.print();
  std::printf(
      "\nLarger cores trade storage for fidelity; for heavy-tailed "
      "FROSTT-like\ndata the fit climbs slowly — exactly why CPD/Tucker "
      "serve as pattern\nminers rather than exact codecs on such "
      "tensors.\n");
  return 0;
}
