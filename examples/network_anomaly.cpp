// Network-traffic anomaly detection via CPD residuals (the intro's
// "cybersecurity" motivation, à la Bruns-Smith et al. [5]).
//
// We synthesize a 4-way (source × destination × port × hour) flow-count
// tensor whose benign traffic is genuinely low-rank: hosts belong to a
// handful of service groups (web tier → app tier on app ports, etc.),
// each group being a (sources × dests × ports × diurnal curve) rank-one
// pattern. A port-scan burst is injected — one source sweeping many
// ports of one destination in one hour — which no low-rank pattern
// explains. CPD-ALS on the simulated GPU fits the benign structure;
// aggregating positive residuals per (source, dest, hour) flags the
// scan at the top of the suspicion list.
//
// Build & run:  ./build/examples/network_anomaly

#include <algorithm>
#include <cstdio>
#include <map>
#include <tuple>
#include <vector>

#include "scalfrag/scalfrag.hpp"

namespace {

using namespace scalfrag;

constexpr index_t kSources = 128;
constexpr index_t kDests = 128;
constexpr index_t kPorts = 256;
constexpr index_t kHours = 24;
constexpr int kGroups = 6;  // service groups → benign rank ≈ 6

constexpr index_t kScanSource = 77;
constexpr index_t kScanDest = 13;
constexpr index_t kScanHour = 3;

double diurnal(index_t h, int group) {
  // Office-hours groups vs nightly-batch groups.
  if (group % 3 == 2) return (h >= 1 && h <= 5) ? 1.0 : 0.1;
  return (h >= 8 && h <= 20) ? 1.0 : 0.15;
}

CooTensor synthesize_traffic(std::uint64_t seed) {
  Rng rng(seed);
  CooTensor t({kSources, kDests, kPorts, kHours});
  // Benign: group g's sources talk to group g's dests on group g's
  // service ports, modulated by the group's diurnal curve. This is a
  // sum of kGroups near-rank-one patterns.
  for (index_t s = 0; s < kSources; ++s) {
    const int g = static_cast<int>(s) % kGroups;
    for (index_t d = static_cast<index_t>(g); d < kDests;
         d += static_cast<index_t>(kGroups) * 4) {
      for (index_t port = static_cast<index_t>(g * 2);
           port < static_cast<index_t>(g * 2 + 2); ++port) {
        for (index_t h = 0; h < kHours; ++h) {
          const double base = 40.0 + 8.0 * (g + 1);
          const double flows =
              base * diurnal(h, g) * (0.9 + 0.2 * rng.next_double());
          if (flows > 6.0) {
            t.push({s, d, port, h}, static_cast<value_t>(flows));
          }
        }
      }
    }
  }
  // The injected port scan: one (src,dst,hour), many ports, few flows
  // each — structurally unlike anything the benign rank explains.
  for (index_t port = 0; port < kPorts; port += 2) {
    t.push({kScanSource, kScanDest, port, kScanHour}, 6.0f);
  }
  t.sort_by_mode(0);
  t.coalesce_duplicates();
  return t;
}

}  // namespace

int main() {
  using namespace scalfrag;

  const CooTensor traffic = synthesize_traffic(2026);
  std::printf("traffic tensor: %u src x %u dst x %u ports x %u hours, %s "
              "flow records\n",
              kSources, kDests, kPorts, kHours,
              human_count(traffic.nnz()).c_str());

  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  AutoTuner tuner(dev.spec());
  tuner.train();
  const LaunchSelector selector = tuner.selector();

  const auto cfg = ExecConfig{}
                       .backend("coo")
                       .rank(12)
                       .max_iters(20)
                       .tol(1e-5)
                       .hybrid_threshold(4);  // scan slices are tiny: CPU them
  const CpdResult model = cpd_als(traffic, cfg, &dev, &selector);
  std::printf("benign-structure CPD fit %.4f (%d iterations)\n\n",
              model.final_fit, model.iterations);

  // Aggregate per-(src, dst, hour) positive relative residuals: a scan
  // is many under-explained entries concentrated in one flow group.
  std::map<std::tuple<index_t, index_t, index_t>, double> suspicion;
  for (nnz_t e = 0; e < traffic.nnz(); ++e) {
    const index_t coord[4] = {traffic.index(0, e), traffic.index(1, e),
                              traffic.index(2, e), traffic.index(3, e)};
    const double pred = cpd_predict(model, coord);
    const double rel = (traffic.value(e) - pred) /
                       (std::abs(pred) + 1.0);
    if (rel > 0.5) {
      suspicion[{coord[0], coord[1], coord[3]}] += rel;
    }
  }
  std::vector<std::pair<double, std::tuple<index_t, index_t, index_t>>> top;
  top.reserve(suspicion.size());
  for (const auto& [key, score] : suspicion) top.emplace_back(score, key);
  std::sort(top.rbegin(), top.rend());

  std::printf("top suspicious (source, dest, hour) flow groups:\n");
  const std::size_t show = std::min<std::size_t>(5, top.size());
  bool scan_is_first = false;
  for (std::size_t i = 0; i < show; ++i) {
    const auto [s, d, h] = top[i].second;
    const bool is_scan =
        s == kScanSource && d == kScanDest && h == kScanHour;
    if (i == 0) scan_is_first = is_scan;
    std::printf("  #%zu  src=%3u dst=%3u hour=%2u  score %8.1f %s\n", i + 1,
                s, d, h, top[i].first, is_scan ? "<-- injected scan" : "");
  }
  if (scan_is_first) {
    std::printf("\n=> port scan isolated by CPD residual analysis\n");
    return 0;
  }
  std::printf("\n=> WARNING: detection weaker than expected\n");
  return 1;
}
