// Computational phenotyping from electronic health records via
// non-negative CPD (the intro's "healthcare" motivation, à la He,
// Henderson & Ho [12]).
//
// We synthesize a (patient × diagnosis × medication) count tensor from
// four planted phenotypes — e.g. "cardiovascular": hypertension-family
// diagnoses co-occurring with beta-blocker-family prescriptions in a
// subpopulation — plus background noise. Non-negative CPD factors the
// counts into interpretable phenotype components; we verify each
// recovered component concentrates its diagnosis and medication mass
// on one planted phenotype's code families.
//
// Build & run:  ./build/examples/phenotyping

#include <algorithm>
#include <cstdio>
#include <vector>

#include "scalfrag/scalfrag.hpp"

namespace {

using namespace scalfrag;

constexpr index_t kPatients = 800;
constexpr index_t kDiagnoses = 200;
constexpr index_t kMedications = 150;
constexpr int kPhenotypes = 4;

// Each phenotype owns a contiguous family of diagnosis and medication
// codes; patients are assigned one dominant phenotype.
index_t diag_family(int ph) { return static_cast<index_t>(ph * 40); }
index_t med_family(int ph) { return static_cast<index_t>(ph * 30); }

CooTensor synthesize_ehr(std::uint64_t seed) {
  Rng rng(seed);
  CooTensor t({kPatients, kDiagnoses, kMedications});
  for (index_t p = 0; p < kPatients; ++p) {
    const int ph = static_cast<int>(p) % kPhenotypes;
    // Dominant phenotype: clustered codes, high counts.
    for (int enc = 0; enc < 12; ++enc) {
      const auto d = diag_family(ph) +
                     static_cast<index_t>(rng.next_below(12));
      const auto m =
          med_family(ph) + static_cast<index_t>(rng.next_below(10));
      t.push({p, d, m}, 1.0f + static_cast<value_t>(rng.next_below(3)));
    }
    // Background noise: anything, low counts.
    for (int enc = 0; enc < 3; ++enc) {
      const auto d = static_cast<index_t>(rng.next_below(kDiagnoses));
      const auto m = static_cast<index_t>(rng.next_below(kMedications));
      t.push({p, d, m}, 1.0f);
    }
  }
  t.sort_by_mode(0);
  t.coalesce_duplicates();
  return t;
}

/// Fraction of a factor column's mass inside phenotype `ph`'s family.
double family_mass(const DenseMatrix& factor, index_t f, index_t base,
                   index_t width) {
  double inside = 0.0, total = 0.0;
  for (index_t i = 0; i < factor.rows(); ++i) {
    const double v = std::abs(factor(i, f));
    total += v;
    if (i >= base && i < base + width) inside += v;
  }
  return total > 0 ? inside / total : 0.0;
}

}  // namespace

int main() {
  using namespace scalfrag;

  const CooTensor ehr = synthesize_ehr(314);
  std::printf(
      "EHR tensor: %u patients x %u diagnoses x %u medications, %s "
      "records\n",
      kPatients, kDiagnoses, kMedications, human_count(ehr.nnz()).c_str());

  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  AutoTuner tuner(dev.spec());
  tuner.train();
  const LaunchSelector selector = tuner.selector();

  // Slightly overcomplete rank: ALS from a random start can park two
  // components on one phenotype; spare components absorb that without
  // leaving any phenotype uncovered. nonneg(): counts → parts-based
  // factors.
  const auto cfg = ExecConfig{}
                       .backend("coo")
                       .rank(kPhenotypes + 2)
                       .max_iters(25)
                       .tol(1e-5)
                       .nonneg();
  const CpdResult model = cpd_als(ehr, cfg, &dev, &selector);
  std::printf("non-negative CPD fit %.4f (%d iterations, %.2f ms simulated "
              "MTTKRP)\n\n",
              model.final_fit, model.iterations, model.mttkrp_sim_ns / 1e6);

  // For each planted phenotype, find the component whose diagnosis AND
  // medication mass concentrate on that phenotype's code families.
  std::printf("phenotype -> best component (diagnosis / medication family "
              "concentration):\n");
  int clean = 0;
  for (int ph = 0; ph < kPhenotypes; ++ph) {
    index_t best_f = 0;
    double best_score = -1.0;
    for (index_t f = 0; f < model.factors[1].cols(); ++f) {
      const double diag = family_mass(model.factors[1], f, diag_family(ph),
                                      40);
      const double med = family_mass(model.factors[2], f, med_family(ph),
                                     30);
      const double score = std::min(diag, med);
      if (score > best_score) {
        best_score = score;
        best_f = f;
      }
    }
    const double diag = family_mass(model.factors[1], best_f,
                                    diag_family(ph), 40);
    const double med = family_mass(model.factors[2], best_f, med_family(ph),
                                   30);
    std::printf("  phenotype %d -> component %u  (diag %.0f%%, med %.0f%%)\n",
                ph, best_f, 100.0 * diag, 100.0 * med);
    clean += best_score > 0.6;
  }
  std::printf("\n%d/%d phenotypes recovered as clean components\n", clean,
              kPhenotypes);
  if (clean == kPhenotypes) {
    std::printf("=> phenotyping succeeded\n");
    return 0;
  }
  std::printf("=> WARNING: phenotype recovery incomplete\n");
  return 1;
}
