// Quickstart: the smallest end-to-end use of the ScalFrag public API.
//
//   1. get a sparse tensor (here: the "nips" Table III stand-in);
//   2. train the adaptive-launch model once (offline phase, <0.5 s);
//   3. run one MTTKRP through the pipelined executor;
//   4. run a full CPD-ALS decomposition on the simulated GPU.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "scalfrag/scalfrag.hpp"

int main() {
  using namespace scalfrag;

  // 1. A sparse tensor. Swap in read_tns_file("path.tns") for real data.
  CooTensor x = make_frostt_tensor("nips");
  std::printf("tensor: order %d, nnz %s, density %s\n", x.order(),
              human_count(x.nnz()).c_str(), fmt_density(x.density()).c_str());

  // 2. Simulated RTX 3090 + one-off autotuner training.
  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  AutoTuner tuner(dev.spec());
  const TrainingReport rep = tuner.train();
  std::printf("autotuner: %s trained in %.0f ms, test MAPE %.1f%%\n",
              rep.model_name.c_str(), rep.train_seconds * 1e3, rep.mape_test);
  const LaunchSelector selector = tuner.selector();

  // 3. One mode-0 MTTKRP through the full pipeline.
  const index_t rank = 16;
  Rng rng(1);
  FactorList factors;
  for (order_t m = 0; m < x.order(); ++m) {
    DenseMatrix f(x.dim(m), rank);
    f.randomize(rng);
    factors.push_back(std::move(f));
  }
  PipelineExecutor exec(dev, &selector);
  const PipelineResult r = exec.run(x, factors, /*mode=*/0);
  std::printf(
      "MTTKRP: %.1f us simulated (%zu segments, launch %s, overlap saved "
      "%.1f us)\n",
      r.total_ns / 1e3, r.plan.size(), r.launches.at(0).str().c_str(),
      r.breakdown.overlap_saved() / 1e3);

  // 4. Full CPD on the simulated device — one ExecConfig carries the
  // backend and every decomposition knob (v2 driver surface).
  const auto cfg = ExecConfig{}.backend("coo").rank(8).max_iters(10);
  const CpdResult model = cpd_als(x, cfg, &dev, &selector);
  std::printf("CPD: fit %.4f after %d iterations, %.2f ms simulated MTTKRP "
              "(backend %s)\n",
              model.final_fit, model.iterations, model.mttkrp_sim_ns / 1e6,
              model.info.backend.c_str());
  return 0;
}
