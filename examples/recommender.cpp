// Context-aware recommendation via CPD (the intro's "recommended
// systems" motivation, à la TFMAP [29]).
//
// We synthesize a (user × item × time-of-day) ratings tensor with three
// planted taste communities — each community of users rates its own
// item cluster highly in its favourite time slot — plus background
// noise. CPD-ALS on the simulated GPU recovers the communities, and the
// factors then score unseen (user, item, time) triples: candidates
// inside a user's community rank above random ones.
//
// Build & run:  ./build/examples/recommender

#include <algorithm>
#include <cstdio>
#include <vector>

#include "scalfrag/scalfrag.hpp"

namespace {

using namespace scalfrag;

constexpr index_t kUsers = 600;
constexpr index_t kItems = 400;
constexpr index_t kSlots = 8;
constexpr int kCommunities = 3;

index_t community_of_user(index_t u) { return u % kCommunities; }
index_t community_of_item(index_t i) { return i % kCommunities; }
index_t slot_of_community(index_t c) { return static_cast<index_t>(c * 2); }

CooTensor synthesize_ratings(std::uint64_t seed, nnz_t n_ratings) {
  Rng rng(seed);
  CooTensor t({kUsers, kItems, kSlots});
  t.reserve(n_ratings);
  for (nnz_t e = 0; e < n_ratings; ++e) {
    const auto u = static_cast<index_t>(rng.next_below(kUsers));
    index_t item, slot;
    float rating;
    if (rng.next_double() < 0.8) {
      // In-community rating: own item cluster, favourite slot, 4-5 stars.
      const index_t c = community_of_user(u);
      item = static_cast<index_t>(rng.next_below(kItems / kCommunities)) *
                 kCommunities +
             c;
      slot = slot_of_community(c);
      rating = 4.0f + rng.next_float();
    } else {
      // Exploration noise: anything, 1-3 stars.
      item = static_cast<index_t>(rng.next_below(kItems));
      slot = static_cast<index_t>(rng.next_below(kSlots));
      rating = 1.0f + 2.0f * rng.next_float();
    }
    t.push({u, item, slot}, rating);
  }
  t.sort_by_mode(0);
  t.coalesce_duplicates();
  return t;
}

}  // namespace

int main() {
  using namespace scalfrag;

  const CooTensor ratings = synthesize_ratings(7, 60000);
  std::printf("ratings tensor: %u users x %u items x %u slots, %s ratings\n",
              kUsers, kItems, kSlots, human_count(ratings.nnz()).c_str());

  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  AutoTuner tuner(dev.spec());
  tuner.train();
  const LaunchSelector selector = tuner.selector();

  const auto cfg =
      ExecConfig{}.backend("coo").rank(12).max_iters(15).tol(1e-5);
  const CpdResult model = cpd_als(ratings, cfg, &dev, &selector);
  std::printf("CPD fit %.4f in %d iterations (%.2f ms simulated MTTKRP)\n\n",
              model.final_fit, model.iterations, model.mttkrp_sim_ns / 1e6);

  // Recommendation check: for a sample of users, score one in-community
  // candidate vs one out-of-community candidate at the community's slot.
  int correct = 0, total = 0;
  Rng rng(99);
  for (index_t u = 0; u < kUsers; u += 17) {
    const index_t c = community_of_user(u);
    const index_t good_item =
        static_cast<index_t>(rng.next_below(kItems / kCommunities)) *
            kCommunities +
        c;
    index_t bad_item;
    do {
      bad_item = static_cast<index_t>(rng.next_below(kItems));
    } while (community_of_item(bad_item) == c);
    const index_t slot = slot_of_community(c);

    const index_t good[3] = {u, good_item, slot};
    const index_t bad[3] = {u, bad_item, slot};
    correct += cpd_predict(model, good) > cpd_predict(model, bad);
    ++total;
  }
  std::printf(
      "pairwise ranking accuracy (in-community vs out-of-community "
      "candidates): %d/%d = %.0f%%\n",
      correct, total, 100.0 * correct / total);

  if (correct * 100 >= total * 80) {
    std::printf("=> factors recovered the planted taste communities\n");
  } else {
    std::printf("=> WARNING: community recovery weaker than expected\n");
  }
  return correct * 100 >= total * 80 ? 0 : 1;
}
