// scalfrag_cli — run MTTKRP / CPD on any tensor from the command line.
//
// Usage:
//   scalfrag_cli mttkrp [--input name|file.tns] [--mode N] [--rank F]
//                [--segments K|auto] [--streams S] [--backend scalfrag|parti]
//                [--hybrid THRESH] [--no-shared-mem] [--no-adaptive]
//                [--trace out.json]
//   scalfrag_cli cpd    [--input ...] [--rank F] [--iters N] [--nonneg]
//                [--backend reference|parti|scalfrag]
//   scalfrag_cli info   [--input ...] [--mode N]
//
// `--input` takes a Table III profile name (default "nell-2") or a
// FROSTT .tns path. Everything runs on the simulated RTX 3090.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "parti/parti_executor.hpp"
#include "scalfrag/scalfrag.hpp"
#include "tensor/stats.hpp"

namespace {

using namespace scalfrag;

struct Args {
  std::string command;
  std::map<std::string, std::string> kv;
  std::map<std::string, bool> flags;

  std::string get(const std::string& key, const std::string& dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : it->second;
  }
  long get_long(const std::string& key, long dflt) const {
    const auto it = kv.find(key);
    return it == kv.end() ? dflt : std::stol(it->second);
  }
  bool has(const std::string& flag) const { return flags.count(flag) > 0; }
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc > 1) a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string s = argv[i];
    if (s.rfind("--", 0) != 0) throw Error("unexpected argument: " + s);
    s = s.substr(2);
    const bool value_opt = s == "input" || s == "mode" || s == "rank" ||
                           s == "segments" || s == "streams" ||
                           s == "backend" || s == "hybrid" || s == "iters" ||
                           s == "trace";
    if (value_opt) {
      SF_CHECK(i + 1 < argc, "--" + s + " needs a value");
      a.kv[s] = argv[++i];
    } else {
      a.flags[s] = true;
    }
  }
  return a;
}

CooTensor load_input(const Args& a) {
  const std::string input = a.get("input", "nell-2");
  if (input.size() > 4 && input.ends_with(".tns")) {
    std::printf("loading %s ...\n", input.c_str());
    return read_tns_file(input);
  }
  return make_frostt_tensor(input);
}

FactorList random_factors(const CooTensor& t, index_t rank) {
  Rng rng(1);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

int cmd_info(const Args& a) {
  CooTensor t = load_input(a);
  const auto mode = static_cast<order_t>(a.get_long("mode", 0));
  SF_CHECK(mode < t.order(), "mode out of range");
  const auto feat = TensorFeatures::extract(t, mode);
  std::printf("order %d  nnz %s  density %s  bytes %s\n", t.order(),
              human_count(t.nnz()).c_str(), fmt_density(t.density()).c_str(),
              human_bytes(t.bytes()).c_str());
  const auto v = feat.to_vector();
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::printf("  %-22s %10.4f\n", TensorFeatures::names()[i], v[i]);
  }
  std::printf("\n%s", stats_report(t).c_str());
  return 0;
}

int cmd_mttkrp(const Args& a) {
  CooTensor t = load_input(a);
  const auto mode = static_cast<order_t>(a.get_long("mode", 0));
  const auto rank = static_cast<index_t>(a.get_long("rank", 16));
  SF_CHECK(mode < t.order(), "mode out of range");
  t.sort_by_mode(mode);
  const FactorList factors = random_factors(t, rank);

  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  const std::string backend = a.get("backend", "scalfrag");

  if (backend == "parti") {
    const auto r = parti::run_mttkrp(dev, t, factors, mode);
    std::printf("ParTI MTTKRP: %.1f us simulated (H2D %.1f, kernel %.1f, "
                "D2H %.1f), launch %s\n",
                r.total_ns / 1e3, r.breakdown.h2d / 1e3,
                r.breakdown.kernel / 1e3, r.breakdown.d2h / 1e3,
                r.launch.str().c_str());
  } else if (backend == "scalfrag") {
    AutoTuner tuner(dev.spec(), {.rank = rank});
    tuner.train();
    const LaunchSelector sel = tuner.selector();
    PipelineExecutor exec(dev, &sel);
    ExecConfig opt;
    const std::string segs = a.get("segments", "auto");
    opt.num_segments = segs == "auto" ? 0 : std::stoi(segs);
    opt.num_streams = static_cast<int>(a.get_long("streams", 4));
    opt.use_shared_mem = !a.has("no-shared-mem");
    opt.adaptive_launch = !a.has("no-adaptive");
    opt.hybrid_cpu_threshold =
        static_cast<nnz_t>(a.get_long("hybrid", 0));
    const auto r = exec.run(t, factors, mode, opt);
    std::printf("ScalFrag MTTKRP: %.1f us simulated (%zu segments, overlap "
                "saved %.1f us, selection %.0f us host)\n",
                r.total_ns / 1e3, r.plan.size(),
                r.breakdown.overlap_saved() / 1e3,
                r.selection_seconds * 1e6);
    if (!r.launches.empty()) {
      std::printf("  first segment launch: %s\n",
                  r.launches[0].str().c_str());
    }
  } else {
    throw Error("unknown backend: " + backend);
  }

  const std::string trace = a.get("trace", "");
  if (!trace.empty()) {
    gpusim::write_chrome_trace_file(trace, dev);
    std::printf("trace written to %s\n", trace.c_str());
  }
  return 0;
}

int cmd_cpd(const Args& a) {
  CooTensor t = load_input(a);
  auto cfg = ExecConfig{}
                 .rank(static_cast<index_t>(a.get_long("rank", 16)))
                 .max_iters(static_cast<int>(a.get_long("iters", 10)))
                 .nonneg(a.has("nonneg"));
  const std::string backend = a.get("backend", "scalfrag");
  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());

  if (backend == "reference") {
    const auto r = cpd_als(t, cfg.backend("coo_host"));
    std::printf("CPD fit %.4f in %d iterations (host reference)\n",
                r.final_fit, r.iterations);
    return 0;
  }
  if (backend == "parti") {
    const auto r = cpd_als(t, cfg.backend("parti"), &dev);
    std::printf("CPD fit %.4f in %d iterations, %.2f ms simulated MTTKRP "
                "(%d calls)\n",
                r.final_fit, r.iterations, r.mttkrp_sim_ns / 1e6,
                r.mttkrp_calls);
    return 0;
  }
  SF_CHECK(backend == "scalfrag", "unknown backend: " + backend);
  AutoTuner tuner(dev.spec(), {.rank = cfg.decomp_rank});
  tuner.train();
  const LaunchSelector sel = tuner.selector();
  const auto r = cpd_als(t, cfg.backend("coo"), &dev, &sel);
  std::printf("CPD fit %.4f in %d iterations, %.2f ms simulated MTTKRP "
              "(%d calls, backend %s)\n",
              r.final_fit, r.iterations, r.mttkrp_sim_ns / 1e6,
              r.mttkrp_calls, r.info.backend.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse(argc, argv);
    if (a.command == "info") return cmd_info(a);
    if (a.command == "mttkrp") return cmd_mttkrp(a);
    if (a.command == "cpd") return cmd_cpd(a);
    std::fprintf(stderr,
                 "usage: scalfrag_cli <info|mttkrp|cpd> [options]\n"
                 "see the header of examples/scalfrag_cli.cpp\n");
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
