// scalfrag_serve — the multi-tenant decomposition service, driven from
// the command line: submit a batch of CPD / Tucker / MTTKRP jobs from
// multiple weighted tenants against a shared simulated device group,
// with admission control and a plan cache amortizing preparation
// across jobs.
//
// Usage:
//   scalfrag_serve [--devices N] [--jobs specs.json] [--budget-mib M]
//                  [--report out.json]
//
// `--jobs` takes a JSON array of JobSpec objects (docs/service.md has
// the schema; JobSpec::to_json prints it). Without it, a built-in
// demo mix runs: two tenants with 3:1 weights sharing tensors, so the
// output shows WRR interleaving, admission verdicts, and cache hits.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "scalfrag/scalfrag.hpp"
#include "service/service.hpp"

namespace {

using namespace scalfrag;
using namespace scalfrag::service;

std::vector<JobSpec> demo_mix() {
  std::vector<JobSpec> jobs;
  const auto add = [&](const std::string& tenant, int weight, JobKind kind,
                       const std::string& tensor, ExecConfig cfg) {
    JobSpec s;
    s.tenant = tenant;
    s.weight = weight;
    s.kind = kind;
    s.tensor = tensor;
    s.scale = 1.0 / 512;
    s.exec = std::move(cfg);
    jobs.push_back(std::move(s));
  };

  // Tenant "prod" (weight 3): repeated CPD + MTTKRP on the same two
  // recipes — the plan cache pays off from the second job on.
  add("prod", 3, JobKind::Cpd, "nips",
      ExecConfig{}.backend("coo").rank(16).max_iters(5));
  add("prod", 3, JobKind::Mttkrp, "nips", ExecConfig{}.backend("coo").rank(16));
  add("prod", 3, JobKind::Cpd, "uber",
      ExecConfig{}.backend("auto").rank(16).max_iters(5));
  add("prod", 3, JobKind::Mttkrp, "nips", ExecConfig{}.backend("coo").rank(16));
  add("prod", 3, JobKind::Cpd, "nips",
      ExecConfig{}.backend("coo").rank(16).max_iters(5));

  // Tenant "research" (weight 1): a Tucker job, an auto-selected
  // MTTKRP, and one job sized to fail admission.
  // Scaled nips is {21, 24, 118, 2}: core dims must fit each mode.
  add("research", 1, JobKind::Tucker, "nips",
      ExecConfig{}.core_dims({4, 4, 4, 2}).max_iters(4));
  add("research", 1, JobKind::Mttkrp, "uber",
      ExecConfig{}.backend("auto").rank(16));
  add("research", 1, JobKind::Mttkrp, "vast",
      ExecConfig{}.backend("coo").rank(64).memory_budget(1 << 20));
  return jobs;
}

std::vector<JobSpec> load_jobs(const std::string& path) {
  const obs::JsonValue v = obs::JsonValue::parse_file(path);
  std::vector<JobSpec> jobs;
  for (const obs::JsonValue& j : v.as_array()) {
    jobs.push_back(JobSpec::from_json(j));
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  int devices = 2;
  std::string jobs_path;
  std::string report_path;
  std::size_t budget_bytes = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    const auto need = [&](const char* opt) {
      SF_CHECK(i + 1 < argc, std::string(opt) + " needs a value");
      return std::string(argv[++i]);
    };
    if (s == "--devices") {
      devices = std::stoi(need("--devices"));
    } else if (s == "--jobs") {
      jobs_path = need("--jobs");
    } else if (s == "--budget-mib") {
      budget_bytes = std::stoull(need("--budget-mib")) << 20;
    } else if (s == "--report") {
      report_path = need("--report");
    } else {
      std::fprintf(stderr, "unknown option: %s\n", s.c_str());
      return 2;
    }
  }

  const std::vector<JobSpec> jobs =
      jobs_path.empty() ? demo_mix() : load_jobs(jobs_path);
  std::printf("scalfrag_serve: %zu jobs, %d simulated device(s)\n\n",
              jobs.size(), devices);

  DecompositionService svc({.num_devices = devices,
                            .device_budget_bytes = budget_bytes});
  const std::vector<JobResult> results = svc.run_batch(jobs);

  std::printf("%4s %-10s %-7s %-7s %-10s %4s %5s %5s %10s  %s\n", "seq",
              "tenant", "kind", "tensor", "backend", "dev", "tcach",
              "pcach", "sim (us)", "state");
  for (const JobResult& r : results) {
    std::printf("%4llu %-10s %-7s %-7s %-10s %4d %5s %5s %10.1f  %s%s%s\n",
                static_cast<unsigned long long>(r.dispatch_seq),
                r.spec.tenant.c_str(), job_kind_name(r.spec.kind),
                r.spec.tensor.c_str(),
                r.info.backend.empty() ? "-" : r.info.backend.c_str(),
                r.device, r.tensor_cache_hit ? "hit" : "-",
                r.plan_cache_hit ? "hit" : "-",
                static_cast<double>(r.sim_cost_ns) / 1e3,
                job_state_name(r.state), r.error.empty() ? "" : ": ",
                r.error.c_str());
  }

  const ServiceStats st = svc.stats();
  std::printf(
      "\ncompleted %llu  rejected %llu  failed %llu  "
      "plan-cache %llu hit / %llu miss\n"
      "sim makespan %.1f us  jobs/s (sim) %.1f  "
      "p50 %.1f us  p99 %.1f us\n",
      static_cast<unsigned long long>(st.completed),
      static_cast<unsigned long long>(st.rejected),
      static_cast<unsigned long long>(st.failed),
      static_cast<unsigned long long>(st.cache_hits),
      static_cast<unsigned long long>(st.cache_misses),
      static_cast<double>(st.makespan_ns) / 1e3, st.jobs_per_sec_sim,
      static_cast<double>(st.p50_latency_ns) / 1e3,
      static_cast<double>(st.p99_latency_ns) / 1e3);

  if (!report_path.empty()) {
    std::ofstream out(report_path);
    out << svc.report_json();
    std::printf("\nwrote %s\n", report_path.c_str());
  }
  return st.failed == 0 ? 0 : 1;
}
