#include "common/cpu_caps.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/error.hpp"

namespace scalfrag {

namespace {

bool cpu_supports(HostIsa isa) {
  switch (isa) {
    case HostIsa::Auto:
    case HostIsa::Scalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case HostIsa::Avx2:
      return __builtin_cpu_supports("avx2");
    case HostIsa::Avx512:
      return __builtin_cpu_supports("avx512f");
#else
    case HostIsa::Avx2:
    case HostIsa::Avx512:
      return false;
#endif
  }
  return false;
}

bool compiled_in(HostIsa isa) {
  switch (isa) {
    case HostIsa::Auto:
    case HostIsa::Scalar:
      return true;
    case HostIsa::Avx2:
#if defined(SCALFRAG_HAVE_AVX2)
      return true;
#else
      return false;
#endif
    case HostIsa::Avx512:
#if defined(SCALFRAG_HAVE_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

HostIsa detect_uncached() {
  if (const char* env = std::getenv("SCALFRAG_HOST_ISA")) {
    const HostIsa forced = host_isa_from_name(env);
    SF_CHECK(forced != HostIsa::Auto,
             "SCALFRAG_HOST_ISA must name a concrete ISA "
             "(scalar, avx2, avx512)");
    SF_CHECK(host_isa_supported(forced),
             std::string("SCALFRAG_HOST_ISA=") + env +
                 " is not supported by this build/CPU");
    return forced;
  }
  if (host_isa_supported(HostIsa::Avx512)) return HostIsa::Avx512;
  if (host_isa_supported(HostIsa::Avx2)) return HostIsa::Avx2;
  return HostIsa::Scalar;
}

/// "0-3,8,10-11" → CPU ids appended to `out`.
void parse_cpulist(const std::string& list, int node,
                   std::vector<std::pair<int, int>>& out) {
  std::istringstream in(list);
  std::string range;
  while (std::getline(in, range, ',')) {
    if (range.empty()) continue;
    const std::size_t dash = range.find('-');
    const int lo = std::atoi(range.c_str());
    const int hi = dash == std::string::npos
                       ? lo
                       : std::atoi(range.c_str() + dash + 1);
    for (int c = lo; c <= hi; ++c) out.emplace_back(c, node);
  }
}

CpuTopology detect_topology() {
  CpuTopology topo;
  const unsigned hw = std::thread::hardware_concurrency();
  topo.logical_cpus = hw == 0 ? 1 : static_cast<int>(hw);

  std::vector<std::pair<int, int>> cpu_node;  // (cpu, node)
  for (int node = 0;; ++node) {
    std::ifstream f("/sys/devices/system/node/node" + std::to_string(node) +
                    "/cpulist");
    if (!f) break;
    std::string list;
    std::getline(f, list);
    parse_cpulist(list, node, cpu_node);
    topo.numa_nodes = node + 1;
  }

  topo.node_of_cpu.assign(static_cast<std::size_t>(topo.logical_cpus), 0);
  for (const auto& [cpu, node] : cpu_node) {
    if (cpu >= 0 && cpu < topo.logical_cpus) {
      topo.node_of_cpu[static_cast<std::size_t>(cpu)] = node;
    }
  }
  if (topo.numa_nodes < 1) topo.numa_nodes = 1;
  return topo;
}

}  // namespace

const char* host_isa_name(HostIsa isa) {
  switch (isa) {
    case HostIsa::Auto: return "auto";
    case HostIsa::Scalar: return "scalar";
    case HostIsa::Avx2: return "avx2";
    case HostIsa::Avx512: return "avx512";
  }
  return "?";
}

HostIsa host_isa_from_name(const std::string& name) {
  if (name == "auto") return HostIsa::Auto;
  if (name == "scalar") return HostIsa::Scalar;
  if (name == "avx2") return HostIsa::Avx2;
  if (name == "avx512") return HostIsa::Avx512;
  throw Error("unknown host ISA \"" + name +
              "\" (expected auto, scalar, avx2, or avx512)");
}

int host_isa_lanes(HostIsa isa) {
  switch (isa) {
    case HostIsa::Auto: return host_isa_lanes(detect_host_isa());
    case HostIsa::Scalar: return 1;
    case HostIsa::Avx2: return 8;
    case HostIsa::Avx512: return 16;
  }
  return 1;
}

bool host_isa_supported(HostIsa isa) {
  return compiled_in(isa) && cpu_supports(isa);
}

HostIsa detect_host_isa() {
  static const HostIsa detected = detect_uncached();
  return detected;
}

HostIsa resolve_host_isa(HostIsa request) {
  if (request == HostIsa::Auto) return detect_host_isa();
  SF_CHECK(host_isa_supported(request),
           std::string("host ISA ") + host_isa_name(request) +
               " is not supported by this build/CPU (see "
               "host_isa_supported)");
  return request;
}

const char* pin_policy_name(PinPolicy p) {
  switch (p) {
    case PinPolicy::None: return "none";
    case PinPolicy::Compact: return "compact";
    case PinPolicy::Scatter: return "scatter";
  }
  return "?";
}

PinPolicy pin_policy_from_name(const std::string& name) {
  if (name == "none") return PinPolicy::None;
  if (name == "compact") return PinPolicy::Compact;
  if (name == "scatter") return PinPolicy::Scatter;
  throw Error("unknown pin policy \"" + name +
              "\" (expected none, compact, or scatter)");
}

const CpuTopology& cpu_topology() {
  static const CpuTopology topo = detect_topology();
  return topo;
}

}  // namespace scalfrag
