#pragma once
// Host CPU capabilities: which SIMD instruction set the rank-tile
// microkernels (src/tensor/simd/) may dispatch to, and what the machine
// topology looks like for thread placement.
//
// This lives in the common layer on purpose: the observability layer
// stamps every BENCH_*.json with the detected ISA / topology (so
// bench_compare can refuse to gate apples against oranges), and the
// tensor layer's kernel tables key off the same enum — neither may
// depend on the other.
//
// Two build-time facts feed detection:
//   * SCALFRAG_HAVE_AVX2 / SCALFRAG_HAVE_AVX512 — the corresponding
//     kernel translation unit was compiled (per-TU -mavx2/-mavx512f;
//     see src/CMakeLists.txt). Absent on non-x86 targets or compilers
//     without the flags.
//   * __builtin_cpu_supports at runtime — the executing CPU actually
//     has the instructions. Both must hold for an ISA to be supported.
//
// The SCALFRAG_HOST_ISA environment variable ("scalar", "avx2",
// "avx512") overrides what Auto resolves to — the generic-arch CI job
// uses it to push the whole suite through the scalar fallback.

#include <string>
#include <vector>

namespace scalfrag {

/// Instruction set of the host microkernel tables. Auto is a request
/// ("pick the best supported"), never a resolved value.
enum class HostIsa { Auto, Scalar, Avx2, Avx512 };

const char* host_isa_name(HostIsa isa);
/// Inverse of host_isa_name ("auto" included); throws on unknown names.
HostIsa host_isa_from_name(const std::string& name);

/// Number of value_t (float) lanes of one vector of the ISA: 1/8/16.
/// Auto reports the lanes of detect_host_isa().
int host_isa_lanes(HostIsa isa);

/// True when the ISA can actually run here: the kernel TU was compiled
/// in AND the executing CPU advertises the instructions. Scalar and
/// Auto are always supported.
bool host_isa_supported(HostIsa isa);

/// The ISA Auto resolves to: $SCALFRAG_HOST_ISA if set (throws on an
/// unknown or unsupported name — a silent fallback would invalidate
/// forced-ISA CI runs), else the widest supported ISA. Cached after the
/// first call.
HostIsa detect_host_isa();

/// Resolve a request: Auto → detect_host_isa(); anything else is
/// returned as-is after a support check (throws when unsupported).
HostIsa resolve_host_isa(HostIsa request);

/// Worker-to-core affinity policy of the thread pool (see
/// ThreadPool::apply_pinning).
enum class PinPolicy {
  /// Leave placement to the OS scheduler (and undo prior pinning when
  /// applied explicitly).
  None,
  /// Worker i → logical CPU (i mod cpus): dense packing, adjacent
  /// workers share caches — the default choice for the memory-bound
  /// MTTKRP inner loops.
  Compact,
  /// Workers round-robin across NUMA nodes first: maximizes aggregate
  /// memory bandwidth when per-worker scratch is first-touched locally
  /// (the PrivateReduce buffers are).
  Scatter,
};

const char* pin_policy_name(PinPolicy p);
/// Inverse of pin_policy_name; throws on unknown names.
PinPolicy pin_policy_from_name(const std::string& name);

/// Core/NUMA layout of the machine. Parsed once from
/// /sys/devices/system/node/ on Linux; other platforms (and containers
/// that hide the sysfs tree) report a single node spanning every CPU.
struct CpuTopology {
  int logical_cpus = 1;
  int numa_nodes = 1;
  /// node_of_cpu[c] = NUMA node of logical CPU c (size logical_cpus).
  std::vector<int> node_of_cpu;
};

const CpuTopology& cpu_topology();

}  // namespace scalfrag
