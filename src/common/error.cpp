#include "common/error.hpp"

#include <sstream>

namespace scalfrag {

DeviceOutOfMemory::DeviceOutOfMemory(std::size_t requested,
                                     std::size_t available)
    : Error("simulated device out of memory: requested " +
            std::to_string(requested) + " B, " + std::to_string(available) +
            " B free"),
      requested_(requested),
      available_(available) {}

namespace detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "SF_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace scalfrag
