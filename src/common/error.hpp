#pragma once
// Error handling for ScalFrag.
//
// Library code throws scalfrag::Error (an std::runtime_error) for
// recoverable misuse (bad arguments, malformed files, simulated
// out-of-device-memory). SF_CHECK is for API-boundary validation and is
// always on; SF_ASSERT documents internal invariants and compiles to a
// check in all build types as well — the library is not hot enough on the
// host side for assertion cost to matter, and silent corruption in a
// research artifact is worse than a branch.

#include <stdexcept>
#include <string>

namespace scalfrag {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by the simulated device allocator when capacity is exhausted.
class DeviceOutOfMemory : public Error {
 public:
  DeviceOutOfMemory(std::size_t requested, std::size_t available);
  std::size_t requested() const noexcept { return requested_; }
  std::size_t available() const noexcept { return available_; }

 private:
  std::size_t requested_;
  std::size_t available_;
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace scalfrag

#define SF_CHECK(expr, msg)                                               \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::scalfrag::detail::throw_check_failure(#expr, __FILE__, __LINE__,  \
                                              (msg));                     \
    }                                                                     \
  } while (0)

#define SF_ASSERT(expr, msg) SF_CHECK(expr, msg)
