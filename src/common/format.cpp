#include "common/format.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace scalfrag {

std::string human_count(std::uint64_t n) {
  const char* suffix[] = {"", "K", "M", "B"};
  double v = static_cast<double>(n);
  int s = 0;
  while (v >= 1000.0 && s < 3) {
    v /= 1000.0;
    ++s;
  }
  char buf[32];
  if (s == 0) {
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(n));
  } else if (v < 10.0 && std::fmod(v, 1.0) > 1e-9) {
    std::snprintf(buf, sizeof buf, "%.1f%s", v, suffix[s]);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f%s", v, suffix[s]);
  }
  return buf;
}

std::string human_bytes(std::uint64_t bytes) {
  const char* suffix[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int s = 0;
  while (v >= 1024.0 && s < 4) {
    v /= 1024.0;
    ++s;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f %s", v, suffix[s]);
  return buf;
}

std::string fmt_double(double v, int max_prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", max_prec, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string fmt_density(double d) {
  if (d <= 0.0) return "0";
  const int exp = static_cast<int>(std::floor(std::log10(d)));
  const double mant = d / std::pow(10.0, exp);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.1fe%d", mant, exp);
  return buf;
}

ConsoleTable::ConsoleTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SF_CHECK(!headers_.empty(), "table needs at least one column");
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  SF_CHECK(cells.size() == headers_.size(),
           "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string ConsoleTable::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(width[c] - cells[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void ConsoleTable::print() const { std::cout << str() << std::flush; }

}  // namespace scalfrag
