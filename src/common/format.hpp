#pragma once
// Human-readable formatting helpers and a fixed-width console table
// printer used by the benchmark harnesses to emit paper-shaped rows.

#include <cstdint>
#include <string>
#include <vector>

namespace scalfrag {

/// "26M", "113M", "3.2K" — the style Table III uses for nnz counts.
std::string human_count(std::uint64_t n);

/// "24.3 GB/s", "936.2 GB/s"-style byte counts ("24.0 GB", "128 KB").
std::string human_bytes(std::uint64_t bytes);

/// Fixed precision without trailing-zero noise ("1.3", "2.25").
std::string fmt_double(double v, int max_prec = 3);

/// Scientific-ish density formatting like the paper's "6.9 × 10-3".
std::string fmt_density(double d);

/// Simple console table: set headers, add rows, print with padding.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Render with column alignment; returns the full string.
  std::string str() const;
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace scalfrag
