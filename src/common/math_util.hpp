#pragma once
// Small integer/float helpers used across the codebase.

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace scalfrag {

template <typename T, typename U>
constexpr auto ceil_div(T a, U b) noexcept {
  static_assert(std::is_integral_v<T> && std::is_integral_v<U>);
  return (a + b - 1) / b;
}

template <typename T, typename U>
constexpr auto round_up(T a, U multiple) noexcept {
  return ceil_div(a, multiple) * multiple;
}

constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  if (x <= 1) return 1;
  --x;
  x |= x >> 1;
  x |= x >> 2;
  x |= x >> 4;
  x |= x >> 8;
  x |= x >> 16;
  x |= x >> 32;
  return x + 1;
}

template <typename T>
constexpr T clamp(T v, T lo, T hi) noexcept {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Relative difference |a-b| / max(|a|,|b|,eps); symmetric, scale-free.
inline double rel_diff(double a, double b, double eps = 1e-30) noexcept {
  const double m = [&] {
    double aa = a < 0 ? -a : a;
    double bb = b < 0 ? -b : b;
    double mm = aa > bb ? aa : bb;
    return mm > eps ? mm : eps;
  }();
  const double d = a - b;
  return (d < 0 ? -d : d) / m;
}

}  // namespace scalfrag
