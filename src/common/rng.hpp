#pragma once
// Deterministic, splittable random number generation.
//
// Everything in ScalFrag that needs randomness (synthetic tensor
// generators, factor initialization, ML bootstrap sampling) goes through
// Xoshiro256** seeded via SplitMix64 so that results are reproducible
// across platforms — std::mt19937 distributions are not portable across
// standard libraries, so we also provide our own uniform helpers.

#include <cmath>
#include <cstdint>
#include <limits>

namespace scalfrag {

/// SplitMix64: used to expand a single user seed into Xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast, high-quality, tiny state; the project-wide RNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5ca1f4a6u) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float next_float() noexcept {
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, bound) with Lemire rejection (unbiased).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform value in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept {
    for (;;) {
      const double u = uniform(-1.0, 1.0);
      const double v = uniform(-1.0, 1.0);
      const double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) {
        return u * std::sqrt(-2.0 * std::log(s) / s);
      }
    }
  }

  /// Derive an independent stream (for per-thread / per-tensor use).
  Rng split() noexcept { return Rng(next_u64()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace scalfrag
