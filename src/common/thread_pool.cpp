#include "common/thread_pool.hpp"

#include <algorithm>

namespace scalfrag {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

namespace {
thread_local bool t_on_worker = false;
}  // namespace

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker; }

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (grain == 0) grain = 1;
  // At most one chunk per worker, and no chunk smaller than `grain`.
  const std::size_t chunks = std::min(size(), (n + grain - 1) / grain);
  if (chunks <= 1 || n <= grain || on_worker_thread()) {
    fn(begin, end);
    return;
  }
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per;
    const std::size_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    futs.push_back(submit([&fn, lo, hi] { fn(lo, hi); }));
  }
  for (auto& f : futs) f.get();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace scalfrag
