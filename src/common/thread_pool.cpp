#include "common/thread_pool.hpp"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace scalfrag {

namespace {

/// CPU assignment of worker i under `policy`. Compact walks logical
/// CPUs in order; Scatter deals CPUs like cards across NUMA nodes
/// (worker 0 → first CPU of node 0, worker 1 → first CPU of node 1,
/// ...), maximizing memory controllers in play at low worker counts.
int cpu_for_worker(PinPolicy policy, std::size_t worker,
                   const CpuTopology& topo) {
  const int cpus = std::max(1, topo.logical_cpus);
  if (policy == PinPolicy::Compact || topo.numa_nodes <= 1) {
    return static_cast<int>(worker % static_cast<std::size_t>(cpus));
  }
  // Scatter: group CPUs by node, then deal workers across nodes
  // round-robin (worker 0 → node 0's first CPU, worker 1 → node 1's
  // first CPU, ...), wrapping within a node once every node got one.
  std::vector<std::vector<int>> by_node(
      static_cast<std::size_t>(topo.numa_nodes));
  for (int c = 0; c < cpus; ++c) {
    const int node = c < static_cast<int>(topo.node_of_cpu.size())
                         ? topo.node_of_cpu[static_cast<std::size_t>(c)]
                         : 0;
    by_node[static_cast<std::size_t>(node % topo.numa_nodes)].push_back(c);
  }
  const auto& node_cpus =
      by_node[worker % static_cast<std::size_t>(topo.numa_nodes)];
  if (node_cpus.empty()) {
    return static_cast<int>(worker % static_cast<std::size_t>(cpus));
  }
  const std::size_t round = worker / static_cast<std::size_t>(topo.numa_nodes);
  return node_cpus[round % node_cpus.size()];
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

namespace {
thread_local bool t_on_worker = false;
}  // namespace

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker; }

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (grain == 0) grain = 1;
  // At most one chunk per worker, and no chunk smaller than `grain`.
  const std::size_t chunks = std::min(size(), (n + grain - 1) / grain);
  if (chunks <= 1 || n <= grain || on_worker_thread()) {
    fn(begin, end);
    return;
  }
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per;
    const std::size_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    futs.push_back(submit([&fn, lo, hi] { fn(lo, hi); }));
  }
  for (auto& f : futs) f.get();
}

void ThreadPool::apply_pinning(PinPolicy policy) {
  std::lock_guard lock(pin_mutex_);
  if (policy == pin_policy_) return;
#if defined(__linux__)
  const CpuTopology& topo = cpu_topology();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    cpu_set_t set;
    CPU_ZERO(&set);
    if (policy == PinPolicy::None) {
      for (int c = 0; c < topo.logical_cpus; ++c) CPU_SET(c, &set);
    } else {
      CPU_SET(cpu_for_worker(policy, i, topo), &set);
    }
    // Best effort: a restricted cgroup/cpuset may reject members of the
    // mask — placement is an optimization, never a correctness need.
    pthread_setaffinity_np(workers_[i].native_handle(), sizeof(set), &set);
  }
#endif
  pin_policy_ = policy;
}

PinPolicy ThreadPool::pinning() const noexcept {
  std::lock_guard lock(pin_mutex_);
  return pin_policy_;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace scalfrag
