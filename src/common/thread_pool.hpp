#pragma once
// A minimal fixed-size thread pool with a parallel_for convenience.
//
// Used by the CPU side of the hybrid executor and by ML training
// (bagging trains ensemble members concurrently). The pool is
// deliberately simple: one shared FIFO of std::function tasks. MTTKRP's
// CPU portions are chunked coarsely enough that queue contention is
// irrelevant.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/cpu_caps.hpp"

namespace scalfrag {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue an arbitrary task; the future resolves when it finishes.
  template <typename F>
  std::future<void> submit(F&& f) {
    auto task = std::make_shared<std::packaged_task<void()>>(
        std::forward<F>(f));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool is stopping");
      tasks_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn over [begin, end) split into contiguous chunks of at least
  /// `grain` items each (never more chunks than workers); blocks until
  /// every chunk is done. fn receives [chunk_begin, chunk_end).
  ///
  /// Fast paths: the whole range runs inline on the caller when it is
  /// smaller than `grain`, when the pool has a single worker, or when
  /// the caller is itself a pool worker (a nested parallel_for would
  /// otherwise block a worker on tasks that may never be scheduled —
  /// the self-deadlock case).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 1);

  /// True when called from one of this process's pool worker threads.
  static bool on_worker_thread() noexcept;

  /// Pin every worker to one logical CPU per `policy` (Compact packs
  /// workers onto consecutive CPUs; Scatter round-robins NUMA nodes
  /// first — see PinPolicy). None restores the full-machine affinity
  /// mask. Idempotent: re-applying the current policy is a cheap
  /// no-op, so hot paths may call this per run. Placement uses
  /// cpu_topology(); on non-Linux platforms only the policy is
  /// recorded (no affinity syscall exists to make).
  ///
  /// NUMA first-touch contract: pinning fixes which node a worker
  /// faults pages on, so per-worker scratch (e.g. the PrivateReduce
  /// private outputs) allocated *inside* a worker task lands on that
  /// worker's node.
  void apply_pinning(PinPolicy policy);

  /// The policy most recently applied (None until apply_pinning ran).
  PinPolicy pinning() const noexcept;

  /// Process-wide pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;

  mutable std::mutex pin_mutex_;
  PinPolicy pin_policy_ = PinPolicy::None;
};

}  // namespace scalfrag
