#pragma once
// A minimal fixed-size thread pool with a parallel_for convenience.
//
// Used by the CPU side of the hybrid executor and by ML training
// (bagging trains ensemble members concurrently). The pool is
// deliberately simple: one shared FIFO of std::function tasks. MTTKRP's
// CPU portions are chunked coarsely enough that queue contention is
// irrelevant.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace scalfrag {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue an arbitrary task; the future resolves when it finishes.
  template <typename F>
  std::future<void> submit(F&& f) {
    auto task = std::make_shared<std::packaged_task<void()>>(
        std::forward<F>(f));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool is stopping");
      tasks_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(begin..end) split into `size()` contiguous chunks; blocks
  /// until every chunk is done. fn receives [chunk_begin, chunk_end).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace scalfrag
