#pragma once
// Wall-clock timer for measuring *host* time (ML training, inference,
// preprocessing). Simulated GPU time lives in gpusim and is unrelated.

#include <chrono>

namespace scalfrag {

class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last reset.
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const noexcept { return seconds() * 1e3; }
  double micros() const noexcept { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace scalfrag
