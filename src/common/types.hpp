#pragma once
// Fundamental scalar types shared by every ScalFrag subsystem.
//
// GPU sparse-tensor codes (ParTI, SPLATT, BCSF) almost universally use
// 32-bit indices and single-precision values: FROSTT mode sizes fit in
// 32 bits and fp32 doubles the effective memory bandwidth of the
// memory-bound MTTKRP kernel. We follow that convention.

#include <cstddef>
#include <cstdint>

namespace scalfrag {

/// Index along one tensor mode (row of a factor matrix).
using index_t = std::uint32_t;

/// Count of non-zero entries. 64-bit: FROSTT tensors exceed 2^32 bytes.
using nnz_t = std::uint64_t;

/// Numeric value type of tensor entries and factor matrices.
using value_t = float;

/// Simulated time, in nanoseconds (gpusim timeline domain).
using sim_ns = std::uint64_t;

/// Entry of a gather permutation over a COO tensor (ModeViews, hybrid
/// GPU share). 32-bit on purpose: a permutation view then costs one
/// index_t-sized word per entry per extra mode instead of a full tensor
/// copy. Tensors beyond 2^32 non-zeros fall back to materialized
/// copies (see ModeViews).
using perm_t = std::uint32_t;

/// Tensor order (number of modes). Kept small on purpose.
using order_t = std::uint8_t;

inline constexpr order_t kMaxOrder = 8;

}  // namespace scalfrag
