#include "gpusim/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace scalfrag::gpusim {

KernelTimeBreakdown CostModel::kernel_time(const LaunchConfig& cfg,
                                           const KernelProfile& prof) const {
  KernelTimeBreakdown out;
  const Occupancy occ = compute_occupancy(spec_, cfg);
  if (!occ.feasible) {
    out.feasible = false;
    out.total = std::numeric_limits<sim_ns>::max();
    return out;
  }
  out.occupancy = occ.fraction;

  // --- machine fill ------------------------------------------------
  // If the grid has fewer blocks than can be resident at once, part of
  // the machine idles for the whole kernel.
  const double fill = std::min(
      1.0, static_cast<double>(cfg.grid) / occ.resident_blocks);
  // A grid larger than one wave quantizes into waves; the last partial
  // wave under-fills the machine and stretches the run. The partial
  // wave's cost is sub-linear in its fill (latency hiding degrades
  // gracefully), so charge √frac extra instead of a full wave. Grids
  // below one wave are already penalized through `fill`.
  const double waves_exact = occ.waves(cfg.grid);
  double tail = 1.0;
  if (waves_exact > 1.0) {
    const double full = std::floor(waves_exact);
    const double frac = waves_exact - full;
    tail = (full + (frac > 0 ? std::sqrt(frac) : 0.0)) / waves_exact;
  }

  // Effective parallelism that memory latency hiding sees.
  const double eff_occ = occ.fraction * fill;

  // --- bandwidth term ----------------------------------------------
  // Achievable bandwidth follows a saturating latency-hiding curve in
  // resident-warp occupancy; ~25% occupancy already reaches ~2/3 peak
  // (classic Volkov curve shape).
  const double kBwHalfPoint = 0.12;
  const double bw_frac = eff_occ / (eff_occ + kBwHalfPoint) * (1 + kBwHalfPoint);
  const double bw_gbps =
      spec_.hbm_bandwidth_gbps * std::min(1.0, bw_frac) * prof.coalescing;
  const double mem_ns =
      bw_gbps > 0 ? static_cast<double>(prof.dram_bytes) / bw_gbps : 0.0;

  // --- compute term -------------------------------------------------
  // FP32 throughput saturates quickly with occupancy (ILP covers the
  // rest); floor at a small fraction so tiny launches stay finite.
  const double comp_frac = std::min(1.0, eff_occ / 0.5);
  const double comp_gflops =
      spec_.peak_gflops() * std::max(0.02, comp_frac);
  const double comp_ns = static_cast<double>(prof.flops) / comp_gflops;

  // --- atomics -------------------------------------------------------
  // Two bounds govern atomic cost: aggregate throughput (the L2 atomic
  // units retire roughly one op per `atomic_ns` per SM-worth of
  // bandwidth) and same-address serialization (updates to one address
  // retire strictly in sequence, so the hottest address's chain is a
  // lower bound on kernel time). The binding one dominates.
  const double atomic_throughput_ns =
      static_cast<double>(prof.atomic_updates) * spec_.atomic_ns /
      static_cast<double>(spec_.num_sms);
  const double atomic_chain_ns =
      std::max(1.0, prof.atomic_max_chain) * spec_.atomic_ns;
  const double atomic_ns_total =
      prof.atomic_updates > 0
          ? std::max(atomic_throughput_ns, atomic_chain_ns)
          : 0.0;

  // --- fixed overheads ----------------------------------------------
  const double launch_ns = spec_.kernel_launch_us * 1e3;
  const double sched_total =
      static_cast<double>(cfg.grid) * spec_.per_block_sched_ns;

  // Memory and compute overlap (the GPU hides one behind the other);
  // atomics serialize after them; the tail stretches the steady-state
  // portion.
  const double core_ns = std::max(mem_ns, comp_ns) * tail;

  out.launch = static_cast<sim_ns>(launch_ns);
  out.memory = static_cast<sim_ns>(mem_ns);
  out.compute = static_cast<sim_ns>(comp_ns);
  out.atomics = static_cast<sim_ns>(atomic_ns_total);
  out.scheduling = static_cast<sim_ns>(sched_total);
  out.utilization = fill;
  out.total = static_cast<sim_ns>(launch_ns + core_ns + atomic_ns_total +
                                  sched_total);
  return out;
}

double CostModel::gflops(const LaunchConfig& cfg,
                         const KernelProfile& prof) const {
  const KernelTimeBreakdown t = kernel_time(cfg, prof);
  if (!t.feasible || t.total == 0) return 0.0;
  return static_cast<double>(prof.flops) / static_cast<double>(t.total);
}

}  // namespace scalfrag::gpusim
