#pragma once
// Analytical kernel-time model.
//
// A kernel is summarized by a KernelProfile — how much work it does and
// how it touches memory — and the model converts (DeviceSpec,
// LaunchConfig, KernelProfile) into simulated nanoseconds. The model is
// deliberately *mechanistic*, not fitted: each term corresponds to a
// real GPU bottleneck, so launch-parameter sweeps reproduce the
// qualitative structure of paper Fig. 4:
//
//  * too few threads  → bandwidth starved (latency-hiding curve),
//  * too-large blocks → occupancy quantization + shared-mem caps,
//  * too-large grids  → per-block scheduling overhead + pure tail waste,
//  * grid ≪ machine   → idle SMs (util term),
//  * atomics          → serialized L2 update term (ParTI's bane),
//  * good reuse       → fewer DRAM bytes (ScalFrag's shared-memory win).

#include <cstdint>

#include "common/types.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/occupancy.hpp"

namespace scalfrag::gpusim {

struct KernelProfile {
  /// Independent work items (for MTTKRP: non-zeros), distributed over
  /// threads grid-stride style.
  std::uint64_t work_items = 0;

  /// Total useful floating-point operations.
  std::uint64_t flops = 0;

  /// DRAM traffic after cache/shared-memory reuse has been discounted
  /// (the kernel author computes this from tensor features).
  std::uint64_t dram_bytes = 0;

  /// Fraction of peak bandwidth the access pattern can realize
  /// (1 = fully coalesced, ~0.25 = scattered gathers).
  double coalescing = 1.0;

  /// Number of atomic read-modify-write operations issued.
  std::uint64_t atomic_updates = 0;

  /// Longest same-address serialization chain (updates that MUST retire
  /// one after another because they hit one address — e.g. all
  /// non-zeros of the heaviest output slice in an atomicAdd kernel).
  /// 1 = conflict-free.
  double atomic_max_chain = 1.0;
};

struct KernelTimeBreakdown {
  sim_ns total = 0;
  sim_ns launch = 0;
  sim_ns memory = 0;
  sim_ns compute = 0;
  sim_ns atomics = 0;
  sim_ns scheduling = 0;
  double occupancy = 0.0;
  double utilization = 0.0;  // fraction of SM capacity the grid can fill
  bool feasible = true;
};

class CostModel {
 public:
  explicit CostModel(DeviceSpec spec) : spec_(std::move(spec)) {}

  const DeviceSpec& spec() const noexcept { return spec_; }

  /// Simulated kernel duration; infeasible configs return
  /// feasible=false and total=UINT64_MAX so callers can rank them last.
  KernelTimeBreakdown kernel_time(const LaunchConfig& cfg,
                                  const KernelProfile& prof) const;

  /// Shorthand for the total.
  sim_ns kernel_ns(const LaunchConfig& cfg, const KernelProfile& prof) const {
    return kernel_time(cfg, prof).total;
  }

  /// GFlop/s this (config, profile) pair achieves — the Fig. 4 metric.
  double gflops(const LaunchConfig& cfg, const KernelProfile& prof) const;

 private:
  DeviceSpec spec_;
};

}  // namespace scalfrag::gpusim
