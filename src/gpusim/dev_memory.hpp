#pragma once
// Simulated device-memory accounting.
//
// Because kernels execute functionally on the host, "device memory" is
// host memory — but capacity is accounted against the simulated device
// so that over-allocation fails exactly where it would on the real
// card. This is what forces ScalFrag-style segmentation for tensors
// that don't fit: the paper's blocking approach exists precisely to
// bound device-memory footprint.

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace scalfrag::gpusim {

class DeviceAllocator {
 public:
  explicit DeviceAllocator(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t used() const noexcept { return used_; }
  std::size_t available() const noexcept { return capacity_ - used_; }
  std::size_t peak() const noexcept { return peak_; }

  /// Reserve `bytes`; throws DeviceOutOfMemory if it doesn't fit.
  void allocate(std::size_t bytes) {
    if (bytes > available()) throw DeviceOutOfMemory(bytes, available());
    used_ += bytes;
    peak_ = std::max(peak_, used_);
  }

  /// Release a prior allocation (caller passes the same byte count).
  void release(std::size_t bytes) noexcept {
    used_ = bytes > used_ ? 0 : used_ - bytes;
  }

  void reset_peak() noexcept { peak_ = used_; }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
};

/// RAII typed device buffer: owns host backing storage (the functional
/// mirror) and an accounting reservation against a DeviceAllocator.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(DeviceAllocator& alloc, std::size_t count) : alloc_(&alloc) {
    // Account against the simulated device *before* reserving host
    // backing, so an allocation the device could never hold fails with
    // DeviceOutOfMemory rather than exhausting host memory.
    alloc_->allocate(count * sizeof(T));
    try {
      data_.resize(count);
    } catch (...) {
      alloc_->release(count * sizeof(T));
      alloc_ = nullptr;
      throw;
    }
  }
  ~DeviceBuffer() { release(); }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& o) noexcept { *this = std::move(o); }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      release();
      alloc_ = o.alloc_;
      data_ = std::move(o.data_);
      o.alloc_ = nullptr;
      o.data_.clear();
    }
    return *this;
  }

  std::size_t count() const noexcept { return data_.size(); }
  std::size_t bytes() const noexcept { return data_.size() * sizeof(T); }
  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }
  bool valid() const noexcept { return alloc_ != nullptr; }

 private:
  void release() noexcept {
    if (alloc_) {
      alloc_->release(data_.size() * sizeof(T));
      alloc_ = nullptr;
    }
  }

  DeviceAllocator* alloc_ = nullptr;
  std::vector<T> data_;
};

}  // namespace scalfrag::gpusim
