#include "gpusim/device_group.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"

namespace scalfrag::gpusim {

const char* reduce_schedule_name(ReduceSchedule s) {
  switch (s) {
    case ReduceSchedule::Tree:
      return "tree";
    case ReduceSchedule::Ring:
      return "ring";
  }
  return "?";
}

LinkSpec LinkSpec::pcie4_p2p() { return LinkSpec{}; }

LinkSpec LinkSpec::nvlink_bridge() {
  LinkSpec l;
  l.name = "nvlink-bridge";
  l.bandwidth_gbps = 50.0;
  l.latency_us = 2.0;
  return l;
}

DeviceGroup::DeviceGroup(DeviceSpec spec, int num_devices, LinkSpec link)
    : DeviceGroup(std::vector<DeviceSpec>(
                      static_cast<std::size_t>(std::max(num_devices, 0)),
                      std::move(spec)),
                  std::move(link)) {}

DeviceGroup::DeviceGroup(std::vector<DeviceSpec> specs, LinkSpec link)
    : specs_(std::move(specs)), link_(std::move(link)) {
  SF_CHECK(!specs_.empty(), "a device group needs at least one device");
  SF_CHECK(link_.bandwidth_gbps > 0.0 && link_.latency_us >= 0.0,
           "link spec must have positive bandwidth");
  devices_.reserve(specs_.size());
  for (const auto& s : specs_) {
    devices_.push_back(std::make_unique<SimDevice>(s));
  }
  leased_.assign(specs_.size(), false);
}

DeviceGroup DeviceGroup::mixed_3090_3060(int num_3090, int num_3060,
                                         LinkSpec link) {
  SF_CHECK(num_3090 >= 0 && num_3060 >= 0 && num_3090 + num_3060 >= 1,
           "mixed group needs at least one device");
  std::vector<DeviceSpec> specs;
  specs.reserve(static_cast<std::size_t>(num_3090 + num_3060));
  for (int i = 0; i < num_3090; ++i) specs.push_back(DeviceSpec::rtx3090());
  for (int i = 0; i < num_3060; ++i) specs.push_back(DeviceSpec::rtx3060());
  return DeviceGroup(std::move(specs), std::move(link));
}

bool DeviceGroup::uniform() const noexcept {
  for (std::size_t i = 1; i < specs_.size(); ++i) {
    if (!(specs_[i] == specs_.front())) return false;
  }
  return true;
}

int DeviceGroup::try_lease() {
  std::lock_guard<std::mutex> lock(lease_mu_);
  for (std::size_t i = 0; i < leased_.size(); ++i) {
    if (!leased_[i]) {
      leased_[i] = true;
      return static_cast<int>(i);
    }
  }
  return -1;
}

void DeviceGroup::lease(int i) {
  std::lock_guard<std::mutex> lock(lease_mu_);
  SF_CHECK(i >= 0 && static_cast<std::size_t>(i) < leased_.size(),
           "device index out of range");
  SF_CHECK(!leased_[static_cast<std::size_t>(i)],
           "device " + std::to_string(i) + " is already leased");
  leased_[static_cast<std::size_t>(i)] = true;
}

void DeviceGroup::release(int i) {
  std::lock_guard<std::mutex> lock(lease_mu_);
  SF_CHECK(i >= 0 && static_cast<std::size_t>(i) < leased_.size(),
           "device index out of range");
  SF_CHECK(leased_[static_cast<std::size_t>(i)],
           "device " + std::to_string(i) + " is not leased");
  leased_[static_cast<std::size_t>(i)] = false;
}

int DeviceGroup::leased() const {
  std::lock_guard<std::mutex> lock(lease_mu_);
  int n = 0;
  for (const bool b : leased_) n += b ? 1 : 0;
  return n;
}

sim_ns DeviceGroup::hop_ns(std::size_t bytes) const {
  const double wire = static_cast<double>(bytes) / link_.bandwidth_gbps;
  return static_cast<sim_ns>(link_.latency_us * 1e3 + wire);
}

sim_ns DeviceGroup::reduce_ns(std::size_t bytes,
                              ReduceSchedule schedule) const {
  const auto n = static_cast<std::size_t>(size());
  if (n <= 1 || bytes == 0) return 0;
  switch (schedule) {
    case ReduceSchedule::Tree: {
      // Binomial tree: rounds = ceil(log2 n), full buffer per hop.
      const auto rounds = static_cast<sim_ns>(
          std::bit_width(n - 1));  // ceil(log2 n) for n >= 2
      return rounds * hop_ns(bytes);
    }
    case ReduceSchedule::Ring: {
      // Reduce-scatter + all-gather: 2(n-1) steps of bytes/n each.
      const std::size_t chunk = (bytes + n - 1) / n;
      return static_cast<sim_ns>(2 * (n - 1)) * hop_ns(chunk);
    }
  }
  throw Error("unknown reduce schedule");
}

ReduceSchedule DeviceGroup::pick_schedule(std::size_t bytes) const {
  return reduce_ns(bytes, ReduceSchedule::Tree) <=
                 reduce_ns(bytes, ReduceSchedule::Ring)
             ? ReduceSchedule::Tree
             : ReduceSchedule::Ring;
}

void DeviceGroup::reset_timelines() {
  for (auto& d : devices_) d->reset_timeline();
}

}  // namespace scalfrag::gpusim
