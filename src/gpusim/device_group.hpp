#pragma once
// A group of N simulated devices plus the inter-device link they reduce
// partial results over — the multi-GPU substrate of the sharded
// pipeline executor (AMPED-style segment sharding with partial-result
// reduction; Wijeratne et al.).
//
// Each member is an independent SimDevice: its own stream set, copy
// engines, compute engine, and timeline, so per-device pipelines can be
// driven concurrently from real host threads without sharing any
// simulator state. What the group adds is the *collective*: a cost
// model for reducing every device's partial `mvals` into one output,
// under either a binomial tree or a ring (reduce-scatter + all-gather)
// schedule.

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hpp"
#include "gpusim/engine.hpp"

namespace scalfrag::gpusim {

/// How the partial outputs are combined across devices.
enum class ReduceSchedule {
  /// Binomial tree: ceil(log2 N) rounds, each moving the full buffer
  /// across one hop. Latency-optimal — best for small outputs.
  Tree,
  /// Ring reduce-scatter + all-gather: 2(N-1) steps of bytes/N each.
  /// Bandwidth-optimal — best for large outputs.
  Ring,
};

const char* reduce_schedule_name(ReduceSchedule s);

/// The peer-to-peer interconnect between group members. Defaults model
/// PCIe 4.0 x16 P2P through the host bridge; the NVLink preset is the
/// bridge-attached pair configuration of an RTX 3090 testbed.
struct LinkSpec {
  std::string name = "pcie4-p2p";
  double bandwidth_gbps = 22.0;  // effective per-direction peer bandwidth
  double latency_us = 6.0;       // per-message setup cost

  static LinkSpec pcie4_p2p();
  static LinkSpec nvlink_bridge();
};

class DeviceGroup {
 public:
  /// N identical devices of `spec`, connected by `link`.
  DeviceGroup(DeviceSpec spec, int num_devices,
              LinkSpec link = LinkSpec::pcie4_p2p());

  /// Heterogeneous group: one device per entry of `specs`, in order.
  /// Mixed specs feed the cost-weighted shard planner — see
  /// scalfrag::make_shard_plan and docs/multidev.md.
  explicit DeviceGroup(std::vector<DeviceSpec> specs,
                       LinkSpec link = LinkSpec::pcie4_p2p());

  /// Mixed 3090 + 3060 preset (the fast devices come first): the
  /// canonical skewed testbed for the heterogeneous sweeps.
  static DeviceGroup mixed_3090_3060(int num_3090 = 3, int num_3060 = 1,
                                     LinkSpec link = LinkSpec::pcie4_p2p());

  int size() const noexcept { return static_cast<int>(devices_.size()); }
  SimDevice& device(int i) { return *devices_.at(i); }
  const SimDevice& device(int i) const { return *devices_.at(i); }
  const LinkSpec& link() const noexcept { return link_; }
  /// Spec of the first member (the only one for uniform groups —
  /// legacy callers that assume one shared spec read this).
  const DeviceSpec& spec() const noexcept { return specs_.front(); }
  /// Spec of member `i`.
  const DeviceSpec& spec(int i) const { return specs_.at(i); }
  /// True when every member shares one spec (PR 4's model).
  bool uniform() const noexcept;

  /// Cost of moving `bytes` across one peer hop (latency + wire).
  sim_ns hop_ns(std::size_t bytes) const;

  /// Cost of reducing one `bytes`-sized partial buffer per device into
  /// a single result under `schedule`. Zero for a single device.
  sim_ns reduce_ns(std::size_t bytes, ReduceSchedule schedule) const;

  /// The cheaper of the two schedules for this buffer size (what
  /// ExecConfig's auto reduction resolves to).
  ReduceSchedule pick_schedule(std::size_t bytes) const;

  /// reset_timeline() on every member.
  void reset_timelines();

  // --- exclusive leases -------------------------------------------------
  // Service-style ownership over members: a long-running multi-tenant
  // scheduler leases a device per job so two jobs never interleave ops
  // on one timeline. Leases are advisory bookkeeping (device(i) still
  // hands out references) — the SF_CHECKs turn double-lease bugs into
  // immediate failures instead of corrupted timelines.

  /// Lease the lowest-indexed free device; -1 when all are leased.
  int try_lease();
  /// Lease device `i`. Throws if `i` is already leased.
  void lease(int i);
  /// Return device `i`. Throws if `i` was not leased.
  void release(int i);
  /// Number of currently leased devices.
  int leased() const;

 private:
  std::vector<DeviceSpec> specs_;  // one per member, in device order
  LinkSpec link_;
  // unique_ptr for stable references while threads hold SimDevice&.
  std::vector<std::unique_ptr<SimDevice>> devices_;
  mutable std::mutex lease_mu_;
  std::vector<bool> leased_;
};

}  // namespace scalfrag::gpusim
