#include "gpusim/device_spec.hpp"

namespace scalfrag::gpusim {

DeviceSpec DeviceSpec::rtx3090() {
  DeviceSpec s;
  s.name = "NVIDIA GeForce RTX 3090 (simulated)";
  s.num_sms = 82;
  s.cuda_cores = 10496;
  s.core_clock_ghz = 1.4;  // Table II lists the 1.4 GHz base clock
  s.warp_size = 32;
  s.max_threads_per_sm = 1536;  // GA102 limit
  s.max_blocks_per_sm = 16;
  s.max_threads_per_block = 1024;
  s.shared_mem_per_sm = 100 * 1024;  // usable out of the 128 KB L1/shared
  s.shared_mem_per_block = 99 * 1024;
  s.l2_bytes = 6 * 1024 * 1024;
  s.global_mem_bytes = 24ull * 1024 * 1024 * 1024;
  s.hbm_bandwidth_gbps = 936.2;
  s.pcie_bandwidth_gbps = 24.3;  // paper §III-B measured PCIe rate
  s.pcie_latency_us = 4.0;
  s.kernel_launch_us = 4.0;
  s.per_block_sched_ns = 40.0;
  // Effective per-op retire latency of L2 fp32 atomicAdd after warp-
  // level aggregation; same-address chains progress at this rate.
  s.atomic_ns = 0.6;
  return s;
}

DeviceSpec DeviceSpec::rtx3060() {
  DeviceSpec s;
  s.name = "NVIDIA GeForce RTX 3060 (simulated)";
  s.num_sms = 28;
  s.cuda_cores = 3584;
  s.core_clock_ghz = 1.32;
  s.warp_size = 32;
  s.max_threads_per_sm = 1536;  // GA106 keeps the Ampere limit
  s.max_blocks_per_sm = 16;
  s.max_threads_per_block = 1024;
  s.shared_mem_per_sm = 100 * 1024;
  s.shared_mem_per_block = 99 * 1024;
  s.l2_bytes = 3 * 1024 * 1024;
  s.global_mem_bytes = 12ull * 1024 * 1024 * 1024;
  s.hbm_bandwidth_gbps = 360.0;  // 192-bit GDDR6
  s.pcie_bandwidth_gbps = 24.3;  // same host link as the 3090 testbed
  s.pcie_latency_us = 4.0;
  s.kernel_launch_us = 4.0;
  s.per_block_sched_ns = 40.0;
  s.atomic_ns = 0.6;
  return s;
}

CpuSpec CpuSpec::i7_11700k() {
  CpuSpec c;
  c.name = "Intel Core i7-11700K (simulated)";
  c.cores = 8;
  c.threads = 16;
  c.clock_ghz = 3.6;
  c.mem_bandwidth_gbps = 31.2;  // Table II
  c.simd_flops_per_cycle = 32;  // 2 × 256-bit FMA ports × 8 fp32
  return c;
}

}  // namespace scalfrag::gpusim
