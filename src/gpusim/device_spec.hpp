#pragma once
// Hardware descriptions for the simulated platform (paper Table II).
//
// Nothing in this repository touches a physical GPU: `DeviceSpec` feeds
// the analytical cost model (occupancy, bandwidth, launch overheads) and
// the transfer model (PCIe), while kernels execute functionally on the
// host. The shipped preset mirrors the paper's NVIDIA GeForce RTX 3090 /
// Intel Core i7-11700K testbed.

#include <cstddef>
#include <cstdint>
#include <string>

namespace scalfrag::gpusim {

struct DeviceSpec {
  std::string name;

  // Compute resources.
  int num_sms = 0;
  int cuda_cores = 0;           // total FP32 lanes
  double core_clock_ghz = 0.0;  // boost clock used for peak estimates
  int warp_size = 32;
  int max_threads_per_sm = 0;
  int max_blocks_per_sm = 0;
  int max_threads_per_block = 0;

  // Memory system.
  std::size_t shared_mem_per_sm = 0;     // usable shared memory per SM
  std::size_t shared_mem_per_block = 0;  // per-block cap
  std::size_t l2_bytes = 0;
  std::size_t global_mem_bytes = 0;
  double hbm_bandwidth_gbps = 0.0;  // device-memory bandwidth (GB/s)

  // Host link (what Fig. 5's H2D/D2H costs come from).
  double pcie_bandwidth_gbps = 0.0;  // effective host<->device bandwidth
  double pcie_latency_us = 0.0;      // fixed per-transfer setup cost

  // Driver / runtime overheads.
  double kernel_launch_us = 0.0;    // fixed per-launch cost
  double per_block_sched_ns = 0.0;  // block dispatch cost (per block / SM)
  double atomic_ns = 0.0;           // serialized L2 atomic op latency

  /// Peak FP32 throughput in GFlop/s (2 flops per FMA lane per cycle).
  double peak_gflops() const {
    return 2.0 * static_cast<double>(cuda_cores) * core_clock_ghz;
  }

  bool operator==(const DeviceSpec&) const = default;

  /// The paper's platform: RTX 3090 (GA102), Table II values.
  static DeviceSpec rtx3090();

  /// Cut-down mainstream sibling (GA106-class): ~1/3 the SMs and ~2.6×
  /// less memory bandwidth than rtx3090(). Exists to exercise
  /// heterogeneous DeviceGroups — see DeviceGroup::mixed_3090_3060().
  static DeviceSpec rtx3060();
};

struct CpuSpec {
  std::string name;
  int cores = 0;
  int threads = 0;
  double clock_ghz = 0.0;
  double mem_bandwidth_gbps = 0.0;
  int simd_flops_per_cycle = 0;  // per core (AVX2 fp32 FMA: 2×8×2)

  double peak_gflops() const {
    return static_cast<double>(cores) * clock_ghz *
           static_cast<double>(simd_flops_per_cycle);
  }

  /// Intel Core i7-11700K, Table II values.
  static CpuSpec i7_11700k();
};

}  // namespace scalfrag::gpusim
