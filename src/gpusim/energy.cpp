#include "gpusim/energy.hpp"

namespace scalfrag::gpusim {

PowerModel PowerModel::rtx3090() { return PowerModel{}; }

EnergyEstimate estimate_energy(const SimDevice& dev,
                               const PowerModel& power) {
  EnergyEstimate e;
  constexpr double kNsToS = 1e-9;
  for (const auto& r : dev.timeline()) {
    const double secs = static_cast<double>(r.duration()) * kNsToS;
    switch (r.kind) {
      case OpKind::Kernel:
        e.kernel_j += power.kernel_w * secs;
        break;
      case OpKind::H2D:
      case OpKind::D2H:
        e.transfer_j += power.copy_w * secs;
        break;
      case OpKind::Host:
        e.host_j += power.host_w * secs;
        break;
    }
  }
  e.idle_j = power.idle_w * static_cast<double>(dev.now()) * kNsToS;
  return e;
}

}  // namespace scalfrag::gpusim
