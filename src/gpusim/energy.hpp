#pragma once
// First-order energy estimation over a simulated timeline — the
// "energy benefit" axis the paper's related-work accelerators (§VI-C:
// "significant speedup and energy benefit") report. The model is the
// standard busy/idle decomposition: each engine draws its busy power
// while an op occupies it, and the board draws idle power for the whole
// makespan. Overlapping transfers with kernels therefore saves energy
// twice: shorter makespan (less idle draw) and no change in busy joules.

#include "gpusim/engine.hpp"

namespace scalfrag::gpusim {

struct PowerModel {
  double idle_w = 30.0;     // board idle draw, applied over the makespan
  double kernel_w = 250.0;  // SM busy draw above idle
  double copy_w = 25.0;     // copy-engine + PCIe PHY draw above idle
  double host_w = 65.0;     // CPU package draw above idle (hybrid tasks)

  /// Approximate RTX 3090 figures (350 W board limit).
  static PowerModel rtx3090();
};

struct EnergyEstimate {
  double kernel_j = 0.0;
  double transfer_j = 0.0;
  double host_j = 0.0;
  double idle_j = 0.0;

  double total_j() const noexcept {
    return kernel_j + transfer_j + host_j + idle_j;
  }
};

/// Integrate the power model over a device's recorded timeline.
EnergyEstimate estimate_energy(const SimDevice& dev,
                               const PowerModel& power = PowerModel::rtx3090());

}  // namespace scalfrag::gpusim
