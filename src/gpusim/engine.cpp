#include "gpusim/engine.hpp"

#include <algorithm>

namespace scalfrag::gpusim {

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::H2D:
      return "H2D";
    case OpKind::D2H:
      return "D2H";
    case OpKind::Kernel:
      return "Kernel";
    case OpKind::Host:
      return "Host";
  }
  return "?";
}

SimDevice::SimDevice(DeviceSpec spec)
    : spec_(std::move(spec)), cost_(spec_), alloc_(spec_.global_mem_bytes) {
  streams_.resize(1);  // default stream
}

StreamId SimDevice::create_stream() {
  streams_.emplace_back();
  return static_cast<StreamId>(streams_.size() - 1);
}

void SimDevice::check_stream(StreamId s) const {
  SF_CHECK(s >= 0 && s < static_cast<StreamId>(streams_.size()),
           "invalid stream id");
}

sim_ns SimDevice::submit(OpKind kind, StreamId s, sim_ns duration,
                         std::size_t bytes, std::function<void()> fn,
                         std::string label) {
  check_stream(s);
  auto& st = streams_[s];
  const int engine = static_cast<int>(kind);
  const sim_ns ready = std::max(st.tail, st.wait_until);
  const sim_ns start = std::max(ready, engine_free_[engine]);
  const sim_ns end = start + duration;
  st.tail = end;
  engine_free_[engine] = end;
  horizon_ = std::max(horizon_, end);
  records_.push_back({kind, s, start, end, bytes, std::move(label)});
  if (fn) fn();  // eager functional execution (see header)
  return end;
}

void SimDevice::memcpy_h2d(StreamId s, std::size_t bytes,
                           std::function<void()> fn, std::string label) {
  submit(OpKind::H2D, s, transfer_ns(spec_, bytes), bytes, std::move(fn),
         std::move(label));
}

void SimDevice::memcpy_d2h(StreamId s, std::size_t bytes,
                           std::function<void()> fn, std::string label) {
  submit(OpKind::D2H, s, transfer_ns(spec_, bytes), bytes, std::move(fn),
         std::move(label));
}

KernelTimeBreakdown SimDevice::launch_kernel(StreamId s,
                                             const LaunchConfig& cfg,
                                             const KernelProfile& prof,
                                             std::function<void()> fn,
                                             std::string label) {
  const KernelTimeBreakdown t = cost_.kernel_time(cfg, prof);
  SF_CHECK(t.feasible, "infeasible launch configuration " + cfg.str());
  submit(OpKind::Kernel, s, t.total, 0, std::move(fn), std::move(label));
  return t;
}

void SimDevice::host_task(StreamId s, sim_ns duration,
                          std::function<void()> fn, std::string label) {
  submit(OpKind::Host, s, duration, 0, std::move(fn), std::move(label));
}

EventId SimDevice::record_event(StreamId s) {
  check_stream(s);
  events_.push_back(streams_[s].tail);
  return static_cast<EventId>(events_.size() - 1);
}

void SimDevice::wait_event(StreamId s, EventId e) {
  check_stream(s);
  SF_CHECK(e >= 0 && e < static_cast<EventId>(events_.size()),
           "invalid event id");
  streams_[s].wait_until = std::max(streams_[s].wait_until, events_[e]);
}

sim_ns SimDevice::synchronize() { return horizon_; }

TimelineBreakdown SimDevice::breakdown() const {
  TimelineBreakdown b;
  for (const auto& r : records_) {
    switch (r.kind) {
      case OpKind::H2D:
        b.h2d += r.duration();
        break;
      case OpKind::D2H:
        b.d2h += r.duration();
        break;
      case OpKind::Kernel:
        b.kernel += r.duration();
        break;
      case OpKind::Host:
        b.host += r.duration();
        break;
    }
  }
  b.makespan = horizon_;
  return b;
}

void SimDevice::reset_timeline() {
  records_.clear();
  events_.clear();
  for (auto& st : streams_) {
    st.tail = 0;
    st.wait_until = 0;
  }
  for (auto& e : engine_free_) e = 0;
  horizon_ = 0;
}

}  // namespace scalfrag::gpusim
