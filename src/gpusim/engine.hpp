#pragma once
// The simulated CUDA runtime: streams, events, async copies, kernel
// launches, and a timeline.
//
// Semantics mirror the CUDA execution model closely enough for the
// paper's experiments:
//  * ops issued to one stream run in FIFO order;
//  * H2D copies share one copy engine, D2H copies another, kernels the
//    compute engine, and host tasks a host "engine" — each engine
//    serves ops one at a time in issue order (CUDA's per-engine queues);
//  * events provide cross-stream ordering.
//
// Functional execution is *eager*: an op's closure runs at submit time,
// in submission order. That is sound because executors never create
// cross-stream write-write conflicts except commutative accumulations.
// Simulated time is computed greedily with the standard FIFO-resource
// recurrence: start = max(stream tail, engine free, dependencies).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/dev_memory.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/transfer.hpp"

namespace scalfrag::gpusim {

enum class OpKind : std::uint8_t { H2D, D2H, Kernel, Host };

const char* op_kind_name(OpKind k);

struct OpRecord {
  OpKind kind;
  int stream;
  sim_ns start;
  sim_ns end;
  std::size_t bytes;  // transfers only
  std::string label;

  sim_ns duration() const noexcept { return end - start; }
};

/// Per-kind busy totals + makespan, for Fig. 5-style breakdowns.
struct TimelineBreakdown {
  sim_ns h2d = 0;
  sim_ns d2h = 0;
  sim_ns kernel = 0;
  sim_ns host = 0;
  sim_ns makespan = 0;

  sim_ns serial_sum() const noexcept { return h2d + d2h + kernel + host; }
  /// Time hidden by overlap (0 when everything serialized).
  sim_ns overlap_saved() const noexcept {
    return serial_sum() > makespan ? serial_sum() - makespan : 0;
  }
};

using StreamId = int;
using EventId = int;

class SimDevice {
 public:
  explicit SimDevice(DeviceSpec spec);

  const DeviceSpec& spec() const noexcept { return spec_; }
  const CostModel& cost_model() const noexcept { return cost_; }
  DeviceAllocator& allocator() noexcept { return alloc_; }

  /// Streams. Stream 0 always exists (the default stream).
  StreamId create_stream();
  int num_streams() const noexcept { return static_cast<int>(streams_.size()); }

  /// Asynchronous host->device copy of `bytes`; `fn` performs the
  /// functional copy into the device buffer's host mirror.
  void memcpy_h2d(StreamId s, std::size_t bytes, std::function<void()> fn,
                  std::string label = {});
  void memcpy_d2h(StreamId s, std::size_t bytes, std::function<void()> fn,
                  std::string label = {});

  /// Launch a kernel: duration from the cost model, functional body `fn`.
  /// Returns the kernel's time breakdown (for diagnostics).
  KernelTimeBreakdown launch_kernel(StreamId s, const LaunchConfig& cfg,
                                    const KernelProfile& prof,
                                    std::function<void()> fn,
                                    std::string label = {});

  /// Host-side task of a given simulated duration (hybrid CPU work).
  void host_task(StreamId s, sim_ns duration, std::function<void()> fn,
                 std::string label = {});

  /// Record an event after the last op currently in stream `s`.
  EventId record_event(StreamId s);
  /// Make subsequent ops in stream `s` wait for `e`.
  void wait_event(StreamId s, EventId e);

  /// Complete all outstanding work; returns the makespan (ns since the
  /// last reset).
  sim_ns synchronize();

  /// Simulated wall-clock now = maximum op end time so far.
  sim_ns now() const noexcept { return horizon_; }

  const std::vector<OpRecord>& timeline() const noexcept { return records_; }
  TimelineBreakdown breakdown() const;

  /// Clear the timeline and stream clocks (device memory accounting is
  /// left alone). Use between repetitions of an experiment.
  void reset_timeline();

 private:
  sim_ns submit(OpKind kind, StreamId s, sim_ns duration, std::size_t bytes,
                std::function<void()> fn, std::string label);
  void check_stream(StreamId s) const;

  DeviceSpec spec_;
  CostModel cost_;
  DeviceAllocator alloc_;

  struct StreamState {
    sim_ns tail = 0;      // end of the last submitted op
    sim_ns wait_until = 0;  // pending event dependencies
  };
  std::vector<StreamState> streams_;
  std::vector<sim_ns> events_;

  // One FIFO server per engine.
  sim_ns engine_free_[4] = {0, 0, 0, 0};

  sim_ns horizon_ = 0;
  std::vector<OpRecord> records_;
};

}  // namespace scalfrag::gpusim
