#pragma once
// Kernel launch configuration — the quantity ScalFrag's adaptive
// strategy tunes. Following CUDA convention (and unlike the paper's
// loose wording), `grid` is the number of thread blocks and `block` the
// number of threads per block.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/device_spec.hpp"

namespace scalfrag::gpusim {

struct LaunchConfig {
  std::uint32_t grid = 0;   // thread blocks in the grid
  std::uint32_t block = 0;  // threads per block
  std::size_t shmem_per_block = 0;

  std::uint64_t total_threads() const {
    return static_cast<std::uint64_t>(grid) * block;
  }

  std::string str() const {
    return "<" + std::to_string(grid) + "x" + std::to_string(block) + ">";
  }

  bool operator==(const LaunchConfig& o) const {
    return grid == o.grid && block == o.block &&
           shmem_per_block == o.shmem_per_block;
  }
};

/// The candidate grid the autotuner (and the Fig. 4 heatmap) sweeps:
/// power-of-two blocks 32..max_threads_per_block crossed with
/// power-of-two grids 16..65536.
std::vector<LaunchConfig> launch_candidates(const DeviceSpec& spec);

}  // namespace scalfrag::gpusim
