#include "gpusim/occupancy.hpp"

#include <algorithm>

#include "common/math_util.hpp"

namespace scalfrag::gpusim {

std::vector<LaunchConfig> launch_candidates(const DeviceSpec& spec) {
  std::vector<LaunchConfig> out;
  for (std::uint32_t block = 32;
       block <= static_cast<std::uint32_t>(spec.max_threads_per_block);
       block *= 2) {
    for (std::uint32_t grid = 16; grid <= 65536; grid *= 2) {
      out.push_back({grid, block, 0});
    }
  }
  return out;
}

Occupancy compute_occupancy(const DeviceSpec& spec, const LaunchConfig& cfg) {
  Occupancy occ;
  if (cfg.grid == 0 || cfg.block == 0) return occ;
  if (cfg.block > static_cast<std::uint32_t>(spec.max_threads_per_block)) {
    return occ;
  }
  if (cfg.shmem_per_block > spec.shared_mem_per_block) return occ;

  // Hardware allocates whole warps.
  const std::uint32_t alloc_threads =
      round_up(cfg.block, static_cast<std::uint32_t>(spec.warp_size));

  int by_threads = spec.max_threads_per_sm / static_cast<int>(alloc_threads);
  int by_slots = spec.max_blocks_per_sm;
  int by_shmem = cfg.shmem_per_block == 0
                     ? by_slots
                     : static_cast<int>(spec.shared_mem_per_sm /
                                        cfg.shmem_per_block);
  const int blocks = std::min({by_threads, by_slots, by_shmem});
  if (blocks <= 0) return occ;

  occ.feasible = true;
  occ.blocks_per_sm = blocks;
  occ.threads_per_sm = blocks * static_cast<int>(alloc_threads);
  occ.fraction = static_cast<double>(occ.threads_per_sm) /
                 static_cast<double>(spec.max_threads_per_sm);
  occ.resident_blocks = blocks * spec.num_sms;
  return occ;
}

}  // namespace scalfrag::gpusim
