#pragma once
// CUDA-style occupancy calculation: how many blocks of a given launch
// configuration are simultaneously resident per SM, limited by the
// thread, block-slot, and shared-memory budgets. This is the main
// driver of the rise-then-fall launch-parameter heatmaps (paper Fig. 4).

#include "gpusim/device_spec.hpp"
#include "gpusim/launch.hpp"

namespace scalfrag::gpusim {

struct Occupancy {
  int blocks_per_sm = 0;       // resident blocks per SM
  int threads_per_sm = 0;      // resident threads per SM
  double fraction = 0.0;       // threads_per_sm / max_threads_per_sm
  int resident_blocks = 0;     // across the whole device
  bool feasible = false;       // false if the config can never launch

  /// Number of full scheduling waves needed for `grid` blocks.
  double waves(std::uint32_t grid) const {
    if (resident_blocks == 0) return 0.0;
    return static_cast<double>(grid) / resident_blocks;
  }
};

/// Compute occupancy for a launch configuration. Infeasible configs
/// (block > device cap, non-multiple-of-warp block size rounded up past
/// the cap, shared memory over the per-block limit) report
/// feasible == false.
Occupancy compute_occupancy(const DeviceSpec& spec, const LaunchConfig& cfg);

}  // namespace scalfrag::gpusim
