#include "gpusim/sim_metrics.hpp"

#include <cstdio>

namespace scalfrag::gpusim {

UtilizationReport utilization(const SimDevice& dev) {
  UtilizationReport r;
  sim_ns h2d_busy = 0, d2h_busy = 0, kernel_busy = 0, host_busy = 0;
  for (const auto& op : dev.timeline()) {
    switch (op.kind) {
      case OpKind::H2D:
        h2d_busy += op.duration();
        r.h2d_bytes += op.bytes;
        break;
      case OpKind::D2H:
        d2h_busy += op.duration();
        r.d2h_bytes += op.bytes;
        break;
      case OpKind::Kernel:
        kernel_busy += op.duration();
        ++r.kernel_launches;
        break;
      case OpKind::Host:
        host_busy += op.duration();
        break;
    }
  }
  const double span = static_cast<double>(dev.now());
  if (span > 0) {
    r.h2d = static_cast<double>(h2d_busy) / span;
    r.d2h = static_cast<double>(d2h_busy) / span;
    r.kernel = static_cast<double>(kernel_busy) / span;
    r.host = static_cast<double>(host_busy) / span;
  }
  // bytes / busy-ns == GB/s with GB = 1e9.
  if (h2d_busy > 0) {
    r.h2d_gbps = static_cast<double>(r.h2d_bytes) /
                 static_cast<double>(h2d_busy);
  }
  if (d2h_busy > 0) {
    r.d2h_gbps = static_cast<double>(r.d2h_bytes) /
                 static_cast<double>(d2h_busy);
  }
  return r;
}

std::string utilization_summary(const SimDevice& dev) {
  const UtilizationReport r = utilization(dev);
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "H2D %2.0f%% @ %.1f GB/s | D2H %2.0f%% @ %.1f GB/s | "
                "kernel %2.0f%% (%d launches) | host %2.0f%%",
                100.0 * r.h2d, r.h2d_gbps, 100.0 * r.d2h, r.d2h_gbps,
                100.0 * r.kernel, r.kernel_launches, 100.0 * r.host);
  return buf;
}

void record_timeline(const SimDevice& dev, obs::MetricsRegistry& m,
                     const std::string& prefix) {
  for (const auto& op : dev.timeline()) {
    m.span(prefix + "/" + op_kind_name(op.kind),
           static_cast<double>(op.duration()));
    if (op.kind == OpKind::H2D) m.count(prefix + "/h2d_bytes", op.bytes);
    if (op.kind == OpKind::D2H) m.count(prefix + "/d2h_bytes", op.bytes);
    if (op.kind == OpKind::Kernel) m.count(prefix + "/kernel_launches");
  }
  const TimelineBreakdown b = dev.breakdown();
  m.set(prefix + "/makespan_ns", static_cast<double>(b.makespan));
  m.set(prefix + "/overlap_saved_ns",
        static_cast<double>(b.overlap_saved()));
  const UtilizationReport u = utilization(dev);
  m.set(prefix + "/util_h2d", u.h2d);
  m.set(prefix + "/util_d2h", u.d2h);
  m.set(prefix + "/util_kernel", u.kernel);
  m.set(prefix + "/util_host", u.host);
  m.set(prefix + "/h2d_gbps", u.h2d_gbps);
  m.set(prefix + "/d2h_gbps", u.d2h_gbps);
}

}  // namespace scalfrag::gpusim
