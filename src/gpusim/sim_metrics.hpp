#pragma once
// Derived metrics over a simulated timeline: per-engine utilization,
// achieved PCIe bandwidth, and per-kernel throughput — the numbers a
// profiler (nsys/ncu) would report on real hardware, computed from the
// recorded ops instead.

#include <string>

#include "gpusim/engine.hpp"
#include "obs/metrics.hpp"

namespace scalfrag::gpusim {

struct UtilizationReport {
  double h2d = 0.0;     // busy fraction of the makespan, per engine
  double d2h = 0.0;
  double kernel = 0.0;
  double host = 0.0;

  /// Achieved host→device bandwidth over H2D busy time (GB/s,
  /// bytes / busy-ns — setup latency included, hence below peak).
  double h2d_gbps = 0.0;
  double d2h_gbps = 0.0;

  std::size_t h2d_bytes = 0;
  std::size_t d2h_bytes = 0;
  int kernel_launches = 0;
};

/// Compute the report from the device's current timeline.
UtilizationReport utilization(const SimDevice& dev);

/// One-line summary ("H2D 61% @ 22.1 GB/s | kernel 34% (6 launches) ...").
std::string utilization_summary(const SimDevice& dev);

/// Record the device's current timeline into a metrics registry under
/// `prefix`: one span per op kind (fed from the per-op records, so the
/// totals equal breakdown()'s busy sums), the makespan, byte counters,
/// and utilization gauges. The observability layer reuses the existing
/// timeline — nothing here re-times anything.
void record_timeline(const SimDevice& dev, obs::MetricsRegistry& m,
                     const std::string& prefix = "gpu");

}  // namespace scalfrag::gpusim
