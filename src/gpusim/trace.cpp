#include "gpusim/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace scalfrag::gpusim {

namespace {

void write_escaped(std::ostream& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out << c;
    }
  }
}

}  // namespace

void write_chrome_trace(std::ostream& out, const SimDevice& dev) {
  out << "[\n";
  bool first = true;
  for (const auto& r : dev.timeline()) {
    if (!first) out << ",\n";
    first = false;
    out << R"(  {"name": ")";
    write_escaped(out, r.label.empty() ? op_kind_name(r.kind) : r.label);
    out << R"(", "cat": ")" << op_kind_name(r.kind)
        << R"(", "ph": "X", "pid": 1, "tid": ")" << op_kind_name(r.kind)
        << R"(", "ts": )" << static_cast<double>(r.start) / 1e3
        << R"(, "dur": )" << static_cast<double>(r.duration()) / 1e3
        << R"(, "args": {"stream": )" << r.stream << R"(, "bytes": )"
        << r.bytes << "}}";
  }
  out << "\n]\n";
}

std::string ascii_gantt(const SimDevice& dev, int columns) {
  SF_CHECK(columns > 0, "need at least one column");
  std::string out;
  const double span = static_cast<double>(dev.now());
  if (span <= 0.0) return out;
  char line[512];
  for (const auto& r : dev.timeline()) {
    const int beg =
        static_cast<int>(columns * static_cast<double>(r.start) / span);
    const int end = std::max(
        beg + 1,
        static_cast<int>(columns * static_cast<double>(r.end) / span));
    std::string bar(columns, '.');
    const char glyph = r.kind == OpKind::H2D      ? '='
                       : r.kind == OpKind::Kernel ? '#'
                       : r.kind == OpKind::D2H    ? '<'
                                                  : '~';
    for (int c = beg; c < std::min(end, columns); ++c) bar[c] = glyph;
    std::snprintf(line, sizeof line, "s%-2d [%s] %-24s %9.1fus\n", r.stream,
                  bar.c_str(), r.label.substr(0, 24).c_str(),
                  static_cast<double>(r.duration()) / 1e3);
    out += line;
  }
  return out;
}

void write_chrome_trace_file(const std::string& path, const SimDevice& dev) {
  std::ofstream out(path);
  SF_CHECK(out.good(), "cannot open " + path + " for writing");
  write_chrome_trace(out, dev);
  SF_CHECK(out.good(), "write failure on " + path);
}

}  // namespace scalfrag::gpusim
