#pragma once
// Chrome trace-event export of a SimDevice timeline: open the JSON in
// chrome://tracing (or Perfetto) to see the Fig. 8-style pipeline —
// per-engine rows with H2D copies overlapping kernels across streams.

#include <iosfwd>
#include <string>

#include "gpusim/engine.hpp"

namespace scalfrag::gpusim {

/// Write the timeline as a Chrome trace-event JSON array. Rows (tids)
/// are engines (H2D / D2H / Kernel / Host); each op becomes a complete
/// ("X") event carrying its stream and byte count as args. Timestamps
/// are microseconds as the format requires.
void write_chrome_trace(std::ostream& out, const SimDevice& dev);

/// Convenience: write to a file (throws scalfrag::Error on I/O failure).
void write_chrome_trace_file(const std::string& path, const SimDevice& dev);

/// Render the timeline as a fixed-width ASCII Gantt chart (one row per
/// op): '=' H2D, '#' kernel, '<' D2H, '~' host. Good enough to eyeball
/// pipeline overlap in a terminal; use the Chrome trace for real work.
std::string ascii_gantt(const SimDevice& dev, int columns = 72);

}  // namespace scalfrag::gpusim
