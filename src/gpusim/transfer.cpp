#include "gpusim/transfer.hpp"

namespace scalfrag::gpusim {

sim_ns transfer_ns(const DeviceSpec& spec, std::size_t bytes) {
  const double latency_ns = spec.pcie_latency_us * 1e3;
  // bytes / (GB/s) = ns when GB = 1e9 bytes.
  const double wire_ns =
      spec.pcie_bandwidth_gbps > 0
          ? static_cast<double>(bytes) / spec.pcie_bandwidth_gbps
          : 0.0;
  return static_cast<sim_ns>(latency_ns + wire_ns);
}

}  // namespace scalfrag::gpusim
