#pragma once
// Host<->device transfer-time model (the paper's Fig. 5 bottleneck).
// A transfer costs a fixed setup latency plus bytes over the effective
// PCIe bandwidth. Small transfers are latency-dominated, which is why
// over-segmenting in the pipeline executor (Fig. 11) eventually hurts.

#include <cstddef>

#include "common/types.hpp"
#include "gpusim/device_spec.hpp"

namespace scalfrag::gpusim {

/// Simulated duration of a host->device or device->host copy.
sim_ns transfer_ns(const DeviceSpec& spec, std::size_t bytes);

}  // namespace scalfrag::gpusim
