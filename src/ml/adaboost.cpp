#include "ml/adaboost.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>

namespace scalfrag::ml {

void AdaBoostR2Regressor::fit(const Dataset& data) {
  SF_CHECK(!data.empty(), "cannot fit AdaBoost on empty data");
  trees_.clear();
  log_inv_beta_.clear();

  const std::size_t n = data.size();
  std::vector<double> w(n, 1.0 / static_cast<double>(n));
  Rng rng(cfg_.seed);

  for (int round = 0; round < cfg_.n_estimators; ++round) {
    DTreeConfig tc = cfg_.tree;
    tc.seed = rng.next_u64();
    DecisionTreeRegressor tree(tc);
    tree.fit_weighted(data, w);

    // Linear loss normalized by the max residual.
    std::vector<double> loss(n, 0.0);
    double max_err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      loss[i] = std::abs(tree.predict(data.row(i)) - data.target(i));
      max_err = std::max(max_err, loss[i]);
    }
    if (max_err <= 0.0) {
      // Perfect fit: keep this estimator with dominating weight, stop.
      trees_.push_back(std::move(tree));
      log_inv_beta_.push_back(std::log(1e12));
      break;
    }
    for (auto& l : loss) l /= max_err;

    double lbar = 0.0;
    for (std::size_t i = 0; i < n; ++i) lbar += w[i] * loss[i];
    if (lbar >= 0.5) break;  // weak learner no better than chance: stop

    const double beta = lbar / (1.0 - lbar);
    trees_.push_back(std::move(tree));
    log_inv_beta_.push_back(std::log(1.0 / std::max(beta, 1e-12)));

    double wsum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      w[i] *= std::pow(beta, 1.0 - loss[i]);
      wsum += w[i];
    }
    SF_ASSERT(wsum > 0.0, "AdaBoost weights collapsed");
    for (auto& x : w) x /= wsum;
  }

  if (trees_.empty()) {
    // Degenerate data (first learner already >= 0.5 loss): fall back to
    // a single unweighted tree so predict() still works.
    DecisionTreeRegressor tree(cfg_.tree);
    tree.fit(data);
    trees_.push_back(std::move(tree));
    log_inv_beta_.push_back(1.0);
  }
}

double AdaBoostR2Regressor::predict(std::span<const double> x) const {
  SF_CHECK(!trees_.empty(), "predict() before fit()");
  // Weighted median of estimator outputs.
  std::vector<std::pair<double, double>> preds;  // (value, weight)
  preds.reserve(trees_.size());
  for (std::size_t i = 0; i < trees_.size(); ++i) {
    preds.emplace_back(trees_[i].predict(x), log_inv_beta_[i]);
  }
  std::sort(preds.begin(), preds.end());
  double total = 0.0;
  for (const auto& [v, wt] : preds) total += wt;
  double acc = 0.0;
  for (const auto& [v, wt] : preds) {
    acc += wt;
    if (acc >= 0.5 * total) return v;
  }
  return preds.back().first;
}

void AdaBoostR2Regressor::save(std::ostream& out) const {
  out << "adaboost " << trees_.size() << '\n';
  out.precision(17);
  for (std::size_t i = 0; i < log_inv_beta_.size(); ++i) {
    out << (i ? " " : "") << log_inv_beta_[i];
  }
  out << '\n';
  for (const auto& t : trees_) t.save(out);
}

AdaBoostR2Regressor AdaBoostR2Regressor::load(std::istream& in) {
  std::string tag;
  std::size_t count = 0;
  in >> tag >> count;
  SF_CHECK(in.good() && tag == "adaboost", "bad adaboost stream header");
  AdaBoostR2Regressor model;
  model.log_inv_beta_.resize(count);
  for (auto& w : model.log_inv_beta_) in >> w;
  SF_CHECK(!in.fail(), "truncated adaboost weight line");
  model.trees_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    model.trees_.push_back(DecisionTreeRegressor::load(in));
  }
  return model;
}

}  // namespace scalfrag::ml
