#pragma once
// AdaBoost.R2 (Drucker 1997) with shallow CART weak learners — the
// paper's "AdaBoost" candidate. Prediction is the classic weighted
// median of the estimators.

#include "ml/dtree.hpp"

namespace scalfrag::ml {

struct AdaBoostConfig {
  int n_estimators = 30;
  DTreeConfig tree{.max_depth = 5};
  std::uint64_t seed = 29;
};

class AdaBoostR2Regressor final : public Regressor {
 public:
  explicit AdaBoostR2Regressor(AdaBoostConfig cfg = {}) : cfg_(cfg) {}

  void fit(const Dataset& data) override;
  double predict(std::span<const double> features) const override;
  std::string name() const override { return "AdaBoost"; }

  std::size_t size() const noexcept { return trees_.size(); }

  /// Text (de)serialization, stream-composable like the tree's:
  /// `adaboost <n>`, one confidence-weight line, then n tree blocks.
  void save(std::ostream& out) const;
  static AdaBoostR2Regressor load(std::istream& in);

 private:
  AdaBoostConfig cfg_;
  std::vector<DecisionTreeRegressor> trees_;
  std::vector<double> log_inv_beta_;  // estimator confidence weights
};

}  // namespace scalfrag::ml
