#include "ml/bagging.hpp"

#include <cmath>
#include <istream>
#include <ostream>

#include "common/thread_pool.hpp"

namespace scalfrag::ml {

void BaggingRegressor::fit(const Dataset& data) {
  SF_CHECK(!data.empty(), "cannot fit bagging on empty data");
  SF_CHECK(cfg_.n_estimators > 0, "need at least one estimator");
  trees_.clear();
  trees_.reserve(cfg_.n_estimators);

  const auto n_draw = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(cfg_.sample_frac * static_cast<double>(data.size()))));

  // Prepare per-member bootstrap datasets and configs up front (serial,
  // deterministic), then fit members in parallel.
  std::vector<Dataset> boots;
  boots.reserve(cfg_.n_estimators);
  Rng rng(cfg_.seed);
  for (int t = 0; t < cfg_.n_estimators; ++t) {
    std::vector<std::size_t> rows(n_draw);
    for (auto& r : rows) r = rng.next_below(data.size());
    boots.push_back(data.subset(rows));

    DTreeConfig tc = cfg_.tree;
    tc.feature_frac = cfg_.feature_frac;
    tc.seed = rng.next_u64();
    trees_.emplace_back(tc);
  }

  ThreadPool::global().parallel_for(
      0, trees_.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) trees_[i].fit(boots[i]);
      });
}

double BaggingRegressor::predict(std::span<const double> x) const {
  SF_CHECK(!trees_.empty(), "predict() before fit()");
  double s = 0.0;
  for (const auto& t : trees_) s += t.predict(x);
  return s / static_cast<double>(trees_.size());
}

void BaggingRegressor::save(std::ostream& out) const {
  out << "bagging " << trees_.size() << '\n';
  for (const auto& t : trees_) t.save(out);
}

BaggingRegressor BaggingRegressor::load(std::istream& in) {
  std::string tag;
  std::size_t count = 0;
  in >> tag >> count;
  SF_CHECK(in.good() && tag == "bagging", "bad bagging stream header");
  BaggingRegressor model;
  model.trees_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    model.trees_.push_back(DecisionTreeRegressor::load(in));
  }
  return model;
}

}  // namespace scalfrag::ml
