#pragma once
// Bagging ensemble of CART trees (paper §IV-B's "Bagging" candidate —
// with feature subsampling it is a random forest). Members train
// concurrently on the global thread pool.

#include "ml/dtree.hpp"

namespace scalfrag::ml {

struct BaggingConfig {
  int n_estimators = 24;
  double sample_frac = 1.0;   // bootstrap sample size fraction
  double feature_frac = 0.7;  // per-split feature subsample
  DTreeConfig tree;
  std::uint64_t seed = 13;
};

class BaggingRegressor final : public Regressor {
 public:
  explicit BaggingRegressor(BaggingConfig cfg = {}) : cfg_(cfg) {}

  void fit(const Dataset& data) override;
  double predict(std::span<const double> features) const override;
  std::string name() const override { return "Bagging"; }

  std::size_t size() const noexcept { return trees_.size(); }

  /// Text (de)serialization, stream-composable like the tree's:
  /// `bagging <n>` then n tree blocks.
  void save(std::ostream& out) const;
  static BaggingRegressor load(std::istream& in);

 private:
  BaggingConfig cfg_;
  std::vector<DecisionTreeRegressor> trees_;
};

}  // namespace scalfrag::ml
