#include "ml/cv.hpp"

#include <cmath>
#include <numeric>

#include "common/timer.hpp"

namespace scalfrag::ml {

CvResult k_fold_cv(
    const Dataset& data, int folds,
    const std::function<std::unique_ptr<Regressor>()>& make_model,
    const std::function<double(const std::vector<double>&,
                               const std::vector<double>&)>& metric,
    std::uint64_t seed) {
  SF_CHECK(folds >= 2, "need at least two folds");
  SF_CHECK(data.size() >= static_cast<std::size_t>(folds),
           "need at least one row per fold");

  std::vector<std::size_t> perm(data.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  Rng rng(seed);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }

  CvResult res;
  WallTimer timer;
  const std::size_t per_fold = data.size() / folds;
  for (int f = 0; f < folds; ++f) {
    const std::size_t lo = f * per_fold;
    const std::size_t hi =
        f + 1 == folds ? data.size() : (f + 1) * per_fold;
    std::vector<std::size_t> test_rows(perm.begin() + lo, perm.begin() + hi);
    std::vector<std::size_t> train_rows;
    train_rows.reserve(data.size() - test_rows.size());
    train_rows.insert(train_rows.end(), perm.begin(), perm.begin() + lo);
    train_rows.insert(train_rows.end(), perm.begin() + hi, perm.end());

    const Dataset train = data.subset(train_rows);
    const Dataset test = data.subset(test_rows);

    auto model = make_model();
    model->fit(train);
    res.fold_metric.push_back(
        metric(test.targets(), model->predict_all(test)));
  }
  res.total_train_seconds = timer.seconds();

  for (double m : res.fold_metric) res.mean += m;
  res.mean /= static_cast<double>(folds);
  double var = 0.0;
  for (double m : res.fold_metric) var += (m - res.mean) * (m - res.mean);
  res.stddev = std::sqrt(var / static_cast<double>(folds));
  return res;
}

}  // namespace scalfrag::ml
