#pragma once
// K-fold cross-validation for the launch-model zoo: the evaluation
// protocol behind the paper's model comparison ("we evaluate the
// trained model in terms of prediction accuracy, training and inference
// time", §IV-B). Folds are contiguous slices of a shuffled permutation,
// so every row is tested exactly once.

#include <functional>

#include "ml/regressor.hpp"

namespace scalfrag::ml {

struct CvResult {
  std::vector<double> fold_metric;  // one entry per fold
  double mean = 0.0;
  double stddev = 0.0;
  double total_train_seconds = 0.0;
};

/// `make_model` builds a fresh untrained model per fold; `metric`
/// scores (truth, prediction) vectors — e.g. ml::mape or ml::rmse.
CvResult k_fold_cv(
    const Dataset& data, int folds,
    const std::function<std::unique_ptr<Regressor>()>& make_model,
    const std::function<double(const std::vector<double>&,
                               const std::vector<double>&)>& metric,
    std::uint64_t seed = 1);

}  // namespace scalfrag::ml
