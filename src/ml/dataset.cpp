#include "ml/dataset.hpp"

#include <cmath>
#include <numeric>

namespace scalfrag::ml {

void Dataset::add(std::span<const double> features, double target) {
  if (dim_ == 0) dim_ = features.size();
  SF_CHECK(features.size() == dim_, "feature arity mismatch");
  x_.insert(x_.end(), features.begin(), features.end());
  y_.push_back(target);
}

Dataset Dataset::subset(const std::vector<std::size_t>& rows) const {
  Dataset out(dim_);
  for (std::size_t r : rows) {
    SF_CHECK(r < size(), "subset row out of range");
    out.add(row(r), y_[r]);
  }
  return out;
}

std::pair<Dataset, Dataset> Dataset::train_test_split(
    double test_frac, std::uint64_t seed) const {
  SF_CHECK(test_frac >= 0.0 && test_frac <= 1.0, "test_frac must be in [0,1]");
  std::vector<std::size_t> perm(size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  Rng rng(seed);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  const auto n_test = static_cast<std::size_t>(
      std::llround(test_frac * static_cast<double>(size())));
  std::vector<std::size_t> test_rows(perm.begin(), perm.begin() + n_test);
  std::vector<std::size_t> train_rows(perm.begin() + n_test, perm.end());
  return {subset(train_rows), subset(test_rows)};
}

void Dataset::column_stats(std::vector<double>& mean,
                           std::vector<double>& std) const {
  mean.assign(dim_, 0.0);
  std.assign(dim_, 0.0);
  if (empty()) return;
  for (std::size_t i = 0; i < size(); ++i) {
    auto r = row(i);
    for (std::size_t j = 0; j < dim_; ++j) mean[j] += r[j];
  }
  for (auto& m : mean) m /= static_cast<double>(size());
  for (std::size_t i = 0; i < size(); ++i) {
    auto r = row(i);
    for (std::size_t j = 0; j < dim_; ++j) {
      const double d = r[j] - mean[j];
      std[j] += d * d;
    }
  }
  for (auto& s : std) {
    s = std::sqrt(s / static_cast<double>(size()));
    if (s < 1e-12) s = 1.0;  // constant column: identity scaling
  }
}

}  // namespace scalfrag::ml
