#pragma once
// Tabular regression dataset for the adaptive-launch models: rows are
// (tensor features ⊕ launch-config features), targets are achieved
// GFlops from the cost-model sweep.

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace scalfrag::ml {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t dim) : dim_(dim) {}

  std::size_t size() const noexcept { return y_.size(); }
  std::size_t dim() const noexcept { return dim_; }
  bool empty() const noexcept { return y_.empty(); }

  void add(std::span<const double> features, double target);

  std::span<const double> row(std::size_t i) const {
    return {x_.data() + i * dim_, dim_};
  }
  double target(std::size_t i) const { return y_[i]; }
  const std::vector<double>& targets() const noexcept { return y_; }

  /// Row subset (bootstrap / split helper).
  Dataset subset(const std::vector<std::size_t>& rows) const;

  /// Shuffled train/test split; test gets round(test_frac · size) rows.
  std::pair<Dataset, Dataset> train_test_split(double test_frac,
                                               std::uint64_t seed) const;

  /// Per-column mean/stddev (stddev floored at tiny epsilon) — used by
  /// models that need standardized inputs (SVR, k-NN).
  void column_stats(std::vector<double>& mean, std::vector<double>& std) const;

 private:
  std::size_t dim_ = 0;
  std::vector<double> x_;  // row-major size()×dim()
  std::vector<double> y_;
};

}  // namespace scalfrag::ml
