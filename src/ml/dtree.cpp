#include "ml/dtree.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>

namespace scalfrag::ml {

void DecisionTreeRegressor::fit(const Dataset& data) {
  fit_weighted(data, std::vector<double>(data.size(), 1.0));
}

void DecisionTreeRegressor::fit_weighted(const Dataset& data,
                                         const std::vector<double>& weights) {
  SF_CHECK(!data.empty(), "cannot fit a tree on an empty dataset");
  SF_CHECK(weights.size() == data.size(), "one weight per sample");
  nodes_.clear();
  depth_ = 0;
  importance_.assign(data.dim(), 0.0);
  std::vector<std::size_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  Rng rng(cfg_.seed);
  build(data, weights, rows, 0, rng);
  double total = 0.0;
  for (double g : importance_) total += g;
  if (total > 0.0) {
    for (double& g : importance_) g /= total;
  }
}

std::int32_t DecisionTreeRegressor::build(const Dataset& data,
                                          const std::vector<double>& w,
                                          std::vector<std::size_t>& rows,
                                          int depth, Rng& rng) {
  depth_ = std::max(depth_, depth);
  double wsum = 0.0, wysum = 0.0;
  for (std::size_t r : rows) {
    wsum += w[r];
    wysum += w[r] * data.target(r);
  }
  const double mean = wsum > 0 ? wysum / wsum : 0.0;

  const auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.value = mean;
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (depth >= cfg_.max_depth || rows.size() < cfg_.min_samples_split) {
    return make_leaf();
  }

  // Candidate features (optionally subsampled for ensembles).
  std::vector<std::size_t> feats(data.dim());
  std::iota(feats.begin(), feats.end(), std::size_t{0});
  if (cfg_.feature_frac < 1.0) {
    const auto keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(cfg_.feature_frac * static_cast<double>(data.dim()))));
    for (std::size_t i = feats.size(); i > 1; --i) {
      std::swap(feats[i - 1], feats[rng.next_below(i)]);
    }
    feats.resize(keep);
  }

  // Best split: sort rows by feature, scan boundaries between distinct
  // values; maximize SSE reduction == minimize left+right weighted SSE.
  double best_gain = 0.0;
  std::size_t best_feat = 0;
  double best_thresh = 0.0;

  const double total_sse_base = [&] {
    double s = 0.0;
    for (std::size_t r : rows) {
      const double d = data.target(r) - mean;
      s += w[r] * d * d;
    }
    return s;
  }();

  std::vector<std::size_t> order(rows);
  for (std::size_t f : feats) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return data.row(a)[f] < data.row(b)[f];
    });
    double lw = 0.0, lwy = 0.0, lwy2 = 0.0;
    double rw = wsum, rwy = wysum, rwy2 = 0.0;
    for (std::size_t r : rows) {
      const double y = data.target(r);
      rwy2 += w[r] * y * y;
    }
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      const std::size_t r = order[i];
      const double y = data.target(r);
      lw += w[r];
      lwy += w[r] * y;
      lwy2 += w[r] * y * y;
      rw -= w[r];
      rwy -= w[r] * y;
      rwy2 -= w[r] * y * y;
      const double xv = data.row(r)[f];
      const double xn = data.row(order[i + 1])[f];
      if (xv == xn) continue;  // can't split inside equal values
      if (i + 1 < cfg_.min_samples_leaf ||
          order.size() - (i + 1) < cfg_.min_samples_leaf) {
        continue;
      }
      if (lw <= 0.0 || rw <= 0.0) continue;
      const double lsse = lwy2 - lwy * lwy / lw;
      const double rsse = rwy2 - rwy * rwy / rw;
      const double gain = total_sse_base - (lsse + rsse);
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_feat = f;
        best_thresh = 0.5 * (xv + xn);
      }
    }
  }

  if (best_gain <= 0.0) return make_leaf();

  std::vector<std::size_t> left_rows, right_rows;
  for (std::size_t r : rows) {
    (data.row(r)[best_feat] <= best_thresh ? left_rows : right_rows)
        .push_back(r);
  }
  if (left_rows.empty() || right_rows.empty()) return make_leaf();

  importance_[best_feat] += best_gain;

  const auto id = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[id].feature = static_cast<int>(best_feat);
  nodes_[id].threshold = best_thresh;
  const std::int32_t l = build(data, w, left_rows, depth + 1, rng);
  const std::int32_t r = build(data, w, right_rows, depth + 1, rng);
  nodes_[id].left = l;
  nodes_[id].right = r;
  return id;
}

double DecisionTreeRegressor::predict(std::span<const double> x) const {
  SF_CHECK(trained(), "predict() before fit()");
  std::int32_t n = 0;
  for (;;) {
    const Node& node = nodes_[n];
    if (node.feature < 0) return node.value;
    SF_CHECK(static_cast<std::size_t>(node.feature) < x.size(),
             "feature vector too short for this tree");
    n = x[node.feature] <= node.threshold ? node.left : node.right;
  }
}

void DecisionTreeRegressor::save(std::ostream& out) const {
  out << "dtree " << nodes_.size() << ' ' << depth_ << '\n';
  out.precision(17);
  for (const auto& n : nodes_) {
    out << n.feature << ' ' << n.threshold << ' ' << n.value << ' ' << n.left
        << ' ' << n.right << '\n';
  }
}

DecisionTreeRegressor DecisionTreeRegressor::load(std::istream& in) {
  std::string tag;
  std::size_t count = 0;
  int depth = 0;
  in >> tag >> count >> depth;
  SF_CHECK(in.good() && tag == "dtree", "bad decision-tree stream header");
  DecisionTreeRegressor t;
  t.depth_ = depth;
  t.nodes_.resize(count);
  for (auto& n : t.nodes_) {
    in >> n.feature >> n.threshold >> n.value >> n.left >> n.right;
  }
  SF_CHECK(!in.fail(), "truncated decision-tree stream");
  return t;
}

}  // namespace scalfrag::ml
