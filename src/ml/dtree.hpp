#pragma once
// CART regression tree — the model the paper's evaluation picks
// ("the DecisionTree regressor has the lowest MAPE, less than 15%").
// Splits minimize the sum of squared errors; split search is the
// standard sort-and-scan over each feature.

#include <cstdint>
#include <iosfwd>

#include "ml/regressor.hpp"

namespace scalfrag::ml {

struct DTreeConfig {
  int max_depth = 14;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 1;
  /// Consider only a random subset of ceil(frac · dim) features per
  /// split (1.0 = all). Used by the bagging/boosting ensembles.
  double feature_frac = 1.0;
  std::uint64_t seed = 7;
};

class DecisionTreeRegressor final : public Regressor {
 public:
  explicit DecisionTreeRegressor(DTreeConfig cfg = {}) : cfg_(cfg) {}

  void fit(const Dataset& data) override;
  double predict(std::span<const double> features) const override;
  std::string name() const override { return "DecisionTree"; }

  bool trained() const noexcept { return !nodes_.empty(); }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  int depth() const noexcept { return depth_; }

  /// Gain-weighted feature importance (sums to 1 unless the tree is a
  /// single leaf, then all-zero). Index = feature position.
  const std::vector<double>& feature_importance() const noexcept {
    return importance_;
  }

  /// Text (de)serialization — one node per line.
  void save(std::ostream& out) const;
  static DecisionTreeRegressor load(std::istream& in);

  /// Fit on a weighted sample (AdaBoost.R2 support): `weights` must sum
  /// to a positive value; the tree minimizes weighted SSE.
  void fit_weighted(const Dataset& data, const std::vector<double>& weights);

 private:
  struct Node {
    // Leaf iff feature < 0.
    int feature = -1;
    double threshold = 0.0;
    double value = 0.0;  // leaf prediction
    std::int32_t left = -1;
    std::int32_t right = -1;
  };

  std::int32_t build(const Dataset& data, const std::vector<double>& w,
                     std::vector<std::size_t>& rows, int depth, Rng& rng);

  DTreeConfig cfg_;
  std::vector<Node> nodes_;
  std::vector<double> importance_;
  int depth_ = 0;
};

}  // namespace scalfrag::ml
