#include "ml/grid_search.hpp"

#include <limits>

namespace scalfrag::ml {

GridSearchResult grid_search_dtree(
    const Dataset& data, const std::vector<int>& max_depths,
    const std::vector<std::size_t>& min_leaf_sizes, int folds,
    const std::function<double(const std::vector<double>&,
                               const std::vector<double>&)>& metric,
    std::uint64_t seed) {
  SF_CHECK(!max_depths.empty() && !min_leaf_sizes.empty(),
           "grid must be non-empty");

  GridSearchResult res;
  res.best_score = std::numeric_limits<double>::infinity();
  for (int depth : max_depths) {
    for (std::size_t leaf : min_leaf_sizes) {
      DTreeConfig cfg;
      cfg.max_depth = depth;
      cfg.min_samples_leaf = leaf;
      cfg.seed = seed;
      const CvResult cv = k_fold_cv(
          data, folds,
          [&] { return std::make_unique<DecisionTreeRegressor>(cfg); },
          metric, seed);
      res.trials.emplace_back(cfg, cv.mean);
      if (cv.mean < res.best_score) {
        res.best_score = cv.mean;
        res.best = cfg;
      }
    }
  }
  return res;
}

}  // namespace scalfrag::ml
