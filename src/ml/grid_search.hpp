#pragma once
// Hyper-parameter grid search over decision-tree configurations, scored
// by k-fold cross-validation — the tuning loop behind "to obtain the
// best prediction performance, we try various machine learning models"
// (§IV-B), applied within the winning model family.

#include "ml/cv.hpp"
#include "ml/dtree.hpp"

namespace scalfrag::ml {

struct GridSearchResult {
  DTreeConfig best;
  double best_score = 0.0;  // lower is better (metric mean across folds)
  /// All evaluated (config, score) pairs, in evaluation order.
  std::vector<std::pair<DTreeConfig, double>> trials;
};

/// Exhaustively evaluate the cross product of `max_depths` ×
/// `min_leaf_sizes` with `folds`-fold CV under `metric` (lower =
/// better); returns the winner and the full trial log.
GridSearchResult grid_search_dtree(
    const Dataset& data, const std::vector<int>& max_depths,
    const std::vector<std::size_t>& min_leaf_sizes, int folds,
    const std::function<double(const std::vector<double>&,
                               const std::vector<double>&)>& metric,
    std::uint64_t seed = 11);

}  // namespace scalfrag::ml
