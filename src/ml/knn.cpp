#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>

namespace scalfrag::ml {

void KnnRegressor::fit(const Dataset& data) {
  SF_CHECK(!data.empty(), "cannot fit k-NN on empty data");
  SF_CHECK(cfg_.k > 0, "k must be positive");
  train_ = data;
  train_.column_stats(x_mean_, x_std_);
}

double KnnRegressor::predict(std::span<const double> x) const {
  SF_CHECK(!train_.empty(), "predict() before fit()");
  SF_CHECK(x.size() == train_.dim(), "feature arity mismatch");
  const auto k = std::min<std::size_t>(cfg_.k, train_.size());

  std::vector<std::pair<double, double>> dist;  // (distance², target)
  dist.reserve(train_.size());
  for (std::size_t i = 0; i < train_.size(); ++i) {
    auto r = train_.row(i);
    double d2 = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j) {
      const double d = (x[j] - r[j]) / x_std_[j];
      d2 += d * d;
    }
    dist.emplace_back(d2, train_.target(i));
  }
  std::partial_sort(dist.begin(), dist.begin() + k, dist.end());
  double s = 0.0;
  for (std::size_t i = 0; i < k; ++i) s += dist[i].second;
  return s / static_cast<double>(k);
}

}  // namespace scalfrag::ml
