#pragma once
// Brute-force k-nearest-neighbours regression on standardized features.
// Not in the paper's candidate list; included as a sanity baseline for
// the model-comparison bench (a good tree should beat it).

#include "ml/regressor.hpp"

namespace scalfrag::ml {

struct KnnConfig {
  int k = 5;
};

class KnnRegressor final : public Regressor {
 public:
  explicit KnnRegressor(KnnConfig cfg = {}) : cfg_(cfg) {}

  void fit(const Dataset& data) override;
  double predict(std::span<const double> features) const override;
  std::string name() const override { return "kNN"; }

 private:
  KnnConfig cfg_;
  Dataset train_;
  std::vector<double> x_mean_, x_std_;
};

}  // namespace scalfrag::ml
