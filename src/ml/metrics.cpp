#include "ml/metrics.hpp"

#include <cmath>

#include "common/error.hpp"

namespace scalfrag::ml {

namespace {
void check_sizes(const std::vector<double>& a, const std::vector<double>& b) {
  SF_CHECK(a.size() == b.size() && !a.empty(),
           "metric inputs must be equal-length and non-empty");
}
}  // namespace

double mape(const std::vector<double>& truth, const std::vector<double>& pred,
            double floor) {
  check_sizes(truth, pred);
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double denom = std::max(std::abs(truth[i]), floor);
    s += std::abs(truth[i] - pred[i]) / denom;
  }
  return 100.0 * s / static_cast<double>(truth.size());
}

double mae(const std::vector<double>& truth, const std::vector<double>& pred) {
  check_sizes(truth, pred);
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    s += std::abs(truth[i] - pred[i]);
  }
  return s / static_cast<double>(truth.size());
}

double rmse(const std::vector<double>& truth, const std::vector<double>& pred) {
  check_sizes(truth, pred);
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - pred[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(truth.size()));
}

double r2(const std::vector<double>& truth, const std::vector<double>& pred) {
  check_sizes(truth, pred);
  double mean = 0.0;
  for (double t : truth) mean += t;
  mean /= static_cast<double>(truth.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  return ss_tot > 0 ? 1.0 - ss_res / ss_tot : 0.0;
}

}  // namespace scalfrag::ml
