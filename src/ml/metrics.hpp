#pragma once
// Regression quality metrics. MAPE is the paper's headline number for
// the launch model ("DecisionTree regressor has the lowest MAPE, less
// than 15%").

#include <vector>

namespace scalfrag::ml {

/// Mean absolute percentage error, in percent. Targets with |y| below
/// `floor` are clamped to avoid division blow-ups.
double mape(const std::vector<double>& truth, const std::vector<double>& pred,
            double floor = 1e-9);

double mae(const std::vector<double>& truth, const std::vector<double>& pred);
double rmse(const std::vector<double>& truth, const std::vector<double>& pred);

/// Coefficient of determination.
double r2(const std::vector<double>& truth, const std::vector<double>& pred);

}  // namespace scalfrag::ml
