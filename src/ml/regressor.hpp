#pragma once
// Common interface of all launch-parameter prediction models (paper
// §IV-B tries DecisionTree, SVM, AdaBoost, Bagging; we add k-NN).

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace scalfrag::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  virtual void fit(const Dataset& data) = 0;
  virtual double predict(std::span<const double> features) const = 0;
  virtual std::string name() const = 0;

  std::vector<double> predict_all(const Dataset& data) const {
    std::vector<double> out;
    out.reserve(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      out.push_back(predict(data.row(i)));
    }
    return out;
  }
};

}  // namespace scalfrag::ml
