#include "ml/serialize.hpp"

#include <fstream>

namespace scalfrag::ml {

void save_tree_file(const std::string& path, const DecisionTreeRegressor& t) {
  std::ofstream out(path);
  SF_CHECK(out.good(), "cannot open " + path + " for writing");
  t.save(out);
  SF_CHECK(out.good(), "write failure on " + path);
}

DecisionTreeRegressor load_tree_file(const std::string& path) {
  std::ifstream in(path);
  SF_CHECK(in.good(), "cannot open " + path);
  return DecisionTreeRegressor::load(in);
}

}  // namespace scalfrag::ml
