#include "ml/serialize.hpp"

#include <fstream>

namespace scalfrag::ml {
namespace {

template <class Model, class SaveFn>
void save_model_file(const std::string& path, const Model& m, SaveFn save) {
  std::ofstream out(path);
  SF_CHECK(out.good(), "cannot open " + path + " for writing");
  save(out, m);
  SF_CHECK(out.good(), "write failure on " + path);
}

template <class LoadFn>
auto load_model_file(const std::string& path, LoadFn load) {
  std::ifstream in(path);
  SF_CHECK(in.good(), "cannot open " + path);
  return load(in);
}

}  // namespace

void save_tree_file(const std::string& path, const DecisionTreeRegressor& t) {
  save_model_file(path, t, [](std::ostream& o, const auto& m) { m.save(o); });
}

DecisionTreeRegressor load_tree_file(const std::string& path) {
  return load_model_file(
      path, [](std::istream& i) { return DecisionTreeRegressor::load(i); });
}

void save_adaboost_file(const std::string& path,
                        const AdaBoostR2Regressor& model) {
  save_model_file(path, model,
                  [](std::ostream& o, const auto& m) { m.save(o); });
}

AdaBoostR2Regressor load_adaboost_file(const std::string& path) {
  return load_model_file(
      path, [](std::istream& i) { return AdaBoostR2Regressor::load(i); });
}

void save_bagging_file(const std::string& path,
                       const BaggingRegressor& model) {
  save_model_file(path, model,
                  [](std::ostream& o, const auto& m) { m.save(o); });
}

BaggingRegressor load_bagging_file(const std::string& path) {
  return load_model_file(
      path, [](std::istream& i) { return BaggingRegressor::load(i); });
}

}  // namespace scalfrag::ml
