#pragma once
// File-level (de)serialization helpers for trained models, so the
// autotuner's offline training phase ("training needs to be performed
// only once", §IV-B) can persist its model between runs.

#include <string>

#include "ml/adaboost.hpp"
#include "ml/bagging.hpp"
#include "ml/dtree.hpp"

namespace scalfrag::ml {

void save_tree_file(const std::string& path, const DecisionTreeRegressor& t);
DecisionTreeRegressor load_tree_file(const std::string& path);

void save_adaboost_file(const std::string& path,
                        const AdaBoostR2Regressor& model);
AdaBoostR2Regressor load_adaboost_file(const std::string& path);

void save_bagging_file(const std::string& path, const BaggingRegressor& model);
BaggingRegressor load_bagging_file(const std::string& path);

}  // namespace scalfrag::ml
