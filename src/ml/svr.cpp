#include "ml/svr.hpp"

#include <cmath>
#include <numeric>

namespace scalfrag::ml {

void LinearSvrRegressor::fit(const Dataset& data) {
  SF_CHECK(!data.empty(), "cannot fit SVR on empty data");
  const std::size_t d = data.dim();
  data.column_stats(x_mean_, x_std_);

  double ysum = 0.0, ysq = 0.0;
  for (double y : data.targets()) {
    ysum += y;
    ysq += y * y;
  }
  y_mean_ = ysum / static_cast<double>(data.size());
  const double yvar =
      std::max(0.0, ysq / static_cast<double>(data.size()) - y_mean_ * y_mean_);
  y_std_ = yvar > 1e-24 ? std::sqrt(yvar) : 1.0;

  w_.assign(d, 0.0);
  b_ = 0.0;
  std::vector<double> w_avg(d, 0.0);
  double b_avg = 0.0;
  std::size_t avg_n = 0;

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng(cfg_.seed);
  std::vector<double> xs(d);

  long step = 0;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    for (std::size_t r : order) {
      ++step;
      const double lr = cfg_.lr / (1.0 + 1e-3 * static_cast<double>(step));
      auto row = data.row(r);
      for (std::size_t j = 0; j < d; ++j) {
        xs[j] = (row[j] - x_mean_[j]) / x_std_[j];
      }
      const double yt = (data.target(r) - y_mean_) / y_std_;
      double pred = b_;
      for (std::size_t j = 0; j < d; ++j) pred += w_[j] * xs[j];
      const double err = pred - yt;
      // Subgradient of ε-insensitive loss + L2.
      double g = 0.0;
      if (err > cfg_.epsilon) {
        g = 1.0;
      } else if (err < -cfg_.epsilon) {
        g = -1.0;
      }
      for (std::size_t j = 0; j < d; ++j) {
        w_[j] -= lr * (g * xs[j] + cfg_.lambda * w_[j]);
      }
      b_ -= lr * g;
      // Polyak averaging over the second half of training.
      if (epoch >= cfg_.epochs / 2) {
        for (std::size_t j = 0; j < d; ++j) w_avg[j] += w_[j];
        b_avg += b_;
        ++avg_n;
      }
    }
  }
  if (avg_n > 0) {
    for (std::size_t j = 0; j < d; ++j) {
      w_[j] = w_avg[j] / static_cast<double>(avg_n);
    }
    b_ = b_avg / static_cast<double>(avg_n);
  }
}

double LinearSvrRegressor::predict(std::span<const double> x) const {
  SF_CHECK(!w_.empty(), "predict() before fit()");
  SF_CHECK(x.size() == w_.size(), "feature arity mismatch");
  double pred = b_;
  for (std::size_t j = 0; j < w_.size(); ++j) {
    pred += w_[j] * (x[j] - x_mean_[j]) / x_std_[j];
  }
  return pred * y_std_ + y_mean_;
}

}  // namespace scalfrag::ml
