#pragma once
// Linear ε-insensitive support vector regression trained by averaged
// SGD — the paper's "SVM" candidate. Features and targets are
// standardized internally; the linear hypothesis is a weak fit for the
// launch-tuning surface, which is exactly the paper's finding (the
// tree-based models win).

#include "ml/regressor.hpp"

namespace scalfrag::ml {

struct SvrConfig {
  double epsilon = 0.05;  // ε-tube, in standardized-target units
  double lambda = 1e-4;   // L2 regularization
  double lr = 0.05;       // initial learning rate
  int epochs = 60;
  std::uint64_t seed = 31;
};

class LinearSvrRegressor final : public Regressor {
 public:
  explicit LinearSvrRegressor(SvrConfig cfg = {}) : cfg_(cfg) {}

  void fit(const Dataset& data) override;
  double predict(std::span<const double> features) const override;
  std::string name() const override { return "LinearSVR"; }

 private:
  SvrConfig cfg_;
  std::vector<double> w_;
  double b_ = 0.0;
  std::vector<double> x_mean_, x_std_;
  double y_mean_ = 0.0, y_std_ = 1.0;
};

}  // namespace scalfrag::ml
