#include "obs/artifacts.hpp"

#include <cstdlib>
#include <filesystem>

#include "common/error.hpp"

namespace scalfrag::obs {

namespace {
std::string& override_dir() {
  static std::string dir;
  return dir;
}
}  // namespace

void set_artifact_dir(const std::string& dir) { override_dir() = dir; }

std::string artifact_dir() {
  std::string dir = override_dir();
  if (dir.empty()) {
    const char* env = std::getenv("SCALFRAG_ARTIFACT_DIR");
    dir = (env != nullptr && env[0] != '\0') ? env : "bench_artifacts";
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw Error("cannot create artifact directory " + dir + ": " +
                ec.message());
  }
  return dir;
}

std::string artifact_path(const std::string& filename) {
  return (std::filesystem::path(artifact_dir()) / filename).string();
}

}  // namespace scalfrag::obs
