#pragma once
// Where bench and trace outputs land. Benches used to drop
// BENCH_*.json / trace files into whatever the current working
// directory happened to be (polluting the repo root when run from
// there); every artifact now goes through one resolved directory:
//
//   1. an explicit set_artifact_dir() (e.g. a bench's --out flag), else
//   2. $SCALFRAG_ARTIFACT_DIR, else
//   3. ./bench_artifacts (created on demand, gitignored).

#include <string>

namespace scalfrag::obs {

/// Override the artifact directory for this process (wins over the
/// environment). Empty string resets to the default resolution.
void set_artifact_dir(const std::string& dir);

/// The resolved artifact directory, created if missing.
std::string artifact_dir();

/// `filename` placed inside artifact_dir().
std::string artifact_path(const std::string& filename);

}  // namespace scalfrag::obs
