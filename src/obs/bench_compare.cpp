#include "obs/bench_compare.hpp"

#include <cmath>
#include <cstdio>

#include "common/format.hpp"

namespace scalfrag::obs {

namespace {

void check_schema(const JsonValue& doc, const std::string& which) {
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kBenchSchemaName) {
    throw Error(which + ": not a " + std::string(kBenchSchemaName) +
                " document");
  }
  const double version = doc.at("schema_version").as_number();
  if (version != kBenchSchemaVersion) {
    throw Error(which + ": schema_version " + fmt_double(version, 0) +
                " unsupported (expected " +
                std::to_string(kBenchSchemaVersion) + ")");
  }
}

const JsonValue* find_case(const JsonValue& doc, const std::string& name) {
  for (const JsonValue& c : doc.at("cases").as_array()) {
    if (c.at("name").as_string() == name) return &c;
  }
  return nullptr;
}

/// meta.<key> of a document, or "" — pre-meta (PR 5 and earlier) files
/// simply have no environment record.
std::string meta_str(const JsonValue& doc, const char* key) {
  const JsonValue* meta = doc.find("meta");
  if (meta == nullptr || !meta->is_object()) return "";
  const JsonValue* v = meta->find(key);
  return v != nullptr && v->is_string() ? v->as_string() : "";
}

bool metric_isa_sensitive(const JsonValue& m) {
  const JsonValue* f = m.find("isa_sensitive");
  return f != nullptr && f->as_bool();
}

}  // namespace

std::size_t CompareReport::regressions() const {
  std::size_t n = 0;
  for (const MetricDelta& d : deltas) n += d.regression;
  return n;
}

std::size_t CompareReport::improvements() const {
  std::size_t n = 0;
  for (const MetricDelta& d : deltas) n += d.improvement;
  return n;
}

CompareReport compare_bench(const JsonValue& baseline,
                            const JsonValue& current,
                            const CompareOptions& opt) {
  check_schema(baseline, "baseline");
  check_schema(current, "current");
  const std::string bench = baseline.at("bench").as_string();
  if (current.at("bench").as_string() != bench) {
    throw Error("bench mismatch: baseline is \"" + bench +
                "\", current is \"" + current.at("bench").as_string() + "\"");
  }

  CompareReport rep;
  rep.bench = bench;
  rep.threshold = opt.threshold;

  // ISA provenance. Only flag a mismatch when both sides carry a meta
  // block — a missing block (pre-meta baseline) cannot prove anything.
  const std::string base_isa = meta_str(baseline, "host_isa");
  const std::string cur_isa = meta_str(current, "host_isa");
  const std::string base_w = meta_str(baseline, "vector_width");
  const std::string cur_w = meta_str(current, "vector_width");
  if (!base_isa.empty() && !cur_isa.empty() &&
      (base_isa != cur_isa || base_w != cur_w)) {
    rep.isa_mismatch = true;
    rep.notes.push_back(
        "WARNING: host ISA mismatch — baseline ran " + base_isa + " (" +
        base_w + " lanes), current ran " + cur_isa + " (" + cur_w +
        " lanes); isa-sensitive metrics are reported but NOT gated");
  }

  for (const JsonValue& base_case : baseline.at("cases").as_array()) {
    const std::string case_name = base_case.at("name").as_string();
    const JsonValue* cur_case = find_case(current, case_name);
    if (cur_case == nullptr) {
      rep.notes.push_back("case \"" + case_name + "\" missing from current");
      continue;
    }
    const auto& cur_metrics = cur_case->at("metrics");
    for (const auto& [metric_name, base_m] : base_case.at("metrics")
                                                 .as_object()) {
      const JsonValue* cur_m = cur_metrics.find(metric_name);
      if (cur_m == nullptr) {
        rep.notes.push_back("metric \"" + case_name + "/" + metric_name +
                            "\" missing from current");
        continue;
      }
      MetricDelta d;
      d.case_name = case_name;
      d.metric = metric_name;
      d.unit = base_m.at("unit").as_string();
      d.dir = direction_from_name(base_m.at("dir").as_string());
      d.baseline = base_m.at("value").as_number();
      d.current = cur_m->at("value").as_number();
      if (d.baseline != 0.0) {
        d.rel_change = (d.current - d.baseline) / std::abs(d.baseline);
      } else if (d.current != 0.0) {
        rep.notes.push_back("metric \"" + case_name + "/" + metric_name +
                            "\" moved off a zero baseline");
      }
      d.isa_exempt = rep.isa_mismatch && (metric_isa_sensitive(base_m) ||
                                          metric_isa_sensitive(*cur_m));
      if (d.dir != Direction::kInfo && d.baseline != 0.0 && !d.isa_exempt) {
        const double worse = d.dir == Direction::kLowerIsBetter
                                 ? d.rel_change
                                 : -d.rel_change;
        d.regression = worse > opt.threshold;
        d.improvement = -worse > opt.threshold;
      }
      rep.deltas.push_back(std::move(d));
    }
    // Metrics only present in current are new coverage, not regressions.
    for (const auto& [metric_name, unused] : cur_metrics.as_object()) {
      (void)unused;
      if (base_case.at("metrics").find(metric_name) == nullptr) {
        rep.notes.push_back("metric \"" + case_name + "/" + metric_name +
                            "\" new in current (no baseline)");
      }
    }
  }
  for (const JsonValue& cur_case : current.at("cases").as_array()) {
    const std::string case_name = cur_case.at("name").as_string();
    if (find_case(baseline, case_name) == nullptr) {
      rep.notes.push_back("case \"" + case_name +
                          "\" new in current (no baseline)");
    }
  }
  return rep;
}

CompareReport compare_bench_files(const std::string& baseline_path,
                                  const std::string& current_path,
                                  const CompareOptions& opt) {
  return compare_bench(JsonValue::parse_file(baseline_path),
                       JsonValue::parse_file(current_path), opt);
}

std::string format_report(const CompareReport& rep) {
  ConsoleTable t({"case", "metric", "baseline", "current", "change", ""});
  for (const MetricDelta& d : rep.deltas) {
    const char* flag = d.regression      ? "REGRESSION"
                       : d.improvement   ? "improved"
                       : d.isa_exempt    ? "(isa mismatch)"
                       : d.dir == Direction::kInfo ? "(info)"
                                         : "ok";
    t.add_row({d.case_name, d.metric,
               fmt_double(d.baseline, 4) + " " + d.unit,
               fmt_double(d.current, 4) + " " + d.unit,
               (d.rel_change >= 0 ? "+" : "") +
                   fmt_double(100.0 * d.rel_change, 2) + "%",
               flag});
  }
  std::string out = "bench_compare: " + rep.bench + " (threshold " +
                    fmt_double(100.0 * rep.threshold, 1) + "%)\n\n" + t.str();
  for (const std::string& n : rep.notes) out += "note: " + n + "\n";
  out += std::to_string(rep.regressions()) + " regression(s), " +
         std::to_string(rep.improvements()) + " improvement(s), " +
         std::to_string(rep.deltas.size()) + " metric(s) compared\n";
  return out;
}

}  // namespace scalfrag::obs
