#pragma once
// Regression gate over two BENCH_*.json files (schema v1). Every gated
// metric — "dir" lower_is_better or higher_is_better — present in both
// files is compared; a relative change past the threshold in the bad
// direction is a regression. "info" metrics (wall clock, config echoes)
// are reported but never gated. bench_compare exits non-zero when any
// regression is found, which is the CI perf-smoke contract.

#include <string>
#include <vector>

#include "obs/bench_runner.hpp"
#include "obs/json.hpp"

namespace scalfrag::obs {

struct CompareOptions {
  /// Relative change tolerated before a gated metric counts as a
  /// regression (0.10 = 10% worse). Simulated timings are deterministic,
  /// so CI can run much tighter than wall-clock benches could.
  double threshold = 0.10;
  /// Also list metrics that moved in the good direction past the
  /// threshold (never affects the exit status).
  bool report_improvements = true;
};

struct MetricDelta {
  std::string case_name;
  std::string metric;
  std::string unit;
  Direction dir = Direction::kInfo;
  double baseline = 0.0;
  double current = 0.0;
  /// (current - baseline) / baseline; 0 when baseline == 0.
  double rel_change = 0.0;
  bool regression = false;
  bool improvement = false;
  /// True when this metric is flagged isa_sensitive and the two files'
  /// host ISAs differ: the delta is reported but exempt from gating
  /// (comparing SIMD speedups across different vector widths would be
  /// apples against oranges).
  bool isa_exempt = false;
};

struct CompareReport {
  std::string bench;
  double threshold = 0.0;
  /// True when the two files' "meta" blocks disagree on host_isa or
  /// vector_width. isa_sensitive metrics are then exempt from gating
  /// and a warning note is emitted instead of a silent pass/fail.
  bool isa_mismatch = false;
  std::vector<MetricDelta> deltas;
  /// Structural asymmetries (cases/metrics present on one side only).
  std::vector<std::string> notes;

  std::size_t regressions() const;
  std::size_t improvements() const;
  bool has_regression() const { return regressions() > 0; }
};

/// Compare two parsed BENCH documents. Throws scalfrag::Error when a
/// document is not schema "scalfrag-bench" v1 or the bench names differ.
CompareReport compare_bench(const JsonValue& baseline,
                            const JsonValue& current,
                            const CompareOptions& opt = {});

/// File variant of compare_bench.
CompareReport compare_bench_files(const std::string& baseline_path,
                                  const std::string& current_path,
                                  const CompareOptions& opt = {});

/// Human-readable console rendering of a report.
std::string format_report(const CompareReport& rep);

}  // namespace scalfrag::obs
