#include "obs/bench_runner.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/cpu_caps.hpp"
#include "common/thread_pool.hpp"
#include "obs/artifacts.hpp"

namespace scalfrag::obs {

const char* direction_name(Direction d) {
  switch (d) {
    case Direction::kLowerIsBetter: return "lower_is_better";
    case Direction::kHigherIsBetter: return "higher_is_better";
    case Direction::kInfo: return "info";
  }
  return "info";
}

Direction direction_from_name(const std::string& name) {
  if (name == "lower_is_better") return Direction::kLowerIsBetter;
  if (name == "higher_is_better") return Direction::kHigherIsBetter;
  if (name == "info") return Direction::kInfo;
  throw Error("unknown metric direction \"" + name + "\"");
}

MetricSummary summarize(std::vector<double> samples) {
  MetricSummary s;
  s.n = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  s.q1 = at(0.25);
  s.median = at(0.5);
  s.q3 = at(0.75);
  return s;
}

BenchCase::Metric& BenchCase::metric(const std::string& name,
                                     const std::string& unit, Direction dir,
                                     bool isa_sensitive) {
  for (Metric& m : metrics_) {
    if (m.name == name) {
      SF_CHECK(m.unit == unit && m.dir == dir &&
                   m.isa_sensitive == isa_sensitive,
               "metric \"" + name + "\" re-recorded with different unit/dir");
      return m;
    }
  }
  metrics_.push_back(Metric{name, unit, dir, isa_sensitive, {}});
  return metrics_.back();
}

BenchCase& BenchCase::set(const std::string& name, double value,
                          const std::string& unit, Direction dir,
                          bool isa_sensitive) {
  Metric& m = metric(name, unit, dir, isa_sensitive);
  m.samples.assign(1, value);
  return *this;
}

BenchCase& BenchCase::add_sample(const std::string& name, double value,
                                 const std::string& unit, Direction dir,
                                 bool isa_sensitive) {
  metric(name, unit, dir, isa_sensitive).samples.push_back(value);
  return *this;
}

MetricSummary BenchCase::measure(const std::string& name,
                                 const std::string& unit, Direction dir,
                                 const RepeatPolicy& policy,
                                 const std::function<double()>& fn) {
  SF_CHECK(policy.reps > 0, "measure needs at least one repetition");
  for (int i = 0; i < policy.warmup; ++i) fn();
  Metric& m = metric(name, unit, dir);
  for (int i = 0; i < policy.reps; ++i) m.samples.push_back(fn());
  return summarize(m.samples);
}

BenchRunner::BenchRunner(std::string bench_name)
    : name_(std::move(bench_name)) {
  SF_CHECK(!name_.empty(), "bench name must be non-empty");
}

BenchCase& BenchRunner::with_case(const std::string& case_name) {
  for (BenchCase& c : cases_) {
    if (c.name_ == case_name) return c;
  }
  cases_.push_back(BenchCase(case_name));
  return cases_.back();
}

BenchRunner& BenchRunner::set_meta(const std::string& key,
                                   const std::string& value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = value;
      return *this;
    }
  }
  meta_.emplace_back(key, value);
  return *this;
}

std::string BenchRunner::json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", kBenchSchemaName);
  w.kv("schema_version", std::int64_t{kBenchSchemaVersion});
  w.kv("bench", name_);
  // Host environment of this run, so bench_compare can tell when two
  // files came from different ISAs/machines. Explicit set_meta wins
  // over the captured defaults.
  {
    std::vector<std::pair<std::string, std::string>> meta{
        {"host_isa", host_isa_name(detect_host_isa())},
        {"vector_width", std::to_string(host_isa_lanes(HostIsa::Auto))},
        {"pinning", pin_policy_name(ThreadPool::global().pinning())},
        {"logical_cpus", std::to_string(cpu_topology().logical_cpus)},
        {"numa_nodes", std::to_string(cpu_topology().numa_nodes)},
    };
    for (const auto& [k, v] : meta_) {
      bool replaced = false;
      for (auto& [dk, dv] : meta) {
        if (dk == k) {
          dv = v;
          replaced = true;
          break;
        }
      }
      if (!replaced) meta.emplace_back(k, v);
    }
    w.key("meta").begin_object();
    for (const auto& [k, v] : meta) w.kv(k, v);
    w.end_object();
  }
  w.key("cases").begin_array();
  for (const BenchCase& c : cases_) {
    w.begin_object();
    w.kv("name", c.name_);
    w.key("metrics").begin_object();
    for (const BenchCase::Metric& m : c.metrics_) {
      const MetricSummary s = summarize(m.samples);
      w.key(m.name).begin_object();
      w.kv("value", s.median);
      w.kv("unit", m.unit);
      w.kv("dir", direction_name(m.dir));
      if (m.isa_sensitive) w.kv("isa_sensitive", true);
      w.kv("n", static_cast<std::uint64_t>(s.n));
      if (s.n > 1) {
        w.kv("q1", s.q1);
        w.kv("q3", s.q3);
      }
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  if (!registry_.empty()) {
    w.key("metrics");
    registry_.to_json(w);
  }
  w.end_object();
  return w.str();
}

std::string BenchRunner::write() const {
  const std::string path = artifact_path("BENCH_" + name_ + ".json");
  write(path);
  return path;
}

void BenchRunner::write(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open " + path + " for writing");
  out << json() << '\n';
  out.flush();
  if (!out) throw Error("write error on " + path);
}

}  // namespace scalfrag::obs
