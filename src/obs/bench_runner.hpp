#pragma once
// The shared bench harness: every bench/ binary records its results
// through a BenchRunner and writes one schema-versioned BENCH_<name>.json
// into obs::artifact_dir() (bench_artifacts/ by default), so the repo
// accumulates a machine-readable perf trajectory that bench_compare can
// diff across commits without artifacts littering the source tree.
//
// Schema v1 (see docs/observability.md):
//   {
//     "schema": "scalfrag-bench",
//     "schema_version": 1,
//     "bench": "<name>",
//     "meta": {"host_isa": "avx512", "vector_width": "16",
//              "pinning": "none", "logical_cpus": "8",
//              "numa_nodes": "1", ...},
//     "cases": [
//       {"name": "<case>", "metrics": {
//          "<metric>": {"value": <median>, "unit": "...",
//                        "dir": "lower_is_better"|"higher_is_better"|"info",
//                        "isa_sensitive": true,   // only when set
//                        "n": <samples>, "q1": ..., "q3": ...}}}
//     ],
//     "metrics": {"counters": ..., "gauges": ..., "stages": ...}
//   }
//
// "dir" drives bench_compare: lower/higher_is_better metrics gate the
// regression check; "info" metrics (machine-dependent wall clock,
// configuration echoes) are recorded but never gated on.
//
// "meta" records the host execution environment of the run — kernel
// ISA, vector width, pinning policy, core/NUMA topology — captured
// automatically at write time (override or extend via set_meta).
// bench_compare reads it to detect apples-to-oranges comparisons:
// metrics flagged "isa_sensitive" are excluded from gating (with a
// warning) when the two files' host_isa/vector_width differ, instead
// of silently passing or failing machine-dependent numbers.

#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace scalfrag::obs {

inline constexpr int kBenchSchemaVersion = 1;
inline constexpr const char* kBenchSchemaName = "scalfrag-bench";

enum class Direction { kLowerIsBetter, kHigherIsBetter, kInfo };

const char* direction_name(Direction d);
/// Inverse of direction_name; throws scalfrag::Error on unknown names.
Direction direction_from_name(const std::string& name);

/// Warmup/repeat policy for wall-clock measurements. Simulated timings
/// are deterministic, so benches record those via set() with one rep.
struct RepeatPolicy {
  int warmup = 1;
  int reps = 5;
};

struct MetricSummary {
  double median = 0.0;
  double q1 = 0.0;
  double q3 = 0.0;
  std::size_t n = 0;

  double iqr() const noexcept { return q3 - q1; }
};

/// Median and quartiles of a sample set (linear-interpolated quartiles;
/// the sample vector is copied and sorted).
MetricSummary summarize(std::vector<double> samples);

class BenchRunner;

/// One named case (typically one tensor / configuration) of a bench.
class BenchCase {
 public:
  /// Record a deterministic single-valued metric. `isa_sensitive`
  /// marks a gated metric whose value depends on the host kernel ISA
  /// (e.g. SIMD-vs-scalar speedups): bench_compare still gates it when
  /// baseline and current ran on the same ISA, but only warns when the
  /// ISAs differ.
  BenchCase& set(const std::string& metric, double value,
                 const std::string& unit, Direction dir,
                 bool isa_sensitive = false);
  /// Append one sample to a repeated metric (median/IQR at write time).
  BenchCase& add_sample(const std::string& metric, double value,
                        const std::string& unit, Direction dir,
                        bool isa_sensitive = false);
  /// Warmup + repeat `fn`, record each returned sample, return the
  /// summary of the recorded samples.
  MetricSummary measure(const std::string& metric, const std::string& unit,
                        Direction dir, const RepeatPolicy& policy,
                        const std::function<double()>& fn);

  const std::string& name() const noexcept { return name_; }

 private:
  friend class BenchRunner;
  explicit BenchCase(std::string name) : name_(std::move(name)) {}

  struct Metric {
    std::string name;
    std::string unit;
    Direction dir = Direction::kInfo;
    bool isa_sensitive = false;
    std::vector<double> samples;
  };
  Metric& metric(const std::string& name, const std::string& unit,
                 Direction dir, bool isa_sensitive = false);

  std::string name_;
  std::vector<Metric> metrics_;
};

class BenchRunner {
 public:
  explicit BenchRunner(std::string bench_name);

  const std::string& name() const noexcept { return name_; }

  /// Get-or-create a case by name (order of first use is preserved).
  BenchCase& with_case(const std::string& case_name);

  /// Registry embedded in the emitted file; hand `&runner.metrics()`
  /// to executors to capture their stage records and counters.
  MetricsRegistry& metrics() noexcept { return registry_; }

  /// Override or extend the emitted "meta" block. The host environment
  /// keys (host_isa, vector_width, pinning, logical_cpus, numa_nodes)
  /// are captured automatically at json() time; an explicit set_meta of
  /// the same key wins — benches that force an ISA or pinning policy
  /// should record the forced value here.
  BenchRunner& set_meta(const std::string& key, const std::string& value);

  std::string json() const;
  /// Write to `BENCH_<name>.json` inside obs::artifact_dir() (never the
  /// bare working directory); returns the path written. Throws
  /// scalfrag::Error on I/O failure.
  std::string write() const;
  void write(const std::string& path) const;

 private:
  std::string name_;
  std::vector<BenchCase> cases_;
  std::vector<std::pair<std::string, std::string>> meta_;
  MetricsRegistry registry_;
};

}  // namespace scalfrag::obs
