#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace scalfrag::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- writer ----------------------------------------------------------

void JsonWriter::pre_value() {
  SF_CHECK(!done_, "JsonWriter: document already complete");
  if (stack_.empty()) return;
  char& top = stack_.back();
  if (top == 'O') {
    throw Error("JsonWriter: object value requires key() first");
  }
  if (top == 'V') {
    top = 'O';  // value consumed; next member needs a key again
    return;
  }
  // Array: comma-separate after the opening bracket.
  if (out_.back() != '[') out_ += ',';
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  stack_ += 'O';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  SF_CHECK(!stack_.empty() && stack_.back() == 'O',
           "JsonWriter: unbalanced end_object");
  stack_.pop_back();
  out_ += '}';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  stack_ += 'A';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  SF_CHECK(!stack_.empty() && stack_.back() == 'A',
           "JsonWriter: unbalanced end_array");
  stack_.pop_back();
  out_ += ']';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  SF_CHECK(!stack_.empty() && stack_.back() == 'O',
           "JsonWriter: key() outside an object");
  if (out_.back() != '{') out_ += ',';
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  stack_.back() = 'V';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  if (!std::isfinite(v)) {
    out_ += "null";
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
  }
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  pre_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  out_ += "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  SF_CHECK(done_, "JsonWriter: document incomplete (unclosed scope)");
  return out_;
}

// --- value + parser --------------------------------------------------

bool JsonValue::as_bool() const {
  SF_CHECK(kind_ == Kind::Bool, "JSON: expected bool");
  return bool_;
}

double JsonValue::as_number() const {
  SF_CHECK(kind_ == Kind::Number, "JSON: expected number");
  return num_;
}

const std::string& JsonValue::as_string() const {
  SF_CHECK(kind_ == Kind::String, "JSON: expected string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  SF_CHECK(kind_ == Kind::Array, "JSON: expected array");
  return arr_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object()
    const {
  SF_CHECK(kind_ == Kind::Object, "JSON: expected object");
  return obj_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw Error("JSON: missing member \"" + std::string(key) + "\"");
  }
  return *v;
}

JsonValue JsonValue::make_null() { return {}; }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::Array;
  v.arr_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::Object;
  v.obj_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    SF_CHECK(pos_ == text_.size(), "JSON: trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::string parse_string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The bench dialect only ever escapes control characters;
          // encode the code point as UTF-8 (BMP only, no surrogates).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue::make_string(parse_string_body());
    if (consume_literal("true")) return JsonValue::make_bool(true);
    if (consume_literal("false")) return JsonValue::make_bool(false);
    if (consume_literal("null")) return JsonValue::make_null();
    return parse_number();
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("invalid number '" + tok + "'");
    return JsonValue::make_number(d);
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue::make_array(std::move(items));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string k = parse_string_body();
      expect(':');
      members.emplace_back(std::move(k), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue::make_object(std::move(members));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue JsonValue::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) throw Error("read error on " + path);
  try {
    return parse(ss.str());
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

}  // namespace scalfrag::obs
