#pragma once
// Minimal JSON support for the observability layer: a streaming writer
// (comma/state handling via a nesting stack) and a small recursive-
// descent parser producing a JsonValue tree. Both exist so BENCH_*.json
// emission and bench_compare share one dialect — no external deps.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace scalfrag::obs {

/// Escape `s` for use inside a JSON string literal (quotes not added).
std::string json_escape(std::string_view s);

/// Streaming JSON writer. Values written at the top level or inside an
/// array are emitted directly; inside an object each value must be
/// preceded by key(). Misuse throws scalfrag::Error.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);

  JsonWriter& value(double v);  // non-finite values emit null
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& null();

  /// Shorthand: key(k) followed by value(v).
  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  const std::string& str() const;

 private:
  void pre_value();
  std::string out_;
  // 'O' object expecting key, 'V' object expecting value, 'A' array.
  std::string stack_;
  bool done_ = false;
};

/// Parsed JSON value. Numbers are stored as double (sufficient for the
/// bench schema); objects preserve insertion order for stable output.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::Null; }
  bool is_object() const noexcept { return kind_ == Kind::Object; }
  bool is_array() const noexcept { return kind_ == Kind::Array; }
  bool is_number() const noexcept { return kind_ == Kind::Number; }
  bool is_string() const noexcept { return kind_ == Kind::String; }

  /// Typed accessors; throw scalfrag::Error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::vector<std::pair<std::string, JsonValue>>& as_object() const;

  /// Object member lookup; null when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// find() that throws with a path-style message when absent.
  const JsonValue& at(std::string_view key) const;

  /// Parse a complete JSON document (trailing garbage rejected).
  static JsonValue parse(std::string_view text);
  /// Parse the contents of a file; throws scalfrag::Error on I/O error.
  static JsonValue parse_file(const std::string& path);

  // Construction (used by the parser; handy in tests).
  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

}  // namespace scalfrag::obs
