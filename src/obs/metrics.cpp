#include "obs/metrics.hpp"

#include <algorithm>

namespace scalfrag::obs {

void MetricsRegistry::count(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::add_resident(const std::string& name,
                                   std::int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  double& g = gauges_[name];
  g += static_cast<double>(delta);
  double& peak = gauges_[name + "_peak"];
  peak = std::max(peak, g);
}

void MetricsRegistry::span(const std::string& stage, double ns) {
  std::lock_guard<std::mutex> lock(mu_);
  StageStat& s = stages_[stage];
  ++s.count;
  s.total_ns += ns;
  s.max_ns = std::max(s.max_ns, ns);
}

std::map<std::string, std::uint64_t> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::map<std::string, double> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_;
}

std::map<std::string, StageStat> MetricsRegistry::stages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stages_;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

StageStat MetricsRegistry::stage(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = stages_.find(name);
  return it == stages_.end() ? StageStat{} : it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  s.counters = counters();
  s.gauges = gauges();
  s.stages = stages();
  return s;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  // Snapshot first so self-merge and lock ordering are non-issues.
  const auto counters = other.counters();
  const auto gauges = other.gauges();
  const auto stages = other.stages();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, v] : counters) counters_[k] += v;
  for (const auto& [k, v] : gauges) gauges_[k] = v;
  for (const auto& [k, v] : stages) {
    StageStat& s = stages_[k];
    s.count += v.count;
    s.total_ns += v.total_ns;
    s.max_ns = std::max(s.max_ns, v.max_ns);
  }
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  stages_.clear();
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && gauges_.empty() && stages_.empty();
}

void MetricsRegistry::to_json(JsonWriter& w) const {
  const auto counters = this->counters();
  const auto gauges = this->gauges();
  const auto stages = this->stages();
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [k, v] : counters) w.kv(k, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [k, v] : gauges) w.kv(k, v);
  w.end_object();
  w.key("stages").begin_object();
  for (const auto& [k, v] : stages) {
    w.key(k).begin_object();
    w.kv("count", v.count);
    w.kv("total_ns", v.total_ns);
    w.kv("max_ns", v.max_ns);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace scalfrag::obs
