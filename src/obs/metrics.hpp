#pragma once
// The perf-observability metrics registry: named monotonic counters,
// point-in-time gauges, and per-stage span records (count/total/max).
// Executors take an optional MetricsRegistry* and record what they did;
// benches embed the registry snapshot into their BENCH_*.json so a
// perf trajectory carries structure, not just end-to-end numbers.
//
// Spans carry nanoseconds in whichever time domain the recorder lives
// in: the gpusim timeline records *simulated* ns, host-side phases
// record *wall-clock* ns. Stage names make the domain explicit by
// convention ("gpu/..." simulated, "host/..." wall).
//
// Thread-safe: kernel bodies run on the host thread pool, so every
// mutation takes the registry mutex. Recording is cheap relative to
// the work being measured (a map lookup under a lock), and executors
// record per segment/call, not per non-zero.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/timer.hpp"
#include "obs/json.hpp"

namespace scalfrag::obs {

/// Aggregate of every span recorded under one stage name.
struct StageStat {
  std::uint64_t count = 0;
  double total_ns = 0.0;
  double max_ns = 0.0;

  double mean_ns() const noexcept {
    return count == 0 ? 0.0 : total_ns / static_cast<double>(count);
  }
};

/// A point-in-time copy of a registry's contents — the value type a
/// driver result (RunInfo) embeds so "what this run recorded" survives
/// after the live registry moves on or is cleared. Copies are taken
/// under the registry lock; the snapshot itself is a plain value.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, StageStat> stages;

  std::uint64_t counter(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  double gauge(const std::string& name) const {
    const auto it = gauges.find(name);
    return it == gauges.end() ? 0.0 : it->second;
  }
};

class MetricsRegistry {
 public:
  /// Monotonic counter (events, bytes, segments, ...).
  void count(const std::string& name, std::uint64_t delta = 1);
  /// Point-in-time value; last write wins.
  void set(const std::string& name, double value);
  /// Resident-resource gauge: adds `delta` to gauge `name` and bumps
  /// the high-water gauge `name + "_peak"` under one lock, so a peak
  /// can be read after the residents are released (how ModeViews
  /// reports "mem/resident_bytes" / "mem/resident_bytes_peak").
  void add_resident(const std::string& name, std::int64_t delta);
  /// One span of `ns` under `stage` (accumulates count/total/max).
  void span(const std::string& stage, double ns);

  /// RAII wall-clock span: records on destruction.
  class ScopedSpan {
   public:
    ScopedSpan(MetricsRegistry& reg, std::string stage)
        : reg_(&reg), stage_(std::move(stage)) {}
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;
    ~ScopedSpan() { reg_->span(stage_, timer_.seconds() * 1e9); }

   private:
    MetricsRegistry* reg_;
    std::string stage_;
    WallTimer timer_;
  };
  ScopedSpan time_span(std::string stage) {
    return ScopedSpan(*this, std::move(stage));
  }

  /// RAII resident-bytes registration: adds `bytes` to the gauge on
  /// construction and subtracts them on destruction, so the matching
  /// `_peak` gauge records the high-water mark of whatever buffers the
  /// holder kept alive. A null registry makes every operation a no-op
  /// (the usual optional-metrics contract). Movable so residents can
  /// live in containers; `resize` re-registers a grown buffer.
  class ScopedResident {
   public:
    ScopedResident() = default;
    ScopedResident(MetricsRegistry* reg, std::string name, std::size_t bytes)
        : reg_(reg), name_(std::move(name)) {
      resize(bytes);
    }
    ScopedResident(ScopedResident&& o) noexcept
        : reg_(o.reg_), name_(std::move(o.name_)), bytes_(o.bytes_) {
      o.reg_ = nullptr;
      o.bytes_ = 0;
    }
    ScopedResident& operator=(ScopedResident&& o) noexcept {
      if (this == &o) return *this;
      release();
      reg_ = o.reg_;
      name_ = std::move(o.name_);
      bytes_ = o.bytes_;
      o.reg_ = nullptr;
      o.bytes_ = 0;
      return *this;
    }
    ScopedResident(const ScopedResident&) = delete;
    ScopedResident& operator=(const ScopedResident&) = delete;
    ~ScopedResident() { release(); }

    void resize(std::size_t bytes) {
      if (reg_ != nullptr && bytes != bytes_) {
        reg_->add_resident(name_, static_cast<std::int64_t>(bytes) -
                                      static_cast<std::int64_t>(bytes_));
      }
      bytes_ = bytes;
    }
    void release() {
      if (reg_ != nullptr && bytes_ != 0) {
        reg_->add_resident(name_, -static_cast<std::int64_t>(bytes_));
      }
      bytes_ = 0;
    }
    std::size_t bytes() const noexcept { return bytes_; }

   private:
    MetricsRegistry* reg_ = nullptr;
    std::string name_;
    std::size_t bytes_ = 0;
  };

  // Snapshots (copies — safe to iterate without holding the lock).
  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, double> gauges() const;
  std::map<std::string, StageStat> stages() const;

  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  StageStat stage(const std::string& name) const;

  /// Counters + gauges + stages copied under one lock acquisition per
  /// section — the consistent view RunInfo embeds.
  MetricsSnapshot snapshot() const;

  /// Fold another registry into this one (counters add, gauges
  /// overwrite, stage stats merge).
  void merge(const MetricsRegistry& other);
  void clear();
  bool empty() const;

  /// Serialize as {"counters": {...}, "gauges": {...}, "stages": {...}}.
  void to_json(JsonWriter& w) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, StageStat> stages_;
};

}  // namespace scalfrag::obs
