#include "parti/parti_executor.hpp"

#include "gpusim/dev_memory.hpp"

namespace scalfrag::parti {

ExecResult run_mttkrp(gpusim::SimDevice& dev, const CooSpan& t,
                      const FactorList& factors, order_t mode,
                      const ExecOptions& opt) {
  const index_t rank = check_factors(t, factors);
  SF_CHECK(t.is_sorted_by_mode(mode), "tensor must be sorted by the mode");
  // Established once; the hint makes the feature extraction below O(nnz)
  // with no second sortedness scan.
  CooSpan view = t;
  view.assume_sorted_by(mode);

  dev.reset_timeline();

  // Device allocations: full tensor + all factors + output.
  gpusim::DeviceBuffer<char> d_tensor(dev.allocator(), t.bytes());
  std::size_t factor_bytes = 0;
  for (const auto& f : factors) factor_bytes += f.bytes();
  gpusim::DeviceBuffer<char> d_factors(dev.allocator(), factor_bytes);
  gpusim::DeviceBuffer<char> d_out(
      dev.allocator(),
      static_cast<std::size_t>(t.dim(mode)) * rank * sizeof(value_t));

  ExecResult res;
  res.output = DenseMatrix(t.dim(mode), rank);

  const TensorFeatures feat = TensorFeatures::extract(view, mode);
  const gpusim::KernelProfile prof = mttkrp_profile(feat, rank);
  res.launch = opt.launch ? *opt.launch : default_launch(dev.spec(), t.nnz());

  const gpusim::StreamId s = 0;  // default stream: fully synchronous
  dev.memcpy_h2d(s, t.bytes(), nullptr, "H2D tensor");
  dev.memcpy_h2d(s, factor_bytes, nullptr, "H2D factors");
  auto kt = dev.launch_kernel(
      s, res.launch, prof,
      [&] { mttkrp_exec(view, factors, mode, res.output); }, "ParTI SpMTTKRP");
  dev.memcpy_d2h(s, d_out.bytes(), nullptr, "D2H output");

  res.total_ns = dev.synchronize();
  res.breakdown = dev.breakdown();
  res.kernel_ns = kt.total;
  res.kernel_gflops = kt.total > 0 ? static_cast<double>(prof.flops) /
                                         static_cast<double>(kt.total)
                                   : 0.0;
  return res;
}

SpttmResult run_spttm(gpusim::SimDevice& dev, const CooTensor& t,
                      const DenseMatrix& u, order_t mode) {
  SF_CHECK(mode < t.order(), "mode out of range");
  SF_CHECK(u.rows() == t.dim(mode), "U row count must match mode size");
  const index_t rank = u.cols();

  dev.reset_timeline();
  gpusim::DeviceBuffer<char> d_tensor(dev.allocator(), t.bytes());
  gpusim::DeviceBuffer<char> d_u(dev.allocator(), u.bytes());

  SpttmResult res;
  const gpusim::StreamId s = 0;
  dev.memcpy_h2d(s, t.bytes(), nullptr, "H2D tensor");
  dev.memcpy_h2d(s, u.bytes(), nullptr, "H2D U");

  // Fiber-parallel kernel (Li et al. [20]): one thread team per mode-n
  // fiber; traffic = COO stream + one U row per non-zero (cached per
  // fiber) + one dense output row per fiber.
  const TensorFeatures feat = TensorFeatures::extract(t, mode);
  gpusim::KernelProfile prof;
  prof.work_items = t.nnz();
  prof.flops = spttm_flops(t, rank);
  const std::uint64_t fbytes = sizeof(value_t) * rank;
  prof.dram_bytes =
      t.nnz() * (t.order() * sizeof(index_t) + sizeof(value_t)) +
      t.nnz() * fbytes / 2 +  // U rows, fiber-level reuse
      feat.num_fibers * fbytes;
  prof.coalescing = 0.5;
  prof.atomic_updates = 0;  // fiber-exclusive outputs need no atomics

  const gpusim::LaunchConfig launch = default_launch(dev.spec(), t.nnz());
  dev.launch_kernel(
      s, launch, prof, [&] { res.output = spttm(t, u, mode); },
      "ParTI SpTTM");
  res.launch = launch;

  // Output D2H sized after the kernel computed it (semi-sparse size is
  // data-dependent).
  gpusim::DeviceBuffer<char> d_out(dev.allocator(), res.output.bytes());
  dev.memcpy_d2h(s, res.output.bytes(), nullptr, "D2H output");

  res.total_ns = dev.synchronize();
  res.breakdown = dev.breakdown();
  return res;
}

}  // namespace scalfrag::parti
