#pragma once
// The ParTI end-to-end flow (the baseline of Figs. 5, 9, 10):
// synchronous single-stream H2D(tensor) → H2D(factors) → kernel →
// D2H(output). No segmentation, no overlap — the device waits for the
// full transfer before computing (§III-B's "waste of computational
// resources").

#include <optional>

#include "gpusim/engine.hpp"
#include "parti/parti_kernel.hpp"
#include "tensor/spttm.hpp"

namespace scalfrag::parti {

struct ExecOptions {
  /// Override the static heuristic (used by the Fig. 4 sweep).
  std::optional<gpusim::LaunchConfig> launch;
};

struct ExecResult {
  DenseMatrix output;
  gpusim::LaunchConfig launch;
  gpusim::TimelineBreakdown breakdown;
  sim_ns total_ns = 0;
  sim_ns kernel_ns = 0;
  double kernel_gflops = 0.0;
};

/// Run one mode-`mode` MTTKRP end to end on the simulated device.
/// `t` is a mode-sorted view (a CooTensor converts implicitly;
/// ModeViews::view(mode) plugs in zero-copy); `factors` are
/// host-resident. The device timeline is reset first; breakdown/total
/// reflect this run.
ExecResult run_mttkrp(gpusim::SimDevice& dev, const CooSpan& t,
                      const FactorList& factors, order_t mode,
                      const ExecOptions& opt = {});

/// ParTI's SpTTM on the simulated device (same synchronous flow):
/// H2D tensor + U, fiber-parallel kernel, D2H of the semi-sparse
/// result. Functional output in `result`.
struct SpttmResult {
  SemiSparseTensor output;
  gpusim::LaunchConfig launch;
  gpusim::TimelineBreakdown breakdown;
  sim_ns total_ns = 0;
};

SpttmResult run_spttm(gpusim::SimDevice& dev, const CooTensor& t,
                      const DenseMatrix& u, order_t mode);

}  // namespace scalfrag::parti
