#include "parti/parti_kernel.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_util.hpp"

namespace scalfrag::parti {

gpusim::KernelProfile mttkrp_profile(const TensorFeatures& feat,
                                     index_t rank) {
  gpusim::KernelProfile p;
  const auto nnz = feat.nnz;
  const auto order = static_cast<std::uint64_t>(feat.order);
  const std::uint64_t fbytes = sizeof(value_t) * rank;

  p.work_items = nnz;
  p.flops = nnz * 2ull * rank * (order > 1 ? order - 1 : 1);

  // COO entry reads: `order` indices + one value per non-zero, streamed.
  const std::uint64_t coo_bytes =
      nnz * (order * sizeof(index_t) + sizeof(value_t));

  // Factor-row gathers: (order-1) rows of F floats per non-zero. Rows
  // repeat within a fiber; the L2 catches a share of those repeats.
  // fiber_ratio → 1 means no repeats (every nnz its own fiber), → 0
  // means long fibers with strong reuse. ParTI does not stage rows in
  // shared memory, so it only gets the cache-side discount.
  const double factor_miss = 0.35 + 0.65 * feat.fiber_ratio;
  const auto factor_bytes = static_cast<std::uint64_t>(
      static_cast<double>(nnz * (order - 1) * fbytes) * factor_miss);

  // Output updates: F atomicAdds per non-zero. Atomics retire in the
  // L2, so DRAM only sees the share of rows that spill: when the whole
  // output matrix fits in L2 (small mode sizes), RMW traffic stays
  // on-chip and only the final writeback reaches DRAM.
  const double out_matrix_bytes =
      static_cast<double>(feat.mode_dim) * fbytes;
  const double out_miss =
      clamp(out_matrix_bytes / (6.0 * 1024 * 1024), 0.05, 1.0);
  const auto out_bytes = static_cast<std::uint64_t>(
      static_cast<double>(nnz * fbytes * 2) * out_miss);

  p.dram_bytes = coo_bytes + factor_bytes + out_bytes;

  // Mixed streamed + gathered access.
  p.coalescing = 0.40;

  // One atomic per rank element per non-zero. Every non-zero of a slice
  // updates the same output row, so the heaviest slice forms the
  // longest same-address chain (per rank column; columns retire in
  // parallel).
  p.atomic_updates = nnz * rank;
  p.atomic_max_chain = static_cast<double>(feat.max_nnz_per_slice);
  return p;
}

gpusim::LaunchConfig default_launch(const gpusim::DeviceSpec& spec,
                                    nnz_t nnz) {
  gpusim::LaunchConfig cfg;
  cfg.block = 256;
  const auto blocks = ceil_div(std::max<nnz_t>(nnz, 1), cfg.block);
  cfg.grid = static_cast<std::uint32_t>(
      std::min<nnz_t>(blocks, 32768));
  cfg.grid = std::max(cfg.grid, 1u);
  (void)spec;
  return cfg;
}

void mttkrp_exec(const CooSpan& t, const FactorList& factors, order_t mode,
                 DenseMatrix& out, const HostExecParams& opt) {
  mttkrp_coo_par(t, factors, mode, out, /*accumulate=*/true, opt);
}

}  // namespace scalfrag::parti
