#pragma once
// ParTI-style COO SpMTTKRP kernel (Li et al., the paper's baseline).
//
// Algorithmic structure being modeled (ParTI's GPU SpMTTKRP):
//  * one thread per non-zero, grid-stride loop;
//  * per non-zero: read its COO entry, gather (order-1) factor rows from
//    global memory, and atomicAdd each of the F partial products into
//    the output row — "the performance of their method is constrained
//    by the overhead of atomic operations during slice updates" (§VI-B).
//
// The profile builder turns a tensor segment's statistics into the
// KernelProfile the cost model consumes; the functional executor
// computes the bit-exact result on the host.

#include "gpusim/cost_model.hpp"
#include "tensor/features.hpp"
#include "tensor/mttkrp_par.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag::parti {

/// Cost-model profile for the ParTI COO kernel over `feat`'s tensor.
gpusim::KernelProfile mttkrp_profile(const TensorFeatures& feat, index_t rank);

/// ParTI's static launch heuristic: 256-thread blocks, one thread per
/// non-zero, grid capped at 32768 blocks ("the optimal parameter
/// configuration suggested by the authors").
gpusim::LaunchConfig default_launch(const gpusim::DeviceSpec& spec, nnz_t nnz);

/// Functional kernel body: accumulate mode-`mode` MTTKRP of `t` into
/// `out` (atomicAdd semantics — order-independent commutative sums).
/// Runs on the host execution engine; `t` is a zero-copy view.
void mttkrp_exec(const CooSpan& t, const FactorList& factors, order_t mode,
                 DenseMatrix& out, const HostExecParams& opt = {});

}  // namespace scalfrag::parti
