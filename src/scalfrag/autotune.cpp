#include "scalfrag/autotune.hpp"

#include <cmath>

#include "common/timer.hpp"
#include "ml/adaboost.hpp"
#include "ml/bagging.hpp"
#include "ml/dtree.hpp"
#include "ml/knn.hpp"
#include "ml/metrics.hpp"
#include "ml/serialize.hpp"
#include "ml/svr.hpp"
#include "tensor/generator.hpp"

namespace scalfrag {

const char* model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::DecisionTree:
      return "DecisionTree";
    case ModelKind::Bagging:
      return "Bagging";
    case ModelKind::AdaBoost:
      return "AdaBoost";
    case ModelKind::LinearSVR:
      return "LinearSVR";
    case ModelKind::Knn:
      return "kNN";
  }
  return "?";
}

std::unique_ptr<ml::Regressor> make_model(ModelKind kind, std::uint64_t seed) {
  switch (kind) {
    case ModelKind::DecisionTree: {
      ml::DTreeConfig c;
      c.seed = seed;
      return std::make_unique<ml::DecisionTreeRegressor>(c);
    }
    case ModelKind::Bagging: {
      ml::BaggingConfig c;
      c.seed = seed;
      return std::make_unique<ml::BaggingRegressor>(c);
    }
    case ModelKind::AdaBoost: {
      ml::AdaBoostConfig c;
      c.seed = seed;
      return std::make_unique<ml::AdaBoostR2Regressor>(c);
    }
    case ModelKind::LinearSVR: {
      ml::SvrConfig c;
      c.seed = seed;
      return std::make_unique<ml::LinearSvrRegressor>(c);
    }
    case ModelKind::Knn:
      return std::make_unique<ml::KnnRegressor>();
  }
  throw Error("unknown model kind");
}

std::vector<double> launch_feature_vector(const TensorFeatures& feat,
                                          const gpusim::DeviceSpec& spec,
                                          const gpusim::LaunchConfig& cfg,
                                          index_t rank) {
  const auto tf = feat.to_vector();
  std::vector<double> x(tf.begin(), tf.end());
  x.push_back(std::log2(static_cast<double>(cfg.grid)));
  x.push_back(std::log2(static_cast<double>(cfg.block)));
  const double threads = static_cast<double>(cfg.total_threads());
  x.push_back(std::log2(threads / std::max<double>(1.0,
                                                   static_cast<double>(feat.nnz))));
  const auto occ = gpusim::compute_occupancy(spec, cfg);
  x.push_back(occ.fraction);
  (void)rank;
  return x;
}

// ---------------------------------------------------------------------
// LaunchSelector

LaunchSelector::LaunchSelector(gpusim::DeviceSpec spec,
                               std::shared_ptr<const ml::Regressor> model,
                               index_t rank)
    : spec_(std::move(spec)), model_(std::move(model)), rank_(rank) {
  SF_CHECK(model_ != nullptr, "selector needs a trained model");
  candidates_ = gpusim::launch_candidates(spec_);
}

double LaunchSelector::predict_gflops(const TensorFeatures& feat,
                                      const gpusim::LaunchConfig& cfg) const {
  // Models are trained on log2(GFlops) — see build_dataset.
  return std::exp2(
      model_->predict(launch_feature_vector(feat, spec_, cfg, rank_)));
}

Selection LaunchSelector::select(const TensorFeatures& feat) const {
  WallTimer timer;
  Selection best;
  best.predicted_gflops = -1.0;
  for (gpusim::LaunchConfig cfg : candidates_) {
    cfg.shmem_per_block = kernel_shmem_bytes(cfg.block, rank_);
    const auto occ = gpusim::compute_occupancy(spec_, cfg);
    if (!occ.feasible) continue;
    const double pred = predict_gflops(feat, cfg);
    if (pred > best.predicted_gflops) {
      best.predicted_gflops = pred;
      best.config = cfg;
    }
  }
  SF_CHECK(best.config.grid != 0, "no feasible launch candidate");
  best.inference_seconds = timer.seconds();
  return best;
}

// ---------------------------------------------------------------------
// AutoTuner

AutoTuner::AutoTuner(gpusim::DeviceSpec spec, AutoTunerConfig cfg)
    : spec_(std::move(spec)), cfg_(cfg) {}

ml::Dataset AutoTuner::build_dataset(const gpusim::DeviceSpec& spec,
                                     index_t rank, int corpus_size,
                                     std::uint64_t seed) {
  SF_CHECK(corpus_size > 0, "corpus must be non-empty");
  const gpusim::CostModel cost(spec);
  const auto candidates = gpusim::launch_candidates(spec);
  Rng rng(seed);
  ml::Dataset data;

  for (int i = 0; i < corpus_size; ++i) {
    // Random tensor recipe: order 3 or 4, log-uniform mode sizes and
    // nnz, mixed skew — spanning the regimes of Table III.
    GeneratorConfig g;
    const int order = rng.next_below(2) == 0 ? 3 : 4;
    for (int m = 0; m < order; ++m) {
      const double log_dim = rng.uniform(6.0, 17.0);
      g.dims.push_back(static_cast<index_t>(std::pow(2.0, log_dim)));
      g.skew.push_back(rng.uniform(1.0, 3.0));
    }
    const double log_nnz = rng.uniform(10.0, 18.0);
    g.nnz = static_cast<nnz_t>(std::pow(2.0, log_nnz));
    g.seed = rng.next_u64();

    const CooTensor t = generate_coo(g);
    const TensorFeatures feat = TensorFeatures::extract(t, 0);
    const gpusim::KernelProfile prof = mttkrp_profile(feat, rank);

    for (gpusim::LaunchConfig cfg : candidates) {
      cfg.shmem_per_block = kernel_shmem_bytes(cfg.block, rank);
      const auto occ = gpusim::compute_occupancy(spec, cfg);
      if (!occ.feasible) continue;
      const double gflops = cost.gflops(cfg, prof);
      // Targets are log2(GFlops): achieved throughput spans ~4 orders
      // of magnitude across tensors, and a tree minimizing SSE on the
      // raw scale would sacrifice all relative accuracy on the small
      // tensors — exactly the ones launch tuning helps most.
      data.add(launch_feature_vector(feat, spec, cfg, rank),
               std::log2(std::max(gflops, 1e-6)));
    }
  }
  return data;
}

const ml::Dataset& AutoTuner::dataset() {
  if (!data_built_) {
    data_ = build_dataset(spec_, cfg_.rank, cfg_.corpus_size, cfg_.seed);
    data_built_ = true;
  }
  return data_;
}

TrainingReport AutoTuner::train() {
  const ml::Dataset& all = dataset();
  auto [train_set, test_set] = all.train_test_split(cfg_.test_frac,
                                                    cfg_.seed ^ 0x9e3779b9);

  auto model = make_model(cfg_.model, cfg_.seed);
  TrainingReport rep;
  rep.model_name = model->name();
  rep.train_rows = train_set.size();
  rep.test_rows = test_set.size();

  WallTimer fit_timer;
  model->fit(train_set);
  rep.train_seconds = fit_timer.seconds();

  if (!test_set.empty()) {
    WallTimer inf_timer;
    const auto pred_log = model->predict_all(test_set);
    rep.inference_us_per_row =
        inf_timer.micros() / static_cast<double>(test_set.size());
    // Report quality in the GFlops domain (what the paper quotes), not
    // the log domain the model is fitted in.
    std::vector<double> truth(test_set.size()), pred(test_set.size());
    for (std::size_t i = 0; i < test_set.size(); ++i) {
      truth[i] = std::exp2(test_set.target(i));
      pred[i] = std::exp2(pred_log[i]);
    }
    rep.mape_test = ml::mape(truth, pred);
    rep.mae_test = ml::mae(truth, pred);
    rep.r2_test = ml::r2(test_set.targets(), pred_log);
  }

  model_ = std::move(model);
  return rep;
}

LaunchSelector AutoTuner::selector() const {
  SF_CHECK(trained(), "train() must run before selector()");
  return LaunchSelector(spec_, model_, cfg_.rank);
}

void AutoTuner::save_model(const std::string& path) const {
  SF_CHECK(trained(), "train() must run before save_model()");
  const auto* tree =
      dynamic_cast<const ml::DecisionTreeRegressor*>(model_.get());
  SF_CHECK(tree != nullptr,
           "only the DecisionTree model kind is serializable");
  ml::save_tree_file(path, *tree);
}

LaunchSelector AutoTuner::load_selector(const gpusim::DeviceSpec& spec,
                                        const std::string& path,
                                        index_t rank) {
  auto tree = std::make_shared<ml::DecisionTreeRegressor>(
      ml::load_tree_file(path));
  return LaunchSelector(spec, std::move(tree), rank);
}

}  // namespace scalfrag
