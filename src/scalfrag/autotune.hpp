#pragma once
// The adaptive launching strategy (paper §IV-B, Fig. 7):
//
//   Generating Tensors → Executing MTTKRP → Data Collecting & Training
//   → Evaluating & Predicting
//
// Offline, the AutoTuner generates a corpus of synthetic tensors,
// sweeps the launch-parameter grid with the ScalFrag kernel's cost
// model, and fits a regression model mapping (tensor features, launch
// config) → GFlops. Online, the LaunchSelector evaluates the trained
// model over the candidate grid for the current tensor's features and
// returns the arg-max configuration — the "optimal launch parameter
// combination" the paper's model outputs.

#include <memory>

#include "gpusim/cost_model.hpp"
#include "ml/dataset.hpp"
#include "ml/regressor.hpp"
#include "scalfrag/kernel.hpp"
#include "tensor/features.hpp"

namespace scalfrag {

/// The model families the paper compares (§IV-B: "DecisionTree, SVM,
/// AdaBoost, Bagging, etc."), plus k-NN as a sanity baseline.
enum class ModelKind { DecisionTree, Bagging, AdaBoost, LinearSVR, Knn };

const char* model_kind_name(ModelKind kind);
std::unique_ptr<ml::Regressor> make_model(ModelKind kind,
                                          std::uint64_t seed = 7);

/// Model input row: tensor features ⊕ launch-config features.
std::vector<double> launch_feature_vector(const TensorFeatures& feat,
                                          const gpusim::DeviceSpec& spec,
                                          const gpusim::LaunchConfig& cfg,
                                          index_t rank);

struct AutoTunerConfig {
  index_t rank = 16;
  int corpus_size = 48;       // synthetic training tensors
  std::uint64_t seed = 1234;
  ModelKind model = ModelKind::DecisionTree;
  double test_frac = 0.2;     // held-out fraction for the report
};

struct TrainingReport {
  std::string model_name;
  std::size_t train_rows = 0;
  std::size_t test_rows = 0;
  double train_seconds = 0.0;      // paper: "< 0.5 seconds"
  double mape_test = 0.0;          // paper: DecisionTree "< 15%"
  double mae_test = 0.0;
  double r2_test = 0.0;
  double inference_us_per_row = 0.0;
};

struct Selection {
  gpusim::LaunchConfig config;
  double predicted_gflops = 0.0;
  double inference_seconds = 0.0;  // host wall time of the selection
};

/// Online side: the trained model + the candidate grid.
class LaunchSelector {
 public:
  LaunchSelector(gpusim::DeviceSpec spec,
                 std::shared_ptr<const ml::Regressor> model, index_t rank);

  /// Pick the best launch configuration for a tensor (or segment) with
  /// the given features.
  Selection select(const TensorFeatures& feat) const;

  double predict_gflops(const TensorFeatures& feat,
                        const gpusim::LaunchConfig& cfg) const;

  index_t rank() const noexcept { return rank_; }
  const gpusim::DeviceSpec& spec() const noexcept { return spec_; }

 private:
  gpusim::DeviceSpec spec_;
  std::shared_ptr<const ml::Regressor> model_;
  index_t rank_;
  std::vector<gpusim::LaunchConfig> candidates_;
};

/// Offline side: corpus generation + sweep + model fitting.
class AutoTuner {
 public:
  explicit AutoTuner(gpusim::DeviceSpec spec, AutoTunerConfig cfg = {});

  /// Build the corpus dataset (idempotent; cached) and fit the
  /// configured model. Returns quality/time metrics.
  TrainingReport train();

  bool trained() const noexcept { return model_ != nullptr; }
  LaunchSelector selector() const;

  /// The collected (features, GFlops) sweep data.
  const ml::Dataset& dataset();

  /// Build a sweep dataset without constructing an AutoTuner (used by
  /// the model-comparison bench to train many models on one corpus).
  static ml::Dataset build_dataset(const gpusim::DeviceSpec& spec,
                                   index_t rank, int corpus_size,
                                   std::uint64_t seed);

  /// Persist the trained model to a text file ("the training needs to
  /// be performed only once", §IV-B — including across processes).
  /// Only the DecisionTree model kind is serializable.
  void save_model(const std::string& path) const;

  /// Reconstruct a ready-to-use selector from a saved model.
  static LaunchSelector load_selector(const gpusim::DeviceSpec& spec,
                                      const std::string& path, index_t rank);

 private:
  gpusim::DeviceSpec spec_;
  AutoTunerConfig cfg_;
  ml::Dataset data_;
  bool data_built_ = false;
  std::shared_ptr<ml::Regressor> model_;
};

}  // namespace scalfrag
