#include "scalfrag/backend_registry.hpp"

#include <algorithm>
#include <sstream>

#include "common/timer.hpp"
#include "parti/parti_executor.hpp"
#include "scalfrag/autotune.hpp"
#include "scalfrag/pipeline.hpp"
#include "scalfrag/streaming.hpp"
#include "tensor/csf_tiled.hpp"

namespace scalfrag {

namespace {

std::string unknown_backend_message(const std::string& name,
                                    const std::vector<std::string>& known) {
  std::ostringstream os;
  os << "unknown MTTKRP backend \"" << name << "\" — registered backends:";
  for (const auto& k : known) os << " " << k;
  return os.str();
}

/// The classic tiled GPU pipeline.
class CooBackend final : public MttkrpBackend {
 public:
  const std::string& name() const noexcept override {
    static const std::string n = "coo";
    return n;
  }
  DenseMatrix run(gpusim::SimDevice& dev, const CooSpan& t,
                  const FactorList& factors, order_t mode,
                  const ExecConfig& cfg,
                  const LaunchSelector* selector) const override {
    ExecConfig sub = cfg;
    sub.backend_name = "coo";  // "auto" resolved here must not recurse
    return run_pipeline(dev, t, factors, mode, sub, selector).output;
  }
};

/// The host engine alone (no simulated device involved).
class CooHostBackend final : public MttkrpBackend {
 public:
  const std::string& name() const noexcept override {
    static const std::string n = "coo_host";
    return n;
  }
  DenseMatrix run(gpusim::SimDevice&, const CooSpan& t,
                  const FactorList& factors, order_t mode,
                  const ExecConfig& cfg,
                  const LaunchSelector*) const override {
    return mttkrp_coo_par(t, factors, mode, cfg.host_for_run());
  }
};

class CsfTiledBackend final : public MttkrpBackend {
 public:
  CsfTiledBackend(std::string name, CsfTiledVariant variant)
      : name_(std::move(name)), variant_(variant) {}

  const std::string& name() const noexcept override { return name_; }

  DenseMatrix run(gpusim::SimDevice&, const CooSpan& t,
                  const FactorList& factors, order_t mode,
                  const ExecConfig& cfg,
                  const LaunchSelector*) const override {
    const CsfTensor csf = CsfTensor::build(t, mode);
    CsfTiledOptions opt;
    opt.variant = variant_;
    opt.fiber_budget = cfg.csf_fiber_budget;
    opt.host = cfg.host_for_run();
    DenseMatrix out(t.dim(mode), factors.at(mode).cols());
    mttkrp_csf_tiled(csf, factors, out, /*accumulate=*/false, opt);
    return out;
  }

 private:
  std::string name_;
  CsfTiledVariant variant_;
};

/// The ParTI baseline flow (one whole-tensor H2D + one kernel under the
/// static default launch) — the comparison point every figure bench
/// plots, now reachable by name so the CpdBackend::ParTI shim converts
/// onto the registry like every other legacy enum value.
class PartiBackend final : public MttkrpBackend {
 public:
  const std::string& name() const noexcept override {
    static const std::string n = "parti";
    return n;
  }
  DenseMatrix run(gpusim::SimDevice& dev, const CooSpan& t,
                  const FactorList& factors, order_t mode,
                  const ExecConfig& cfg,
                  const LaunchSelector*) const override {
    parti::ExecOptions opt;
    opt.launch = cfg.launch_override;
    return parti::run_mttkrp(dev, t, factors, mode, opt).output;
  }
};

/// The out-of-core pipeline: external sort under
/// ExecConfig::memory_budget_bytes, then chunk-at-a-time execution
/// through the classic pipeline (scalfrag/streaming.hpp).
class CooStreamBackend final : public MttkrpBackend {
 public:
  const std::string& name() const noexcept override {
    static const std::string n = "coo_stream";
    return n;
  }
  DenseMatrix run(gpusim::SimDevice& dev, const CooSpan& t,
                  const FactorList& factors, order_t mode,
                  const ExecConfig& cfg,
                  const LaunchSelector* selector) const override {
    StreamingPlan plan(dev, selector);
    return plan.run(t, factors, mode, cfg).output;
  }
};

/// Joint format×launch selection with the built-in heuristic. The
/// model-backed path lives in run_mttkrp_backend (a JointSelector does
/// not fit the virtual signature); this backend exists so "auto" is a
/// first-class registry name that validates and runs like any other.
class AutoBackend final : public MttkrpBackend {
 public:
  const std::string& name() const noexcept override {
    static const std::string n = "auto";
    return n;
  }
  DenseMatrix run(gpusim::SimDevice& dev, const CooSpan& t,
                  const FactorList& factors, order_t mode,
                  const ExecConfig& cfg,
                  const LaunchSelector* selector) const override {
    ExecConfig sub = cfg;
    sub.backend_name = "auto";
    return run_mttkrp_backend(dev, t, factors, mode, sub, selector).output;
  }
};

}  // namespace

UnknownBackendError::UnknownBackendError(std::string name,
                                         std::vector<std::string> known)
    : Error(unknown_backend_message(name, known)),
      name_(std::move(name)),
      known_(std::move(known)) {}

BackendRegistry::BackendRegistry() {
  add(std::make_shared<CooBackend>());
  add(std::make_shared<CooHostBackend>());
  add(std::make_shared<CsfTiledBackend>("csf_tiled_sync",
                                        CsfTiledVariant::Sync),
      {"csf_tiled"});
  add(std::make_shared<CsfTiledBackend>("csf_tiled_coop",
                                        CsfTiledVariant::Coop));
  add(std::make_shared<CsfTiledBackend>("csf_tiled_serial",
                                        CsfTiledVariant::Serial));
  add(std::make_shared<PartiBackend>());
  add(std::make_shared<CooStreamBackend>());
  add(std::make_shared<AutoBackend>());
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry reg;
  return reg;
}

void BackendRegistry::add(std::shared_ptr<const MttkrpBackend> backend,
                          std::vector<std::string> aliases) {
  SF_CHECK(backend != nullptr, "cannot register a null backend");
  std::lock_guard<std::mutex> lock(mutex_);
  aliases.push_back(backend->name());
  for (const auto& n : aliases) {
    SF_CHECK(!n.empty(), "backend names must be non-empty");
    SF_CHECK(by_name_.emplace(n, backend).second,
             "backend name already registered: " + n);
  }
}

bool BackendRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return by_name_.count(name) != 0;
}

const MttkrpBackend& BackendRegistry::resolve(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    std::vector<std::string> known;
    known.reserve(by_name_.size());
    for (const auto& [k, v] : by_name_) known.push_back(k);
    throw UnknownBackendError(name, std::move(known));
  }
  return *it->second;
}

std::vector<std::string> BackendRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(by_name_.size());
  for (const auto& [k, v] : by_name_) out.push_back(k);
  return out;  // std::map iterates sorted
}

BackendRun run_mttkrp_backend(gpusim::SimDevice& dev, const CooSpan& t,
                              const FactorList& factors, order_t mode,
                              const ExecConfig& cfg,
                              const LaunchSelector* selector,
                              const JointSelector* joint) {
  cfg.validate();
  BackendRun run;
  ExecConfig sub = cfg;
  // Host-only backends never touch the device timeline; device backends
  // reset it at entry. Comparing the makespan before/after tells the
  // two apart without a per-backend table.
  const sim_ns sim_before = dev.breakdown().makespan;
  WallTimer prep_timer;
  if (cfg.backend_name == "auto") {
    const TensorFeatures feat = TensorFeatures::extract(t, mode);
    const index_t rank = factors.at(mode).cols();
    run.choice = joint != nullptr ? joint->choose(feat, rank)
                                  : heuristic_joint_choice(feat, rank);
    apply_joint_choice(sub, run.choice);
    run.info.auto_selected = true;
    run.info.choice = run.choice;
    if (cfg.metrics_sink != nullptr) {
      cfg.metrics_sink->count(std::string("backend/auto/") +
                              run.choice.backend);
    }
  }
  run.info.prepare_seconds = prep_timer.seconds();
  const MttkrpBackend& backend =
      BackendRegistry::instance().resolve(sub.backend_name);
  run.backend = sub.backend_name;
  run.info.backend = run.backend;
  if (cfg.metrics_sink != nullptr) {
    cfg.metrics_sink->count(std::string("backend/run/") + run.backend);
  }
  run.output = backend.run(dev, t, factors, mode, sub, selector);
  const sim_ns sim_after = dev.breakdown().makespan;
  run.info.sim_total_ns = sim_after == sim_before ? 0 : sim_after;
  if (cfg.metrics_sink != nullptr) {
    run.info.metrics = cfg.metrics_sink->snapshot();
  }
  return run;
}

}  // namespace scalfrag
