#pragma once
// Named backend registry — drivers resolve MTTKRP execution backends by
// config string instead of hard-coded enums (the openbr-style plugin
// pattern the ROADMAP asks for; the SIMD KernelTable was its seed).
//
// Built-in names:
//
//   "coo"              the classic tiled GPU pipeline (run_pipeline)
//   "coo_host"         the host engine alone (mttkrp_coo_par)
//   "coo_stream"       out-of-core: external sort + chunked pipeline
//                      under ExecConfig::memory_budget_bytes
//   "csf_tiled"        alias of "csf_tiled_sync"
//   "csf_tiled_sync"   CSF sync-tiled schedule
//   "csf_tiled_coop"   CSF coop-tiled schedule
//   "csf_tiled_serial" CSF leaf-ordered serial walk
//   "auto"             joint (format, launch) selection, then dispatch
//
// Unknown names throw UnknownBackendError (also from
// ExecConfig::validate(), so a typo fails before any work is done).
// New backends self-register inside BackendRegistry's constructor —
// static-library builds cannot rely on per-TU static initializers the
// linker is free to drop.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "scalfrag/exec_config.hpp"
#include "scalfrag/format_select.hpp"
#include "scalfrag/run_info.hpp"
#include "tensor/coo.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {

namespace gpusim {
class SimDevice;
}
class LaunchSelector;

/// Typed rejection of a backend name the registry does not know.
class UnknownBackendError : public Error {
 public:
  UnknownBackendError(std::string name, std::vector<std::string> known);
  const std::string& name() const noexcept { return name_; }
  const std::vector<std::string>& known() const noexcept { return known_; }

 private:
  std::string name_;
  std::vector<std::string> known_;
};

/// One execution backend. `t` must be the mode-sorted (slice-grouped)
/// view of the tensor — the exchange convention of every driver.
class MttkrpBackend {
 public:
  virtual ~MttkrpBackend() = default;
  virtual const std::string& name() const noexcept = 0;
  virtual DenseMatrix run(gpusim::SimDevice& dev, const CooSpan& t,
                          const FactorList& factors, order_t mode,
                          const ExecConfig& cfg,
                          const LaunchSelector* selector) const = 0;
};

class BackendRegistry {
 public:
  /// The process-wide registry, with the built-ins registered.
  static BackendRegistry& instance();

  /// Register a backend under its name() plus optional aliases.
  /// Throws on a name collision.
  void add(std::shared_ptr<const MttkrpBackend> backend,
           std::vector<std::string> aliases = {});

  bool contains(const std::string& name) const;

  /// Throws UnknownBackendError for unregistered names.
  const MttkrpBackend& resolve(const std::string& name) const;

  /// All registered names (aliases included), sorted.
  std::vector<std::string> names() const;

 private:
  BackendRegistry();

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const MttkrpBackend>> by_name_;
};

/// Outcome of a dispatched run: the output plus what actually ran.
struct BackendRun {
  DenseMatrix output;
  /// Resolved backend name ("auto" reports the concrete choice).
  std::string backend;
  /// The joint decision (meaningful when the config said "auto").
  JointChoice choice;
  /// Uniform driver record (backend/choice duplicated there plus the
  /// metrics snapshot) — scalfrag/run_info.hpp.
  RunInfo info;
};

/// Resolve cfg.backend_name in the registry and run it. For "auto" the
/// joint selector decides first: `joint` when given, else the built-in
/// heuristic; a predicted COO launch lands in launch_override unless
/// the caller already forced one. `t` must be mode-sorted for `mode`.
BackendRun run_mttkrp_backend(gpusim::SimDevice& dev, const CooSpan& t,
                              const FactorList& factors, order_t mode,
                              const ExecConfig& cfg = {},
                              const LaunchSelector* selector = nullptr,
                              const JointSelector* joint = nullptr);

}  // namespace scalfrag
