#include "scalfrag/cpd.hpp"

#include <cmath>

#include "parti/parti_executor.hpp"
#include "tensor/linalg.hpp"
#include "tensor/mode_views.hpp"

namespace scalfrag {

const char* cpd_backend_name(CpdBackend b) {
  switch (b) {
    case CpdBackend::Reference:
      return "Reference";
    case CpdBackend::ParTI:
      return "ParTI";
    case CpdBackend::ScalFrag:
      return "ScalFrag";
  }
  return "?";
}

namespace {

/// V = ∘_{m≠mode} A⁽ᵐ⁾ᵀA⁽ᵐ⁾ (Algorithm 1, line 3).
DenseMatrix gram_hadamard(const FactorList& factors,
                          const std::vector<DenseMatrix>& grams,
                          order_t mode) {
  DenseMatrix v(factors[0].cols(), factors[0].cols(), 1.0f);
  for (order_t m = 0; m < factors.size(); ++m) {
    if (m == mode) continue;
    linalg::hadamard_inplace(v, grams[m]);
  }
  return v;
}

}  // namespace

CpdResult cpd_als(const CooTensor& x, const CpdOptions& opt,
                  gpusim::SimDevice* dev, const LaunchSelector* selector) {
  SF_CHECK(opt.rank > 0, "rank must be positive");
  SF_CHECK(opt.max_iters > 0, "max_iters must be positive");
  SF_CHECK(x.nnz() > 0, "cannot decompose an empty tensor");
  if (opt.backend != CpdBackend::Reference) {
    SF_CHECK(dev != nullptr,
             "ParTI/ScalFrag backends need a simulated device");
  }

  const order_t order = x.order();
  const index_t rank = opt.rank;
  obs::MetricsRegistry* const met = opt.exec.metrics_sink;
  const bool multidev =
      opt.backend == CpdBackend::ScalFrag && opt.exec.num_devices > 1;

  // One canonical sort shared by every backend (MTTKRP kernels require
  // mode order): a single sorted copy plus per-mode gather permutations
  // instead of the old one-fully-sorted-copy-per-mode. The
  // single-device ScalFrag backend moves the views into its MttkrpPlan;
  // the other backends run straight off ModeViews::view(mode).
  std::optional<ModeViews> views;
  {
    std::optional<obs::MetricsRegistry::ScopedSpan> span;
    if (met != nullptr) span.emplace(*met, "cpd/sort_modes");
    views.emplace(x, met);
  }

  CpdResult res;
  res.factors.reserve(order);
  Rng rng(opt.seed);
  for (order_t m = 0; m < order; ++m) {
    DenseMatrix f(x.dim(m), rank);
    f.randomize(rng);
    res.factors.push_back(std::move(f));
  }
  res.lambda.assign(rank, 1.0);

  std::vector<DenseMatrix> grams(order);
  for (order_t m = 0; m < order; ++m) grams[m] = linalg::gram(res.factors[m]);

  double norm_x_sq = 0.0;
  for (value_t v : x.values()) {
    norm_x_sq += static_cast<double>(v) * static_cast<double>(v);
  }
  const double norm_x = std::sqrt(norm_x_sq);

  // ScalFrag backend, single device: plan once (per-mode sorting,
  // segmentation, and launch selection are factor-independent), replay
  // every iteration. Sharded: a DeviceGroup cloned from the driver
  // device's spec runs each MTTKRP through MultiPipelineExecutor.
  std::optional<MttkrpPlan> plan;
  std::optional<gpusim::DeviceGroup> group;
  if (opt.backend == CpdBackend::ScalFrag) {
    if (multidev) {
      group.emplace(dev->spec(), opt.exec.num_devices, opt.exec.link);
    } else {
      std::optional<obs::MetricsRegistry::ScopedSpan> span;
      if (met != nullptr) span.emplace(*met, "cpd/plan");
      plan.emplace(std::move(*views), rank, *dev, selector, opt.exec);
      views.reset();
    }
  }

  auto run_mttkrp = [&](order_t mode) -> DenseMatrix {
    switch (opt.backend) {
      case CpdBackend::Reference:
        return mttkrp_coo_par(views->view(mode), res.factors, mode,
                              opt.exec.host_for_run());
      case CpdBackend::ParTI: {
        auto r = parti::run_mttkrp(*dev, views->view(mode), res.factors,
                                   mode);
        res.mttkrp_sim_ns += r.total_ns;
        ++res.mttkrp_calls;
        return std::move(r.output);
      }
      case CpdBackend::ScalFrag: {
        if (multidev) {
          auto r = run_multi_pipeline(*group, views->view(mode), res.factors,
                                      mode, opt.exec, selector);
          res.mttkrp_sim_ns += r.total_ns;
          ++res.mttkrp_calls;
          return std::move(r.output);
        }
        auto r = plan->run(res.factors, mode);
        res.mttkrp_sim_ns += r.total_ns;
        ++res.mttkrp_calls;
        return std::move(r.output);
      }
    }
    throw Error("unknown backend");
  };

  double prev_fit = 0.0;
  for (int it = 0; it < opt.max_iters; ++it) {
    std::optional<obs::MetricsRegistry::ScopedSpan> it_span;
    if (met != nullptr) it_span.emplace(*met, "cpd/iteration");
    DenseMatrix last_m;  // MTTKRP result of the final mode (fit calc)
    for (order_t mode = 0; mode < order; ++mode) {
      DenseMatrix m = run_mttkrp(mode);
      const DenseMatrix v = gram_hadamard(res.factors, grams, mode);
      DenseMatrix updated = linalg::matmul(m, linalg::pinv_spd(v));

      if (opt.nonnegative) {
        // Projected ALS: clamp to the non-negative orthant (a small
        // positive floor keeps Gram matrices from going singular when
        // whole columns would otherwise zero out).
        value_t* p = updated.data();
        for (std::size_t i = 0; i < updated.size(); ++i) {
          if (p[i] < 0.0f) p[i] = 1e-9f;
        }
      }

      // Column-normalize; absorb scales into lambda.
      auto norms = linalg::column_norms(updated);
      for (index_t f = 0; f < rank; ++f) {
        res.lambda[f] = norms[f] > 1e-30 ? norms[f] : 1.0;
      }
      for (index_t i = 0; i < updated.rows(); ++i) {
        value_t* row = updated.row(i);
        for (index_t f = 0; f < rank; ++f) {
          row[f] = static_cast<value_t>(row[f] / res.lambda[f]);
        }
      }
      res.factors[mode] = std::move(updated);
      grams[mode] = linalg::gram(res.factors[mode]);
      if (mode + 1 == order) last_m = std::move(m);
    }

    // Fit via the standard SPLATT identity:
    //   ||X̂||² = Σ_{f,g} λ_f λ_g Π_m Gram_m(f,g)
    //   <X, X̂> = Σ_{i,f} λ_f · M(i,f) · A⁽ᴺ⁾(i,f)
    double norm_model_sq = 0.0;
    for (index_t f = 0; f < rank; ++f) {
      for (index_t g = 0; g < rank; ++g) {
        double prod = res.lambda[f] * res.lambda[g];
        for (order_t m = 0; m < order; ++m) prod *= grams[m](f, g);
        norm_model_sq += prod;
      }
    }
    const order_t last = static_cast<order_t>(order - 1);
    double inner = 0.0;
    for (index_t i = 0; i < res.factors[last].rows(); ++i) {
      const value_t* mrow = last_m.row(i);
      const value_t* arow = res.factors[last].row(i);
      for (index_t f = 0; f < rank; ++f) {
        inner += res.lambda[f] * static_cast<double>(mrow[f]) *
                 static_cast<double>(arow[f]);
      }
    }
    const double resid_sq =
        std::max(0.0, norm_x_sq - 2.0 * inner + norm_model_sq);
    const double fit = 1.0 - std::sqrt(resid_sq) / norm_x;
    res.fit_history.push_back(fit);
    res.iterations = it + 1;
    if (it > 0 && std::abs(fit - prev_fit) < opt.tol) break;
    prev_fit = fit;
  }

  res.final_fit = res.fit_history.empty() ? 0.0 : res.fit_history.back();
  if (met != nullptr) {
    met->count("cpd/runs");
    met->count("cpd/iterations", static_cast<std::uint64_t>(res.iterations));
    met->count("cpd/mttkrp_calls",
               static_cast<std::uint64_t>(res.mttkrp_calls));
    met->set("cpd/final_fit", res.final_fit);
    met->set("cpd/mttkrp_sim_ns", static_cast<double>(res.mttkrp_sim_ns));
  }
  return res;
}

double cpd_predict(const CpdResult& model, std::span<const index_t> coord) {
  SF_CHECK(coord.size() == model.factors.size(),
           "coordinate arity must match tensor order");
  const index_t rank = model.factors[0].cols();
  double s = 0.0;
  for (index_t f = 0; f < rank; ++f) {
    double prod = model.lambda[f];
    for (std::size_t m = 0; m < coord.size(); ++m) {
      SF_CHECK(coord[m] < model.factors[m].rows(), "coordinate out of range");
      prod *= static_cast<double>(model.factors[m](coord[m], f));
    }
    s += prod;
  }
  return s;
}

}  // namespace scalfrag
