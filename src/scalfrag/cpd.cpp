#include "scalfrag/cpd.hpp"

#include <cmath>

#include "common/timer.hpp"
#include "parti/parti_executor.hpp"
#include "scalfrag/backend_registry.hpp"
#include "tensor/linalg.hpp"
#include "tensor/mode_views.hpp"

namespace scalfrag {

const char* cpd_backend_name(CpdBackend b) {
  switch (b) {
    case CpdBackend::Reference:
      return "Reference";
    case CpdBackend::ParTI:
      return "ParTI";
    case CpdBackend::ScalFrag:
      return "ScalFrag";
  }
  return "?";
}

const char* cpd_backend_registry_name(CpdBackend b) {
  switch (b) {
    case CpdBackend::Reference:
      return "coo_host";
    case CpdBackend::ParTI:
      return "parti";
    case CpdBackend::ScalFrag:
      return "coo";
  }
  return "?";
}

namespace {

/// V = ∘_{m≠mode} A⁽ᵐ⁾ᵀA⁽ᵐ⁾ (Algorithm 1, line 3).
DenseMatrix gram_hadamard(const FactorList& factors,
                          const std::vector<DenseMatrix>& grams,
                          order_t mode) {
  DenseMatrix v(factors[0].cols(), factors[0].cols(), 1.0f);
  for (order_t m = 0; m < factors.size(); ++m) {
    if (m == mode) continue;
    linalg::hadamard_inplace(v, grams[m]);
  }
  return v;
}

/// How one ALS sweep executes its MTTKRPs.
enum class CpdPath { Host, Parti, CooPlan, CooMulti, Csf, Generic };

bool is_csf_backend(const std::string& name) {
  return name.rfind("csf_tiled", 0) == 0;
}

}  // namespace

CpdResult cpd_als(const CooTensor& x, const ExecConfig& cfg,
                  gpusim::SimDevice* dev, const LaunchSelector* selector,
                  const SharedPlans& shared) {
  SF_CHECK(x.nnz() > 0, "cannot decompose an empty tensor");
  cfg.validate();
  const index_t rank = cfg.decomp_rank;
  const int max_iters =
      cfg.decomp_max_iters > 0 ? cfg.decomp_max_iters : 10;
  const double tol = cfg.decomp_tol >= 0.0 ? cfg.decomp_tol : 1e-4;
  const std::uint64_t seed = cfg.decomp_seed != 0 ? cfg.decomp_seed : 5;

  const order_t order = x.order();
  obs::MetricsRegistry* const met = cfg.metrics_sink;

  CpdResult res;
  WallTimer prep_timer;

  // One canonical sort shared by every backend that walks mode views
  // (MTTKRP kernels require mode order): a single sorted copy plus
  // per-mode gather permutations. The single-device "coo" backend moves
  // the views into its MttkrpPlan; backends replaying a SharedPlans
  // entry (or the CSF plans, which sort internally) skip the sort
  // entirely — that skip is the service's cache-hit fast path.
  std::string backend = cfg.backend_name;
  const bool multidev = backend == "coo" && cfg.num_devices > 1;
  auto needs_views = [&](const std::string& name) {
    if (name == "coo") return multidev || shared.coo == nullptr;
    if (is_csf_backend(name)) return false;
    return true;  // coo_host, parti, coo_stream, future generics, auto
  };

  std::optional<ModeViews> views;
  auto ensure_views = [&] {
    if (views) return;
    std::optional<obs::MetricsRegistry::ScopedSpan> span;
    if (met != nullptr) span.emplace(*met, "cpd/sort_modes");
    views.emplace(x, met);
  };
  if (needs_views(backend)) ensure_views();

  // "auto": one joint decision from mode-0 features, then dispatch on
  // the concrete name like any explicit config.
  if (backend == "auto") {
    res.info.choice = heuristic_joint_choice(
        TensorFeatures::extract(views->view(0), 0), rank);
    res.info.auto_selected = true;
    backend = res.info.choice.backend;
    if (met != nullptr) met->count("backend/auto/" + backend);
  }
  res.info.backend = backend;

  CpdPath path;
  if (backend == "coo_host") {
    path = CpdPath::Host;
  } else if (backend == "parti") {
    path = CpdPath::Parti;
  } else if (backend == "coo") {
    path = multidev ? CpdPath::CooMulti : CpdPath::CooPlan;
  } else if (is_csf_backend(backend)) {
    path = CpdPath::Csf;
  } else {
    path = CpdPath::Generic;
  }
  const bool host_only = path == CpdPath::Host || path == CpdPath::Csf;
  SF_CHECK(host_only || dev != nullptr,
           "backend \"" + backend + "\" needs a simulated device");

  res.factors.reserve(order);
  Rng rng(seed);
  for (order_t m = 0; m < order; ++m) {
    DenseMatrix f(x.dim(m), rank);
    f.randomize(rng);
    res.factors.push_back(std::move(f));
  }
  res.lambda.assign(rank, 1.0);

  std::vector<DenseMatrix> grams(order);
  for (order_t m = 0; m < order; ++m) grams[m] = linalg::gram(res.factors[m]);

  double norm_x_sq = 0.0;
  for (value_t v : x.values()) {
    norm_x_sq += static_cast<double>(v) * static_cast<double>(v);
  }
  const double norm_x = std::sqrt(norm_x_sq);

  // "coo" single device: plan once (per-mode sorting, segmentation, and
  // launch selection are factor-independent), replay every iteration —
  // unless the caller already holds a cached plan. Sharded: a
  // DeviceGroup cloned from the driver device's spec runs each MTTKRP
  // through MultiPipelineExecutor. CSF: per-mode trees + tilings, built
  // or injected the same way.
  std::optional<MttkrpPlan> own_coo_plan;
  std::optional<CsfPlan> own_csf_plan;
  const MttkrpPlan* coo_plan = shared.coo;
  const CsfPlan* csf_plan = shared.csf;
  std::optional<gpusim::DeviceGroup> group;
  if (path == CpdPath::CooPlan) {
    if (coo_plan != nullptr) {
      SF_CHECK(coo_plan->rank() == rank,
               "shared MttkrpPlan rank does not match cfg.decomp_rank");
      if (met != nullptr) met->count("cpd/plan_reuse");
    } else {
      std::optional<obs::MetricsRegistry::ScopedSpan> span;
      if (met != nullptr) span.emplace(*met, "cpd/plan");
      ExecConfig plan_cfg = cfg;
      plan_cfg.backend_name = "coo";
      own_coo_plan.emplace(std::move(*views), rank, *dev, selector,
                           plan_cfg);
      views.reset();
      coo_plan = &*own_coo_plan;
    }
  } else if (path == CpdPath::Csf) {
    if (csf_plan != nullptr) {
      if (met != nullptr) met->count("cpd/plan_reuse");
    } else {
      std::optional<obs::MetricsRegistry::ScopedSpan> span;
      if (met != nullptr) span.emplace(*met, "cpd/plan");
      ExecConfig plan_cfg = cfg;
      plan_cfg.backend_name = backend;
      own_csf_plan.emplace(x, plan_cfg);
      csf_plan = &*own_csf_plan;
    }
  } else if (path == CpdPath::CooMulti) {
    group.emplace(dev->spec(), cfg.num_devices, cfg.link);
  }
  res.info.prepare_seconds = prep_timer.seconds();

  auto run_mttkrp = [&](order_t mode) -> DenseMatrix {
    switch (path) {
      case CpdPath::Host:
        return mttkrp_coo_par(views->view(mode), res.factors, mode,
                              cfg.host_for_run());
      case CpdPath::Parti: {
        auto r = parti::run_mttkrp(*dev, views->view(mode), res.factors,
                                   mode);
        res.mttkrp_sim_ns += r.total_ns;
        ++res.mttkrp_calls;
        return std::move(r.output);
      }
      case CpdPath::CooMulti: {
        auto r = run_multi_pipeline(*group, views->view(mode), res.factors,
                                    mode, cfg, selector);
        res.mttkrp_sim_ns += r.total_ns;
        ++res.mttkrp_calls;
        return std::move(r.output);
      }
      case CpdPath::CooPlan: {
        auto r = coo_plan->run_on(*dev, res.factors, mode, met);
        res.mttkrp_sim_ns += r.total_ns;
        ++res.mttkrp_calls;
        return std::move(r.output);
      }
      case CpdPath::Csf:
        return csf_plan->run_on(res.factors, mode, met);
      case CpdPath::Generic: {
        ExecConfig sub = cfg;
        sub.backend_name = backend;
        auto r = run_mttkrp_backend(*dev, views->view(mode), res.factors,
                                    mode, sub, selector);
        res.mttkrp_sim_ns += r.info.sim_total_ns;
        ++res.mttkrp_calls;
        return std::move(r.output);
      }
    }
    throw Error("unknown backend");
  };

  double prev_fit = 0.0;
  for (int it = 0; it < max_iters; ++it) {
    std::optional<obs::MetricsRegistry::ScopedSpan> it_span;
    if (met != nullptr) it_span.emplace(*met, "cpd/iteration");
    DenseMatrix last_m;  // MTTKRP result of the final mode (fit calc)
    for (order_t mode = 0; mode < order; ++mode) {
      DenseMatrix m = run_mttkrp(mode);
      const DenseMatrix v = gram_hadamard(res.factors, grams, mode);
      DenseMatrix updated = linalg::matmul(m, linalg::pinv_spd(v));

      if (cfg.cpd_nonnegative) {
        // Projected ALS: clamp to the non-negative orthant (a small
        // positive floor keeps Gram matrices from going singular when
        // whole columns would otherwise zero out).
        value_t* p = updated.data();
        for (std::size_t i = 0; i < updated.size(); ++i) {
          if (p[i] < 0.0f) p[i] = 1e-9f;
        }
      }

      // Column-normalize; absorb scales into lambda.
      auto norms = linalg::column_norms(updated);
      for (index_t f = 0; f < rank; ++f) {
        res.lambda[f] = norms[f] > 1e-30 ? norms[f] : 1.0;
      }
      for (index_t i = 0; i < updated.rows(); ++i) {
        value_t* row = updated.row(i);
        for (index_t f = 0; f < rank; ++f) {
          row[f] = static_cast<value_t>(row[f] / res.lambda[f]);
        }
      }
      res.factors[mode] = std::move(updated);
      grams[mode] = linalg::gram(res.factors[mode]);
      if (mode + 1 == order) last_m = std::move(m);
    }

    // Fit via the standard SPLATT identity:
    //   ||X̂||² = Σ_{f,g} λ_f λ_g Π_m Gram_m(f,g)
    //   <X, X̂> = Σ_{i,f} λ_f · M(i,f) · A⁽ᴺ⁾(i,f)
    double norm_model_sq = 0.0;
    for (index_t f = 0; f < rank; ++f) {
      for (index_t g = 0; g < rank; ++g) {
        double prod = res.lambda[f] * res.lambda[g];
        for (order_t m = 0; m < order; ++m) prod *= grams[m](f, g);
        norm_model_sq += prod;
      }
    }
    const order_t last = static_cast<order_t>(order - 1);
    double inner = 0.0;
    for (index_t i = 0; i < res.factors[last].rows(); ++i) {
      const value_t* mrow = last_m.row(i);
      const value_t* arow = res.factors[last].row(i);
      for (index_t f = 0; f < rank; ++f) {
        inner += res.lambda[f] * static_cast<double>(mrow[f]) *
                 static_cast<double>(arow[f]);
      }
    }
    const double resid_sq =
        std::max(0.0, norm_x_sq - 2.0 * inner + norm_model_sq);
    const double fit = 1.0 - std::sqrt(resid_sq) / norm_x;
    res.fit_history.push_back(fit);
    res.iterations = it + 1;
    if (it > 0 && std::abs(fit - prev_fit) < tol) break;
    prev_fit = fit;
  }

  res.final_fit = res.fit_history.empty() ? 0.0 : res.fit_history.back();
  res.info.sim_total_ns = res.mttkrp_sim_ns;
  if (met != nullptr) {
    met->count("cpd/runs");
    met->count("cpd/iterations", static_cast<std::uint64_t>(res.iterations));
    met->count("cpd/mttkrp_calls",
               static_cast<std::uint64_t>(res.mttkrp_calls));
    met->set("cpd/final_fit", res.final_fit);
    met->set("cpd/mttkrp_sim_ns", static_cast<double>(res.mttkrp_sim_ns));
    res.info.metrics = met->snapshot();
  }
  return res;
}

double cpd_predict(const CpdResult& model, std::span<const index_t> coord) {
  SF_CHECK(coord.size() == model.factors.size(),
           "coordinate arity must match tensor order");
  const index_t rank = model.factors[0].cols();
  double s = 0.0;
  for (index_t f = 0; f < rank; ++f) {
    double prod = model.lambda[f];
    for (std::size_t m = 0; m < coord.size(); ++m) {
      SF_CHECK(coord[m] < model.factors[m].rows(), "coordinate out of range");
      prod *= static_cast<double>(model.factors[m](coord[m], f));
    }
    s += prod;
  }
  return s;
}

}  // namespace scalfrag
