#pragma once
// CPD-ALS (paper Algorithm 1): alternating least squares for the
// canonical polyadic decomposition, with MTTKRP pluggable across three
// backends — the host reference, the ParTI baseline flow, and the
// ScalFrag pipeline. This is the application that motivates the whole
// paper ("the computation of the CPD for a sparse tensor is
// predominantly influenced by the MTTKRP operation").

#include <optional>

#include "gpusim/engine.hpp"
#include "scalfrag/multi_pipeline.hpp"
#include "scalfrag/pipeline.hpp"
#include "scalfrag/plan.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {

enum class CpdBackend { Reference, ParTI, ScalFrag };

const char* cpd_backend_name(CpdBackend b);

struct CpdOptions {
  index_t rank = 16;
  int max_iters = 10;
  /// Stop when the fit improves by less than this between iterations.
  double tol = 1e-4;
  std::uint64_t seed = 5;
  CpdBackend backend = CpdBackend::Reference;
  /// Project factors onto the non-negative orthant after each update
  /// (projected ALS). For inherently non-negative data (counts,
  /// ratings) this yields interpretable parts-based factors at a small
  /// fit cost.
  bool nonnegative = false;
  /// Execution config shared by every backend: the ScalFrag backend
  /// reads all of it (exec.devices(n) with n > 1 shards each MTTKRP
  /// across a simulated DeviceGroup); the Reference backend uses the
  /// host-engine block (exec.threads/grain/strategy — strategy Serial
  /// reproduces the single-threaded reference exactly); every backend
  /// reports through exec.metrics(&reg).
  ExecConfig exec;
};

struct CpdResult {
  FactorList factors;          // column-normalized
  std::vector<double> lambda;  // column weights
  std::vector<double> fit_history;
  double final_fit = 0.0;
  int iterations = 0;

  /// Simulated accelerator time spent in MTTKRP across the run
  /// (Reference backend leaves this 0).
  sim_ns mttkrp_sim_ns = 0;
  int mttkrp_calls = 0;
};

/// Run CPD-ALS on `x`. For the ParTI/ScalFrag backends a SimDevice is
/// required; `selector` enables adaptive launching for ScalFrag.
CpdResult cpd_als(const CooTensor& x, const CpdOptions& opt,
                  gpusim::SimDevice* dev = nullptr,
                  const LaunchSelector* selector = nullptr);

/// Reconstruct one tensor entry from the factors (model evaluation):
/// x̂(i…) = Σ_f λ_f Π_m A⁽ᵐ⁾(i_m, f).
double cpd_predict(const CpdResult& model, std::span<const index_t> coord);

}  // namespace scalfrag
