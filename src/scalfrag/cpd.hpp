#pragma once
// CPD-ALS (paper Algorithm 1): alternating least squares for the
// canonical polyadic decomposition, with MTTKRP pluggable across the
// backend registry — the host engine, the ParTI baseline flow, the
// ScalFrag pipeline (single- or multi-device), and the CSF tiled
// engine. This is the application that motivates the whole paper ("the
// computation of the CPD for a sparse tensor is predominantly
// influenced by the MTTKRP operation").
//
// Configuration is one ExecConfig: backend by registry name, rank /
// max_iters / tol / seed through the decomposition knobs
// (ExecConfig::rank(r).max_iters(n).tol(t)). CpdOptions survives below
// only as a deprecated conversion shim.

#include <optional>

#include "gpusim/engine.hpp"
#include "scalfrag/csf_plan.hpp"
#include "scalfrag/multi_pipeline.hpp"
#include "scalfrag/pipeline.hpp"
#include "scalfrag/plan.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {

enum class CpdBackend { Reference, ParTI, ScalFrag };

const char* cpd_backend_name(CpdBackend b);

/// Registry backend name the legacy enum maps onto.
const char* cpd_backend_registry_name(CpdBackend b);

/// Legacy CPD options. Thin conversion shim: every field maps onto an
/// ExecConfig decomposition knob (see docs/api.md). In-tree code must
/// not use it — CI builds with -Werror=deprecated-declarations.
struct [[deprecated(
    "use scalfrag::ExecConfig rank()/max_iters()/tol()/seed()/nonneg() "
    "and backend(name) (docs/api.md)")]] CpdOptions {
  index_t rank = 16;
  int max_iters = 10;
  /// Stop when the fit improves by less than this between iterations.
  double tol = 1e-4;
  std::uint64_t seed = 5;
  CpdBackend backend = CpdBackend::Reference;
  /// Project factors onto the non-negative orthant after each update.
  bool nonnegative = false;
  ExecConfig exec;

  operator ExecConfig() const {
    ExecConfig cfg = exec;
    cfg.backend_name = cpd_backend_registry_name(backend);
    cfg.decomp_rank = rank;
    cfg.decomp_max_iters = max_iters;
    cfg.decomp_tol = tol;
    cfg.decomp_seed = seed;
    cfg.cpd_nonnegative = nonnegative;
    return cfg;
  }
};

struct CpdResult {
  FactorList factors;          // column-normalized
  std::vector<double> lambda;  // column weights
  std::vector<double> fit_history;
  double final_fit = 0.0;
  int iterations = 0;

  /// Simulated accelerator time spent in MTTKRP across the run
  /// (host-only backends leave this 0).
  sim_ns mttkrp_sim_ns = 0;
  int mttkrp_calls = 0;

  /// Uniform driver record (scalfrag/run_info.hpp).
  RunInfo info;
};

/// Prebuilt per-tensor plans a caller injects so cpd_als skips the
/// canonical sort and plan construction — the decomposition service's
/// PlanCache hands these out across jobs. Non-owning; the plans must
/// outlive the call and match the tensor and cfg.decomp_rank.
struct SharedPlans {
  const MttkrpPlan* coo = nullptr;  // backend "coo", single-device
  const CsfPlan* csf = nullptr;     // the csf_tiled backends
};

/// Run CPD-ALS on `x` under `cfg`. Backends that execute on the
/// simulated device ("coo", "parti", "coo_stream", and "auto" when it
/// resolves to one) require `dev`; "coo_host" and the csf_tiled
/// backends are host-only. `selector` enables adaptive launching for
/// the COO pipeline. "auto" resolves through the built-in heuristic
/// from mode-0 features — callers holding a JointSelector (the
/// service) resolve the choice themselves and pass a concrete name.
CpdResult cpd_als(const CooTensor& x, const ExecConfig& cfg = {},
                  gpusim::SimDevice* dev = nullptr,
                  const LaunchSelector* selector = nullptr,
                  const SharedPlans& shared = {});

/// Reconstruct one tensor entry from the factors (model evaluation):
/// x̂(i…) = Σ_f λ_f Π_m A⁽ᵐ⁾(i_m, f).
double cpd_predict(const CpdResult& model, std::span<const index_t> coord);

}  // namespace scalfrag
