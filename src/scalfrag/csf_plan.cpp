#include "scalfrag/csf_plan.hpp"

#include "common/timer.hpp"
#include "tensor/mode_views.hpp"

namespace scalfrag {

namespace {

CsfTiledVariant variant_from_backend(const std::string& name) {
  if (name == "csf_tiled_serial") return CsfTiledVariant::Serial;
  if (name == "csf_tiled_coop") return CsfTiledVariant::Coop;
  return CsfTiledVariant::Sync;  // "csf_tiled"/"csf_tiled_sync"/others
}

}  // namespace

CsfPlan::CsfPlan(const CooTensor& x, ExecConfig config)
    : cfg_(std::move(config)) {
  cfg_.validate();
  SF_CHECK(cfg_.num_devices == 1,
           "CsfPlan is a host plan — multi-device configs run the COO "
           "pipeline");
  variant_ = variant_from_backend(cfg_.backend_name);

  WallTimer timer;
  const order_t order = x.order();
  csf_.reserve(order);
  tilings_.reserve(order);
  // One canonical sort + counting permutations; the views die with this
  // scope — only the trees stay resident.
  ModeViews views(x, cfg_.metrics_sink);
  nnz_t budget = cfg_.csf_fiber_budget;
  for (order_t m = 0; m < order; ++m) {
    csf_.push_back(CsfTensor::build(views.view(m), m));
    tilings_.push_back(CsfTiling::build(
        csf_.back(),
        budget != 0 ? budget
                    : CsfTiling::auto_budget(csf_.back(),
                                             cfg_.host_exec.threads)));
  }
  prepare_seconds_ = timer.seconds();
  if (cfg_.metrics_sink != nullptr) {
    cfg_.metrics_sink->count("csf_plan/builds");
    cfg_.metrics_sink->count("csf_plan/resident_bytes", resident_bytes());
  }
}

std::size_t CsfPlan::resident_bytes() const noexcept {
  std::size_t b = 0;
  for (const auto& t : csf_) b += t.bytes();
  return b;
}

void CsfPlan::run(const FactorList& factors, order_t mode, DenseMatrix& out,
                  bool accumulate) const {
  CsfTiledOptions opt;
  opt.variant = variant_;
  opt.fiber_budget = cfg_.csf_fiber_budget;
  opt.host = cfg_.host_for_run();
  mttkrp_csf_tiled(csf_.at(mode), tilings_.at(mode), factors, out, accumulate,
                   opt);
}

DenseMatrix CsfPlan::run(const FactorList& factors, order_t mode) const {
  DenseMatrix out(csf_.at(mode).dims()[mode], factors.at(mode).cols());
  run(factors, mode, out, /*accumulate=*/false);
  return out;
}

DenseMatrix CsfPlan::run_on(const FactorList& factors, order_t mode,
                            obs::MetricsRegistry* sink) const {
  CsfTiledOptions opt;
  opt.variant = variant_;
  opt.fiber_budget = cfg_.csf_fiber_budget;
  opt.host = cfg_.host_exec;
  if (sink != nullptr && opt.host.metrics == nullptr) {
    opt.host.metrics = sink;
  }
  DenseMatrix out(csf_.at(mode).dims()[mode], factors.at(mode).cols());
  mttkrp_csf_tiled(csf_.at(mode), tilings_.at(mode), factors, out,
                   /*accumulate=*/false, opt);
  return out;
}

}  // namespace scalfrag
