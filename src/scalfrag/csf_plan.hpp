#pragma once
// CsfPlan — the CSF-tiled counterpart of MttkrpPlan: per-mode CSF trees
// and fiber tilings built once, replayed by every CPD iteration.
//
// Construction goes through ModeViews (one canonical sort + counting
// permutations) rather than N full sorts; the views are transient —
// what stays resident is exactly the per-mode CsfTensor arrays and the
// tilings, reported by resident_bytes().

#include <vector>

#include "scalfrag/exec_config.hpp"
#include "tensor/csf_tiled.hpp"

namespace scalfrag {

class CsfPlan {
 public:
  /// Build every mode's tree + tiling. The config is copied by value;
  /// backend_name picks the schedule ("csf_tiled_serial" /
  /// "csf_tiled_coop" / anything else = sync) and csf_fiber_budget the
  /// tile size (0 = auto). Multi-device configs are rejected — the CSF
  /// tiled engine is a host backend.
  explicit CsfPlan(const CooTensor& x, ExecConfig config = {});

  order_t order() const noexcept {
    return static_cast<order_t>(csf_.size());
  }
  const ExecConfig& config() const noexcept { return cfg_; }
  CsfTiledVariant variant() const noexcept { return variant_; }

  const CsfTensor& csf(order_t mode) const { return csf_.at(mode); }
  const CsfTiling& tiling(order_t mode) const { return tilings_.at(mode); }

  /// Bytes held resident (all modes' CSF arrays; tilings are O(tiles)).
  std::size_t resident_bytes() const noexcept;

  /// One-off preprocessing wall time (views + trees + tilings).
  double prepare_seconds() const noexcept { return prepare_seconds_; }

  /// Mode-`mode` MTTKRP into `out` (shape dims[mode] × F).
  void run(const FactorList& factors, order_t mode, DenseMatrix& out,
           bool accumulate = false) const;

  /// Convenience overload allocating the output.
  DenseMatrix run(const FactorList& factors, order_t mode) const;

  /// Cache-friendly replay with a per-run metrics override: identical
  /// execution to run(), reporting into `sink` instead of the config's
  /// baked-in pointer (how the service's shared PlanCache reports into
  /// per-job registries).
  DenseMatrix run_on(const FactorList& factors, order_t mode,
                     obs::MetricsRegistry* sink) const;

 private:
  ExecConfig cfg_;
  CsfTiledVariant variant_ = CsfTiledVariant::Sync;
  std::vector<CsfTensor> csf_;       // [mode]
  std::vector<CsfTiling> tilings_;   // [mode]
  double prepare_seconds_ = 0.0;
};

}  // namespace scalfrag
