#include "scalfrag/exec_config.hpp"

#include "common/error.hpp"
#include "scalfrag/backend_registry.hpp"

namespace scalfrag {

void ExecConfig::validate() const {
  SF_CHECK(num_devices >= 1, "num_devices must be >= 1");
  SF_CHECK(num_segments >= 0, "segments must be >= 0 (0 = auto)");
  SF_CHECK(num_streams > 0, "streams must be positive");
  SF_CHECK(num_devices == 1 || hybrid_cpu_threshold == 0,
           "the CPU hybrid split is single-device only — clear "
           "hybrid_cpu_threshold when devices > 1");
  // Typed rejection of unknown backend names: a typo'd
  // .backend("csf_tield") fails here, not at dispatch depth.
  if (!BackendRegistry::instance().contains(backend_name)) {
    throw UnknownBackendError(backend_name,
                              BackendRegistry::instance().names());
  }
  SF_CHECK(num_devices == 1 || backend_name == "coo",
           "multi-device execution is a COO-pipeline feature — backend "
           "must be \"coo\" when devices > 1");
  SF_CHECK(decomp_rank > 0, "decomposition rank must be positive");
  SF_CHECK(decomp_max_iters >= 0,
           "decomp_max_iters must be >= 0 (0 = driver default)");
  // decomp_tol: any negative value means "driver default"; 0 disables
  // the early stop — both are valid, so there is nothing to reject.
}

}  // namespace scalfrag
