#include "scalfrag/exec_config.hpp"

#include "common/error.hpp"

namespace scalfrag {

void ExecConfig::validate() const {
  SF_CHECK(num_devices >= 1, "num_devices must be >= 1");
  SF_CHECK(num_segments >= 0, "segments must be >= 0 (0 = auto)");
  SF_CHECK(num_streams > 0, "streams must be positive");
  SF_CHECK(num_devices == 1 || hybrid_cpu_threshold == 0,
           "the CPU hybrid split is single-device only — clear "
           "hybrid_cpu_threshold when devices > 1");
}

}  // namespace scalfrag
