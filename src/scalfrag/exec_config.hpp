#pragma once
// ExecConfig — the one execution-configuration surface for every
// driver in the repository.
//
// Historically each layer grew its own options struct (PipelineOptions,
// HostExecOptions, ScalFragKernelOptions, plus CpdOptions/TuckerOptions
// nesting copies of them). ExecConfig subsumes all of them: one
// builder-style value that `run_pipeline`, `run_hybrid` (the pipeline's
// hybrid split), `cpd_als`, `tucker_hooi`, and the multi-device
// executor all accept.
//
//   auto cfg = scalfrag::ExecConfig{}
//                  .devices(4)
//                  .segments_auto()
//                  .threads(8)
//                  .metrics(&reg);
//
// Fields stay public (aggregate-style reads everywhere in the
// executors); the fluent setters exist so configs compose in one
// expression. The legacy structs survive only as [[deprecated]] shims
// that convert to ExecConfig — see docs/api.md for the migration map.

#include <optional>
#include <string>
#include <vector>

#include "gpusim/device_group.hpp"
#include "obs/metrics.hpp"
#include "tensor/mttkrp_par.hpp"

namespace scalfrag {

struct ExecConfig {
  // --- backend ---------------------------------------------------------
  /// Execution backend, resolved by name in the BackendRegistry
  /// (src/scalfrag/backend_registry.hpp). "coo" is the classic tiled
  /// pipeline; "csf_tiled" (alias of "csf_tiled_sync"),
  /// "csf_tiled_coop", "csf_tiled_serial" run the CSF tiled engine;
  /// "coo_host" is the host engine alone; "coo_stream" is the
  /// out-of-core pipeline bounded by memory_budget_bytes; "auto" asks
  /// the joint format×launch selector. validate() rejects unknown names
  /// with a typed UnknownBackendError.
  std::string backend_name = "coo";
  // --- device group (multi-device sharding) ---------------------------
  /// Simulated devices to shard segments across. 1 = the classic
  /// single-device pipeline; N > 1 runs the MultiPipelineExecutor.
  int num_devices = 1;
  /// Partial-output reduction schedule across devices; nullopt picks
  /// the cheaper of tree/ring for the output size at run time.
  std::optional<gpusim::ReduceSchedule> reduce_schedule;
  /// Peer link the reduction cost model uses.
  gpusim::LinkSpec link = gpusim::LinkSpec::pcie4_p2p();
  /// Cost-weighted uneven sharding for heterogeneous groups: shard cuts
  /// target equal *predicted time* per device instead of equal nnz.
  /// Uniform groups are unaffected — the planner detects equal weights
  /// and takes the exact nnz-balanced integer path.
  bool weighted_sharding = true;
  /// Overlap the chunked cross-device reduction with the compute tail:
  /// each boundary row-block starts its peer exchange as soon as both
  /// neighbouring shards have finished, instead of waiting for the
  /// global barrier. Off reproduces the barrier accounting
  /// (total_ns == compute_ns + reduce_ns) exactly.
  bool overlap_reduction = true;
  /// Segment-granularity work stealing: a device that drains its shard
  /// takes whole segments from the tail of the most-loaded predicted
  /// timeline. Deterministic (decisions are serialized in simulated-
  /// time order) and bit-identical to the non-stealing run.
  bool work_stealing = true;

  // --- segmentation / pipeline ----------------------------------------
  /// 0 = auto: pick a segment count so each segment's copy is large
  /// enough to amortize PCIe latency (the paper "empirically determines
  /// the appropriate number of segments"); small tensors then run
  /// unsegmented. Explicit values (e.g. the Fig. 11 sweep) are honored
  /// as-is. Under multi-device execution the count applies per device.
  int num_segments = 0;
  int num_streams = 4;
  bool use_shared_mem = true;
  bool adaptive_launch = true;
  /// Force a specific launch config (overrides adaptive/static choice).
  std::optional<gpusim::LaunchConfig> launch_override;
  /// Precomputed per-segment launches (from MttkrpPlan); entry i is
  /// used for *realized* segment i and takes precedence over everything
  /// above. A schedule shorter than the realized plan is a prefix
  /// override; a schedule *longer* than the realized plan is rejected —
  /// size schedules from the realized plan, not from num_segments.
  std::vector<gpusim::LaunchConfig> launch_schedule;

  // --- CPU–GPU hybrid --------------------------------------------------
  /// Slice-nnz threshold below which work routes to the CPU (0 = off).
  /// Single-device only; the multi-device executor rejects it.
  nnz_t hybrid_cpu_threshold = 0;
  gpusim::CpuSpec cpu_spec = gpusim::CpuSpec::i7_11700k();

  // --- host execution engine ------------------------------------------
  /// Engine knobs for every functional kernel body a driver runs
  /// (segment kernels, hybrid CPU share, reference backends).
  HostExecParams host_exec;
  /// CSF tile budget (fibers per tile) for the csf_tiled backends;
  /// 0 = CsfTiling::auto_budget.
  nnz_t csf_fiber_budget = 0;

  // --- out-of-core streaming ------------------------------------------
  /// Peak host residency target (bytes) for the out-of-core
  /// "coo_stream" backend: ingest windows, sort scratch, and execution
  /// chunks are all sized from it (docs/outofcore.md has the split).
  /// 0 = the 64 MiB default (scalfrag::kDefaultMemoryBudget). In-core
  /// backends ignore it.
  std::size_t memory_budget_bytes = 0;

  // --- decomposition drivers ------------------------------------------
  /// CP rank / per-call MTTKRP rank for the decomposition drivers
  /// (cpd_als; also what JobSpec carries for MTTKRP service jobs).
  index_t decomp_rank = 16;
  /// ALS/HOOI iteration cap. 0 = the driver's default (CPD 10,
  /// Tucker 15) so one config can drive either decomposition.
  int decomp_max_iters = 0;
  /// Fit-improvement stopping tolerance. Negative = driver default
  /// (CPD 1e-4, Tucker 1e-5); 0 is meaningful — it disables the early
  /// stop so every iteration runs.
  double decomp_tol = -1.0;
  /// Factor-initialization seed. 0 = driver default (CPD 5, Tucker 7 —
  /// the legacy option-struct defaults, so converted shims reproduce
  /// legacy runs bit-for-bit).
  std::uint64_t decomp_seed = 0;
  /// Projected ALS: clamp CPD factors to the non-negative orthant.
  bool cpd_nonnegative = false;
  /// Tucker core size per mode (rₙ). Required by tucker_hooi; ignored
  /// by every other driver.
  std::vector<index_t> tucker_core_dims;

  // --- observability ---------------------------------------------------
  /// Optional sink: executors record phase spans, plan counters, and
  /// device-timeline breakdowns here. LIFETIME: the registry must
  /// outlive every run launched with this config — including replays
  /// through an MttkrpPlan, which copies the config (and this pointer)
  /// by value at plan-build time.
  obs::MetricsRegistry* metrics_sink = nullptr;

  // --- fluent builders -------------------------------------------------
  ExecConfig& backend(std::string name) {
    backend_name = std::move(name);
    return *this;
  }
  /// Fibers per CSF tile for the csf_tiled backends; 0 = auto (about
  /// four tiles per worker). Ignored by the COO backends.
  ExecConfig& csf_budget(nnz_t fibers) {
    csf_fiber_budget = fibers;
    return *this;
  }
  /// Host residency budget for "coo_stream"; 0 = the 64 MiB default.
  ExecConfig& memory_budget(std::size_t bytes) {
    memory_budget_bytes = bytes;
    return *this;
  }
  ExecConfig& devices(int n) { num_devices = n; return *this; }
  ExecConfig& reduction(gpusim::ReduceSchedule s) {
    reduce_schedule = s;
    return *this;
  }
  ExecConfig& peer_link(gpusim::LinkSpec l) {
    link = std::move(l);
    return *this;
  }
  ExecConfig& weighted_shards(bool on) {
    weighted_sharding = on;
    return *this;
  }
  ExecConfig& overlap_reduce(bool on) {
    overlap_reduction = on;
    return *this;
  }
  ExecConfig& steal(bool on) {
    work_stealing = on;
    return *this;
  }
  ExecConfig& segments(int n) { num_segments = n; return *this; }
  ExecConfig& segments_auto() { num_segments = 0; return *this; }
  ExecConfig& streams(int n) { num_streams = n; return *this; }
  ExecConfig& shared_mem(bool on) { use_shared_mem = on; return *this; }
  ExecConfig& adaptive(bool on) { adaptive_launch = on; return *this; }
  ExecConfig& launch(const gpusim::LaunchConfig& c) {
    launch_override = c;
    return *this;
  }
  ExecConfig& schedule(std::vector<gpusim::LaunchConfig> s) {
    launch_schedule = std::move(s);
    return *this;
  }
  ExecConfig& hybrid_threshold(nnz_t t) {
    hybrid_cpu_threshold = t;
    return *this;
  }
  ExecConfig& cpu(gpusim::CpuSpec s) {
    cpu_spec = std::move(s);
    return *this;
  }
  ExecConfig& threads(std::size_t n) {
    host_exec.threads = n;
    return *this;
  }
  ExecConfig& grain(nnz_t g) {
    host_exec.grain_nnz = g;
    return *this;
  }
  ExecConfig& strategy(HostStrategy s) {
    host_exec.strategy = s;
    return *this;
  }
  /// Force the host SIMD kernel ISA (default Auto = best supported,
  /// honoring $SCALFRAG_HOST_ISA). All ISAs are bit-identical; this
  /// knob exists for perf experiments and the dispatch self-test.
  ExecConfig& host_isa_override(HostIsa i) {
    host_exec.isa = i;
    return *this;
  }
  /// Pin host workers to cores (and thereby fix NUMA first-touch of
  /// the PrivateReduce scratch). None leaves affinity untouched.
  ExecConfig& host_pinning(PinPolicy p) {
    host_exec.pinning = p;
    return *this;
  }
  ExecConfig& metrics(obs::MetricsRegistry* reg) {
    metrics_sink = reg;
    return *this;
  }
  ExecConfig& rank(index_t r) { decomp_rank = r; return *this; }
  ExecConfig& max_iters(int n) { decomp_max_iters = n; return *this; }
  ExecConfig& tol(double t) { decomp_tol = t; return *this; }
  ExecConfig& seed(std::uint64_t s) { decomp_seed = s; return *this; }
  ExecConfig& nonneg(bool on = true) { cpd_nonnegative = on; return *this; }
  ExecConfig& core_dims(std::vector<index_t> dims) {
    tucker_core_dims = std::move(dims);
    return *this;
  }

  /// Throws scalfrag::Error on inconsistent settings (non-positive
  /// streams/devices, negative segment count, hybrid under multi-device).
  void validate() const;

  /// The engine block a driver should hand to kernel bodies: host_exec
  /// with its metrics pointer defaulted to metrics_sink when unset.
  HostExecParams host_for_run() const {
    HostExecParams h = host_exec;
    if (metrics_sink != nullptr && h.metrics == nullptr) {
      h.metrics = metrics_sink;
    }
    return h;
  }
};

}  // namespace scalfrag
