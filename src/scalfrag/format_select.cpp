#include "scalfrag/format_select.hpp"

#include <cmath>
#include <fstream>

#include "common/timer.hpp"
#include "scalfrag/autotune.hpp"
#include "scalfrag/exec_config.hpp"
#include "tensor/csf.hpp"
#include "tensor/fcoo.hpp"
#include "tensor/generator.hpp"
#include "tensor/hicoo.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {

const char* sparse_format_name(SparseFormat f) {
  switch (f) {
    case SparseFormat::Coo:
      return "COO";
    case SparseFormat::Csf:
      return "CSF";
    case SparseFormat::HiCoo:
      return "HiCOO";
    case SparseFormat::FCoo:
      return "F-COO";
  }
  return "?";
}

namespace {

FactorList make_factors(const CooTensor& t, index_t rank,
                        std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

}  // namespace

FormatTiming measure_formats(const CooTensor& t, order_t mode, index_t rank,
                             int reps) {
  SF_CHECK(reps > 0, "need at least one repetition");
  CooTensor sorted = t;
  if (!sorted.is_sorted_by_mode(mode)) sorted.sort_by_mode(mode);
  const FactorList factors = make_factors(sorted, rank, 17);
  DenseMatrix out(sorted.dim(mode), rank);

  const CsfTensor csf = CsfTensor::build(sorted, mode);
  const HicooTensor hicoo = HicooTensor::build(sorted);
  const FcooTensor fcoo = FcooTensor::build(sorted, mode);

  FormatTiming res;
  auto time_min = [&](auto&& fn) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      WallTimer timer;
      fn();
      best = std::min(best, timer.millis());
    }
    return best;
  };

  res.ms[static_cast<std::size_t>(SparseFormat::Coo)] =
      time_min([&] { mttkrp_coo_ref(sorted, factors, mode, out); });
  res.ms[static_cast<std::size_t>(SparseFormat::Csf)] =
      time_min([&] { mttkrp_csf(csf, factors, out); });
  res.ms[static_cast<std::size_t>(SparseFormat::HiCoo)] =
      time_min([&] { hicoo.mttkrp(factors, mode, out); });
  res.ms[static_cast<std::size_t>(SparseFormat::FCoo)] =
      time_min([&] { fcoo.mttkrp(factors, out); });

  for (SparseFormat f : kAllFormats) {
    if (res.ms[static_cast<std::size_t>(f)] < res.best_ms()) res.best = f;
  }
  return res;
}

double FormatSelector::train() {
  WallTimer total;
  Rng rng(cfg_.seed);
  std::array<ml::Dataset, 4> data;

  for (int i = 0; i < cfg_.corpus_size; ++i) {
    GeneratorConfig g;
    const int order = rng.next_below(2) == 0 ? 3 : 4;
    for (int m = 0; m < order; ++m) {
      g.dims.push_back(
          static_cast<index_t>(std::pow(2.0, rng.uniform(5.0, 14.0))));
      g.skew.push_back(rng.uniform(1.0, 3.0));
    }
    g.nnz = static_cast<nnz_t>(std::pow(2.0, rng.uniform(11.0, 15.0)));
    g.seed = rng.next_u64();
    const CooTensor t = generate_coo(g);

    const TensorFeatures feat = TensorFeatures::extract(t, 0);
    const auto x = feat.to_vector();
    const FormatTiming timing = measure_formats(t, 0, cfg_.rank, cfg_.reps);
    for (SparseFormat f : kAllFormats) {
      const double ms = timing.ms[static_cast<std::size_t>(f)];
      data[static_cast<std::size_t>(f)].add(
          std::span<const double>(x.data(), x.size()),
          std::log2(std::max(ms, 1e-6)));
    }
  }

  for (std::size_t k = 0; k < models_.size(); ++k) {
    ml::DTreeConfig tc;
    tc.max_depth = 8;
    tc.min_samples_leaf = 2;
    tc.seed = cfg_.seed + k;
    models_[k] = std::make_unique<ml::DecisionTreeRegressor>(tc);
    models_[k]->fit(data[k]);
  }
  return total.seconds();
}

double FormatSelector::predict_ms(const TensorFeatures& feat,
                                  SparseFormat f) const {
  SF_CHECK(trained(), "predict before train()");
  const auto x = feat.to_vector();
  return std::exp2(models_[static_cast<std::size_t>(f)]->predict(
      std::span<const double>(x.data(), x.size())));
}

SparseFormat FormatSelector::predict(const TensorFeatures& feat) const {
  SparseFormat best = SparseFormat::Coo;
  double best_ms = 1e300;
  for (SparseFormat f : kAllFormats) {
    const double ms = predict_ms(feat, f);
    if (ms < best_ms) {
      best_ms = ms;
      best = f;
    }
  }
  return best;
}

namespace {
constexpr const char* kFormatModelMagic = "scalfrag-format-selector v1";
}

void FormatSelector::save(const std::string& path) const {
  SF_CHECK(trained(), "save before train()");
  std::ofstream out(path);
  SF_CHECK(out.good(), "cannot open model file for writing: " + path);
  out << kFormatModelMagic << "\n";
  for (const auto& m : models_) m->save(out);
  SF_CHECK(out.good(), "short write to model file: " + path);
}

FormatSelector FormatSelector::load(const std::string& path) {
  std::ifstream in(path);
  SF_CHECK(in.good(), "cannot open model file: " + path);
  std::string magic;
  std::getline(in, magic);
  SF_CHECK(magic == kFormatModelMagic,
           "not a format-selector model file: " + path);
  FormatSelector sel;
  for (auto& m : sel.models_) {
    m = std::make_unique<ml::DecisionTreeRegressor>(
        ml::DecisionTreeRegressor::load(in));
  }
  return sel;
}

// --- joint (format, launch) selection ---------------------------------

JointChoice heuristic_joint_choice(const TensorFeatures& feat, index_t rank) {
  (void)rank;  // the heuristic is rank-free; the models are not
  JointChoice c;
  // CSF pays off when fibers amortize index reads: each level-(order-2)
  // fiber's factor row is touched once per fiber instead of once per
  // nnz. Below ~2 nnz per fiber the tree walk is pure overhead, and a
  // 2-order tensor has no interior fiber level to amortize.
  if (feat.order >= 3 && feat.avg_nnz_per_fiber >= 2.0) {
    c.format = SparseFormat::Csf;
    // Heavy slice skew starves the sync schedule's owner tiles; coop
    // splits every slice's fibers across all workers.
    c.variant = feat.cv_nnz_per_slice > 1.5 ? CsfTiledVariant::Coop
                                            : CsfTiledVariant::Sync;
    c.backend = c.variant == CsfTiledVariant::Coop ? "csf_tiled_coop"
                                                   : "csf_tiled_sync";
  }
  return c;
}

JointSelector::JointSelector(const FormatSelector* formats,
                             const LaunchSelector* launch)
    : formats_(formats), launch_(launch) {}

JointSelector JointSelector::from_model_file(const std::string& path,
                                             const LaunchSelector* launch) {
  JointSelector sel;
  sel.launch_ = launch;
  try {
    auto owned = std::make_shared<FormatSelector>(FormatSelector::load(path));
    sel.formats_ = owned.get();
    sel.owned_ = std::move(owned);
  } catch (const Error&) {
    // Missing/corrupt model file: degrade to the heuristic. Cold starts
    // (no offline training yet) must not take the service down.
  }
  return sel;
}

bool JointSelector::model_backed() const noexcept {
  return formats_ != nullptr && formats_->trained();
}

JointChoice JointSelector::choose(const TensorFeatures& feat,
                                  index_t rank) const {
  JointChoice c = heuristic_joint_choice(feat, rank);
  if (model_backed()) {
    const double coo_ms = formats_->predict_ms(feat, SparseFormat::Coo);
    const double csf_ms = formats_->predict_ms(feat, SparseFormat::Csf);
    c.from_model = true;
    if (csf_ms < coo_ms && feat.order >= 2) {
      c.format = SparseFormat::Csf;
      c.predicted_ms = csf_ms;
      // The model ranks formats; the schedule within CSF stays the
      // skew heuristic (both schedules share the format's cost row).
      c.variant = feat.cv_nnz_per_slice > 1.5 ? CsfTiledVariant::Coop
                                              : CsfTiledVariant::Sync;
      c.backend = c.variant == CsfTiledVariant::Coop ? "csf_tiled_coop"
                                                     : "csf_tiled_sync";
    } else {
      c.format = SparseFormat::Coo;
      c.backend = "coo";
      c.predicted_ms = coo_ms;
    }
  }
  if (launch_ != nullptr && c.format == SparseFormat::Coo) {
    c.launch = launch_->select(feat).config;
    c.has_launch = true;
  }
  return c;
}

void apply_joint_choice(ExecConfig& cfg, const JointChoice& choice) {
  cfg.backend_name = choice.backend;
  if (choice.has_launch && !cfg.launch_override.has_value()) {
    cfg.launch_override = choice.launch;
  }
}

}  // namespace scalfrag
