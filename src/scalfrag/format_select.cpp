#include "scalfrag/format_select.hpp"

#include <cmath>

#include "common/timer.hpp"
#include "tensor/csf.hpp"
#include "tensor/fcoo.hpp"
#include "tensor/generator.hpp"
#include "tensor/hicoo.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {

const char* sparse_format_name(SparseFormat f) {
  switch (f) {
    case SparseFormat::Coo:
      return "COO";
    case SparseFormat::Csf:
      return "CSF";
    case SparseFormat::HiCoo:
      return "HiCOO";
    case SparseFormat::FCoo:
      return "F-COO";
  }
  return "?";
}

namespace {

FactorList make_factors(const CooTensor& t, index_t rank,
                        std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

}  // namespace

FormatTiming measure_formats(const CooTensor& t, order_t mode, index_t rank,
                             int reps) {
  SF_CHECK(reps > 0, "need at least one repetition");
  CooTensor sorted = t;
  if (!sorted.is_sorted_by_mode(mode)) sorted.sort_by_mode(mode);
  const FactorList factors = make_factors(sorted, rank, 17);
  DenseMatrix out(sorted.dim(mode), rank);

  const CsfTensor csf = CsfTensor::build(sorted, mode);
  const HicooTensor hicoo = HicooTensor::build(sorted);
  const FcooTensor fcoo = FcooTensor::build(sorted, mode);

  FormatTiming res;
  auto time_min = [&](auto&& fn) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      WallTimer timer;
      fn();
      best = std::min(best, timer.millis());
    }
    return best;
  };

  res.ms[static_cast<std::size_t>(SparseFormat::Coo)] =
      time_min([&] { mttkrp_coo_ref(sorted, factors, mode, out); });
  res.ms[static_cast<std::size_t>(SparseFormat::Csf)] =
      time_min([&] { mttkrp_csf(csf, factors, out); });
  res.ms[static_cast<std::size_t>(SparseFormat::HiCoo)] =
      time_min([&] { hicoo.mttkrp(factors, mode, out); });
  res.ms[static_cast<std::size_t>(SparseFormat::FCoo)] =
      time_min([&] { fcoo.mttkrp(factors, out); });

  for (SparseFormat f : kAllFormats) {
    if (res.ms[static_cast<std::size_t>(f)] < res.best_ms()) res.best = f;
  }
  return res;
}

double FormatSelector::train() {
  WallTimer total;
  Rng rng(cfg_.seed);
  std::array<ml::Dataset, 4> data;

  for (int i = 0; i < cfg_.corpus_size; ++i) {
    GeneratorConfig g;
    const int order = rng.next_below(2) == 0 ? 3 : 4;
    for (int m = 0; m < order; ++m) {
      g.dims.push_back(
          static_cast<index_t>(std::pow(2.0, rng.uniform(5.0, 14.0))));
      g.skew.push_back(rng.uniform(1.0, 3.0));
    }
    g.nnz = static_cast<nnz_t>(std::pow(2.0, rng.uniform(11.0, 15.0)));
    g.seed = rng.next_u64();
    const CooTensor t = generate_coo(g);

    const TensorFeatures feat = TensorFeatures::extract(t, 0);
    const auto x = feat.to_vector();
    const FormatTiming timing = measure_formats(t, 0, cfg_.rank, cfg_.reps);
    for (SparseFormat f : kAllFormats) {
      const double ms = timing.ms[static_cast<std::size_t>(f)];
      data[static_cast<std::size_t>(f)].add(
          std::span<const double>(x.data(), x.size()),
          std::log2(std::max(ms, 1e-6)));
    }
  }

  for (std::size_t k = 0; k < models_.size(); ++k) {
    ml::DTreeConfig tc;
    tc.max_depth = 8;
    tc.min_samples_leaf = 2;
    tc.seed = cfg_.seed + k;
    models_[k] = std::make_unique<ml::DecisionTreeRegressor>(tc);
    models_[k]->fit(data[k]);
  }
  return total.seconds();
}

double FormatSelector::predict_ms(const TensorFeatures& feat,
                                  SparseFormat f) const {
  SF_CHECK(trained(), "predict before train()");
  const auto x = feat.to_vector();
  return std::exp2(models_[static_cast<std::size_t>(f)]->predict(
      std::span<const double>(x.data(), x.size())));
}

SparseFormat FormatSelector::predict(const TensorFeatures& feat) const {
  SparseFormat best = SparseFormat::Coo;
  double best_ms = 1e300;
  for (SparseFormat f : kAllFormats) {
    const double ms = predict_ms(feat, f);
    if (ms < best_ms) {
      best_ms = ms;
      best = f;
    }
  }
  return best;
}

}  // namespace scalfrag
