#pragma once
// Input-aware sparse-format selection for MTTKRP, after SpTFS (Sun et
// al., IEEE TC 2022 — the paper's §VI-A: "adopts supervised ... methods
// to predict the best of COO, HiCOO, and CSF formats to compute MTTKRP
// for a given sparse tensor").
//
// ScalFrag's adaptive-launch machinery generalizes directly: the same
// sparsity features feed one regressor per candidate format, each
// predicting the log of that format's (host-measured) MTTKRP time;
// prediction is the arg-min. This module measures real host kernels —
// it is the one place the repository uses wall time rather than the
// GPU cost model, because format choice is a property of the data
// structure, not of the simulated device.

#include <array>
#include <memory>
#include <string>

#include "gpusim/launch.hpp"
#include "ml/dtree.hpp"
#include "tensor/csf_tiled.hpp"
#include "tensor/features.hpp"

namespace scalfrag {

class LaunchSelector;

enum class SparseFormat : std::uint8_t { Coo, Csf, HiCoo, FCoo };
inline constexpr std::array<SparseFormat, 4> kAllFormats = {
    SparseFormat::Coo, SparseFormat::Csf, SparseFormat::HiCoo,
    SparseFormat::FCoo};

const char* sparse_format_name(SparseFormat f);

/// Host MTTKRP milliseconds per format for one tensor (min over `reps`
/// repetitions), plus the measured winner.
struct FormatTiming {
  std::array<double, 4> ms{};  // indexed by SparseFormat
  SparseFormat best = SparseFormat::Coo;

  double best_ms() const { return ms[static_cast<std::size_t>(best)]; }
};

FormatTiming measure_formats(const CooTensor& t, order_t mode, index_t rank,
                             int reps = 3);

struct FormatSelectorConfig {
  index_t rank = 16;
  int corpus_size = 24;
  std::uint64_t seed = 4242;
  int reps = 3;
};

class FormatSelector {
 public:
  explicit FormatSelector(FormatSelectorConfig cfg = {}) : cfg_(cfg) {}

  /// Generate the corpus, measure every format on every tensor, and
  /// fit one log-time regressor per format. Returns the wall seconds
  /// spent (dominated by the measurements, not the fitting).
  double train();

  bool trained() const noexcept { return models_[0] != nullptr; }

  /// Predicted-fastest format for a tensor with the given features.
  SparseFormat predict(const TensorFeatures& feat) const;

  /// Predicted host milliseconds for one (features, format) pair.
  double predict_ms(const TensorFeatures& feat, SparseFormat f) const;

  /// Persist / restore the four per-format trees (one file, versioned
  /// header). save() requires trained(); load() throws scalfrag::Error
  /// on a missing or malformed file — JointSelector::from_model_file
  /// wraps that in a heuristic fallback.
  void save(const std::string& path) const;
  static FormatSelector load(const std::string& path);

 private:
  FormatSelectorConfig cfg_;
  std::array<std::unique_ptr<ml::DecisionTreeRegressor>, 4> models_;
};

// --- joint (format, launch) selection ---------------------------------
//
// The ScalFrag launch model and the SpTFS-style format model consume
// the same TensorFeatures; the joint selector asks both at once so
// drivers get one (backend, launch) decision instead of bolting format
// choice onto a launch that was tuned for a different data structure.

/// One joint decision. `backend` is a BackendRegistry name, directly
/// usable as ExecConfig::backend(...).
struct JointChoice {
  SparseFormat format = SparseFormat::Coo;
  std::string backend = "coo";
  /// CSF path: the tiled schedule to run.
  CsfTiledVariant variant = CsfTiledVariant::Sync;
  /// COO path: the predicted launch (meaningful when has_launch).
  gpusim::LaunchConfig launch{};
  bool has_launch = false;
  /// Model-predicted host ms of the chosen format (0 under heuristic).
  double predicted_ms = 0.0;
  /// True when a trained format model made the call (vs the heuristic).
  bool from_model = false;
};

/// Deterministic model-free fallback: CSF-tiled when fibers amortize
/// index reads (order >= 3 and >= 2 nnz per fiber on average), coop for
/// slice-skewed tensors, COO otherwise.
JointChoice heuristic_joint_choice(const TensorFeatures& feat, index_t rank);

struct ExecConfig;

/// Imprint a (possibly cached) joint decision onto a config: backend
/// name always, predicted launch as launch_override when the choice
/// carries one and the caller hasn't forced a launch already. This is
/// the replay half of joint selection — the service's plan cache stores
/// the JointChoice once and re-applies it per job, skipping inference.
void apply_joint_choice(ExecConfig& cfg, const JointChoice& choice);

/// Joint (format, launch) predictor over non-owning model pointers.
/// Deterministic for fixed features: both underlying models are frozen
/// trees. Only the two first-class execution backends (COO pipeline,
/// CSF tiled) are candidates — HiCOO/F-COO have reference kernels but
/// no tiled engine, so predicting them would leave nothing to run.
class JointSelector {
 public:
  /// Pure heuristic (no models).
  JointSelector() = default;
  /// Use a trained format model and, optionally, the launch model.
  /// Pointers are non-owning and must outlive the selector.
  JointSelector(const FormatSelector* formats, const LaunchSelector* launch);

  /// Load the format model from `path`. A missing or unreadable file
  /// degrades to the heuristic selector — it never throws for absence
  /// (the documented cold-start behavior).
  static JointSelector from_model_file(const std::string& path,
                                       const LaunchSelector* launch = nullptr);

  /// True when choose() consults a trained format model.
  bool model_backed() const noexcept;

  JointChoice choose(const TensorFeatures& feat, index_t rank) const;

 private:
  const FormatSelector* formats_ = nullptr;
  std::shared_ptr<const FormatSelector> owned_;  // from_model_file storage
  const LaunchSelector* launch_ = nullptr;
};

}  // namespace scalfrag
