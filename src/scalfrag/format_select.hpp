#pragma once
// Input-aware sparse-format selection for MTTKRP, after SpTFS (Sun et
// al., IEEE TC 2022 — the paper's §VI-A: "adopts supervised ... methods
// to predict the best of COO, HiCOO, and CSF formats to compute MTTKRP
// for a given sparse tensor").
//
// ScalFrag's adaptive-launch machinery generalizes directly: the same
// sparsity features feed one regressor per candidate format, each
// predicting the log of that format's (host-measured) MTTKRP time;
// prediction is the arg-min. This module measures real host kernels —
// it is the one place the repository uses wall time rather than the
// GPU cost model, because format choice is a property of the data
// structure, not of the simulated device.

#include <array>
#include <memory>

#include "ml/dtree.hpp"
#include "tensor/features.hpp"

namespace scalfrag {

enum class SparseFormat : std::uint8_t { Coo, Csf, HiCoo, FCoo };
inline constexpr std::array<SparseFormat, 4> kAllFormats = {
    SparseFormat::Coo, SparseFormat::Csf, SparseFormat::HiCoo,
    SparseFormat::FCoo};

const char* sparse_format_name(SparseFormat f);

/// Host MTTKRP milliseconds per format for one tensor (min over `reps`
/// repetitions), plus the measured winner.
struct FormatTiming {
  std::array<double, 4> ms{};  // indexed by SparseFormat
  SparseFormat best = SparseFormat::Coo;

  double best_ms() const { return ms[static_cast<std::size_t>(best)]; }
};

FormatTiming measure_formats(const CooTensor& t, order_t mode, index_t rank,
                             int reps = 3);

struct FormatSelectorConfig {
  index_t rank = 16;
  int corpus_size = 24;
  std::uint64_t seed = 4242;
  int reps = 3;
};

class FormatSelector {
 public:
  explicit FormatSelector(FormatSelectorConfig cfg = {}) : cfg_(cfg) {}

  /// Generate the corpus, measure every format on every tensor, and
  /// fit one log-time regressor per format. Returns the wall seconds
  /// spent (dominated by the measurements, not the fitting).
  double train();

  bool trained() const noexcept { return models_[0] != nullptr; }

  /// Predicted-fastest format for a tensor with the given features.
  SparseFormat predict(const TensorFeatures& feat) const;

  /// Predicted host milliseconds for one (features, format) pair.
  double predict_ms(const TensorFeatures& feat, SparseFormat f) const;

 private:
  FormatSelectorConfig cfg_;
  std::array<std::unique_ptr<ml::DecisionTreeRegressor>, 4> models_;
};

}  // namespace scalfrag
