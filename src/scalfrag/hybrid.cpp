#include "scalfrag/hybrid.hpp"

#include <algorithm>
#include <limits>

#include "common/thread_pool.hpp"

namespace scalfrag {

CooSpan HybridPartition::gpu_view(const CooSpan& parent) const {
  if (gpu_whole) return parent;
  CooSpan v = parent.gather(gpu_perm.data(), gpu_perm.size());
  // The complement of whole-slice CPU ranges is a subsequence of the
  // mode-sorted parent, so the gathered order is still mode-sorted.
  v.assume_sorted_by(mode);
  return v;
}

HybridPartition partition_for_hybrid(const CooSpan& t, order_t mode,
                                     nnz_t slice_nnz_threshold) {
  SF_CHECK(t.is_sorted_by_mode(mode), "hybrid partition needs sorted input");
  HybridPartition part;
  part.mode = mode;
  part.threshold = slice_nnz_threshold;

  if (slice_nnz_threshold == 0 || t.nnz() == 0) {
    part.gpu_whole = true;
    part.gpu_nnz = t.nnz();
    // Count slices for the report even in the trivial case.
    for (nnz_t e = 0; e < t.nnz(); ++e) {
      if (e == 0 || t.index(mode, e) != t.index(mode, e - 1)) {
        ++part.gpu_slices;
      }
    }
    return part;
  }

  // Pass 1: classify slices, collecting the CPU share as merged ranges.
  nnz_t slice_begin = 0;
  auto flush_slice = [&](nnz_t slice_end) {
    const nnz_t len = slice_end - slice_begin;
    if (len < slice_nnz_threshold) {
      ++part.cpu_slices;
      part.cpu_nnz += len;
      if (!part.cpu_ranges.empty() &&
          part.cpu_ranges.back().second == slice_begin) {
        part.cpu_ranges.back().second = slice_end;  // extend the run
      } else {
        part.cpu_ranges.emplace_back(slice_begin, slice_end);
      }
    } else {
      ++part.gpu_slices;
    }
    slice_begin = slice_end;
  };
  for (nnz_t e = 1; e < t.nnz(); ++e) {
    if (t.index(mode, e) != t.index(mode, e - 1)) flush_slice(e);
  }
  flush_slice(t.nnz());

  if (part.cpu_ranges.empty()) {
    part.gpu_whole = true;  // nothing routed to the CPU
    part.gpu_nnz = t.nnz();
    return part;
  }

  // Pass 2: the GPU share (the complement of the CPU ranges) as a
  // gather permutation over the parent's base arrays — zero copies.
  // Offsets are precomposed through the parent's own permutation so
  // gpu_view() can gather the bases directly.
  SF_CHECK(t.physical(t.nnz() - 1) <= std::numeric_limits<perm_t>::max(),
           "hybrid gather view cannot address entries beyond perm_t");
  part.gpu_nnz = t.nnz() - part.cpu_nnz;
  part.gpu_perm.reserve(part.gpu_nnz);
  std::size_t r = 0;
  for (nnz_t e = 0; e < t.nnz(); ++e) {
    while (r < part.cpu_ranges.size() && e >= part.cpu_ranges[r].second) ++r;
    if (r < part.cpu_ranges.size() && e >= part.cpu_ranges[r].first) continue;
    part.gpu_perm.push_back(static_cast<perm_t>(t.physical(e)));
  }
  return part;
}

sim_ns cpu_mttkrp_ns(const gpusim::CpuSpec& cpu, nnz_t nnz, order_t order,
                     index_t rank) {
  if (nnz == 0) return 0;
  const auto ord = static_cast<std::uint64_t>(order);
  const std::uint64_t flops =
      nnz * 2ull * rank * (ord > 1 ? ord - 1 : 1);
  // Traffic: COO stream + factor gathers (caches help less on short
  // slices — charge them fully) + output rows.
  const std::uint64_t bytes =
      nnz * (ord * sizeof(index_t) + sizeof(value_t)) +
      nnz * (ord - 1) * rank * sizeof(value_t) +
      nnz * rank * sizeof(value_t);
  // Sparse gather code sustains a fraction of peak on both rooflines.
  const double eff_flops = cpu.peak_gflops() * 0.25;
  const double eff_bw = cpu.mem_bandwidth_gbps * 0.6;
  const double ns = std::max(static_cast<double>(flops) / eff_flops,
                             static_cast<double>(bytes) / eff_bw);
  return static_cast<sim_ns>(ns);
}

sim_ns cpu_mttkrp_ns(const gpusim::CpuSpec& cpu, const CooTensor& part,
                     index_t rank) {
  return cpu_mttkrp_ns(cpu, part.nnz(), part.order(), rank);
}

nnz_t auto_hybrid_threshold(const CooSpan& t, order_t mode, index_t rank,
                            const gpusim::CpuSpec& cpu, sim_ns budget_ns) {
  SF_CHECK(t.is_sorted_by_mode(mode), "auto threshold needs sorted input");
  if (t.nnz() == 0 || budget_ns == 0) return 0;

  // Slice-length census (one pass, mode-sorted).
  std::vector<nnz_t> lens;
  nnz_t len = 0;
  for (nnz_t e = 0; e < t.nnz(); ++e) {
    if (e > 0 && t.index(mode, e) != t.index(mode, e - 1)) {
      lens.push_back(len);
      len = 0;
    }
    ++len;
  }
  lens.push_back(len);
  std::sort(lens.begin(), lens.end());

  // Walk the sorted census directly: every distinct slice length is a
  // candidate cut, and the CPU share of threshold L+1 is the census
  // prefix of lengths <= L. This finds the exact largest affordable
  // threshold — power-of-two probing skipped affordable optima between
  // probes (e.g. lengths 9 and 13 inside one [8,16) window), and its
  // doubling `thr *= 2` loop overflowed/spun when the longest slice sat
  // near the nnz_t max. Prefix sums are monotone, so the first
  // unaffordable cut ends the walk.
  nnz_t best = 0;
  nnz_t cpu_share = 0;
  std::size_t i = 0;
  while (i < lens.size()) {
    const nnz_t cut = lens[i];
    nnz_t share = cpu_share;
    while (i < lens.size() && lens[i] == cut) share += lens[i++];
    if (cpu_mttkrp_ns(cpu, share, t.order(), rank) > budget_ns) break;
    cpu_share = share;
    // Threshold cut+1 routes every slice of length <= cut to the CPU;
    // saturate instead of wrapping at the nnz_t max.
    best = cut == std::numeric_limits<nnz_t>::max() ? cut : cut + 1;
  }
  return best;
}

void cpu_mttkrp_exec(const CooSpan& parent,
                     std::span<const std::pair<nnz_t, nnz_t>> ranges,
                     const FactorList& factors, order_t mode,
                     DenseMatrix& out, const HostExecParams& opt) {
  if (ranges.empty()) return;
  if (opt.metrics != nullptr) {
    opt.metrics->count("hybrid/cpu_range_batches");
    opt.metrics->count("hybrid/cpu_ranges", ranges.size());
  }
  if (ranges.size() == 1) {
    // One range — a contiguous slice-grouped span; the engine's
    // slice-owner strategy applies directly.
    const CooSpan part = parent.subspan(ranges[0].first, ranges[0].second);
    if (part.nnz() == 0) return;
    mttkrp_coo_par(part, factors, mode, out, /*accumulate=*/true, opt);
    return;
  }
  // Ranges hold whole slices, so they own disjoint output rows: run
  // them concurrently, each serial inside (CPU slices are short — the
  // parallelism worth having is across ranges).
  HostExecParams serial = opt;
  serial.strategy = HostStrategy::Serial;
  ThreadPool::global().parallel_for(
      0, ranges.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          mttkrp_coo_par(parent.subspan(ranges[r].first, ranges[r].second),
                         factors, mode, out, /*accumulate=*/true, serial);
        }
      });
}

}  // namespace scalfrag
