#pragma once
// CPU–GPU heterogeneous hybrid execution (paper contribution #4: "we
// put the parts with low parallelism to the CPU for execution").
//
// Slices with very few non-zeros expose almost no thread-level
// parallelism on a GPU (a warp gathers one row and idles) yet they are
// exactly what a latency-optimized CPU core chews through. The
// partitioner routes slices below an nnz threshold to the host; the
// pipeline runs the host task on the simulated CPU concurrently with
// the GPU segments, and both halves accumulate into the same output.
//
// Both shares are zero-copy views of the mode-sorted parent: the CPU
// share as [begin, end) slice ranges (adjacent CPU slices merge into
// one range), the GPU share as a gather permutation (the complement of
// the CPU ranges, still mode-sorted — a subsequence of a sorted
// sequence). An all-GPU partition reuses the parent span as-is.

#include <span>
#include <utility>
#include <vector>

#include "gpusim/device_spec.hpp"
#include "tensor/coo.hpp"
#include "tensor/mttkrp_par.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {

struct HybridPartition {
  /// GPU share as a gather permutation over the parent view's base
  /// arrays (physical offsets, precomposed through the parent's own
  /// permutation at partition time; mode-sorted order). Empty when
  /// gpu_whole — the caller should use the parent span directly.
  std::vector<perm_t> gpu_perm;
  bool gpu_whole = false;
  nnz_t gpu_nnz = 0;

  /// CPU share: maximal runs of contiguous below-threshold slices, as
  /// [begin, end) entry ranges of the parent. Each range covers whole
  /// slices, so ranges own disjoint output rows.
  std::vector<std::pair<nnz_t, nnz_t>> cpu_ranges;
  nnz_t cpu_nnz = 0;

  order_t mode = 0;
  nnz_t threshold = 0;
  nnz_t cpu_slices = 0;
  nnz_t gpu_slices = 0;

  /// Zero-copy view of the GPU share. `parent` must be the same span
  /// that partition_for_hybrid split (the permutation indexes its base
  /// arrays), and must outlive the view together with this partition.
  CooSpan gpu_view(const CooSpan& parent) const;
};

/// Split a mode-sorted view by per-slice nnz. Threshold 0 disables
/// (everything goes to the GPU share).
HybridPartition partition_for_hybrid(const CooSpan& t, order_t mode,
                                     nnz_t slice_nnz_threshold);

/// Simulated host time for the CPU's share of the MTTKRP: roofline of
/// the CPU's memory bandwidth and (derated) FP throughput.
sim_ns cpu_mttkrp_ns(const gpusim::CpuSpec& cpu, const CooTensor& part,
                     index_t rank);

/// Same roofline from raw counts (no tensor materialization needed).
sim_ns cpu_mttkrp_ns(const gpusim::CpuSpec& cpu, nnz_t nnz, order_t order,
                     index_t rank);

/// Choose a slice-nnz threshold automatically: the largest threshold
/// whose CPU share is predicted to finish within `budget_ns` (typically
/// a fraction of the GPU pipeline's transfer time, so the CPU never
/// becomes the critical path). Candidates come from the slice-length
/// census itself — each distinct length L yields threshold L+1 — so the
/// optimum is exact at census granularity, not rounded to a power of
/// two. Returns 0 (hybrid off) when even the shortest slices would blow
/// the budget.
nnz_t auto_hybrid_threshold(const CooSpan& t, order_t mode, index_t rank,
                            const gpusim::CpuSpec& cpu, sim_ns budget_ns);

/// Functional CPU-side MTTKRP over a hybrid partition's CPU ranges,
/// viewed zero-copy in `parent` (accumulating; ranges run concurrently
/// — each range covers whole slices, so ranges own disjoint output
/// rows). This is the one canonical host-side hybrid entry point; to
/// run a whole slice-grouped span, pass the single range {0, nnz}.
void cpu_mttkrp_exec(const CooSpan& parent,
                     std::span<const std::pair<nnz_t, nnz_t>> ranges,
                     const FactorList& factors, order_t mode,
                     DenseMatrix& out, const HostExecParams& opt = {});

}  // namespace scalfrag
