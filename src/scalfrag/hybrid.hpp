#pragma once
// CPU–GPU heterogeneous hybrid execution (paper contribution #4: "we
// put the parts with low parallelism to the CPU for execution").
//
// Slices with very few non-zeros expose almost no thread-level
// parallelism on a GPU (a warp gathers one row and idles) yet they are
// exactly what a latency-optimized CPU core chews through. The
// partitioner routes slices below an nnz threshold to the host; the
// pipeline runs the host task on the simulated CPU concurrently with
// the GPU segments, and both halves accumulate into the same output.

#include "gpusim/device_spec.hpp"
#include "tensor/coo.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {

struct HybridPartition {
  CooTensor gpu_part;  // slices with nnz >= threshold (mode-sorted)
  CooTensor cpu_part;  // low-parallelism slices (mode-sorted)
  nnz_t threshold = 0;
  nnz_t cpu_slices = 0;
  nnz_t gpu_slices = 0;
};

/// Split a mode-sorted tensor by per-slice nnz. Threshold 0 disables
/// (everything goes to the GPU part).
HybridPartition partition_for_hybrid(const CooTensor& t, order_t mode,
                                     nnz_t slice_nnz_threshold);

/// Simulated host time for the CPU's share of the MTTKRP: roofline of
/// the CPU's memory bandwidth and (derated) FP throughput.
sim_ns cpu_mttkrp_ns(const gpusim::CpuSpec& cpu, const CooTensor& part,
                     index_t rank);

/// Same roofline from raw counts (no tensor materialization needed).
sim_ns cpu_mttkrp_ns(const gpusim::CpuSpec& cpu, nnz_t nnz, order_t order,
                     index_t rank);

/// Choose a slice-nnz threshold automatically: the largest power of two
/// whose CPU share is predicted to finish within `budget_ns` (typically
/// a fraction of the GPU pipeline's transfer time, so the CPU never
/// becomes the critical path). Returns 0 (hybrid off) when even the
/// singleton slices would blow the budget.
nnz_t auto_hybrid_threshold(const CooTensor& t, order_t mode, index_t rank,
                            const gpusim::CpuSpec& cpu, sim_ns budget_ns);

/// Functional CPU-side MTTKRP (accumulating, thread-pool parallel over
/// slice-disjoint chunks).
void cpu_mttkrp_exec(const CooTensor& part, const FactorList& factors,
                     order_t mode, DenseMatrix& out);

}  // namespace scalfrag
