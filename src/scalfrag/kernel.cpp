#include "scalfrag/kernel.hpp"

#include <algorithm>

#include "common/math_util.hpp"

namespace scalfrag {

std::size_t kernel_shmem_bytes(std::uint32_t block, index_t rank) {
  // times_mat: one staged factor row per thread; mvals: 32 slice
  // accumulator rows per block.
  const std::size_t times_mat = static_cast<std::size_t>(block) * rank *
                                sizeof(value_t);
  const std::size_t mvals = 32ull * rank * sizeof(value_t);
  return times_mat + mvals;
}

gpusim::KernelProfile mttkrp_profile(const TensorFeatures& feat, index_t rank,
                                     bool use_shared_mem) {
  gpusim::KernelProfile p;
  const auto nnz = feat.nnz;
  const auto order = static_cast<std::uint64_t>(feat.order);
  const std::uint64_t fbytes = sizeof(value_t) * rank;

  p.work_items = nnz;
  p.flops = nnz * 2ull * rank * (order > 1 ? order - 1 : 1);

  const std::uint64_t coo_bytes =
      nnz * (order * sizeof(index_t) + sizeof(value_t));

  if (use_shared_mem) {
    // Shared-memory staging: each distinct fiber's rows hit DRAM once;
    // repeats inside the fiber are served from the times_mat tile.
    const double factor_miss = 0.25 + 0.75 * feat.fiber_ratio;
    const auto factor_bytes = static_cast<std::uint64_t>(
        static_cast<double>(nnz * (order - 1) * fbytes) * factor_miss);

    // mvals flushes: one global atomic row-update per (slice, block)
    // pair instead of per non-zero. Approximate blocks touching a slice
    // by 1 + cv (imbalanced slices straddle more blocks); never worse
    // than one flush per non-zero (the degenerate all-singleton case).
    const double flushes_per_slice = 1.0 + feat.cv_nnz_per_slice;
    const auto flush_rows = std::min<std::uint64_t>(
        nnz, static_cast<std::uint64_t>(static_cast<double>(feat.num_slices) *
                                        flushes_per_slice));
    const std::uint64_t out_bytes = flush_rows * fbytes * 2;

    p.dram_bytes = coo_bytes + factor_bytes + out_bytes;
    p.coalescing = 0.55;  // staged gathers coalesce better
    p.atomic_updates = flush_rows * rank;
    // A slice's flushes (one per touching block) form its chain.
    p.atomic_max_chain = flushes_per_slice;
  } else {
    // Ablation: ScalFrag scheduling but ParTI-style global updates.
    const double factor_miss = 0.35 + 0.65 * feat.fiber_ratio;
    const auto factor_bytes = static_cast<std::uint64_t>(
        static_cast<double>(nnz * (order - 1) * fbytes) * factor_miss);
    const std::uint64_t out_bytes = nnz * fbytes * 2;
    p.dram_bytes = coo_bytes + factor_bytes + out_bytes;
    p.coalescing = 0.40;
    p.atomic_updates = nnz * rank;
    p.atomic_max_chain = static_cast<double>(feat.max_nnz_per_slice);
  }
  return p;
}

void mttkrp_exec(const CooSpan& segment, const FactorList& factors,
                 order_t mode, DenseMatrix& out,
                 const HostExecParams& opt) {
  // Functionally identical to the reference (floating-point sums are
  // reassociated on real hardware; tests use tolerances accordingly).
  mttkrp_coo_par(segment, factors, mode, out, /*accumulate=*/true, opt);
}

}  // namespace scalfrag
