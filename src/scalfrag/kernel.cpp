#include "scalfrag/kernel.hpp"

#include <algorithm>

#include "common/math_util.hpp"

namespace scalfrag {

std::size_t kernel_shmem_bytes(std::uint32_t block, index_t rank) {
  // times_mat: one staged factor row per thread; mvals: 32 slice
  // accumulator rows per block.
  const std::size_t times_mat = static_cast<std::size_t>(block) * rank *
                                sizeof(value_t);
  const std::size_t mvals = 32ull * rank * sizeof(value_t);
  return times_mat + mvals;
}

gpusim::KernelProfile mttkrp_profile(const TensorFeatures& feat, index_t rank,
                                     bool use_shared_mem) {
  gpusim::KernelProfile p;
  const auto nnz = feat.nnz;
  const auto order = static_cast<std::uint64_t>(feat.order);
  const std::uint64_t fbytes = sizeof(value_t) * rank;

  p.work_items = nnz;
  p.flops = nnz * 2ull * rank * (order > 1 ? order - 1 : 1);

  const std::uint64_t coo_bytes =
      nnz * (order * sizeof(index_t) + sizeof(value_t));

  if (use_shared_mem) {
    // Shared-memory staging: each distinct fiber's rows hit DRAM once;
    // repeats inside the fiber are served from the times_mat tile.
    const double factor_miss = 0.25 + 0.75 * feat.fiber_ratio;
    const auto factor_bytes = static_cast<std::uint64_t>(
        static_cast<double>(nnz * (order - 1) * fbytes) * factor_miss);

    // mvals flushes: one global atomic row-update per (slice, block)
    // pair instead of per non-zero. Approximate blocks touching a slice
    // by 1 + cv (imbalanced slices straddle more blocks); never worse
    // than one flush per non-zero (the degenerate all-singleton case).
    const double flushes_per_slice = 1.0 + feat.cv_nnz_per_slice;
    const auto flush_rows = std::min<std::uint64_t>(
        nnz, static_cast<std::uint64_t>(static_cast<double>(feat.num_slices) *
                                        flushes_per_slice));
    const std::uint64_t out_bytes = flush_rows * fbytes * 2;

    p.dram_bytes = coo_bytes + factor_bytes + out_bytes;
    p.coalescing = 0.55;  // staged gathers coalesce better
    p.atomic_updates = flush_rows * rank;
    // A slice's flushes (one per touching block) form its chain.
    p.atomic_max_chain = flushes_per_slice;
  } else {
    // Ablation: ScalFrag scheduling but ParTI-style global updates.
    const double factor_miss = 0.35 + 0.65 * feat.fiber_ratio;
    const auto factor_bytes = static_cast<std::uint64_t>(
        static_cast<double>(nnz * (order - 1) * fbytes) * factor_miss);
    const std::uint64_t out_bytes = nnz * fbytes * 2;
    p.dram_bytes = coo_bytes + factor_bytes + out_bytes;
    p.coalescing = 0.40;
    p.atomic_updates = nnz * rank;
    p.atomic_max_chain = static_cast<double>(feat.max_nnz_per_slice);
  }
  return p;
}

gpusim::KernelProfile csf_tiled_profile(const CsfTensor& csf,
                                        const CsfTiling& tiling, index_t rank,
                                        CsfTiledVariant variant) {
  gpusim::KernelProfile p;
  const std::uint64_t nnz = csf.nnz();
  const order_t order = csf.order();
  const std::uint64_t fbytes = sizeof(value_t) * rank;
  if (nnz == 0) return p;

  // Interior fold work: one ⊙-accumulate per internal node (levels
  // 1..order-2) on top of the per-leaf axpy — the factored schedule's
  // flop count, which undercuts COO's (order-1) multiplies per nnz
  // whenever fibers have >1 leaf.
  std::uint64_t interior = 0;
  for (order_t l = 1; l + 1 < order; ++l) interior += csf.num_nodes(l);
  p.work_items = order >= 2 ? csf.num_nodes(1) : nnz;  // fibers
  p.flops = 2ull * rank * (nnz + interior);

  // Index traffic is the exact tree footprint (fids/fptr/values) —
  // the compression vs COO's nnz*(order*idx+val) is the format's
  // bandwidth win. Factor rows: one read per node at levels >= 1.
  std::uint64_t factor_rows = 0;
  for (order_t l = 1; l < order; ++l) factor_rows += csf.num_nodes(l);
  const std::uint64_t slices = csf.num_nodes(0);
  const std::uint64_t out_bytes = slices * fbytes * 2;  // seed + flush
  p.dram_bytes = csf.bytes() + factor_rows * fbytes + out_bytes;
  // Tree walks gather rows fiber-by-fiber: better locality than raw
  // COO (0.40) but below the shared-mem staged kernel (0.55).
  p.coalescing = 0.50;

  std::uint64_t shared = 0;
  for (const CsfTile& t : tiling.tiles) shared += t.first_slice_shared;
  switch (variant) {
    case CsfTiledVariant::Serial:
      p.atomic_updates = 0;
      p.atomic_max_chain = 1.0;
      break;
    case CsfTiledVariant::Sync:
      // One partial-row fold per tile that enters a slice mid-way.
      p.atomic_updates = shared * rank;
      p.atomic_max_chain =
          1.0 + (slices > 0 ? static_cast<double>(shared) /
                                  static_cast<double>(slices)
                            : 0.0);
      p.dram_bytes += shared * fbytes * 2;
      break;
    case CsfTiledVariant::Coop:
      // Per-tile block reduction: every tile's slice rows are read and
      // folded once per tile, serialized at tile barriers.
      p.atomic_updates =
          (slices + shared) * rank;
      p.atomic_max_chain = 1.0 + static_cast<double>(
                                     tiling.tiles.empty() ? 0 : 1);
      p.dram_bytes += (slices + shared) * fbytes * 2;
      break;
  }
  return p;
}

void mttkrp_exec(const CooSpan& segment, const FactorList& factors,
                 order_t mode, DenseMatrix& out,
                 const HostExecParams& opt) {
  // Functionally identical to the reference (floating-point sums are
  // reassociated on real hardware; tests use tolerances accordingly).
  mttkrp_coo_par(segment, factors, mode, out, /*accumulate=*/true, opt);
}

}  // namespace scalfrag
