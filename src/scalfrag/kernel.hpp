#pragma once
// ScalFrag's tiled shared-memory MTTKRP kernel (paper §IV-A: "the
// frequently accessed data in the kernel and intermediate results
// (e.g., computation result mvals, factor matrices times_mat) are
// stored in shared memory").
//
// Modeled structure, per thread block:
//  * a `times_mat` staging tile of gathered factor rows lives in shared
//    memory, so repeated rows within a fiber/slice are read from DRAM
//    once per block instead of once per non-zero;
//  * partial outputs (`mvals`) accumulate in a shared-memory tile and
//    flush to the global output once per slice — turning ParTI's
//    per-non-zero atomics into per-slice-flush atomics.
//
// The shared-memory footprint grows with blockSize and rank, which is
// exactly what makes blockSize a real tuning knob (occupancy cliff).

#include "gpusim/cost_model.hpp"
#include "tensor/csf_tiled.hpp"
#include "tensor/features.hpp"
#include "tensor/mttkrp_par.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {

/// Legacy single-knob struct; the canonical entry points below take the
/// ablation switch directly. Kept only as a deprecated shim.
struct [[deprecated(
    "pass use_shared_mem directly (ExecConfig::use_shared_mem)")]]
ScalFragKernelOptions {
  bool use_shared_mem = true;  // ablation switch
};

/// Shared memory per block for a given blockSize/rank: the times_mat
/// tile (one F-row per thread) plus the mvals accumulation tile.
std::size_t kernel_shmem_bytes(std::uint32_t block, index_t rank);

/// Cost-model profile of the ScalFrag kernel over a (segment's)
/// feature summary. `use_shared_mem` is the ablation switch
/// (ExecConfig::use_shared_mem).
gpusim::KernelProfile mttkrp_profile(const TensorFeatures& feat, index_t rank,
                                     bool use_shared_mem = true);

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
/// Shim overload for the deprecated options struct.
[[deprecated("use mttkrp_profile(feat, rank, use_shared_mem)")]]
inline gpusim::KernelProfile mttkrp_profile(const TensorFeatures& feat,
                                            index_t rank,
                                            const ScalFragKernelOptions& opt) {
  return mttkrp_profile(feat, rank, opt.use_shared_mem);
}
#pragma GCC diagnostic pop

/// Cost-model profile of the CSF tiled kernel (fig9's CSF-tiled
/// series). Deterministic in the tree's node counts: index traffic is
/// the exact CSF array footprint, factor reads are amortized to one row
/// per tree node (the whole point of the format), and the schedule adds
/// its own synchronization term — sync pays one cross-tile partial fold
/// per shared boundary slice, coop pays the per-tile block reduction.
gpusim::KernelProfile csf_tiled_profile(const CsfTensor& csf,
                                        const CsfTiling& tiling, index_t rank,
                                        CsfTiledVariant variant);

/// Functional kernel body: accumulate mode-`mode` MTTKRP of the segment
/// into `out` (commutative adds; cross-segment accumulation safe). The
/// segment is a zero-copy view; it runs on the host execution engine
/// (CooTensor converts implicitly, so old call sites still work).
void mttkrp_exec(const CooSpan& segment, const FactorList& factors,
                 order_t mode, DenseMatrix& out,
                 const HostExecParams& opt = {});

}  // namespace scalfrag
