#include "scalfrag/multi_pipeline.hpp"

#include <exception>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "gpusim/sim_metrics.hpp"
#include "scalfrag/kernel.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {

namespace {

/// One device's shard pipeline, run on that device's own simulator.
/// Mirrors PipelineExecutor::run minus the hybrid path (multi-device
/// rejects CPU offload) — segments, launches, and features come
/// precomputed from the shard plan, so this is pure replay.
sim_ns run_shard(gpusim::SimDevice& dev, const ShardPlan& sp,
                 const DeviceShard& sh, const CooSpan& t,
                 const FactorList& factors, order_t mode, index_t rank,
                 const ExecConfig& cfg, const HostExecParams& host_exec,
                 DenseMatrix& partial) {
  std::size_t factor_bytes = 0;
  for (const auto& f : factors) factor_bytes += f.bytes();
  gpusim::DeviceBuffer<char> d_factors(dev.allocator(), factor_bytes);
  gpusim::DeviceBuffer<char> d_out(dev.allocator(), partial.bytes());

  std::vector<gpusim::StreamId> pool;
  pool.reserve(static_cast<std::size_t>(cfg.num_streams));
  for (int i = 0; i < cfg.num_streams; ++i) pool.push_back(dev.create_stream());

  // Per-stream segment staging, sized by the shard's largest segment.
  nnz_t max_seg = 0;
  for (int i = sh.seg_begin; i < sh.seg_end; ++i) {
    max_seg = std::max(max_seg,
                       sp.plan.segments[static_cast<std::size_t>(i)].nnz());
  }
  const std::size_t seg_bytes_cap =
      max_seg * (t.order() * sizeof(index_t) + sizeof(value_t));
  const int resident = std::min(cfg.num_streams, sh.num_segments());
  std::vector<gpusim::DeviceBuffer<char>> d_segs;
  d_segs.reserve(static_cast<std::size_t>(std::max(resident, 0)));
  for (int i = 0; i < resident; ++i) {
    d_segs.emplace_back(dev.allocator(), seg_bytes_cap);
  }

  // Every device holds all the factors (replicated inputs, sharded
  // non-zeros — the AMPED data distribution).
  const gpusim::StreamId s0 = pool[0];
  dev.memcpy_h2d(s0, factor_bytes, nullptr, "H2D factors");
  const gpusim::EventId ev_factors = dev.record_event(s0);
  for (int i = 1; i < cfg.num_streams; ++i) {
    dev.wait_event(pool[static_cast<std::size_t>(i)], ev_factors);
  }

  for (int i = sh.seg_begin; i < sh.seg_end; ++i) {
    const Segment& seg = sp.plan.segments[static_cast<std::size_t>(i)];
    if (seg.nnz() == 0) continue;
    const int local = i - sh.seg_begin;
    const gpusim::StreamId s =
        pool[static_cast<std::size_t>(local % cfg.num_streams)];
    const CooSpan segment = t.subspan(seg.begin, seg.end);
    dev.memcpy_h2d(s, segment.bytes(), nullptr,
                   "H2D segment " + std::to_string(i));

    const TensorFeatures& feat =
        sp.plan.features[static_cast<std::size_t>(i)];
    const gpusim::LaunchConfig launch =
        sh.launches[static_cast<std::size_t>(local)];
    const gpusim::KernelProfile prof =
        mttkrp_profile(feat, rank, cfg.use_shared_mem);
    HostExecParams kexec = host_exec;
    kexec.features = &feat;
    dev.launch_kernel(
        s, launch, prof,
        [&] { mttkrp_exec(segment, factors, mode, partial, kexec); },
        "ScalFrag kernel seg " + std::to_string(i));
  }

  for (int i = 1; i < cfg.num_streams; ++i) {
    dev.wait_event(s0, dev.record_event(pool[static_cast<std::size_t>(i)]));
  }
  dev.memcpy_d2h(s0, d_out.bytes(), nullptr, "D2H partial output");
  return dev.synchronize();
}

}  // namespace

MultiPipelineResult MultiPipelineExecutor::run(const CooSpan& t,
                                               const FactorList& factors,
                                               order_t mode,
                                               const ExecConfig& cfg) {
  const index_t rank = check_factors(t, factors);
  SF_CHECK(t.is_sorted_by_mode(mode),
           "multi-device pipeline requires mode-sorted input");
  CooSpan view = t;
  view.assume_sorted_by(mode);
  cfg.validate();
  SF_CHECK(cfg.num_devices == group_->size(),
           "ExecConfig::devices must match the DeviceGroup size");
  SF_CHECK(cfg.hybrid_cpu_threshold == 0,
           "the CPU hybrid split is single-device only — use "
           "PipelineExecutor for ExecConfig::hybrid_threshold > 0");

  MultiPipelineResult res;
  res.output = DenseMatrix(t.dim(mode), rank);
  obs::MetricsRegistry* const met = cfg.metrics_sink;
  const HostExecParams host_exec = cfg.host_for_run();
  const int n_dev = group_->size();

  std::optional<obs::MetricsRegistry::ScopedSpan> plan_span;
  if (met != nullptr) plan_span.emplace(*met, "host/shard_planning");
  res.plan = make_shard_plan(*group_, view, mode, rank, cfg, selector_);
  plan_span.reset();

  res.devices.resize(static_cast<std::size_t>(n_dev));
  group_->reset_timelines();

  // --- per-device pipelines, one driver thread each --------------------
  // The SimDevice simulators are independent, so the shard timelines
  // advance truly concurrently; the host engine under each functional
  // kernel is safe to enter from several driver threads at once.
  std::vector<DenseMatrix> partials(static_cast<std::size_t>(n_dev));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n_dev));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_dev));
  for (int d = 0; d < n_dev; ++d) {
    const DeviceShard& sh = res.plan.shards[static_cast<std::size_t>(d)];
    DeviceRunStats& stat = res.devices[static_cast<std::size_t>(d)];
    stat.device = d;
    stat.segments = sh.num_segments();
    stat.nnz = sh.nnz;
    stat.selection_seconds = sh.selection_seconds;
    if (sh.empty()) continue;
    partials[static_cast<std::size_t>(d)] = DenseMatrix(t.dim(mode), rank);
    threads.emplace_back([&, d] {
      try {
        DeviceRunStats& st = res.devices[static_cast<std::size_t>(d)];
        gpusim::SimDevice& dev = group_->device(d);
        st.total_ns = run_shard(dev, res.plan,
                                res.plan.shards[static_cast<std::size_t>(d)],
                                view, factors, mode, rank, cfg, host_exec,
                                partials[static_cast<std::size_t>(d)]);
        st.breakdown = dev.breakdown();
      } catch (...) {
        errors[static_cast<std::size_t>(d)] = std::current_exception();
      }
    });
  }
  for (auto& th : threads) th.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // --- deterministic reduction -----------------------------------------
  // Functional: sum partials in device order (independent of thread
  // scheduling). Simulated: contiguous mode-sorted shards own disjoint
  // slice ranges, so a device's partial is non-zero only on its own
  // rows — the gather of those disjoint blocks is the D2H already on
  // each timeline. What actually needs a cross-device collective is
  // the slices split across a shard boundary (both neighbours wrote
  // the row); the link model charges the chosen schedule over exactly
  // that payload, which is zero when every cut landed on a slice
  // boundary.
  const index_t out_cols = res.output.cols();
  std::size_t boundary_rows = 0;
  {
    const DeviceShard* prev = nullptr;
    for (const auto& sh : res.plan.shards) {
      if (sh.empty()) continue;
      if (prev != nullptr) {
        const auto& first =
            res.plan.plan.segments[static_cast<std::size_t>(sh.seg_begin)];
        const auto& last = res.plan.plan.segments[static_cast<std::size_t>(
            prev->seg_end - 1)];
        if (first.first_slice == last.last_slice) ++boundary_rows;
      }
      prev = &sh;
    }
  }
  int active = 0;
  for (int d = 0; d < n_dev; ++d) {
    if (res.plan.shards[static_cast<std::size_t>(d)].empty()) continue;
    ++active;
    const DenseMatrix& p = partials[static_cast<std::size_t>(d)];
    value_t* out = res.output.data();
    const value_t* in = p.data();
    for (std::size_t i = 0; i < p.size(); ++i) out[i] += in[i];
  }
  const std::size_t reduce_bytes =
      boundary_rows * static_cast<std::size_t>(out_cols) * sizeof(value_t);
  res.reduce_schedule = cfg.reduce_schedule
                            ? *cfg.reduce_schedule
                            : group_->pick_schedule(reduce_bytes);
  res.reduce_ns = (active > 1 && reduce_bytes > 0)
                      ? group_->reduce_ns(reduce_bytes, res.reduce_schedule)
                      : 0;
  for (const auto& st : res.devices) {
    res.compute_ns = std::max(res.compute_ns, st.total_ns);
  }
  res.total_ns = res.compute_ns + res.reduce_ns;

  // --- merged report ----------------------------------------------------
  if (met != nullptr) {
    met->count("multidev/runs");
    met->set("multidev/devices", static_cast<double>(n_dev));
    met->set("multidev/segments",
             static_cast<double>(res.plan.plan.size()));
    met->set("multidev/compute_ns", static_cast<double>(res.compute_ns));
    met->set("multidev/reduce_ns", static_cast<double>(res.reduce_ns));
    met->set("multidev/total_ns", static_cast<double>(res.total_ns));
    met->set("multidev/reduce_bytes", static_cast<double>(reduce_bytes));
    met->set("multidev/boundary_rows", static_cast<double>(boundary_rows));
    met->set(std::string("multidev/reduce_schedule_") +
                 gpusim::reduce_schedule_name(res.reduce_schedule),
             1.0);
    for (int d = 0; d < n_dev; ++d) {
      const auto& st = res.devices[static_cast<std::size_t>(d)];
      const std::string prefix = "gpu" + std::to_string(d);
      met->set("multidev/" + prefix + "/nnz", static_cast<double>(st.nnz));
      met->set("multidev/" + prefix + "/makespan_ns",
               static_cast<double>(st.total_ns));
      if (!res.plan.shards[static_cast<std::size_t>(d)].empty()) {
        gpusim::record_timeline(group_->device(d), *met, prefix);
      }
    }
  }
  return res;
}

MultiPipelineResult run_multi_pipeline(gpusim::DeviceGroup& group,
                                       const CooSpan& t,
                                       const FactorList& factors, order_t mode,
                                       const ExecConfig& cfg,
                                       const LaunchSelector* selector) {
  MultiPipelineExecutor exec(group, selector);
  return exec.run(t, factors, mode, cfg);
}

}  // namespace scalfrag
