#include "scalfrag/multi_pipeline.hpp"

#include <condition_variable>
#include <deque>
#include <exception>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "gpusim/sim_metrics.hpp"
#include "gpusim/transfer.hpp"
#include "parti/parti_kernel.hpp"
#include "scalfrag/kernel.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {

namespace {

/// Shared work-stealing scheduler. Scheduling *decisions* (issue the
/// next own segment, steal, or retire) are serialized in simulated-time
/// order: a device may decide only while its decision clock is the
/// unique minimum over all live devices (ties break toward the lowest
/// device id). Clocks advance from the simulators' deterministic
/// timelines, so the full decision sequence — including every steal —
/// is a deterministic function of the plan, independent of host thread
/// scheduling. The expensive functional kernel work runs *outside* the
/// scheduler lock, so device timelines still execute concurrently.
struct StealScheduler {
  explicit StealScheduler(int n)
      : queue(static_cast<std::size_t>(n)),
        remaining(static_cast<std::size_t>(n), 0.0),
        clock(static_cast<std::size_t>(n), 0),
        finish_est(static_cast<std::size_t>(n), 0.0),
        done(static_cast<std::size_t>(n), false) {}

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::deque<int>> queue;  // unissued own segments, in order
  std::vector<double> remaining;       // owner-predicted ns left per queue
  std::vector<sim_ns> clock;           // per-device decision clock
  // Completion time of the device's latest issued kernel — its
  // projected timeline finish so far. The decision clock deliberately
  // lags behind it (the clock is the end of the kernel that freed a
  // staging slot, up to num_streams issues back), so steal decisions
  // use this instead: comparing lagging clocks would let a thief
  // ignore its own in-flight tail and rob peers that are on schedule.
  std::vector<double> finish_est;
  std::vector<bool> done;
  std::vector<StealRecord> steals;     // in decision order
  // Segment i may move to a thief only when its slice range is not
  // shared with a neighbouring segment: a stolen segment's rows then
  // receive contributions from that segment alone, so folding its
  // scratch back is `0 + x` per element — bitwise x, same as the
  // owner executing it in place. A segment whose boundary splits a
  // slice stays with its owner (re-associating a shared row's partial
  // sums would change the low bits).
  std::vector<char> stealable;
  // Scratch output per stolen segment; std::map keeps fold order
  // ascending by segment id regardless of steal timing.
  std::map<int, DenseMatrix> scratch;

  bool my_turn(int d) const {
    const auto du = static_cast<std::size_t>(d);
    for (std::size_t x = 0; x < clock.size(); ++x) {
      if (x == du || done[x]) continue;
      if (clock[x] < clock[du] ||
          (clock[x] == clock[du] && x < du)) {
        return false;
      }
    }
    return true;
  }
};

/// One device's pipeline driver: replays its shard (and any stolen
/// segments) on its own simulator. Sim ops are issued with null
/// functional bodies — pure timing — and the host kernel work runs
/// separately outside the scheduler lock, so the simulated timeline
/// is byte-for-byte the PR 4 one when no steal triggers.
class DeviceDriver {
 public:
  DeviceDriver(int d, gpusim::SimDevice& dev, const ShardPlan& sp,
               const CooSpan& t, const FactorList& factors, order_t mode,
               index_t rank, const ExecConfig& cfg,
               const HostExecParams& host_exec, DenseMatrix* partial,
               StealScheduler& sched)
      : d_(d),
        dev_(dev),
        sp_(sp),
        sh_(sp.shards[static_cast<std::size_t>(d)]),
        t_(t),
        factors_(factors),
        mode_(mode),
        rank_(rank),
        cfg_(cfg),
        host_exec_(host_exec),
        partial_(partial),
        sched_(sched) {}

  void run() {
    std::unique_lock<std::mutex> lk(sched_.mu);
    for (;;) {
      sched_.cv.wait(lk, [&] { return sched_.my_turn(d_); });
      int seg_id = -1;
      DenseMatrix* target = nullptr;
      auto& myq = sched_.queue[static_cast<std::size_t>(d_)];
      if (!myq.empty()) {
        seg_id = myq.front();
        myq.pop_front();
        sched_.remaining[static_cast<std::size_t>(d_)] -=
            static_cast<double>(owner_pred(sh_, seg_id));
        target = partial_;
      } else if (cfg_.work_stealing) {
        const int victim = pick_victim();
        if (victim < 0) break;
        auto& vq = sched_.queue[static_cast<std::size_t>(victim)];
        seg_id = vq.back();
        vq.pop_back();
        const DeviceShard& vsh =
            sp_.shards[static_cast<std::size_t>(victim)];
        sched_.remaining[static_cast<std::size_t>(victim)] -=
            static_cast<double>(owner_pred(vsh, seg_id));
        sched_.steals.push_back(
            {seg_id, victim, d_,
             sched_.clock[static_cast<std::size_t>(d_)]});
        auto it = sched_.scratch
                      .emplace(seg_id, DenseMatrix(t_.dim(mode_), rank_))
                      .first;
        target = &it->second;
        ++stolen_segments;
        stolen_nnz +=
            sp_.plan.segments[static_cast<std::size_t>(seg_id)].nnz();
      } else {
        break;
      }
      const bool stolen = target != partial_;

      // Issue the sim ops and run the functional kernel outside the
      // lock; the decision clock is published as soon as the timing is
      // known, *before* the (slow) host kernel work, so peers with the
      // next-smallest clocks proceed concurrently.
      lk.unlock();
      const sim_ns next_clock = issue(seg_id, stolen);
      lk.lock();
      sched_.clock[static_cast<std::size_t>(d_)] = next_clock;
      sched_.finish_est[static_cast<std::size_t>(d_)] =
          static_cast<double>(kernel_end_.back());
      sched_.cv.notify_all();
      lk.unlock();
      exec(seg_id, *target);
      lk.lock();
    }
    sched_.done[static_cast<std::size_t>(d_)] = true;
    sched_.cv.notify_all();
    lk.unlock();
    finish();
  }

  sim_ns makespan() const noexcept { return makespan_; }
  bool executed() const noexcept { return primed_; }
  int stolen_segments = 0;
  nnz_t stolen_nnz = 0;

 private:
  static sim_ns owner_pred(const DeviceShard& sh, int seg_id) {
    return sh.seg_pred_ns[static_cast<std::size_t>(seg_id - sh.seg_begin)];
  }

  /// Predicted cost of executing global segment `seg_id` here: the
  /// static launch for this device's spec (the victim's predicted
  /// launch was tuned for the victim), bottlenecked by the H2D copy.
  sim_ns my_cost(int seg_id) const {
    const Segment& seg =
        sp_.plan.segments[static_cast<std::size_t>(seg_id)];
    const TensorFeatures& feat =
        sp_.plan.features[static_cast<std::size_t>(seg_id)];
    const gpusim::LaunchConfig lc = thief_launch(seg.nnz());
    const gpusim::KernelProfile prof =
        mttkrp_profile(feat, rank_, cfg_.use_shared_mem);
    const sim_ns kern = dev_.cost_model().kernel_ns(lc, prof);
    const sim_ns copy = gpusim::transfer_ns(
        dev_.spec(), t_.subspan(seg.begin, seg.end).bytes());
    return std::max(kern, copy);
  }

  gpusim::LaunchConfig thief_launch(nnz_t nnz) const {
    gpusim::LaunchConfig lc = cfg_.launch_override
                                  ? *cfg_.launch_override
                                  : parti::default_launch(dev_.spec(), nnz);
    if (cfg_.use_shared_mem) {
      lc.shmem_per_block = kernel_shmem_bytes(lc.block, rank_);
    }
    return lc;
  }

  /// Deterministic victim rule: the live peer with the latest projected
  /// finish (issued tail + owner-predicted queue, ties toward the
  /// lowest id) among those whose tail segment is stealable, and only
  /// if finishing that segment here beats the victim's own projected
  /// finish — mispredicted stragglers get robbed, balanced peers don't.
  int pick_victim() const {
    int victim = -1;
    double best = 0.0;
    for (std::size_t x = 0; x < sched_.queue.size(); ++x) {
      if (static_cast<int>(x) == d_ || sched_.queue[x].empty()) continue;
      if (!sched_.stealable[static_cast<std::size_t>(
              sched_.queue[x].back())]) {
        continue;
      }
      const double load = sched_.finish_est[x] + sched_.remaining[x];
      if (victim < 0 || load > best) {
        victim = static_cast<int>(x);
        best = load;
      }
    }
    if (victim < 0) return -1;
    const int seg_id = sched_.queue[static_cast<std::size_t>(victim)].back();
    // The stolen kernel queues behind this device's issued tail (FIFO
    // compute engine), so its projected end is finish_est + my_cost.
    const double mine =
        sched_.finish_est[static_cast<std::size_t>(d_)] +
        static_cast<double>(my_cost(seg_id));
    return mine < best ? victim : -1;
  }

  /// First issue on this device: streams, staging buffers, and the
  /// replicated-factor H2D (AMPED data distribution: every device
  /// holds all factors, non-zeros are sharded). Lazy so a device that
  /// never executes anything leaves a pristine timeline.
  void prime() {
    if (primed_) return;
    primed_ = true;
    std::size_t factor_bytes = 0;
    for (const auto& f : factors_) factor_bytes += f.bytes();
    out_bytes_ = static_cast<std::size_t>(t_.dim(mode_)) *
                 static_cast<std::size_t>(rank_) * sizeof(value_t);
    d_factors_.emplace(dev_.allocator(), factor_bytes);
    d_out_.emplace(dev_.allocator(), out_bytes_);

    pool_.reserve(static_cast<std::size_t>(cfg_.num_streams));
    for (int i = 0; i < cfg_.num_streams; ++i) {
      pool_.push_back(dev_.create_stream());
    }
    // Per-stream segment staging. Stealing can route any global
    // segment here, so size the staging by the global maximum then;
    // otherwise by the shard's own maximum (the PR 4 footprint).
    nnz_t max_seg = 0;
    int candidates = 0;
    if (cfg_.work_stealing) {
      for (const auto& s : sp_.plan.segments) {
        max_seg = std::max(max_seg, s.nnz());
        if (s.nnz() > 0) ++candidates;
      }
    } else {
      for (int i = sh_.seg_begin; i < sh_.seg_end; ++i) {
        max_seg = std::max(
            max_seg, sp_.plan.segments[static_cast<std::size_t>(i)].nnz());
        ++candidates;
      }
    }
    const std::size_t seg_bytes_cap =
        max_seg * (t_.order() * sizeof(index_t) + sizeof(value_t));
    const int resident = std::min(cfg_.num_streams, candidates);
    d_segs_.reserve(static_cast<std::size_t>(std::max(resident, 0)));
    for (int i = 0; i < resident; ++i) {
      d_segs_.emplace_back(dev_.allocator(), seg_bytes_cap);
    }

    const gpusim::StreamId s0 = pool_[0];
    dev_.memcpy_h2d(s0, factor_bytes, nullptr, "H2D factors");
    const gpusim::EventId ev_factors = dev_.record_event(s0);
    for (int i = 1; i < cfg_.num_streams; ++i) {
      dev_.wait_event(pool_[static_cast<std::size_t>(i)], ev_factors);
    }
  }

  /// Issue the segment's sim ops (timing only) and return the decision
  /// clock for the next issue: immediate while a staging slot is free,
  /// else the completion of the kernel that frees one.
  sim_ns issue(int seg_id, bool stolen) {
    prime();
    const Segment& seg =
        sp_.plan.segments[static_cast<std::size_t>(seg_id)];
    const CooSpan segment = t_.subspan(seg.begin, seg.end);
    // Own segments keep the PR 4 stream rotation (local segment
    // index); stolen ones continue rotating after the owned range.
    const int slot = stolen ? sh_.num_segments() + stolen_issued_++
                            : seg_id - sh_.seg_begin;
    const gpusim::StreamId s =
        pool_[static_cast<std::size_t>(slot % cfg_.num_streams)];
    dev_.memcpy_h2d(s, segment.bytes(), nullptr,
                    "H2D segment " + std::to_string(seg_id));
    const gpusim::LaunchConfig launch =
        stolen ? thief_launch(seg.nnz())
               : sh_.launches[static_cast<std::size_t>(seg_id -
                                                       sh_.seg_begin)];
    const TensorFeatures& feat =
        sp_.plan.features[static_cast<std::size_t>(seg_id)];
    const gpusim::KernelProfile prof =
        mttkrp_profile(feat, rank_, cfg_.use_shared_mem);
    dev_.launch_kernel(s, launch, prof, nullptr,
                       "ScalFrag kernel seg " + std::to_string(seg_id));
    // Kernel completions are monotone per device (FIFO compute
    // engine), so now() is this kernel's end time.
    kernel_end_.push_back(dev_.now());
    const std::size_t issued = kernel_end_.size();
    const auto window = static_cast<std::size_t>(cfg_.num_streams);
    if (issued < window) return sched_.clock[static_cast<std::size_t>(d_)];
    return kernel_end_[issued - window];
  }

  /// The functional kernel body for `seg_id`, accumulated into
  /// `target` — run outside the scheduler lock.
  void exec(int seg_id, DenseMatrix& target) {
    const Segment& seg =
        sp_.plan.segments[static_cast<std::size_t>(seg_id)];
    const CooSpan segment = t_.subspan(seg.begin, seg.end);
    const TensorFeatures& feat =
        sp_.plan.features[static_cast<std::size_t>(seg_id)];
    HostExecParams kexec = host_exec_;
    kexec.features = &feat;
    mttkrp_exec(segment, factors_, mode_, target, kexec);
  }

  void finish() {
    if (!primed_) return;
    const gpusim::StreamId s0 = pool_[0];
    for (int i = 1; i < cfg_.num_streams; ++i) {
      dev_.wait_event(s0,
                      dev_.record_event(pool_[static_cast<std::size_t>(i)]));
    }
    dev_.memcpy_d2h(s0, out_bytes_, nullptr, "D2H partial output");
    makespan_ = dev_.synchronize();
  }

  const int d_;
  gpusim::SimDevice& dev_;
  const ShardPlan& sp_;
  const DeviceShard& sh_;
  const CooSpan& t_;
  const FactorList& factors_;
  const order_t mode_;
  const index_t rank_;
  const ExecConfig& cfg_;
  const HostExecParams& host_exec_;
  DenseMatrix* partial_;
  StealScheduler& sched_;

  std::vector<gpusim::StreamId> pool_;
  std::optional<gpusim::DeviceBuffer<char>> d_factors_;
  std::optional<gpusim::DeviceBuffer<char>> d_out_;
  std::vector<gpusim::DeviceBuffer<char>> d_segs_;
  std::vector<sim_ns> kernel_end_;
  std::size_t out_bytes_ = 0;
  int stolen_issued_ = 0;
  bool primed_ = false;
  sim_ns makespan_ = 0;
};

}  // namespace

MultiPipelineResult MultiPipelineExecutor::run(const CooSpan& t,
                                               const FactorList& factors,
                                               order_t mode,
                                               const ExecConfig& cfg) {
  const index_t rank = check_factors(t, factors);
  SF_CHECK(t.is_sorted_by_mode(mode),
           "multi-device pipeline requires mode-sorted input");
  CooSpan view = t;
  view.assume_sorted_by(mode);
  cfg.validate();
  SF_CHECK(cfg.num_devices == group_->size(),
           "ExecConfig::devices must match the DeviceGroup size");
  SF_CHECK(cfg.hybrid_cpu_threshold == 0,
           "the CPU hybrid split is single-device only — use "
           "PipelineExecutor for ExecConfig::hybrid_threshold > 0");

  MultiPipelineResult res;
  res.output = DenseMatrix(t.dim(mode), rank);
  obs::MetricsRegistry* const met = cfg.metrics_sink;
  const HostExecParams host_exec = cfg.host_for_run();
  const int n_dev = group_->size();

  std::optional<obs::MetricsRegistry::ScopedSpan> plan_span;
  if (met != nullptr) plan_span.emplace(*met, "host/shard_planning");
  res.plan = make_shard_plan(*group_, view, mode, rank, cfg, selector_);
  plan_span.reset();
  res.pred_imbalance = res.plan.pred_time_imbalance();

  res.devices.resize(static_cast<std::size_t>(n_dev));
  group_->reset_timelines();

  // --- per-device pipelines, one driver thread each --------------------
  // The SimDevice simulators are independent, so the shard timelines
  // advance truly concurrently; the host engine under each functional
  // kernel is safe to enter from several driver threads at once.
  StealScheduler sched(n_dev);
  sched.stealable.assign(res.plan.plan.size(), 1);
  {
    // A shared slice between consecutive non-empty segments pins both
    // to their owners (see StealScheduler::stealable).
    std::size_t prev = 0;
    bool have_prev = false;
    for (std::size_t i = 0; i < res.plan.plan.size(); ++i) {
      const Segment& s = res.plan.plan.segments[i];
      if (s.nnz() == 0) continue;
      if (have_prev &&
          res.plan.plan.segments[prev].last_slice == s.first_slice) {
        sched.stealable[prev] = 0;
        sched.stealable[i] = 0;
      }
      prev = i;
      have_prev = true;
    }
  }
  std::vector<DenseMatrix> partials(static_cast<std::size_t>(n_dev));
  std::vector<std::unique_ptr<DeviceDriver>> drivers(
      static_cast<std::size_t>(n_dev));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n_dev));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_dev));
  for (int d = 0; d < n_dev; ++d) {
    const auto du = static_cast<std::size_t>(d);
    const DeviceShard& sh = res.plan.shards[du];
    DeviceRunStats& stat = res.devices[du];
    stat.device = d;
    stat.segments = sh.num_segments();
    stat.nnz = sh.nnz;
    stat.selection_seconds = sh.selection_seconds;
    // Queue only real segments: zero-nnz ones are not worth issuing or
    // stealing (PR 4 skipped them too).
    for (int i = sh.seg_begin; i < sh.seg_end; ++i) {
      if (res.plan.plan.segments[static_cast<std::size_t>(i)].nnz() > 0) {
        sched.queue[du].push_back(i);
      }
    }
    sched.remaining[du] = static_cast<double>(sh.predicted_ns);
    if (sh.empty() && !cfg.work_stealing) {
      // Nothing to run and no way to acquire work — not a live player.
      sched.done[du] = true;
      continue;
    }
    if (!sh.empty()) partials[du] = DenseMatrix(t.dim(mode), rank);
    drivers[du] = std::make_unique<DeviceDriver>(
        d, group_->device(d), res.plan, view, factors, mode, rank, cfg,
        host_exec, sh.empty() ? nullptr : &partials[du], sched);
  }
  for (int d = 0; d < n_dev; ++d) {
    const auto du = static_cast<std::size_t>(d);
    if (!drivers[du]) continue;
    threads.emplace_back([&, d, du] {
      try {
        drivers[du]->run();
      } catch (...) {
        errors[du] = std::current_exception();
        std::lock_guard<std::mutex> lock(sched.mu);
        sched.done[du] = true;
        sched.cv.notify_all();
      }
    });
  }
  for (auto& th : threads) th.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  res.steals = std::move(sched.steals);
  for (int d = 0; d < n_dev; ++d) {
    const auto du = static_cast<std::size_t>(d);
    if (!drivers[du]) continue;
    DeviceRunStats& st = res.devices[du];
    st.total_ns = drivers[du]->makespan();
    st.stolen_segments = drivers[du]->stolen_segments;
    st.stolen_nnz = drivers[du]->stolen_nnz;
    if (drivers[du]->executed()) {
      st.breakdown = group_->device(d).breakdown();
    }
  }

  // --- deterministic reduction -----------------------------------------
  // Functional: stolen-segment scratches fold into the *owner's*
  // partial in ascending segment order (the owner's original execution
  // order), then partials sum in device order — both independent of
  // thread scheduling and bit-identical to the no-stealing run.
  // Simulated: contiguous mode-sorted shards own disjoint slice
  // ranges, so a shard's rows gather via its own D2H; only slices
  // split across a shard boundary need the cross-device collective.
  std::vector<int> seg_owner(res.plan.plan.size(), 0);
  for (const auto& sh : res.plan.shards) {
    for (int i = sh.seg_begin; i < sh.seg_end; ++i) {
      seg_owner[static_cast<std::size_t>(i)] = sh.device;
    }
  }
  const index_t out_cols = res.output.cols();
  std::size_t boundary_rows = 0;
  std::vector<std::pair<int, int>> boundaries;  // (left dev, right dev)
  {
    const DeviceShard* prev = nullptr;
    for (const auto& sh : res.plan.shards) {
      if (sh.empty()) continue;
      if (prev != nullptr) {
        const auto& first =
            res.plan.plan.segments[static_cast<std::size_t>(sh.seg_begin)];
        const auto& last = res.plan.plan.segments[static_cast<std::size_t>(
            prev->seg_end - 1)];
        if (first.first_slice == last.last_slice) {
          ++boundary_rows;
          boundaries.emplace_back(prev->device, sh.device);
        }
      }
      prev = &sh;
    }
  }
  int active = 0;
  for (int d = 0; d < n_dev; ++d) {
    const auto du = static_cast<std::size_t>(d);
    if (res.plan.shards[du].empty()) continue;
    ++active;
    DenseMatrix& p = partials[du];
    for (const auto& [seg_id, m] : sched.scratch) {
      if (seg_owner[static_cast<std::size_t>(seg_id)] != d) continue;
      value_t* dst = p.data();
      const value_t* src = m.data();
      for (std::size_t i = 0; i < p.size(); ++i) dst[i] += src[i];
    }
    value_t* out = res.output.data();
    const value_t* in = p.data();
    for (std::size_t i = 0; i < p.size(); ++i) out[i] += in[i];
  }

  // Per-shard data-ready times: a shard's rows are complete when every
  // device that executed one of its segments has drained its timeline.
  std::vector<sim_ns> ready(static_cast<std::size_t>(n_dev), 0);
  for (int d = 0; d < n_dev; ++d) {
    const auto du = static_cast<std::size_t>(d);
    ready[du] = res.devices[du].total_ns;
  }
  for (const auto& s : res.steals) {
    auto& r = ready[static_cast<std::size_t>(s.victim)];
    r = std::max(r,
                 res.devices[static_cast<std::size_t>(s.thief)].total_ns);
  }

  const std::size_t reduce_bytes =
      boundary_rows * static_cast<std::size_t>(out_cols) * sizeof(value_t);
  res.reduce_schedule = cfg.reduce_schedule
                            ? *cfg.reduce_schedule
                            : group_->pick_schedule(reduce_bytes);
  for (const auto& st : res.devices) {
    res.compute_ns = std::max(res.compute_ns, st.total_ns);
  }
  const sim_ns barrier_reduce =
      (active > 1 && reduce_bytes > 0)
          ? group_->reduce_ns(reduce_bytes, res.reduce_schedule)
          : 0;
  if (!cfg.overlap_reduction || barrier_reduce == 0) {
    // Barrier mode: the PR 4 accounting, one collective after the
    // slowest device.
    res.reduce_ns = barrier_reduce;
    res.total_ns = res.compute_ns + res.reduce_ns;
  } else {
    // Overlapped mode: each boundary row-block is one pairwise
    // exchange between the two shards that share the slice, chunks
    // serialize on the peer link, and each starts as soon as both
    // neighbours' timelines drained — the reduction rides the compute
    // tail instead of waiting for the global barrier.
    const std::size_t chunk_bytes =
        static_cast<std::size_t>(out_cols) * sizeof(value_t);
    sim_ns link_free = 0;
    sim_ns end_max = 0;
    sim_ns work = 0;
    for (const auto& [left, right] : boundaries) {
      const sim_ns cost = group_->hop_ns(chunk_bytes);
      const sim_ns start =
          std::max({ready[static_cast<std::size_t>(left)],
                    ready[static_cast<std::size_t>(right)], link_free});
      link_free = start + cost;
      end_max = std::max(end_max, link_free);
      work += cost;
    }
    res.reduce_ns = work;
    res.total_ns = std::max(res.compute_ns, end_max);
    res.overlap_saved_ns = res.compute_ns + res.reduce_ns - res.total_ns;
  }

  // --- merged report ----------------------------------------------------
  if (met != nullptr) {
    met->count("multidev/runs");
    met->set("multidev/devices", static_cast<double>(n_dev));
    met->set("multidev/segments",
             static_cast<double>(res.plan.plan.size()));
    met->set("multidev/compute_ns", static_cast<double>(res.compute_ns));
    met->set("multidev/reduce_ns", static_cast<double>(res.reduce_ns));
    met->set("multidev/total_ns", static_cast<double>(res.total_ns));
    met->set("multidev/reduce_bytes", static_cast<double>(reduce_bytes));
    met->set("multidev/boundary_rows", static_cast<double>(boundary_rows));
    met->set("multidev/imbalance", res.pred_imbalance);
    met->set("multidev/overlap_ns",
             static_cast<double>(res.overlap_saved_ns));
    met->count("multidev/steals", res.steals.size());
    met->set("multidev/max_shard_pred_ns",
             static_cast<double>(res.plan.max_shard_pred_ns()));
    met->set(std::string("multidev/reduce_schedule_") +
                 gpusim::reduce_schedule_name(res.reduce_schedule),
             1.0);
    for (int d = 0; d < n_dev; ++d) {
      const auto& st = res.devices[static_cast<std::size_t>(d)];
      const std::string prefix = "gpu" + std::to_string(d);
      met->set("multidev/" + prefix + "/nnz", static_cast<double>(st.nnz));
      met->set("multidev/" + prefix + "/makespan_ns",
               static_cast<double>(st.total_ns));
      met->set("multidev/" + prefix + "/stolen_segments",
               static_cast<double>(st.stolen_segments));
      if (st.total_ns > 0) {
        gpusim::record_timeline(group_->device(d), *met, prefix);
      }
    }
  }
  return res;
}

MultiPipelineResult run_multi_pipeline(gpusim::DeviceGroup& group,
                                       const CooSpan& t,
                                       const FactorList& factors, order_t mode,
                                       const ExecConfig& cfg,
                                       const LaunchSelector* selector) {
  MultiPipelineExecutor exec(group, selector);
  return exec.run(t, factors, mode, cfg);
}

}  // namespace scalfrag
