#pragma once
// Multi-device sharded pipeline executor. Each device in a
// gpusim::DeviceGroup runs its shard of the global segment plan as an
// independent pipelined timeline (its own streams, its own H2D/kernel
// overlap), driven by a real host thread per device — the SimDevice
// simulators are independent, so the per-device timelines advance
// concurrently exactly like N GPUs would.
//
// On top of the PR 4 barrier design this executor adds (docs/multidev.md):
//  * work stealing (ExecConfig::work_stealing): a device that drains
//    its shard takes whole segments from the tail of the most-loaded
//    predicted timeline. Only segments whose slice range is not shared
//    with a neighbour may move (re-associating a split slice's partial
//    sums would change low bits); decisions are serialized in
//    simulated-time order, so the steal sequence is deterministic
//    regardless of host thread scheduling, and stolen contributions
//    fold back into the owner's partial in segment order —
//    bit-identical outputs.
//  * overlapped reduction (ExecConfig::overlap_reduction): the
//    cross-device reduction is chunked per boundary row-block and each
//    chunk starts as soon as both neighbouring shards finish, so the
//    collective hides under the compute tail instead of serializing
//    after a global barrier. Off reproduces
//    total_ns == compute_ns + reduce_ns exactly.
//
// Functional semantics: every device accumulates into its own partial
// output matrix (stolen segments into per-segment scratch), and the
// partials are summed in device order — a deterministic reduction,
// independent of thread scheduling and of whether stealing triggered.

#include <vector>

#include "gpusim/device_group.hpp"
#include "gpusim/engine.hpp"
#include "scalfrag/exec_config.hpp"
#include "scalfrag/shard.hpp"

namespace scalfrag {

/// One work-stealing event: `thief` took global segment `segment` from
/// the tail of `victim`'s queue at simulated time `decision_ns`.
/// The records appear in decision order — a deterministic sequence.
struct StealRecord {
  int segment = 0;
  int victim = 0;
  int thief = 0;
  sim_ns decision_ns = 0;
};

/// Per-device slice of a multi-device run's report.
struct DeviceRunStats {
  int device = 0;
  int segments = 0;       // segments owned by the shard plan
  nnz_t nnz = 0;          // nnz owned by the shard plan
  int stolen_segments = 0;  // segments this device stole and executed
  nnz_t stolen_nnz = 0;
  sim_ns total_ns = 0;  // this device's timeline makespan (0 if idle)
  gpusim::TimelineBreakdown breakdown;
  double selection_seconds = 0.0;
};

struct MultiPipelineResult {
  DenseMatrix output;  // reduced (full) mode-m factor update
  ShardPlan plan;
  std::vector<DeviceRunStats> devices;  // in device order
  std::vector<StealRecord> steals;      // in decision order

  gpusim::ReduceSchedule reduce_schedule = gpusim::ReduceSchedule::Tree;
  sim_ns compute_ns = 0;  // max over devices of timeline makespan
  sim_ns reduce_ns = 0;   // modeled inter-device reduction work
  /// End-to-end makespan. Barrier mode: compute_ns + reduce_ns.
  /// Overlapped mode: max(compute_ns, last reduction chunk end) — at
  /// most compute_ns + reduce_ns, less whenever chunks hid under the
  /// compute tail.
  sim_ns total_ns = 0;
  /// Reduction time hidden under compute: compute_ns + reduce_ns -
  /// total_ns. Zero in barrier mode.
  sim_ns overlap_saved_ns = 0;
  /// ShardPlan::pred_time_imbalance() of the executed plan.
  double pred_imbalance = 1.0;
};

class MultiPipelineExecutor {
 public:
  /// `selector` may be null — launch prediction then falls back to the
  /// static heuristic per shard.
  explicit MultiPipelineExecutor(gpusim::DeviceGroup& group,
                                 const LaunchSelector* selector = nullptr)
      : group_(&group), selector_(selector) {}

  /// Run one sharded mode-`mode` MTTKRP. `t` is a mode-sorted view (a
  /// CooTensor converts implicitly; ModeViews::view(mode) plugs in
  /// zero-copy). ExecConfig::num_devices must match the group size;
  /// hybrid CPU offload is single-device only (ExecConfig::validate
  /// rejects it). All device timelines are reset at entry.
  MultiPipelineResult run(const CooSpan& t, const FactorList& factors,
                          order_t mode, const ExecConfig& cfg = {});

 private:
  gpusim::DeviceGroup* group_;
  const LaunchSelector* selector_;
};

/// Canonical free-function driver, mirroring run_pipeline.
MultiPipelineResult run_multi_pipeline(gpusim::DeviceGroup& group,
                                       const CooSpan& t,
                                       const FactorList& factors, order_t mode,
                                       const ExecConfig& cfg = {},
                                       const LaunchSelector* selector = nullptr);

}  // namespace scalfrag
