#pragma once
// Multi-device sharded pipeline executor. Each device in a
// gpusim::DeviceGroup runs its shard of the global segment plan as an
// independent pipelined timeline (its own streams, its own H2D/kernel
// overlap), driven by a real host thread per device — the SimDevice
// simulators are independent, so the per-device timelines advance
// concurrently exactly like N GPUs would. The partial outputs are then
// reduced across the peer link; the reduction cost comes from the
// group's link model (tree or ring schedule, auto-picked by size).
// Because contiguous mode-sorted shards own disjoint output-slice
// ranges, the collective payload is only the rows of slices split
// across a shard boundary — zero when every cut is slice-aligned (the
// disjoint blocks are gathered by the per-device D2H already on the
// timelines).
//
//   total_ns = max over devices of the shard makespan + reduce_ns
//
// Functional semantics: every device accumulates into its own partial
// output matrix, and the partials are summed in device order — a
// deterministic reduction, independent of thread scheduling.

#include <vector>

#include "gpusim/device_group.hpp"
#include "gpusim/engine.hpp"
#include "scalfrag/exec_config.hpp"
#include "scalfrag/shard.hpp"

namespace scalfrag {

/// Per-device slice of a multi-device run's report.
struct DeviceRunStats {
  int device = 0;
  int segments = 0;
  nnz_t nnz = 0;
  sim_ns total_ns = 0;  // this device's shard makespan
  gpusim::TimelineBreakdown breakdown;
  double selection_seconds = 0.0;
};

struct MultiPipelineResult {
  DenseMatrix output;  // reduced (full) mode-m factor update
  ShardPlan plan;
  std::vector<DeviceRunStats> devices;  // in device order

  gpusim::ReduceSchedule reduce_schedule = gpusim::ReduceSchedule::Tree;
  sim_ns compute_ns = 0;  // max over devices of shard makespan
  sim_ns reduce_ns = 0;   // modeled inter-device reduction
  sim_ns total_ns = 0;    // compute_ns + reduce_ns
};

class MultiPipelineExecutor {
 public:
  /// `selector` may be null — launch prediction then falls back to the
  /// static heuristic per shard.
  explicit MultiPipelineExecutor(gpusim::DeviceGroup& group,
                                 const LaunchSelector* selector = nullptr)
      : group_(&group), selector_(selector) {}

  /// Run one sharded mode-`mode` MTTKRP. `t` is a mode-sorted view (a
  /// CooTensor converts implicitly; ModeViews::view(mode) plugs in
  /// zero-copy). ExecConfig::num_devices must match the group size;
  /// hybrid CPU offload is single-device only (ExecConfig::validate
  /// rejects it). All device timelines are reset at entry.
  MultiPipelineResult run(const CooSpan& t, const FactorList& factors,
                          order_t mode, const ExecConfig& cfg = {});

 private:
  gpusim::DeviceGroup* group_;
  const LaunchSelector* selector_;
};

/// Canonical free-function driver, mirroring run_pipeline.
MultiPipelineResult run_multi_pipeline(gpusim::DeviceGroup& group,
                                       const CooSpan& t,
                                       const FactorList& factors, order_t mode,
                                       const ExecConfig& cfg = {},
                                       const LaunchSelector* selector = nullptr);

}  // namespace scalfrag
