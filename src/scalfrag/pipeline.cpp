#include "scalfrag/pipeline.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "gpusim/sim_metrics.hpp"
#include "parti/parti_kernel.hpp"

namespace scalfrag {

int auto_segment_count(const gpusim::SimDevice& dev, const CooSpan& t,
                       order_t mode, index_t rank, const ExecConfig& cfg,
                       const TensorFeatures* whole) {
  if (t.nnz() == 0) return 1;
  // Pick the k ∈ [1, 8] minimizing the predicted makespan of a k-deep
  // pipeline. Splitting pays (k−1) extra PCIe setups and extra kernel
  // launches but lets all-but-the-first segment's copies hide behind
  // compute (and vice versa):
  //   makespan(k) ≈ first-copy + max(remaining copies, total kernels)
  // Kernel time is estimated with the whole-tensor profile under the
  // static launch — a heuristic, so exactness doesn't matter, only the
  // crossover between copy-bound and overhead-bound regimes.
  const auto& spec = dev.spec();
  const double latency = spec.pcie_latency_us * 1e3;
  const double launch = spec.kernel_launch_us * 1e3;
  const double wire =
      static_cast<double>(t.bytes()) / spec.pcie_bandwidth_gbps;
  TensorFeatures scratch;
  if (whole == nullptr) {
    scratch = TensorFeatures::extract(t, mode);  // the O(nnz) rescan
    whole = &scratch;
  }
  gpusim::LaunchConfig probe = parti::default_launch(spec, t.nnz());
  if (cfg.use_shared_mem) {
    probe.shmem_per_block = kernel_shmem_bytes(probe.block, rank);
  }
  const double kernel_work = static_cast<double>(dev.cost_model().kernel_ns(
      probe, mttkrp_profile(*whole, rank, cfg.use_shared_mem)));

  int best_k = 1;
  double best = std::numeric_limits<double>::infinity();
  for (int k = 1; k <= 8; ++k) {
    const double seg_copy = latency + wire / k;
    const double copies_rest = (k - 1) * seg_copy;
    const double kernels = kernel_work + (k - 1) * launch;
    const double makespan = seg_copy + std::max(copies_rest, kernels);
    if (makespan < best) {
      best = makespan;
      best_k = k;
    }
  }
  return best_k;
}

gpusim::StreamId PipelineExecutor::stream(int i) {
  while (static_cast<int>(pool_.size()) <= i) {
    pool_.push_back(dev_->create_stream());
  }
  return pool_[i];
}

PipelineResult PipelineExecutor::run(const CooSpan& t,
                                     const FactorList& factors, order_t mode,
                                     const ExecConfig& opt) {
  const index_t rank = check_factors(t, factors);
  SF_CHECK(t.is_sorted_by_mode(mode), "pipeline requires mode-sorted input");
  // Sortedness is established once; the hinted copy makes every
  // downstream check (segmenter, features, partitioner) O(1).
  CooSpan view = t;
  view.assume_sorted_by(mode);
  opt.validate();
  SF_CHECK(opt.num_devices == 1,
           "PipelineExecutor is single-device; use MultiPipelineExecutor "
           "for ExecConfig::devices > 1");
  SF_CHECK(opt.backend_name == "coo",
           "ExecConfig names backend \"" + opt.backend_name +
               "\" but was routed to the COO pipeline — dispatch through "
               "run_mttkrp_backend (scalfrag/backend_registry.hpp)");

  PipelineResult res;
  res.output = DenseMatrix(t.dim(mode), rank);

  obs::MetricsRegistry* const met = opt.metrics_sink;
  // The host engine inherits the pipeline's sink unless the caller
  // already pointed it somewhere else.
  const HostExecParams host_exec = opt.host_for_run();

  // --- hybrid partition (optional) -----------------------------------
  CooSpan gpu_view = view;
  HybridPartition part;
  if (opt.hybrid_cpu_threshold > 0) {
    std::optional<obs::MetricsRegistry::ScopedSpan> span;
    if (met != nullptr) span.emplace(*met, "host/partition");
    part = partition_for_hybrid(view, mode, opt.hybrid_cpu_threshold);
    if (!part.gpu_whole) gpu_view = part.gpu_view(view);
    res.cpu_nnz = part.cpu_nnz;
    if (met != nullptr) {
      met->count("pipeline/cpu_slices", part.cpu_slices);
      met->count("pipeline/gpu_slices", part.gpu_slices);
      met->count("pipeline/cpu_nnz", part.cpu_nnz);
    }
  }

  // --- segmentation ---------------------------------------------------
  // Features ride along with the cuts (one fused pass); the whole-tensor
  // profile for the auto rule is only extracted when actually needed.
  int want_segments = opt.num_segments;
  {
    std::optional<obs::MetricsRegistry::ScopedSpan> span;
    if (met != nullptr) span.emplace(*met, "host/segmentation");
    if (want_segments == 0) {
      const TensorFeatures whole = TensorFeatures::extract(gpu_view, mode);
      want_segments =
          auto_segment_count(*dev_, gpu_view, mode, rank, opt, &whole);
    }
    res.plan = make_segments(gpu_view, mode, want_segments,
                             /*align_to_slices=*/true,
                             /*with_features=*/true);
  }
  const auto n_seg = static_cast<int>(res.plan.size());
  // Forward slice-snapping can realize *fewer* segments than requested.
  // A schedule longer than the realized plan was sized against the
  // requested count: dropping its tail would pair every remaining
  // config with the wrong (larger) segment, so reject it outright. A
  // shorter schedule stays a documented prefix override.
  SF_CHECK(opt.launch_schedule.size() <= static_cast<std::size_t>(n_seg),
           "launch_schedule has more entries than realized segments; "
           "slice snapping realized fewer segments than requested — size "
           "the schedule from the realized plan (see MttkrpPlan)");
  if (met != nullptr) {
    met->count("pipeline/runs");
    met->count("pipeline/segments_requested",
               static_cast<std::uint64_t>(want_segments));
    met->count("pipeline/segments_realized",
               static_cast<std::uint64_t>(n_seg));
    met->count("pipeline/gpu_nnz", gpu_view.nnz());
  }

  dev_->reset_timeline();

  // --- device allocations ---------------------------------------------
  // Per-stream segment staging (the memory-frugality win of blocking:
  // only min(streams, segments) segments are resident at once), plus
  // persistent factors + output.
  std::size_t factor_bytes = 0;
  for (const auto& f : factors) factor_bytes += f.bytes();
  gpusim::DeviceBuffer<char> d_factors(dev_->allocator(), factor_bytes);
  gpusim::DeviceBuffer<char> d_out(
      dev_->allocator(),
      static_cast<std::size_t>(t.dim(mode)) * rank * sizeof(value_t));
  const int resident = std::min(opt.num_streams, std::max(n_seg, 1));
  const nnz_t max_seg = res.plan.max_nnz();
  const std::size_t seg_bytes_cap =
      max_seg * (t.order() * sizeof(index_t) + sizeof(value_t));
  std::vector<gpusim::DeviceBuffer<char>> d_segs;
  d_segs.reserve(resident);
  for (int i = 0; i < resident; ++i) {
    d_segs.emplace_back(dev_->allocator(), seg_bytes_cap);
  }

  // --- factors upload (all streams depend on it) ----------------------
  const gpusim::StreamId s0 = stream(0);
  dev_->memcpy_h2d(s0, factor_bytes, nullptr, "H2D factors");
  const gpusim::EventId ev_factors = dev_->record_event(s0);
  for (int i = 1; i < opt.num_streams; ++i) {
    dev_->wait_event(stream(i), ev_factors);
  }

  // --- hybrid CPU task (concurrent with the GPU pipeline) -------------
  if (res.cpu_nnz > 0) {
    res.cpu_task_ns =
        cpu_mttkrp_ns(opt.cpu_spec, res.cpu_nnz, t.order(), rank);
    // Host engine is independent of the GPU engines; use a dedicated
    // stream so it never serializes behind GPU ops in stream order.
    // The CPU share is never materialized: it runs as zero-copy slice
    // ranges viewed in the sorted parent.
    const gpusim::StreamId host_s = stream(opt.num_streams);
    dev_->host_task(
        host_s, res.cpu_task_ns,
        [&] {
          cpu_mttkrp_exec(view, part.cpu_ranges, factors, mode,
                          res.output, host_exec);
        },
        "CPU hybrid MTTKRP");
  }

  // --- segment pipeline ------------------------------------------------
  for (int i = 0; i < n_seg; ++i) {
    const Segment& seg = res.plan.segments[i];
    if (seg.nnz() == 0) {
      res.launches.push_back({});
      continue;
    }
    const gpusim::StreamId s = stream(i % opt.num_streams);
    // Zero-copy: the segment is a view into the parent's arrays (or,
    // under hybrid, a window of the GPU gather view), not an extracted
    // tensor. The parent outlives every use below.
    const CooSpan segment = gpu_view.subspan(seg.begin, seg.end);
    dev_->memcpy_h2d(s, segment.bytes(), nullptr,
                     "H2D segment " + std::to_string(i));

    const TensorFeatures& feat = res.plan.features[i];
    gpusim::LaunchConfig launch;
    if (static_cast<std::size_t>(i) < opt.launch_schedule.size()) {
      launch = opt.launch_schedule[i];
    } else if (opt.launch_override) {
      launch = *opt.launch_override;
    } else if (opt.adaptive_launch && selector_ != nullptr) {
      const Selection sel = selector_->select(feat);
      launch = sel.config;
      res.selection_seconds += sel.inference_seconds;
    } else {
      launch = parti::default_launch(dev_->spec(), segment.nnz());
    }
    if (opt.use_shared_mem) {
      launch.shmem_per_block = kernel_shmem_bytes(launch.block, rank);
    }
    const gpusim::KernelProfile prof =
        mttkrp_profile(feat, rank, opt.use_shared_mem);
    // Hand the fused segment features to the host engine so strategy
    // selection is O(1) instead of re-probing the index array.
    HostExecParams kexec = host_exec;
    kexec.features = &feat;
    // SimDevice runs functional bodies eagerly inside launch_kernel, so
    // capturing the loop-locals by reference is safe.
    dev_->launch_kernel(
        s, launch, prof,
        [&] { mttkrp_exec(segment, factors, mode, res.output, kexec); },
        "ScalFrag kernel seg " + std::to_string(i));
    res.launches.push_back(launch);
  }

  // --- gather results ---------------------------------------------------
  for (int i = 1; i < opt.num_streams; ++i) {
    dev_->wait_event(s0, dev_->record_event(stream(i)));
  }
  if (res.cpu_nnz > 0) {
    dev_->wait_event(s0, dev_->record_event(stream(opt.num_streams)));
  }
  dev_->memcpy_d2h(s0, d_out.bytes(), nullptr, "D2H output");

  res.total_ns = dev_->synchronize();
  res.breakdown = dev_->breakdown();
  if (met != nullptr) {
    gpusim::record_timeline(*dev_, *met, "gpu");
    met->set("pipeline/selection_seconds", res.selection_seconds);
  }
  res.info.backend = "coo";
  res.info.prepare_seconds = res.selection_seconds;
  res.info.sim_total_ns = res.total_ns;
  return res;
}

PipelineResult run_pipeline(gpusim::SimDevice& dev, const CooSpan& t,
                            const FactorList& factors, order_t mode,
                            const ExecConfig& cfg,
                            const LaunchSelector* selector) {
  PipelineExecutor exec(dev, selector);
  PipelineResult res = exec.run(t, factors, mode, cfg);
  if (cfg.metrics_sink != nullptr) {
    res.info.metrics = cfg.metrics_sink->snapshot();
  }
  return res;
}

}  // namespace scalfrag
