#pragma once
// The ScalFrag pipelined executor (paper §IV-C, Fig. 8): the
// mode-sorted tensor is cut into segments, each segment's H2D copy and
// kernel are issued asynchronously on a CUDA stream, and transfers
// overlap the previous segments' compute. Optionally, low-parallelism
// slices run on the host CPU concurrently (hybrid mode), and the launch
// configuration of every segment's kernel comes from the adaptive
// selector.
//
// Configuration is one ExecConfig (exec_config.hpp) shared with every
// other driver. PipelineOptions survives below only as a deprecated
// conversion shim.

#include <optional>

#include "gpusim/engine.hpp"
#include "obs/metrics.hpp"
#include "scalfrag/autotune.hpp"
#include "scalfrag/exec_config.hpp"
#include "scalfrag/hybrid.hpp"
#include "scalfrag/kernel.hpp"
#include "scalfrag/run_info.hpp"
#include "scalfrag/segmenter.hpp"

namespace scalfrag {

/// Legacy single-device pipeline options. Thin conversion shim: every
/// field maps 1:1 onto ExecConfig (see docs/api.md). In-tree code must
/// not use it — CI builds with -Werror=deprecated-declarations.
struct [[deprecated("use scalfrag::ExecConfig (docs/api.md)")]]
PipelineOptions {
  int num_segments = 0;
  int num_streams = 4;
  bool use_shared_mem = true;
  bool adaptive_launch = true;
  std::optional<gpusim::LaunchConfig> launch_override;
  std::vector<gpusim::LaunchConfig> launch_schedule;
  nnz_t hybrid_cpu_threshold = 0;
  gpusim::CpuSpec cpu = gpusim::CpuSpec::i7_11700k();
  HostExecParams host_exec;
  obs::MetricsRegistry* metrics = nullptr;

  operator ExecConfig() const {
    ExecConfig cfg;
    cfg.num_segments = num_segments;
    cfg.num_streams = num_streams;
    cfg.use_shared_mem = use_shared_mem;
    cfg.adaptive_launch = adaptive_launch;
    cfg.launch_override = launch_override;
    cfg.launch_schedule = launch_schedule;
    cfg.hybrid_cpu_threshold = hybrid_cpu_threshold;
    cfg.cpu_spec = cpu;
    cfg.host_exec = host_exec;
    cfg.metrics_sink = metrics;
    return cfg;
  }
};

struct PipelineResult {
  DenseMatrix output;
  gpusim::TimelineBreakdown breakdown;
  sim_ns total_ns = 0;

  SegmentPlan plan;
  std::vector<gpusim::LaunchConfig> launches;  // one per segment
  double selection_seconds = 0.0;  // host time spent in the selector
  nnz_t cpu_nnz = 0;               // hybrid share
  sim_ns cpu_task_ns = 0;

  /// Uniform driver record (scalfrag/run_info.hpp). The executor fills
  /// backend/timing; the free run_pipeline driver also snapshots the
  /// metrics sink (plan replays skip the snapshot — they run per
  /// iteration and the sink is shared).
  RunInfo info;
};

/// The auto-segmentation rule (ExecConfig::num_segments == 0): pick the
/// k ∈ [1, 8] minimizing the predicted pipelined makespan. Exposed so
/// MttkrpPlan segments exactly the way the executor would. `whole` may
/// pass the tensor's precomputed features; when null they are extracted
/// here (an O(nnz) rescan hot callers should avoid).
int auto_segment_count(const gpusim::SimDevice& dev, const CooSpan& t,
                       order_t mode, index_t rank, const ExecConfig& cfg,
                       const TensorFeatures* whole = nullptr);

class PipelineExecutor {
 public:
  /// `selector` may be null — then adaptive_launch falls back to the
  /// ParTI-style static heuristic.
  PipelineExecutor(gpusim::SimDevice& dev,
                   const LaunchSelector* selector = nullptr)
      : dev_(&dev), selector_(selector) {}

  /// Run one end-to-end mode-`mode` MTTKRP. `t` is a mode-sorted view
  /// (a CooTensor converts implicitly; ModeViews::view(mode) plugs in
  /// zero-copy). The device timeline is reset at entry.
  /// ExecConfig::num_devices must be 1 here — use MultiPipelineExecutor
  /// for sharded runs.
  PipelineResult run(const CooSpan& t, const FactorList& factors,
                     order_t mode, const ExecConfig& cfg = {});

 private:
  gpusim::StreamId stream(int i);

  gpusim::SimDevice* dev_;
  const LaunchSelector* selector_;
  std::vector<gpusim::StreamId> pool_;
};

/// Canonical free-function driver: one pipelined mode-`mode` MTTKRP on
/// `dev` under `cfg` (trains nothing — pass a selector for adaptive
/// launching). Exists so call sites that run once don't have to manage
/// an executor object.
PipelineResult run_pipeline(gpusim::SimDevice& dev, const CooSpan& t,
                            const FactorList& factors, order_t mode,
                            const ExecConfig& cfg = {},
                            const LaunchSelector* selector = nullptr);

}  // namespace scalfrag
