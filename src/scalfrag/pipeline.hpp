#pragma once
// The ScalFrag pipelined executor (paper §IV-C, Fig. 8): the
// mode-sorted tensor is cut into segments, each segment's H2D copy and
// kernel are issued asynchronously on a CUDA stream, and transfers
// overlap the previous segments' compute. Optionally, low-parallelism
// slices run on the host CPU concurrently (hybrid mode), and the launch
// configuration of every segment's kernel comes from the adaptive
// selector.

#include <optional>

#include "gpusim/engine.hpp"
#include "obs/metrics.hpp"
#include "scalfrag/autotune.hpp"
#include "scalfrag/hybrid.hpp"
#include "scalfrag/kernel.hpp"
#include "scalfrag/segmenter.hpp"

namespace scalfrag {

struct PipelineOptions {
  /// 0 = auto: pick a segment count so each segment's copy is large
  /// enough to amortize PCIe latency (the paper "empirically determines
  /// the appropriate number of segments"); small tensors then run
  /// unsegmented. Explicit values (e.g. the paper's Fig. 11 sweep) are
  /// honored as-is.
  int num_segments = 0;
  int num_streams = 4;
  bool use_shared_mem = true;
  bool adaptive_launch = true;
  /// Force a specific launch config (overrides adaptive/static choice).
  std::optional<gpusim::LaunchConfig> launch_override;
  /// Precomputed per-segment launches (from MttkrpPlan); entry i is
  /// used for *realized* segment i and takes precedence over everything
  /// above. A schedule shorter than the realized plan is a prefix
  /// override (the remaining segments fall back to the options below);
  /// a schedule *longer* than the realized plan is rejected — forward
  /// slice-snapping can realize fewer segments than requested, and
  /// silently dropping tail entries would misalign every config with
  /// the segment it was computed for. Size schedules from the realized
  /// plan (make_segments / MttkrpPlan), not from num_segments.
  std::vector<gpusim::LaunchConfig> launch_schedule;
  /// Slice-nnz threshold below which work routes to the CPU (0 = off).
  nnz_t hybrid_cpu_threshold = 0;
  gpusim::CpuSpec cpu = gpusim::CpuSpec::i7_11700k();
  /// Host execution engine knob for every functional kernel body the
  /// pipeline runs (segment kernels, hybrid CPU share). Strategy
  /// Serial restores the single-threaded reference behavior.
  HostExecOptions host_exec;
  /// Optional observability sink: the executor records its phase spans
  /// (wall clock), the realized plan's counters, and the device
  /// timeline breakdown (simulated ns) there. Also handed to the host
  /// engine for kernel bodies unless host_exec.metrics is already set.
  obs::MetricsRegistry* metrics = nullptr;
};

struct PipelineResult {
  DenseMatrix output;
  gpusim::TimelineBreakdown breakdown;
  sim_ns total_ns = 0;

  SegmentPlan plan;
  std::vector<gpusim::LaunchConfig> launches;  // one per segment
  double selection_seconds = 0.0;  // host time spent in the selector
  nnz_t cpu_nnz = 0;               // hybrid share
  sim_ns cpu_task_ns = 0;
};

/// The auto-segmentation rule (PipelineOptions::num_segments == 0):
/// pick the k ∈ [1, 8] minimizing the predicted pipelined makespan.
/// Exposed so MttkrpPlan segments exactly the way the executor would.
/// `whole` may pass the tensor's precomputed features; when null they
/// are extracted here (an O(nnz) rescan hot callers should avoid).
int auto_segment_count(const gpusim::SimDevice& dev, const CooTensor& t,
                       order_t mode, index_t rank,
                       const PipelineOptions& opt,
                       const TensorFeatures* whole = nullptr);

class PipelineExecutor {
 public:
  /// `selector` may be null — then adaptive_launch falls back to the
  /// ParTI-style static heuristic.
  PipelineExecutor(gpusim::SimDevice& dev,
                   const LaunchSelector* selector = nullptr)
      : dev_(&dev), selector_(selector) {}

  /// Run one end-to-end mode-`mode` MTTKRP. `t` must be mode-sorted.
  /// The device timeline is reset at entry.
  PipelineResult run(const CooTensor& t, const FactorList& factors,
                     order_t mode, const PipelineOptions& opt = {});

 private:
  gpusim::StreamId stream(int i);

  gpusim::SimDevice* dev_;
  const LaunchSelector* selector_;
  std::vector<gpusim::StreamId> pool_;
};

}  // namespace scalfrag
