#include "scalfrag/plan.hpp"

#include <algorithm>

#include "common/timer.hpp"
#include "parti/parti_kernel.hpp"

namespace scalfrag {

MttkrpPlan::MttkrpPlan(const CooTensor& x, index_t rank,
                       gpusim::SimDevice& dev, const LaunchSelector* selector,
                       ExecConfig config)
    : dev_(&dev), selector_(selector), rank_(rank),
      options_(std::move(config)) {
  SF_CHECK(x.nnz() > 0, "cannot plan for an empty tensor");
  SF_CHECK(rank > 0, "rank must be positive");
  options_.validate();
  SF_CHECK(options_.num_devices == 1,
           "MttkrpPlan replays a single-device pipeline; shard with "
           "MultiPipelineExecutor for ExecConfig::devices > 1");
  WallTimer timer;
  views_ = ModeViews(x, options_.metrics_sink);
  prepare();
  prepare_seconds_ = timer.seconds();
}

MttkrpPlan::MttkrpPlan(ModeViews&& views, index_t rank,
                       gpusim::SimDevice& dev, const LaunchSelector* selector,
                       ExecConfig config)
    : dev_(&dev), selector_(selector), rank_(rank),
      options_(std::move(config)), views_(std::move(views)) {
  SF_CHECK(views_.nnz() > 0, "cannot plan for an empty tensor");
  SF_CHECK(rank > 0, "rank must be positive");
  options_.validate();
  SF_CHECK(options_.num_devices == 1,
           "MttkrpPlan replays a single-device pipeline; shard with "
           "MultiPipelineExecutor for ExecConfig::devices > 1");
  WallTimer timer;
  prepare();
  prepare_seconds_ = timer.seconds();
}

void MttkrpPlan::prepare() {
  modes_.resize(views_.order());
  for (order_t m = 0; m < views_.order(); ++m) {
    ModePlan& plan = modes_[m];
    const CooSpan view = views_.view(m);
    plan.features = TensorFeatures::extract(view, m);

    // Segment exactly the way the executor will (auto rule included,
    // fed the whole-tensor features just computed — no rescan). The
    // per-segment features fall out of the segmentation pass itself.
    const int want =
        options_.num_segments == 0
            ? auto_segment_count(*dev_, view, m, rank_, options_,
                                 &plan.features)
            : options_.num_segments;
    plan.segments = make_segments(view, m, want,
                                  /*align_to_slices=*/true,
                                  /*with_features=*/true);

    // One selector sweep per segment, paid once (no materialization —
    // the fused features stand in for extract + rescan).
    WallTimer sel_timer;
    for (std::size_t i = 0; i < plan.segments.size(); ++i) {
      const Segment& seg = plan.segments.segments[i];
      if (seg.nnz() == 0) {
        plan.launch_schedule.push_back(
            parti::default_launch(dev_->spec(), 1));
        continue;
      }
      const TensorFeatures& feat = plan.segments.features[i];
      if (options_.adaptive_launch && selector_ != nullptr) {
        plan.launch_schedule.push_back(selector_->select(feat).config);
      } else {
        plan.launch_schedule.push_back(
            parti::default_launch(dev_->spec(), seg.nnz()));
      }
    }
    plan.selection_seconds = sel_timer.seconds();
  }
}

PipelineResult MttkrpPlan::run(const FactorList& factors,
                               order_t mode) const {
  return run_on(*dev_, factors, mode, options_.metrics_sink);
}

PipelineResult MttkrpPlan::run_on(gpusim::SimDevice& dev,
                                  const FactorList& factors, order_t mode,
                                  obs::MetricsRegistry* sink) const {
  SF_CHECK(mode < order(), "mode out of range");
  SF_CHECK(dev.spec().name == dev_->spec().name,
           "MttkrpPlan replay requires a device of the spec the plan "
           "was built for (\"" + dev_->spec().name + "\")");
  const ModePlan& plan = modes_[mode];
  ExecConfig opt = options_;
  opt.num_segments = static_cast<int>(plan.segments.size());
  opt.launch_schedule = plan.launch_schedule;
  opt.metrics_sink = sink;
  PipelineExecutor exec(dev, selector_);
  return exec.run(views_.view(mode), factors, mode, opt);
}

}  // namespace scalfrag
