#pragma once
// MttkrpPlan — amortized preprocessing for iterative workloads.
//
// CPD-ALS calls mode-n MTTKRP once per mode per iteration, and the
// paper leans on this ("the iterative CPD process involves many MTTKRP
// operations, further diluting the inference overhead", §IV-B). The
// launch-relevant inputs — sparsity features, segmentation, launch
// selection — depend only on the tensor, never on the factor values,
// so they can be computed once per mode and reused by every iteration.
// The plan does exactly that: sort once, segment, and select up front;
// each run() then replays the precomputed schedule.
//
// Memory model: the plan keeps ONE canonical sorted copy of the tensor
// plus a gather permutation per remaining mode (ModeViews), not one
// fully sorted copy per mode. For an order-N tensor that is
// bytes(x) + (N-1)·4·nnz resident instead of N·bytes(x) — see
// docs/host-engine.md "Plan memory model".

#include "scalfrag/pipeline.hpp"
#include "tensor/mode_views.hpp"

namespace scalfrag {

class MttkrpPlan {
 public:
  struct ModePlan {
    TensorFeatures features;
    SegmentPlan segments;
    std::vector<gpusim::LaunchConfig> launch_schedule;  // per segment
    double selection_seconds = 0.0;  // one-off cost, paid here
  };

  /// Precompute every mode's plan. `selector` may be null (static
  /// launches). The heavy work (one canonical sort + N-1 counting
  /// passes + N selector sweeps) happens here, once.
  ///
  /// The config is copied BY VALUE — later mutation (or destruction)
  /// of the caller's ExecConfig does not affect the plan. The one
  /// referenced resource is ExecConfig::metrics_sink: the registry it
  /// points at must outlive every run() replay of this plan (the plan
  /// stores the raw pointer, not the registry, and the ModeViews
  /// resident-bytes gauge reports into it).
  MttkrpPlan(const CooTensor& x, index_t rank, gpusim::SimDevice& dev,
             const LaunchSelector* selector, ExecConfig config = {});

  /// Adopt pre-built views (e.g. cpd_als sharing one canonical sort
  /// across backends) instead of sorting again.
  MttkrpPlan(ModeViews&& views, index_t rank, gpusim::SimDevice& dev,
             const LaunchSelector* selector, ExecConfig config = {});

  order_t order() const noexcept { return views_.order(); }
  index_t rank() const noexcept { return rank_; }
  const ModePlan& mode(order_t m) const { return modes_.at(m); }
  const ExecConfig& config() const noexcept { return options_; }

  /// The shared single-sort representation backing every mode.
  const ModeViews& views() const noexcept { return views_; }

  /// Zero-copy mode-sorted view the mode-`m` replay executes on.
  CooSpan view(order_t m) const { return views_.view(m); }

  /// Bytes the plan keeps resident for the tensor data (canonical copy
  /// + permutations). The replaced per-mode-copies scheme would hold
  /// ModeViews::legacy_copies_bytes(x).
  std::size_t resident_bytes() const noexcept {
    return views_.resident_bytes();
  }

  /// Execute one planned mode-`mode` MTTKRP (selection cost already
  /// sunk; result.selection_seconds stays 0).
  PipelineResult run(const FactorList& factors, order_t mode) const;

  /// Cache-friendly replay: execute the precomputed mode-`mode`
  /// schedule on `dev` — any device of the same spec as the one the
  /// plan was built against (segmentation and launch prediction depend
  /// on the spec, not the device instance, so the replay is
  /// bit-identical wherever it lands). `sink` overrides the plan's
  /// baked-in metrics pointer for this run, which is how the service's
  /// shared PlanCache reports into per-job registries.
  PipelineResult run_on(gpusim::SimDevice& dev, const FactorList& factors,
                        order_t mode,
                        obs::MetricsRegistry* sink = nullptr) const;

  /// Total one-off preprocessing wall time (sorting + selection).
  double prepare_seconds() const noexcept { return prepare_seconds_; }

 private:
  void prepare();

  gpusim::SimDevice* dev_;
  const LaunchSelector* selector_;
  index_t rank_;
  ExecConfig options_;
  ModeViews views_;
  std::vector<ModePlan> modes_;
  double prepare_seconds_ = 0.0;
};

}  // namespace scalfrag
