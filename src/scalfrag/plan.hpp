#pragma once
// MttkrpPlan — amortized preprocessing for iterative workloads.
//
// CPD-ALS calls mode-n MTTKRP once per mode per iteration, and the
// paper leans on this ("the iterative CPD process involves many MTTKRP
// operations, further diluting the inference overhead", §IV-B). The
// launch-relevant inputs — sparsity features, segmentation, launch
// selection — depend only on the tensor, never on the factor values,
// so they can be computed once per mode and reused by every iteration.
// The plan does exactly that: sort, segment, and select up front; each
// run() then replays the precomputed schedule.

#include "scalfrag/pipeline.hpp"

namespace scalfrag {

class MttkrpPlan {
 public:
  struct ModePlan {
    CooTensor sorted;  // mode-sorted copy of the tensor
    TensorFeatures features;
    SegmentPlan segments;
    std::vector<gpusim::LaunchConfig> launch_schedule;  // per segment
    double selection_seconds = 0.0;  // one-off cost, paid here
  };

  /// Precompute every mode's plan. `selector` may be null (static
  /// launches). The heavy work (N sorts + N selector sweeps) happens
  /// here, once.
  ///
  /// The config is copied BY VALUE — later mutation (or destruction)
  /// of the caller's ExecConfig does not affect the plan. The one
  /// referenced resource is ExecConfig::metrics_sink: the registry it
  /// points at must outlive every run() replay of this plan (the plan
  /// stores the raw pointer, not the registry).
  MttkrpPlan(const CooTensor& x, index_t rank, gpusim::SimDevice& dev,
             const LaunchSelector* selector, ExecConfig config = {});

  order_t order() const noexcept {
    return static_cast<order_t>(modes_.size());
  }
  index_t rank() const noexcept { return rank_; }
  const ModePlan& mode(order_t m) const { return modes_.at(m); }
  const ExecConfig& config() const noexcept { return options_; }

  /// Execute one planned mode-`mode` MTTKRP (selection cost already
  /// sunk; result.selection_seconds stays 0).
  PipelineResult run(const FactorList& factors, order_t mode) const;

  /// Total one-off preprocessing wall time (sorting + selection).
  double prepare_seconds() const noexcept { return prepare_seconds_; }

 private:
  gpusim::SimDevice* dev_;
  const LaunchSelector* selector_;
  index_t rank_;
  ExecConfig options_;
  std::vector<ModePlan> modes_;
  double prepare_seconds_ = 0.0;
};

}  // namespace scalfrag
