#pragma once
// RunInfo — the uniform "what actually ran" record every driver entry
// point embeds in its result (run_pipeline, run_mttkrp_backend,
// cpd_als, tucker_hooi). The decomposition service reports jobs through
// this one shape instead of per-driver result spelunking: resolved
// backend name, the joint-selector decision (when one was consulted),
// one-off prepare cost, simulated device time, and a snapshot of the
// metrics the run recorded.

#include <string>

#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "scalfrag/format_select.hpp"

namespace scalfrag {

struct RunInfo {
  /// Resolved BackendRegistry name of what executed ("auto" reports the
  /// concrete choice, never the literal "auto").
  std::string backend;
  /// The joint (format, launch) decision. Meaningful when
  /// auto_selected; default-constructed otherwise.
  JointChoice choice;
  /// True when the backend came from joint selection rather than from
  /// an explicit ExecConfig::backend(name).
  bool auto_selected = false;
  /// One-off wall-clock preprocessing (sort/plan/selection) this call
  /// paid. Plan replays report 0 — the cost was sunk at plan build.
  double prepare_seconds = 0.0;
  /// Simulated device nanoseconds attributable to this run (0 for
  /// host-only backends).
  sim_ns sim_total_ns = 0;
  /// Snapshot of the run's metrics sink at completion (empty when the
  /// caller passed no sink).
  obs::MetricsSnapshot metrics;
};

}  // namespace scalfrag
