#pragma once
// Umbrella public header: everything an application needs to decompose
// sparse tensors with ScalFrag.
//
//   #include "scalfrag/scalfrag.hpp"
//
//   auto t = scalfrag::make_frostt_tensor("nips");
//   scalfrag::gpusim::SimDevice dev(scalfrag::gpusim::DeviceSpec::rtx3090());
//   scalfrag::AutoTuner tuner(dev.spec());
//   tuner.train();
//   auto selector = tuner.selector();
//   auto cfg = scalfrag::ExecConfig{}.backend("coo").rank(16);
//   auto model = scalfrag::cpd_als(t, cfg, &dev, &selector);
//
// The multi-tenant decomposition service (src/service/) is deliberately
// NOT pulled in here — include "service/service.hpp" explicitly and
// link sf_service when embedding the server.

#include "common/format.hpp"
#include "gpusim/device_group.hpp"
#include "gpusim/engine.hpp"
#include "gpusim/sim_metrics.hpp"
#include "gpusim/trace.hpp"
#include "scalfrag/autotune.hpp"
#include "scalfrag/backend_registry.hpp"
#include "scalfrag/cpd.hpp"
#include "scalfrag/csf_plan.hpp"
#include "scalfrag/exec_config.hpp"
#include "scalfrag/format_select.hpp"
#include "scalfrag/hybrid.hpp"
#include "scalfrag/kernel.hpp"
#include "scalfrag/multi_pipeline.hpp"
#include "scalfrag/pipeline.hpp"
#include "scalfrag/plan.hpp"
#include "scalfrag/segmenter.hpp"
#include "scalfrag/shard.hpp"
#include "scalfrag/streaming.hpp"
#include "scalfrag/tucker.hpp"
#include "gpusim/energy.hpp"
#include "tensor/arith.hpp"
#include "tensor/bcsf.hpp"
#include "tensor/csf.hpp"
#include "tensor/csf_tiled.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/external_sort.hpp"
#include "tensor/fcoo.hpp"
#include "tensor/features.hpp"
#include "tensor/generator.hpp"
#include "tensor/hicoo.hpp"
#include "tensor/io_stream.hpp"
#include "tensor/io_tns.hpp"
#include "tensor/linalg.hpp"
#include "tensor/mttkrp_ref.hpp"
#include "tensor/reorder.hpp"
#include "tensor/spttm.hpp"
#include "tensor/stats.hpp"
