#include "scalfrag/segmenter.hpp"

#include <algorithm>
#include <limits>

#include "common/math_util.hpp"

namespace scalfrag {

nnz_t SegmentPlan::max_nnz() const noexcept {
  nnz_t m = 0;
  for (const auto& s : segments) m = std::max(m, s.nnz());
  return m;
}

namespace {

/// The fused feature pass: one walk over the plan's entry range feeds a
/// TensorFeatures::Builder per segment, restarted at each cut. Fibers
/// and slices are detected exactly as TensorFeatures::extract does on a
/// materialized segment (the first entry after a cut always opens a new
/// slice and fiber), so the emitted features are identical.
void fuse_features(const CooSpan& t, order_t mode, SegmentPlan& plan) {
  double cells = 1.0;
  for (index_t d : t.dims()) cells *= static_cast<double>(d);

  order_t next_mode = mode;  // fiber-defining second sort key
  for (order_t m = 0; m < t.order(); ++m) {
    if (m != mode) {
      next_mode = m;
      break;
    }
  }

  plan.features.reserve(plan.segments.size());
  for (const Segment& seg : plan.segments) {
    TensorFeatures::Builder b(t.order(), mode, t.dim(mode), cells);
    for (nnz_t e = seg.begin; e < seg.end; ++e) {
      const bool new_slice =
          e == seg.begin || t.index(mode, e) != t.index(mode, e - 1);
      const bool new_fiber =
          new_slice ||
          (t.order() > 1 &&
           t.index(next_mode, e) != t.index(next_mode, e - 1));
      b.add(new_slice, new_fiber);
    }
    plan.features.push_back(b.finish());
  }
}

}  // namespace

SegmentPlan make_segments(const CooSpan& t, order_t mode, int num_segments,
                          bool align_to_slices, bool with_features) {
  SF_CHECK(num_segments > 0, "need at least one segment");
  SF_CHECK(t.is_sorted_by_mode(mode), "segmenter requires mode-sorted input");

  SegmentPlan plan;
  plan.mode = mode;
  if (t.nnz() == 0) {
    plan.segments.push_back({0, 0, 0, 0, true});
    if (with_features) fuse_features(t, mode, plan);
    return plan;
  }

  const nnz_t n = t.nnz();
  const auto k = static_cast<nnz_t>(num_segments);
  const nnz_t target = ceil_div(n, k);

  nnz_t cursor = 0;
  while (cursor < n) {
    Segment seg;
    seg.begin = cursor;
    nnz_t cut = std::min<nnz_t>(cursor + target, n);
    if (align_to_slices && cut < n) {
      // Snap forward to the end of the slice containing `cut-1`.
      const index_t slice = t.index(mode, cut - 1);
      nnz_t fwd = cut;
      while (fwd < n && t.index(mode, fwd) == slice) ++fwd;
      // Snapping forward keeps segments ≥ target; only accept if the
      // slice tail is not absurdly long (> one extra target), else
      // split the slice mid-way (non-aligned).
      if (fwd - cursor <= 2 * target) {
        cut = fwd;
      } else {
        seg.slice_aligned = false;
      }
    }
    seg.end = cut;
    seg.first_slice = t.index(mode, seg.begin);
    seg.last_slice = t.index(mode, seg.end - 1);
    plan.segments.push_back(seg);
    cursor = cut;
  }

  // A forward-snapping cut can exhaust the tensor early; that's fine —
  // the plan simply has fewer segments than requested.
  if (with_features) fuse_features(t, mode, plan);
  return plan;
}

std::size_t pipeline_resident_bytes(const CooSpan& t, order_t mode,
                                    index_t rank) {
  SF_CHECK(mode < t.order(), "mode out of range");
  // The output matrix is dims[mode] × F — not dims[0] × F: for any
  // mode != 0 the two differ, and budgets computed against dim(0) are
  // simply wrong. Every factor matrix is also device-resident for the
  // whole pipeline (the executor uploads them all before segment 0).
  std::size_t bytes =
      static_cast<std::size_t>(t.dim(mode)) * rank * sizeof(value_t);
  for (order_t m = 0; m < t.order(); ++m) {
    bytes += static_cast<std::size_t>(t.dim(m)) * rank * sizeof(value_t);
  }
  return bytes;
}

int segments_for_budget(const CooSpan& t, order_t mode, index_t rank,
                        std::size_t budget_bytes) {
  SF_CHECK(budget_bytes > 0, "budget must be positive");
  SF_CHECK(rank > 0, "rank must be positive");
  const std::size_t resident = pipeline_resident_bytes(t, mode, rank);
  SF_CHECK(resident < budget_bytes,
           "budget cannot hold the resident factor and output matrices");
  const std::size_t avail = budget_bytes - resident;
  if (t.nnz() == 0 || t.bytes() <= avail) return 1;

  const std::size_t entry_bytes =
      t.order() * sizeof(index_t) + sizeof(value_t);
  // Slice-aligned cuts may grow a segment to 2x the balanced target, so
  // the per-segment target must be half of what the leftover budget can
  // stage at once.
  const auto max_seg_nnz = static_cast<nnz_t>(avail / entry_bytes);
  SF_CHECK(max_seg_nnz >= 2,
           "budget cannot stage even a two-entry segment after residents");
  const nnz_t target = std::max<nnz_t>(1, max_seg_nnz / 2);
  // Tiny budgets would overflow the int return without this clamp.
  const nnz_t k = std::min<nnz_t>(
      ceil_div(t.nnz(), target),
      static_cast<nnz_t>(std::numeric_limits<int>::max()));
  return static_cast<int>(std::max<nnz_t>(1, k));
}

}  // namespace scalfrag
