#pragma once
// Tensor segmentation (the paper's "new blocking approach", §IV-C).
//
// The mode-sorted COO tensor is cut into nnz-balanced segments; each
// segment is transferred and computed independently by the pipeline.
// Cuts prefer slice boundaries: a slice processed wholly inside one
// segment needs no cross-segment reduction, and the shared-memory
// kernel can privatize its accumulator. The planner also derives the
// segment count from a device-memory budget ("based on the resource
// constraints of hardware ... to reduce memory usage").

#include <vector>

#include "tensor/coo.hpp"
#include "tensor/features.hpp"

namespace scalfrag {

struct Segment {
  nnz_t begin = 0;  // entry range [begin, end) in the sorted tensor
  nnz_t end = 0;
  index_t first_slice = 0;  // mode-index range covered
  index_t last_slice = 0;   // inclusive
  bool slice_aligned = true;  // no slice spans this segment's boundary

  nnz_t nnz() const noexcept { return end - begin; }
};

struct SegmentPlan {
  order_t mode = 0;
  std::vector<Segment> segments;
  /// Per-segment sparsity features, fused into the segmentation walk
  /// (empty unless make_segments ran with with_features). features[i]
  /// equals TensorFeatures::extract on the materialized segment i, at
  /// zero extra passes over the data.
  std::vector<TensorFeatures> features;

  std::size_t size() const noexcept { return segments.size(); }
  /// Max over segments of nnz (load balance quality).
  nnz_t max_nnz() const noexcept;
};

/// Cut `t` (a mode-sorted CooSpan — contiguous or a ModeViews gather
/// view; a CooTensor converts implicitly) into `num_segments`
/// nnz-balanced segments.
/// When `align_to_slices` is set, each cut snaps to the nearest slice
/// boundary unless a single slice exceeds the per-segment target (then
/// the slice is split and flagged non-aligned). With `with_features`,
/// the boundary walk additionally emits each segment's TensorFeatures
/// (one fused pass — no per-segment extract + rescan).
SegmentPlan make_segments(const CooSpan& t, order_t mode, int num_segments,
                          bool align_to_slices = true,
                          bool with_features = false);

/// Device bytes resident for the whole run of a mode-`mode` pipelined
/// MTTKRP at rank `rank`: every factor matrix (all modes stay uploaded)
/// plus the mode's output matrix. Segment staging comes on top.
std::size_t pipeline_resident_bytes(const CooSpan& t, order_t mode,
                                    index_t rank);

/// Smallest segment count such that the pipeline's device footprint for
/// a mode-`mode` MTTKRP fits `budget_bytes`: the resident factors and
/// output (pipeline_resident_bytes) plus one staged segment's COO bytes.
/// Accounts for slice-aligned cuts growing a segment up to 2x the
/// nnz-balanced target, so the realized plan of make_segments(t, mode,
/// k, /*align_to_slices=*/true) actually fits. Throws when the budget
/// cannot hold the residents plus a two-entry segment; the result is
/// clamped so tiny budgets never overflow int.
int segments_for_budget(const CooSpan& t, order_t mode, index_t rank,
                        std::size_t budget_bytes);

}  // namespace scalfrag
