#include "scalfrag/shard.hpp"

#include <algorithm>
#include <optional>

#include "gpusim/transfer.hpp"
#include "parti/parti_kernel.hpp"
#include "scalfrag/kernel.hpp"
#include "scalfrag/pipeline.hpp"

namespace scalfrag {

nnz_t ShardPlan::max_shard_nnz() const noexcept {
  nnz_t m = 0;
  for (const auto& s : shards) m = std::max(m, s.nnz);
  return m;
}

sim_ns ShardPlan::max_shard_pred_ns() const noexcept {
  sim_ns m = 0;
  for (const auto& s : shards) m = std::max(m, s.predicted_ns);
  return m;
}

double ShardPlan::pred_time_imbalance() const noexcept {
  if (shards.empty()) return 1.0;
  sim_ns max = 0;
  sim_ns sum = 0;
  for (const auto& s : shards) {
    max = std::max(max, s.predicted_ns);
    sum += s.predicted_ns;
  }
  if (sum == 0) return 1.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(shards.size());
  return static_cast<double>(max) / mean;
}

ShardPlan make_shard_plan(const gpusim::DeviceGroup& group,
                          const CooSpan& t, order_t mode, index_t rank,
                          const ExecConfig& cfg,
                          const LaunchSelector* selector) {
  SF_CHECK(t.is_sorted_by_mode(mode), "shard planner needs sorted input");
  CooSpan view = t;
  view.assume_sorted_by(mode);
  SF_CHECK(cfg.launch_schedule.empty(),
           "launch_schedule is single-device only; multi-device launches "
           "are predicted per shard from the realized plan");
  const int n_dev = group.size();

  ShardPlan sp;
  sp.mode = mode;
  sp.shards.resize(static_cast<std::size_t>(n_dev));
  for (int d = 0; d < n_dev; ++d) sp.shards[d].device = d;
  if (t.nnz() == 0) return sp;

  // --- global segmentation ---------------------------------------------
  // Auto rule: each device should run a pipeline as deep as the
  // single-device rule would pick, so the global count scales with the
  // group size. Always ask for at least one segment per device; slice
  // snapping may still realize fewer (then trailing shards stay empty).
  std::optional<TensorFeatures> whole;
  int want = cfg.num_segments;
  if (want == 0) {
    whole.emplace(TensorFeatures::extract(view, mode));
    want = auto_segment_count(group.device(0), view, mode, rank, cfg,
                              &*whole) *
           n_dev;
  }
  want = std::max(want, n_dev);
  sp.plan = make_segments(view, mode, want, /*align_to_slices=*/true,
                          /*with_features=*/true);
  const auto n_seg = static_cast<int>(sp.plan.size());
  const nnz_t total = t.nnz();

  // --- per-device throughput weights -----------------------------------
  // Heterogeneous groups: weight each device by the cost model's
  // predicted time for the whole tensor on that device (max of kernel
  // and H2D — the pipelined bottleneck), so shard cuts target equal
  // *time* rather than equal nnz. Uniform groups (or weighted_sharding
  // off) keep unit weights and reproduce the PR 4 integer-ideal cuts
  // exactly.
  std::vector<double> unit_cost(static_cast<std::size_t>(n_dev), 1.0);
  bool uniform_cost = true;
  if (cfg.weighted_sharding && !group.uniform()) {
    if (!whole) whole.emplace(TensorFeatures::extract(view, mode));
    const gpusim::KernelProfile prof =
        mttkrp_profile(*whole, rank, cfg.use_shared_mem);
    for (int d = 0; d < n_dev; ++d) {
      const gpusim::DeviceSpec& spec = group.spec(d);
      gpusim::LaunchConfig lc = cfg.launch_override
                                    ? *cfg.launch_override
                                    : parti::default_launch(spec, total);
      if (cfg.use_shared_mem) {
        lc.shmem_per_block = kernel_shmem_bytes(lc.block, rank);
      }
      const double kern = static_cast<double>(
          group.device(d).cost_model().kernel_ns(lc, prof));
      const double copy =
          static_cast<double>(gpusim::transfer_ns(spec, view.bytes()));
      unit_cost[static_cast<std::size_t>(d)] = std::max(kern, copy);
    }
    for (int d = 1; d < n_dev; ++d) {
      if (unit_cost[static_cast<std::size_t>(d)] != unit_cost[0]) {
        uniform_cost = false;
        break;
      }
    }
  }
  sp.weighted = !uniform_cost;

  // Cumulative nnz boundary after device d. Uniform: PR 4's exact
  // integer formula (cast to double — nnz counts are far below 2^53,
  // so the nearest-cut comparisons below are bit-equal to the integer
  // ones). Weighted: proportional to cumulative throughput 1/cost.
  std::vector<double> ideal_cum(static_cast<std::size_t>(n_dev));
  if (uniform_cost) {
    for (int d = 0; d < n_dev; ++d) {
      ideal_cum[static_cast<std::size_t>(d)] = static_cast<double>(
          total / n_dev * (d + 1) + total % n_dev * (d + 1) / n_dev);
    }
  } else {
    double wsum = 0.0;
    for (int d = 0; d < n_dev; ++d) {
      wsum += 1.0 / unit_cost[static_cast<std::size_t>(d)];
    }
    double wpre = 0.0;
    for (int d = 0; d < n_dev; ++d) {
      wpre += 1.0 / unit_cost[static_cast<std::size_t>(d)];
      ideal_cum[static_cast<std::size_t>(d)] =
          static_cast<double>(total) * (wpre / wsum);
    }
  }

  // --- contiguous balanced partition -----------------------------------
  // Greedy prefix cuts against the ideal cumulative boundary. Contiguity
  // keeps each shard a single [begin, end) view of the sorted parent
  // (one H2D range per device) and keeps slice ownership mostly within
  // one device, so the reduction carries little true sharing.
  int seg = 0;
  nnz_t done = 0;
  for (int d = 0; d < n_dev; ++d) {
    DeviceShard& sh = sp.shards[static_cast<std::size_t>(d)];
    sh.weight = unit_cost[0] / unit_cost[static_cast<std::size_t>(d)];
    sh.seg_begin = seg;
    // Segments remaining must at least cover devices remaining.
    const int max_take = n_seg - seg - (n_dev - 1 - d);
    const double ideal = ideal_cum[static_cast<std::size_t>(d)];
    nnz_t acc = done;
    int take = 0;
    while (take < max_take) {
      const nnz_t next = acc + sp.plan.segments[seg + take].nnz();
      // Stop before the segment that overshoots the boundary harder
      // than staying short undershoots it (classic nearest-cut rule),
      // but always take at least one segment while any remain.
      if (take > 0) {
        if (static_cast<double>(acc) >= ideal) break;
        if (static_cast<double>(next) > ideal &&
            static_cast<double>(next) - ideal >
                ideal - static_cast<double>(acc)) {
          break;
        }
      }
      acc = next;
      ++take;
    }
    seg += take;
    sh.seg_end = seg;
    sh.nnz = acc - done;
    done = acc;
    if (!sh.empty()) {
      sh.begin = sp.plan.segments[sh.seg_begin].begin;
      sh.end = sp.plan.segments[sh.seg_end - 1].end;
    }
  }
  // Trailing segments (nearest-cut can leave a remainder) go to the
  // last device so every segment is owned exactly once.
  if (seg < n_seg) {
    DeviceShard& last = sp.shards.back();
    if (last.empty()) last.seg_begin = seg;
    last.seg_end = n_seg;
    last.begin = sp.plan.segments[last.seg_begin].begin;
    last.end = sp.plan.segments[last.seg_end - 1].end;
    last.nnz = last.end - last.begin;
  }

  // --- per-shard launch prediction -------------------------------------
  // Same precedence as the single-device executor: explicit override,
  // then the DecisionTree selector over fused segment features, then
  // the ParTI-style static heuristic. Sharding realizes much smaller
  // segments than the selector's training corpus, where tree
  // extrapolation can misfire badly — so the selector's pick is
  // sanity-checked against the device cost model and dropped for the
  // static launch when the model says it is slower.
  for (auto& sh : sp.shards) {
    sh.launches.reserve(static_cast<std::size_t>(sh.num_segments()));
    sh.seg_pred_ns.reserve(static_cast<std::size_t>(sh.num_segments()));
    const auto& dev = group.device(sh.device);
    for (int i = sh.seg_begin; i < sh.seg_end; ++i) {
      const Segment& s = sp.plan.segments[static_cast<std::size_t>(i)];
      const TensorFeatures& feat = sp.plan.features[static_cast<std::size_t>(i)];
      if (s.nnz() == 0) {
        sh.launches.push_back({});
        sh.seg_pred_ns.push_back(0);
        continue;
      }
      gpusim::LaunchConfig launch;
      if (cfg.launch_override) {
        launch = *cfg.launch_override;
        if (cfg.use_shared_mem) {
          launch.shmem_per_block = kernel_shmem_bytes(launch.block, rank);
        }
      } else {
        launch = parti::default_launch(dev.spec(), s.nnz());
        if (cfg.use_shared_mem) {
          launch.shmem_per_block = kernel_shmem_bytes(launch.block, rank);
        }
        if (cfg.adaptive_launch && selector != nullptr) {
          const Selection sel = selector->select(feat);
          sh.selection_seconds += sel.inference_seconds;
          gpusim::LaunchConfig cand = sel.config;
          if (cfg.use_shared_mem) {
            cand.shmem_per_block = kernel_shmem_bytes(cand.block, rank);
          }
          const gpusim::KernelProfile prof =
              mttkrp_profile(feat, rank, cfg.use_shared_mem);
          const auto& cm = dev.cost_model();
          if (cm.kernel_ns(cand, prof) < cm.kernel_ns(launch, prof)) {
            launch = cand;
          }
        }
      }
      sh.launches.push_back(launch);
      // Predicted per-segment time on the owner: the slower of the
      // kernel and its H2D copy (the pipeline overlaps them). Feeds
      // the imbalance gauge and the work-stealing victim rule.
      const gpusim::KernelProfile prof =
          mttkrp_profile(feat, rank, cfg.use_shared_mem);
      const sim_ns kern = dev.cost_model().kernel_ns(launch, prof);
      const sim_ns copy = gpusim::transfer_ns(
          dev.spec(), view.subspan(s.begin, s.end).bytes());
      const sim_ns pred = std::max(kern, copy);
      sh.seg_pred_ns.push_back(pred);
      sh.predicted_ns += pred;
    }
  }
  return sp;
}

}  // namespace scalfrag
