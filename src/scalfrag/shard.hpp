#pragma once
// Multi-device sharding planner (AMPED-style scale-out of the paper's
// pipeline): the realized single-tensor segment plan is partitioned
// into one contiguous run of segments per device, balanced by nnz.
// Each device then runs its shard as an independent pipelined timeline
// and the partial outputs are reduced across the peer link
// (gpusim::DeviceGroup models the reduction cost).
//
// Sharding at *segment* granularity (not raw nnz ranges) keeps every
// per-segment invariant the single-device executor relies on: cuts
// prefer slice boundaries, fused per-segment features are reused for
// launch prediction, and the per-shard pipelines replay the exact
// segments the planner saw.

#include <vector>

#include "gpusim/device_group.hpp"
#include "scalfrag/autotune.hpp"
#include "scalfrag/exec_config.hpp"
#include "scalfrag/segmenter.hpp"

namespace scalfrag {

/// One device's contiguous share of the global segment plan.
struct DeviceShard {
  int device = 0;
  int seg_begin = 0;  // segment-index range [seg_begin, seg_end) in the
  int seg_end = 0;    // global ShardPlan::plan
  nnz_t begin = 0;    // entry range [begin, end) in the sorted parent
  nnz_t end = 0;
  nnz_t nnz = 0;

  /// Launch config per owned segment (launches[i] drives segment
  /// seg_begin + i), predicted with the DecisionTree selector over the
  /// fused per-segment features when adaptive launching is on.
  std::vector<gpusim::LaunchConfig> launches;
  double selection_seconds = 0.0;  // host time spent in the selector

  /// Cost-model-predicted time per owned segment on this device
  /// (max of kernel and H2D, the pipelined bottleneck), aligned with
  /// `launches`; feeds the work-stealing victim rule.
  std::vector<sim_ns> seg_pred_ns;
  /// Sum of seg_pred_ns — the shard's predicted busy time.
  sim_ns predicted_ns = 0;
  /// Relative throughput weight the planner cut this shard with
  /// (device 0 == 1.0). 1.0 everywhere for nnz-balanced plans.
  double weight = 1.0;

  int num_segments() const noexcept { return seg_end - seg_begin; }
  bool empty() const noexcept { return seg_begin == seg_end; }
};

struct ShardPlan {
  order_t mode = 0;
  SegmentPlan plan;                 // global realized segmentation
  std::vector<DeviceShard> shards;  // one per device, in device order
  /// True when cost-weighted (uneven-by-design) cuts were used; nnz
  /// balance is then *not* the quality metric — read
  /// pred_time_imbalance() instead of max_shard_nnz().
  bool weighted = false;

  /// Max over shards of nnz. Only meaningful as a balance metric for
  /// nnz-balanced plans (weighted == false); heterogeneous plans are
  /// uneven in nnz on purpose.
  nnz_t max_shard_nnz() const noexcept;
  /// Max over shards of predicted shard time.
  sim_ns max_shard_pred_ns() const noexcept;
  /// max / mean over *all* devices of predicted shard time (1.0 =
  /// perfectly balanced; idle devices count toward the mean). This is
  /// the balance metric that stays honest for weighted plans.
  double pred_time_imbalance() const noexcept;
};

/// Partition a mode-sorted view across `group`'s devices. Segment
/// count: ExecConfig::num_segments when set, otherwise the
/// single-device auto rule scaled by the device count (each device
/// runs an auto-depth pipeline). Devices beyond the realized segment
/// count receive empty shards. `selector` may be null — launch
/// prediction then falls back to the static heuristic, exactly like
/// the single-device executor. cfg.launch_schedule must be empty: a
/// flat schedule cannot be mapped onto per-device plans.
ShardPlan make_shard_plan(const gpusim::DeviceGroup& group,
                          const CooSpan& t, order_t mode, index_t rank,
                          const ExecConfig& cfg,
                          const LaunchSelector* selector = nullptr);

}  // namespace scalfrag
