#include "scalfrag/streaming.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <istream>
#include <utility>

#include "obs/metrics.hpp"
#include "tensor/external_sort.hpp"
#include "tensor/io_stream.hpp"
#include "tensor/io_tns.hpp"

namespace scalfrag {

namespace {

constexpr const char* kWindowsCounter = "oocore/windows";
constexpr const char* kChunksCounter = "oocore/chunks";

struct BudgetSplit {
  std::size_t window_bytes;
  std::size_t chunk_bytes;
};

/// A quarter of the budget funds the ingest window (the window itself
/// plus sort_with's permutation + apply scratch roughly double it),
/// half funds the execution chunk; the rest absorbs merge read buffers
/// and the output accumulator. Floors keep degenerate budgets runnable.
BudgetSplit split_budget(const ExecConfig& cfg) {
  const std::size_t budget = cfg.memory_budget_bytes != 0
                                 ? cfg.memory_budget_bytes
                                 : kDefaultMemoryBudget;
  return {std::max<std::size_t>(std::size_t{1} << 10, budget / 4),
          std::max<std::size_t>(std::size_t{1} << 10, budget / 2)};
}

/// Merge the spilled runs and run every chunk through the classic
/// pipeline, accumulating the per-chunk outputs elementwise. Chunks are
/// slice-aligned, so each output row comes from exactly one chunk and
/// the accumulation adds it to exact zeros — bit-preserving.
StreamingResult execute_sorted(gpusim::SimDevice& dev,
                               const LaunchSelector* selector,
                               ExternalSorter& sorter, std::size_t windows,
                               const std::vector<index_t>& discovered,
                               const FactorList& factors, order_t mode,
                               const ExecConfig& cfg,
                               std::size_t chunk_bytes) {
  const order_t order = static_cast<order_t>(discovered.size());
  SF_CHECK(order > 0, "cannot stream an empty tensor source");
  SF_CHECK(mode < order, "mode out of range");
  SF_CHECK(factors.size() == discovered.size(),
           "factor count must match tensor order");

  // Output height follows the factors (the in-core convention); the
  // data may legitimately leave trailing slices empty.
  std::vector<index_t> dims(order);
  for (order_t m = 0; m < order; ++m) {
    SF_CHECK(factors.at(m).rows() >= discovered[m],
             "mode-" + std::to_string(m) + " factor has " +
                 std::to_string(factors.at(m).rows()) +
                 " rows but the data reaches index " +
                 std::to_string(discovered[m]));
    dims[m] = factors.at(m).rows();
  }
  const index_t rank = factors.at(mode).cols();

  ExecConfig sub = cfg;
  sub.backend_name = "coo";  // each chunk runs the classic pipeline
  sub.validate();

  StreamingResult res;
  res.windows = windows;
  res.entries = sorter.entries();
  res.output = DenseMatrix(dims[mode], rank);
  obs::MetricsRegistry::ScopedResident acc_resident(
      cfg.metrics_sink, kLoaderResidentGauge, res.output.bytes());

  sorter.merge(dims, chunk_bytes, [&](CooTensor&& chunk) {
    obs::MetricsRegistry::ScopedResident chunk_resident(
        cfg.metrics_sink, kLoaderResidentGauge, chunk.bytes());
    CooSpan view = chunk.span();
    view.assume_sorted_by(mode);  // the merge emits mode-sort order
    PipelineResult pr =
        run_pipeline(dev, view, factors, mode, sub, selector);
    res.total_ns += pr.total_ns;
    ++res.chunks;
    value_t* acc = res.output.data();
    const value_t* part = pr.output.data();
    for (std::size_t i = 0; i < res.output.size(); ++i) acc[i] += part[i];
  });

  res.spill_bytes = sorter.spill_bytes();
  res.merge_passes = sorter.merge_passes();
  if (cfg.metrics_sink != nullptr) {
    cfg.metrics_sink->count(kWindowsCounter, windows);
    cfg.metrics_sink->count(kChunksCounter, res.chunks);
  }
  return res;
}

}  // namespace

StreamingResult StreamingPlan::run(const CooSpan& t,
                                   const FactorList& factors, order_t mode,
                                   const ExecConfig& cfg) {
  cfg.validate();
  const order_t order = t.order();
  SF_CHECK(order > 0, "cannot stream a null span");
  SF_CHECK(mode < order, "mode out of range");

  const BudgetSplit budget = split_budget(cfg);
  ExternalSortOptions sopt;
  sopt.mode = mode;
  sopt.metrics = cfg.metrics_sink;
  ExternalSorter sorter(sopt);

  const std::size_t entry_bytes =
      order * sizeof(index_t) + sizeof(value_t);
  const nnz_t cap =
      std::max<nnz_t>(1, budget.window_bytes / entry_bytes);

  std::size_t windows = 0;
  std::array<index_t, kMaxOrder> coord{};
  nnz_t e = 0;
  while (e < t.nnz()) {
    const nnz_t end = std::min<nnz_t>(t.nnz(), e + cap);
    obs::MetricsRegistry::ScopedResident window_resident(
        cfg.metrics_sink, kLoaderResidentGauge,
        static_cast<std::size_t>(end - e) * entry_bytes);
    CooTensor window(t.dims());
    window.reserve(end - e);
    for (; e < end; ++e) {
      for (order_t m = 0; m < order; ++m) coord[m] = t.index(m, e);
      window.push(std::span<const index_t>(coord.data(), order),
                  t.value(e));
    }
    window_resident.release();  // add_window registers its own footprint
    sorter.add_window(std::move(window));
    ++windows;
  }
  return execute_sorted(*dev_, selector_, sorter, windows, t.dims(),
                        factors, mode, cfg, budget.chunk_bytes);
}

StreamingResult StreamingPlan::run_stream(std::istream& in,
                                          const FactorList& factors,
                                          order_t mode,
                                          const ExecConfig& cfg) {
  cfg.validate();
  const BudgetSplit budget = split_budget(cfg);
  ExternalSortOptions sopt;
  sopt.mode = mode;
  sopt.metrics = cfg.metrics_sink;
  ExternalSorter sorter(sopt);

  TnsChunkOptions ropt;
  ropt.max_chunk_bytes = budget.window_bytes;
  ropt.metrics = cfg.metrics_sink;
  TnsChunkReader reader(in, ropt);

  std::size_t windows = 0;
  CooTensor window;
  while (reader.next(window)) {
    sorter.add_window(std::move(window));
    ++windows;
  }
  return execute_sorted(*dev_, selector_, sorter, windows, reader.dims(),
                        factors, mode, cfg, budget.chunk_bytes);
}

StreamingResult StreamingPlan::run_file(const std::string& path,
                                        const FactorList& factors,
                                        order_t mode,
                                        const ExecConfig& cfg) {
  std::ifstream in(path);
  SF_CHECK(in.good(), "cannot open " + path);
  return run_stream(in, factors, mode, cfg);
}

}  // namespace scalfrag
