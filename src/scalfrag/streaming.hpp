#pragma once
// Out-of-core MTTKRP driver — plans and executes one mode-n MTTKRP
// segment-at-a-time under a host-memory budget (docs/outofcore.md).
//
// The in-core drivers assume the whole mode-sorted tensor is resident;
// StreamingPlan removes that assumption without touching the kernels:
//
//   ingest   bounded windows   (TnsChunkReader, or windowing a span)
//   order    external merge sort per window → spill → k-way merge
//   execute  slice-aligned sorted chunks, each through run_pipeline
//   combine  per-chunk outputs accumulated elementwise
//
// Chunks never split a mode slice, so each output row is produced by
// exactly one chunk: the elementwise combine adds every row to exact
// zeros, and for duplicate-free input under a non-reassociating host
// strategy (Serial or SliceOwner) the final matrix is bit-identical to
// the in-core "coo" backend's. Peak residency is bounded by
// ExecConfig::memory_budget_bytes (0 = 64 MiB): a quarter funds the
// ingest window and its sort scratch, half funds the execution chunk,
// and the remainder absorbs merge line buffers and the accumulator.
//
// "coo_stream" in the backend registry routes here, so any driver can
// opt in by name; the file/stream entry points below exist for tensors
// that never fit in memory at all.

#include <iosfwd>
#include <string>

#include "scalfrag/pipeline.hpp"

namespace scalfrag {

/// Default ExecConfig::memory_budget_bytes when the config leaves it 0.
inline constexpr std::size_t kDefaultMemoryBudget = std::size_t{64} << 20;

struct StreamingResult {
  DenseMatrix output;
  /// Ingest windows spilled (== sorted runs before merge folding).
  std::size_t windows = 0;
  /// Slice-aligned execution chunks the merge delivered.
  std::size_t chunks = 0;
  nnz_t entries = 0;
  std::uint64_t spill_bytes = 0;
  std::uint64_t merge_passes = 0;
  /// Summed simulated device time across the per-chunk pipelines.
  sim_ns total_ns = 0;
};

class StreamingPlan {
 public:
  explicit StreamingPlan(gpusim::SimDevice& dev,
                         const LaunchSelector* selector = nullptr)
      : dev_(&dev), selector_(selector) {}

  /// Out-of-core run over a resident tensor view (the "coo_stream"
  /// registry backend). `t` need not be mode-sorted — ordering is the
  /// sorter's job — but must match the factor shapes.
  StreamingResult run(const CooSpan& t, const FactorList& factors,
                      order_t mode, const ExecConfig& cfg = {});

  /// Out-of-core run straight from a .tns stream/file: one pass of
  /// chunked ingestion, so the tensor is never resident at once. Mode
  /// sizes are discovered while reading; each factor must have at least
  /// as many rows as its discovered mode size (output height follows
  /// the factors, as in every in-core driver).
  StreamingResult run_stream(std::istream& in, const FactorList& factors,
                             order_t mode, const ExecConfig& cfg = {});
  StreamingResult run_file(const std::string& path,
                           const FactorList& factors, order_t mode,
                           const ExecConfig& cfg = {});

 private:
  gpusim::SimDevice* dev_;
  const LaunchSelector* selector_;
};

}  // namespace scalfrag
