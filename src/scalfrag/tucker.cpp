#include "scalfrag/tucker.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "parti/parti_kernel.hpp"
#include "scalfrag/format_select.hpp"
#include "scalfrag/kernel.hpp"
#include "tensor/features.hpp"
#include "tensor/linalg.hpp"

namespace scalfrag {

namespace {

/// Kronecker row of the non-`mode` factor rows for one non-zero:
/// out[col(r…)] = Π_{m≠mode} U⁽ᵐ⁾(i_m, r_m), mixed radix with the
/// *highest* non-mode mode fastest (consistent everywhere below).
void kron_row(const CooTensor& x, const FactorList& factors, order_t mode,
              nnz_t e, std::vector<value_t>& out) {
  out.assign(out.size(), value_t{1});
  std::size_t stride = 1;
  // Walk modes from highest to lowest so `stride` grows as radices do.
  for (int m = static_cast<int>(x.order()) - 1; m >= 0; --m) {
    if (static_cast<order_t>(m) == mode) continue;
    const index_t r_m = factors[m].cols();
    const value_t* frow = factors[m].row(x.index(static_cast<order_t>(m), e));
    // out[col] *= frow[(col / stride) % r_m]
    for (std::size_t col = 0; col < out.size(); ++col) {
      out[col] *= frow[(col / stride) % r_m];
    }
    stride *= r_m;
  }
}

}  // namespace

namespace {

void ttm_chain_range(const CooTensor& x, const FactorList& factors,
                     order_t mode, nnz_t begin, nnz_t end, DenseMatrix& w,
                     std::vector<value_t>& krow) {
  for (nnz_t e = begin; e < end; ++e) {
    kron_row(x, factors, mode, e, krow);
    const value_t val = x.value(e);
    value_t* wrow = w.row(x.index(mode, e));
    for (std::size_t c = 0; c < krow.size(); ++c) wrow[c] += val * krow[c];
  }
}

}  // namespace

DenseMatrix ttm_chain_all_but(const CooTensor& x, const FactorList& factors,
                              order_t mode, const HostExecParams& opt) {
  SF_CHECK(mode < x.order(), "mode out of range");
  SF_CHECK(factors.size() == x.order(), "one factor per mode");
  std::size_t s = 1;
  for (order_t m = 0; m < x.order(); ++m) {
    SF_CHECK(factors[m].rows() == x.dim(m), "factor row count mismatch");
    if (m != mode) s *= factors[m].cols();
  }
  SF_CHECK(s > 0 && s <= (1u << 20), "projected width out of range");

  DenseMatrix w(x.dim(mode), static_cast<index_t>(s));

  // Fixed chunk grid, reduced in chunk order: parallel results are
  // deterministic for a given grain (chunk boundaries depend only on
  // nnz and grain, never on scheduling). Chunk partials cost
  // dim(mode)×s each, so the grid is kept small.
  const nnz_t grain = std::max<nnz_t>(opt.grain_nnz, 1);
  const nnz_t by_grain = (x.nnz() + grain - 1) / grain;
  const std::size_t n_chunks =
      static_cast<std::size_t>(std::min<nnz_t>(by_grain, 8));
  const bool serial = opt.strategy == HostStrategy::Serial ||
                      n_chunks <= 1 || ThreadPool::on_worker_thread();
  if (serial) {
    std::vector<value_t> krow(s);
    ttm_chain_range(x, factors, mode, 0, x.nnz(), w, krow);
    return w;
  }

  std::vector<DenseMatrix> partials(n_chunks);
  const nnz_t per = (x.nnz() + n_chunks - 1) / n_chunks;
  ThreadPool::global().parallel_for(
      0, n_chunks, [&](std::size_t lo, std::size_t hi) {
        std::vector<value_t> krow(s);
        for (std::size_t c = lo; c < hi; ++c) {
          partials[c] = DenseMatrix(x.dim(mode), static_cast<index_t>(s));
          const nnz_t b = static_cast<nnz_t>(c) * per;
          const nnz_t e = std::min<nnz_t>(b + per, x.nnz());
          ttm_chain_range(x, factors, mode, b, e, partials[c], krow);
        }
      });
  for (const auto& p : partials) {
    value_t* out = w.data();
    const value_t* in = p.data();
    for (std::size_t i = 0; i < p.size(); ++i) out[i] += in[i];
  }
  return w;
}

TuckerResult tucker_hooi(const CooTensor& input, const ExecConfig& cfg,
                         gpusim::SimDevice* dev, const JointSelector* joint) {
  SF_CHECK(input.nnz() > 0, "cannot decompose an empty tensor");
  SF_CHECK(cfg.tucker_core_dims.size() == input.order(),
           "need one core dimension per mode");
  cfg.validate();
  const std::vector<index_t>& core_dims = cfg.tucker_core_dims;
  const int max_iters = cfg.decomp_max_iters > 0 ? cfg.decomp_max_iters : 15;
  const double tol = cfg.decomp_tol >= 0.0 ? cfg.decomp_tol : 1e-5;
  const std::uint64_t seed = cfg.decomp_seed != 0 ? cfg.decomp_seed : 7;
  obs::MetricsRegistry* const met = cfg.metrics_sink;
  const HostExecParams host = cfg.host_for_run();
  const order_t order = input.order();

  // One canonical sort up front (the same ordering ModeViews keys on):
  // every projection then walks mode-0-grouped entries, so output rows
  // and factor rows are revisited in runs instead of at random. Paid
  // once for the whole HOOI loop — never one copy per mode.
  std::optional<CooTensor> canonical;
  if (!input.is_sorted_by_mode(0)) {
    std::optional<obs::MetricsRegistry::ScopedSpan> span;
    if (met != nullptr) span.emplace(*met, "tucker/sort_canonical");
    canonical.emplace(input);
    canonical->sort_by_mode(0);
  }
  const CooTensor& x = canonical ? *canonical : input;
  for (order_t n = 0; n < order; ++n) {
    SF_CHECK(core_dims[n] > 0 && core_dims[n] <= x.dim(n),
             "core dims must be in [1, mode size]");
    std::size_t s = 1;
    for (order_t m = 0; m < order; ++m) {
      if (m != n) s *= core_dims[m];
    }
    SF_CHECK(core_dims[n] <= s,
             "core dim exceeds the rank the projection can provide");
  }

  // Device-timeline modeling (the fix for service jobs silently
  // constructing private devices): with a shared `dev`, every
  // projection runs as a cost-modeled kernel on its timeline. The
  // launch-relevant inputs are factor-independent, so per-mode features
  // and launches are computed once up front. A mode-n projection has
  // the same per-nnz shape as a rank-s MTTKRP with s = Π_{m≠n} r_m,
  // which is exactly what mttkrp_profile models.
  std::vector<TensorFeatures> mode_feats;
  std::vector<gpusim::LaunchConfig> mode_launch;
  std::vector<gpusim::KernelProfile> mode_prof;
  gpusim::StreamId dev_stream{};
  if (dev != nullptr) {
    std::optional<obs::MetricsRegistry::ScopedSpan> span;
    if (met != nullptr) span.emplace(*met, "tucker/launch_prep");
    dev->reset_timeline();
    dev_stream = dev->create_stream();
    for (order_t n = 0; n < order; ++n) {
      std::size_t s = 1;
      for (order_t m = 0; m < order; ++m) {
        if (m != n) s *= core_dims[m];
      }
      const auto width = static_cast<index_t>(s);
      mode_feats.push_back(TensorFeatures::extract(x, n));
      const JointChoice choice =
          joint != nullptr
              ? joint->choose(mode_feats.back(), width)
              : heuristic_joint_choice(mode_feats.back(), width);
      mode_launch.push_back(choice.has_launch
                                ? choice.launch
                                : parti::default_launch(dev->spec(), x.nnz()));
      mode_prof.push_back(
          mttkrp_profile(mode_feats.back(), width, /*use_shared_mem=*/false));
    }
  }

  TuckerResult res;
  Rng rng(seed);
  for (order_t n = 0; n < order; ++n) {
    DenseMatrix u(x.dim(n), core_dims[n]);
    u.randomize(rng);
    linalg::gram_schmidt(u, rng.next_u64());
    res.factors.push_back(std::move(u));
  }

  // Projection wrapper: host compute always (numerics independent of
  // the device), charged to the device timeline when one is shared.
  auto project = [&](order_t n) -> DenseMatrix {
    if (dev == nullptr) return ttm_chain_all_but(x, res.factors, n, host);
    DenseMatrix w;
    dev->launch_kernel(
        dev_stream, mode_launch[n], mode_prof[n],
        [&] { w = ttm_chain_all_but(x, res.factors, n, host); },
        "tucker projection mode " + std::to_string(n));
    return w;
  };

  double norm_x_sq = 0.0;
  for (value_t v : x.values()) {
    norm_x_sq += static_cast<double>(v) * static_cast<double>(v);
  }
  const double norm_x = std::sqrt(norm_x_sq);

  double prev_fit = -1.0;
  for (int it = 0; it < max_iters; ++it) {
    std::optional<obs::MetricsRegistry::ScopedSpan> it_span;
    if (met != nullptr) it_span.emplace(*met, "tucker/iteration");
    for (order_t n = 0; n < order; ++n) {
      DenseMatrix w;
      {
        std::optional<obs::MetricsRegistry::ScopedSpan> span;
        if (met != nullptr) span.emplace(*met, "tucker/projection");
        w = project(n);
      }
      // Top-rₙ left singular vectors of W via the small Gram matrix:
      // WᵀW = V Σ² Vᵀ  →  U = W V Σ⁻¹ (columns sorted by σ desc).
      const DenseMatrix g = linalg::gram(w);
      DenseMatrix evec;
      const auto evals = linalg::jacobi_eigen_symmetric(g, evec);
      std::vector<index_t> order_idx(evals.size());
      std::iota(order_idx.begin(), order_idx.end(), index_t{0});
      std::sort(order_idx.begin(), order_idx.end(),
                [&](index_t a, index_t b) { return evals[a] > evals[b]; });

      DenseMatrix u(x.dim(n), core_dims[n]);
      for (index_t k = 0; k < core_dims[n]; ++k) {
        const index_t src = order_idx[k];
        const double sigma = std::sqrt(std::max(0.0, evals[src]));
        if (sigma > 1e-8) {
          for (index_t i = 0; i < u.rows(); ++i) {
            double dot = 0.0;
            for (index_t c = 0; c < w.cols(); ++c) {
              dot += static_cast<double>(w(i, c)) * evec(c, src);
            }
            u(i, k) = static_cast<value_t>(dot / sigma);
          }
        } else {
          // Deficient direction: random fill, fixed by Gram-Schmidt.
          for (index_t i = 0; i < u.rows(); ++i) {
            u(i, k) = static_cast<value_t>(rng.normal());
          }
        }
      }
      linalg::gram_schmidt(u, rng.next_u64());
      res.factors[n] = std::move(u);
    }

    // Core + fit. G = X ×_1 U¹ᵀ ⋯: reuse the projection of mode 0 and
    // contract the remaining mode-0 factor.
    const DenseMatrix w0 = project(0);
    const DenseMatrix core_mat = linalg::matmul_tn(res.factors[0], w0);
    double norm_g_sq = 0.0;
    for (std::size_t i = 0; i < core_mat.size(); ++i) {
      norm_g_sq += static_cast<double>(core_mat.data()[i]) *
                   static_cast<double>(core_mat.data()[i]);
    }
    const double resid = std::sqrt(std::max(0.0, norm_x_sq - norm_g_sq));
    const double fit = 1.0 - resid / norm_x;
    res.fit_history.push_back(fit);
    res.iterations = it + 1;
    if (prev_fit >= 0.0 && std::abs(fit - prev_fit) < tol) break;
    prev_fit = fit;
  }

  // Materialize the core tensor from the final factors. core_mat is
  // r₀ × Π_{m>0} r_m with the same mixed-radix layout (highest mode
  // fastest) DenseTensor uses — a direct copy.
  const DenseMatrix w0 = project(0);
  const DenseMatrix core_mat = linalg::matmul_tn(res.factors[0], w0);
  res.core = DenseTensor(core_dims);
  SF_ASSERT(res.core.size() == core_mat.size(), "core layout mismatch");
  std::copy(core_mat.data(), core_mat.data() + core_mat.size(),
            res.core.data());

  res.final_fit = res.fit_history.empty() ? 0.0 : res.fit_history.back();
  if (dev != nullptr) {
    res.projection_sim_ns = dev->synchronize();
  }
  res.info.backend = "tucker_hooi";
  res.info.sim_total_ns = res.projection_sim_ns;
  if (met != nullptr) {
    met->count("tucker/runs");
    met->count("tucker/iterations",
               static_cast<std::uint64_t>(res.iterations));
    met->set("tucker/final_fit", res.final_fit);
    if (dev != nullptr) {
      met->set("tucker/projection_sim_ns",
               static_cast<double>(res.projection_sim_ns));
    }
    res.info.metrics = met->snapshot();
  }
  return res;
}

double tucker_predict(const TuckerResult& model,
                      std::span<const index_t> coord) {
  const order_t order = model.core.order();
  SF_CHECK(coord.size() == order, "coordinate arity");
  for (order_t n = 0; n < order; ++n) {
    SF_CHECK(coord[n] < model.factors[n].rows(), "coordinate out of range");
  }
  // Σ over the core, multiplying each core entry by its factor weights.
  std::vector<index_t> r(order, 0);
  double s = 0.0;
  for (;;) {
    double prod = model.core.at(std::span<const index_t>(r.data(), order));
    for (order_t n = 0; n < order; ++n) {
      prod *= model.factors[n](coord[n], r[n]);
    }
    s += prod;
    // Mixed-radix increment (last mode fastest, matching DenseTensor).
    int n = static_cast<int>(order) - 1;
    while (n >= 0 && ++r[n] == model.core.dims()[n]) {
      r[n] = 0;
      --n;
    }
    if (n < 0) break;
  }
  return s;
}

}  // namespace scalfrag
