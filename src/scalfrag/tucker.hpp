#pragma once
// Sparse Tucker decomposition via HOOI (higher-order orthogonal
// iteration) — the second decomposition ParTI ships ("SpCPD, sparse
// Tucker decomposition", paper §V-A3).
//
// Model: X ≈ G ×_1 U⁽¹⁾ ×_2 U⁽²⁾ ⋯ ×_N U⁽ᴺ⁾ with orthonormal factor
// matrices U⁽ⁿ⁾ ∈ R^{Iₙ×rₙ} and a small dense core G ∈ R^{r₁×⋯×r_N}.
//
// HOOI iterates: for each mode n, project X onto all other factors
// (a TTM chain, realized here as one fused sparse kernel producing
// Wₙ = X₍ₙ₎ (⊗_{m≠n} U⁽ᵐ⁾)), then set U⁽ⁿ⁾ to Wₙ's top-rₙ left
// singular vectors. Because the factors are orthonormal, the fit is
// computable from ‖G‖ alone: ‖X−X̂‖² = ‖X‖² − ‖G‖².
//
// Configuration is one ExecConfig: core dims / max_iters / tol / seed
// through the decomposition knobs (core_dims({...}).max_iters(n)).
// TuckerOptions survives below only as a deprecated conversion shim.

#include "gpusim/engine.hpp"
#include "scalfrag/exec_config.hpp"
#include "scalfrag/run_info.hpp"
#include "tensor/coo.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {

class JointSelector;

/// Legacy Tucker options. Thin conversion shim: every field maps onto
/// an ExecConfig decomposition knob (see docs/api.md). In-tree code
/// must not use it — CI builds with -Werror=deprecated-declarations.
struct [[deprecated(
    "use scalfrag::ExecConfig core_dims()/max_iters()/tol()/seed() "
    "(docs/api.md)")]] TuckerOptions {
  /// Core size per mode (rₙ); must satisfy rₙ ≤ Iₙ and
  /// rₙ ≤ Π_{m≠n} r_m (else Wₙ cannot have rank rₙ).
  std::vector<index_t> core_dims;
  int max_iters = 15;
  double tol = 1e-5;
  std::uint64_t seed = 7;
  ExecConfig exec;

  operator ExecConfig() const {
    ExecConfig cfg = exec;
    cfg.tucker_core_dims = core_dims;
    cfg.decomp_max_iters = max_iters;
    cfg.decomp_tol = tol;
    cfg.decomp_seed = seed;
    return cfg;
  }
};

struct TuckerResult {
  FactorList factors;  // orthonormal, one per mode
  DenseTensor core;
  std::vector<double> fit_history;
  double final_fit = 0.0;
  int iterations = 0;

  /// Simulated accelerator time across all projection kernels (0 when
  /// no device was passed — the run was host-only).
  sim_ns projection_sim_ns = 0;

  /// Uniform driver record (scalfrag/run_info.hpp).
  RunInfo info;
};

/// Run HOOI on `x` under `cfg` (core dims from cfg.tucker_core_dims).
/// Throws on inconsistent core dims.
///
/// The projection kernel always computes on the host engine
/// (cfg.threads/grain/strategy; strategy Serial reproduces the
/// single-threaded chain bit-exactly) — numerics are independent of
/// `dev`. When a shared `dev` is passed, each projection additionally
/// runs as a cost-modeled kernel on that device's timeline (the launch
/// predicted by `joint` from per-mode features when given), so service
/// jobs account simulated time against the shared DeviceGroup instead
/// of silently constructing private devices.
TuckerResult tucker_hooi(const CooTensor& x, const ExecConfig& cfg = {},
                         gpusim::SimDevice* dev = nullptr,
                         const JointSelector* joint = nullptr);

/// Reconstruct one entry: X̂(i…) = Σ_r G(r…) Π_n U⁽ⁿ⁾(i_n, r_n).
double tucker_predict(const TuckerResult& model,
                      std::span<const index_t> coord);

/// The fused projection kernel: Wₙ = X₍ₙ₎ (⊗_{m≠n} U⁽ᵐ⁾), i.e.
/// Wₙ(i_n, col(r…)) = Σ_{x∈nnz sliced at i_n} val · Π_{m≠n} U⁽ᵐ⁾(i_m, r_m),
/// with col() the mixed-radix index over (r_m)_{m≠n} in increasing mode
/// order. Exposed for testing and for building other TTM chains. Runs
/// on the host engine: non-Serial strategies split the non-zero stream
/// into a fixed chunk grid reduced in chunk order, so the result is
/// deterministic for a given grain (but reassociated vs Serial).
DenseMatrix ttm_chain_all_but(const CooTensor& x, const FactorList& factors,
                              order_t mode, const HostExecParams& opt = {});

}  // namespace scalfrag
