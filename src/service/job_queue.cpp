#include "service/job_queue.hpp"

#include "common/error.hpp"

namespace scalfrag::service {

void JobQueue::push(QueuedJob job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    SF_CHECK(!closed_, "cannot submit to a closed job queue");
    Tenant* t = nullptr;
    for (auto& cand : tenants_) {
      if (cand.name == job.spec.tenant) {
        t = &cand;
        break;
      }
    }
    if (t == nullptr) {
      Tenant fresh;
      fresh.name = job.spec.tenant;
      fresh.weight = job.spec.weight < 1 ? 1 : job.spec.weight;
      tenants_.push_back(std::move(fresh));
      t = &tenants_.back();
    }
    t->fifo.push_back(std::move(job));
    ++size_;
  }
  cv_.notify_all();
}

JobQueue::Tenant* JobQueue::pick_locked() {
  // Smooth WRR over tenants that currently have work: each active
  // tenant's current += weight, the max-current tenant wins (first-seen
  // order breaks ties) and pays back the active total. Tenants with
  // empty FIFOs neither accumulate nor compete, so a returning tenant
  // does not burst from credit saved while idle.
  std::int64_t active_total = 0;
  Tenant* best = nullptr;
  for (auto& t : tenants_) {
    if (t.fifo.empty()) continue;
    active_total += t.weight;
    t.current += t.weight;
    if (best == nullptr || t.current > best->current) best = &t;
  }
  if (best != nullptr) best->current -= active_total;
  return best;
}

std::optional<QueuedJob> JobQueue::pop_blocking() {
  std::unique_lock<std::mutex> lock(mu_);
  // Closed queues drain even while paused (shutdown overrides pause).
  cv_.wait(lock, [&] { return (!paused_ && size_ > 0) || closed_; });
  if (size_ == 0 && closed_) return std::nullopt;
  Tenant* t = pick_locked();
  SF_CHECK(t != nullptr, "WRR pick failed on a non-empty queue");
  QueuedJob job = std::move(t->fifo.front());
  t->fifo.pop_front();
  --size_;
  return job;
}

void JobQueue::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void JobQueue::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

std::vector<std::string> JobQueue::tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& t : tenants_) names.push_back(t.name);
  return names;
}

}  // namespace scalfrag::service
