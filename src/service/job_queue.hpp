#pragma once
// JobQueue — the multi-tenant admission queue feeding the service
// scheduler: per-tenant FIFOs multiplexed by smooth weighted round
// robin (the nginx/LVS algorithm), so a weight-3 tenant gets three
// dispatches for every one a weight-1 tenant gets, interleaved
// (A A B A …) rather than bursted (A A A B …).
//
// Starvation-freedom: every tenant with queued work has strictly
// increasing current-weight, so it is picked at least once per
// sum-of-active-weights dispatches; within one tenant jobs leave in
// submission order. Both properties are what tests/test_service.cpp
// asserts under a 2-tenant weighted load.
//
// pop_blocking() is the scheduler's only entry point; pause() parks it
// (used by run_batch to make the dispatch order independent of
// submission timing) and close() drains: queued jobs still pop, then
// nullopt signals shutdown.

#include <cstdint>
#include <deque>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "service/job_spec.hpp"

namespace scalfrag::service {

struct QueuedJob {
  std::uint64_t id = 0;
  JobSpec spec;
  /// Wall-clock submit stamp (steady epoch), for queue-wait metrics.
  std::uint64_t submit_ns = 0;
};

class JobQueue {
 public:
  /// Enqueue under the spec's tenant. First submission of a tenant
  /// fixes the tenant's WRR weight; later jobs' weight fields are
  /// ignored (documented in docs/service.md).
  void push(QueuedJob job);

  /// Next job by smooth WRR, blocking while the queue is empty or
  /// paused. Returns nullopt only when closed and fully drained.
  std::optional<QueuedJob> pop_blocking();

  /// Park pop_blocking() until resume(); already-queued and newly
  /// pushed jobs wait.
  void pause();
  void resume();

  /// No further pushes; queued jobs still drain through pop_blocking.
  void close();
  bool closed() const;

  std::size_t size() const;
  /// Tenants in first-seen order (stable tie-break order of the WRR).
  std::vector<std::string> tenants() const;

 private:
  struct Tenant {
    std::string name;
    int weight = 1;
    // Smooth WRR state: bumped by `weight` each round the tenant has
    // work, decremented by the active total when picked.
    std::int64_t current = 0;
    std::deque<QueuedJob> fifo;
  };

  Tenant* pick_locked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Tenant> tenants_;  // first-seen order
  std::size_t size_ = 0;
  bool paused_ = false;
  bool closed_ = false;
};

}  // namespace scalfrag::service
