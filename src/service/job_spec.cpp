#include "service/job_spec.hpp"

#include "common/error.hpp"

namespace scalfrag::service {

const char* job_kind_name(JobKind k) {
  switch (k) {
    case JobKind::Mttkrp:
      return "mttkrp";
    case JobKind::Cpd:
      return "cpd";
    case JobKind::Tucker:
      return "tucker";
  }
  return "?";
}

JobKind job_kind_from_name(const std::string& name) {
  if (name == "mttkrp") return JobKind::Mttkrp;
  if (name == "cpd") return JobKind::Cpd;
  if (name == "tucker") return JobKind::Tucker;
  throw Error("unknown job kind '" + name + "' (mttkrp|cpd|tucker)");
}

void JobSpec::validate() const {
  SF_CHECK(!tenant.empty(), "job tenant must be non-empty");
  SF_CHECK(weight >= 1, "tenant weight must be >= 1");
  SF_CHECK(!tensor.empty(), "job tensor profile must be non-empty");
  SF_CHECK(scale > 0.0, "tensor scale must be positive");
  if (kind == JobKind::Tucker) {
    SF_CHECK(!exec.tucker_core_dims.empty(),
             "tucker jobs need exec.core_dims({...})");
  }
}

void JobSpec::write_json(obs::JsonWriter& w) const {
  w.begin_object();
  w.kv("tenant", tenant);
  w.kv("weight", weight);
  w.kv("kind", job_kind_name(kind));
  w.kv("tensor", tensor);
  w.kv("scale", scale);
  w.kv("tensor_seed", static_cast<std::uint64_t>(tensor_seed));
  w.kv("mode", static_cast<std::int64_t>(mode));
  w.kv("factor_seed", static_cast<std::uint64_t>(factor_seed));
  // The execution subset a service job can carry. Device-group and
  // launch-override knobs are deliberately absent: the service owns the
  // device group, and launches come from the (cached) joint choice.
  w.key("exec").begin_object();
  w.kv("backend", exec.backend_name);
  w.kv("rank", static_cast<std::int64_t>(exec.decomp_rank));
  w.kv("max_iters", exec.decomp_max_iters);
  w.kv("tol", exec.decomp_tol);
  w.kv("seed", static_cast<std::uint64_t>(exec.decomp_seed));
  w.kv("nonnegative", exec.cpd_nonnegative);
  w.key("core_dims").begin_array();
  for (const index_t d : exec.tucker_core_dims) {
    w.value(static_cast<std::int64_t>(d));
  }
  w.end_array();
  w.kv("segments", exec.num_segments);
  w.kv("streams", exec.num_streams);
  w.kv("threads", static_cast<std::uint64_t>(exec.host_exec.threads));
  w.kv("memory_budget_bytes",
       static_cast<std::uint64_t>(exec.memory_budget_bytes));
  w.kv("csf_fiber_budget", static_cast<std::uint64_t>(exec.csf_fiber_budget));
  w.kv("use_shared_mem", exec.use_shared_mem);
  w.kv("adaptive_launch", exec.adaptive_launch);
  w.end_object();
  w.end_object();
}

std::string JobSpec::to_json() const {
  obs::JsonWriter w;
  write_json(w);
  return w.str();
}

namespace {

double num_or(const obs::JsonValue& v, std::string_view key, double dflt) {
  const obs::JsonValue* m = v.find(key);
  return m == nullptr ? dflt : m->as_number();
}

bool bool_or(const obs::JsonValue& v, std::string_view key, bool dflt) {
  const obs::JsonValue* m = v.find(key);
  return m == nullptr ? dflt : m->as_bool();
}

std::string str_or(const obs::JsonValue& v, std::string_view key,
                   std::string dflt) {
  const obs::JsonValue* m = v.find(key);
  return m == nullptr ? dflt : m->as_string();
}

}  // namespace

JobSpec JobSpec::from_json(const obs::JsonValue& v) {
  SF_CHECK(v.is_object(), "job spec must be a JSON object");
  JobSpec s;
  s.tenant = str_or(v, "tenant", s.tenant);
  s.weight = static_cast<int>(num_or(v, "weight", s.weight));
  s.kind = job_kind_from_name(str_or(v, "kind", job_kind_name(s.kind)));
  s.tensor = str_or(v, "tensor", s.tensor);
  s.scale = num_or(v, "scale", s.scale);
  s.tensor_seed = static_cast<std::uint64_t>(
      num_or(v, "tensor_seed", static_cast<double>(s.tensor_seed)));
  s.mode = static_cast<order_t>(num_or(v, "mode", s.mode));
  s.factor_seed = static_cast<std::uint64_t>(
      num_or(v, "factor_seed", static_cast<double>(s.factor_seed)));
  if (const obs::JsonValue* e = v.find("exec"); e != nullptr) {
    SF_CHECK(e->is_object(), "job spec 'exec' must be an object");
    ExecConfig& c = s.exec;
    c.backend_name = str_or(*e, "backend", c.backend_name);
    c.decomp_rank = static_cast<index_t>(num_or(*e, "rank", c.decomp_rank));
    c.decomp_max_iters =
        static_cast<int>(num_or(*e, "max_iters", c.decomp_max_iters));
    c.decomp_tol = num_or(*e, "tol", c.decomp_tol);
    c.decomp_seed = static_cast<std::uint64_t>(
        num_or(*e, "seed", static_cast<double>(c.decomp_seed)));
    c.cpd_nonnegative = bool_or(*e, "nonnegative", c.cpd_nonnegative);
    if (const obs::JsonValue* cd = e->find("core_dims"); cd != nullptr) {
      c.tucker_core_dims.clear();
      for (const obs::JsonValue& d : cd->as_array()) {
        c.tucker_core_dims.push_back(static_cast<index_t>(d.as_number()));
      }
    }
    c.num_segments = static_cast<int>(num_or(*e, "segments", c.num_segments));
    c.num_streams = static_cast<int>(num_or(*e, "streams", c.num_streams));
    c.host_exec.threads = static_cast<std::size_t>(
        num_or(*e, "threads", static_cast<double>(c.host_exec.threads)));
    c.memory_budget_bytes = static_cast<std::size_t>(num_or(
        *e, "memory_budget_bytes", static_cast<double>(c.memory_budget_bytes)));
    c.csf_fiber_budget = static_cast<nnz_t>(num_or(
        *e, "csf_fiber_budget", static_cast<double>(c.csf_fiber_budget)));
    c.use_shared_mem = bool_or(*e, "use_shared_mem", c.use_shared_mem);
    c.adaptive_launch = bool_or(*e, "adaptive_launch", c.adaptive_launch);
  }
  s.validate();
  return s;
}

JobSpec JobSpec::parse(std::string_view text) {
  return from_json(obs::JsonValue::parse(text));
}

}  // namespace scalfrag::service
