#pragma once
// JobSpec — the serializable description of one decomposition job the
// multi-tenant service accepts (docs/service.md has the schema).
//
// One config type, not three: since CpdOptions/TuckerOptions collapsed
// into ExecConfig's decomposition knobs, a JobSpec is tensor source +
// job kind + tenant identity + one ExecConfig. Tensor data never rides
// in the spec — jobs name a FROSTT generator profile (name, scale,
// seed), the same deterministic recipe every bench uses, so a spec is
// a few hundred bytes and the service's PlanCache can key tensor
// identity without hashing gigabytes.

#include <string>

#include "obs/json.hpp"
#include "scalfrag/exec_config.hpp"
#include "tensor/generator.hpp"

namespace scalfrag::service {

enum class JobKind { Mttkrp, Cpd, Tucker };

const char* job_kind_name(JobKind k);
JobKind job_kind_from_name(const std::string& name);

struct JobSpec {
  /// Tenant identity for fair scheduling. The first job a tenant
  /// submits fixes its weighted-round-robin weight.
  std::string tenant = "default";
  int weight = 1;

  JobKind kind = JobKind::Mttkrp;

  /// Tensor source: a FROSTT generator profile (tensor/generator.hpp),
  /// scaled and seeded — the deterministic identity the plan cache
  /// keys tensors on.
  std::string tensor = "nips";
  double scale = kDefaultScale;
  std::uint64_t tensor_seed = 42;

  /// Mttkrp jobs: the mode to contract and the factor-init seed.
  /// (Cpd/Tucker jobs seed factors from exec.decomp_seed instead.)
  order_t mode = 0;
  std::uint64_t factor_seed = 1;

  /// Everything about execution: backend name, rank / max_iters / tol /
  /// core_dims, segments/streams/threads, memory_budget_bytes (the
  /// admission bound when set).
  ExecConfig exec;

  /// Structural checks that don't need the tensor (weight, names,
  /// kind-specific knobs). exec.validate() runs at admission, where a
  /// failure rejects the job instead of throwing at the submitter.
  void validate() const;

  /// Serialize as a self-contained JSON object.
  std::string to_json() const;
  /// Emit into an in-progress writer (for embedding in reports).
  void write_json(obs::JsonWriter& w) const;

  /// Parse. Absent fields keep their defaults; unknown fields are
  /// ignored (forward compatibility). Throws scalfrag::Error on type
  /// mismatches or unknown kind/backend-free structural errors.
  static JobSpec from_json(const obs::JsonValue& v);
  static JobSpec parse(std::string_view text);
};

}  // namespace scalfrag::service
