#include "service/plan_cache.hpp"

#include "common/error.hpp"
#include "common/timer.hpp"
#include "tensor/generator.hpp"

namespace scalfrag::service {

PlanCache::PlanCache(std::size_t capacity, obs::MetricsRegistry* metrics)
    : capacity_(capacity), metrics_(metrics) {
  SF_CHECK(capacity >= 1, "plan cache capacity must be >= 1");
}

void PlanCache::count(const char* name, std::uint64_t n) {
  if (metrics_ != nullptr) metrics_->count(name, n);
}

std::shared_ptr<const TensorEntry> PlanCache::tensor(const std::string& name,
                                                     double scale,
                                                     std::uint64_t seed,
                                                     bool* hit) {
  std::lock_guard<std::mutex> lock(mu_);
  const TensorKey key{name, scale, seed};
  if (auto found = tensors_.touch(key); found != nullptr) {
    count("service/tensor_cache_hits");
    if (hit != nullptr) *hit = true;
    return found;
  }
  count("service/tensor_cache_misses");
  if (hit != nullptr) *hit = false;
  WallTimer timer;
  auto entry = std::make_shared<TensorEntry>();
  entry->tensor = make_frostt_tensor(name, scale, seed);
  // make_frostt_tensor returns mode-0 sorted, so extraction is a pure
  // scan here (no internal re-sort copy).
  entry->features = TensorFeatures::extract(entry->tensor, 0);
  entry->prepare_seconds = timer.seconds();
  count("service/cache_evictions",
        tensors_.insert(key, entry, capacity_));
  return entry;
}

std::shared_ptr<const PlanEntry> PlanCache::plan(
    const PlanKey& key, const std::function<PlanEntry()>& build, bool* hit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto found = plans_.touch(key); found != nullptr) {
    count("service/cache_hits");
    if (hit != nullptr) *hit = true;
    return found;
  }
  count("service/cache_misses");
  if (hit != nullptr) *hit = false;
  auto entry = std::make_shared<PlanEntry>(build());
  count("service/cache_evictions", plans_.insert(key, entry, capacity_));
  return entry;
}

JointChoice PlanCache::choice(const TensorFeatures& feat, index_t rank,
                              const std::function<JointChoice()>& infer,
                              bool* hit) {
  std::lock_guard<std::mutex> lock(mu_);
  const ChoiceKey key{feat.to_vector(), rank};
  if (auto it = choices_.find(key); it != choices_.end()) {
    count("service/choice_cache_hits");
    if (hit != nullptr) *hit = true;
    return it->second;
  }
  count("service/choice_cache_misses");
  if (hit != nullptr) *hit = false;
  JointChoice c = infer();
  choices_.emplace(key, c);
  return c;
}

std::size_t PlanCache::tensor_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tensors_.entries.size();
}

std::size_t PlanCache::plan_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.entries.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  tensors_ = {};
  plans_ = {};
  choices_.clear();
}

}  // namespace scalfrag::service
