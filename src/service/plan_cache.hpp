#pragma once
// PlanCache — the two-level preparation cache behind the decomposition
// service. Everything MTTKRP-shaped that is expensive and factor-value
// independent is cached here, so a warm job skips straight to replay:
//
//   level 1  (tensor recipe → TensorEntry): the generated canonical
//            tensor plus its mode-0 sparsity features. A hit skips
//            generation AND feature extraction.
//   level 2  (features + rank + backend → PlanEntry): the prepared
//            MttkrpPlan / CsfPlan (sort, segmentation, launch
//            selection all sunk). A hit skips plan construction; the
//            replay entry points (MttkrpPlan::run_on / CsfPlan::run_on)
//            make the warm run bit-identical to the cold one, because
//            the cold run executes through the very plan it just built.
//   side map (features + rank → JointChoice): the joint format×launch
//            inference for backend "auto", cached so repeat jobs skip
//            selector inference entirely (paper §IV-B: iterative use
//            dilutes inference overhead — here it is amortized across
//            *jobs*, not just iterations).
//
// Keys are content-shaped, not pointer-shaped: level 2 keys on the
// feature vector, so two tenants naming the same tensor recipe share
// one plan. Both levels are LRU-bounded; shared_ptr hand-out means an
// evicted entry stays alive for jobs already holding it.
//
// Thread safety: all public methods are mutex-guarded. Builders run
// under the lock — the service calls from its single scheduler thread,
// which also gives single-flight plan construction for free.

#include <array>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "scalfrag/csf_plan.hpp"
#include "scalfrag/format_select.hpp"
#include "scalfrag/plan.hpp"
#include "tensor/features.hpp"

namespace scalfrag::service {

/// Level-1 value: the canonical (mode-0 sorted) tensor plus the mode-0
/// features every admission / selection decision reads.
struct TensorEntry {
  CooTensor tensor;
  TensorFeatures features;
  /// Generation + feature-extraction wall time, paid once on miss.
  double prepare_seconds = 0.0;
};

/// Level-2 key: "TensorFeatures + rank + backend name".
struct PlanKey {
  std::array<double, TensorFeatures::kVectorSize> features{};
  index_t rank = 0;
  std::string backend;
  /// Spec name of the device the plan targets: launch prediction and
  /// replay are per-spec, so a heterogeneous group caches one plan per
  /// member kind (uniform groups share a single entry as before).
  std::string device;

  bool operator<(const PlanKey& o) const {
    if (features != o.features) return features < o.features;
    if (rank != o.rank) return rank < o.rank;
    if (backend != o.backend) return backend < o.backend;
    return device < o.device;
  }
};

/// Level-2 value: exactly one of the two plan kinds, per the backend
/// the key names.
struct PlanEntry {
  std::shared_ptr<const MttkrpPlan> coo;
  std::shared_ptr<const CsfPlan> csf;
  /// Plan-construction wall time, paid once on miss.
  double prepare_seconds = 0.0;
};

class PlanCache {
 public:
  /// `capacity` bounds each level independently (entries, not bytes —
  /// service tensors are generator-scaled). `metrics` (optional)
  /// receives service/cache_* and service/tensor_cache_* counters.
  explicit PlanCache(std::size_t capacity = 32,
                     obs::MetricsRegistry* metrics = nullptr);

  /// Level 1: get-or-generate the canonical tensor for a recipe.
  /// `hit` (optional) reports whether this was a cache hit.
  std::shared_ptr<const TensorEntry> tensor(const std::string& name,
                                            double scale, std::uint64_t seed,
                                            bool* hit = nullptr);

  /// Level 2: get-or-build the plan for `key`. `build` runs under the
  /// cache lock on miss (single-flight by construction).
  std::shared_ptr<const PlanEntry> plan(
      const PlanKey& key, const std::function<PlanEntry()>& build,
      bool* hit = nullptr);

  /// Side map: get-or-infer the joint choice for (features, rank).
  JointChoice choice(const TensorFeatures& feat, index_t rank,
                     const std::function<JointChoice()>& infer,
                     bool* hit = nullptr);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t tensor_entries() const;
  std::size_t plan_entries() const;
  void clear();

 private:
  using TensorKey = std::tuple<std::string, double, std::uint64_t>;
  using ChoiceKey =
      std::pair<std::array<double, TensorFeatures::kVectorSize>, index_t>;

  template <typename Key, typename Value>
  struct LruMap {
    struct Slot {
      std::shared_ptr<const Value> value;
      typename std::list<Key>::iterator lru_pos;
    };
    std::map<Key, Slot> entries;
    std::list<Key> lru;  // front = most recently used

    std::shared_ptr<const Value> touch(const Key& k) {
      auto it = entries.find(k);
      if (it == entries.end()) return nullptr;
      lru.splice(lru.begin(), lru, it->second.lru_pos);
      return it->second.value;
    }
    /// Insert; returns the number of entries evicted to stay within cap.
    std::size_t insert(const Key& k, std::shared_ptr<const Value> v,
                       std::size_t cap) {
      lru.push_front(k);
      entries[k] = Slot{std::move(v), lru.begin()};
      std::size_t evicted = 0;
      while (entries.size() > cap) {
        entries.erase(lru.back());
        lru.pop_back();
        ++evicted;
      }
      return evicted;
    }
  };

  void count(const char* name, std::uint64_t n = 1);

  const std::size_t capacity_;
  obs::MetricsRegistry* metrics_;
  mutable std::mutex mu_;
  LruMap<TensorKey, TensorEntry> tensors_;
  LruMap<PlanKey, PlanEntry> plans_;
  std::map<ChoiceKey, JointChoice> choices_;
};

}  // namespace scalfrag::service
