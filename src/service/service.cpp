#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "obs/json.hpp"
#include "scalfrag/segmenter.hpp"

namespace scalfrag::service {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool is_csf_backend(const std::string& name) {
  return name.rfind("csf_tiled", 0) == 0;
}

sim_ns percentile(std::vector<sim_ns>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto n = static_cast<double>(sorted.size());
  auto idx = static_cast<std::size_t>(std::ceil(q * n));
  if (idx > 0) --idx;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::Queued:
      return "queued";
    case JobState::Running:
      return "running";
    case JobState::Completed:
      return "completed";
    case JobState::Rejected:
      return "rejected";
    case JobState::Failed:
      return "failed";
  }
  return "?";
}

namespace {

gpusim::DeviceGroup make_group(const ServiceOptions& o) {
  if (!o.device_specs.empty()) {
    return gpusim::DeviceGroup(o.device_specs, o.link);
  }
  return gpusim::DeviceGroup(o.device, o.num_devices, o.link);
}

}  // namespace

DecompositionService::DecompositionService(ServiceOptions opts)
    : opts_(std::move(opts)),
      group_(make_group(opts_)),
      cache_(opts_.cache_capacity, &metrics_) {
  const int n = group_.size();
  device_clock_.assign(static_cast<std::size_t>(n), 0);
  committed_.assign(static_cast<std::size_t>(n), 0.0);
  if (opts_.start_paused) queue_.pause();
  worker_queues_.reserve(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    worker_queues_.push_back(std::make_unique<WorkerQueue>());
  }
  for (int d = 0; d < n; ++d) {
    workers_.emplace_back([this, d] { worker_loop(d); });
  }
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

DecompositionService::~DecompositionService() { shutdown(); }

std::uint64_t DecompositionService::submit(JobSpec spec) {
  spec.validate();  // structural errors throw to the submitter
  QueuedJob job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SF_CHECK(!shutdown_, "service is shut down");
    job.id = next_id_++;
    JobResult r;
    r.id = job.id;
    r.spec = spec;
    r.state = JobState::Queued;
    results_.emplace(job.id, std::move(r));
    ++pending_;
  }
  metrics_.count("service/submitted");
  job.spec = std::move(spec);
  job.submit_ns = steady_now_ns();
  const std::uint64_t id = job.id;
  queue_.push(std::move(job));
  return id;
}

JobResult DecompositionService::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mu_);
  SF_CHECK(results_.count(id) != 0, "unknown job id");
  done_cv_.wait(lock, [&] { return results_.at(id).terminal(); });
  return results_.at(id);
}

std::vector<JobResult> DecompositionService::run_batch(
    std::vector<JobSpec> specs) {
  pause();
  std::vector<std::uint64_t> ids;
  ids.reserve(specs.size());
  for (auto& s : specs) ids.push_back(submit(std::move(s)));
  resume();
  std::vector<JobResult> out;
  out.reserve(ids.size());
  for (const std::uint64_t id : ids) out.push_back(wait(id));
  return out;
}

void DecompositionService::pause() { queue_.pause(); }
void DecompositionService::resume() { queue_.resume(); }

void DecompositionService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
}

void DecompositionService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      // Idempotent: a second caller must still not return before the
      // first finished joining, but joins below are guarded anyway.
    }
    shutdown_ = true;
  }
  queue_.close();
  if (scheduler_.joinable()) scheduler_.join();
  // scheduler_loop closed the worker queues on exit.
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void DecompositionService::scheduler_loop() {
  while (auto job = queue_.pop_blocking()) {
    admit_and_dispatch(std::move(*job));
  }
  // Queue closed and drained: stop the workers (they drain their own
  // FIFOs first — graceful, nothing is dropped).
  for (auto& wq : worker_queues_) {
    {
      std::lock_guard<std::mutex> lock(wq->mu);
      wq->closed = true;
    }
    wq->cv.notify_all();
  }
}

std::size_t DecompositionService::predict_bytes(const JobSpec& spec,
                                                const CooTensor& t) const {
  const index_t rank = spec.exec.decomp_rank;
  std::size_t peak = 0;
  switch (spec.kind) {
    case JobKind::Mttkrp:
      peak = pipeline_resident_bytes(t, spec.mode, rank);
      break;
    case JobKind::Cpd:
      // ALS touches every mode each iteration; the resident set is the
      // worst mode's.
      for (order_t m = 0; m < t.order(); ++m) {
        peak = std::max(peak, pipeline_resident_bytes(t, m, rank));
      }
      break;
    case JobKind::Tucker: {
      // Factors U⁽ᵐ⁾ (Iₘ × rₘ) all resident, plus the widest projection
      // result Wₙ (Iₙ × Π_{m≠n} rₘ) and the core.
      const auto& core = spec.exec.tucker_core_dims;
      std::size_t factors = 0;
      double core_cells = 1.0;
      for (order_t m = 0; m < t.order(); ++m) {
        factors += static_cast<std::size_t>(t.dim(m)) *
                   static_cast<std::size_t>(core[m]) * sizeof(value_t);
        core_cells *= static_cast<double>(core[m]);
      }
      std::size_t widest = 0;
      for (order_t n = 0; n < t.order(); ++n) {
        double width = 1.0;
        for (order_t m = 0; m < t.order(); ++m) {
          if (m != n) width *= static_cast<double>(core[m]);
        }
        widest = std::max(
            widest, static_cast<std::size_t>(static_cast<double>(t.dim(n)) *
                                             width * sizeof(value_t)));
      }
      peak = factors + widest +
             static_cast<std::size_t>(core_cells * sizeof(value_t));
      break;
    }
  }
  return t.bytes() + peak;
}

void DecompositionService::admit_and_dispatch(QueuedJob job) {
  const std::uint64_t seq = ++dispatch_seq_;
  const double queue_wait =
      static_cast<double>(steady_now_ns() - job.submit_ns) * 1e-9;
  metrics_.span("service/queue_wait", static_cast<double>(
                                          steady_now_ns() - job.submit_ns));

  const JobSpec& spec = job.spec;
  WorkItem item;
  item.job = job;

  auto reject = [&](const std::string& why, std::size_t predicted,
                    std::size_t budget) {
    metrics_.count("service/rejected");
    std::lock_guard<std::mutex> lock(mu_);
    JobResult& r = results_.at(job.id);
    r.state = JobState::Rejected;
    r.error = why;
    r.dispatch_seq = seq;
    r.queue_wait_seconds = queue_wait;
    r.predicted_bytes = predicted;
    r.budget_bytes = budget;
    --pending_;
    done_cv_.notify_all();
  };

  try {
    ExecConfig cfg = spec.exec;
    // Service jobs are single-device by definition: the service owns
    // the group and leases one member per job.
    SF_CHECK(cfg.num_devices == 1,
             "service jobs are single-device (the service owns the group)");
    cfg.metrics_sink = nullptr;  // per-job registry attached at execution

    // Level 1: tensor + features (hit skips generation AND extraction).
    bool tensor_hit = false;
    item.tensor =
        cache_.tensor(spec.tensor, spec.scale, spec.tensor_seed, &tensor_hit);
    const CooTensor& t = item.tensor->tensor;
    double prepare = tensor_hit ? 0.0 : item.tensor->prepare_seconds;

    if (spec.kind == JobKind::Mttkrp) {
      SF_CHECK(spec.mode < t.order(), "mttkrp mode out of range");
    }
    if (spec.kind == JobKind::Tucker) {
      SF_CHECK(cfg.tucker_core_dims.size() ==
                   static_cast<std::size_t>(t.order()),
               "core_dims must have one entry per mode");
    }

    // Admission: predicted resident footprint vs the per-device budget.
    // With an explicit budget (job or service) every member is held to
    // the same bound; without one, each member's own global memory is
    // the bound — on a heterogeneous group a job can be admissible on
    // the big card but not the small one, and assignment below only
    // considers members it fits on.
    const std::size_t predicted = predict_bytes(spec, t);
    std::size_t budget = cfg.memory_budget_bytes;
    if (budget == 0) budget = opts_.device_budget_bytes;
    std::vector<bool> fits(static_cast<std::size_t>(group_.size()), true);
    bool any_fit;
    if (budget != 0) {
      any_fit = predicted <= budget;
    } else {
      any_fit = false;
      for (int d = 0; d < group_.size(); ++d) {
        const std::size_t cap = group_.spec(d).global_mem_bytes;
        fits[static_cast<std::size_t>(d)] = predicted <= cap;
        any_fit = any_fit || predicted <= cap;
        budget = std::max(budget, cap);  // reported bound
      }
    }
    if (!any_fit) {
      metrics_.count("service/admission_rejects");
      reject("admission: predicted resident " + std::to_string(predicted) +
                 " bytes exceeds budget " + std::to_string(budget),
             predicted, budget);
      return;
    }
    metrics_.count("service/admitted");

    // Resolve "auto" through the cached joint choice (selector
    // inference runs once per (features, rank), not once per job).
    const index_t rank = cfg.decomp_rank;
    bool auto_selected = false;
    JointChoice choice;
    if (cfg.backend_name == "auto") {
      choice = cache_.choice(
          item.tensor->features, rank,
          [&] {
            return opts_.joint != nullptr
                       ? opts_.joint->choose(item.tensor->features, rank)
                       : heuristic_joint_choice(item.tensor->features, rank);
          });
      apply_joint_choice(cfg, choice);
      auto_selected = true;
    }
    cfg.validate();  // typed UnknownBackendError for bad names

    // Device assignment: argmin of projected completion (a pure
    // function of dispatch order — deterministic load balancing).
    // Committed work is counted in predicted *time* — flops over the
    // member's peak throughput — so on a heterogeneous group the fast
    // cards absorb proportionally more jobs instead of a 1/N split.
    // Uniform groups reproduce the PR 9 argmin-flops assignments
    // exactly (a constant speed divisor preserves the ordering).
    int iters = 1;
    if (spec.kind == JobKind::Cpd) {
      iters = cfg.decomp_max_iters > 0 ? cfg.decomp_max_iters : 10;
    } else if (spec.kind == JobKind::Tucker) {
      iters = cfg.decomp_max_iters > 0 ? cfg.decomp_max_iters : 15;
    }
    const double cost = static_cast<double>(t.nnz()) *
                        static_cast<double>(t.order()) *
                        static_cast<double>(rank) *
                        static_cast<double>(iters);
    int dev = -1;
    double best = 0.0;
    for (int d = 0; d < group_.size(); ++d) {
      if (!fits[static_cast<std::size_t>(d)]) continue;
      const double finish = committed_[static_cast<std::size_t>(d)] +
                            cost / group_.spec(d).peak_gflops();
      if (dev < 0 || finish < best) {
        dev = d;
        best = finish;
      }
    }
    SF_CHECK(dev >= 0, "admission passed but no member fits the job");
    // Level 2: the prepared plan (hit skips sort/segment/selection),
    // built for — and cached per — the assigned member's spec: launch
    // prediction and replay are spec-bound, so a heterogeneous group
    // keeps one entry per member kind.
    const bool wants_coo_plan = cfg.backend_name == "coo";
    const bool wants_csf_plan = is_csf_backend(cfg.backend_name);
    bool plan_hit = false;
    if (wants_coo_plan || wants_csf_plan) {
      PlanKey key;
      key.features = item.tensor->features.to_vector();
      key.rank = rank;
      key.backend = cfg.backend_name;
      key.device = group_.spec(dev).name;
      item.plan = cache_.plan(
          key,
          [&] {
            WallTimer timer;
            PlanEntry pe;
            ExecConfig plan_cfg = cfg;
            plan_cfg.metrics_sink = &metrics_;
            if (wants_coo_plan) {
              pe.coo = std::make_shared<MttkrpPlan>(
                  t, rank, group_.device(dev), opts_.launch, plan_cfg);
            } else {
              pe.csf = std::make_shared<CsfPlan>(t, plan_cfg);
            }
            pe.prepare_seconds = timer.seconds();
            return pe;
          },
          &plan_hit);
      if (!plan_hit) prepare += item.plan->prepare_seconds;
    } else if (spec.kind == JobKind::Mttkrp) {
      reject("mttkrp service jobs need a plan-backed backend "
             "(auto, coo, or csf_tiled*); got '" +
                 cfg.backend_name + "'",
             predicted, budget);
      return;
    }

    // Commit the job's predicted time only now that preparation can no
    // longer reject it.
    committed_[static_cast<std::size_t>(dev)] +=
        cost / group_.spec(dev).peak_gflops();

    item.cfg = std::move(cfg);
    {
      std::lock_guard<std::mutex> lock(mu_);
      JobResult& r = results_.at(job.id);
      r.state = JobState::Running;
      r.dispatch_seq = seq;
      r.device = dev;
      r.queue_wait_seconds = queue_wait;
      r.predicted_bytes = predicted;
      r.budget_bytes = budget;
      r.tensor_cache_hit = tensor_hit;
      r.plan_cache_hit = plan_hit;
      r.prepare_seconds = prepare;
      r.info.auto_selected = auto_selected;
      if (auto_selected) r.info.choice = choice;
    }
    metrics_.count("service/dispatched");

    WorkerQueue& wq = *worker_queues_[static_cast<std::size_t>(dev)];
    {
      std::lock_guard<std::mutex> lock(wq.mu);
      wq.fifo.push_back(std::move(item));
    }
    wq.cv.notify_all();
  } catch (const std::exception& e) {
    reject(e.what(), 0, 0);
  }
}

void DecompositionService::worker_loop(int device_index) {
  WorkerQueue& wq = *worker_queues_[static_cast<std::size_t>(device_index)];
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(wq.mu);
      wq.cv.wait(lock, [&] { return !wq.fifo.empty() || wq.closed; });
      if (wq.fifo.empty()) return;  // closed and drained
      item = std::move(wq.fifo.front());
      wq.fifo.pop_front();
    }
    execute(device_index, std::move(item));
  }
}

void DecompositionService::execute(int device_index, WorkItem item) {
  const std::uint64_t id = item.job.id;
  const JobSpec& spec = item.job.spec;
  group_.lease(device_index);
  gpusim::SimDevice& dev = group_.device(device_index);

  obs::MetricsRegistry job_met;
  WallTimer exec_timer;
  JobState state = JobState::Completed;
  std::string error;
  sim_ns sim_cost = 0;
  RunInfo info;
  DenseMatrix mttkrp_out;
  std::optional<CpdResult> cpd_res;
  std::optional<TuckerResult> tucker_res;

  try {
    const CooTensor& t = item.tensor->tensor;
    ExecConfig cfg = item.cfg;
    cfg.metrics_sink = &job_met;
    switch (spec.kind) {
      case JobKind::Mttkrp: {
        const index_t rank = cfg.decomp_rank;
        FactorList factors;
        Rng rng(spec.factor_seed);
        for (order_t m = 0; m < t.order(); ++m) {
          DenseMatrix f(t.dim(m), rank);
          f.randomize(rng);
          factors.push_back(std::move(f));
        }
        if (item.plan != nullptr && item.plan->coo != nullptr) {
          PipelineResult r =
              item.plan->coo->run_on(dev, factors, spec.mode, &job_met);
          sim_cost = r.total_ns;
          info = std::move(r.info);
          mttkrp_out = std::move(r.output);
        } else {
          SF_CHECK(item.plan != nullptr && item.plan->csf != nullptr,
                   "mttkrp job dispatched without a plan");
          mttkrp_out =
              item.plan->csf->run_on(factors, spec.mode, &job_met);
          info.backend = cfg.backend_name;
        }
        break;
      }
      case JobKind::Cpd: {
        SharedPlans sp;
        if (item.plan != nullptr) {
          sp.coo = item.plan->coo.get();
          sp.csf = item.plan->csf.get();
        }
        CpdResult r = cpd_als(t, cfg, &dev, opts_.launch, sp);
        sim_cost = r.mttkrp_sim_ns;
        info = r.info;
        cpd_res = std::move(r);
        break;
      }
      case JobKind::Tucker: {
        TuckerResult r = tucker_hooi(t, cfg, &dev, opts_.joint);
        sim_cost = r.projection_sim_ns;
        info = r.info;
        tucker_res = std::move(r);
        break;
      }
    }
  } catch (const std::exception& e) {
    state = JobState::Failed;
    error = e.what();
    sim_cost = 0;
  }
  const double exec_seconds = exec_timer.seconds();
  group_.release(device_index);

  info.metrics = job_met.snapshot();
  metrics_.merge(job_met);
  if (state == JobState::Completed) {
    metrics_.count("service/completed");
    metrics_.span("service/job_sim", static_cast<double>(sim_cost));
  } else {
    metrics_.count("service/failed");
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& clock = device_clock_[static_cast<std::size_t>(device_index)];
    JobResult& r = results_.at(id);
    r.state = state;
    r.error = std::move(error);
    r.sim_cost_ns = sim_cost;
    r.sim_start_ns = clock;
    clock += sim_cost;
    r.sim_finish_ns = clock;
    r.exec_seconds = exec_seconds;
    // Keep the admission-time auto-selection record; fill the rest
    // from the driver's RunInfo.
    const bool auto_selected = r.info.auto_selected;
    const JointChoice choice = r.info.choice;
    r.info = std::move(info);
    if (auto_selected) {
      r.info.auto_selected = true;
      r.info.choice = choice;
    }
    r.info.prepare_seconds = r.prepare_seconds;
    r.mttkrp_output = std::move(mttkrp_out);
    r.cpd = std::move(cpd_res);
    r.tucker = std::move(tucker_res);
    --pending_;
  }
  done_cv_.notify_all();
}

ServiceStats DecompositionService::stats() const {
  ServiceStats s;
  std::vector<sim_ns> latencies;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.submitted = next_id_ - 1;
    for (const auto& [id, r] : results_) {
      (void)id;
      switch (r.state) {
        case JobState::Completed:
          ++s.completed;
          latencies.push_back(r.sim_finish_ns);
          break;
        case JobState::Rejected:
          ++s.rejected;
          break;
        case JobState::Failed:
          ++s.failed;
          break;
        default:
          break;
      }
    }
    for (const sim_ns c : device_clock_) {
      s.makespan_ns = std::max(s.makespan_ns, c);
    }
  }
  const obs::MetricsSnapshot m = metrics_.snapshot();
  s.cache_hits = m.counter("service/cache_hits");
  s.cache_misses = m.counter("service/cache_misses");
  std::sort(latencies.begin(), latencies.end());
  s.p50_latency_ns = percentile(latencies, 0.50);
  s.p99_latency_ns = percentile(latencies, 0.99);
  if (s.makespan_ns > 0) {
    s.jobs_per_sec_sim = static_cast<double>(s.completed) /
                         (static_cast<double>(s.makespan_ns) * 1e-9);
  }
  return s;
}

std::string DecompositionService::report_json() const {
  const ServiceStats s = stats();
  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema", "scalfrag-service");
  w.kv("version", 1);
  w.key("options").begin_object();
  w.kv("devices", group_.size());
  w.kv("device", group_.spec().name);
  w.kv("link", group_.link().name);
  w.kv("device_budget_bytes",
       static_cast<std::uint64_t>(opts_.device_budget_bytes));
  w.kv("cache_capacity", static_cast<std::uint64_t>(opts_.cache_capacity));
  w.end_object();
  w.key("jobs").begin_array();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, r] : results_) {
      w.begin_object();
      w.kv("id", static_cast<std::uint64_t>(id));
      w.kv("state", job_state_name(r.state));
      if (!r.error.empty()) w.kv("error", r.error);
      w.key("spec");
      r.spec.write_json(w);
      w.kv("device", r.device);
      w.kv("dispatch_seq", static_cast<std::uint64_t>(r.dispatch_seq));
      w.kv("tensor_cache_hit", r.tensor_cache_hit);
      w.kv("plan_cache_hit", r.plan_cache_hit);
      w.kv("predicted_bytes", static_cast<std::uint64_t>(r.predicted_bytes));
      w.kv("budget_bytes", static_cast<std::uint64_t>(r.budget_bytes));
      w.kv("prepare_seconds", r.prepare_seconds);
      w.kv("backend", r.info.backend);
      w.kv("auto_selected", r.info.auto_selected);
      w.kv("sim_cost_ns", static_cast<std::uint64_t>(r.sim_cost_ns));
      w.kv("sim_finish_ns", static_cast<std::uint64_t>(r.sim_finish_ns));
      w.kv("queue_wait_seconds", r.queue_wait_seconds);
      w.kv("exec_seconds", r.exec_seconds);
      w.end_object();
    }
  }
  w.end_array();
  w.key("stats").begin_object();
  w.kv("submitted", s.submitted);
  w.kv("completed", s.completed);
  w.kv("rejected", s.rejected);
  w.kv("failed", s.failed);
  w.kv("cache_hits", s.cache_hits);
  w.kv("cache_misses", s.cache_misses);
  w.kv("makespan_sim_ns", static_cast<std::uint64_t>(s.makespan_ns));
  w.kv("jobs_per_sec_sim", s.jobs_per_sec_sim);
  w.kv("p50_latency_sim_ns", static_cast<std::uint64_t>(s.p50_latency_ns));
  w.kv("p99_latency_sim_ns", static_cast<std::uint64_t>(s.p99_latency_ns));
  w.end_object();
  w.key("metrics").begin_object();
  {
    const obs::MetricsSnapshot m = metrics_.snapshot();
    w.key("counters").begin_object();
    for (const auto& [name, v] : m.counters) w.kv(name, v);
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [name, v] : m.gauges) w.kv(name, v);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace scalfrag::service
