#pragma once
// DecompositionService — the long-running multi-tenant front end over
// the whole driver stack: a JobQueue of serializable JobSpecs, a
// PlanCache amortizing preparation across jobs, admission control
// against per-device memory budgets, and a shared gpusim::DeviceGroup
// whose members are leased one job at a time.
//
// Architecture (docs/service.md has the full walkthrough):
//
//   submit() ──> JobQueue (per-tenant FIFO, smooth WRR)
//                   │ pop_blocking
//             scheduler thread (ONE): admission + preparation
//                   │  - tensor + features via PlanCache level 1
//                   │  - predicted resident bytes vs budget → reject?
//                   │  - "auto" resolved via cached JointChoice
//                   │  - MttkrpPlan/CsfPlan via PlanCache level 2
//                   │  - device = argmin committed predicted work
//                   ▼
//             per-device worker threads: lease → execute → release
//                   │  (plan replay / cpd_als with SharedPlans /
//                   │   tucker_hooi on the leased device)
//                   ▼
//             JobResult + per-job obs metrics, merged into the
//             service registry
//
// Determinism: everything CI gates lives in the simulated-time domain.
// The single scheduler thread makes admission verdicts, cache contents,
// dispatch order, and device assignment pure functions of the
// submission order; per-device sim clocks advance only by each job's
// simulated cost in dispatch order. Wall-clock numbers (queue wait,
// exec seconds, wall jobs/s) are reported for information only.

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "gpusim/device_group.hpp"
#include "obs/metrics.hpp"
#include "scalfrag/cpd.hpp"
#include "scalfrag/format_select.hpp"
#include "scalfrag/tucker.hpp"
#include "service/job_queue.hpp"
#include "service/plan_cache.hpp"

namespace scalfrag::service {

struct ServiceOptions {
  /// The shared device group every admitted device job runs on.
  int num_devices = 1;
  gpusim::DeviceSpec device = gpusim::DeviceSpec::rtx3090();
  gpusim::LinkSpec link = gpusim::LinkSpec::pcie4_p2p();
  /// Heterogeneous group: one member per entry, overriding `device` /
  /// `num_devices` when non-empty. Admission checks each member's own
  /// memory and the assignment argmin weighs committed work by each
  /// member's peak throughput — see docs/multidev.md.
  std::vector<gpusim::DeviceSpec> device_specs = {};

  /// Admission bound per device, in bytes. A job's own
  /// exec.memory_budget_bytes (when set) takes precedence; 0 here
  /// falls back to the device spec's global memory.
  std::size_t device_budget_bytes = 0;

  /// PlanCache capacity (entries per level).
  std::size_t cache_capacity = 32;

  /// Construct paused: submissions queue up and nothing dispatches
  /// until resume() — what run_batch uses so WRR order is independent
  /// of submission timing.
  bool start_paused = false;

  /// Optional model-backed selectors ("auto" backend, adaptive
  /// launches). Null = built-in heuristics. Non-owning; must outlive
  /// the service.
  const JointSelector* joint = nullptr;
  const LaunchSelector* launch = nullptr;
};

enum class JobState { Queued, Running, Completed, Rejected, Failed };

const char* job_state_name(JobState s);

/// Everything the service knows about one finished (or refused) job.
struct JobResult {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::Queued;
  /// Reject/fail reason (admission verdict or exception text).
  std::string error;

  // --- admission & preparation ---------------------------------------
  std::size_t predicted_bytes = 0;  // admission estimate
  std::size_t budget_bytes = 0;     // bound it was checked against
  bool tensor_cache_hit = false;
  bool plan_cache_hit = false;
  /// Preparation wall time charged to THIS job: 0 on cache hits —
  /// the observable half of "a hit skips feature extraction,
  /// selection, and plan construction".
  double prepare_seconds = 0.0;

  // --- scheduling -----------------------------------------------------
  std::uint64_t dispatch_seq = 0;  // global WRR dispatch order (1-based)
  int device = -1;                 // group index it executed on

  // --- execution ------------------------------------------------------
  /// Simulated device time this job consumed (0 for host-only work).
  sim_ns sim_cost_ns = 0;
  /// Leased device's sim clock at start / finish — finish is the job's
  /// deterministic completion stamp, the basis of p50/p99 latency.
  sim_ns sim_start_ns = 0;
  sim_ns sim_finish_ns = 0;
  double queue_wait_seconds = 0.0;  // wall, info-only
  double exec_seconds = 0.0;        // wall, info-only

  /// Uniform driver record + per-job metrics snapshot.
  RunInfo info;

  /// Kind-specific payloads (bit-identity checks key on these).
  DenseMatrix mttkrp_output;
  std::optional<CpdResult> cpd;
  std::optional<TuckerResult> tucker;

  bool terminal() const noexcept {
    return state == JobState::Completed || state == JobState::Rejected ||
           state == JobState::Failed;
  }
};

/// Aggregate counters in the deterministic sim domain (plus wall info).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::uint64_t cache_hits = 0;    // plan-cache hits (level 2)
  std::uint64_t cache_misses = 0;  // plan-cache misses (level 2)

  /// Max device sim clock = simulated makespan of everything executed.
  sim_ns makespan_ns = 0;
  /// completed / makespan — the throughput number CI gates. Jobs with
  /// zero device cost (host-only backends) still count completions, so
  /// an all-host mix reports 0 makespan and jobs_per_sec_sim stays 0.
  double jobs_per_sec_sim = 0.0;
  /// Percentiles of completed jobs' sim_finish_ns stamps.
  sim_ns p50_latency_ns = 0;
  sim_ns p99_latency_ns = 0;
};

class DecompositionService {
 public:
  explicit DecompositionService(ServiceOptions opts = {});
  /// Destructor shuts down gracefully (drains queued jobs first).
  ~DecompositionService();

  DecompositionService(const DecompositionService&) = delete;
  DecompositionService& operator=(const DecompositionService&) = delete;

  /// Enqueue; returns the job id. Throws scalfrag::Error on a spec
  /// that fails structural validation or after shutdown.
  std::uint64_t submit(JobSpec spec);

  /// Block until job `id` reaches a terminal state; returns a copy.
  JobResult wait(std::uint64_t id);

  /// Deterministic batch: pause, submit all, resume, wait for all.
  /// Results come back in submission order (not completion order).
  std::vector<JobResult> run_batch(std::vector<JobSpec> specs);

  void pause();
  void resume();

  /// Block until every submitted job is terminal (queue empty, workers
  /// idle). The service stays open for more submissions.
  void drain();

  /// Graceful shutdown: stop accepting, drain everything queued, join
  /// all threads. Idempotent; implied by the destructor.
  void shutdown();

  ServiceStats stats() const;
  /// Schema "scalfrag-service" v1 report: options, per-job records,
  /// aggregate stats, merged metrics.
  std::string report_json() const;

  obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  gpusim::DeviceGroup& devices() noexcept { return group_; }
  PlanCache& cache() noexcept { return cache_; }

 private:
  struct WorkItem {
    QueuedJob job;
    std::shared_ptr<const TensorEntry> tensor;
    std::shared_ptr<const PlanEntry> plan;  // null for plan-less paths
    ExecConfig cfg;                         // backend resolved, validated
  };

  void scheduler_loop();
  void worker_loop(int device_index);
  void admit_and_dispatch(QueuedJob job);
  void execute(int device_index, WorkItem item);
  void finalize(JobResult result);
  std::size_t predict_bytes(const JobSpec& spec, const CooTensor& t) const;

  ServiceOptions opts_;
  gpusim::DeviceGroup group_;
  obs::MetricsRegistry metrics_;
  PlanCache cache_;
  JobQueue queue_;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  std::uint64_t next_id_ = 1;
  std::uint64_t dispatch_seq_ = 0;
  std::uint64_t pending_ = 0;  // submitted, not yet terminal
  bool shutdown_ = false;
  std::map<std::uint64_t, JobResult> results_;
  std::vector<sim_ns> device_clock_;

  // Scheduler-side committed predicted work per device (argmin target).
  std::vector<double> committed_;

  struct WorkerQueue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<WorkItem> fifo;
    bool closed = false;
  };
  std::vector<std::unique_ptr<WorkerQueue>> worker_queues_;
  std::vector<std::thread> workers_;
  std::thread scheduler_;
};

}  // namespace scalfrag::service
