#include "tensor/arith.hpp"

#include <cmath>

namespace scalfrag::tensor_ops {

namespace {

/// Lexicographic comparison of entry `ea` of `a` vs `eb` of `b`.
int compare_coords(const CooTensor& a, nnz_t ea, const CooTensor& b,
                   nnz_t eb) {
  for (order_t m = 0; m < a.order(); ++m) {
    if (a.index(m, ea) != b.index(m, eb)) {
      return a.index(m, ea) < b.index(m, eb) ? -1 : 1;
    }
  }
  return 0;
}

void check_same_shape(const CooTensor& a, const CooTensor& b) {
  SF_CHECK(a.dims() == b.dims(), "tensor shapes must match");
}

/// Sorted, coalesced copy (mode-0 lexicographic).
CooTensor canonical(const CooTensor& t) {
  CooTensor c = t;
  c.sort_by_mode(0);
  c.coalesce_duplicates();
  return c;
}

template <typename Merge>
CooTensor merge_union(const CooTensor& a_in, const CooTensor& b_in,
                      Merge&& merge) {
  check_same_shape(a_in, b_in);
  const CooTensor a = canonical(a_in);
  const CooTensor b = canonical(b_in);

  CooTensor out(a.dims());
  out.reserve(a.nnz() + b.nnz());
  std::vector<index_t> coord(a.order());
  auto push_from = [&](const CooTensor& src, nnz_t e, value_t v) {
    for (order_t m = 0; m < src.order(); ++m) coord[m] = src.index(m, e);
    out.push(std::span<const index_t>(coord.data(), coord.size()), v);
  };

  nnz_t i = 0, j = 0;
  while (i < a.nnz() && j < b.nnz()) {
    const int c = compare_coords(a, i, b, j);
    if (c < 0) {
      push_from(a, i, merge(a.value(i), value_t{0}));
      ++i;
    } else if (c > 0) {
      push_from(b, j, merge(value_t{0}, b.value(j)));
      ++j;
    } else {
      push_from(a, i, merge(a.value(i), b.value(j)));
      ++i;
      ++j;
    }
  }
  for (; i < a.nnz(); ++i) push_from(a, i, merge(a.value(i), value_t{0}));
  for (; j < b.nnz(); ++j) push_from(b, j, merge(value_t{0}, b.value(j)));
  return out;
}

}  // namespace

CooTensor add(const CooTensor& a, const CooTensor& b) {
  return merge_union(a, b, [](value_t x, value_t y) { return x + y; });
}

CooTensor sub(const CooTensor& a, const CooTensor& b) {
  return merge_union(a, b, [](value_t x, value_t y) { return x - y; });
}

CooTensor hadamard(const CooTensor& a_in, const CooTensor& b_in) {
  check_same_shape(a_in, b_in);
  const CooTensor a = canonical(a_in);
  const CooTensor b = canonical(b_in);

  CooTensor out(a.dims());
  std::vector<index_t> coord(a.order());
  nnz_t i = 0, j = 0;
  while (i < a.nnz() && j < b.nnz()) {
    const int c = compare_coords(a, i, b, j);
    if (c < 0) {
      ++i;
    } else if (c > 0) {
      ++j;
    } else {
      for (order_t m = 0; m < a.order(); ++m) coord[m] = a.index(m, i);
      out.push(std::span<const index_t>(coord.data(), coord.size()),
               a.value(i) * b.value(j));
      ++i;
      ++j;
    }
  }
  return out;
}

void scale(CooTensor& t, value_t s) {
  for (auto& v : t.values()) v *= s;
}

double dot(const CooTensor& a_in, const CooTensor& b_in) {
  check_same_shape(a_in, b_in);
  const CooTensor a = canonical(a_in);
  const CooTensor b = canonical(b_in);
  double s = 0.0;
  nnz_t i = 0, j = 0;
  while (i < a.nnz() && j < b.nnz()) {
    const int c = compare_coords(a, i, b, j);
    if (c < 0) {
      ++i;
    } else if (c > 0) {
      ++j;
    } else {
      s += static_cast<double>(a.value(i)) * static_cast<double>(b.value(j));
      ++i;
      ++j;
    }
  }
  return s;
}

double norm(const CooTensor& t) {
  double s = 0.0;
  for (value_t v : t.values()) {
    s += static_cast<double>(v) * static_cast<double>(v);
  }
  return std::sqrt(s);
}

double sum(const CooTensor& t) {
  double s = 0.0;
  for (value_t v : t.values()) s += static_cast<double>(v);
  return s;
}

nnz_t prune(CooTensor& t, value_t eps) {
  CooTensor out(t.dims());
  out.reserve(t.nnz());
  std::vector<index_t> coord(t.order());
  nnz_t removed = 0;
  for (nnz_t e = 0; e < t.nnz(); ++e) {
    if (std::abs(t.value(e)) <= eps) {
      ++removed;
      continue;
    }
    for (order_t m = 0; m < t.order(); ++m) coord[m] = t.index(m, e);
    out.push(std::span<const index_t>(coord.data(), coord.size()),
             t.value(e));
  }
  t = std::move(out);
  return removed;
}

}  // namespace scalfrag::tensor_ops
