#pragma once
// Element-wise sparse tensor arithmetic — the "arithmetic operations"
// half of ParTI's feature list (§V-A3). All operations are value-level
// and preserve coordinates; binary operations require identical dims.

#include "tensor/coo.hpp"

namespace scalfrag::tensor_ops {

/// c = a + b (union of supports, coincident coordinates summed).
/// Exact zeros produced by cancellation are kept (matching ParTI's
/// semantics: structural nonzeros are never dropped implicitly).
CooTensor add(const CooTensor& a, const CooTensor& b);

/// c = a - b.
CooTensor sub(const CooTensor& a, const CooTensor& b);

/// c = a ⊙ b (Hadamard: intersection of supports, values multiplied).
CooTensor hadamard(const CooTensor& a, const CooTensor& b);

/// t *= s in place.
void scale(CooTensor& t, value_t s);

/// Σ a(x)·b(x) over the common support.
double dot(const CooTensor& a, const CooTensor& b);

/// Frobenius norm √(Σ v²).
double norm(const CooTensor& t);

/// Σ v.
double sum(const CooTensor& t);

/// Drop entries with |v| <= eps; returns the number removed.
nnz_t prune(CooTensor& t, value_t eps = value_t{0});

}  // namespace scalfrag::tensor_ops
