#include "tensor/bcsf.hpp"

#include <algorithm>

namespace scalfrag {

BcsfTensor BcsfTensor::build(const CooTensor& coo, order_t mode,
                             nnz_t max_nnz_per_slice) {
  SF_CHECK(mode < coo.order(), "mode out of range");
  SF_CHECK(max_nnz_per_slice > 0, "split threshold must be positive");

  CooTensor sorted = coo;
  if (!sorted.is_sorted_by_mode(mode)) sorted.sort_by_mode(mode);

  BcsfTensor b;
  b.mode_ = mode;
  if (sorted.nnz() == 0) {
    b.csf_ = CsfTensor::build(sorted, mode);
    return b;
  }

  // Build a *virtual* tensor: heavy slices get fresh virtual ids. The
  // virtual mode size is the number of virtual slices; owner_ maps
  // back. The virtual tensor reuses the original coordinates for the
  // non-split modes, so the CSF below the root is unchanged.
  std::vector<index_t> vdims = sorted.dims();
  // First pass: count virtual slices.
  nnz_t virtual_slices = 0;
  {
    nnz_t run = 0;
    for (nnz_t e = 0; e < sorted.nnz(); ++e) {
      const bool new_slice =
          e == 0 || sorted.index(mode, e) != sorted.index(mode, e - 1);
      if (new_slice) run = 0;
      if (new_slice || run == max_nnz_per_slice) {
        ++virtual_slices;
        run = 0;
      }
      ++run;
    }
  }
  vdims[mode] = static_cast<index_t>(virtual_slices);

  CooTensor vt(vdims);
  vt.reserve(sorted.nnz());
  b.owner_.reserve(virtual_slices);

  std::vector<index_t> coord(sorted.order());
  nnz_t run = 0;
  index_t vid = 0;
  bool first = true;
  for (nnz_t e = 0; e < sorted.nnz(); ++e) {
    const bool new_slice =
        e == 0 || sorted.index(mode, e) != sorted.index(mode, e - 1);
    if (new_slice) run = 0;
    if (new_slice || run == max_nnz_per_slice) {
      if (!first) ++vid;
      first = false;
      if (!new_slice) ++b.slices_split_;
      b.owner_.push_back(sorted.index(mode, e));
      run = 0;
    }
    ++run;
    for (order_t m = 0; m < sorted.order(); ++m) {
      coord[m] = m == mode ? vid : sorted.index(m, e);
    }
    vt.push(std::span<const index_t>(coord.data(), coord.size()),
            sorted.value(e));
  }
  // slices_split_ counted extra chunks above; report *distinct*
  // original slices that were split (owners with ≥ 2 virtual slices).
  if (b.slices_split_ > 0) {
    nnz_t distinct = 0;
    for (std::size_t v = 0; v < b.owner_.size();) {
      std::size_t w = v;
      while (w < b.owner_.size() && b.owner_[w] == b.owner_[v]) ++w;
      distinct += (w - v) > 1;
      v = w;
    }
    b.slices_split_ = distinct;
  }

  b.csf_ = CsfTensor::build(vt, mode);
  return b;
}

nnz_t BcsfTensor::max_virtual_slice_nnz() const {
  if (csf_.nnz() == 0) return 0;
  // Leaf count below each root node. Walk fptr chains level by level.
  nnz_t max_leaves = 0;
  const order_t levels = csf_.order();
  for (nnz_t s = 0; s < csf_.num_nodes(0); ++s) {
    nnz_t begin = s, end = s + 1;
    for (order_t l = 0; l + 1 < levels; ++l) {
      begin = csf_.fptr(l)[begin];
      end = csf_.fptr(l)[end];
    }
    max_leaves = std::max(max_leaves, end - begin);
  }
  return max_leaves;
}

void BcsfTensor::mttkrp(const FactorList& factors, DenseMatrix& out,
                        bool accumulate) const {
  SF_CHECK(factors.size() == csf_.order(), "one factor per mode");
  const index_t rank = factors[0].cols();
  SF_CHECK(out.cols() == rank, "output rank mismatch");
  if (!accumulate) out.set_zero();
  if (csf_.nnz() == 0) return;

  // Compute into a virtual-slice staging matrix via the plain CSF
  // kernel, then scatter rows to their owners (the atomic adds).
  DenseMatrix virt(static_cast<index_t>(num_virtual_slices()), rank);
  mttkrp_csf(csf_, factors, virt);
  for (nnz_t v = 0; v < num_virtual_slices(); ++v) {
    SF_CHECK(owner_[v] < out.rows(), "owner out of output range");
    value_t* dst = out.row(owner_[v]);
    const value_t* src = virt.row(static_cast<index_t>(v));
    for (index_t f = 0; f < rank; ++f) dst[f] += src[f];
  }
}

}  // namespace scalfrag
