#pragma once
// B-CSF — balanced CSF (Nisa et al., IPDPS '19: "Load-balanced sparse
// MTTKRP on GPUs", paper §II-D). Plain CSF assigns one slice per
// thread block; power-law tensors then give one block millions of
// non-zeros and most blocks a handful. B-CSF splits heavy slices into
// sub-slices capped at `max_nnz_per_slice` so every block receives
// comparable work, at the cost of atomic adds when sub-slices of the
// same original slice flush to one output row.
//
// We realize the idea as a *slice-split CSF*: the tree is built from a
// virtual tensor whose heavy mode-n slices are split; `owner()` maps
// each virtual slice back to its original index for the output update.

#include "tensor/csf.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {

class BcsfTensor {
 public:
  /// Build from a COO tensor for `mode`, splitting any slice with more
  /// than `max_nnz_per_slice` non-zeros.
  static BcsfTensor build(const CooTensor& coo, order_t mode,
                          nnz_t max_nnz_per_slice = 4096);

  const CsfTensor& csf() const noexcept { return csf_; }
  order_t mode() const noexcept { return mode_; }
  nnz_t nnz() const noexcept { return csf_.nnz(); }

  /// Virtual slice count (≥ the original occupied-slice count).
  nnz_t num_virtual_slices() const noexcept { return owner_.size(); }
  /// Original mode index the virtual slice v writes to.
  index_t owner(nnz_t v) const { return owner_[v]; }
  /// Number of original slices that were split.
  nnz_t slices_split() const noexcept { return slices_split_; }

  /// Max non-zeros any virtual slice holds (the balance guarantee).
  nnz_t max_virtual_slice_nnz() const;

  /// MTTKRP: CSF traversal over virtual slices, accumulating via
  /// owner() (atomic-add semantics where splits share a row).
  void mttkrp(const FactorList& factors, DenseMatrix& out,
              bool accumulate = false) const;

 private:
  CsfTensor csf_;          // root level indexes *virtual* slices
  order_t mode_ = 0;
  std::vector<index_t> owner_;
  nnz_t slices_split_ = 0;
};

}  // namespace scalfrag
