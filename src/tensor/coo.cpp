#include "tensor/coo.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

namespace scalfrag {

CooTensor::CooTensor(std::vector<index_t> dims) : dims_(std::move(dims)) {
  SF_CHECK(!dims_.empty() && dims_.size() <= kMaxOrder,
           "tensor order must be in [1, kMaxOrder]");
  for (index_t d : dims_) SF_CHECK(d > 0, "every mode size must be positive");
  idx_.resize(dims_.size());
}

void CooTensor::reserve(nnz_t n) {
  for (auto& v : idx_) v.reserve(n);
  vals_.reserve(n);
}

void CooTensor::push(std::span<const index_t> idx, value_t val) {
  SF_CHECK(idx.size() == dims_.size(), "coordinate arity mismatch");
  for (order_t m = 0; m < order(); ++m) {
    SF_CHECK(idx[m] < dims_[m], "coordinate out of range");
    idx_[m].push_back(idx[m]);
  }
  vals_.push_back(val);
}

void CooTensor::grow_dims(std::span<const index_t> idx) {
  SF_CHECK(idx.size() == dims_.size(), "coordinate arity mismatch");
  for (order_t m = 0; m < order(); ++m) {
    if (idx[m] >= dims_[m]) dims_[m] = idx[m] + 1;
  }
}

namespace {
/// Mode comparison order: `mode` first, then remaining modes ascending.
std::vector<order_t> key_order(order_t order, order_t mode) {
  std::vector<order_t> keys;
  keys.reserve(order);
  keys.push_back(mode);
  for (order_t m = 0; m < order; ++m) {
    if (m != mode) keys.push_back(m);
  }
  return keys;
}
}  // namespace

template <typename Less>
void CooTensor::sort_with(Less&& less) {
  std::vector<nnz_t> perm(nnz());
  std::iota(perm.begin(), perm.end(), nnz_t{0});
  // Stable: entries with identical keys (duplicate coordinates) keep
  // their current relative order, so a sort of an already-sorted copy
  // reproduces the stable counting-sort permutation views bit-for-bit
  // and duplicate accumulation order is reproducible.
  std::stable_sort(perm.begin(), perm.end(), less);

  // Apply the permutation to every index array and the values.
  auto apply = [&](auto& vec) {
    using V = std::remove_reference_t<decltype(vec)>;
    V out;
    out.resize(vec.size());
    for (nnz_t e = 0; e < perm.size(); ++e) out[e] = vec[perm[e]];
    vec = std::move(out);
  };
  for (auto& v : idx_) apply(v);
  apply(vals_);
}

void CooTensor::sort_by_mode(order_t mode) {
  SF_CHECK(mode < order(), "mode out of range");
  const auto keys = key_order(order(), mode);
  sort_by_key_order(keys);
}

void CooTensor::sort_by_key_order(std::span<const order_t> keys) {
  SF_CHECK(keys.size() == order(), "keys must cover every mode");
  std::vector<bool> seen(order(), false);
  for (order_t k : keys) {
    SF_CHECK(k < order() && !seen[k], "keys must be a mode permutation");
    seen[k] = true;
  }
  sort_with([&](nnz_t a, nnz_t b) {
    for (order_t k : keys) {
      if (idx_[k][a] != idx_[k][b]) return idx_[k][a] < idx_[k][b];
    }
    return false;
  });
}

bool CooTensor::is_sorted_by_mode(order_t mode) const {
  SF_CHECK(mode < order(), "mode out of range");
  const auto keys = key_order(order(), mode);
  for (nnz_t e = 1; e < nnz(); ++e) {
    for (order_t k : keys) {
      if (idx_[k][e - 1] != idx_[k][e]) {
        if (idx_[k][e - 1] > idx_[k][e]) return false;
        break;
      }
    }
  }
  return true;
}

nnz_t CooTensor::coalesce_duplicates() {
  SF_CHECK(is_sorted_by_mode(0), "coalesce requires sort_by_mode(0)");
  if (nnz() < 2) return 0;
  nnz_t w = 0;  // write cursor
  for (nnz_t e = 1; e < nnz(); ++e) {
    bool same = true;
    for (order_t m = 0; m < order(); ++m) {
      if (idx_[m][e] != idx_[m][w]) {
        same = false;
        break;
      }
    }
    if (same) {
      vals_[w] += vals_[e];
    } else {
      ++w;
      for (order_t m = 0; m < order(); ++m) idx_[m][w] = idx_[m][e];
      vals_[w] = vals_[e];
    }
  }
  const nnz_t removed = nnz() - (w + 1);
  for (auto& v : idx_) v.resize(w + 1);
  vals_.resize(w + 1);
  return removed;
}

std::vector<nnz_t> CooTensor::slice_ptr(order_t mode) const {
  SF_CHECK(mode < order(), "mode out of range");
  SF_CHECK(is_sorted_by_mode(mode), "slice_ptr requires mode-sorted tensor");
  std::vector<nnz_t> ptr(static_cast<std::size_t>(dims_[mode]) + 1, 0);
  for (nnz_t e = 0; e < nnz(); ++e) {
    ++ptr[static_cast<std::size_t>(idx_[mode][e]) + 1];
  }
  for (std::size_t i = 1; i < ptr.size(); ++i) ptr[i] += ptr[i - 1];
  return ptr;
}

namespace {
std::atomic<std::uint64_t> g_extract_calls{0};
}  // namespace

std::uint64_t CooTensor::extract_calls() noexcept {
  return g_extract_calls.load(std::memory_order_relaxed);
}

CooTensor CooTensor::extract(nnz_t begin, nnz_t end) const {
  SF_CHECK(begin <= end && end <= nnz(), "extract range out of bounds");
  g_extract_calls.fetch_add(1, std::memory_order_relaxed);
  CooTensor out(dims_);
  out.reserve(end - begin);
  for (order_t m = 0; m < order(); ++m) {
    out.idx_[m].assign(idx_[m].begin() + begin, idx_[m].begin() + end);
  }
  out.vals_.assign(vals_.begin() + begin, vals_.begin() + end);
  return out;
}

CooSpan CooTensor::span() const { return CooSpan(*this); }

CooSpan CooTensor::span(nnz_t begin, nnz_t end) const {
  return CooSpan(*this).subspan(begin, end);
}

CooSpan::CooSpan(const CooTensor& t)
    : dims_(&t.dims()), vals_(t.values().data()), nnz_(t.nnz()) {
  for (order_t m = 0; m < t.order(); ++m) {
    idx_[m] = t.mode_indices(m).data();
  }
}

CooSpan CooSpan::subspan(nnz_t begin, nnz_t end) const {
  SF_CHECK(begin <= end && end <= nnz_, "subspan range out of bounds");
  CooSpan s = *this;
  if (perm_ != nullptr) {
    s.perm_ += begin;  // base arrays stay put; only the window moves
  } else {
    for (order_t m = 0; m < order(); ++m) s.idx_[m] += begin;
    s.vals_ += begin;
  }
  s.nnz_ = end - begin;
  s.offset_ = offset_ + begin;
  return s;
}

CooSpan CooSpan::gather(const perm_t* perm, nnz_t n) const {
  SF_CHECK(dims_ != nullptr, "cannot gather a null span");
  SF_CHECK(perm != nullptr || n == 0, "gather needs a permutation");
  CooSpan s = *this;
  s.perm_ = perm;
  s.nnz_ = n;
  s.offset_ = 0;
  s.sort_hint_ = kNoSortHint;
  return s;
}

bool CooSpan::is_sorted_by_mode(order_t mode) const {
  SF_CHECK(mode < order(), "mode out of range");
  if (sort_hint_ == mode) return true;
  for (nnz_t e = 1; e < nnz_; ++e) {
    const nnz_t a = physical(e - 1);
    const nnz_t b = physical(e);
    if (idx_[mode][a] != idx_[mode][b]) {
      if (idx_[mode][a] > idx_[mode][b]) return false;
      continue;
    }
    for (order_t k = 0; k < order(); ++k) {
      if (k == mode || idx_[k][a] == idx_[k][b]) continue;
      if (idx_[k][a] > idx_[k][b]) return false;
      break;
    }
  }
  return true;
}

bool CooSpan::slices_contiguous(order_t mode) const {
  SF_CHECK(mode < order(), "mode out of range");
  if (sort_hint_ == mode) return true;
  const index_t* m = idx_[mode];
  if (perm_ == nullptr) {
    for (nnz_t e = 1; e < nnz_; ++e) {
      if (m[e - 1] > m[e]) return false;
    }
    return true;
  }
  for (nnz_t e = 1; e < nnz_; ++e) {
    if (m[perm_[e - 1]] > m[perm_[e]]) return false;
  }
  return true;
}

CooTensor CooSpan::materialize() const {
  SF_CHECK(dims_ != nullptr, "cannot materialize a null span");
  CooTensor out(*dims_);
  out.reserve(nnz_);
  std::vector<index_t> coord(order());
  for (nnz_t e = 0; e < nnz_; ++e) {
    const nnz_t p = physical(e);
    for (order_t m = 0; m < order(); ++m) coord[m] = idx_[m][p];
    out.push(std::span<const index_t>(coord.data(), coord.size()), vals_[p]);
  }
  return out;
}

double CooTensor::density() const noexcept {
  double cells = 1.0;
  for (index_t d : dims_) cells *= static_cast<double>(d);
  return cells > 0.0 ? static_cast<double>(nnz()) / cells : 0.0;
}

void CooTensor::validate() const {
  for (order_t m = 0; m < order(); ++m) {
    SF_CHECK(idx_[m].size() == vals_.size(),
             "index/value array length mismatch");
    for (index_t v : idx_[m]) {
      SF_CHECK(v < dims_[m], "stored coordinate out of range");
    }
  }
}

}  // namespace scalfrag
