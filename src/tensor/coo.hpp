#pragma once
// Coordinate (COO) sparse tensor: the canonical exchange format of this
// library and the on-device layout both ParTI's and ScalFrag's kernels
// consume. Indices are stored structure-of-arrays (one vector per mode)
// to match how a GPU kernel would stream them, and to make segment
// extraction (ScalFrag's tiling) a set of contiguous range copies.

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace scalfrag {

class CooSpan;

class CooTensor {
 public:
  CooTensor() = default;
  explicit CooTensor(std::vector<index_t> dims);

  order_t order() const noexcept { return static_cast<order_t>(dims_.size()); }
  const std::vector<index_t>& dims() const noexcept { return dims_; }
  index_t dim(order_t mode) const { return dims_.at(mode); }
  nnz_t nnz() const noexcept { return vals_.size(); }
  bool empty() const noexcept { return vals_.empty(); }

  void reserve(nnz_t n);

  /// Append one non-zero; `idx` must have exactly order() entries.
  void push(std::span<const index_t> idx, value_t val);
  void push(std::initializer_list<index_t> idx, value_t val) {
    push(std::span<const index_t>(idx.begin(), idx.size()), val);
  }

  index_t index(order_t mode, nnz_t e) const { return idx_.at(mode)[e]; }
  value_t value(nnz_t e) const { return vals_[e]; }
  value_t& value(nnz_t e) { return vals_[e]; }

  const std::vector<index_t>& mode_indices(order_t mode) const {
    return idx_.at(mode);
  }
  const std::vector<value_t>& values() const noexcept { return vals_; }
  std::vector<value_t>& values() noexcept { return vals_; }

  /// Lexicographic sort with `mode` as the most-significant key and the
  /// remaining modes following in increasing mode number. This is the
  /// order every mode-n kernel and the segmenter assume.
  void sort_by_mode(order_t mode);
  bool is_sorted_by_mode(order_t mode) const;

  /// Lexicographic sort with an arbitrary key order (`keys` must be a
  /// permutation of the modes). SpTTM groups fibers this way.
  void sort_by_key_order(std::span<const order_t> keys);

  /// Sum values of duplicate coordinates; requires sort_by_mode(0) first.
  /// Returns the number of duplicates removed.
  nnz_t coalesce_duplicates();

  /// CSR-style pointer over mode-`mode` slices: result[i]..result[i+1]
  /// is the nnz range of slice i (result has dim(mode)+1 entries).
  /// Requires is_sorted_by_mode(mode).
  std::vector<nnz_t> slice_ptr(order_t mode) const;

  /// Copy of the non-zero range [begin, end) — a ScalFrag segment.
  /// Hot paths should prefer a zero-copy CooSpan (see span()); extract
  /// remains for callers that need an owning tensor.
  CooTensor extract(nnz_t begin, nnz_t end) const;

  /// Zero-copy view of the non-zero range [begin, end).
  CooSpan span(nnz_t begin, nnz_t end) const;
  /// Zero-copy view of the whole tensor.
  CooSpan span() const;

  /// Process-wide count of extract() calls. Test instrumentation: the
  /// pipeline's zero-copy guarantee is asserted by checking this does
  /// not grow across a run.
  static std::uint64_t extract_calls() noexcept;

  /// Storage footprint of indices + values (what must cross PCIe).
  std::size_t bytes() const noexcept {
    return nnz() * (order() * sizeof(index_t) + sizeof(value_t));
  }

  /// nnz / Π dims (using double; overflow-safe for huge mode products).
  double density() const noexcept;

  /// Throws if any index is out of range for its mode.
  void validate() const;

 private:
  template <typename Less>
  void sort_with(Less&& less);

  std::vector<index_t> dims_;
  std::vector<std::vector<index_t>> idx_;  // [mode][entry]
  std::vector<value_t> vals_;
};

/// Zero-copy, read-only view of a contiguous non-zero range of a
/// CooTensor — the exchange type of the host execution engine. A span
/// is three raw pointers per mode plus a length: constructing one from
/// a segment is O(order), versus the O(nnz) allocation + copy of
/// CooTensor::extract. The parent tensor must outlive every span taken
/// from it, and must not be mutated (push/sort/coalesce reallocate the
/// underlying arrays) while spans are live.
class CooSpan {
 public:
  CooSpan() = default;
  /// Whole-tensor view; implicit so span-taking engines accept a
  /// CooTensor directly (mirrors std::span's container constructor).
  CooSpan(const CooTensor& t);

  /// View of [begin, end) relative to this span.
  CooSpan subspan(nnz_t begin, nnz_t end) const;

  order_t order() const noexcept {
    return dims_ ? static_cast<order_t>(dims_->size()) : 0;
  }
  const std::vector<index_t>& dims() const { return *dims_; }
  index_t dim(order_t mode) const { return dims_->at(mode); }
  nnz_t nnz() const noexcept { return nnz_; }
  bool empty() const noexcept { return nnz_ == 0; }
  /// Offset of this span's first entry in the root tensor.
  nnz_t offset() const noexcept { return offset_; }

  index_t index(order_t mode, nnz_t e) const { return idx_[mode][e]; }
  value_t value(nnz_t e) const { return vals_[e]; }

  /// Raw index array of one mode (nnz() entries). The engine's inner
  /// loops hoist these pointers out of the per-entry loop.
  const index_t* mode_indices(order_t mode) const { return idx_.at(mode); }
  const value_t* values() const noexcept { return vals_; }

  /// Storage footprint of the viewed range (what a segment copy costs).
  std::size_t bytes() const noexcept {
    return nnz_ * (order() * sizeof(index_t) + sizeof(value_t));
  }

  /// True when the mode's index array is non-decreasing over the view —
  /// the (weaker-than-sorted) property slice-owner partitioning needs:
  /// all entries of an output row are contiguous.
  bool slices_contiguous(order_t mode) const;

  /// Owning copy of the viewed range (tests / cold paths).
  CooTensor materialize() const;

 private:
  const std::vector<index_t>* dims_ = nullptr;
  std::array<const index_t*, kMaxOrder> idx_{};
  const value_t* vals_ = nullptr;
  nnz_t nnz_ = 0;
  nnz_t offset_ = 0;
};

}  // namespace scalfrag
