#pragma once
// Coordinate (COO) sparse tensor: the canonical exchange format of this
// library and the on-device layout both ParTI's and ScalFrag's kernels
// consume. Indices are stored structure-of-arrays (one vector per mode)
// to match how a GPU kernel would stream them, and to make segment
// extraction (ScalFrag's tiling) a set of contiguous range copies.

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace scalfrag {

class CooSpan;

class CooTensor {
 public:
  CooTensor() = default;
  explicit CooTensor(std::vector<index_t> dims);

  order_t order() const noexcept { return static_cast<order_t>(dims_.size()); }
  const std::vector<index_t>& dims() const noexcept { return dims_; }
  index_t dim(order_t mode) const { return dims_.at(mode); }
  nnz_t nnz() const noexcept { return vals_.size(); }
  bool empty() const noexcept { return vals_.empty(); }

  void reserve(nnz_t n);

  /// Append one non-zero; `idx` must have exactly order() entries.
  void push(std::span<const index_t> idx, value_t val);
  /// Grow mode sizes so `idx` is in range (dims_[m] ≥ idx[m]+1).
  /// Loaders that discover mode sizes while reading call this before
  /// push instead of staging the whole file to find the max indices.
  void grow_dims(std::span<const index_t> idx);
  void push(std::initializer_list<index_t> idx, value_t val) {
    push(std::span<const index_t>(idx.begin(), idx.size()), val);
  }

  index_t index(order_t mode, nnz_t e) const { return idx_.at(mode)[e]; }
  value_t value(nnz_t e) const { return vals_[e]; }
  value_t& value(nnz_t e) { return vals_[e]; }

  const std::vector<index_t>& mode_indices(order_t mode) const {
    return idx_.at(mode);
  }
  const std::vector<value_t>& values() const noexcept { return vals_; }
  std::vector<value_t>& values() noexcept { return vals_; }

  /// Lexicographic sort with `mode` as the most-significant key and the
  /// remaining modes following in increasing mode number. This is the
  /// order every mode-n kernel and the segmenter assume.
  void sort_by_mode(order_t mode);
  bool is_sorted_by_mode(order_t mode) const;

  /// Lexicographic sort with an arbitrary key order (`keys` must be a
  /// permutation of the modes). SpTTM groups fibers this way.
  void sort_by_key_order(std::span<const order_t> keys);

  /// Sum values of duplicate coordinates; requires sort_by_mode(0) first.
  /// Returns the number of duplicates removed.
  nnz_t coalesce_duplicates();

  /// CSR-style pointer over mode-`mode` slices: result[i]..result[i+1]
  /// is the nnz range of slice i (result has dim(mode)+1 entries).
  /// Requires is_sorted_by_mode(mode).
  std::vector<nnz_t> slice_ptr(order_t mode) const;

  /// Copy of the non-zero range [begin, end) — a ScalFrag segment.
  /// Hot paths should prefer a zero-copy CooSpan (see span()); extract
  /// remains for callers that need an owning tensor.
  CooTensor extract(nnz_t begin, nnz_t end) const;

  /// Zero-copy view of the non-zero range [begin, end).
  CooSpan span(nnz_t begin, nnz_t end) const;
  /// Zero-copy view of the whole tensor.
  CooSpan span() const;

  /// Process-wide count of extract() calls. Test instrumentation: the
  /// pipeline's zero-copy guarantee is asserted by checking this does
  /// not grow across a run.
  static std::uint64_t extract_calls() noexcept;

  /// Storage footprint of indices + values (what must cross PCIe).
  std::size_t bytes() const noexcept {
    return nnz() * (order() * sizeof(index_t) + sizeof(value_t));
  }

  /// nnz / Π dims (using double; overflow-safe for huge mode products).
  double density() const noexcept;

  /// Throws if any index is out of range for its mode.
  void validate() const;

 private:
  template <typename Less>
  void sort_with(Less&& less);

  std::vector<index_t> dims_;
  std::vector<std::vector<index_t>> idx_;  // [mode][entry]
  std::vector<value_t> vals_;
};

/// Zero-copy, read-only view of a non-zero range of a CooTensor — the
/// exchange type of the host execution engine. A span is three raw
/// pointers per mode plus a length: constructing one from a segment is
/// O(order), versus the O(nnz) allocation + copy of CooTensor::extract.
///
/// A span is either *contiguous* (logical entry e reads base arrays at
/// position e) or a *gather view* (logical entry e reads base arrays at
/// permutation()[e] — how ModeViews and the hybrid GPU share present a
/// reordered tensor without copying it). index()/value() are transparent
/// either way; the raw mode_indices()/values() accessors exist only for
/// contiguous spans, and kernels that support both dispatch on
/// permutation() over index_base()/value_base().
///
/// The parent tensor (and for gather views, the permutation array) must
/// outlive every span taken from it, and must not be mutated
/// (push/sort/coalesce reallocate the underlying arrays) while spans
/// are live.
class CooSpan {
 public:
  CooSpan() = default;
  /// Whole-tensor view; implicit so span-taking engines accept a
  /// CooTensor directly (mirrors std::span's container constructor).
  CooSpan(const CooTensor& t);

  /// View of [begin, end) relative to this span. O(1): advances the
  /// base pointers on a contiguous span, the permutation window on a
  /// gather view. The mode-sorted hint (see assume_sorted_by) is kept —
  /// a contiguous subrange of a sorted sequence stays sorted.
  CooSpan subspan(nnz_t begin, nnz_t end) const;

  /// Gather view over this span's base arrays: logical entry e of the
  /// result reads base position perm[e] (entries of perm are *physical*
  /// positions — compose through physical() when deriving them from an
  /// already-permuted span; any permutation on this span is replaced).
  /// `perm` must outlive the view. Clears the sort hint; callers that
  /// know the gathered order is mode-sorted chain assume_sorted_by().
  CooSpan gather(const perm_t* perm, nnz_t n) const;

  order_t order() const noexcept {
    return dims_ ? static_cast<order_t>(dims_->size()) : 0;
  }
  const std::vector<index_t>& dims() const { return *dims_; }
  index_t dim(order_t mode) const { return dims_->at(mode); }
  nnz_t nnz() const noexcept { return nnz_; }
  bool empty() const noexcept { return nnz_ == 0; }
  /// Offset of this span's first entry in the root tensor (contiguous
  /// spans) or in the originating gather view.
  nnz_t offset() const noexcept { return offset_; }

  /// Physical position in the base arrays of logical entry e.
  nnz_t physical(nnz_t e) const noexcept { return perm_ ? perm_[e] : e; }

  index_t index(order_t mode, nnz_t e) const {
    return idx_[mode][physical(e)];
  }
  value_t value(nnz_t e) const { return vals_[physical(e)]; }

  /// Raw index array of one mode (nnz() entries, logical order). Only
  /// valid on contiguous spans — gather views have no such array; use
  /// index_base()/permutation() there.
  const index_t* mode_indices(order_t mode) const {
    SF_CHECK(perm_ == nullptr,
             "mode_indices() needs a contiguous span; gather views are "
             "addressed via index_base()/permutation()");
    return idx_.at(mode);
  }
  const value_t* values() const {
    SF_CHECK(perm_ == nullptr,
             "values() needs a contiguous span; gather views are "
             "addressed via value_base()/permutation()");
    return vals_;
  }

  /// Base-array accessors: physical storage, addressed through
  /// physical(e) / permutation(). Valid for both span kinds.
  const index_t* index_base(order_t mode) const { return idx_.at(mode); }
  const value_t* value_base() const noexcept { return vals_; }
  /// Gather permutation, or nullptr for contiguous spans.
  const perm_t* permutation() const noexcept { return perm_; }
  bool is_gather() const noexcept { return perm_ != nullptr; }

  /// Record (without scanning) that this view's logical order is the
  /// mode-`mode` lexicographic sort order. is_sorted_by_mode and
  /// slices_contiguous then answer in O(1). Returns *this for chaining.
  CooSpan& assume_sorted_by(order_t mode) {
    SF_CHECK(mode < order(), "mode out of range");
    sort_hint_ = mode;
    return *this;
  }
  /// Mode-`mode` lexicographic sortedness of the *logical* entry order.
  /// O(1) when hinted via assume_sorted_by, O(nnz · order) otherwise.
  bool is_sorted_by_mode(order_t mode) const;

  /// Storage footprint of the viewed range (what a segment copy costs).
  std::size_t bytes() const noexcept {
    return nnz_ * (order() * sizeof(index_t) + sizeof(value_t));
  }

  /// True when the mode's index sequence is non-decreasing over the
  /// view (logical order) — the (weaker-than-sorted) property
  /// slice-owner partitioning needs: all entries of an output row are
  /// contiguous. O(1) when the view carries a matching sort hint.
  bool slices_contiguous(order_t mode) const;

  /// Owning copy of the viewed range in logical order (tests / cold
  /// paths). Materializing a gather view yields the reordered tensor.
  CooTensor materialize() const;

 private:
  const std::vector<index_t>* dims_ = nullptr;
  std::array<const index_t*, kMaxOrder> idx_{};
  const value_t* vals_ = nullptr;
  const perm_t* perm_ = nullptr;
  nnz_t nnz_ = 0;
  nnz_t offset_ = 0;
  static constexpr order_t kNoSortHint = 0xff;
  order_t sort_hint_ = kNoSortHint;
};

}  // namespace scalfrag
