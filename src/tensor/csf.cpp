#include "tensor/csf.hpp"

namespace scalfrag {

CsfTensor CsfTensor::build(const CooTensor& coo, order_t mode) {
  SF_CHECK(mode < coo.order(), "mode out of range");
  if (!coo.is_sorted_by_mode(mode)) {
    CooTensor sorted = coo;
    sorted.sort_by_mode(mode);
    return build(CooSpan(sorted), mode);
  }
  return build(CooSpan(coo), mode);
}

CsfTensor CsfTensor::build(const CooSpan& src, order_t mode) {
  SF_CHECK(mode < src.order(), "mode out of range");

  CsfTensor csf;
  csf.dims_ = src.dims();
  csf.mode_order_.push_back(mode);
  for (order_t m = 0; m < src.order(); ++m) {
    if (m != mode) csf.mode_order_.push_back(m);
  }
  const order_t order = src.order();
  csf.fids_.resize(order);
  csf.fptr_.resize(order > 0 ? order - 1 : 0);

  if (src.nnz() == 0) return csf;

  const nnz_t n = src.nnz();
  csf.vals_.resize(n);
  for (nnz_t e = 0; e < n; ++e) csf.vals_[e] = src.value(e);

  // Spans cannot be sorted in place, so the required logical order is a
  // precondition — verify it rather than silently building a corrupt
  // tree (duplicate fids at every level).
  for (nnz_t e = 1; e < n; ++e) {
    bool ok = false, tied = true;
    for (order_t l = 0; l < order && tied; ++l) {
      const order_t m = csf.mode_order_[l];
      const index_t a = src.index(m, e - 1), b = src.index(m, e);
      if (a != b) {
        ok = a < b;
        tied = false;
      }
    }
    SF_CHECK(tied || ok,
             "CsfTensor::build(span): span is not mode-sorted for the "
             "requested mode");
  }

  // A node at level l is a maximal run of entries sharing the coordinate
  // prefix (levels 0..l). Because the tensor is sorted in exactly this
  // key order, runs are contiguous, and each level's nodes partition the
  // previous level's runs.
  for (order_t l = 0; l < order; ++l) {
    const order_t m = csf.mode_order_[l];
    auto& fids = csf.fids_[l];
    std::vector<nnz_t> starts;  // entry index where each node begins
    for (nnz_t e = 0; e < n; ++e) {
      // Leaf nodes are one per entry: vals_ is indexed by leaf node, so
      // duplicate coordinates must keep distinct leaves (collapsing
      // them would drop all but one of the duplicate values).
      bool is_new = (e == 0) || (l + 1 == order);
      if (!is_new) {
        // New node when any coordinate in levels 0..l changed.
        for (order_t ll = 0; ll <= l; ++ll) {
          const order_t mm = csf.mode_order_[ll];
          if (src.index(mm, e) != src.index(mm, e - 1)) {
            is_new = true;
            break;
          }
        }
      }
      if (is_new) {
        fids.push_back(src.index(m, e));
        starts.push_back(e);
      }
    }
    if (l > 0) {
      // fptr for the parent level: parent p owns children whose start
      // falls inside the parent's entry range.
      auto& parent_fptr = csf.fptr_[l - 1];
      parent_fptr.assign(csf.fids_[l - 1].size() + 1, 0);
      // Recompute parent starts the same way to map entry→parent.
      std::size_t p = 0;
      std::vector<nnz_t> parent_starts;
      for (nnz_t e = 0; e < n; ++e) {
        bool is_new = (e == 0);
        if (!is_new) {
          for (order_t ll = 0; ll + 1 <= l; ++ll) {
            const order_t mm = csf.mode_order_[ll];
            if (src.index(mm, e) != src.index(mm, e - 1)) {
              is_new = true;
              break;
            }
          }
        }
        if (is_new) parent_starts.push_back(e);
      }
      for (nnz_t c = 0; c < starts.size(); ++c) {
        while (p + 1 < parent_starts.size() && parent_starts[p + 1] <= starts[c]) {
          ++p;
        }
        ++parent_fptr[p + 1];
      }
      for (std::size_t i = 1; i < parent_fptr.size(); ++i) {
        parent_fptr[i] += parent_fptr[i - 1];
      }
    }
  }
  return csf;
}

std::size_t CsfTensor::bytes() const noexcept {
  std::size_t b = vals_.size() * sizeof(value_t);
  for (const auto& v : fids_) b += v.size() * sizeof(index_t);
  for (const auto& v : fptr_) b += v.size() * sizeof(nnz_t);
  return b;
}

}  // namespace scalfrag
