#pragma once
// Compressed Sparse Fiber (CSF) — the tree-based format of Smith &
// Karypis (IA3 '15), generalizing CSR to higher orders. ScalFrag itself
// computes on COO segments, but the paper's Background (§II-D) and the
// feature extractor both reason about slices/fibers, and the CPU side of
// the hybrid executor walks CSF because the tree amortizes index reads.
//
// Level l of the tree corresponds to mode mode_order[l]; level 0 nodes
// are slices, level order-2 nodes are fibers, and the leaf level stores
// the non-zero values.

#include <vector>

#include "tensor/coo.hpp"

namespace scalfrag {

class CsfTensor {
 public:
  /// Build from a COO tensor. `mode` becomes the root level; remaining
  /// modes follow in increasing mode number (matching
  /// CooTensor::sort_by_mode). The input is copied and sorted if needed.
  static CsfTensor build(const CooTensor& coo, order_t mode);

  /// Build from a zero-copy span (contiguous or gather view). The span's
  /// logical entry order must already be mode-sorted for `mode` — spans
  /// cannot be sorted in place; this is verified (throws on violation).
  /// ModeViews gather views satisfy it by construction.
  static CsfTensor build(const CooSpan& span, order_t mode);

  order_t order() const noexcept {
    return static_cast<order_t>(mode_order_.size());
  }
  /// mode_order()[l] = original tensor mode stored at tree level l.
  const std::vector<order_t>& mode_order() const noexcept {
    return mode_order_;
  }
  const std::vector<index_t>& dims() const noexcept { return dims_; }
  nnz_t nnz() const noexcept { return vals_.size(); }

  /// Number of nodes at tree level l (level 0 = slices with ≥1 nnz).
  nnz_t num_nodes(order_t level) const { return fids_.at(level).size(); }

  /// Node index arrays: fids(l)[n] is the coordinate (in mode
  /// mode_order()[l]) of node n at level l.
  const std::vector<index_t>& fids(order_t level) const {
    return fids_.at(level);
  }
  /// Child ranges: children of node n at level l are
  /// [fptr(l)[n], fptr(l)[n+1]) at level l+1. Defined for l < order-1.
  const std::vector<nnz_t>& fptr(order_t level) const {
    return fptr_.at(level);
  }
  const std::vector<value_t>& values() const noexcept { return vals_; }

  /// Total bytes of all level arrays + values (storage-compression
  /// comparisons vs COO).
  std::size_t bytes() const noexcept;

 private:
  std::vector<order_t> mode_order_;
  std::vector<index_t> dims_;              // original tensor dims
  std::vector<std::vector<index_t>> fids_;  // [level][node]
  std::vector<std::vector<nnz_t>> fptr_;    // [level][node] (order-1 levels)
  std::vector<value_t> vals_;
};

}  // namespace scalfrag
