#include "tensor/csf_tiled.hpp"

#include <algorithm>
#include <optional>

#include "common/thread_pool.hpp"
#include "tensor/simd/microkernels.hpp"

namespace scalfrag {

const char* csf_tiled_variant_name(CsfTiledVariant v) {
  switch (v) {
    case CsfTiledVariant::Serial:
      return "serial";
    case CsfTiledVariant::Sync:
      return "sync";
    case CsfTiledVariant::Coop:
      return "coop";
  }
  return "?";
}

CsfTiling CsfTiling::build(const CsfTensor& t, nnz_t unit_budget) {
  SF_CHECK(unit_budget > 0, "tile budget must be positive");
  CsfTiling tl;
  tl.unit_budget = unit_budget;
  const order_t order = t.order();
  if (order == 0 || t.nnz() == 0) return tl;
  tl.tile_level = order >= 2 ? 1 : 0;
  const nnz_t units = t.num_nodes(tl.tile_level);

  if (order == 1) {
    // Root nodes are the leaves (one per entry): tiles are plain node
    // ranges, never sharing a node.
    for (nnz_t u0 = 0; u0 < units; u0 += unit_budget) {
      const nnz_t u1 = std::min<nnz_t>(u0 + unit_budget, units);
      CsfTile tile;
      tile.unit_begin = u0;
      tile.unit_end = u1;
      tile.slice_begin = u0;
      tile.slice_end = u1;
      tile.leaf_begin = u0;
      tile.leaf_end = u1;
      tl.tiles.push_back(tile);
    }
    return tl;
  }

  // Leaf offset of fiber u: follow first-child pointers down the tree.
  // Monotone in u, so consecutive tiles partition [0, nnz).
  auto leaf_of = [&](nnz_t u) {
    nnz_t o = u;
    for (order_t l = 1; l + 1 < order; ++l) o = t.fptr(l)[o];
    return o;
  };

  const auto& f0 = t.fptr(0);
  nnz_t s = 0;   // slice containing the tile's first fiber
  nnz_t u0 = 0;
  while (u0 < units) {
    const nnz_t u1 = std::min<nnz_t>(u0 + unit_budget, units);
    while (f0[s + 1] <= u0) ++s;
    CsfTile tile;
    tile.unit_begin = u0;
    tile.unit_end = u1;
    tile.slice_begin = s;
    tile.first_slice_shared = u0 > f0[s];
    nnz_t se = s;  // slice containing fiber u1-1
    while (f0[se + 1] < u1) ++se;
    tile.slice_end = se + 1;
    tile.leaf_begin = leaf_of(u0);
    tile.leaf_end = u1 == units ? t.nnz() : leaf_of(u1);
    tl.tiles.push_back(tile);
    u0 = u1;
  }
  return tl;
}

nnz_t CsfTiling::auto_budget(const CsfTensor& t, std::size_t threads) {
  if (threads == 0) threads = ThreadPool::global().size();
  threads = std::max<std::size_t>(1, threads);
  const order_t order = t.order();
  const nnz_t units =
      order >= 2 ? t.num_nodes(1) : (order == 1 ? t.num_nodes(0) : 0);
  if (units == 0) return 1;
  // ~4 tiles per worker balances without flooding the scheduler; the
  // 4096 cap bounds coop's private blocks (≤ budget+1 slice rows each).
  const nnz_t per = (units + threads * 4 - 1) / (threads * 4);
  return std::clamp<nnz_t>(per, 1, 4096);
}

void mttkrp_csf_tiled(const CsfTensor& t, const FactorList& factors,
                      DenseMatrix& out, bool accumulate,
                      const CsfTiledOptions& opt) {
  nnz_t budget = opt.fiber_budget;
  if (budget == 0) budget = CsfTiling::auto_budget(t, opt.host.threads);
  mttkrp_csf_tiled(t, CsfTiling::build(t, budget), factors, out, accumulate,
                   opt);
}

namespace {

std::size_t effective_threads(const HostExecParams& opt) {
  const std::size_t pool = ThreadPool::global().size();
  return std::max<std::size_t>(1, opt.threads == 0 ? pool : opt.threads);
}

}  // namespace

void mttkrp_csf_tiled(const CsfTensor& t, const CsfTiling& tiling,
                      const FactorList& factors, DenseMatrix& out,
                      bool accumulate, const CsfTiledOptions& opt) {
  SF_CHECK(factors.size() == t.order(), "one factor per mode");
  const index_t rank = factors[0].cols();
  for (const auto& f : factors) {
    SF_CHECK(f.cols() == rank, "all factors must share rank F");
  }
  const order_t root_mode = t.mode_order()[0];
  SF_CHECK(out.rows() == t.dims()[root_mode] && out.cols() == rank,
           "output shape must be dims[root] × F");
  if (!accumulate) out.set_zero();
  if (t.nnz() == 0) return;

  const simd::KernelTable& kt = simd::kernels_for(opt.host.isa);
  ThreadPool& pool = ThreadPool::global();
  if (opt.host.pinning != PinPolicy::None) pool.apply_pinning(opt.host.pinning);
  const std::size_t threads = effective_threads(opt.host);
  const nnz_t slices = t.num_nodes(0);
  const std::size_t n_tiles = tiling.tiles.size();

  // The parallel schedules need the factored fiber kernel (order >= 2)
  // and more than one tile's worth of work to pay for themselves.
  CsfTiledVariant variant = opt.variant;
  if (t.order() < 2 || threads <= 1 || n_tiles <= 1 ||
      t.nnz() < opt.host.grain_nnz) {
    variant = CsfTiledVariant::Serial;
  }

  std::optional<obs::MetricsRegistry::ScopedSpan> span;
  if (opt.host.metrics != nullptr) {
    opt.host.metrics->count("csf_tiled/calls");
    opt.host.metrics->count("csf_tiled/nnz", t.nnz());
    opt.host.metrics->count("csf_tiled/tiles", n_tiles);
    opt.host.metrics->count(std::string("csf_tiled/variant/") +
                            csf_tiled_variant_name(variant));
    opt.host.metrics->count(std::string("csf_tiled/isa/") + kt.name);
    span.emplace(*opt.host.metrics, "csf_tiled/mttkrp");
  }

  switch (variant) {
    case CsfTiledVariant::Serial:
      kt.csf_slices_leaf(t, factors, 0, slices, out);
      return;

    case CsfTiledVariant::Sync: {
      // Tiles in parallel. Each tile writes its owned slices straight
      // into `out` (the owner is the tile where the slice's first fiber
      // lives, so owners never collide); the single slice a tile enters
      // mid-way goes to a private partial row, folded in tile order
      // after the join — a deterministic stand-in for the paper's
      // inter-tile synchronization.
      std::vector<DenseMatrix> partials(n_tiles);
      pool.parallel_for(
          0, n_tiles,
          [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
              const CsfTile& tile = tiling.tiles[i];
              nnz_t own_begin = tile.slice_begin;
              if (tile.first_slice_shared) {
                // First-touch the partial inside the worker (NUMA).
                partials[i] = DenseMatrix(1, rank);
                kt.csf_fibers_factored(t, factors, tile.slice_begin,
                                       tile.slice_begin + 1, tile.unit_begin,
                                       tile.unit_end, partials[i],
                                       /*node_rows=*/true);
                ++own_begin;
              }
              kt.csf_fibers_factored(t, factors, own_begin, tile.slice_end,
                                     tile.unit_begin, tile.unit_end, out,
                                     /*node_rows=*/false);
            }
          },
          /*grain=*/1);
      const index_t* fids0 = t.fids(0).data();
      for (std::size_t i = 0; i < n_tiles; ++i) {
        const CsfTile& tile = tiling.tiles[i];
        if (!tile.first_slice_shared) continue;
        kt.rows_add(out.row(fids0[tile.slice_begin]), partials[i].row(0),
                    static_cast<std::size_t>(rank));
      }
      return;
    }

    case CsfTiledVariant::Coop: {
      // One tile at a time; all workers cooperate on disjoint fiber
      // chunks into private slice-row blocks, then the blocks reduce in
      // chunk order (parallel over rows — rows are disjoint, and the
      // per-row fold order is fixed, so the result is deterministic).
      const index_t* fids0 = t.fids(0).data();
      std::vector<DenseMatrix> blocks(threads);
      for (const CsfTile& tile : tiling.tiles) {
        const nnz_t units = tile.units();
        std::size_t chunks = static_cast<std::size_t>(
            std::min<nnz_t>(static_cast<nnz_t>(threads), units));
        if (tile.leaves() < opt.host.grain_nnz) chunks = 1;
        if (chunks <= 1) {
          kt.csf_fibers_factored(t, factors, tile.slice_begin, tile.slice_end,
                                 tile.unit_begin, tile.unit_end, out,
                                 /*node_rows=*/false);
          continue;
        }
        const index_t rows = static_cast<index_t>(tile.slice_end -
                                                  tile.slice_begin);
        const nnz_t per = (units + chunks - 1) / chunks;
        pool.parallel_for(
            0, chunks,
            [&](std::size_t lo, std::size_t hi) {
              for (std::size_t c = lo; c < hi; ++c) {
                const nnz_t fb = tile.unit_begin + c * per;
                const nnz_t fe =
                    std::min<nnz_t>(tile.unit_end, fb + per);
                if (fb >= fe) continue;
                blocks[c] = DenseMatrix(rows, rank);
                kt.csf_fibers_factored(t, factors, tile.slice_begin,
                                       tile.slice_end, fb, fe, blocks[c],
                                       /*node_rows=*/true);
              }
            },
            /*grain=*/1);
        pool.parallel_for(
            0, static_cast<std::size_t>(rows),
            [&](std::size_t lo, std::size_t hi) {
              for (std::size_t r = lo; r < hi; ++r) {
                value_t* orow =
                    out.row(fids0[tile.slice_begin + r]);
                for (std::size_t c = 0; c < chunks; ++c) {
                  if (blocks[c].rows() == 0) continue;  // empty tail chunk
                  kt.rows_add(orow, blocks[c].row(static_cast<index_t>(r)),
                              static_cast<std::size_t>(rank));
                }
              }
            },
            /*grain=*/16);
        for (std::size_t c = 0; c < chunks; ++c) blocks[c] = DenseMatrix();
      }
      return;
    }
  }
}

}  // namespace scalfrag
