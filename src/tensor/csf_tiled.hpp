#pragma once
// CSF tiled MTTKRP — the SPLATT-style peer backend of the COO path.
//
// The tensor is cut into contiguous *fiber tiles* (level-1 node ranges
// of at most `fiber_budget` fibers; the host-side analogue of the
// paper's shared-memory tile). Two parallel schedules run over them:
//
//   Sync-tiled  Tiles run concurrently. A root slice is owned by the
//               tile containing its first fiber and written directly;
//               the at-most-one slice a tile *enters mid-way* (its
//               first, shared with the previous tile) accumulates into
//               a per-tile partial row, folded serially in tile order
//               after the join — deterministic for a fixed tiling.
//
//   Coop-tiled  Tiles run one at a time; all workers cooperate inside
//               the tile on disjoint fiber chunks into private
//               slice-row blocks, then reduce the blocks in chunk
//               order (parallel over rows) — also deterministic.
//
//   Serial      The leaf-ordered walk: per-entry op sequence identical
//               to the COO serial kernel (memcmp bit-identity on
//               duplicate-free inputs; see the conformance table).
//
// Rank-tile inner loops route through the runtime-dispatched SIMD
// KernelTable (csf_slices_leaf / csf_fibers_factored), so all ISA
// tables stay bit-identical per variant.

#include <vector>

#include "tensor/csf.hpp"
#include "tensor/mttkrp_par.hpp"

namespace scalfrag {

enum class CsfTiledVariant { Serial, Sync, Coop };

const char* csf_tiled_variant_name(CsfTiledVariant v);

/// One fiber tile. Units are level-1 nodes (fibers) for order >= 2 and
/// root nodes for order 1; slice/leaf ranges are derived, with
/// [leaf_begin, leaf_end) partitioning [0, nnz) across the tiling.
struct CsfTile {
  nnz_t unit_begin = 0, unit_end = 0;    // fiber (tile-unit) range
  nnz_t slice_begin = 0, slice_end = 0;  // root slices touched
  nnz_t leaf_begin = 0, leaf_end = 0;    // nnz range
  /// True when slice_begin started in an earlier tile — the sync
  /// schedule must privatize this tile's contribution to it.
  bool first_slice_shared = false;

  nnz_t units() const noexcept { return unit_end - unit_begin; }
  nnz_t leaves() const noexcept { return leaf_end - leaf_begin; }
};

/// The tile decomposition of one CsfTensor. Reusable across runs and
/// factor updates (CsfPlan caches one per mode).
struct CsfTiling {
  order_t tile_level = 0;  // 1 for order >= 2, 0 for order 1
  nnz_t unit_budget = 0;
  std::vector<CsfTile> tiles;

  /// Greedy contiguous tiling: every tile gets at most `unit_budget`
  /// fibers, tiles cover all fibers in order.
  static CsfTiling build(const CsfTensor& t, nnz_t unit_budget);

  /// Default budget: about four tiles per worker for balance, clamped
  /// to [1, 4096] so coop's private blocks (≤ budget+1 slice rows) stay
  /// cache-sized. `threads` = 0 means ThreadPool::global().size().
  static nnz_t auto_budget(const CsfTensor& t, std::size_t threads = 0);
};

struct CsfTiledOptions {
  CsfTiledVariant variant = CsfTiledVariant::Sync;
  /// Fibers per tile; 0 derives CsfTiling::auto_budget from the host
  /// thread count. Ignored when an explicit CsfTiling is passed.
  nnz_t fiber_budget = 0;
  /// Thread count / grain / metrics / ISA / pinning, shared with the
  /// COO engine. strategy is ignored (the variant is the schedule).
  HostExecParams host;
};

/// Mode-`mode_order()[0]` MTTKRP of the CSF tensor into `out` (shape
/// dims[root] × F; zeroed first unless `accumulate`). Builds a tiling
/// per call — use the CsfTiling overload (or CsfPlan) to amortize it.
void mttkrp_csf_tiled(const CsfTensor& t, const FactorList& factors,
                      DenseMatrix& out, bool accumulate = false,
                      const CsfTiledOptions& opt = {});

/// Same, over a prebuilt tiling (must have been built from `t`).
void mttkrp_csf_tiled(const CsfTensor& t, const CsfTiling& tiling,
                      const FactorList& factors, DenseMatrix& out,
                      bool accumulate, const CsfTiledOptions& opt);

}  // namespace scalfrag
