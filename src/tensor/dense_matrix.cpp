#include "tensor/dense_matrix.hpp"

#include <cmath>

namespace scalfrag {

double DenseMatrix::max_abs_diff(const DenseMatrix& a, const DenseMatrix& b) {
  SF_CHECK(a.same_shape(b), "max_abs_diff requires equal shapes");
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a.data_[i]) -
                             static_cast<double>(b.data_[i])));
  }
  return m;
}

}  // namespace scalfrag
