#pragma once
// Row-major dense matrix of value_t. This is the representation of CPD
// factor matrices and MTTKRP outputs. Row-major is the natural layout
// for MTTKRP: one non-zero touches one contiguous row per factor.

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace scalfrag {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(index_t rows, index_t cols, value_t fill = value_t{0})
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, fill) {}

  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  std::size_t bytes() const noexcept { return data_.size() * sizeof(value_t); }

  value_t& operator()(index_t i, index_t j) noexcept {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }
  value_t operator()(index_t i, index_t j) const noexcept {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }

  value_t* row(index_t i) noexcept {
    return data_.data() + static_cast<std::size_t>(i) * cols_;
  }
  const value_t* row(index_t i) const noexcept {
    return data_.data() + static_cast<std::size_t>(i) * cols_;
  }

  value_t* data() noexcept { return data_.data(); }
  const value_t* data() const noexcept { return data_.data(); }

  void set_zero() noexcept { std::fill(data_.begin(), data_.end(), 0.0f); }
  void fill(value_t v) noexcept { std::fill(data_.begin(), data_.end(), v); }

  /// Uniform [0,1) initialization — the standard CPD-ALS factor init.
  void randomize(Rng& rng) {
    for (auto& v : data_) v = rng.next_float();
  }

  bool same_shape(const DenseMatrix& o) const noexcept {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  /// Max absolute element-wise difference; shapes must match.
  static double max_abs_diff(const DenseMatrix& a, const DenseMatrix& b);

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<value_t> data_;
};

}  // namespace scalfrag
