#pragma once
// Small dense N-way tensor — the Tucker core array. Row-major-style
// layout with the last mode fastest; sized for cores (a few hundred
// elements), not data tensors.

#include <cmath>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace scalfrag {

class DenseTensor {
 public:
  DenseTensor() = default;
  explicit DenseTensor(std::vector<index_t> dims) : dims_(std::move(dims)) {
    SF_CHECK(!dims_.empty() && dims_.size() <= kMaxOrder,
             "order must be in [1, kMaxOrder]");
    std::size_t n = 1;
    for (index_t d : dims_) {
      SF_CHECK(d > 0, "every mode size must be positive");
      n *= d;
    }
    data_.assign(n, value_t{0});
  }

  order_t order() const noexcept {
    return static_cast<order_t>(dims_.size());
  }
  const std::vector<index_t>& dims() const noexcept { return dims_; }
  std::size_t size() const noexcept { return data_.size(); }

  /// Linear offset of a coordinate (last mode fastest).
  std::size_t offset(std::span<const index_t> coord) const {
    SF_CHECK(coord.size() == dims_.size(), "coordinate arity");
    std::size_t off = 0;
    for (std::size_t m = 0; m < dims_.size(); ++m) {
      SF_CHECK(coord[m] < dims_[m], "coordinate out of range");
      off = off * dims_[m] + coord[m];
    }
    return off;
  }

  value_t& at(std::span<const index_t> coord) { return data_[offset(coord)]; }
  value_t at(std::span<const index_t> coord) const {
    return data_[offset(coord)];
  }

  value_t* data() noexcept { return data_.data(); }
  const value_t* data() const noexcept { return data_.data(); }

  double norm() const noexcept {
    double s = 0.0;
    for (value_t v : data_) {
      s += static_cast<double>(v) * static_cast<double>(v);
    }
    return std::sqrt(s);
  }

 private:
  std::vector<index_t> dims_;
  std::vector<value_t> data_;
};

}  // namespace scalfrag
