#include "tensor/external_sort.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <limits>
#include <utility>

#include <unistd.h>

#include "obs/metrics.hpp"
#include "tensor/io_tns.hpp"
#include "tensor/io_tns_detail.hpp"

namespace scalfrag {

namespace fs = std::filesystem;

namespace {

std::atomic<std::uint64_t> g_sorter_seq{0};

/// The sort_by_mode key order: `mode` first, remaining modes ascending.
/// Must match coo.cpp's key_order exactly — the merge reproduces the
/// in-core sort bit-for-bit only if both rank coordinates identically.
std::vector<order_t> key_order(order_t order, order_t mode) {
  std::vector<order_t> keys;
  keys.reserve(order);
  keys.push_back(mode);
  for (order_t m = 0; m < order; ++m) {
    if (m != mode) keys.push_back(m);
  }
  return keys;
}

std::size_t entry_bytes(std::size_t order) {
  return order * sizeof(index_t) + sizeof(value_t);
}

}  // namespace

/// Sequential reader over one spilled run. Runs are .tns text written
/// by this process, so anything malformed means the file was tampered
/// with or truncated after spill — every anomaly is a typed error.
struct ExternalSorter::RunReader {
  std::ifstream in;
  std::string path;
  std::string line;
  std::size_t lineno = 0;
  std::size_t order;

  RunReader(std::string p, std::size_t ord)
      : in(p), path(std::move(p)), order(ord) {
    SF_CHECK(in.good(), "spill run missing or unreadable: " + path);
  }

  bool next(std::array<index_t, kMaxOrder>& idx, value_t& val) {
    while (std::getline(in, line)) {
      ++lineno;
      const auto tokens = tns_detail::tokenize(line);
      if (tokens.empty()) continue;
      SF_CHECK(tokens.size() == order + 1,
               "corrupt spill run " + path + ", " +
                   tns_detail::at_line(lineno) + "expected " +
                   std::to_string(order + 1) + " fields, got " +
                   std::to_string(tokens.size()));
      for (std::size_t m = 0; m < order; ++m) {
        idx[m] = tns_detail::parse_index(tokens[m], lineno, m);
      }
      val = tns_detail::parse_value(tokens[order], lineno);
      return true;
    }
    SF_CHECK(in.eof(), "stream error while reading spill run " + path);
    return false;
  }
};

ExternalSorter::ExternalSorter(ExternalSortOptions opt)
    : opt_(std::move(opt)) {
  SF_CHECK(opt_.max_open_runs >= 2, "merge fan-in must be at least 2");
  const fs::path base = opt_.temp_dir.empty()
                            ? fs::temp_directory_path()
                            : fs::path(opt_.temp_dir);
  const fs::path dir =
      base / ("scalfrag-xsort-" + std::to_string(::getpid()) + "-" +
              std::to_string(
                  g_sorter_seq.fetch_add(1, std::memory_order_relaxed)));
  fs::create_directories(dir);
  dir_ = dir.string();
}

ExternalSorter::~ExternalSorter() { remove_run_files(); }

void ExternalSorter::remove_run_files() {
  std::error_code ec;  // best-effort cleanup; never throw from here
  fs::remove_all(dir_, ec);
  runs_.clear();
}

std::string ExternalSorter::spill_path(std::size_t id) const {
  return (fs::path(dir_) / ("run-" + std::to_string(id) + ".tns")).string();
}

void ExternalSorter::add_window(CooTensor window) {
  if (window.nnz() == 0) return;
  if (order_ == 0) {
    order_ = window.order();
    SF_CHECK(opt_.mode < order_, "sort mode out of range for window order");
  }
  SF_CHECK(window.order() == order_, "window order mismatch across windows");

  // Residency during this phase: the window itself plus the sort
  // scratch sort_with allocates (a permutation array and one array-wide
  // copy while applying it).
  const std::size_t scratch =
      window.nnz() * (sizeof(nnz_t) +
                      std::max(sizeof(index_t), sizeof(value_t)));
  obs::MetricsRegistry::ScopedResident resident(
      opt_.metrics, kLoaderResidentGauge, window.bytes() + scratch);

  window.sort_by_mode(opt_.mode);
  entries_ += window.nnz();
  spill_run(window);
}

void ExternalSorter::spill_run(const CooTensor& window) {
  const std::string path = spill_path(next_run_id_++);
  std::ofstream out(path);
  SF_CHECK(out.good(), "cannot create spill run " + path);
  write_tns(out, window);
  const auto pos = out.tellp();
  out.close();
  SF_CHECK(out.good(), "short write while spilling run " + path);
  runs_.push_back(path);
  const auto bytes = static_cast<std::uint64_t>(pos);
  spill_bytes_ += bytes;
  if (opt_.metrics != nullptr) {
    opt_.metrics->count(kSpillBytesCounter, bytes);
    opt_.metrics->count(kSpillRunsCounter, 1);
  }
}

void ExternalSorter::fold_runs(std::size_t take) {
  const auto keys = key_order(order_, opt_.mode);

  struct HeapEntry {
    std::array<index_t, kMaxOrder> idx;
    value_t val;
    std::size_t run;
  };
  // Min-heap: `greater` orders by the mode-sort key, run id as the tie
  // break so duplicate coordinates across runs pop deterministically.
  auto greater = [&keys](const HeapEntry& a, const HeapEntry& b) {
    for (order_t k : keys) {
      if (a.idx[k] != b.idx[k]) return a.idx[k] > b.idx[k];
    }
    return a.run > b.run;
  };

  std::vector<RunReader> readers;
  readers.reserve(take);
  for (std::size_t r = 0; r < take; ++r) {
    readers.emplace_back(runs_[r], order_);
  }

  std::vector<HeapEntry> heap;
  heap.reserve(take);
  for (std::size_t r = 0; r < take; ++r) {
    HeapEntry e;
    e.run = r;
    if (readers[r].next(e.idx, e.val)) heap.push_back(e);
  }
  std::make_heap(heap.begin(), heap.end(), greater);

  const std::string path = spill_path(next_run_id_++);
  std::ofstream out(path);
  SF_CHECK(out.good(), "cannot create spill run " + path);
  out.precision(std::numeric_limits<value_t>::max_digits10);

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), greater);
    HeapEntry e = heap.back();
    heap.pop_back();
    for (std::size_t m = 0; m < order_; ++m) {
      out << (e.idx[m] + 1) << ' ';
    }
    out << e.val << '\n';
    if (readers[e.run].next(e.idx, e.val)) {
      heap.push_back(e);
      std::push_heap(heap.begin(), heap.end(), greater);
    }
  }
  const auto pos = out.tellp();
  out.close();
  SF_CHECK(out.good(), "short write while spilling run " + path);

  readers.clear();
  std::error_code ec;
  for (std::size_t r = 0; r < take; ++r) fs::remove(runs_[r], ec);
  runs_.erase(runs_.begin(),
              runs_.begin() + static_cast<std::ptrdiff_t>(take));
  runs_.push_back(path);

  const auto bytes = static_cast<std::uint64_t>(pos);
  spill_bytes_ += bytes;
  ++merge_passes_;
  if (opt_.metrics != nullptr) {
    opt_.metrics->count(kSpillBytesCounter, bytes);
    opt_.metrics->count(kMergePassesCounter, 1);
  }
}

void ExternalSorter::merge(const std::vector<index_t>& dims,
                           std::size_t chunk_bytes,
                           const std::function<void(CooTensor&&)>& consume) {
  if (runs_.empty()) return;
  SF_CHECK(dims.size() == order_, "merge dims order mismatch");
  SF_CHECK(chunk_bytes > 0, "chunk budget must be positive");

  // Fold down to the fan-in cap first; each fold is a full extra pass
  // over the folded entries.
  while (runs_.size() > opt_.max_open_runs) {
    fold_runs(std::min(opt_.max_open_runs, runs_.size() - 1));
  }

  const auto keys = key_order(order_, opt_.mode);
  struct HeapEntry {
    std::array<index_t, kMaxOrder> idx;
    value_t val;
    std::size_t run;
  };
  auto greater = [&keys](const HeapEntry& a, const HeapEntry& b) {
    for (order_t k : keys) {
      if (a.idx[k] != b.idx[k]) return a.idx[k] > b.idx[k];
    }
    return a.run > b.run;
  };

  // Open every reader before emitting anything: a vanished run file is
  // detected here, so the typed error precedes the first consume call
  // and the caller never sees partial output.
  std::vector<RunReader> readers;
  readers.reserve(runs_.size());
  for (const auto& path : runs_) {
    readers.emplace_back(path, order_);
  }

  std::vector<HeapEntry> heap;
  heap.reserve(readers.size());
  for (std::size_t r = 0; r < readers.size(); ++r) {
    HeapEntry e;
    e.run = r;
    if (readers[r].next(e.idx, e.val)) heap.push_back(e);
  }
  std::make_heap(heap.begin(), heap.end(), greater);

  ++merge_passes_;
  if (opt_.metrics != nullptr) {
    opt_.metrics->count(kMergePassesCounter, 1);
  }

  const nnz_t cap =
      std::max<nnz_t>(1, chunk_bytes / entry_bytes(order_));
  CooTensor chunk(dims);
  obs::MetricsRegistry::ScopedResident resident(
      opt_.metrics, kLoaderResidentGauge, 0);
  nnz_t in_chunk = 0;
  index_t last_slice = 0;

  auto flush = [&]() {
    if (in_chunk == 0) return;
    if (in_chunk > cap && opt_.metrics != nullptr) {
      opt_.metrics->count(kBudgetOverrunsCounter, 1);
    }
    resident.release();  // ownership moves to the consumer's accounting
    consume(std::move(chunk));
    chunk = CooTensor(dims);
    in_chunk = 0;
  };

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), greater);
    HeapEntry e = heap.back();
    heap.pop_back();

    // Cut only between slices: an over-budget chunk keeps absorbing
    // entries until the slice in progress completes.
    if (in_chunk >= cap && e.idx[opt_.mode] != last_slice) flush();

    chunk.push(std::span<const index_t>(e.idx.data(), order_), e.val);
    resident.resize(chunk.bytes());
    last_slice = e.idx[opt_.mode];
    ++in_chunk;

    if (readers[e.run].next(e.idx, e.val)) {
      heap.push_back(e);
      std::push_heap(heap.begin(), heap.end(), greater);
    }
  }
  flush();

  readers.clear();
  remove_run_files();
}

}  // namespace scalfrag
