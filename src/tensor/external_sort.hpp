#pragma once
// Windowed external merge sort over COO entries — the ordering stage of
// the out-of-core streaming pipeline (docs/outofcore.md).
//
// Every mode-n kernel wants the tensor in mode-n lexicographic order,
// but sort_by_mode needs the whole tensor resident. The external sorter
// reproduces exactly that order under a byte budget instead: each
// bounded window is sorted in-core and spilled as a `.tns` run (the
// full-precision serializer of io_tns.hpp, so spill→restore is
// value-exact), then a k-way merge streams the runs back as
// slice-aligned sorted chunks. For duplicate-free input the merged
// entry sequence is bit-for-bit the sort_by_mode order — chunk
// boundaries never split a mode slice, so downstream per-slice kernels
// see each output row's entries contiguously and in canonical order.
//
// Peak residency: one window during add_window (plus its sort scratch,
// which is registered too), then one forming chunk plus a line buffer
// per open run during merge. When the run count exceeds the merge
// fan-in, intermediate passes fold runs together first (the classic
// polyphase compromise: more spill traffic, bounded open files).

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "tensor/coo.hpp"

namespace scalfrag {

namespace obs {
class MetricsRegistry;
}  // namespace obs

struct ExternalSortOptions {
  /// Sort key: mode-`mode` lexicographic order (the sort_by_mode(mode)
  /// order every mode-`mode` kernel and the segmenter assume).
  order_t mode = 0;
  /// Spill directory; empty picks std::filesystem::temp_directory_path.
  std::string temp_dir;
  /// K-way merge fan-in cap. More runs than this trigger intermediate
  /// merge passes (each pass re-spills what it folds).
  std::size_t max_open_runs = 64;
  /// Optional sink: window/chunk residency lands on "mem/resident_bytes"
  /// and spill traffic on the "oocore/..." counters (see metric names
  /// below).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Counter names the sorter records when given a metrics registry.
inline constexpr const char* kSpillBytesCounter = "oocore/spill_bytes";
inline constexpr const char* kMergePassesCounter = "oocore/merge_passes";
inline constexpr const char* kSpillRunsCounter = "oocore/runs";
inline constexpr const char* kBudgetOverrunsCounter =
    "oocore/budget_overruns";

class ExternalSorter {
 public:
  explicit ExternalSorter(ExternalSortOptions opt = {});
  ~ExternalSorter();
  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  /// Sort one window in-core by the configured mode and spill it as a
  /// run file. The window (and its sort scratch) is the phase's whole
  /// residency; it is released before return.
  void add_window(CooTensor window);

  /// K-way merge of all spilled runs. Entries stream out in global
  /// mode-sorted order, packed into chunks of ≈ `chunk_bytes` (cut only
  /// on slice boundaries: a chunk overruns the budget rather than split
  /// the slice in progress — kBudgetOverrunsCounter counts those) and
  /// handed to `consume` in order. `dims` re-dimensions every chunk to
  /// the final mode sizes. Runs deleted between spill and merge raise a
  /// typed error before any chunk is delivered. One-shot: the spilled
  /// runs are consumed by the merge.
  void merge(const std::vector<index_t>& dims, std::size_t chunk_bytes,
             const std::function<void(CooTensor&&)>& consume);

  nnz_t entries() const noexcept { return entries_; }
  std::size_t runs() const noexcept { return runs_.size(); }
  std::uint64_t spill_bytes() const noexcept { return spill_bytes_; }
  std::uint64_t merge_passes() const noexcept { return merge_passes_; }

 private:
  struct RunReader;

  std::string spill_path(std::size_t id) const;
  void spill_run(const CooTensor& window);
  /// Fold `runs_[0 .. take)` into one new run (an intermediate pass).
  void fold_runs(std::size_t take);
  void remove_run_files();

  ExternalSortOptions opt_;
  std::string dir_;
  std::vector<std::string> runs_;
  std::size_t next_run_id_ = 0;
  order_t order_ = 0;
  nnz_t entries_ = 0;
  std::uint64_t spill_bytes_ = 0;
  std::uint64_t merge_passes_ = 0;
};

}  // namespace scalfrag
