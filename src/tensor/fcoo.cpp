#include "tensor/fcoo.hpp"

namespace scalfrag {

FcooTensor FcooTensor::build(const CooTensor& coo, order_t mode,
                             nnz_t partition_size) {
  SF_CHECK(mode < coo.order(), "mode out of range");
  SF_CHECK(partition_size > 0, "partition size must be positive");

  const CooTensor* src = &coo;
  CooTensor sorted;
  if (!coo.is_sorted_by_mode(mode)) {
    sorted = coo;
    sorted.sort_by_mode(mode);
    src = &sorted;
  }

  FcooTensor f;
  f.dims_ = src->dims();
  f.mode_ = mode;
  f.partition_size_ = partition_size;
  for (order_t m = 0; m < src->order(); ++m) {
    if (m != mode) f.idx_modes_.push_back(m);
  }
  f.idx_.resize(f.idx_modes_.size());

  const nnz_t n = src->nnz();
  f.vals_.reserve(n);
  f.bf_.reserve(n);
  for (auto& v : f.idx_) v.reserve(n);

  for (nnz_t e = 0; e < n; ++e) {
    const bool new_row =
        e == 0 || src->index(mode, e) != src->index(mode, e - 1);
    f.bf_.push_back(new_row);
    if (new_row) f.out_rows_.push_back(src->index(mode, e));
    for (std::size_t k = 0; k < f.idx_modes_.size(); ++k) {
      f.idx_[k].push_back(src->index(f.idx_modes_[k], e));
    }
    f.vals_.push_back(src->value(e));
  }

  // Start flags: partition p continues the previous segment iff its
  // first element does not carry a bit flag.
  const nnz_t parts = n == 0 ? 0 : 1 + (n - 1) / partition_size;
  f.sf_.reserve(parts);
  for (nnz_t p = 0; p < parts; ++p) {
    f.sf_.push_back(!f.bf_[p * partition_size]);
  }
  return f;
}

index_t FcooTensor::index(order_t m, nnz_t e) const {
  for (std::size_t k = 0; k < idx_modes_.size(); ++k) {
    if (idx_modes_[k] == m) return idx_[k][e];
  }
  throw Error("F-COO does not store the target mode's per-entry indices");
}

std::size_t FcooTensor::bytes() const noexcept {
  std::size_t b = vals_.size() * sizeof(value_t);
  for (const auto& v : idx_) b += v.size() * sizeof(index_t);
  b += (bf_.size() + 7) / 8;  // bit-packed flags
  b += (sf_.size() + 7) / 8;
  b += out_rows_.size() * sizeof(index_t);
  return b;
}

void FcooTensor::mttkrp(const FactorList& factors, DenseMatrix& out,
                        bool accumulate) const {
  SF_CHECK(factors.size() == order(), "one factor per mode");
  const index_t rank = factors[0].cols();
  SF_CHECK(out.rows() == dims_[mode_] && out.cols() == rank,
           "output shape must be dims[mode] × F");
  if (!accumulate) out.set_zero();
  if (nnz() == 0) return;

  // Partition-local segmented reduction: within a partition, partial
  // products accumulate into `acc` and flush (a plain store/add, no
  // atomic) whenever a bit flag opens a new segment. Partition-
  // boundary segments combine across partitions via the start flags —
  // here executed in partition order, which is exactly the cross-
  // partition fix-up pass of the GPU algorithm.
  std::vector<value_t> acc(rank, value_t{0});
  std::vector<value_t> prod(rank);
  nnz_t segment = static_cast<nnz_t>(-1);

  for (nnz_t e = 0; e < nnz(); ++e) {
    if (bf_[e]) {
      if (segment != static_cast<nnz_t>(-1)) {
        value_t* orow = out.row(out_rows_[segment]);
        for (index_t f = 0; f < rank; ++f) orow[f] += acc[f];
      }
      ++segment;
      std::fill(acc.begin(), acc.end(), value_t{0});
    }
    const value_t val = vals_[e];
    for (index_t f = 0; f < rank; ++f) prod[f] = val;
    for (std::size_t k = 0; k < idx_modes_.size(); ++k) {
      const value_t* frow = factors[idx_modes_[k]].row(idx_[k][e]);
      for (index_t f = 0; f < rank; ++f) prod[f] *= frow[f];
    }
    for (index_t f = 0; f < rank; ++f) acc[f] += prod[f];
  }
  value_t* orow = out.row(out_rows_[segment]);
  for (index_t f = 0; f < rank; ++f) orow[f] += acc[f];
}

}  // namespace scalfrag
