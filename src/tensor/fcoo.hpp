#pragma once
// F-COO — Flagged COO (Liu, Wen, Sarwate & Dehnavi, CLUSTER '17), the
// format the paper's Background (§II-D) credits with "flag arrays to
// eliminate atomic operations".
//
// F-COO is *mode-specific*: for a mode-n MTTKRP it stores, per
// non-zero, only the indices of the non-target modes plus two bit
// flags:
//   * bf ("bit-flag")     — set when the non-zero starts a new output
//     row (a new mode-n index), so a segmented scan can reduce partial
//     products without atomics;
//   * sf ("start-flag")   — set on the first non-zero of each fixed-
//     size partition, marking whether the partition begins a fresh
//     segment (needed when partitions are processed in parallel).
// The target-mode indices themselves compress into one entry per
// segment (`out_rows`).

#include <cstdint>

#include "tensor/coo.hpp"
#include "tensor/dense_matrix.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {

class FcooTensor {
 public:
  /// Build the mode-`mode` F-COO image of `coo` (copied & sorted if
  /// necessary). `partition_size` models the per-thread-unit chunk the
  /// GPU kernel would own (must be positive).
  static FcooTensor build(const CooTensor& coo, order_t mode,
                          nnz_t partition_size = 256);

  order_t order() const noexcept {
    return static_cast<order_t>(dims_.size());
  }
  order_t mode() const noexcept { return mode_; }
  const std::vector<index_t>& dims() const noexcept { return dims_; }
  nnz_t nnz() const noexcept { return vals_.size(); }
  nnz_t num_segments() const noexcept { return out_rows_.size(); }
  nnz_t partition_size() const noexcept { return partition_size_; }

  bool bit_flag(nnz_t e) const { return bf_[e]; }
  /// True when partition p's first non-zero continues the previous
  /// partition's segment (no fresh bf at its start).
  bool start_flag(nnz_t p) const { return sf_[p]; }
  index_t out_row(nnz_t segment) const { return out_rows_[segment]; }
  value_t value(nnz_t e) const { return vals_[e]; }
  index_t index(order_t m, nnz_t e) const;

  /// Storage footprint: flags are bit-packed; the target mode's index
  /// array is replaced by one index per segment.
  std::size_t bytes() const noexcept;

  /// Atomic-free MTTKRP via segmented reduction (partition-parallel
  /// semantics executed sequentially): each partition reduces locally
  /// and only partition-boundary rows are combined across partitions.
  void mttkrp(const FactorList& factors, DenseMatrix& out,
              bool accumulate = false) const;

 private:
  std::vector<index_t> dims_;
  order_t mode_ = 0;
  nnz_t partition_size_ = 0;
  std::vector<std::vector<index_t>> idx_;  // non-target modes only
  std::vector<order_t> idx_modes_;         // which mode idx_[k] stores
  std::vector<value_t> vals_;
  std::vector<bool> bf_;           // per non-zero
  std::vector<bool> sf_;           // per partition
  std::vector<index_t> out_rows_;  // per segment (bf-started run)
};

}  // namespace scalfrag
