#include "tensor/features.hpp"

#include <cmath>

namespace scalfrag {

namespace {
double log2_1p(double v) { return std::log2(1.0 + v); }
}  // namespace

std::array<double, TensorFeatures::kVectorSize> TensorFeatures::to_vector()
    const {
  return {
      static_cast<double>(order),
      log2_1p(static_cast<double>(nnz)),
      log2_1p(static_cast<double>(mode_dim)),
      log2_1p(static_cast<double>(num_slices)),
      log2_1p(static_cast<double>(num_fibers)),
      slice_ratio,
      fiber_ratio,
      log2_1p(avg_nnz_per_slice),
      log2_1p(static_cast<double>(max_nnz_per_slice)),
      cv_nnz_per_slice,
      log2_1p(avg_nnz_per_fiber),
      density > 0 ? std::log10(density) : -20.0,
  };
}

const std::array<const char*, TensorFeatures::kVectorSize>&
TensorFeatures::names() {
  static const std::array<const char*, kVectorSize> kNames = {
      "order",
      "log2_nnz",
      "log2_modeDim",
      "log2_numSlices",
      "log2_numFibers",
      "sliceRatio",
      "fiberRatio",
      "log2_avgNnzPerSlice",
      "log2_maxNnzPerSlice",
      "cvNnzPerSlice",
      "log2_avgNnzPerFiber",
      "log10_density",
  };
  return kNames;
}

void TensorFeatures::Builder::close_slice() {
  f_.max_nnz_per_slice = std::max(f_.max_nnz_per_slice, slice_len_);
  slice_sum_ += static_cast<double>(slice_len_);
  slice_sq_ +=
      static_cast<double>(slice_len_) * static_cast<double>(slice_len_);
  slice_len_ = 0;
}

void TensorFeatures::Builder::close_fiber() {
  f_.max_nnz_per_fiber = std::max(f_.max_nnz_per_fiber, fiber_len_);
  fiber_len_ = 0;
}

void TensorFeatures::Builder::add(bool new_slice, bool new_fiber) {
  const bool first = f_.nnz == 0;
  if (new_slice || first) {
    if (!first) close_slice();
    ++f_.num_slices;
  }
  if (new_fiber || new_slice || first) {
    if (!first) close_fiber();
    ++f_.num_fibers;
  }
  ++slice_len_;
  ++fiber_len_;
  ++f_.nnz;
}

TensorFeatures TensorFeatures::Builder::finish() {
  TensorFeatures f = f_;
  f.order = order_;
  f.mode = mode_;
  f.mode_dim = mode_dim_;
  f.density =
      cells_ > 0.0 ? static_cast<double>(f.nnz) / cells_ : 0.0;
  if (f.nnz == 0) return f;

  close_slice();
  close_fiber();
  f.max_nnz_per_slice = f_.max_nnz_per_slice;
  f.max_nnz_per_fiber = f_.max_nnz_per_fiber;

  f.slice_ratio =
      static_cast<double>(f.num_slices) / static_cast<double>(f.mode_dim);
  f.fiber_ratio =
      static_cast<double>(f.num_fibers) / static_cast<double>(f.nnz);
  f.avg_nnz_per_slice =
      static_cast<double>(f.nnz) / static_cast<double>(f.num_slices);
  f.avg_nnz_per_fiber =
      static_cast<double>(f.nnz) / static_cast<double>(f.num_fibers);

  const double n = static_cast<double>(f.num_slices);
  const double mean = slice_sum_ / n;
  const double var = std::max(0.0, slice_sq_ / n - mean * mean);
  f.cv_nnz_per_slice = mean > 0 ? std::sqrt(var) / mean : 0.0;
  return f;
}

TensorFeatures TensorFeatures::extract(const CooTensor& t, order_t mode) {
  SF_CHECK(mode < t.order(), "mode out of range");
  if (t.is_sorted_by_mode(mode)) {
    CooSpan view(t);
    view.assume_sorted_by(mode);
    return extract(view, mode);
  }
  CooTensor sorted = t;
  sorted.sort_by_mode(mode);
  CooSpan view(sorted);
  view.assume_sorted_by(mode);
  return extract(view, mode);
}

TensorFeatures TensorFeatures::extract(const CooSpan& t, order_t mode) {
  SF_CHECK(mode < t.order(), "mode out of range");
  SF_CHECK(t.is_sorted_by_mode(mode),
           "span feature extraction needs a mode-grouped view");

  double cells = 1.0;
  for (index_t d : t.dims()) cells *= static_cast<double>(d);
  Builder b(t.order(), mode, t.dim(mode), cells);
  if (t.nnz() == 0) return b.finish();

  // The mode following `mode` in the sort-key order (fiber definition).
  order_t next_mode = mode;
  for (order_t m = 0; m < t.order(); ++m) {
    if (m != mode) {
      next_mode = m;
      break;
    }
  }

  for (nnz_t e = 0; e < t.nnz(); ++e) {
    const bool new_slice =
        e == 0 || t.index(mode, e) != t.index(mode, e - 1);
    const bool new_fiber =
        new_slice || (t.order() > 1 &&
                      t.index(next_mode, e) != t.index(next_mode, e - 1));
    b.add(new_slice, new_fiber);
  }
  return b.finish();
}

}  // namespace scalfrag
