#pragma once
// Sparsity feature extraction (paper §IV-B). These are the inputs to the
// adaptive-launch model: "tensor size (dimension and number of elements)
// and sparsity (distribution and proportion of nonzero elements) ...
// numSlices, numFibers, sliceRatio, fiberRatio, maxNnzPerSlice".
//
// Conventions (the paper does not pin these down):
//  * a slice is a distinct mode-n index with ≥1 nnz;
//  * a fiber is a distinct (mode-n index, first-following-mode index)
//    pair — i.e. a level-1 CSF node;
//  * sliceRatio = numSlices / dim(n)   (fill fraction of the mode);
//  * fiberRatio = numFibers / nnz      (1.0 → every nnz its own fiber,
//    small → long fibers with heavy factor-row reuse).

#include <array>
#include <string>
#include <vector>

#include "tensor/coo.hpp"

namespace scalfrag {

struct TensorFeatures {
  order_t order = 0;
  order_t mode = 0;
  nnz_t nnz = 0;
  index_t mode_dim = 0;

  nnz_t num_slices = 0;
  nnz_t num_fibers = 0;
  double slice_ratio = 0.0;
  double fiber_ratio = 0.0;

  double avg_nnz_per_slice = 0.0;
  nnz_t max_nnz_per_slice = 0;
  double cv_nnz_per_slice = 0.0;  // coefficient of variation (imbalance)
  double avg_nnz_per_fiber = 0.0;
  nnz_t max_nnz_per_fiber = 0;

  double density = 0.0;

  /// Number of entries to_vector() produces (ML feature dimension).
  static constexpr std::size_t kVectorSize = 12;

  /// Flatten into the ML feature vector. Heavy-tailed quantities are
  /// log-compressed so tree splits / SVR margins see usable scales.
  std::array<double, kVectorSize> to_vector() const;

  /// Names matching to_vector() positions (for debugging / dumps).
  static const std::array<const char*, kVectorSize>& names();

  /// Extract features for mode-`mode` MTTKRP. Sorts a copy internally if
  /// the tensor is not already mode-sorted.
  static TensorFeatures extract(const CooTensor& t, order_t mode);

  /// Zero-copy extraction over a span (contiguous or gather view, e.g.
  /// a ModeViews mode view). The span must already be mode-grouped —
  /// a span cannot be sorted in place, so unlike the CooTensor overload
  /// this one throws instead of copying.
  static TensorFeatures extract(const CooSpan& t, order_t mode);

  class Builder;
};

/// Streaming feature accumulator: feed mode-grouped entries one at a
/// time (flagging slice/fiber starts), then finish(). extract() is one
/// Builder over the whole tensor; the segmenter runs one Builder per
/// segment inside its single boundary walk, which is what lets it emit
/// per-segment features without materializing or rescanning segments.
/// finish() performs the identical arithmetic to extract(), so fused
/// features match TensorFeatures::extract on the materialized range
/// exactly.
class TensorFeatures::Builder {
 public:
  /// `dense_cells` is the Π-dims denominator of the density feature
  /// (the parent's cell count — segments share their parent's dims).
  Builder(order_t order, order_t mode, index_t mode_dim, double dense_cells)
      : order_(order), mode_(mode), mode_dim_(mode_dim),
        cells_(dense_cells) {}

  /// Add the next entry of the stream. `new_slice` / `new_fiber` flag a
  /// change of slice / fiber index versus the previous entry; the first
  /// entry is treated as a new slice and fiber regardless.
  void add(bool new_slice, bool new_fiber);

  nnz_t nnz() const noexcept { return f_.nnz; }

  /// Close open runs and compute the derived ratios.
  TensorFeatures finish();

 private:
  void close_slice();
  void close_fiber();

  order_t order_;
  order_t mode_;
  index_t mode_dim_;
  double cells_;
  TensorFeatures f_{};
  nnz_t slice_len_ = 0;
  nnz_t fiber_len_ = 0;
  double slice_sum_ = 0.0;
  double slice_sq_ = 0.0;
};

}  // namespace scalfrag
