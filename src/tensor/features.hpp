#pragma once
// Sparsity feature extraction (paper §IV-B). These are the inputs to the
// adaptive-launch model: "tensor size (dimension and number of elements)
// and sparsity (distribution and proportion of nonzero elements) ...
// numSlices, numFibers, sliceRatio, fiberRatio, maxNnzPerSlice".
//
// Conventions (the paper does not pin these down):
//  * a slice is a distinct mode-n index with ≥1 nnz;
//  * a fiber is a distinct (mode-n index, first-following-mode index)
//    pair — i.e. a level-1 CSF node;
//  * sliceRatio = numSlices / dim(n)   (fill fraction of the mode);
//  * fiberRatio = numFibers / nnz      (1.0 → every nnz its own fiber,
//    small → long fibers with heavy factor-row reuse).

#include <array>
#include <string>
#include <vector>

#include "tensor/coo.hpp"

namespace scalfrag {

struct TensorFeatures {
  order_t order = 0;
  order_t mode = 0;
  nnz_t nnz = 0;
  index_t mode_dim = 0;

  nnz_t num_slices = 0;
  nnz_t num_fibers = 0;
  double slice_ratio = 0.0;
  double fiber_ratio = 0.0;

  double avg_nnz_per_slice = 0.0;
  nnz_t max_nnz_per_slice = 0;
  double cv_nnz_per_slice = 0.0;  // coefficient of variation (imbalance)
  double avg_nnz_per_fiber = 0.0;
  nnz_t max_nnz_per_fiber = 0;

  double density = 0.0;

  /// Number of entries to_vector() produces (ML feature dimension).
  static constexpr std::size_t kVectorSize = 12;

  /// Flatten into the ML feature vector. Heavy-tailed quantities are
  /// log-compressed so tree splits / SVR margins see usable scales.
  std::array<double, kVectorSize> to_vector() const;

  /// Names matching to_vector() positions (for debugging / dumps).
  static const std::array<const char*, kVectorSize>& names();

  /// Extract features for mode-`mode` MTTKRP. Sorts a copy internally if
  /// the tensor is not already mode-sorted.
  static TensorFeatures extract(const CooTensor& t, order_t mode);
};

}  // namespace scalfrag
