#include "tensor/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace scalfrag {

namespace {

index_t sample_index(Rng& rng, index_t dim, double skew) {
  const double u = rng.next_double();
  const double v = skew == 1.0 ? u : std::pow(u, skew);
  auto i = static_cast<index_t>(v * static_cast<double>(dim));
  return i >= dim ? dim - 1 : i;
}

}  // namespace

CooTensor generate_coo(const GeneratorConfig& cfg) {
  SF_CHECK(!cfg.dims.empty(), "generator needs at least one mode");
  SF_CHECK(cfg.skew.empty() || cfg.skew.size() == cfg.dims.size(),
           "skew must be empty or one entry per mode");
  for (double s : cfg.skew) SF_CHECK(s >= 1.0, "skew exponents must be >= 1");

  double cells = 1.0;
  for (index_t d : cfg.dims) cells *= static_cast<double>(d);
  const auto cap = static_cast<nnz_t>(cells * 0.3);
  const nnz_t target = std::min<nnz_t>(cfg.nnz, std::max<nnz_t>(cap, 1));

  Rng rng(cfg.seed);
  CooTensor t(cfg.dims);
  t.reserve(target);
  std::vector<index_t> coord(cfg.dims.size());

  // Draw, coalesce, top up. Each round draws the remaining deficit plus
  // 10% slack; collisions shrink geometrically so a handful of rounds
  // suffices even for the densest profiles.
  constexpr int kMaxRounds = 64;
  for (int round = 0; round < kMaxRounds && t.nnz() < target; ++round) {
    const nnz_t deficit = target - t.nnz();
    const nnz_t draw = deficit + deficit / 10 + 16;
    for (nnz_t e = 0; e < draw; ++e) {
      for (std::size_t m = 0; m < cfg.dims.size(); ++m) {
        const double skew = cfg.skew.empty() ? 1.0 : cfg.skew[m];
        coord[m] = sample_index(rng, cfg.dims[m], skew);
      }
      // Values in (0,1]: avoids exact zeros that a coalesce could cancel.
      t.push(std::span<const index_t>(coord.data(), coord.size()),
             rng.next_float() * 0.999f + 0.001f);
    }
    t.sort_by_mode(0);
    t.coalesce_duplicates();
    if (t.nnz() > target) {
      // Over-drawn: drop the tail (keeps determinism — the kept set is a
      // prefix of the sorted entry order).
      t = t.extract(0, target);
    }
  }
  return t;
}

double FrosttProfile::paper_density() const {
  double cells = 1.0;
  for (auto d : paper_dims) cells *= static_cast<double>(d);
  return static_cast<double>(paper_nnz) / cells;
}

GeneratorConfig FrosttProfile::scaled(double scale, std::uint64_t seed) const {
  SF_CHECK(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  const nnz_t target_nnz = std::max<nnz_t>(
      512, static_cast<nnz_t>(static_cast<double>(paper_nnz) * scale));

  // Mode sizes shrink linearly with `scale` so the factor-matrix-bytes
  // to tensor-bytes ratio of the original is preserved — that ratio
  // decides how much of the end-to-end time is factor transfer, which
  // the pipeline experiments are sensitive to. When linear shrinking
  // would make the stand-in denser than kMaxDensity (the small, dense
  // profiles like vast/uber), mode sizes are grown back uniformly until
  // the density cap holds, keeping the tensor meaningfully sparse.
  constexpr double kMaxDensity = 0.05;
  double dim_scale = scale;
  auto cells_at = [&](double s) {
    double cells = 1.0;
    for (auto d : paper_dims) {
      cells *= std::max(2.0, static_cast<double>(d) * s);
    }
    return cells;
  };
  for (int iter = 0; iter < 16; ++iter) {
    const double cap = kMaxDensity * cells_at(dim_scale);
    if (static_cast<double>(target_nnz) <= cap) break;
    dim_scale *= std::pow(static_cast<double>(target_nnz) / cap,
                          1.0 / static_cast<double>(paper_dims.size()));
  }

  GeneratorConfig cfg;
  cfg.dims.reserve(paper_dims.size());
  for (auto d : paper_dims) {
    const double scaled = static_cast<double>(d) * dim_scale;
    cfg.dims.push_back(static_cast<index_t>(std::max(2.0, scaled)));
  }
  cfg.nnz = target_nnz;
  cfg.skew = skew;
  cfg.seed = seed;
  return cfg;
}

const std::vector<FrosttProfile>& frostt_profiles() {
  // Table III of the paper, plus per-mode skew exponents chosen to give
  // each stand-in the qualitative slice-size imbalance FROSTT reports
  // (web-crawl tensors like deli/flickr are heavily skewed; uber/vast
  // are comparatively even).
  static const std::vector<FrosttProfile> kProfiles = {
      {"vast", {165427, 11374, 2}, 26021854, {1.2, 1.2, 1.0}},
      {"nell-2", {12092, 9184, 28818}, 76879419, {2.0, 2.0, 2.0}},
      {"flickr-3d", {319686, 28153045, 1607191}, 112890310, {3.0, 2.5, 2.5}},
      {"deli-3d", {532924, 17262471, 2480308}, 140126181, {2.5, 3.0, 2.5}},
      {"nell-1", {2902330, 2143368, 25495389}, 143599552, {2.5, 2.5, 3.0}},
      {"uber", {183, 24, 1140, 1717}, 3309490, {1.5, 1.2, 1.5, 1.5}},
      {"nips", {2482, 2862, 14036, 17}, 3101609, {2.0, 2.0, 2.0, 1.2}},
      {"enron", {6066, 5699, 244268, 1176}, 54202099, {2.5, 2.5, 3.0, 2.0}},
      {"flickr-4d", {319686, 28153045, 1607191, 731}, 112890310,
       {3.0, 2.5, 2.5, 2.0}},
      {"deli-4d", {532924, 17262471, 2480308, 1443}, 140126181,
       {2.5, 3.0, 2.5, 2.0}},
  };
  return kProfiles;
}

const FrosttProfile& frostt_profile(const std::string& name) {
  for (const auto& p : frostt_profiles()) {
    if (p.name == name) return p;
  }
  throw Error("unknown FROSTT profile: " + name);
}

CooTensor make_frostt_tensor(const std::string& name, double scale,
                             std::uint64_t seed) {
  return generate_coo(frostt_profile(name).scaled(scale, seed));
}

}  // namespace scalfrag
