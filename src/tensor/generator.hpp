#pragma once
// Synthetic sparse-tensor generation.
//
// The paper evaluates on ten FROSTT tensors (Table III). Those files are
// multi-GB downloads; this repository instead ships generator *profiles*
// that reproduce each tensor's order, mode-size ratios, and skewed
// per-slice non-zero distribution at a configurable scale, so every
// bench regenerates its workload deterministically in milliseconds.
// Real .tns files can still be used via read_tns_file().
//
// Sampling model: coordinate i_m of each candidate non-zero is drawn as
// floor(dim_m · u^skew_m) with u ~ U[0,1). skew = 1 gives a uniform
// mode; skew > 1 concentrates mass near low indices, producing the
// power-law slice-size histograms real FROSTT tensors exhibit (a few
// enormous slices, a long tail of tiny ones). Duplicates are coalesced
// and the generator tops up until the nnz target is met.

#include <string>
#include <vector>

#include "tensor/coo.hpp"

namespace scalfrag {

struct GeneratorConfig {
  std::vector<index_t> dims;
  nnz_t nnz = 0;
  /// Per-mode skew exponent (>= 1.0); empty means all-uniform.
  std::vector<double> skew;
  std::uint64_t seed = 42;
};

/// Generate a coalesced COO tensor, sorted by mode 0, with values in
/// (0, 1]. If the nnz target exceeds 30% of the dense cell count it is
/// clamped (keeping the tensor meaningfully sparse).
CooTensor generate_coo(const GeneratorConfig& cfg);

/// One Table III dataset: the paper's published census plus the recipe
/// for a scaled synthetic stand-in.
struct FrosttProfile {
  std::string name;
  std::vector<std::uint64_t> paper_dims;
  nnz_t paper_nnz = 0;
  std::vector<double> skew;

  order_t order() const { return static_cast<order_t>(paper_dims.size()); }
  double paper_density() const;

  /// Scaled recipe: nnz shrinks by `scale`; mode sizes shrink linearly
  /// with `scale` too (preserving the original's factor-bytes-to-
  /// tensor-bytes transfer ratio, which the pipeline experiments are
  /// sensitive to), except that dense profiles are re-grown to keep
  /// density at or below 5%.
  GeneratorConfig scaled(double scale, std::uint64_t seed = 42) const;
};

/// All ten Table III profiles, in the paper's row order.
const std::vector<FrosttProfile>& frostt_profiles();

/// Look up a profile by name ("vast", "nell-2", ..., "deli-4d").
const FrosttProfile& frostt_profile(const std::string& name);

/// Default bench scale: tensors land in the ~6K–280K nnz range and
/// every reproduction binary finishes in seconds on one host core.
inline constexpr double kDefaultScale = 1.0 / 512.0;

/// Generate the scaled stand-in for a named profile.
CooTensor make_frostt_tensor(const std::string& name,
                             double scale = kDefaultScale,
                             std::uint64_t seed = 42);

}  // namespace scalfrag
