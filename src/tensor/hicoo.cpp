#include "tensor/hicoo.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "common/math_util.hpp"

namespace scalfrag {

HicooTensor HicooTensor::build(const CooTensor& coo, index_t block_size) {
  SF_CHECK(is_pow2(block_size) && block_size >= 2 && block_size <= 256,
           "block_size must be a power of two in [2, 256]");

  HicooTensor h;
  h.dims_ = coo.dims();
  h.block_size_ = block_size;
  h.block_bits_ = 0;
  for (index_t b = block_size; b > 1; b >>= 1) ++h.block_bits_;

  const order_t order = coo.order();
  const nnz_t n = coo.nnz();
  h.binds_.resize(order);
  h.einds_.resize(order);
  for (auto& e : h.einds_) e.reserve(n);
  h.vals_.reserve(n);
  if (n == 0) {
    h.bptr_.push_back(0);
    return h;
  }

  // Sort entries by block coordinate (lexicographic across modes), then
  // by in-block offset — grouping each block's elements contiguously.
  std::vector<nnz_t> perm(n);
  std::iota(perm.begin(), perm.end(), nnz_t{0});
  const auto block_of = [&](order_t m, nnz_t e) {
    return coo.index(m, e) >> h.block_bits_;
  };
  std::sort(perm.begin(), perm.end(), [&](nnz_t a, nnz_t b) {
    for (order_t m = 0; m < order; ++m) {
      const index_t ba = block_of(m, a);
      const index_t bb = block_of(m, b);
      if (ba != bb) return ba < bb;
    }
    for (order_t m = 0; m < order; ++m) {
      if (coo.index(m, a) != coo.index(m, b)) {
        return coo.index(m, a) < coo.index(m, b);
      }
    }
    return false;
  });

  const index_t mask = block_size - 1;
  for (nnz_t i = 0; i < n; ++i) {
    const nnz_t e = perm[i];
    bool new_block = i == 0;
    if (!new_block) {
      for (order_t m = 0; m < order; ++m) {
        if (block_of(m, e) != block_of(m, perm[i - 1])) {
          new_block = true;
          break;
        }
      }
    }
    if (new_block) {
      h.bptr_.push_back(i);
      for (order_t m = 0; m < order; ++m) {
        h.binds_[m].push_back(block_of(m, e));
      }
    }
    for (order_t m = 0; m < order; ++m) {
      h.einds_[m].push_back(
          static_cast<std::uint8_t>(coo.index(m, e) & mask));
    }
    h.vals_.push_back(coo.value(e));
  }
  h.bptr_.push_back(n);
  return h;
}

index_t HicooTensor::coordinate(order_t m, nnz_t e) const {
  // Locate the block containing element e (bptr_ is sorted).
  const auto it = std::upper_bound(bptr_.begin(), bptr_.end(), e);
  const auto b = static_cast<nnz_t>(it - bptr_.begin()) - 1;
  return block_base(m, b) + einds_[m][e];
}

CooTensor HicooTensor::to_coo() const {
  CooTensor out(dims_);
  out.reserve(nnz());
  std::vector<index_t> coord(order());
  for (nnz_t b = 0; b < num_blocks(); ++b) {
    for (nnz_t e = bptr_[b]; e < bptr_[b + 1]; ++e) {
      for (order_t m = 0; m < order(); ++m) {
        coord[m] = block_base(m, b) + einds_[m][e];
      }
      out.push(std::span<const index_t>(coord.data(), coord.size()),
               vals_[e]);
    }
  }
  return out;
}

std::size_t HicooTensor::bytes() const noexcept {
  std::size_t b = vals_.size() * sizeof(value_t);
  b += bptr_.size() * sizeof(nnz_t);
  for (const auto& v : binds_) b += v.size() * sizeof(index_t);
  for (const auto& v : einds_) b += v.size() * sizeof(std::uint8_t);
  return b;
}

void HicooTensor::mttkrp(const FactorList& factors, order_t mode,
                         DenseMatrix& out, bool accumulate) const {
  SF_CHECK(factors.size() == order(), "one factor per mode");
  SF_CHECK(mode < order(), "mode out of range");
  const index_t rank = factors[0].cols();
  SF_CHECK(out.rows() == dims_[mode] && out.cols() == rank,
           "output shape must be dims[mode] × F");
  if (!accumulate) out.set_zero();

  std::vector<value_t> row(rank);
  for (nnz_t b = 0; b < num_blocks(); ++b) {
    // Block bases are loop-invariant — the cache-friendliness HiCOO
    // kernels exploit.
    std::array<index_t, kMaxOrder> base{};
    for (order_t m = 0; m < order(); ++m) base[m] = block_base(m, b);
    for (nnz_t e = bptr_[b]; e < bptr_[b + 1]; ++e) {
      const value_t val = vals_[e];
      for (index_t f = 0; f < rank; ++f) row[f] = val;
      for (order_t m = 0; m < order(); ++m) {
        if (m == mode) continue;
        const value_t* frow = factors[m].row(base[m] + einds_[m][e]);
        for (index_t f = 0; f < rank; ++f) row[f] *= frow[f];
      }
      value_t* orow = out.row(base[mode] + einds_[mode][e]);
      for (index_t f = 0; f < rank; ++f) orow[f] += row[f];
    }
  }
}

}  // namespace scalfrag
