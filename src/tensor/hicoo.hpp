#pragma once
// HiCOO — Hierarchical COO (Li, Sun & Vuduc, SC '18), the blocked
// coordinate format the paper's Background (§II-D) describes:
// "decomposes a sparse tensor into small sparse blocks, reducing the
// memory required to store tensor nonzeros (and hence memory bandwidth
// conflicts)".
//
// Space is partitioned into B×…×B blocks (B a power of two ≤ 256).
// Per block: one full-width coordinate per mode (the block's base) and
// a pointer into the element arrays; per non-zero: one *byte* per mode
// (the offset inside the block) plus the value. For clustered tensors
// this shrinks index storage ~4× versus COO.

#include <cstdint>

#include "tensor/coo.hpp"
#include "tensor/dense_matrix.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {

class HicooTensor {
 public:
  /// Blocked conversion. `block_size` must be a power of two in
  /// [2, 256] (offsets are stored in a byte).
  static HicooTensor build(const CooTensor& coo, index_t block_size = 128);

  order_t order() const noexcept {
    return static_cast<order_t>(dims_.size());
  }
  const std::vector<index_t>& dims() const noexcept { return dims_; }
  index_t block_size() const noexcept { return block_size_; }
  nnz_t nnz() const noexcept { return vals_.size(); }
  nnz_t num_blocks() const noexcept {
    return bptr_.empty() ? 0 : bptr_.size() - 1;
  }

  /// Element range of block b: [bptr(b), bptr(b+1)).
  nnz_t bptr(nnz_t b) const { return bptr_[b]; }
  /// Block base coordinate of block b in mode m (already scaled by B).
  index_t block_base(order_t m, nnz_t b) const {
    return binds_[m][b] * block_size_;
  }
  /// Byte offset of element e in mode m.
  std::uint8_t eind(order_t m, nnz_t e) const { return einds_[m][e]; }
  value_t value(nnz_t e) const { return vals_[e]; }

  /// Reconstruct the full coordinate of element e in mode m.
  index_t coordinate(order_t m, nnz_t e) const;

  /// Expand back to COO (block-sorted entry order).
  CooTensor to_coo() const;

  /// Storage footprint — the quantity HiCOO exists to shrink.
  std::size_t bytes() const noexcept;

  /// Mode-`mode` MTTKRP over the blocked layout, accumulating into
  /// `out` like the other kernels. Matches mttkrp_coo_ref to float
  /// tolerance.
  void mttkrp(const FactorList& factors, order_t mode, DenseMatrix& out,
              bool accumulate = false) const;

  /// Mean non-zeros per occupied block (HiCOO's locality metric; low
  /// values mean the block overhead outweighs the byte-offset savings).
  double avg_nnz_per_block() const noexcept {
    return num_blocks() == 0
               ? 0.0
               : static_cast<double>(nnz()) /
                     static_cast<double>(num_blocks());
  }

 private:
  std::vector<index_t> dims_;
  index_t block_size_ = 0;
  std::uint8_t block_bits_ = 0;
  std::vector<nnz_t> bptr_;                       // num_blocks + 1
  std::vector<std::vector<index_t>> binds_;       // [mode][block]
  std::vector<std::vector<std::uint8_t>> einds_;  // [mode][element]
  std::vector<value_t> vals_;
};

}  // namespace scalfrag
