#include "tensor/io_stream.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "tensor/io_tns.hpp"
#include "tensor/io_tns_detail.hpp"

namespace scalfrag {

using tns_detail::at_line;
using tns_detail::parse_index;
using tns_detail::parse_value;
using tns_detail::tokenize;

TnsChunkReader::TnsChunkReader(std::istream& in, TnsChunkOptions opt)
    : in_(&in), opt_(std::move(opt)) {
  SF_CHECK(opt_.dims_hint.size() <= kMaxOrder,
           "dims_hint order exceeds kMaxOrder");
  SF_CHECK(opt_.max_chunk_bytes > 0 || opt_.max_chunk_nnz > 0,
           "chunk budget must be positive");
  if (!opt_.dims_hint.empty()) {
    order_ = opt_.dims_hint.size();
    dims_ = opt_.dims_hint;
    coord_.resize(order_);
  }
}

nnz_t TnsChunkReader::chunk_cap() const {
  if (opt_.max_chunk_nnz > 0) return opt_.max_chunk_nnz;
  const std::size_t entry_bytes =
      order_ * sizeof(index_t) + sizeof(value_t);
  return std::max<nnz_t>(1, opt_.max_chunk_bytes / entry_bytes);
}

bool TnsChunkReader::next(CooTensor& chunk) {
  if (done_) return false;

  CooTensor out;
  obs::MetricsRegistry::ScopedResident resident;
  const bool grow = opt_.dims_hint.empty();
  nnz_t in_chunk = 0;

  while (true) {
    if (in_chunk > 0 && in_chunk >= chunk_cap()) break;
    if (!std::getline(*in_, line_)) {
      SF_CHECK(in_->eof(), "stream error while reading .tns input");
      done_ = true;
      SF_CHECK(order_ > 0, "empty .tns input");
      SF_CHECK(!opt_.expected_nnz || entries_ == *opt_.expected_nnz,
               "nnz mismatch: header/caller expected " +
                   std::to_string(opt_.expected_nnz.value_or(0)) +
                   " entries, read " + std::to_string(entries_));
      break;
    }
    ++lineno_;
    const std::vector<std::string_view> tokens = tokenize(line_);
    if (tokens.empty()) continue;  // blank or comment-only line

    if (order_ == 0) {
      SF_CHECK(tokens.size() >= 2,
               at_line(lineno_) + "truncated line: need at least one index "
                                  "and a value, got " +
                   std::to_string(tokens.size()) + " field(s)");
      order_ = tokens.size() - 1;
      SF_CHECK(order_ <= kMaxOrder,
               at_line(lineno_) + "order " + std::to_string(order_) +
                   " exceeds kMaxOrder");
      dims_.assign(order_, 1);
      coord_.resize(order_);
    }
    SF_CHECK(tokens.size() == order_ + 1,
             at_line(lineno_) + "expected " + std::to_string(order_ + 1) +
                 " fields (order " + std::to_string(order_) +
                 " + value), got " + std::to_string(tokens.size()));
    for (std::size_t m = 0; m < order_; ++m) {
      const index_t i = parse_index(tokens[m], lineno_, m);
      if (!grow) {
        SF_CHECK(i < dims_[m],
                 at_line(lineno_) + "mode-" + std::to_string(m) +
                     " index " + std::to_string(i + 1) +
                     " exceeds dimension " + std::to_string(dims_[m]));
      } else if (i >= dims_[m]) {
        dims_[m] = i + 1;
      }
      coord_[m] = i;
    }
    const value_t val = parse_value(tokens[order_], lineno_);
    if (out.order() == 0) {
      out = CooTensor(dims_);
      resident = obs::MetricsRegistry::ScopedResident(
          opt_.metrics, kLoaderResidentGauge, 0);
    }
    const std::span<const index_t> c(coord_.data(), order_);
    if (grow) out.grow_dims(c);
    out.push(c, val);
    resident.resize(out.bytes());
    ++in_chunk;
    ++entries_;
  }

  if (in_chunk == 0) return false;
  chunk = std::move(out);
  return true;
}

TnsFileChunkReader::TnsFileChunkReader(const std::string& path,
                                       TnsChunkOptions opt)
    : in_(path) {
  SF_CHECK(in_.good(), "cannot open " + path);
  reader_.emplace(in_, std::move(opt));
}

}  // namespace scalfrag
