#pragma once
// Chunked .tns/COO ingestion — the entry gate of the out-of-core
// streaming pipeline (docs/outofcore.md).
//
// read_tns() must hold the whole tensor to return it; a billion-nnz
// FROSTT file therefore caps at host memory before any planning can
// happen. TnsChunkReader makes one pass over the same format and hands
// out bounded-size CooTensor chunks instead, so peak ingest residency
// is one chunk (plus the line buffer), whatever the file size. The
// external merge sort (external_sort.hpp) consumes these chunks as its
// sort windows; StreamingPlan (scalfrag/streaming.hpp) drives both.
//
// Format contract, error taxonomy, and CRLF handling are identical to
// read_tns — both readers share the line parser (io_tns_detail.hpp).
// A truncated final line (EOF mid-entry) is a typed error, never a
// silently short tensor.

#include <fstream>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "tensor/coo.hpp"

namespace scalfrag {

namespace obs {
class MetricsRegistry;
}  // namespace obs

struct TnsChunkOptions {
  /// Per-line index validation bound when non-empty; otherwise mode
  /// sizes grow with the data (dims() is the running maximum).
  std::vector<index_t> dims_hint;
  /// Total entry count the file must deliver (checked at EOF).
  std::optional<nnz_t> expected_nnz;
  /// Chunk size cap in storage bytes (index+value footprint of the
  /// chunk's entries). The entry-count cap is derived from the order
  /// once the first data line fixes it.
  std::size_t max_chunk_bytes = std::size_t{16} << 20;
  /// Explicit entry cap; 0 derives it from max_chunk_bytes.
  nnz_t max_chunk_nnz = 0;
  /// Optional sink: the reader registers each chunk's bytes under
  /// "mem/resident_bytes" while the chunk is being filled.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One-pass chunked reader. Typical loop:
///
///   TnsChunkReader reader(in, opt);
///   CooTensor chunk;
///   while (reader.next(chunk)) consume(std::move(chunk));
///   const auto& dims = reader.dims();  // final sizes, after EOF
///
/// Chunks carry the dims known *so far* (every contained entry is in
/// range); only after next() returns false are dims() the whole-file
/// mode sizes. Consumers that need final dims before touching entries
/// either pass dims_hint or re-dimension per chunk (CooTensor dims only
/// grow, so earlier chunks stay valid).
class TnsChunkReader {
 public:
  explicit TnsChunkReader(std::istream& in, TnsChunkOptions opt = {});

  /// Fill `chunk` with the next ≤ cap entries. Returns false — with an
  /// untouched `chunk` — once the stream is cleanly exhausted. Throws
  /// the read_tns error taxonomy on malformed input, and a typed error
  /// on a stream failure that is not EOF.
  bool next(CooTensor& chunk);

  /// Tensor order; 0 until the first data line has been read.
  order_t order() const noexcept { return static_cast<order_t>(order_); }
  /// Mode sizes seen so far (== dims_hint when one was given).
  const std::vector<index_t>& dims() const noexcept { return dims_; }
  nnz_t entries_read() const noexcept { return entries_; }
  bool exhausted() const noexcept { return done_; }

 private:
  nnz_t chunk_cap() const;

  std::istream* in_;
  TnsChunkOptions opt_;
  std::size_t order_ = 0;
  std::vector<index_t> dims_;
  std::vector<index_t> coord_;
  std::string line_;
  std::size_t lineno_ = 0;
  nnz_t entries_ = 0;
  bool done_ = false;
};

/// File-backed convenience wrapper owning its stream.
class TnsFileChunkReader {
 public:
  explicit TnsFileChunkReader(const std::string& path,
                              TnsChunkOptions opt = {});

  bool next(CooTensor& chunk) { return reader_->next(chunk); }
  order_t order() const noexcept { return reader_->order(); }
  const std::vector<index_t>& dims() const noexcept {
    return reader_->dims();
  }
  nnz_t entries_read() const noexcept { return reader_->entries_read(); }
  bool exhausted() const noexcept { return reader_->exhausted(); }

 private:
  std::ifstream in_;
  std::optional<TnsChunkReader> reader_;
};

}  // namespace scalfrag
