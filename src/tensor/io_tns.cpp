#include "tensor/io_tns.hpp"

#include <fstream>
#include <sstream>
#include <vector>

namespace scalfrag {

CooTensor read_tns(std::istream& in, const std::vector<index_t>& dims_hint) {
  std::vector<std::vector<index_t>> idx;
  std::vector<value_t> vals;
  std::size_t order = dims_hint.size();

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and whitespace-only lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::vector<double> tokens;
    double v;
    while (ls >> v) tokens.push_back(v);
    if (tokens.empty()) continue;

    if (order == 0) {
      SF_CHECK(tokens.size() >= 2,
               "line " + std::to_string(lineno) + ": need indices + value");
      order = tokens.size() - 1;
    }
    SF_CHECK(tokens.size() == order + 1,
             "line " + std::to_string(lineno) + ": expected " +
                 std::to_string(order + 1) + " fields");
    if (idx.empty()) idx.resize(order);
    for (std::size_t m = 0; m < order; ++m) {
      const double raw = tokens[m];
      SF_CHECK(raw >= 1.0 && raw == static_cast<double>(
                                        static_cast<std::uint64_t>(raw)),
               "line " + std::to_string(lineno) +
                   ": indices must be positive integers (1-based)");
      idx[m].push_back(static_cast<index_t>(raw - 1.0));
    }
    vals.push_back(static_cast<value_t>(tokens[order]));
  }
  SF_CHECK(order > 0, "empty .tns input");

  std::vector<index_t> dims = dims_hint;
  if (dims.empty()) {
    dims.assign(order, 1);
    for (std::size_t m = 0; m < order; ++m) {
      for (index_t i : idx[m]) dims[m] = std::max(dims[m], i + 1);
    }
  }
  CooTensor t(dims);
  t.reserve(vals.size());
  std::vector<index_t> coord(order);
  for (std::size_t e = 0; e < vals.size(); ++e) {
    for (std::size_t m = 0; m < order; ++m) coord[m] = idx[m][e];
    t.push(std::span<const index_t>(coord.data(), order), vals[e]);
  }
  return t;
}

CooTensor read_tns_file(const std::string& path,
                        const std::vector<index_t>& dims_hint) {
  std::ifstream in(path);
  SF_CHECK(in.good(), "cannot open " + path);
  return read_tns(in, dims_hint);
}

void write_tns(std::ostream& out, const CooTensor& t) {
  for (nnz_t e = 0; e < t.nnz(); ++e) {
    for (order_t m = 0; m < t.order(); ++m) {
      out << (t.index(m, e) + 1) << ' ';
    }
    out << t.value(e) << '\n';
  }
}

void write_tns_file(const std::string& path, const CooTensor& t) {
  std::ofstream out(path);
  SF_CHECK(out.good(), "cannot open " + path + " for writing");
  write_tns(out, t);
  SF_CHECK(out.good(), "write failure on " + path);
}

}  // namespace scalfrag
