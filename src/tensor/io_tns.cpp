#include "tensor/io_tns.hpp"

#include <fstream>
#include <ios>
#include <limits>

#include "obs/metrics.hpp"
#include "tensor/io_tns_detail.hpp"

namespace scalfrag {
namespace {

using tns_detail::at_line;
using tns_detail::parse_index;
using tns_detail::parse_value;
using tns_detail::tokenize;

/// How often the loader refreshes its resident-bytes registration.
/// Registering per entry would take the registry lock once per line;
/// every 64Ki entries keeps the gauge within ~1 MiB of truth for free.
constexpr nnz_t kResidentRefreshMask = (nnz_t{1} << 16) - 1;

}  // namespace

CooTensor read_tns(std::istream& in, const std::vector<index_t>& dims_hint,
                   std::optional<nnz_t> expected_nnz,
                   obs::MetricsRegistry* metrics) {
  std::size_t order = dims_hint.size();
  SF_CHECK(order <= kMaxOrder, "dims_hint order exceeds kMaxOrder");

  // Entries land directly in the tensor — the historical per-mode
  // staging vectors held a second full copy of every index and value
  // at peak, exactly doubling load-time residency. Dims start at the
  // hint (validated per line) or at 1 per mode and grow with the data.
  CooTensor t;
  std::vector<index_t> coord;
  const bool grow = dims_hint.empty();

  std::size_t registered = 0;
  auto refresh_resident = [&](bool final_entry) {
    if (metrics == nullptr) return;
    if (!final_entry && (t.nnz() & kResidentRefreshMask) != 0) return;
    const std::size_t now = t.bytes();
    metrics->add_resident(kLoaderResidentGauge,
                          static_cast<std::int64_t>(now) -
                              static_cast<std::int64_t>(registered));
    registered = now;
  };

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::vector<std::string_view> tokens = tokenize(line);
    if (tokens.empty()) continue;  // blank or comment-only line

    if (order == 0) {
      SF_CHECK(tokens.size() >= 2,
               at_line(lineno) + "truncated line: need at least one index "
                                 "and a value, got " +
                   std::to_string(tokens.size()) + " field(s)");
      order = tokens.size() - 1;
      SF_CHECK(order <= kMaxOrder,
               at_line(lineno) + "order " + std::to_string(order) +
                   " exceeds kMaxOrder");
    }
    SF_CHECK(tokens.size() == order + 1,
             at_line(lineno) + "expected " + std::to_string(order + 1) +
                 " fields (order " + std::to_string(order) +
                 " + value), got " + std::to_string(tokens.size()));
    if (t.order() == 0) {
      t = CooTensor(grow ? std::vector<index_t>(order, 1) : dims_hint);
      coord.resize(order);
    }
    for (std::size_t m = 0; m < order; ++m) {
      const index_t i = parse_index(tokens[m], lineno, m);
      if (!grow) {
        SF_CHECK(i < dims_hint[m],
                 at_line(lineno) + "mode-" + std::to_string(m) + " index " +
                     std::to_string(i + 1) + " exceeds dimension " +
                     std::to_string(dims_hint[m]));
      }
      coord[m] = i;
    }
    const value_t val = parse_value(tokens[order], lineno);
    const std::span<const index_t> c(coord.data(), order);
    if (grow) t.grow_dims(c);
    t.push(c, val);
    refresh_resident(/*final_entry=*/false);
  }
  SF_CHECK(in.eof(), "stream error while reading .tns input");
  SF_CHECK(order > 0, "empty .tns input");
  // A hinted stream with zero data lines is a valid empty tensor.
  if (t.order() == 0) t = CooTensor(dims_hint);
  SF_CHECK(!expected_nnz || t.nnz() == *expected_nnz,
           "nnz mismatch: header/caller expected " +
               std::to_string(expected_nnz.value_or(0)) + " entries, read " +
               std::to_string(t.nnz()));
  refresh_resident(/*final_entry=*/true);
  if (metrics != nullptr && registered != 0) {
    // The caller owns the tensor from here; the loader's registration
    // ends (the _peak gauge keeps the load-time high-water mark).
    metrics->add_resident(kLoaderResidentGauge,
                          -static_cast<std::int64_t>(registered));
  }
  return t;
}

CooTensor read_tns_file(const std::string& path,
                        const std::vector<index_t>& dims_hint,
                        std::optional<nnz_t> expected_nnz,
                        obs::MetricsRegistry* metrics) {
  std::ifstream in(path);
  SF_CHECK(in.good(), "cannot open " + path);
  return read_tns(in, dims_hint, expected_nnz, metrics);
}

void write_tns(std::ostream& out, const CooTensor& t) {
  // max_digits10 makes the write→read round-trip value-exact — the
  // default 6-significant-digit ostream precision silently perturbs
  // values, which is fatal for the external-sort spill/restore path.
  const std::streamsize old_precision =
      out.precision(std::numeric_limits<value_t>::max_digits10);
  for (nnz_t e = 0; e < t.nnz(); ++e) {
    for (order_t m = 0; m < t.order(); ++m) {
      out << (t.index(m, e) + 1) << ' ';
    }
    out << t.value(e) << '\n';
  }
  out.precision(old_precision);
}

void write_tns_file(const std::string& path, const CooTensor& t) {
  std::ofstream out(path);
  SF_CHECK(out.good(), "cannot open " + path + " for writing");
  write_tns(out, t);
  out.flush();
  SF_CHECK(out.good(), "write failure on " + path);
}

}  // namespace scalfrag
