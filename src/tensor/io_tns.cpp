#include "tensor/io_tns.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <vector>

namespace scalfrag {
namespace {

std::string at_line(std::size_t lineno) {
  return "line " + std::to_string(lineno) + ": ";
}

/// Split on ASCII whitespace. A '#' starts a comment through end of line.
std::vector<std::string_view> tokenize(std::string_view line) {
  const auto hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    std::size_t start = i;
    while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

/// A 1-based index: decimal digits only, full token consumed, fits the
/// index type after conversion to 0-based.
index_t parse_index(std::string_view tok, std::size_t lineno,
                    std::size_t field) {
  std::uint64_t raw = 0;
  const auto [end, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), raw);
  SF_CHECK(ec == std::errc{} && end == tok.data() + tok.size(),
           at_line(lineno) + "index field " + std::to_string(field + 1) +
               " is not a non-negative integer: '" + std::string(tok) + "'");
  SF_CHECK(raw >= 1,
           at_line(lineno) + "index field " + std::to_string(field + 1) +
               " must be >= 1 (.tns indices are 1-based)");
  SF_CHECK(raw - 1 <= std::numeric_limits<index_t>::max(),
           at_line(lineno) + "index field " + std::to_string(field + 1) +
               " overflows the index type: " + std::string(tok));
  return static_cast<index_t>(raw - 1);
}

value_t parse_value(std::string_view tok, std::size_t lineno) {
  double raw = 0.0;
  const auto [end, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), raw);
  SF_CHECK(ec == std::errc{} && end == tok.data() + tok.size(),
           at_line(lineno) + "value field is not a number: '" +
               std::string(tok) + "'");
  SF_CHECK(std::isfinite(raw),
           at_line(lineno) + "value must be finite, got '" +
               std::string(tok) + "'");
  return static_cast<value_t>(raw);
}

}  // namespace

CooTensor read_tns(std::istream& in, const std::vector<index_t>& dims_hint,
                   std::optional<nnz_t> expected_nnz) {
  std::vector<std::vector<index_t>> idx;
  std::vector<value_t> vals;
  std::size_t order = dims_hint.size();
  SF_CHECK(order <= kMaxOrder, "dims_hint order exceeds kMaxOrder");

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::vector<std::string_view> tokens = tokenize(line);
    if (tokens.empty()) continue;  // blank or comment-only line

    if (order == 0) {
      SF_CHECK(tokens.size() >= 2,
               at_line(lineno) + "truncated line: need at least one index "
                                 "and a value, got " +
                   std::to_string(tokens.size()) + " field(s)");
      order = tokens.size() - 1;
      SF_CHECK(order <= kMaxOrder,
               at_line(lineno) + "order " + std::to_string(order) +
                   " exceeds kMaxOrder");
    }
    SF_CHECK(tokens.size() == order + 1,
             at_line(lineno) + "expected " + std::to_string(order + 1) +
                 " fields (order " + std::to_string(order) +
                 " + value), got " + std::to_string(tokens.size()));
    if (idx.empty()) idx.resize(order);
    for (std::size_t m = 0; m < order; ++m) {
      const index_t i = parse_index(tokens[m], lineno, m);
      if (!dims_hint.empty()) {
        SF_CHECK(i < dims_hint[m],
                 at_line(lineno) + "mode-" + std::to_string(m) + " index " +
                     std::to_string(i + 1) + " exceeds dimension " +
                     std::to_string(dims_hint[m]));
      }
      idx[m].push_back(i);
    }
    vals.push_back(parse_value(tokens[order], lineno));
  }
  SF_CHECK(in.eof(), "stream error while reading .tns input");
  SF_CHECK(order > 0, "empty .tns input");
  SF_CHECK(!expected_nnz || vals.size() == *expected_nnz,
           "nnz mismatch: header/caller expected " +
               std::to_string(expected_nnz.value_or(0)) + " entries, read " +
               std::to_string(vals.size()));

  std::vector<index_t> dims = dims_hint;
  if (dims.empty()) {
    dims.assign(order, 1);
    for (std::size_t m = 0; m < order; ++m) {
      for (index_t i : idx[m]) dims[m] = std::max(dims[m], i + 1);
    }
  }
  CooTensor t(dims);
  t.reserve(vals.size());
  std::vector<index_t> coord(order);
  for (std::size_t e = 0; e < vals.size(); ++e) {
    for (std::size_t m = 0; m < order; ++m) coord[m] = idx[m][e];
    t.push(std::span<const index_t>(coord.data(), order), vals[e]);
  }
  return t;
}

CooTensor read_tns_file(const std::string& path,
                        const std::vector<index_t>& dims_hint,
                        std::optional<nnz_t> expected_nnz) {
  std::ifstream in(path);
  SF_CHECK(in.good(), "cannot open " + path);
  return read_tns(in, dims_hint, expected_nnz);
}

void write_tns(std::ostream& out, const CooTensor& t) {
  for (nnz_t e = 0; e < t.nnz(); ++e) {
    for (order_t m = 0; m < t.order(); ++m) {
      out << (t.index(m, e) + 1) << ' ';
    }
    out << t.value(e) << '\n';
  }
}

void write_tns_file(const std::string& path, const CooTensor& t) {
  std::ofstream out(path);
  SF_CHECK(out.good(), "cannot open " + path + " for writing");
  write_tns(out, t);
  SF_CHECK(out.good(), "write failure on " + path);
}

}  // namespace scalfrag
