#pragma once
// FROSTT `.tns` text format I/O.
//
// Each non-comment line is `i_1 i_2 ... i_N value` with 1-based indices;
// `#` starts a comment. This is the format the paper's datasets ship in
// (frostt.io), so real tensors can be dropped into any bench or example
// in place of the synthetic profiles.

#include <iosfwd>
#include <optional>
#include <string>

#include "tensor/coo.hpp"

namespace scalfrag {

/// Parse a .tns stream. Mode sizes are the max index seen per mode
/// unless `dims_hint` is non-empty (then every index is validated
/// against it). When `expected_nnz` is set, the entry count must match
/// it exactly. Throws scalfrag::Error on malformed input: truncated
/// lines, non-numeric fields, trailing garbage in a field, zero or
/// out-of-range indices, index-type overflow, non-finite values, or an
/// entry-count mismatch.
CooTensor read_tns(std::istream& in,
                   const std::vector<index_t>& dims_hint = {},
                   std::optional<nnz_t> expected_nnz = std::nullopt);

/// Convenience: open and parse a file.
CooTensor read_tns_file(const std::string& path,
                        const std::vector<index_t>& dims_hint = {},
                        std::optional<nnz_t> expected_nnz = std::nullopt);

/// Write in .tns format (1-based indices, `%g` values).
void write_tns(std::ostream& out, const CooTensor& t);
void write_tns_file(const std::string& path, const CooTensor& t);

}  // namespace scalfrag
