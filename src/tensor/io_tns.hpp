#pragma once
// FROSTT `.tns` text format I/O.
//
// Each non-comment line is `i_1 i_2 ... i_N value` with 1-based indices;
// `#` starts a comment. This is the format the paper's datasets ship in
// (frostt.io), so real tensors can be dropped into any bench or example
// in place of the synthetic profiles. For files too large to hold
// resident, the chunked reader in io_stream.hpp consumes the same
// format a bounded window at a time.

#include <iosfwd>
#include <optional>
#include <string>

#include "tensor/coo.hpp"

namespace scalfrag {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Resident-bytes gauge the loader reports under when given a metrics
/// registry (same gauge ModeViews uses, so "mem/resident_bytes_peak"
/// covers load and plan phases alike).
inline constexpr const char* kLoaderResidentGauge = "mem/resident_bytes";

/// Parse a .tns stream. Mode sizes are the max index seen per mode
/// unless `dims_hint` is non-empty (then every index is validated
/// against it). When `expected_nnz` is set, the entry count must match
/// it exactly. Entries are pushed straight into the returned tensor —
/// peak load residency is one tensor, not the historical 2× staging
/// copy — and with `metrics` the loader tracks its footprint under
/// kLoaderResidentGauge (released on return; the _peak gauge survives).
/// Throws scalfrag::Error on malformed input: truncated lines,
/// non-numeric fields, trailing garbage in a field, zero or
/// out-of-range indices, index-type overflow, non-finite values, or an
/// entry-count mismatch.
CooTensor read_tns(std::istream& in,
                   const std::vector<index_t>& dims_hint = {},
                   std::optional<nnz_t> expected_nnz = std::nullopt,
                   obs::MetricsRegistry* metrics = nullptr);

/// Convenience: open and parse a file.
CooTensor read_tns_file(const std::string& path,
                        const std::vector<index_t>& dims_hint = {},
                        std::optional<nnz_t> expected_nnz = std::nullopt,
                        obs::MetricsRegistry* metrics = nullptr);

/// Write in .tns format (1-based indices). Values are emitted at
/// std::numeric_limits<value_t>::max_digits10 significant digits, so a
/// write→read round-trip reproduces every value bit-exactly (the
/// external-sort spill files depend on this).
void write_tns(std::ostream& out, const CooTensor& t);
void write_tns_file(const std::string& path, const CooTensor& t);

}  // namespace scalfrag
