#pragma once
// FROSTT `.tns` text format I/O.
//
// Each non-comment line is `i_1 i_2 ... i_N value` with 1-based indices;
// `#` starts a comment. This is the format the paper's datasets ship in
// (frostt.io), so real tensors can be dropped into any bench or example
// in place of the synthetic profiles.

#include <iosfwd>
#include <string>

#include "tensor/coo.hpp"

namespace scalfrag {

/// Parse a .tns stream. Mode sizes are the max index seen per mode
/// unless `dims_hint` is non-empty (then indices are validated against
/// it). Throws scalfrag::Error on malformed input.
CooTensor read_tns(std::istream& in,
                   const std::vector<index_t>& dims_hint = {});

/// Convenience: open and parse a file.
CooTensor read_tns_file(const std::string& path,
                        const std::vector<index_t>& dims_hint = {});

/// Write in .tns format (1-based indices, `%g` values).
void write_tns(std::ostream& out, const CooTensor& t);
void write_tns_file(const std::string& path, const CooTensor& t);

}  // namespace scalfrag
