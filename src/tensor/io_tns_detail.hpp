#pragma once
// Line-level .tns parsing shared by the whole-file reader (io_tns.cpp)
// and the chunked streaming reader (io_stream.cpp). Internal header —
// everything here is an implementation detail of the two readers; the
// public contracts live in io_tns.hpp / io_stream.hpp.

#include <cctype>
#include <charconv>
#include <cmath>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace scalfrag::tns_detail {

inline std::string at_line(std::size_t lineno) {
  return "line " + std::to_string(lineno) + ": ";
}

/// Split on ASCII whitespace. A '#' starts a comment through end of
/// line. '\r' is whitespace, so CRLF files tokenize identically to LF.
inline std::vector<std::string_view> tokenize(std::string_view line) {
  const auto hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    std::size_t start = i;
    while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

/// A 1-based index: decimal digits only, full token consumed, fits the
/// index type after conversion to 0-based.
inline index_t parse_index(std::string_view tok, std::size_t lineno,
                           std::size_t field) {
  std::uint64_t raw = 0;
  const auto [end, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), raw);
  SF_CHECK(ec == std::errc{} && end == tok.data() + tok.size(),
           at_line(lineno) + "index field " + std::to_string(field + 1) +
               " is not a non-negative integer: '" + std::string(tok) + "'");
  SF_CHECK(raw >= 1,
           at_line(lineno) + "index field " + std::to_string(field + 1) +
               " must be >= 1 (.tns indices are 1-based)");
  SF_CHECK(raw - 1 <= std::numeric_limits<index_t>::max(),
           at_line(lineno) + "index field " + std::to_string(field + 1) +
               " overflows the index type: " + std::string(tok));
  return static_cast<index_t>(raw - 1);
}

inline value_t parse_value(std::string_view tok, std::size_t lineno) {
  double raw = 0.0;
  const auto [end, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), raw);
  SF_CHECK(ec == std::errc{} && end == tok.data() + tok.size(),
           at_line(lineno) + "value field is not a number: '" +
               std::string(tok) + "'");
  SF_CHECK(std::isfinite(raw),
           at_line(lineno) + "value must be finite, got '" +
               std::string(tok) + "'");
  return static_cast<value_t>(raw);
}

}  // namespace scalfrag::tns_detail
