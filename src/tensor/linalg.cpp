#include "tensor/linalg.hpp"

#include <cmath>

#include "tensor/simd/microkernels.hpp"

namespace scalfrag::linalg {

DenseMatrix matmul(const DenseMatrix& a, const DenseMatrix& b) {
  SF_CHECK(a.cols() == b.rows(), "matmul shape mismatch");
  DenseMatrix c(a.rows(), b.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    const value_t* arow = a.row(i);
    value_t* crow = c.row(i);
    for (index_t k = 0; k < a.cols(); ++k) {
      const double av = arow[k];
      if (av == 0.0) continue;
      const value_t* brow = b.row(k);
      for (index_t j = 0; j < b.cols(); ++j) {
        crow[j] = static_cast<value_t>(crow[j] + av * brow[j]);
      }
    }
  }
  return c;
}

DenseMatrix matmul_tn(const DenseMatrix& a, const DenseMatrix& b) {
  SF_CHECK(a.rows() == b.rows(), "matmul_tn shape mismatch");
  DenseMatrix c(a.cols(), b.cols());
  // Accumulate in double then store; k is the shared (long) dimension.
  // Each rank-1 update row runs through the SIMD axpy_widen kernel of
  // the auto-detected ISA table (src/tensor/simd/).
  const simd::KernelTable& kt = simd::kernels_for(HostIsa::Auto);
  std::vector<double> acc(static_cast<std::size_t>(a.cols()) * b.cols(), 0.0);
  for (index_t k = 0; k < a.rows(); ++k) {
    const value_t* arow = a.row(k);
    const value_t* brow = b.row(k);
    for (index_t i = 0; i < a.cols(); ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* arow_acc = acc.data() + static_cast<std::size_t>(i) * b.cols();
      kt.axpy_widen(arow_acc, av, brow, b.cols());
    }
  }
  for (index_t i = 0; i < c.rows(); ++i) {
    for (index_t j = 0; j < c.cols(); ++j) {
      c(i, j) = static_cast<value_t>(
          acc[static_cast<std::size_t>(i) * c.cols() + j]);
    }
  }
  return c;
}

DenseMatrix gram(const DenseMatrix& a) { return matmul_tn(a, a); }

void hadamard_inplace(DenseMatrix& a, const DenseMatrix& b) {
  SF_CHECK(a.same_shape(b), "hadamard shape mismatch");
  simd::kernels_for(HostIsa::Auto).mul_inplace(a.data(), b.data(), a.size());
}

DenseMatrix transpose(const DenseMatrix& a) {
  DenseMatrix t(a.cols(), a.rows());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      t(j, i) = a(i, j);
    }
  }
  return t;
}

std::vector<double> jacobi_eigen_symmetric(const DenseMatrix& m,
                                           DenseMatrix& vectors,
                                           int max_sweeps) {
  SF_CHECK(m.rows() == m.cols(), "eigendecomposition needs a square matrix");
  const index_t n = m.rows();
  // Work in double throughout.
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      a[static_cast<std::size_t>(i) * n + j] =
          0.5 * (static_cast<double>(m(i, j)) + static_cast<double>(m(j, i)));
    }
  }
  std::vector<double> v(static_cast<std::size_t>(n) * n, 0.0);
  for (index_t i = 0; i < n; ++i) v[static_cast<std::size_t>(i) * n + i] = 1.0;

  auto A = [&](index_t i, index_t j) -> double& {
    return a[static_cast<std::size_t>(i) * n + j];
  };
  auto V = [&](index_t i, index_t j) -> double& {
    return v[static_cast<std::size_t>(i) * n + j];
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = i + 1; j < n; ++j) off += A(i, j) * A(i, j);
    }
    if (off < 1e-24) break;
    for (index_t p = 0; p < n; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        const double apq = A(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = A(p, p);
        const double aqq = A(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (index_t k = 0; k < n; ++k) {
          const double akp = A(k, p);
          const double akq = A(k, q);
          A(k, p) = c * akp - s * akq;
          A(k, q) = s * akp + c * akq;
        }
        for (index_t k = 0; k < n; ++k) {
          const double apk = A(p, k);
          const double aqk = A(q, k);
          A(p, k) = c * apk - s * aqk;
          A(q, k) = s * apk + c * aqk;
        }
        for (index_t k = 0; k < n; ++k) {
          const double vkp = V(k, p);
          const double vkq = V(k, q);
          V(k, p) = c * vkp - s * vkq;
          V(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  vectors = DenseMatrix(n, n);
  std::vector<double> eigvals(n);
  for (index_t i = 0; i < n; ++i) {
    eigvals[i] = A(i, i);
    for (index_t j = 0; j < n; ++j) {
      vectors(i, j) = static_cast<value_t>(V(i, j));
    }
  }
  return eigvals;
}

DenseMatrix pinv_spd(const DenseMatrix& m, double rel_tol) {
  DenseMatrix vec;
  std::vector<double> w = jacobi_eigen_symmetric(m, vec);
  const index_t n = m.rows();
  double wmax = 0.0;
  for (double x : w) wmax = std::max(wmax, std::abs(x));
  const double cutoff = wmax * rel_tol;

  // pinv = V diag(1/w) Vᵀ with small eigenvalues dropped.
  DenseMatrix out(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (index_t k = 0; k < n; ++k) {
        if (std::abs(w[k]) <= cutoff) continue;
        s += static_cast<double>(vec(i, k)) * static_cast<double>(vec(j, k)) /
             w[k];
      }
      out(i, j) = static_cast<value_t>(s);
    }
  }
  return out;
}

double frobenius_norm(const DenseMatrix& a) {
  double s = 0.0;
  const value_t* p = a.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += static_cast<double>(p[i]) * static_cast<double>(p[i]);
  }
  return std::sqrt(s);
}

double max_abs(const DenseMatrix& a) {
  double s = 0.0;
  const value_t* p = a.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    s = std::max(s, std::abs(static_cast<double>(p[i])));
  }
  return s;
}

void gram_schmidt(DenseMatrix& a, std::uint64_t rescue_seed) {
  SF_CHECK(a.rows() >= a.cols(), "need rows >= cols to orthonormalize");
  Rng rng(rescue_seed);
  const index_t n = a.rows();
  for (index_t j = 0; j < a.cols(); ++j) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      // Project out the previous basis vectors (twice is enough).
      for (int pass = 0; pass < 2; ++pass) {
        for (index_t k = 0; k < j; ++k) {
          double dot = 0.0;
          for (index_t i = 0; i < n; ++i) {
            dot += static_cast<double>(a(i, j)) * a(i, k);
          }
          for (index_t i = 0; i < n; ++i) {
            a(i, j) = static_cast<value_t>(a(i, j) - dot * a(i, k));
          }
        }
      }
      double norm = 0.0;
      for (index_t i = 0; i < n; ++i) {
        norm += static_cast<double>(a(i, j)) * a(i, j);
      }
      norm = std::sqrt(norm);
      if (norm > 1e-6) {
        for (index_t i = 0; i < n; ++i) {
          a(i, j) = static_cast<value_t>(a(i, j) / norm);
        }
        break;
      }
      // Dependent column: rescue with a random draw and retry.
      for (index_t i = 0; i < n; ++i) {
        a(i, j) = static_cast<value_t>(rng.normal());
      }
    }
  }
}

std::vector<double> column_norms(const DenseMatrix& a) {
  std::vector<double> norms(a.cols(), 0.0);
  for (index_t i = 0; i < a.rows(); ++i) {
    const value_t* row = a.row(i);
    for (index_t j = 0; j < a.cols(); ++j) {
      norms[j] += static_cast<double>(row[j]) * static_cast<double>(row[j]);
    }
  }
  for (auto& x : norms) x = std::sqrt(x);
  return norms;
}

}  // namespace scalfrag::linalg
