#pragma once
// Dense linear algebra needed by CPD-ALS: products, Gram matrices,
// Hadamard products, and the Moore–Penrose pseudo-inverse of the small
// F×F normal-equations matrix. Accumulation is in double even though
// storage is float — the F×F solves are tiny, so the extra precision is
// free and keeps ALS stable.

#include "tensor/dense_matrix.hpp"

namespace scalfrag::linalg {

/// C = A * B. Shapes: (m×k) * (k×n) = (m×n).
DenseMatrix matmul(const DenseMatrix& a, const DenseMatrix& b);

/// C = Aᵀ * B. Shapes: (k×m)ᵀ * (k×n) = (m×n).
DenseMatrix matmul_tn(const DenseMatrix& a, const DenseMatrix& b);

/// Gram matrix AᵀA (m×m for an n×m input). Symmetric by construction.
DenseMatrix gram(const DenseMatrix& a);

/// a := a ∘ b (element-wise / Hadamard product).
void hadamard_inplace(DenseMatrix& a, const DenseMatrix& b);

/// Transposed copy.
DenseMatrix transpose(const DenseMatrix& a);

/// Moore–Penrose pseudo-inverse of a symmetric PSD matrix (the CPD
/// normal-equations matrix V = ∘ of Grams). Uses cyclic Jacobi
/// eigendecomposition; eigenvalues below rel_tol·λmax are treated as 0.
DenseMatrix pinv_spd(const DenseMatrix& m, double rel_tol = 1e-6);

/// Jacobi eigendecomposition of a symmetric matrix.
/// Returns eigenvalues (ascending? no — unsorted) and fills `vectors`
/// with eigenvectors in columns: m = V diag(w) Vᵀ.
std::vector<double> jacobi_eigen_symmetric(const DenseMatrix& m,
                                           DenseMatrix& vectors,
                                           int max_sweeps = 64);

/// Frobenius norm.
double frobenius_norm(const DenseMatrix& a);

/// Max |a(i,j)| over all entries.
double max_abs(const DenseMatrix& a);

/// Column-wise 2-norms; used to normalize CPD factors into lambdas.
std::vector<double> column_norms(const DenseMatrix& a);

/// In-place modified Gram–Schmidt: orthonormalize the columns of `a`
/// (rows ≥ cols required). Columns that become numerically dependent
/// are replaced with pseudo-random vectors re-orthogonalized against
/// the basis, so the result always has full column rank.
void gram_schmidt(DenseMatrix& a, std::uint64_t rescue_seed = 99);

}  // namespace scalfrag::linalg
