#include "tensor/mode_views.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace scalfrag {

ModeViews::ModeViews(const CooTensor& x, obs::MetricsRegistry* metrics,
                     nnz_t gather_limit)
    : metrics_(metrics) {
  SF_CHECK(x.order() > 0, "ModeViews needs a tensor with dims");
  canonical_ = x;
  if (!canonical_.is_sorted_by_mode(0)) canonical_.sort_by_mode(0);

  const order_t ord = canonical_.order();
  const nnz_t n = canonical_.nnz();
  if (n > gather_limit) {
    // perm_t cannot address every entry: keep the old per-mode copies.
    // Mode 0 is the canonical copy itself, so only ord-1 slots exist —
    // copies_[m-1] serves mode m.
    copies_.resize(ord - 1);
    for (order_t m = 1; m < ord; ++m) {
      copies_[m - 1] = canonical_;
      copies_[m - 1].sort_by_mode(m);
    }
  } else {
    perms_.resize(ord);
    for (order_t m = 1; m < ord; ++m) {
      // Stable counting sort by the mode-m index over canonical order;
      // ties keep lexicographic-over-remaining-modes order, which is
      // exactly sort_by_mode(m)'s order.
      const std::vector<index_t>& mi = canonical_.mode_indices(m);
      std::vector<nnz_t> head(static_cast<std::size_t>(canonical_.dim(m)) + 1,
                              0);
      for (nnz_t e = 0; e < n; ++e) ++head[mi[e] + 1];
      for (std::size_t i = 1; i < head.size(); ++i) head[i] += head[i - 1];
      std::vector<perm_t>& perm = perms_[m];
      perm.resize(n);
      for (nnz_t e = 0; e < n; ++e) {
        perm[head[mi[e]]++] = static_cast<perm_t>(e);
      }
    }
  }
  register_metrics();
}

ModeViews::~ModeViews() { release_metrics(); }

ModeViews::ModeViews(ModeViews&& other) noexcept
    : canonical_(std::move(other.canonical_)),
      perms_(std::move(other.perms_)),
      copies_(std::move(other.copies_)),
      metrics_(other.metrics_),
      registered_bytes_(other.registered_bytes_) {
  // The registration travels with the storage; the source must not
  // release it again.
  other.metrics_ = nullptr;
  other.registered_bytes_ = 0;
}

ModeViews& ModeViews::operator=(ModeViews&& other) noexcept {
  if (this == &other) return *this;
  release_metrics();
  canonical_ = std::move(other.canonical_);
  perms_ = std::move(other.perms_);
  copies_ = std::move(other.copies_);
  metrics_ = other.metrics_;
  registered_bytes_ = other.registered_bytes_;
  other.metrics_ = nullptr;
  other.registered_bytes_ = 0;
  return *this;
}

CooSpan ModeViews::view(order_t mode) const {
  SF_CHECK(mode < order(), "mode out of range");
  if (mode == 0) {
    CooSpan s(canonical_);
    s.assume_sorted_by(0);
    return s;
  }
  if (!copies_.empty()) {
    CooSpan s(copies_[mode - 1]);
    s.assume_sorted_by(mode);
    return s;
  }
  CooSpan s =
      CooSpan(canonical_).gather(perms_[mode].data(), perms_[mode].size());
  s.assume_sorted_by(mode);
  return s;
}

std::size_t ModeViews::resident_bytes() const noexcept {
  std::size_t total = canonical_.bytes();
  for (const std::vector<perm_t>& p : perms_) {
    total += p.size() * sizeof(perm_t);
  }
  for (const CooTensor& c : copies_) total += c.bytes();
  return total;
}

void ModeViews::register_metrics() {
  if (metrics_ == nullptr) return;
  registered_bytes_ = resident_bytes();
  metrics_->add_resident(kResidentGauge,
                         static_cast<std::int64_t>(registered_bytes_));
}

void ModeViews::release_metrics() {
  if (metrics_ == nullptr || registered_bytes_ == 0) return;
  metrics_->add_resident(kResidentGauge,
                         -static_cast<std::int64_t>(registered_bytes_));
  registered_bytes_ = 0;
}

}  // namespace scalfrag
