#pragma once
// Mode-agnostic permutation views: one canonical lexicographic sort
// plus one gather permutation per remaining mode, replacing the
// one-fully-sorted-copy-per-mode preprocessing that CPD/Tucker drivers
// and MttkrpPlan used to pay (ALTO-style shared ordered representation;
// see docs/host-engine.md "Plan memory model").
//
// Why a single comparison sort suffices: the canonical copy is sorted
// by mode 0, i.e. plain lexicographic order (0, 1, ..., N-1). For any
// other mode m, the mode-m sort order (m first, remaining modes
// ascending) is exactly what a *stable* counting sort by the mode-m
// index produces over the canonical order — entries tied on mode m keep
// their canonical relative order, which is lexicographic over the
// remaining modes. So prepare is one O(nnz log nnz) sort plus N-1
// O(nnz + dim) counting passes, and memory is one tensor plus
// (N-1) * sizeof(perm_t) * nnz instead of N tensors.
//
// Lifetime: a ModeViews owns the canonical copy and the permutations;
// every CooSpan returned by view() aliases them and must not outlive
// or observe mutation of this object (moving a ModeViews keeps heap
// buffers stable, so existing views survive the move).

#include <cstdint>
#include <limits>
#include <vector>

#include "tensor/coo.hpp"

namespace scalfrag {

namespace obs {
class MetricsRegistry;
}  // namespace obs

class ModeViews {
 public:
  /// Gauge fed via MetricsRegistry::add_resident; the registry derives
  /// "mem/resident_bytes_peak" from it.
  static constexpr const char* kResidentGauge = "mem/resident_bytes";

  ModeViews() = default;

  /// Canonical-sorts a copy of `x` (skipped when x is already sorted by
  /// mode 0) and derives the per-mode permutations. When nnz exceeds
  /// `gather_limit` (default: what perm_t can address) the permutations
  /// cannot be represented and the facility falls back to materialized
  /// per-mode sorted copies — views stay valid, memory does not shrink.
  /// With a `metrics` registry the resident footprint is tracked as
  /// kResidentGauge for the lifetime of this object.
  explicit ModeViews(
      const CooTensor& x, obs::MetricsRegistry* metrics = nullptr,
      nnz_t gather_limit = std::numeric_limits<perm_t>::max());
  ~ModeViews();

  ModeViews(ModeViews&& other) noexcept;
  ModeViews& operator=(ModeViews&& other) noexcept;
  ModeViews(const ModeViews&) = delete;
  ModeViews& operator=(const ModeViews&) = delete;

  order_t order() const noexcept { return canonical_.order(); }
  nnz_t nnz() const noexcept { return canonical_.nnz(); }
  const CooTensor& canonical() const noexcept { return canonical_; }

  /// Mode-`mode` sorted view. Mode 0 is the canonical copy itself;
  /// other modes are O(1) gather views (or, in the fallback, spans of
  /// the materialized copies). Every view carries the matching
  /// assume_sorted_by hint, so downstream sortedness checks are O(1).
  CooSpan view(order_t mode) const;

  /// True when the gather_limit fallback materialized per-mode copies.
  bool materialized() const noexcept { return !copies_.empty(); }

  /// Bytes resident in this object: canonical copy + permutations
  /// (+ materialized copies in the fallback).
  std::size_t resident_bytes() const noexcept;

  /// What the replaced scheme would keep resident: one fully sorted
  /// copy per mode. The regression tests and fig10 compare against it.
  static std::size_t legacy_copies_bytes(const CooTensor& x) noexcept {
    return static_cast<std::size_t>(x.order()) * x.bytes();
  }

 private:
  void register_metrics();
  void release_metrics();

  CooTensor canonical_;
  std::vector<std::vector<perm_t>> perms_;  // [mode]; empty for mode 0
  std::vector<CooTensor> copies_;           // gather_limit fallback only
  obs::MetricsRegistry* metrics_ = nullptr;
  std::size_t registered_bytes_ = 0;
};

}  // namespace scalfrag
