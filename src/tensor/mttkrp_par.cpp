#include "tensor/mttkrp_par.hpp"

#include <algorithm>
#include <optional>

#include "common/thread_pool.hpp"
#include "tensor/simd/microkernels.hpp"

namespace scalfrag {

const char* host_strategy_name(HostStrategy s) {
  switch (s) {
    case HostStrategy::Auto:
      return "Auto";
    case HostStrategy::Serial:
      return "Serial";
    case HostStrategy::SliceOwner:
      return "SliceOwner";
    case HostStrategy::PrivateReduce:
      return "PrivateReduce";
  }
  return "?";
}

index_t check_factors(const CooSpan& t, const FactorList& factors) {
  SF_CHECK(factors.size() == t.order(),
           "need exactly one factor matrix per mode");
  const index_t rank = factors.empty() ? 0 : factors[0].cols();
  SF_CHECK(rank > 0, "factor rank must be positive");
  for (order_t m = 0; m < t.order(); ++m) {
    SF_CHECK(factors[m].rows() == t.dim(m),
             "factor row count must equal the mode size");
    SF_CHECK(factors[m].cols() == rank, "all factors must share rank F");
  }
  return rank;
}

namespace {

// The rank-tiled kernel bodies live in src/tensor/simd/ now — one
// shared template (kernel_body.hpp) instantiated per ISA in its own
// translation unit, selected at runtime through simd::kernels_for().
// This file keeps only the strategy layer: chunking, the thread-pool
// fan-out, privatized reduction, and observability.

/// Cut the span's [0, nnz) into ≤ `chunks` slice-aligned ranges (same
/// forward-snap rule as the segmenter): cuts[i]..cuts[i+1] is chunk i,
/// and no mode-`mode` slice spans a cut. Walks logical entry order, so
/// gather views chunk exactly like their materialized equivalents.
std::vector<nnz_t> slice_chunks(const CooSpan& t, order_t mode,
                                std::size_t chunks) {
  const nnz_t n = t.nnz();
  std::vector<nnz_t> cuts{0};
  const nnz_t target = (n + chunks - 1) / chunks;
  nnz_t cursor = 0;
  while (cursor < n) {
    nnz_t cut = std::min<nnz_t>(cursor + target, n);
    if (cut < n) {
      const index_t slice = t.index(mode, cut - 1);
      while (cut < n && t.index(mode, cut) == slice) ++cut;
    }
    cuts.push_back(cut);
    cursor = cut;
  }
  return cuts;
}

std::size_t effective_threads(const HostExecParams& opt) {
  const std::size_t pool = ThreadPool::global().size();
  return std::max<std::size_t>(1, opt.threads == 0 ? pool : opt.threads);
}

}  // namespace

HostStrategy choose_host_strategy(const CooSpan& t, order_t mode,
                                  const HostExecParams& opt) {
  if (opt.strategy != HostStrategy::Auto) return opt.strategy;
  const nnz_t n = t.nnz();
  const std::size_t threads = effective_threads(opt);
  if (threads <= 1 || n < std::max<nnz_t>(opt.grain_nnz, 2)) {
    return HostStrategy::Serial;
  }
  const nnz_t target = (n + threads - 1) / threads;
  if (opt.features != nullptr) {
    // Feature fast path — O(1) instead of the O(nnz) probes below. By
    // passing features the caller asserts the view is the mode-grouped
    // tensor they were extracted from (the pipeline's segments and the
    // planner satisfy this by construction). One dominating slice means
    // slice-aligned chunks cannot balance — privatize instead.
    return opt.features->max_nnz_per_slice > 2 * target
               ? HostStrategy::PrivateReduce
               : HostStrategy::SliceOwner;
  }
  if (!t.slices_contiguous(mode)) return HostStrategy::PrivateReduce;
  const auto cuts = slice_chunks(t, mode, threads);
  nnz_t max_chunk = 0;
  for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
    max_chunk = std::max(max_chunk, cuts[c + 1] - cuts[c]);
  }
  if (max_chunk > 2 * target) return HostStrategy::PrivateReduce;
  return HostStrategy::SliceOwner;
}

void mttkrp_coo_par(const CooSpan& t, const FactorList& factors, order_t mode,
                    DenseMatrix& out, bool accumulate,
                    const HostExecParams& opt) {
  const index_t rank = check_factors(t, factors);
  SF_CHECK(mode < t.order(), "mode out of range");
  SF_CHECK(out.rows() == t.dim(mode) && out.cols() == rank,
           "output shape must be dims[mode] × F");
  if (!accumulate) out.set_zero();
  if (t.nnz() == 0) return;

  const HostStrategy strat = choose_host_strategy(t, mode, opt);
  const simd::KernelTable& kt = simd::kernels_for(opt.isa);
  ThreadPool& pool = ThreadPool::global();
  if (opt.pinning != PinPolicy::None) pool.apply_pinning(opt.pinning);
  const std::size_t threads = effective_threads(opt);
  const nnz_t n = t.nnz();

  std::optional<obs::MetricsRegistry::ScopedSpan> span;
  if (opt.metrics != nullptr) {
    opt.metrics->count("host/calls");
    opt.metrics->count("host/nnz", n);
    opt.metrics->count(std::string("host/strategy/") +
                       host_strategy_name(strat));
    opt.metrics->count(std::string("host/isa/") + kt.name);
    opt.metrics->count(std::string("host/pinning/") +
                       pin_policy_name(pool.pinning()));
    span.emplace(*opt.metrics, "host/mttkrp");
  }

  switch (strat) {
    case HostStrategy::Auto:  // unreachable: choose resolves Auto
    case HostStrategy::Serial:
      kt.mttkrp_span(t, factors, mode, out);
      return;

    case HostStrategy::SliceOwner: {
      // Auto already probed contiguity (or the caller vouched via
      // features); only an explicitly forced SliceOwner needs the check.
      if (opt.strategy == HostStrategy::SliceOwner) {
        SF_CHECK(t.slices_contiguous(mode),
                 "SliceOwner requires contiguous slices (mode-grouped input)");
      }
      const auto cuts = slice_chunks(t, mode, threads);
      const std::size_t n_chunks = cuts.size() - 1;
      // Each chunk owns the output rows of its slice range: chunks are
      // race-free against each other, no atomics, no reduction.
      pool.parallel_for(0, n_chunks, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) {
          kt.mttkrp_span(t.subspan(cuts[c], cuts[c + 1]), factors, mode, out);
        }
      });
      return;
    }

    case HostStrategy::PrivateReduce: {
      const std::size_t parts = std::min<std::size_t>(
          threads, std::max<nnz_t>(1, n / std::max<nnz_t>(opt.grain_nnz, 1)));
      if (parts <= 1) {
        kt.mttkrp_span(t, factors, mode, out);
        return;
      }
      // Privatized accumulation: an even nnz split into per-part
      // buffers (any entry order, any skew), then a parallel reduction
      // over disjoint output-row ranges. Each private buffer is
      // allocated and zero-faulted inside the worker that fills it, so
      // under pinning the pages first-touch on that worker's NUMA node.
      std::vector<DenseMatrix> priv(parts);
      const nnz_t per = (n + parts - 1) / parts;
      pool.parallel_for(0, parts, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) {
          const nnz_t b = c * per;
          const nnz_t e = std::min<nnz_t>(n, b + per);
          if (b >= e) continue;
          priv[c] = DenseMatrix(out.rows(), rank);
          kt.mttkrp_span(t.subspan(b, e), factors, mode, priv[c]);
        }
      });
      const std::size_t rows = out.rows();
      pool.parallel_for(
          0, rows,
          [&](std::size_t lo, std::size_t hi) {
            for (std::size_t p = 0; p < parts; ++p) {
              if (priv[p].rows() == 0) continue;  // empty tail part
              const value_t* prow = priv[p].row(static_cast<index_t>(lo));
              value_t* orow = out.row(static_cast<index_t>(lo));
              kt.rows_add(orow, prow, (hi - lo) * static_cast<std::size_t>(rank));
            }
          },
          /*grain=*/64);
      return;
    }
  }
}

DenseMatrix mttkrp_coo_par(const CooSpan& t, const FactorList& factors,
                           order_t mode, const HostExecParams& opt) {
  DenseMatrix out(t.dim(mode), factors.at(0).cols());
  mttkrp_coo_par(t, factors, mode, out, /*accumulate=*/false, opt);
  return out;
}

void mttkrp_csf_par(const CsfTensor& t, const FactorList& factors,
                    DenseMatrix& out, bool accumulate,
                    const HostExecParams& opt) {
  SF_CHECK(factors.size() == t.order(), "one factor per mode");
  const index_t rank = factors[0].cols();
  const order_t root_mode = t.mode_order()[0];
  SF_CHECK(out.rows() == t.dims()[root_mode] && out.cols() == rank,
           "output shape must be dims[root] × F");
  if (!accumulate) out.set_zero();
  if (t.nnz() == 0) return;

  const std::size_t threads = effective_threads(opt);
  const nnz_t slices = t.num_nodes(0);
  if (threads <= 1 || t.nnz() < opt.grain_nnz || slices <= 1 ||
      opt.strategy == HostStrategy::Serial) {
    mttkrp_csf_range(t, factors, 0, slices, out);
    return;
  }

  // Leaf offset of root slice s: follow first-child pointers down the
  // tree. Monotone in s, so nnz-balanced cuts fall out of one sweep.
  auto leaf_begin = [&](nnz_t s) {
    nnz_t o = s;
    for (order_t l = 0; l + 1 < t.order(); ++l) o = t.fptr(l)[o];
    return o;
  };
  std::vector<nnz_t> cuts{0};
  const nnz_t target = (t.nnz() + threads - 1) / threads;
  nnz_t goal = target;
  for (nnz_t s = 1; s < slices; ++s) {
    const nnz_t off = leaf_begin(s);
    if (off >= goal) {
      cuts.push_back(s);
      goal = off + target;
    }
  }
  cuts.push_back(slices);

  // Root slices own disjoint output rows → chunks are race-free.
  ThreadPool& pool = ThreadPool::global();
  const std::size_t n_chunks = cuts.size() - 1;
  pool.parallel_for(0, n_chunks, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t c = lo; c < hi; ++c) {
      mttkrp_csf_range(t, factors, cuts[c], cuts[c + 1], out);
    }
  });
}

}  // namespace scalfrag
