#include "tensor/mttkrp_par.hpp"

#include <algorithm>
#include <optional>

#include "common/thread_pool.hpp"

namespace scalfrag {

const char* host_strategy_name(HostStrategy s) {
  switch (s) {
    case HostStrategy::Auto:
      return "Auto";
    case HostStrategy::Serial:
      return "Serial";
    case HostStrategy::SliceOwner:
      return "SliceOwner";
    case HostStrategy::PrivateReduce:
      return "PrivateReduce";
  }
  return "?";
}

index_t check_factors(const CooSpan& t, const FactorList& factors) {
  SF_CHECK(factors.size() == t.order(),
           "need exactly one factor matrix per mode");
  const index_t rank = factors.empty() ? 0 : factors[0].cols();
  SF_CHECK(rank > 0, "factor rank must be positive");
  for (order_t m = 0; m < t.order(); ++m) {
    SF_CHECK(factors[m].rows() == t.dim(m),
             "factor row count must equal the mode size");
    SF_CHECK(factors[m].cols() == rank, "all factors must share rank F");
  }
  return rank;
}

namespace {

/// Rank-tile width of the host kernels: the accumulator tile lives in
/// registers/L1 (64 floats = 4 cache lines) while one output row's run
/// of entries streams through — the host-side mirror of the paper's
/// shared-memory factor staging. 64 divides or exceeds every rank the
/// drivers use, so the tail tile is rare.
inline constexpr index_t kRankTile = 64;

/// Entry addressing of a contiguous span: logical == physical.
struct IdentityMap {
  nnz_t operator()(nnz_t e) const noexcept { return e; }
};

/// Entry addressing of a gather view (ModeViews / hybrid GPU share).
struct GatherMap {
  const perm_t* perm;
  nnz_t operator()(nnz_t e) const noexcept { return perm[e]; }
};

/// Rank-tiled kernel over the whole span, accumulating into `out`.
/// Index arrays and factor bases are hoisted to raw pointers once; per
/// rank tile, each *run* of entries sharing an output row accumulates
/// into a stack tile seeded from the row and stored back once — the
/// writes are contiguous, stride-1 and vectorizable, and the per-column
/// addition order is exactly the reference's (runs degenerate to length
/// 1 on ungrouped input, which reproduces the naive kernel). The
/// multiply chain stays left-associated ((val·A)·B), matching
/// mttkrp_coo_ref bit for bit modulo FMA contraction.
///
/// NF = 0/1/2 are the fused low-order bodies; NF = -1 is the
/// general-order body with a Hadamard scratch tile.
template <int NF, typename Map>
void span_range_tiled(const CooSpan& t, const FactorList& factors,
                      order_t mode, DenseMatrix& out, Map at) {
  const index_t rank = factors[mode].cols();
  const order_t order = t.order();
  const nnz_t n = t.nnz();
  const value_t* vals = t.value_base();
  const index_t* oidx = t.index_base(mode);

  const index_t* idx[kMaxOrder] = {};
  const value_t* fdata[kMaxOrder] = {};
  order_t nf = 0;
  for (order_t m = 0; m < order; ++m) {
    if (m == mode) continue;
    idx[nf] = t.index_base(m);
    fdata[nf] = factors[m].data();
    ++nf;
  }

  value_t acc[kRankTile];
  value_t had[kRankTile];  // general-order Hadamard scratch
  for (index_t f0 = 0; f0 < rank; f0 += kRankTile) {
    const index_t tw = std::min<index_t>(kRankTile, rank - f0);
    nnz_t e = 0;
    while (e < n) {
      const index_t row = oidx[at(e)];
      value_t* orow = out.row(row) + f0;
      for (index_t f = 0; f < tw; ++f) acc[f] = orow[f];
      do {
        const nnz_t p = at(e);
        const value_t val = vals[p];
        if constexpr (NF == 0) {
          // Order-1 degenerate case: every column accumulates val.
          for (index_t f = 0; f < tw; ++f) acc[f] += val;
        } else if constexpr (NF == 1) {
          const value_t* r0 =
              fdata[0] + static_cast<std::size_t>(idx[0][p]) * rank + f0;
          for (index_t f = 0; f < tw; ++f) acc[f] += val * r0[f];
        } else if constexpr (NF == 2) {
          const value_t* r0 =
              fdata[0] + static_cast<std::size_t>(idx[0][p]) * rank + f0;
          const value_t* r1 =
              fdata[1] + static_cast<std::size_t>(idx[1][p]) * rank + f0;
          for (index_t f = 0; f < tw; ++f) acc[f] += val * r0[f] * r1[f];
        } else {
          const value_t* r0 =
              fdata[0] + static_cast<std::size_t>(idx[0][p]) * rank + f0;
          for (index_t f = 0; f < tw; ++f) had[f] = val * r0[f];
          for (order_t k = 1; k < nf; ++k) {
            const value_t* rk =
                fdata[k] + static_cast<std::size_t>(idx[k][p]) * rank + f0;
            for (index_t f = 0; f < tw; ++f) had[f] *= rk[f];
          }
          for (index_t f = 0; f < tw; ++f) acc[f] += had[f];
        }
        ++e;
      } while (e < n && oidx[at(e)] == row);
      for (index_t f = 0; f < tw; ++f) orow[f] = acc[f];
    }
  }
}

template <typename Map>
void span_range_dispatch(const CooSpan& t, const FactorList& factors,
                         order_t mode, DenseMatrix& out, Map at) {
  switch (t.order() - 1) {
    case 0:
      span_range_tiled<0>(t, factors, mode, out, at);
      return;
    case 1:
      span_range_tiled<1>(t, factors, mode, out, at);
      return;
    case 2:
      span_range_tiled<2>(t, factors, mode, out, at);
      return;
    default:
      span_range_tiled<-1>(t, factors, mode, out, at);
      return;
  }
}

/// Serial kernel body: picks the fused arity and the entry addressing
/// (contiguous vs gather view) once per call.
void mttkrp_span_range(const CooSpan& t, const FactorList& factors,
                       order_t mode, DenseMatrix& out) {
  if (t.nnz() == 0) return;
  if (t.is_gather()) {
    span_range_dispatch(t, factors, mode, out, GatherMap{t.permutation()});
  } else {
    span_range_dispatch(t, factors, mode, out, IdentityMap{});
  }
}

/// Cut the span's [0, nnz) into ≤ `chunks` slice-aligned ranges (same
/// forward-snap rule as the segmenter): cuts[i]..cuts[i+1] is chunk i,
/// and no mode-`mode` slice spans a cut. Walks logical entry order, so
/// gather views chunk exactly like their materialized equivalents.
std::vector<nnz_t> slice_chunks(const CooSpan& t, order_t mode,
                                std::size_t chunks) {
  const nnz_t n = t.nnz();
  std::vector<nnz_t> cuts{0};
  const nnz_t target = (n + chunks - 1) / chunks;
  nnz_t cursor = 0;
  while (cursor < n) {
    nnz_t cut = std::min<nnz_t>(cursor + target, n);
    if (cut < n) {
      const index_t slice = t.index(mode, cut - 1);
      while (cut < n && t.index(mode, cut) == slice) ++cut;
    }
    cuts.push_back(cut);
    cursor = cut;
  }
  return cuts;
}

std::size_t effective_threads(const HostExecParams& opt) {
  const std::size_t pool = ThreadPool::global().size();
  return std::max<std::size_t>(1, opt.threads == 0 ? pool : opt.threads);
}

}  // namespace

HostStrategy choose_host_strategy(const CooSpan& t, order_t mode,
                                  const HostExecParams& opt) {
  if (opt.strategy != HostStrategy::Auto) return opt.strategy;
  const nnz_t n = t.nnz();
  const std::size_t threads = effective_threads(opt);
  if (threads <= 1 || n < std::max<nnz_t>(opt.grain_nnz, 2)) {
    return HostStrategy::Serial;
  }
  const nnz_t target = (n + threads - 1) / threads;
  if (opt.features != nullptr) {
    // Feature fast path — O(1) instead of the O(nnz) probes below. By
    // passing features the caller asserts the view is the mode-grouped
    // tensor they were extracted from (the pipeline's segments and the
    // planner satisfy this by construction). One dominating slice means
    // slice-aligned chunks cannot balance — privatize instead.
    return opt.features->max_nnz_per_slice > 2 * target
               ? HostStrategy::PrivateReduce
               : HostStrategy::SliceOwner;
  }
  if (!t.slices_contiguous(mode)) return HostStrategy::PrivateReduce;
  const auto cuts = slice_chunks(t, mode, threads);
  nnz_t max_chunk = 0;
  for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
    max_chunk = std::max(max_chunk, cuts[c + 1] - cuts[c]);
  }
  if (max_chunk > 2 * target) return HostStrategy::PrivateReduce;
  return HostStrategy::SliceOwner;
}

void mttkrp_coo_par(const CooSpan& t, const FactorList& factors, order_t mode,
                    DenseMatrix& out, bool accumulate,
                    const HostExecParams& opt) {
  const index_t rank = check_factors(t, factors);
  SF_CHECK(mode < t.order(), "mode out of range");
  SF_CHECK(out.rows() == t.dim(mode) && out.cols() == rank,
           "output shape must be dims[mode] × F");
  if (!accumulate) out.set_zero();
  if (t.nnz() == 0) return;

  const HostStrategy strat = choose_host_strategy(t, mode, opt);
  ThreadPool& pool = ThreadPool::global();
  const std::size_t threads = effective_threads(opt);
  const nnz_t n = t.nnz();

  std::optional<obs::MetricsRegistry::ScopedSpan> span;
  if (opt.metrics != nullptr) {
    opt.metrics->count("host/calls");
    opt.metrics->count("host/nnz", n);
    opt.metrics->count(std::string("host/strategy/") +
                       host_strategy_name(strat));
    span.emplace(*opt.metrics, "host/mttkrp");
  }

  switch (strat) {
    case HostStrategy::Auto:  // unreachable: choose resolves Auto
    case HostStrategy::Serial:
      mttkrp_span_range(t, factors, mode, out);
      return;

    case HostStrategy::SliceOwner: {
      // Auto already probed contiguity (or the caller vouched via
      // features); only an explicitly forced SliceOwner needs the check.
      if (opt.strategy == HostStrategy::SliceOwner) {
        SF_CHECK(t.slices_contiguous(mode),
                 "SliceOwner requires contiguous slices (mode-grouped input)");
      }
      const auto cuts = slice_chunks(t, mode, threads);
      const std::size_t n_chunks = cuts.size() - 1;
      // Each chunk owns the output rows of its slice range: chunks are
      // race-free against each other, no atomics, no reduction.
      pool.parallel_for(0, n_chunks, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) {
          mttkrp_span_range(t.subspan(cuts[c], cuts[c + 1]), factors, mode,
                            out);
        }
      });
      return;
    }

    case HostStrategy::PrivateReduce: {
      const std::size_t parts = std::min<std::size_t>(
          threads, std::max<nnz_t>(1, n / std::max<nnz_t>(opt.grain_nnz, 1)));
      if (parts <= 1) {
        mttkrp_span_range(t, factors, mode, out);
        return;
      }
      // Privatized accumulation: an even nnz split into per-part
      // buffers (any entry order, any skew), then a parallel reduction
      // over disjoint output-row ranges.
      std::vector<DenseMatrix> priv(parts);
      const nnz_t per = (n + parts - 1) / parts;
      pool.parallel_for(0, parts, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) {
          const nnz_t b = c * per;
          const nnz_t e = std::min<nnz_t>(n, b + per);
          if (b >= e) continue;
          priv[c] = DenseMatrix(out.rows(), rank);
          mttkrp_span_range(t.subspan(b, e), factors, mode, priv[c]);
        }
      });
      const std::size_t rows = out.rows();
      pool.parallel_for(
          0, rows,
          [&](std::size_t lo, std::size_t hi) {
            for (std::size_t p = 0; p < parts; ++p) {
              if (priv[p].rows() == 0) continue;  // empty tail part
              for (std::size_t i = lo; i < hi; ++i) {
                const value_t* prow = priv[p].row(static_cast<index_t>(i));
                value_t* orow = out.row(static_cast<index_t>(i));
                for (index_t f = 0; f < rank; ++f) orow[f] += prow[f];
              }
            }
          },
          /*grain=*/64);
      return;
    }
  }
}

DenseMatrix mttkrp_coo_par(const CooSpan& t, const FactorList& factors,
                           order_t mode, const HostExecParams& opt) {
  DenseMatrix out(t.dim(mode), factors.at(0).cols());
  mttkrp_coo_par(t, factors, mode, out, /*accumulate=*/false, opt);
  return out;
}

void mttkrp_csf_par(const CsfTensor& t, const FactorList& factors,
                    DenseMatrix& out, bool accumulate,
                    const HostExecParams& opt) {
  SF_CHECK(factors.size() == t.order(), "one factor per mode");
  const index_t rank = factors[0].cols();
  const order_t root_mode = t.mode_order()[0];
  SF_CHECK(out.rows() == t.dims()[root_mode] && out.cols() == rank,
           "output shape must be dims[root] × F");
  if (!accumulate) out.set_zero();
  if (t.nnz() == 0) return;

  const std::size_t threads = effective_threads(opt);
  const nnz_t slices = t.num_nodes(0);
  if (threads <= 1 || t.nnz() < opt.grain_nnz || slices <= 1 ||
      opt.strategy == HostStrategy::Serial) {
    mttkrp_csf_range(t, factors, 0, slices, out);
    return;
  }

  // Leaf offset of root slice s: follow first-child pointers down the
  // tree. Monotone in s, so nnz-balanced cuts fall out of one sweep.
  auto leaf_begin = [&](nnz_t s) {
    nnz_t o = s;
    for (order_t l = 0; l + 1 < t.order(); ++l) o = t.fptr(l)[o];
    return o;
  };
  std::vector<nnz_t> cuts{0};
  const nnz_t target = (t.nnz() + threads - 1) / threads;
  nnz_t goal = target;
  for (nnz_t s = 1; s < slices; ++s) {
    const nnz_t off = leaf_begin(s);
    if (off >= goal) {
      cuts.push_back(s);
      goal = off + target;
    }
  }
  cuts.push_back(slices);

  // Root slices own disjoint output rows → chunks are race-free.
  ThreadPool& pool = ThreadPool::global();
  const std::size_t n_chunks = cuts.size() - 1;
  pool.parallel_for(0, n_chunks, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t c = lo; c < hi; ++c) {
      mttkrp_csf_range(t, factors, cuts[c], cuts[c + 1], out);
    }
  });
}

}  // namespace scalfrag
