#pragma once
// The parallel host execution engine. mttkrp_coo_ref defines
// correctness; this file makes the same computation run at host-memory
// speed: rank-tiled, pointer-hoisted inner loops over zero-copy CooSpan
// views (contiguous spans and ModeViews-style gather views alike),
// multithreaded on ThreadPool::global() with two partitioning schemes
// (Nisa et al.'s load-balanced slice ownership, and privatized
// accumulators with a reduction pass for unsorted/skewed inputs).
// Every kernel body in the repository — the ScalFrag segment kernel,
// the ParTI baseline, the hybrid CPU path, CPD-ALS's reference
// backend — routes through here.

#include "common/cpu_caps.hpp"
#include "obs/metrics.hpp"
#include "tensor/coo.hpp"
#include "tensor/csf.hpp"
#include "tensor/features.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {

/// How the non-zero range is split across threads.
enum class HostStrategy {
  /// Pick per call: Serial below grain_nnz; SliceOwner when the mode's
  /// index array is non-decreasing and no slice dominates; else
  /// PrivateReduce.
  Auto,
  /// Single-threaded pointer-hoisted kernel (the testing baseline —
  /// same summation order as mttkrp_coo_ref; only FMA contraction in
  /// the fused inner loops can move the last bits).
  Serial,
  /// Cut the range on slice boundaries; each thread owns the output
  /// rows of its chunk, so no atomics and no reduction pass. Requires
  /// slices_contiguous(mode).
  SliceOwner,
  /// Even nnz split into per-thread private output buffers, followed
  /// by a parallel tree reduction over output rows. Works for any
  /// entry order; costs O(threads · mode_dim · rank) extra memory.
  PrivateReduce,
};

const char* host_strategy_name(HostStrategy s);

/// Knobs of the host engine. The defaults give the parallel fast path
/// on large inputs and the serial kernel on small ones.
///
/// This is the low-level engine parameter block. Application code
/// should build a `scalfrag::ExecConfig` (src/scalfrag/exec_config.hpp)
/// and let the drivers derive the HostExecParams from it; the engine
/// entry points below stay on this struct because the tensor layer
/// cannot see the scalfrag layer.
struct HostExecParams {
  /// Worker-count cap; 0 = every worker of ThreadPool::global().
  std::size_t threads = 0;
  /// Ranges smaller than this run serially on the caller (dispatch
  /// overhead floor; also the grain handed to ThreadPool::parallel_for).
  nnz_t grain_nnz = 8192;
  HostStrategy strategy = HostStrategy::Auto;
  /// Optional precomputed features of the viewed tensor. When present,
  /// Auto's strategy choice is O(1): it reads max_nnz_per_slice instead
  /// of probing the index array. Setting this asserts the view is the
  /// mode-grouped (slice-contiguous) tensor the features were extracted
  /// from — the pipeline's fused segment features and the planner
  /// satisfy this by construction.
  const TensorFeatures* features = nullptr;
  /// Optional observability sink. When set, every engine call records
  /// its strategy dispatch, selected kernel ISA, nnz processed, and
  /// wall-clock span there (thread-safe; see src/obs/metrics.hpp).
  obs::MetricsRegistry* metrics = nullptr;
  /// Kernel ISA of the rank-tile microkernels (src/tensor/simd/). Auto
  /// picks the best table this build and CPU support, honoring
  /// $SCALFRAG_HOST_ISA; a concrete value forces that table and throws
  /// when it is unsupported. All tables produce bit-identical output,
  /// so this knob trades only speed, never results.
  HostIsa isa = HostIsa::Auto;
  /// Worker-to-core pinning applied to ThreadPool::global() before the
  /// parallel sections (idempotent, so per-call cost is a flag check).
  /// None leaves the current affinity untouched — it does NOT unpin.
  /// Pinning also fixes NUMA first-touch placement of the
  /// PrivateReduce private buffers, which are allocated and faulted
  /// inside the worker that fills them.
  PinPolicy pinning = PinPolicy::None;
};

/// Legacy name, kept as a thin shim for out-of-tree callers. In-tree
/// code must not use it (CI builds with -Werror=deprecated-declarations).
using HostExecOptions
    [[deprecated("use scalfrag::ExecConfig (docs/api.md); the low-level "
                 "engine block is HostExecParams")]] = HostExecParams;

/// check_factors against a span's shape (same contract as the
/// CooTensor overload in mttkrp_ref.hpp). Returns the common rank F.
index_t check_factors(const CooSpan& t, const FactorList& factors);

/// The strategy Auto would pick for this input (exposed for tests and
/// the docs' selection table).
HostStrategy choose_host_strategy(const CooSpan& t, order_t mode,
                                  const HostExecParams& opt = {});

/// Parallel mode-`mode` MTTKRP of the viewed range into `out` (shape
/// dims[mode] × F; zeroed first unless `accumulate`). Agrees with
/// mttkrp_coo_ref to FP tolerance — parallel strategies reassociate
/// the per-row sums, exactly like a GPU kernel would.
void mttkrp_coo_par(const CooSpan& t, const FactorList& factors, order_t mode,
                    DenseMatrix& out, bool accumulate = false,
                    const HostExecParams& opt = {});

/// Convenience wrapper allocating the output.
DenseMatrix mttkrp_coo_par(const CooSpan& t, const FactorList& factors,
                           order_t mode, const HostExecParams& opt = {});

/// CSF MTTKRP for the root mode, parallel over root slices (each root
/// node owns one output row, so chunks of slices are race-free).
void mttkrp_csf_par(const CsfTensor& t, const FactorList& factors,
                    DenseMatrix& out, bool accumulate = false,
                    const HostExecParams& opt = {});

}  // namespace scalfrag
