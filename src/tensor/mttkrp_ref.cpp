#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {

index_t check_factors(const CooTensor& t, const FactorList& factors) {
  SF_CHECK(factors.size() == t.order(),
           "need exactly one factor matrix per mode");
  const index_t rank = factors.empty() ? 0 : factors[0].cols();
  SF_CHECK(rank > 0, "factor rank must be positive");
  for (order_t m = 0; m < t.order(); ++m) {
    SF_CHECK(factors[m].rows() == t.dim(m),
             "factor row count must equal the mode size");
    SF_CHECK(factors[m].cols() == rank, "all factors must share rank F");
  }
  return rank;
}

void mttkrp_coo_ref(const CooTensor& t, const FactorList& factors,
                    order_t mode, DenseMatrix& out, bool accumulate) {
  const index_t rank = check_factors(t, factors);
  SF_CHECK(mode < t.order(), "mode out of range");
  SF_CHECK(out.rows() == t.dim(mode) && out.cols() == rank,
           "output shape must be dims[mode] × F");
  if (!accumulate) out.set_zero();

  std::vector<value_t> row(rank);
  for (nnz_t e = 0; e < t.nnz(); ++e) {
    const value_t val = t.value(e);
    for (index_t f = 0; f < rank; ++f) row[f] = val;
    for (order_t m = 0; m < t.order(); ++m) {
      if (m == mode) continue;
      const value_t* frow = factors[m].row(t.index(m, e));
      for (index_t f = 0; f < rank; ++f) row[f] *= frow[f];
    }
    value_t* orow = out.row(t.index(mode, e));
    for (index_t f = 0; f < rank; ++f) orow[f] += row[f];
  }
}

DenseMatrix mttkrp_coo_ref(const CooTensor& t, const FactorList& factors,
                           order_t mode) {
  DenseMatrix out(t.dim(mode), factors.at(0).cols());
  mttkrp_coo_ref(t, factors, mode, out);
  return out;
}

namespace {

/// Accumulate the subtree rooted at node range [begin, end) of `level`
/// into `acc` (rank-length). Each node multiplies its children's sum by
/// its own factor row.
void csf_subtree(const CsfTensor& t, const FactorList& factors,
                 order_t level, nnz_t node, index_t rank, value_t* acc,
                 std::vector<std::vector<value_t>>& scratch) {
  const order_t leaf = static_cast<order_t>(t.order() - 1);
  const order_t m = t.mode_order()[level];
  if (level == leaf) {
    const value_t* frow = factors[m].row(t.fids(level)[node]);
    const value_t val = t.values()[node];
    for (index_t f = 0; f < rank; ++f) acc[f] += val * frow[f];
    return;
  }
  value_t* child_acc = scratch[level].data();
  const nnz_t cb = t.fptr(level)[node];
  const nnz_t ce = t.fptr(level)[node + 1];
  for (nnz_t c = cb; c < ce; ++c) {
    std::fill(child_acc, child_acc + rank, value_t{0});
    csf_subtree(t, factors, static_cast<order_t>(level + 1), c, rank,
                child_acc, scratch);
    const order_t cm = t.mode_order()[level + 1];
    // Only multiply by the child's factor row when the child is an
    // internal node; leaf nodes already folded their factor in.
    if (level + 1 == leaf) {
      for (index_t f = 0; f < rank; ++f) acc[f] += child_acc[f];
    } else {
      const value_t* frow = factors[cm].row(t.fids(level + 1)[c]);
      for (index_t f = 0; f < rank; ++f) acc[f] += child_acc[f] * frow[f];
    }
  }
}

}  // namespace

void mttkrp_csf_range(const CsfTensor& t, const FactorList& factors,
                      nnz_t slice_begin, nnz_t slice_end, DenseMatrix& out) {
  const index_t rank = factors[0].cols();
  std::vector<std::vector<value_t>> scratch(t.order());
  for (auto& s : scratch) s.resize(rank);

  std::vector<value_t> acc(rank);
  for (nnz_t s = slice_begin; s < slice_end; ++s) {
    std::fill(acc.begin(), acc.end(), value_t{0});
    if (t.order() == 1) {
      // Degenerate: MTTKRP of a vector is the vector itself.
      const value_t val = t.values()[s];
      for (index_t f = 0; f < rank; ++f) acc[f] += val;
    } else {
      const nnz_t cb = t.fptr(0)[s];
      const nnz_t ce = t.fptr(0)[s + 1];
      const order_t leaf = static_cast<order_t>(t.order() - 1);
      for (nnz_t c = cb; c < ce; ++c) {
        auto& child_acc = scratch[0];
        std::fill(child_acc.begin(), child_acc.end(), value_t{0});
        csf_subtree(t, factors, 1, c, rank, child_acc.data(), scratch);
        if (1 == leaf) {
          for (index_t f = 0; f < rank; ++f) acc[f] += child_acc[f];
        } else {
          const order_t cm = t.mode_order()[1];
          const value_t* frow = factors[cm].row(t.fids(1)[c]);
          for (index_t f = 0; f < rank; ++f) acc[f] += child_acc[f] * frow[f];
        }
      }
    }
    value_t* orow = out.row(t.fids(0)[s]);
    for (index_t f = 0; f < rank; ++f) orow[f] += acc[f];
  }
}

void mttkrp_csf(const CsfTensor& t, const FactorList& factors,
                DenseMatrix& out, bool accumulate) {
  SF_CHECK(factors.size() == t.order(), "one factor per mode");
  const index_t rank = factors[0].cols();
  const order_t root_mode = t.mode_order()[0];
  SF_CHECK(out.rows() == t.dims()[root_mode] && out.cols() == rank,
           "output shape must be dims[root] × F");
  if (!accumulate) out.set_zero();
  if (t.nnz() == 0) return;
  mttkrp_csf_range(t, factors, 0, t.num_nodes(0), out);
}

std::uint64_t mttkrp_flops(const CooTensor& t, index_t rank) {
  return static_cast<std::uint64_t>(t.nnz()) * 2ull * rank *
         (t.order() > 1 ? t.order() - 1 : 1);
}

}  // namespace scalfrag
