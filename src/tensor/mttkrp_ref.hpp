#pragma once
// Reference MTTKRP implementations. These define correctness for every
// other backend in the repository (ParTI-style simulated kernel,
// ScalFrag's tiled kernel, the hybrid CPU path): all of them must agree
// with mttkrp_coo_ref to float tolerance.
//
// Mode-n MTTKRP (Eq. 4 of the paper):
//   M(i_n, f) = Σ_{x ∈ nnz}  val(x) · Π_{m ≠ n} A⁽ᵐ⁾(i_m(x), f)

#include <vector>

#include "tensor/coo.hpp"
#include "tensor/csf.hpp"
#include "tensor/dense_matrix.hpp"

namespace scalfrag {

/// Factor matrices, one per mode; factors[m] has shape dims[m] × F.
using FactorList = std::vector<DenseMatrix>;

/// Validate that `factors` matches the tensor's shape and share rank F.
/// Returns the common rank F.
index_t check_factors(const CooTensor& t, const FactorList& factors);

/// Naive sequential COO MTTKRP into `out` (must be dims[mode] × F; it is
/// zeroed first unless `accumulate` is true).
void mttkrp_coo_ref(const CooTensor& t, const FactorList& factors,
                    order_t mode, DenseMatrix& out, bool accumulate = false);

/// Convenience wrapper allocating the output.
DenseMatrix mttkrp_coo_ref(const CooTensor& t, const FactorList& factors,
                           order_t mode);

/// CSF MTTKRP for the CSF's root mode. Exploits fiber/slice reuse: each
/// level's factor row is applied once per node instead of once per nnz.
void mttkrp_csf(const CsfTensor& t, const FactorList& factors,
                DenseMatrix& out, bool accumulate = false);

/// Accumulate root slices [slice_begin, slice_end) of the CSF into
/// `out`. Root slices own disjoint output rows, which is what makes
/// this the race-free building block of the parallel engine
/// (mttkrp_csf_par chunks the root level across threads).
void mttkrp_csf_range(const CsfTensor& t, const FactorList& factors,
                      nnz_t slice_begin, nnz_t slice_end, DenseMatrix& out);

/// Flop count of one mode-n MTTKRP: each nnz does (order-1) fused
/// multiply-accumulate passes over F columns → 2·F·(order-1) flops per
/// nnz (the convention ParTI and the paper's GFlops plots use).
std::uint64_t mttkrp_flops(const CooTensor& t, index_t rank);

}  // namespace scalfrag
