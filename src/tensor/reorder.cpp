#include "tensor/reorder.hpp"

#include <algorithm>
#include <numeric>

namespace scalfrag {

std::vector<index_t> slice_order_by_nnz(const CooTensor& t, order_t mode) {
  SF_CHECK(mode < t.order(), "mode out of range");
  std::vector<nnz_t> counts(t.dim(mode), 0);
  for (nnz_t e = 0; e < t.nnz(); ++e) ++counts[t.index(mode, e)];

  std::vector<index_t> perm(t.dim(mode));
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::stable_sort(perm.begin(), perm.end(), [&](index_t a, index_t b) {
    return counts[a] > counts[b];
  });
  return perm;
}

std::vector<index_t> invert_permutation(const std::vector<index_t>& perm) {
  std::vector<index_t> inv(perm.size());
  std::vector<bool> seen(perm.size(), false);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    SF_CHECK(perm[i] < perm.size() && !seen[perm[i]],
             "perm must be a bijection");
    seen[perm[i]] = true;
    inv[perm[i]] = static_cast<index_t>(i);
  }
  return inv;
}

CooTensor relabel_mode(const CooTensor& t, order_t mode,
                       const std::vector<index_t>& perm) {
  SF_CHECK(mode < t.order(), "mode out of range");
  SF_CHECK(perm.size() == t.dim(mode), "perm size must equal mode size");
  const std::vector<index_t> inv = invert_permutation(perm);

  CooTensor out(t.dims());
  out.reserve(t.nnz());
  std::vector<index_t> coord(t.order());
  for (nnz_t e = 0; e < t.nnz(); ++e) {
    for (order_t m = 0; m < t.order(); ++m) coord[m] = t.index(m, e);
    coord[mode] = inv[coord[mode]];
    out.push(std::span<const index_t>(coord.data(), coord.size()),
             t.value(e));
  }
  out.sort_by_mode(mode);
  return out;
}

DenseMatrix permute_rows(const DenseMatrix& m,
                         const std::vector<index_t>& perm) {
  SF_CHECK(perm.size() == m.rows(), "perm size must equal row count");
  DenseMatrix out(m.rows(), m.cols());
  for (index_t i = 0; i < m.rows(); ++i) {
    SF_CHECK(perm[i] < m.rows(), "perm entry out of range");
    const value_t* src = m.row(perm[i]);
    value_t* dst = out.row(i);
    std::copy(src, src + m.cols(), dst);
  }
  return out;
}

double chunked_imbalance(const CooTensor& t, order_t mode, index_t chunk) {
  SF_CHECK(chunk > 0, "chunk must be positive");
  SF_CHECK(t.is_sorted_by_mode(mode), "imbalance needs mode-sorted input");
  if (t.nnz() == 0) return 1.0;

  std::vector<nnz_t> counts(t.dim(mode), 0);
  for (nnz_t e = 0; e < t.nnz(); ++e) ++counts[t.index(mode, e)];

  nnz_t max_group = 0;
  nnz_t groups = 0;
  for (index_t base = 0; base < t.dim(mode); base += chunk) {
    nnz_t group = 0;
    for (index_t i = base; i < std::min<index_t>(base + chunk, t.dim(mode));
         ++i) {
      group += counts[i];
    }
    max_group = std::max(max_group, group);
    ++groups;
  }
  const double mean =
      static_cast<double>(t.nnz()) / static_cast<double>(groups);
  return mean > 0 ? static_cast<double>(max_group) / mean : 1.0;
}

}  // namespace scalfrag
