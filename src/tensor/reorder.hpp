#pragma once
// Slice reordering for load balance — the optimization family BCSF
// (Nisa et al., IPDPS '19, paper §II-D: "mainly optimize the load
// imbalance issue of CSF") applies before kernel launch.
//
// Sorting mode-n slices by descending non-zero count makes the heavy
// slices contiguous, which (a) lets the segmenter pack them evenly and
// (b) groups similar-length slices into the same thread blocks,
// shrinking warp divergence. Relabeling is a bijection on the mode's
// index space; callers must permute the corresponding factor matrix /
// output rows with the same permutation to preserve semantics.

#include <vector>

#include "tensor/coo.hpp"
#include "tensor/dense_matrix.hpp"

namespace scalfrag {

/// Permutation `perm` with perm[new_index] = old_index, ordering
/// mode-`mode` slices by descending nnz (empty slices last, ties by
/// original index for determinism).
std::vector<index_t> slice_order_by_nnz(const CooTensor& t, order_t mode);

/// Relabel mode-`mode` indices: entry with old index perm[i] gets new
/// index i. Returns the relabeled tensor sorted by `mode`.
CooTensor relabel_mode(const CooTensor& t, order_t mode,
                       const std::vector<index_t>& perm);

/// Apply the same relabeling to a row-indexed matrix (factor/output):
/// out.row(i) = in.row(perm[i]).
DenseMatrix permute_rows(const DenseMatrix& m,
                         const std::vector<index_t>& perm);

/// Inverse permutation (perm must be a bijection on [0, n)).
std::vector<index_t> invert_permutation(const std::vector<index_t>& perm);

/// Load-imbalance metric after blocking slices into `chunk` groups:
/// max-group-nnz / mean-group-nnz over consecutive chunks of `chunk`
/// slices (1.0 = perfectly balanced). Requires mode-sorted input.
double chunked_imbalance(const CooTensor& t, order_t mode, index_t chunk);

}  // namespace scalfrag
