// Runtime ISA dispatch: resolve a HostIsa request (Auto honors CPUID
// and $SCALFRAG_HOST_ISA via common/cpu_caps) to the one kernel table
// compiled for it. Resolution is a table lookup — after the first call
// the hot path costs one function-pointer indirection per span.

#include "common/error.hpp"
#include "tensor/simd/microkernels.hpp"

namespace scalfrag::simd {

namespace {

const KernelTable* table_or_null(HostIsa isa) {
  switch (isa) {
    case HostIsa::Scalar:
      return scalar_kernels();
    case HostIsa::Avx2:
      return avx2_kernels();
    case HostIsa::Avx512:
      return avx512_kernels();
    case HostIsa::Auto:
      break;
  }
  return nullptr;
}

}  // namespace

const KernelTable& kernels_for(HostIsa isa) {
  const HostIsa resolved = resolve_host_isa(isa);
  const KernelTable* table = table_or_null(resolved);
  // resolve_host_isa already rejects ISAs that are not compiled in
  // (host_isa_supported checks SCALFRAG_HAVE_*), so a null table here
  // is a dispatch-layer bug, not a user error.
  SF_CHECK(table != nullptr,
           std::string("no kernel table compiled for host ISA ") +
               host_isa_name(resolved));
  return *table;
}

}  // namespace scalfrag::simd
