#pragma once
// The one rank-tile kernel body, templated over a per-ISA Traits type.
//
// Each ISA translation unit (kernels_scalar.cpp / kernels_avx2.cpp /
// kernels_avx512.cpp) defines an internal-linkage Traits struct mapping
// the vector vocabulary below onto its intrinsics and instantiates
// make_table<Traits>() — so this exact code compiles three times, each
// under that TU's own -m<isa> flags, and the tables differ only in
// vector width. A Traits provides:
//
//   kLanes                    value_t lanes per vector (1 degenerates
//                             every loop below to the scalar kernel)
//   Vec, loadu/load/storeu/store/set1/add/mul
//                             float vector ops (load/store = aligned)
//   kHasMask (+ Mask, tail_mask, maskz_loadu, mask_storeu)
//                             masked tail support (AVX-512); without it
//                             tails run scalar — element-wise the same
//   kDLanes, DVec, dloadu/dstoreu/dset1/dadd/dmul, widen
//                             double vector ops for the widened-
//                             accumulator dense kernels
//
// BIT-IDENTITY INVARIANT: per output element, every path — full-width
// lanes, masked tail lanes, scalar tail, and the all-scalar table —
// performs the identical sequence of IEEE multiplies and adds. Keep it
// that way: no FMA intrinsics, no reassociation, and the TUs are built
// with -ffp-contract=off so the compiler cannot fuse what the vector
// code keeps separate. The conformance suite memcmps the tables.

#include <cstddef>
#include <type_traits>

#include "tensor/simd/microkernels.hpp"

namespace scalfrag::simd::body {

/// Entry addressing of a contiguous span: logical == physical.
struct IdentityMap {
  nnz_t operator()(nnz_t e) const noexcept { return e; }
};

/// Entry addressing of a gather view (ModeViews / hybrid GPU share).
struct GatherMap {
  const perm_t* perm;
  nnz_t operator()(nnz_t e) const noexcept { return perm[e]; }
};

/// Gather-path software prefetch distances, in entries. Factor rows are
/// fetched kPrefetchRows ahead; the index/value arrays (whose loads the
/// row-address computation depends on) twice as far, so the dependent
/// idx[k][perm[e]] load is itself a cache hit by the time the row
/// prefetch needs it.
inline constexpr nnz_t kPrefetchRows = 8;

// --- tile helpers over [0, n), n <= kRankTile ------------------------
// `acc`/`had` are the kTileAlign-aligned local scratch tiles: aligned
// full-width vector access is safe through the kRankTile slack even in
// a tail (lanes past n hold zero-seeded slack that is never stored
// back). Row pointers (`orow`, factor rows) are foreign memory: tails
// on them run masked or scalar, never past n.

template <typename T>
inline void tile_seed(value_t* acc, const value_t* orow, index_t n) {
  index_t f = 0;
  for (; f + T::kLanes <= n; f += T::kLanes) {
    T::store(acc + f, T::loadu(orow + f));
  }
  if constexpr (T::kHasMask) {
    if (f < n) {
      T::store(acc + f,
               T::maskz_loadu(T::tail_mask(static_cast<int>(n - f)),
                              orow + f));
    }
  } else {
    for (; f < n; ++f) acc[f] = orow[f];
  }
}

template <typename T>
inline void tile_store(value_t* orow, const value_t* acc, index_t n) {
  index_t f = 0;
  for (; f + T::kLanes <= n; f += T::kLanes) {
    T::storeu(orow + f, T::load(acc + f));
  }
  if constexpr (T::kHasMask) {
    if (f < n) {
      T::mask_storeu(orow + f, T::tail_mask(static_cast<int>(n - f)),
                     T::load(acc + f));
    }
  } else {
    for (; f < n; ++f) orow[f] = acc[f];
  }
}

/// acc[f] += val (the order-1 degenerate body).
template <typename T>
inline void tile_add_const(value_t* acc, value_t val, index_t n) {
  const typename T::Vec v = T::set1(val);
  index_t f = 0;
  for (; f + T::kLanes <= n; f += T::kLanes) {
    T::store(acc + f, T::add(T::load(acc + f), v));
  }
  for (; f < n; ++f) acc[f] = acc[f] + val;
}

/// acc[f] += val * r0[f].
template <typename T>
inline void tile_axpy(value_t* acc, value_t val, const value_t* r0,
                      index_t n) {
  const typename T::Vec v = T::set1(val);
  index_t f = 0;
  for (; f + T::kLanes <= n; f += T::kLanes) {
    T::store(acc + f,
             T::add(T::load(acc + f), T::mul(v, T::loadu(r0 + f))));
  }
  if constexpr (T::kHasMask) {
    if (f < n) {
      const auto m = T::tail_mask(static_cast<int>(n - f));
      T::store(acc + f,
               T::add(T::load(acc + f), T::mul(v, T::maskz_loadu(m, r0 + f))));
    }
  } else {
    for (; f < n; ++f) acc[f] = acc[f] + val * r0[f];
  }
}

/// acc[f] += (val * r0[f]) * r1[f] — left-associated like the scalar
/// reference.
template <typename T>
inline void tile_axpy2(value_t* acc, value_t val, const value_t* r0,
                       const value_t* r1, index_t n) {
  const typename T::Vec v = T::set1(val);
  index_t f = 0;
  for (; f + T::kLanes <= n; f += T::kLanes) {
    T::store(acc + f,
             T::add(T::load(acc + f),
                    T::mul(T::mul(v, T::loadu(r0 + f)), T::loadu(r1 + f))));
  }
  if constexpr (T::kHasMask) {
    if (f < n) {
      const auto m = T::tail_mask(static_cast<int>(n - f));
      T::store(acc + f,
               T::add(T::load(acc + f),
                      T::mul(T::mul(v, T::maskz_loadu(m, r0 + f)),
                             T::maskz_loadu(m, r1 + f))));
    }
  } else {
    for (; f < n; ++f) acc[f] = acc[f] + (val * r0[f]) * r1[f];
  }
}

/// had[f] = val * r0[f].
template <typename T>
inline void tile_scale(value_t* had, value_t val, const value_t* r0,
                       index_t n) {
  const typename T::Vec v = T::set1(val);
  index_t f = 0;
  for (; f + T::kLanes <= n; f += T::kLanes) {
    T::store(had + f, T::mul(v, T::loadu(r0 + f)));
  }
  if constexpr (T::kHasMask) {
    if (f < n) {
      const auto m = T::tail_mask(static_cast<int>(n - f));
      T::store(had + f, T::mul(v, T::maskz_loadu(m, r0 + f)));
    }
  } else {
    for (; f < n; ++f) had[f] = val * r0[f];
  }
}

/// had[f] *= rk[f].
template <typename T>
inline void tile_mul(value_t* had, const value_t* rk, index_t n) {
  index_t f = 0;
  for (; f + T::kLanes <= n; f += T::kLanes) {
    T::store(had + f, T::mul(T::load(had + f), T::loadu(rk + f)));
  }
  if constexpr (T::kHasMask) {
    if (f < n) {
      const auto m = T::tail_mask(static_cast<int>(n - f));
      T::store(had + f, T::mul(T::load(had + f), T::maskz_loadu(m, rk + f)));
    }
  } else {
    for (; f < n; ++f) had[f] = had[f] * rk[f];
  }
}

/// acc[f] += had[f] (both tiles local — full-width through the slack).
template <typename T>
inline void tile_accum(value_t* acc, const value_t* had, index_t n) {
  index_t f = 0;
  for (; f + T::kLanes <= n; f += T::kLanes) {
    T::store(acc + f, T::add(T::load(acc + f), T::load(had + f)));
  }
  for (; f < n; ++f) acc[f] = acc[f] + had[f];
}

/// acc[f] += sub[f] * rk[f] — folding a CSF child-subtree sum (`sub`, a
/// local tile) through the child's factor row (`rk`, foreign memory).
template <typename T>
inline void tile_mul_accum(value_t* acc, const value_t* sub,
                           const value_t* rk, index_t n) {
  index_t f = 0;
  for (; f + T::kLanes <= n; f += T::kLanes) {
    T::store(acc + f,
             T::add(T::load(acc + f), T::mul(T::load(sub + f), T::loadu(rk + f))));
  }
  if constexpr (T::kHasMask) {
    if (f < n) {
      const auto m = T::tail_mask(static_cast<int>(n - f));
      T::store(acc + f,
               T::add(T::load(acc + f),
                      T::mul(T::load(sub + f), T::maskz_loadu(m, rk + f))));
    }
  } else {
    for (; f < n; ++f) acc[f] = acc[f] + sub[f] * rk[f];
  }
}

/// Zero the whole tile including the slack past n, so later full-width
/// aligned loads of the tile read defined values.
inline void tile_zero(value_t* tile) {
  for (index_t f = 0; f < kRankTile; ++f) tile[f] = 0;
}

// --- the span kernel -------------------------------------------------

/// Rank-tiled kernel over the whole span, accumulating into `out`.
/// Index arrays and factor bases are hoisted to raw pointers once; per
/// rank tile, each *run* of entries sharing an output row accumulates
/// into the aligned stack tile seeded from the row and stored back once
/// — the per-column addition order is exactly the reference's (runs
/// degenerate to length 1 on ungrouped input, which reproduces the
/// naive kernel). NF = 0/1/2 are the fused low-order bodies; NF = -1 is
/// the general-order body with a Hadamard scratch tile. On gather views
/// the next entries' index words and factor rows are software-
/// prefetched (the permutation makes both access streams random).
template <typename T, int NF, typename Map>
void span_tiled(const CooSpan& t, const FactorList& factors, order_t mode,
                DenseMatrix& out, Map at) {
  constexpr bool kGather = std::is_same_v<Map, GatherMap>;
  const index_t rank = factors[mode].cols();
  const order_t order = t.order();
  const nnz_t n = t.nnz();
  const value_t* vals = t.value_base();
  const index_t* oidx = t.index_base(mode);

  const index_t* idx[kMaxOrder] = {};
  const value_t* fdata[kMaxOrder] = {};
  order_t nf = 0;
  for (order_t m = 0; m < order; ++m) {
    if (m == mode) continue;
    idx[nf] = t.index_base(m);
    fdata[nf] = factors[m].data();
    ++nf;
  }

  alignas(kTileAlign) value_t acc[kRankTile];
  alignas(kTileAlign) value_t had[kRankTile];  // general-order scratch
  for (index_t f0 = 0; f0 < rank; f0 += kRankTile) {
    const index_t tw = std::min<index_t>(kRankTile, rank - f0);
    nnz_t e = 0;
    while (e < n) {
      const index_t row = oidx[at(e)];
      value_t* orow = out.row(row) + f0;
      tile_seed<T>(acc, orow, tw);
      do {
        if constexpr (kGather) {
          const nnz_t pi = e + 2 * kPrefetchRows;
          if (pi < n) {
            const nnz_t qi = at(pi);
            __builtin_prefetch(vals + qi, 0, 1);
            __builtin_prefetch(oidx + qi, 0, 1);
            for (order_t k = 0; k < nf; ++k) {
              __builtin_prefetch(idx[k] + qi, 0, 1);
            }
          }
          const nnz_t pr = e + kPrefetchRows;
          if (pr < n) {
            const nnz_t q = at(pr);
            for (order_t k = 0; k < nf; ++k) {
              __builtin_prefetch(
                  fdata[k] + static_cast<std::size_t>(idx[k][q]) * rank + f0,
                  0, 1);
            }
          }
        }
        const nnz_t p = at(e);
        const value_t val = vals[p];
        if constexpr (NF == 0) {
          tile_add_const<T>(acc, val, tw);
        } else if constexpr (NF == 1) {
          tile_axpy<T>(acc, val,
                       fdata[0] + static_cast<std::size_t>(idx[0][p]) * rank +
                           f0,
                       tw);
        } else if constexpr (NF == 2) {
          tile_axpy2<T>(acc, val,
                        fdata[0] + static_cast<std::size_t>(idx[0][p]) * rank +
                            f0,
                        fdata[1] + static_cast<std::size_t>(idx[1][p]) * rank +
                            f0,
                        tw);
        } else {
          tile_scale<T>(had, val,
                        fdata[0] + static_cast<std::size_t>(idx[0][p]) * rank +
                            f0,
                        tw);
          for (order_t k = 1; k < nf; ++k) {
            tile_mul<T>(had,
                        fdata[k] + static_cast<std::size_t>(idx[k][p]) * rank +
                            f0,
                        tw);
          }
          tile_accum<T>(acc, had, tw);
        }
        ++e;
      } while (e < n && oidx[at(e)] == row);
      tile_store<T>(orow, acc, tw);
    }
  }
}

template <typename T, typename Map>
void span_dispatch(const CooSpan& t, const FactorList& factors, order_t mode,
                   DenseMatrix& out, Map at) {
  switch (t.order() - 1) {
    case 0:
      span_tiled<T, 0>(t, factors, mode, out, at);
      return;
    case 1:
      span_tiled<T, 1>(t, factors, mode, out, at);
      return;
    case 2:
      span_tiled<T, 2>(t, factors, mode, out, at);
      return;
    default:
      span_tiled<T, -1>(t, factors, mode, out, at);
      return;
  }
}

template <typename T>
void mttkrp_span_impl(const CooSpan& t, const FactorList& factors,
                      order_t mode, DenseMatrix& out) {
  if (t.nnz() == 0) return;
  if (t.is_gather()) {
    span_dispatch<T>(t, factors, mode, out, GatherMap{t.permutation()});
  } else {
    span_dispatch<T>(t, factors, mode, out, IdentityMap{});
  }
}

// --- CSF walkers -----------------------------------------------------

/// Hoisted raw pointers of one CsfTensor + the factor rows per tree
/// level, shared by both CSF kernel bodies. rank is the factor column
/// count; f0/tw select the current rank tile.
template <typename T>
struct CsfWalk {
  const index_t* fids[kMaxOrder] = {};
  const nnz_t* fptr[kMaxOrder] = {};
  const value_t* fdata[kMaxOrder] = {};  // factor data, indexed by LEVEL
  const value_t* vals = nullptr;
  std::size_t rank = 0;
  order_t order = 0;
  index_t f0 = 0, tw = 0;

  CsfWalk(const CsfTensor& t, const FactorList& factors) {
    order = t.order();
    rank = factors[t.mode_order()[0]].cols();
    vals = t.values().data();
    for (order_t l = 0; l < order; ++l) {
      fids[l] = t.fids(l).data();
      fdata[l] = factors[t.mode_order()[l]].data();
      if (l + 1 < order) fptr[l] = t.fptr(l).data();
    }
  }

  const value_t* row(order_t level, nnz_t node) const {
    return fdata[level] + static_cast<std::size_t>(fids[level][node]) * rank +
           f0;
  }

  /// Leaf-ordered accumulation of every leaf under (level, node) into
  /// acc, with the exact per-entry op order of span_tiled: NF==1 is
  /// tile_axpy, NF==2 tile_axpy2 (level-1 row then leaf row — CSF level
  /// order IS the span kernel's increasing-mode order), general order
  /// scales/muls through the had scratch. rows[] carries the ancestor
  /// factor-row pointers for levels 1..level.
  void leaf_ordered(order_t level, nnz_t node, const value_t** rows,
                    value_t* acc, value_t* had) const {
    const order_t leaf = static_cast<order_t>(order - 1);
    if (level == leaf) {
      const value_t val = vals[node];
      if (order == 1) {
        tile_add_const<T>(acc, val, tw);
        return;
      }
      const value_t* rl = row(leaf, node);
      if (order == 2) {
        tile_axpy<T>(acc, val, rl, tw);
        return;
      }
      if (order == 3) {
        tile_axpy2<T>(acc, val, rows[1], rl, tw);
        return;
      }
      tile_scale<T>(had, val, rows[1], tw);
      for (order_t l = 2; l < leaf; ++l) tile_mul<T>(had, rows[l], tw);
      tile_mul<T>(had, rl, tw);
      tile_accum<T>(acc, had, tw);
      return;
    }
    if (level > 0) rows[level] = row(level, node);
    for (nnz_t c = fptr[level][node]; c < fptr[level][node + 1]; ++c) {
      leaf_ordered(static_cast<order_t>(level + 1), c, rows, acc, had);
    }
  }

  /// Factored subtree sum: acc += Σ_children subtree(child) ⊙ child_row,
  /// SPLATT-style — each internal node's factor row is multiplied in
  /// once per node, not once per leaf. scratch holds one tile per level.
  void factored(order_t level, nnz_t node, value_t* acc,
                value_t (*scratch)[kRankTile]) const {
    const order_t leaf = static_cast<order_t>(order - 1);
    const nnz_t cb = fptr[level][node], ce = fptr[level][node + 1];
    if (level + 1 == leaf) {
      for (nnz_t c = cb; c < ce; ++c) {
        tile_axpy<T>(acc, vals[c], row(leaf, c), tw);
      }
      return;
    }
    value_t* child = scratch[level + 1];
    for (nnz_t c = cb; c < ce; ++c) {
      tile_zero(child);
      factored(static_cast<order_t>(level + 1), c, child, scratch);
      tile_mul_accum<T>(acc, child, row(static_cast<order_t>(level + 1), c),
                        tw);
    }
  }
};

template <typename T>
void csf_slices_leaf_impl(const CsfTensor& t, const FactorList& factors,
                          nnz_t slice_begin, nnz_t slice_end,
                          DenseMatrix& out) {
  if (slice_begin >= slice_end) return;
  CsfWalk<T> w(t, factors);
  const value_t* rows[kMaxOrder] = {};
  alignas(kTileAlign) value_t acc[kRankTile];
  alignas(kTileAlign) value_t had[kRankTile];
  const index_t rank = static_cast<index_t>(w.rank);
  for (index_t f0 = 0; f0 < rank; f0 += kRankTile) {
    w.f0 = f0;
    w.tw = std::min<index_t>(kRankTile, rank - f0);
    for (nnz_t s = slice_begin; s < slice_end; ++s) {
      value_t* orow = out.row(w.fids[0][s]) + f0;
      tile_seed<T>(acc, orow, w.tw);
      w.leaf_ordered(0, s, rows, acc, had);
      tile_store<T>(orow, acc, w.tw);
    }
  }
}

template <typename T>
void csf_fibers_factored_impl(const CsfTensor& t, const FactorList& factors,
                              nnz_t slice_begin, nnz_t slice_end,
                              nnz_t fiber_begin, nnz_t fiber_end,
                              DenseMatrix& out, bool node_rows) {
  if (slice_begin >= slice_end || fiber_begin >= fiber_end) return;
  CsfWalk<T> w(t, factors);
  alignas(kTileAlign) value_t acc[kRankTile];
  alignas(kTileAlign) value_t scratch[kMaxOrder][kRankTile];
  const index_t rank = static_cast<index_t>(w.rank);
  const order_t leaf = static_cast<order_t>(w.order - 1);
  for (index_t f0 = 0; f0 < rank; f0 += kRankTile) {
    w.f0 = f0;
    w.tw = std::min<index_t>(kRankTile, rank - f0);
    for (nnz_t s = slice_begin; s < slice_end; ++s) {
      const nnz_t cb = std::max<nnz_t>(w.fptr[0][s], fiber_begin);
      const nnz_t ce = std::min<nnz_t>(w.fptr[0][s + 1], fiber_end);
      if (cb >= ce) continue;
      value_t* orow =
          out.row(node_rows ? static_cast<index_t>(s - slice_begin)
                            : w.fids[0][s]) +
          f0;
      tile_seed<T>(acc, orow, w.tw);
      if (leaf == 1) {
        // Order 2: the root's children ARE the leaves.
        for (nnz_t c = cb; c < ce; ++c) {
          tile_axpy<T>(acc, w.vals[c], w.row(1, c), w.tw);
        }
      } else {
        value_t* sub = scratch[1];
        for (nnz_t c = cb; c < ce; ++c) {
          tile_zero(sub);
          w.factored(1, c, sub, scratch);
          tile_mul_accum<T>(acc, sub, w.row(1, c), w.tw);
        }
      }
      tile_store<T>(orow, acc, w.tw);
    }
  }
}

// --- flat-array kernels ----------------------------------------------

/// dst[i] += src[i] — the PrivateReduce row reduction.
template <typename T>
void rows_add_impl(value_t* dst, const value_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + T::kLanes <= n; i += T::kLanes) {
    T::storeu(dst + i, T::add(T::loadu(dst + i), T::loadu(src + i)));
  }
  for (; i < n; ++i) dst[i] = dst[i] + src[i];
}

/// acc[i] += a * b[i], double accumulators over float input — the
/// matmul_tn / gram rank-1 update.
template <typename T>
void axpy_widen_impl(double* acc, double a, const value_t* b, std::size_t n) {
  const typename T::DVec va = T::dset1(a);
  std::size_t i = 0;
  for (; i + T::kDLanes <= n; i += T::kDLanes) {
    T::dstoreu(acc + i, T::dadd(T::dloadu(acc + i), T::dmul(va, T::widen(b + i))));
  }
  for (; i < n; ++i) acc[i] = acc[i] + a * static_cast<double>(b[i]);
}

/// a[i] *= b[i] — hadamard_inplace.
template <typename T>
void mul_inplace_impl(value_t* a, const value_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + T::kLanes <= n; i += T::kLanes) {
    T::storeu(a + i, T::mul(T::loadu(a + i), T::loadu(b + i)));
  }
  for (; i < n; ++i) a[i] = a[i] * b[i];
}

template <typename T>
KernelTable make_table(HostIsa isa, const char* name) {
  KernelTable kt;
  kt.isa = isa;
  kt.name = name;
  kt.lanes = T::kLanes;
  kt.mttkrp_span = &mttkrp_span_impl<T>;
  kt.rows_add = &rows_add_impl<T>;
  kt.axpy_widen = &axpy_widen_impl<T>;
  kt.mul_inplace = &mul_inplace_impl<T>;
  kt.csf_slices_leaf = &csf_slices_leaf_impl<T>;
  kt.csf_fibers_factored = &csf_fibers_factored_impl<T>;
  return kt;
}

}  // namespace scalfrag::simd::body
