// AVX2 kernel table: 8 float lanes (4 double lanes), scalar tails.
// This TU alone is compiled with -mavx2 -ffp-contract=off (see
// src/CMakeLists.txt); when the toolchain lacks -mavx2 the table is
// absent and avx2_kernels() returns nullptr.

#include "tensor/simd/microkernels.hpp"

#if defined(SCALFRAG_HAVE_AVX2)

#include <immintrin.h>

#include "tensor/simd/kernel_body.hpp"

namespace scalfrag::simd {

namespace {

struct Avx2Traits {
  static constexpr int kLanes = 8;
  using Vec = __m256;
  static Vec loadu(const value_t* p) noexcept { return _mm256_loadu_ps(p); }
  static Vec load(const value_t* p) noexcept { return _mm256_load_ps(p); }
  static void storeu(value_t* p, Vec v) noexcept { _mm256_storeu_ps(p, v); }
  static void store(value_t* p, Vec v) noexcept { _mm256_store_ps(p, v); }
  static Vec set1(value_t x) noexcept { return _mm256_set1_ps(x); }
  static Vec add(Vec a, Vec b) noexcept { return _mm256_add_ps(a, b); }
  static Vec mul(Vec a, Vec b) noexcept { return _mm256_mul_ps(a, b); }
  static constexpr bool kHasMask = false;

  static constexpr int kDLanes = 4;
  using DVec = __m256d;
  static DVec dloadu(const double* p) noexcept { return _mm256_loadu_pd(p); }
  static void dstoreu(double* p, DVec v) noexcept { _mm256_storeu_pd(p, v); }
  static DVec dset1(double x) noexcept { return _mm256_set1_pd(x); }
  static DVec dadd(DVec a, DVec b) noexcept { return _mm256_add_pd(a, b); }
  static DVec dmul(DVec a, DVec b) noexcept { return _mm256_mul_pd(a, b); }
  static DVec widen(const value_t* p) noexcept {
    return _mm256_cvtps_pd(_mm_loadu_ps(p));
  }
};

}  // namespace

const KernelTable* avx2_kernels() {
  static const KernelTable table =
      body::make_table<Avx2Traits>(HostIsa::Avx2, "avx2");
  return &table;
}

}  // namespace scalfrag::simd

#else  // !SCALFRAG_HAVE_AVX2

namespace scalfrag::simd {
const KernelTable* avx2_kernels() { return nullptr; }
}  // namespace scalfrag::simd

#endif
