// AVX-512 kernel table: 16 float lanes (8 double lanes), masked tails —
// a non-multiple-of-16 rank tail runs as one maskz-load/mask-store
// vector op whose active lanes are element-wise identical to the scalar
// loop. This TU alone is compiled with -mavx512f -ffp-contract=off (see
// src/CMakeLists.txt); when the toolchain lacks -mavx512f the table is
// absent and avx512_kernels() returns nullptr.

#include "tensor/simd/microkernels.hpp"

#if defined(SCALFRAG_HAVE_AVX512)

#include <immintrin.h>

#include "tensor/simd/kernel_body.hpp"

namespace scalfrag::simd {

namespace {

struct Avx512Traits {
  static constexpr int kLanes = 16;
  using Vec = __m512;
  static Vec loadu(const value_t* p) noexcept { return _mm512_loadu_ps(p); }
  static Vec load(const value_t* p) noexcept { return _mm512_load_ps(p); }
  static void storeu(value_t* p, Vec v) noexcept { _mm512_storeu_ps(p, v); }
  static void store(value_t* p, Vec v) noexcept { _mm512_store_ps(p, v); }
  static Vec set1(value_t x) noexcept { return _mm512_set1_ps(x); }
  static Vec add(Vec a, Vec b) noexcept { return _mm512_add_ps(a, b); }
  static Vec mul(Vec a, Vec b) noexcept { return _mm512_mul_ps(a, b); }

  static constexpr bool kHasMask = true;
  using Mask = __mmask16;
  /// Low-n-lanes mask; n in [1, kLanes - 1] at every call site.
  static Mask tail_mask(int n) noexcept {
    return static_cast<Mask>((1u << n) - 1u);
  }
  static Vec maskz_loadu(Mask m, const value_t* p) noexcept {
    return _mm512_maskz_loadu_ps(m, p);
  }
  static void mask_storeu(value_t* p, Mask m, Vec v) noexcept {
    _mm512_mask_storeu_ps(p, m, v);
  }

  static constexpr int kDLanes = 8;
  using DVec = __m512d;
  static DVec dloadu(const double* p) noexcept { return _mm512_loadu_pd(p); }
  static void dstoreu(double* p, DVec v) noexcept { _mm512_storeu_pd(p, v); }
  static DVec dset1(double x) noexcept { return _mm512_set1_pd(x); }
  static DVec dadd(DVec a, DVec b) noexcept { return _mm512_add_pd(a, b); }
  static DVec dmul(DVec a, DVec b) noexcept { return _mm512_mul_pd(a, b); }
  static DVec widen(const value_t* p) noexcept {
    return _mm512_cvtps_pd(_mm256_loadu_ps(p));
  }
};

}  // namespace

const KernelTable* avx512_kernels() {
  static const KernelTable table =
      body::make_table<Avx512Traits>(HostIsa::Avx512, "avx512");
  return &table;
}

}  // namespace scalfrag::simd

#else  // !SCALFRAG_HAVE_AVX512

namespace scalfrag::simd {
const KernelTable* avx512_kernels() { return nullptr; }
}  // namespace scalfrag::simd

#endif
