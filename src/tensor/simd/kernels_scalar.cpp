// Guaranteed-portable kernel table: Traits with kLanes == 1 degenerate
// every loop in kernel_body.hpp to plain scalar code. This TU is built
// with -ffp-contract=off (and NO -m<isa> flags), so it runs on any CPU
// the build targets and is the bit-identity reference the vector tables
// are checked against.

#include "tensor/simd/kernel_body.hpp"

namespace scalfrag::simd {

namespace {

struct ScalarTraits {
  static constexpr int kLanes = 1;
  using Vec = value_t;
  static Vec loadu(const value_t* p) noexcept { return *p; }
  static Vec load(const value_t* p) noexcept { return *p; }
  static void storeu(value_t* p, Vec v) noexcept { *p = v; }
  static void store(value_t* p, Vec v) noexcept { *p = v; }
  static Vec set1(value_t x) noexcept { return x; }
  static Vec add(Vec a, Vec b) noexcept { return a + b; }
  static Vec mul(Vec a, Vec b) noexcept { return a * b; }
  static constexpr bool kHasMask = false;

  static constexpr int kDLanes = 1;
  using DVec = double;
  static DVec dloadu(const double* p) noexcept { return *p; }
  static void dstoreu(double* p, DVec v) noexcept { *p = v; }
  static DVec dset1(double x) noexcept { return x; }
  static DVec dadd(DVec a, DVec b) noexcept { return a + b; }
  static DVec dmul(DVec a, DVec b) noexcept { return a * b; }
  static DVec widen(const value_t* p) noexcept {
    return static_cast<double>(*p);
  }
};

}  // namespace

const KernelTable* scalar_kernels() {
  static const KernelTable table =
      body::make_table<ScalarTraits>(HostIsa::Scalar, "scalar");
  return &table;
}

}  // namespace scalfrag::simd
