#pragma once
// Explicit SIMD microkernels for the rank-tile inner loops of the host
// MTTKRP engine and the dense CPD-ALS hot spots (matmul_tn / gram /
// hadamard), with runtime ISA dispatch.
//
// Three kernel tables exist — scalar, AVX2, AVX-512 — each compiled in
// its own translation unit with its own ISA flags (-mavx2 / -mavx512f;
// see src/CMakeLists.txt), so the binary stays portable even when
// SCALFRAG_NATIVE_ARCH=OFF: only the table the running CPU supports is
// ever entered, selected once via CPUID (common/cpu_caps.hpp).
//
// Bit-identity contract: every table computes the exact same FP
// operation sequence per output element — full-width vector lanes are
// element-wise identical to the scalar loop, tails run masked (AVX-512)
// or scalar with the same multiply/add order, and all three TUs are
// compiled with -ffp-contract=off so no table fuses a multiply+add the
// others keep separate. The conformance table memcmps the three paths
// (tests: "coo_par/isa_*" rows; ranks 1/3/7/63/65 exercise the tails).

#include "common/cpu_caps.hpp"
#include "tensor/coo.hpp"
#include "tensor/csf.hpp"
#include "tensor/dense_matrix.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag::simd {

/// Rank-tile width of the host kernels: the accumulator tile lives in
/// registers/L1 (64 floats = 4 cache lines) while one output row's run
/// of entries streams through — the host-side mirror of the paper's
/// shared-memory factor staging. 64 divides or exceeds every rank the
/// drivers use, so the tail tile is rare.
inline constexpr index_t kRankTile = 64;

/// Lanes of the widest table (AVX-512, 16 floats); the scratch tiles
/// are aligned to one full vector of this width.
inline constexpr int kMaxLanes = 16;
inline constexpr std::size_t kTileAlign = kMaxLanes * sizeof(value_t);

static_assert(kRankTile % kMaxLanes == 0,
              "kRankTile must be a multiple of the widest vector width: "
              "every full tile then runs lane-exact with no tail, and the "
              "alignas(kTileAlign) scratch tiles stay vector-aligned");

/// One ISA's kernel set. All function pointers are non-null in a table
/// returned by kernels_for().
struct KernelTable {
  HostIsa isa = HostIsa::Scalar;
  const char* name = "scalar";
  /// value_t lanes per vector (1 / 8 / 16).
  int lanes = 1;

  /// Rank-tiled MTTKRP over the whole span (identity and gather views
  /// dispatched internally), accumulating into `out`. The serial
  /// kernel body of mttkrp_coo_par.
  void (*mttkrp_span)(const CooSpan& t, const FactorList& factors,
                      order_t mode, DenseMatrix& out) = nullptr;

  /// dst[i] += src[i] for i < n — the PrivateReduce row reduction.
  void (*rows_add)(value_t* dst, const value_t* src, std::size_t n) = nullptr;

  /// acc[i] += a * b[i] with double accumulators over float input — the
  /// matmul_tn/gram inner loop (k-major rank-1 update).
  void (*axpy_widen)(double* acc, double a, const value_t* b,
                     std::size_t n) = nullptr;

  /// a[i] *= b[i] — hadamard_inplace.
  void (*mul_inplace)(value_t* a, const value_t* b, std::size_t n) = nullptr;

  /// Leaf-ordered CSF walk over root slices [slice_begin, slice_end):
  /// every leaf under a slice is applied to the slice's accumulator tile
  /// with the exact per-entry op sequence of mttkrp_span on the same
  /// (mode-sorted) entries — this is the CSF-tiled serial body, and the
  /// basis of the csf_tiled/serial memcmp bit-identity conformance row.
  /// Accumulates into out.row(fids(0)[s]); any order >= 1.
  void (*csf_slices_leaf)(const CsfTensor& t, const FactorList& factors,
                          nnz_t slice_begin, nnz_t slice_end,
                          DenseMatrix& out) = nullptr;

  /// Fiber-factored CSF walk over root slices [slice_begin, slice_end)
  /// with each slice's child-fiber range clamped to
  /// [fiber_begin, fiber_end) — the sync-tiled / coop-tiled parallel
  /// body (subtree sums are folded through the fiber row, SPLATT-style,
  /// so a fiber's factor row is read once however many leaves it has).
  /// node_rows=false accumulates into out.row(fids(0)[s]) (slice-owner
  /// tiles); node_rows=true into out.row(s - slice_begin) (a private
  /// per-tile block, reduced by the caller). Requires order >= 2.
  void (*csf_fibers_factored)(const CsfTensor& t, const FactorList& factors,
                              nnz_t slice_begin, nnz_t slice_end,
                              nnz_t fiber_begin, nnz_t fiber_end,
                              DenseMatrix& out, bool node_rows) = nullptr;
};

/// Table for an ISA; HostIsa::Auto resolves through detect_host_isa()
/// (which honors $SCALFRAG_HOST_ISA). Throws scalfrag::Error when the
/// requested ISA is not supported by this build/CPU.
const KernelTable& kernels_for(HostIsa isa);

/// Per-TU tables; nullptr when the ISA was not compiled in. Prefer
/// kernels_for() — these exist for the dispatch layer and tests.
const KernelTable* scalar_kernels();
const KernelTable* avx2_kernels();
const KernelTable* avx512_kernels();

}  // namespace scalfrag::simd
