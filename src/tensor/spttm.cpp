#include "tensor/spttm.hpp"

#include <algorithm>

namespace scalfrag {

std::size_t SemiSparseTensor::bytes() const noexcept {
  std::size_t b = values.bytes();
  for (const auto& v : fiber_coords) b += v.size() * sizeof(index_t);
  return b;
}

value_t SemiSparseTensor::at(std::span<const index_t> coord) const {
  SF_CHECK(coord.size() == kept_modes.size() + 1, "coordinate arity");
  const index_t r = coord[mode];
  SF_CHECK(r < values.cols(), "rank coordinate out of range");

  // Fibers are sorted lexicographically in kept-mode order; binary
  // search for the fiber matching coord's retained coordinates.
  const auto key_less = [&](nnz_t f, std::span<const index_t> c) {
    for (std::size_t k = 0; k < kept_modes.size(); ++k) {
      const index_t fv = fiber_coords[k][f];
      const index_t cv = c[kept_modes[k]];
      if (fv != cv) return fv < cv;
    }
    return false;
  };
  nnz_t lo = 0, hi = num_fibers();
  while (lo < hi) {
    const nnz_t mid = lo + (hi - lo) / 2;
    if (key_less(mid, coord)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == num_fibers()) return value_t{0};
  for (std::size_t k = 0; k < kept_modes.size(); ++k) {
    if (fiber_coords[k][lo] != coord[kept_modes[k]]) return value_t{0};
  }
  return values(static_cast<index_t>(lo), r);
}

SemiSparseTensor spttm(const CooTensor& x, const DenseMatrix& u,
                       order_t mode) {
  SF_CHECK(mode < x.order(), "mode out of range");
  SF_CHECK(u.rows() == x.dim(mode), "U row count must match mode size");
  const index_t rank = u.cols();
  SF_CHECK(rank > 0, "U must have at least one column");

  // Sort so each mode-`mode` fiber (fixed non-mode coordinates) is a
  // contiguous run: non-mode keys first, `mode` last.
  CooTensor t = x;
  std::vector<order_t> keys;
  for (order_t m = 0; m < x.order(); ++m) {
    if (m != mode) keys.push_back(m);
  }
  keys.push_back(mode);
  t.sort_by_key_order(keys);

  SemiSparseTensor out;
  out.dims = x.dims();
  out.dims[mode] = rank;
  out.mode = mode;
  out.kept_modes.assign(keys.begin(), keys.end() - 1);
  out.fiber_coords.resize(out.kept_modes.size());

  // First pass: count fibers.
  nnz_t fibers = 0;
  for (nnz_t e = 0; e < t.nnz(); ++e) {
    bool new_fiber = e == 0;
    if (!new_fiber) {
      for (order_t m : out.kept_modes) {
        if (t.index(m, e) != t.index(m, e - 1)) {
          new_fiber = true;
          break;
        }
      }
    }
    fibers += new_fiber;
  }
  out.values = DenseMatrix(static_cast<index_t>(fibers), rank);
  for (auto& v : out.fiber_coords) v.reserve(fibers);

  // Second pass: accumulate Y(fiber, :) += val · U(i_mode, :).
  nnz_t fiber = 0;
  for (nnz_t e = 0; e < t.nnz(); ++e) {
    bool new_fiber = e == 0;
    if (!new_fiber) {
      for (order_t m : out.kept_modes) {
        if (t.index(m, e) != t.index(m, e - 1)) {
          new_fiber = true;
          break;
        }
      }
    }
    if (new_fiber) {
      if (e != 0) ++fiber;
      for (std::size_t k = 0; k < out.kept_modes.size(); ++k) {
        out.fiber_coords[k].push_back(t.index(out.kept_modes[k], e));
      }
    }
    const value_t val = t.value(e);
    const value_t* urow = u.row(t.index(mode, e));
    value_t* yrow = out.values.row(static_cast<index_t>(fiber));
    for (index_t r = 0; r < rank; ++r) yrow[r] += val * urow[r];
  }
  return out;
}

std::uint64_t spttm_flops(const CooTensor& x, index_t rank) {
  return static_cast<std::uint64_t>(x.nnz()) * 2ull * rank;
}

}  // namespace scalfrag
