#pragma once
// SpTTM — sparse tensor-times-matrix, the other core ParTI kernel the
// paper names (§V-A3: "ParTI supports a variety of tensor operations,
// including arithmetic operations, SpTTM, SpMTTKRP, SpCPD, ...") and
// the subject of Li et al. [20].
//
// Mode-n product of a sparse tensor X with a dense matrix U ∈ R^{In×R}:
//   Y(i1,…,r,…,iN) = Σ_{in} X(i1,…,in,…,iN) · U(in, r)
//
// The result is *semi-sparse*: sparse in every mode except n, dense
// (length R) along mode n. It is stored as the set of distinct mode-n
// fibers of X, each carrying a dense R-vector.

#include "tensor/coo.hpp"
#include "tensor/dense_matrix.hpp"

namespace scalfrag {

/// Semi-sparse result of an SpTTM: `fiber_coords` holds the (order-1)
/// retained coordinates of each fiber (mode-major layout matching the
/// source tensor's modes, with `mode` removed); row f of `values` is
/// that fiber's dense mode-n vector.
struct SemiSparseTensor {
  std::vector<index_t> dims;  // source dims with dims[mode] = R
  order_t mode = 0;
  std::vector<order_t> kept_modes;            // source modes, minus `mode`
  std::vector<std::vector<index_t>> fiber_coords;  // [kept][fiber]
  DenseMatrix values;                          // num_fibers × R

  nnz_t num_fibers() const noexcept { return values.rows(); }
  std::size_t bytes() const noexcept;

  /// Dense lookup: value at (full coordinate with coord[mode] = r).
  /// Missing fibers are zero. O(log fibers).
  value_t at(std::span<const index_t> coord) const;
};

/// Compute Y = X ×_mode U. `u` must be dims[mode] × R.
SemiSparseTensor spttm(const CooTensor& x, const DenseMatrix& u,
                       order_t mode);

/// Flop count: 2·R flops per non-zero.
std::uint64_t spttm_flops(const CooTensor& x, index_t rank);

}  // namespace scalfrag
