#include "tensor/stats.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/format.hpp"

namespace scalfrag {

SliceDistribution slice_distribution(const CooTensor& t, order_t mode) {
  SF_CHECK(mode < t.order(), "mode out of range");
  SliceDistribution d;
  d.mode = mode;

  std::vector<nnz_t> counts(t.dim(mode), 0);
  for (nnz_t e = 0; e < t.nnz(); ++e) ++counts[t.index(mode, e)];

  std::vector<nnz_t> occupied;
  occupied.reserve(counts.size());
  for (nnz_t c : counts) {
    if (c > 0) {
      occupied.push_back(c);
    } else {
      ++d.empty_slices;
    }
  }
  d.occupied_slices = occupied.size();
  if (occupied.empty()) return d;

  std::sort(occupied.begin(), occupied.end());
  const auto q = [&](double frac) {
    const auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(occupied.size() - 1));
    return occupied[idx];
  };
  d.min = occupied.front();
  d.p25 = q(0.25);
  d.median = q(0.50);
  d.p75 = q(0.75);
  d.p99 = q(0.99);
  d.max = occupied.back();
  d.mean = static_cast<double>(t.nnz()) /
           static_cast<double>(occupied.size());

  // Gini over the sorted (ascending) sizes:
  //   G = (2·Σ i·xᵢ) / (n·Σ xᵢ) − (n+1)/n,  i = 1..n.
  double weighted = 0.0, total = 0.0;
  for (std::size_t i = 0; i < occupied.size(); ++i) {
    weighted += static_cast<double>(i + 1) *
                static_cast<double>(occupied[i]);
    total += static_cast<double>(occupied[i]);
  }
  const double n = static_cast<double>(occupied.size());
  d.gini = total > 0 ? (2.0 * weighted) / (n * total) - (n + 1.0) / n : 0.0;

  // Top-1% share (at least one slice).
  const auto top = std::max<std::size_t>(
      1, static_cast<std::size_t>(0.01 * n));
  double top_sum = 0.0;
  for (std::size_t i = occupied.size() - top; i < occupied.size(); ++i) {
    top_sum += static_cast<double>(occupied[i]);
  }
  d.top1pct_share = total > 0 ? top_sum / total : 0.0;
  return d;
}

std::string stats_report(const CooTensor& t) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                "order %d, nnz %s, density %s, COO bytes %s\n",
                t.order(), human_count(t.nnz()).c_str(),
                fmt_density(t.density()).c_str(),
                human_bytes(t.bytes()).c_str());
  out += line;
  for (order_t m = 0; m < t.order(); ++m) {
    const SliceDistribution d = slice_distribution(t, m);
    std::snprintf(
        line, sizeof line,
        "mode %d: dim %u, %llu occupied / %llu empty slices\n", m, t.dim(m),
        static_cast<unsigned long long>(d.occupied_slices),
        static_cast<unsigned long long>(d.empty_slices));
    out += line;
    if (d.occupied_slices == 0) continue;
    std::snprintf(
        line, sizeof line,
        "        nnz/slice min %llu  p25 %llu  med %llu  p75 %llu  "
        "p99 %llu  max %llu  mean %.1f\n",
        static_cast<unsigned long long>(d.min),
        static_cast<unsigned long long>(d.p25),
        static_cast<unsigned long long>(d.median),
        static_cast<unsigned long long>(d.p75),
        static_cast<unsigned long long>(d.p99),
        static_cast<unsigned long long>(d.max), d.mean);
    out += line;
    std::snprintf(line, sizeof line,
                  "        gini %.3f  top-1%% slices hold %.1f%% of nnz\n",
                  d.gini, 100.0 * d.top1pct_share);
    out += line;
  }
  return out;
}

}  // namespace scalfrag
