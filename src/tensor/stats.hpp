#pragma once
// Extended sparsity statistics beyond the ML feature vector: slice-size
// distribution quantiles, Gini concentration, and per-mode reports.
// These feed the explorer/CLI diagnostics and give the synthetic
// generator's realism something quantitative to be judged against.

#include <array>
#include <string>

#include "tensor/coo.hpp"

namespace scalfrag {

struct SliceDistribution {
  order_t mode = 0;
  nnz_t occupied_slices = 0;
  nnz_t empty_slices = 0;

  // Distribution over *occupied* slices.
  nnz_t min = 0;
  nnz_t p25 = 0;
  nnz_t median = 0;
  nnz_t p75 = 0;
  nnz_t p99 = 0;
  nnz_t max = 0;
  double mean = 0.0;

  /// Gini coefficient of the slice-size distribution in [0, 1):
  /// 0 = perfectly even, →1 = a single slice holds everything. The
  /// paper's "sparsity distribution" in one number.
  double gini = 0.0;

  /// Share of all non-zeros held by the heaviest 1% of slices.
  double top1pct_share = 0.0;
};

/// Compute the mode-`mode` slice-size distribution (works on unsorted
/// input; one counting pass + one sort over slice counts).
SliceDistribution slice_distribution(const CooTensor& t, order_t mode);

/// Multi-line human-readable report covering every mode.
std::string stats_report(const CooTensor& t);

}  // namespace scalfrag
