#include "testing/corpus.hpp"

#include <algorithm>
#include <functional>
#include <map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/generator.hpp"

namespace scalfrag::testing {
namespace {

// Every generator receives the size multiplier m = 2^size_class, so
// size_class 0/1/2 scales mode sizes ~linearly and nnz ~quadratically.
using Generator = std::function<CooTensor(Rng&, index_t m)>;

value_t rand_value(Rng& rng) {
  // (0, 1] like generate_coo — strictly nonzero so an engine that drops
  // an entry always moves the output.
  return static_cast<value_t>(1.0 - rng.next_double());
}

void push_random(CooTensor& t, Rng& rng) {
  std::vector<index_t> c(t.order());
  for (order_t m = 0; m < t.order(); ++m) {
    c[m] = static_cast<index_t>(rng.next_below(t.dim(m)));
  }
  t.push(std::span<const index_t>(c.data(), c.size()), rand_value(rng));
}

CooTensor uniform_random(Rng& rng, std::vector<index_t> dims, nnz_t nnz) {
  CooTensor t(std::move(dims));
  t.reserve(nnz);
  for (nnz_t e = 0; e < nnz; ++e) push_random(t, rng);
  return t;
}

CooTensor shuffled(CooTensor t, Rng& rng) {
  const nnz_t n = t.nnz();
  std::vector<nnz_t> perm(n);
  for (nnz_t e = 0; e < n; ++e) perm[e] = e;
  for (nnz_t e = n; e > 1; --e) {
    std::swap(perm[e - 1], perm[rng.next_below(e)]);
  }
  CooTensor out(t.dims());
  out.reserve(n);
  std::vector<index_t> c(t.order());
  for (nnz_t e = 0; e < n; ++e) {
    for (order_t m = 0; m < t.order(); ++m) c[m] = t.index(m, perm[e]);
    out.push(std::span<const index_t>(c.data(), c.size()),
             t.value(perm[e]));
  }
  return out;
}

const std::vector<std::pair<std::string, Generator>>& registry() {
  static const std::vector<std::pair<std::string, Generator>> kArchetypes = {
      {"uniform",
       [](Rng& rng, index_t m) {
         return uniform_random(rng, {11 * m, 9 * m, 7 * m},
                               nnz_t{40} * m * m);
       }},
      {"empty",
       [](Rng&, index_t m) {
         return CooTensor({9 * m, 7 * m, 5 * m});
       }},
      {"single_nnz",
       [](Rng& rng, index_t m) {
         CooTensor t({8 * m, 7 * m, 6 * m});
         push_random(t, rng);
         return t;
       }},
      // One slice of mode 0 owns ~85% of all non-zeros: the
      // load-imbalance pattern SliceOwner must refuse and B-CSF splits.
      {"mega_slice",
       [](Rng& rng, index_t m) {
         CooTensor t({10 * m, 9 * m, 8 * m});
         const nnz_t n = nnz_t{48} * m * m;
         const auto heavy = static_cast<index_t>(rng.next_below(t.dim(0)));
         std::vector<index_t> c(3);
         for (nnz_t e = 0; e < n; ++e) {
           c[0] = rng.next_double() < 0.85
                      ? heavy
                      : static_cast<index_t>(rng.next_below(t.dim(0)));
           c[1] = static_cast<index_t>(rng.next_below(t.dim(1)));
           c[2] = static_cast<index_t>(rng.next_below(t.dim(2)));
           t.push(std::span<const index_t>(c.data(), c.size()),
                  rand_value(rng));
         }
         return t;
       }},
      // Mode sizes far above nnz — almost every slice is empty and
      // factor matrices dwarf the tensor.
      {"hypersparse",
       [](Rng& rng, index_t m) {
         return uniform_random(rng, {40000u * m, 15000u * m, 6000u * m},
                               nnz_t{40} * m);
       }},
      // Tiny dims so exact coordinate collisions are common; emitted
      // un-coalesced, so every path must accumulate duplicates.
      {"duplicates",
       [](Rng& rng, index_t m) {
         return uniform_random(rng, {5, 4, 3}, nnz_t{25} * m * m);
       }},
      // Power-law fiber lengths via the FROSTT-style skewed sampler.
      {"skewed_fibers",
       [](Rng& rng, index_t m) {
         GeneratorConfig cfg;
         cfg.dims = {30 * m, 24 * m, 16 * m};
         cfg.nnz = nnz_t{160} * m * m;
         cfg.skew = {1.0, 3.5, 2.5};
         cfg.seed = rng.next_u64();
         return generate_coo(cfg);
       }},
      // Singleton modes plus entries pinned at index 0 and dim−1 of the
      // one real mode (0-sized modes are rejected by CooTensor itself).
      {"boundary_dims",
       [](Rng& rng, index_t m) {
         CooTensor t({1, 13 * m, 1});
         t.push({0, 0, 0}, rand_value(rng));
         t.push({0, t.dim(1) - 1, 0}, rand_value(rng));
         for (nnz_t e = 0; e < nnz_t{10} * m; ++e) push_random(t, rng);
         return t;
       }},
      {"unsorted",
       [](Rng& rng, index_t m) {
         return shuffled(uniform_random(rng, {12 * m, 10 * m, 8 * m},
                                        nnz_t{45} * m * m),
                         rng);
       }},
      // Entries clustered around a few block bases — HiCOO's best case,
      // and dense-ish blocks for the shared-memory kernel model.
      {"block_clustered",
       [](Rng& rng, index_t m) {
         CooTensor t({32 * m, 32 * m, 32 * m});
         const int blocks = 4 + static_cast<int>(rng.next_below(4));
         std::vector<index_t> c(3);
         for (int b = 0; b < blocks; ++b) {
           std::vector<index_t> base(3);
           for (order_t mm = 0; mm < 3; ++mm) {
             base[mm] = static_cast<index_t>(rng.next_below(t.dim(mm) - 7));
           }
           for (nnz_t e = 0; e < nnz_t{12} * m * m; ++e) {
             for (order_t mm = 0; mm < 3; ++mm) {
               c[mm] = base[mm] + static_cast<index_t>(rng.next_below(8));
             }
             t.push(std::span<const index_t>(c.data(), c.size()),
                    rand_value(rng));
           }
         }
         return t;
       }},
      {"order2",
       [](Rng& rng, index_t m) {
         return uniform_random(rng, {19 * m, 23 * m}, nnz_t{60} * m * m);
       }},
      {"order4",
       [](Rng& rng, index_t m) {
         return uniform_random(rng, {9 * m, 8 * m, 7 * m, 6 * m},
                               nnz_t{50} * m * m);
       }},
  };
  return kArchetypes;
}

}  // namespace

const std::vector<std::string>& corpus_archetypes() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const auto& [name, gen] : registry()) names.push_back(name);
    return names;
  }();
  return kNames;
}

bool is_archetype(const std::string& name) {
  for (const auto& [n, gen] : registry()) {
    if (n == name) return true;
  }
  return false;
}

CooTensor make_archetype(const std::string& name, std::uint64_t seed,
                         int size_class) {
  SF_CHECK(size_class >= 0 && size_class <= 2, "size_class must be in [0, 2]");
  const auto m = static_cast<index_t>(1u << size_class);
  for (const auto& [n, gen] : registry()) {
    if (n == name) {
      // Fold the archetype name into the stream so equal seeds still
      // give independent tensors across archetypes.
      std::uint64_t h = 0xcbf29ce484222325ULL;
      for (char ch : name) h = (h ^ static_cast<unsigned char>(ch)) * 0x100000001b3ULL;
      Rng rng(seed ^ h);
      return gen(rng, m);
    }
  }
  throw Error("unknown corpus archetype: " + name);
}

}  // namespace scalfrag::testing
