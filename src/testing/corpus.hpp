#pragma once
// Seeded pathological-corpus generator for the conformance harness.
//
// Each archetype is a named sparsity pattern chosen to stress a
// structure the paper's feature extractor and kernels care about:
// empty inputs, a single mega-slice (the load-imbalance case B-CSF
// exists for), hypersparse mode sizes, duplicate coordinates, skewed
// fiber lengths, singleton/boundary dimensions, unsorted entry order,
// block-clustered locality (HiCOO's case), and low/high tensor orders.
// Generation is fully deterministic in (name, seed, size_class) via
// common/rng.hpp, so any fuzz failure replays from its seed alone.

#include <string>
#include <vector>

#include "tensor/coo.hpp"

namespace scalfrag::testing {

/// All registered archetype names, in a stable order.
const std::vector<std::string>& corpus_archetypes();

bool is_archetype(const std::string& name);

/// Deterministically generate one tensor of the named archetype.
/// `size_class` scales the instance: 0 = tiny (shrinker-friendly),
/// 1 = small (default fuzzing), 2 = medium (CI soak). Throws
/// scalfrag::Error for an unknown name or size_class outside [0, 2].
/// Tensors are emitted in generation order — NOT necessarily sorted or
/// coalesced; consumers that need mode-sorted input must sort a copy
/// (the differential checker does).
CooTensor make_archetype(const std::string& name, std::uint64_t seed,
                         int size_class = 1);

}  // namespace scalfrag::testing
