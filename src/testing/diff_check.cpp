#include "testing/diff_check.hpp"

#include <algorithm>
#include <cstring>

#include "common/rng.hpp"
#include "parti/parti_executor.hpp"
#include "scalfrag/backend_registry.hpp"
#include "scalfrag/multi_pipeline.hpp"
#include "scalfrag/pipeline.hpp"
#include "tensor/bcsf.hpp"
#include "tensor/csf_tiled.hpp"
#include "tensor/fcoo.hpp"
#include "tensor/hicoo.hpp"
#include "tensor/mode_views.hpp"
#include "tensor/mttkrp_par.hpp"

namespace scalfrag::testing {
namespace {

DenseMatrix run_host_engine(const CooSpan& t, const FactorList& f,
                            order_t mode, HostStrategy strategy,
                            std::size_t threads) {
  HostExecParams opt;
  opt.strategy = strategy;
  opt.threads = threads;
  opt.grain_nnz = 1;  // fuzz tensors are small; force the parallel paths
  return mttkrp_coo_par(t, f, mode, opt);
}

DenseMatrix run_pipeline(const CooSpan& t, const FactorList& f, order_t mode,
                         int segments, int streams, nnz_t hybrid_threshold,
                         HostStrategy strategy = HostStrategy::Auto,
                         bool use_shared_mem = true,
                         bool schedule_from_plan = false) {
  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  ExecConfig opt = ExecConfig{}
                       .segments(segments)
                       .streams(streams)
                       .shared_mem(use_shared_mem)
                       .hybrid_threshold(hybrid_threshold)
                       .strategy(strategy)
                       .grain(64);
  if (schedule_from_plan) {
    // Size the explicit schedule the way real callers must: from the
    // realized plan of the GPU share (slice snapping can realize fewer
    // segments than requested), mirroring the executor's sequencing.
    SF_CHECK(segments > 0, "scheduled paths need an explicit count");
    CooSpan gt = t;
    HybridPartition part;
    if (hybrid_threshold > 0) {
      part = partition_for_hybrid(t, mode, hybrid_threshold);
      if (!part.gpu_whole) gt = part.gpu_view(t);
    }
    const SegmentPlan plan = make_segments(gt, mode, segments);
    opt.launch_schedule.reserve(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
      // Alternate shapes so a misaligned schedule would actually change
      // the simulated launches (and any config-sensitive bug surfaces).
      opt.launch_schedule.push_back(
          gpusim::LaunchConfig{i % 2 == 0 ? 48u : 96u,
                               i % 2 == 0 ? 128u : 64u, 0});
    }
  }
  return scalfrag::run_pipeline(dev, t, f, mode, opt).output;
}

DenseMatrix run_multidev(const CooSpan& t, const FactorList& f, order_t mode,
                         int devices, int segments,
                         std::optional<gpusim::ReduceSchedule> sched = {}) {
  gpusim::DeviceGroup group(gpusim::DeviceSpec::rtx3090(), devices);
  ExecConfig cfg = ExecConfig{}
                       .devices(devices)
                       .segments(segments)
                       .streams(2)
                       .grain(64);
  if (sched) cfg.reduction(*sched);
  return run_multi_pipeline(group, t, f, mode, cfg).output;
}

/// Alternating 3090/3060 group: runs the full feature set (weighted
/// sharding + overlapped reduction + work stealing) and cross-checks
/// the result BIT-FOR-BIT against the barrier/no-steal run on the same
/// group — overlap and stealing are scheduling-only by contract, so
/// any byte of difference is a fold-order bug tolerance would mask.
DenseMatrix run_multidev_hetero(const CooSpan& t, const FactorList& f,
                                order_t mode, int devices, int segments) {
  std::vector<gpusim::DeviceSpec> specs;
  specs.reserve(static_cast<std::size_t>(devices));
  for (int d = 0; d < devices; ++d) {
    specs.push_back(d % 2 == 0 ? gpusim::DeviceSpec::rtx3090()
                               : gpusim::DeviceSpec::rtx3060());
  }
  gpusim::DeviceGroup group(specs);
  const ExecConfig cfg = ExecConfig{}
                             .devices(devices)
                             .segments(segments)
                             .streams(2)
                             .grain(64);
  const DenseMatrix full = run_multi_pipeline(group, t, f, mode, cfg).output;
  const DenseMatrix barrier =
      run_multi_pipeline(group, t, f, mode,
                         ExecConfig(cfg).overlap_reduce(false).steal(false))
          .output;
  SF_CHECK(full.rows() == barrier.rows() && full.cols() == barrier.cols(),
           "hetero multidev output shape mismatch");
  SF_CHECK(std::memcmp(full.data(), barrier.data(),
                       full.size() * sizeof(value_t)) == 0,
           "overlapped/stealing heterogeneous run is not bit-identical "
           "to the barrier run");
  return full;
}

DenseMatrix run_csf_tiled(const CooTensor& t, const FactorList& f,
                          order_t mode, CsfTiledVariant variant,
                          std::size_t threads, nnz_t fiber_budget) {
  const CsfTensor csf = CsfTensor::build(t, mode);
  DenseMatrix out(t.dim(mode), f[0].cols());
  CsfTiledOptions opt;
  opt.variant = variant;
  opt.fiber_budget = fiber_budget;  // tiny so fuzz tensors multi-tile
  opt.host.threads = threads;
  opt.host.grain_nnz = 1;  // keep the tiled schedules live at fuzz sizes
  mttkrp_csf_tiled(csf, f, out, /*accumulate=*/false, opt);
  return out;
}

/// True when the (sorted) tensor holds two entries with identical
/// coordinates in every mode. The CSF-serial / COO-serial bit-identity
/// contract only covers duplicate-free inputs.
bool has_duplicate_coords(const CooTensor& t) {
  for (nnz_t e = 1; e < t.nnz(); ++e) {
    bool same = true;
    for (order_t m = 0; m < t.order() && same; ++m) {
      same = t.index(m, e) == t.index(m, e - 1);
    }
    if (same) return true;
  }
  return false;
}

/// Threshold one above the mean slice size — a skewed tensor then
/// always has both CPU and GPU shares.
nnz_t mixed_hybrid_threshold(const CooTensor& t, order_t mode) {
  const TensorFeatures feat = TensorFeatures::extract(t, mode);
  return static_cast<nnz_t>(feat.avg_nnz_per_slice) + 1;
}

/// Runs `exec` on a ModeViews gather view of `t`, cross-checks the
/// result BIT-FOR-BIT against the same path on the materialized copy of
/// that view (same logical order, so any difference is a
/// gather-addressing bug — FP tolerance would mask it), and returns the
/// view-side result for the usual oracle comparison.
template <typename Exec>
DenseMatrix run_on_views(const CooTensor& t, order_t mode, Exec exec) {
  const ModeViews views(t);
  const CooSpan view = views.view(mode);
  const DenseMatrix got = exec(view);

  const CooTensor dense = view.materialize();
  CooSpan flat(dense);
  flat.assume_sorted_by(mode);
  const DenseMatrix want = exec(flat);
  SF_CHECK(got.rows() == want.rows() && got.cols() == want.cols(),
           "view/materialized output shape mismatch");
  SF_CHECK(std::memcmp(got.data(), want.data(),
                       got.size() * sizeof(value_t)) == 0,
           "permutation-view result is not bit-identical to the "
           "materialized-copy run");
  return got;
}

const std::vector<ExecPath>& build_table() {
  static const std::vector<ExecPath> kPaths = [] {
    std::vector<ExecPath> paths;
    auto add = [&](std::string name, decltype(ExecPath::run) run,
                   decltype(ExecPath::supports) supports = nullptr) {
      paths.push_back({std::move(name), std::move(run), std::move(supports)});
    };

    add("coo_ref", [](const CooTensor& t, const FactorList& f, order_t mode) {
      return mttkrp_coo_ref(t, f, mode);
    });

    // Host engine: every strategy × {1, 2, 4} worker caps.
    add("coo_par/serial",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_host_engine(t, f, mode, HostStrategy::Serial, 1);
        });
    add("coo_par/auto", [](const CooTensor& t, const FactorList& f,
                           order_t mode) {
      return run_host_engine(t, f, mode, HostStrategy::Auto, 0);
    });
    for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
      add("coo_par/slice_owner/t" + std::to_string(threads),
          [threads](const CooTensor& t, const FactorList& f, order_t mode) {
            return run_host_engine(t, f, mode, HostStrategy::SliceOwner,
                                   threads);
          });
      add("coo_par/private_reduce/t" + std::to_string(threads),
          [threads](const CooTensor& t, const FactorList& f, order_t mode) {
            return run_host_engine(t, f, mode, HostStrategy::PrivateReduce,
                                   threads);
          });
    }

    // SIMD kernel tables (src/tensor/simd/): each ISA forced explicitly
    // under the Serial strategy, so the only varying piece is the
    // vector table itself; supports() skips ISAs this build/CPU lacks.
    for (HostIsa isa : {HostIsa::Scalar, HostIsa::Avx2, HostIsa::Avx512}) {
      add(std::string("coo_par/isa_") + host_isa_name(isa),
          [isa](const CooTensor& t, const FactorList& f, order_t mode) {
            HostExecParams opt;
            opt.strategy = HostStrategy::Serial;
            opt.grain_nnz = 1;
            opt.isa = isa;
            return mttkrp_coo_par(t, f, mode, opt);
          },
          [isa](const CooTensor&, order_t) {
            return host_isa_supported(isa);
          });
    }
    // The bit-identity contract itself: every supported vector table
    // must memcmp-equal the scalar table, on the contiguous span AND on
    // a gather view (the masked/prefetched path). FP tolerance would
    // mask a lane-order bug, so this is exact.
    add("coo_par/isa_bit_identical",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          auto run_isa = [&](const CooSpan& v, HostIsa isa) {
            HostExecParams opt;
            opt.strategy = HostStrategy::Serial;
            opt.grain_nnz = 1;
            opt.isa = isa;
            return mttkrp_coo_par(v, f, mode, opt);
          };
          CooSpan flat(t);
          flat.assume_sorted_by(mode);
          const ModeViews views(t);
          const CooSpan gather = views.view(mode);
          const DenseMatrix want_flat = run_isa(flat, HostIsa::Scalar);
          const DenseMatrix want_gather = run_isa(gather, HostIsa::Scalar);
          for (HostIsa isa : {HostIsa::Avx2, HostIsa::Avx512}) {
            if (!host_isa_supported(isa)) continue;
            const DenseMatrix got_flat = run_isa(flat, isa);
            SF_CHECK(std::memcmp(got_flat.data(), want_flat.data(),
                                 want_flat.size() * sizeof(value_t)) == 0,
                     std::string(host_isa_name(isa)) +
                         " is not bit-identical to scalar on the "
                         "contiguous span");
            const DenseMatrix got_gather = run_isa(gather, isa);
            SF_CHECK(std::memcmp(got_gather.data(), want_gather.data(),
                                 want_gather.size() * sizeof(value_t)) == 0,
                     std::string(host_isa_name(isa)) +
                         " is not bit-identical to scalar on the "
                         "gather view");
          }
          return want_flat;
        });

    // Tree formats: plain CSF, the parallel CSF walker, and the
    // slice-split balanced variant.
    add("csf_ref", [](const CooTensor& t, const FactorList& f, order_t mode) {
      const CsfTensor csf = CsfTensor::build(t, mode);
      DenseMatrix out(t.dim(mode), f[0].cols());
      mttkrp_csf(csf, f, out);
      return out;
    });
    add("csf_par/t4",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          const CsfTensor csf = CsfTensor::build(t, mode);
          DenseMatrix out(t.dim(mode), f[0].cols());
          HostExecParams opt;
          opt.threads = 4;
          opt.grain_nnz = 1;
          mttkrp_csf_par(csf, f, out, /*accumulate=*/false, opt);
          return out;
        });
    // The CSF tiled backend: every schedule against the oracle, the
    // serial fallback additionally against the COO serial kernel
    // BIT-FOR-BIT on duplicate-free inputs (CSF leaves enumerate the
    // entries in exactly the sorted COO order and both paths route
    // through the same rank-tile microkernels, so any difference is a
    // walk-order or seed/store bug that FP tolerance would mask).
    add("csf_tiled/serial",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          const DenseMatrix got =
              run_csf_tiled(t, f, mode, CsfTiledVariant::Serial, 1, 0);
          if (!has_duplicate_coords(t)) {
            const DenseMatrix want =
                run_host_engine(t, f, mode, HostStrategy::Serial, 1);
            SF_CHECK(got.rows() == want.rows() && got.cols() == want.cols(),
                     "csf_tiled/serial output shape mismatch");
            SF_CHECK(std::memcmp(got.data(), want.data(),
                                 got.size() * sizeof(value_t)) == 0,
                     "CSF-tiled serial walk is not bit-identical to the "
                     "COO serial kernel on a duplicate-free input");
          }
          return got;
        });
    add("csf_tiled/sync/t4",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_csf_tiled(t, f, mode, CsfTiledVariant::Sync, 4, 3);
        });
    add("csf_tiled/coop/t4",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_csf_tiled(t, f, mode, CsfTiledVariant::Coop, 4, 3);
        });
    // CSF built from a ModeViews gather span must match the build from
    // the materialized copy bit-for-bit (run_on_views asserts it).
    add("csf_tiled/views",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_on_views(t, mode, [&](const CooSpan& v) {
            const CsfTensor csf = CsfTensor::build(v, mode);
            DenseMatrix out(t.dim(mode), f[0].cols());
            CsfTiledOptions opt;
            opt.fiber_budget = 3;
            opt.host.threads = 4;
            opt.host.grain_nnz = 1;
            mttkrp_csf_tiled(csf, f, out, /*accumulate=*/false, opt);
            return out;
          });
        });
    // The out-of-core streaming backend under a deliberately tiny
    // budget, so fuzz-sized tensors actually window, spill, and chunk.
    // Slice-aligned chunks + elementwise combine preserve every bit, so
    // on duplicate-free inputs the result must memcmp-equal the in-core
    // "coo" backend under the same Serial strategy (PrivateReduce would
    // reassociate the per-row sums; FP tolerance would mask a chunk
    // boundary bug).
    add("backend/coo_stream",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          ExecConfig cfg = ExecConfig{}
                               .segments(2)
                               .streams(2)
                               .strategy(HostStrategy::Serial)
                               .grain(1)
                               .memory_budget(std::size_t{1} << 12);
          gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
          cfg.backend("coo_stream");
          const DenseMatrix got =
              run_mttkrp_backend(dev, t, f, mode, cfg).output;
          if (!has_duplicate_coords(t)) {
            gpusim::SimDevice dev2(gpusim::DeviceSpec::rtx3090());
            cfg.backend("coo");
            const DenseMatrix want =
                run_mttkrp_backend(dev2, t, f, mode, cfg).output;
            SF_CHECK(got.rows() == want.rows() && got.cols() == want.cols(),
                     "coo_stream output shape mismatch");
            SF_CHECK(std::memcmp(got.data(), want.data(),
                                 got.size() * sizeof(value_t)) == 0,
                     "out-of-core streaming result is not bit-identical "
                     "to the in-core coo backend on a duplicate-free "
                     "input");
          }
          return got;
        });

    // The joint (format, launch) auto dispatch end to end: whatever
    // backend the selector picks must still match the oracle.
    add("backend/auto_joint",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
          const ExecConfig cfg = ExecConfig{}.backend("auto").grain(1);
          return run_mttkrp_backend(dev, t, f, mode, cfg).output;
        });

    add("bcsf", [](const CooTensor& t, const FactorList& f, order_t mode) {
      // Cap low enough that fuzz-sized mega-slices actually split.
      const nnz_t cap = std::max<nnz_t>(2, t.nnz() / 7);
      const BcsfTensor bcsf = BcsfTensor::build(t, mode, cap);
      DenseMatrix out(t.dim(mode), f[0].cols());
      bcsf.mttkrp(f, out);
      return out;
    });

    // Blocked / flagged coordinate formats.
    add("hicoo", [](const CooTensor& t, const FactorList& f, order_t mode) {
      const HicooTensor h = HicooTensor::build(t, 4);
      DenseMatrix out(t.dim(mode), f[0].cols());
      h.mttkrp(f, mode, out);
      return out;
    });
    add("fcoo", [](const CooTensor& t, const FactorList& f, order_t mode) {
      // Small partitions so segments regularly straddle partitions.
      const FcooTensor fc = FcooTensor::build(t, mode, 7);
      DenseMatrix out(t.dim(mode), f[0].cols());
      fc.mttkrp(f, out);
      return out;
    });

    // The ParTI synchronous baseline on the simulated device.
    add("parti", [](const CooTensor& t, const FactorList& f, order_t mode) {
      gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
      return parti::run_mttkrp(dev, t, f, mode).output;
    });

    // The segmented pipeline across segment/stream shapes, including
    // the auto-segmentation rule.
    add("pipeline/auto",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_pipeline(t, f, mode, 0, 4, 0);
        });
    add("pipeline/s1x1",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_pipeline(t, f, mode, 1, 1, 0);
        });
    add("pipeline/s3x2",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_pipeline(t, f, mode, 3, 2, 0);
        });
    add("pipeline/s8x4/private_reduce",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_pipeline(t, f, mode, 8, 4, 0,
                              HostStrategy::PrivateReduce);
        });

    // The global-memory kernel variant (no shared-memory privatization)
    // and explicit per-segment launch schedules sized from the realized
    // plan — alone and combined with the hybrid split.
    add("pipeline/s4x2/noshmem",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_pipeline(t, f, mode, 4, 2, 0, HostStrategy::Auto,
                              /*use_shared_mem=*/false);
        });
    add("pipeline/s3x2/scheduled",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_pipeline(t, f, mode, 3, 2, 0, HostStrategy::Auto,
                              /*use_shared_mem=*/true,
                              /*schedule_from_plan=*/true);
        });
    // Budget-driven segmentation: the count comes from the device-memory
    // planner (exercises the mode/rank-aware accounting end to end).
    add("pipeline/budget",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          const index_t rank = f[0].cols();
          const std::size_t budget =
              pipeline_resident_bytes(t, mode, rank) + t.bytes() / 2 +
              2 * (t.order() * sizeof(index_t) + sizeof(value_t)) + 1;
          return run_pipeline(t, f, mode,
                              segments_for_budget(t, mode, rank, budget), 2,
                              0);
        });

    // CPU–GPU hybrid: mixed split and the all-CPU degenerate split.
    add("hybrid/mixed",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_pipeline(t, f, mode, 2, 2,
                              mixed_hybrid_threshold(t, mode));
        });
    add("hybrid/mixed/scheduled_noshmem",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_pipeline(t, f, mode, 2, 2,
                              mixed_hybrid_threshold(t, mode),
                              HostStrategy::Auto,
                              /*use_shared_mem=*/false,
                              /*schedule_from_plan=*/true);
        });
    add("hybrid/all_cpu",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_pipeline(t, f, mode, 1, 2, t.nnz() + 1);
        });

    // Permutation-view execution (ModeViews): the same engines fed a
    // single-sort gather view instead of a contiguous sorted copy.
    // Each row also asserts bit-identity against the materialized copy
    // of the view (see run_on_views) before the oracle comparison.
    add("views/host_engine",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_on_views(t, mode, [&](const CooSpan& v) {
            return run_host_engine(v, f, mode, HostStrategy::Auto, 0);
          });
        });
    add("views/pipeline/s3x2",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_on_views(t, mode, [&](const CooSpan& v) {
            return run_pipeline(v, f, mode, 3, 2, 0);
          });
        });
    add("views/hybrid/mixed",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          const nnz_t thr = mixed_hybrid_threshold(t, mode);
          return run_on_views(t, mode, [&](const CooSpan& v) {
            return run_pipeline(v, f, mode, 2, 2, thr);
          });
        });
    // The gather_limit fallback (per-mode materialized copies) forced
    // via gather_limit=0: the same engine fed the fallback view must be
    // bit-identical to the gather-view path — the two present the same
    // logical order, so any difference is a fallback indexing bug.
    add("views/materialized_fallback",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          const ModeViews fallback(t, nullptr, /*gather_limit=*/0);
          SF_CHECK(t.nnz() == 0 || t.order() == 1 || fallback.materialized(),
                   "gather_limit=0 must force the materialized fallback");
          const ModeViews gathered(t);
          auto exec = [&](const CooSpan& v) {
            return run_host_engine(v, f, mode, HostStrategy::Serial, 1);
          };
          const DenseMatrix got = exec(fallback.view(mode));
          const DenseMatrix want = exec(gathered.view(mode));
          SF_CHECK(got.rows() == want.rows() && got.cols() == want.cols(),
                   "fallback view output shape mismatch");
          SF_CHECK(std::memcmp(got.data(), want.data(),
                               got.size() * sizeof(value_t)) == 0,
                   "materialized-fallback view result is not "
                   "bit-identical to the gather-view result");
          return got;
        });
    add("views/multidev/d2",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_on_views(t, mode, [&](const CooSpan& v) {
            return run_multidev(v, f, mode, 2, 0);
          });
        });

    // Multi-device sharded pipelines: the realized segment plan is
    // partitioned across N simulated devices and the per-device
    // partials reduced — both collective schedules, plus the
    // auto-segmented shape.
    add("multidev/d2/auto",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_multidev(t, f, mode, 2, 0);
        });
    add("multidev/d3/tree",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_multidev(t, f, mode, 3, 5,
                              gpusim::ReduceSchedule::Tree);
        });
    add("multidev/d4/ring",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_multidev(t, f, mode, 4, 8,
                              gpusim::ReduceSchedule::Ring);
        });

    // Heterogeneous groups (alternating 3090/3060): weighted sharding,
    // overlapped reduction, and stealing all on, memcmp'd inside the
    // row against the barrier/no-steal run on the same group.
    add("multidev/hetero/d2",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_multidev_hetero(t, f, mode, 2, 0);
        });
    add("multidev/hetero/d4",
        [](const CooTensor& t, const FactorList& f, order_t mode) {
          return run_multidev_hetero(t, f, mode, 4, 8);
        });

    return paths;
  }();
  return kPaths;
}

CooTensor remove_entry_range(const CooTensor& t, nnz_t begin, nnz_t end) {
  CooTensor out(t.dims());
  out.reserve(t.nnz() - (end - begin));
  std::vector<index_t> c(t.order());
  for (nnz_t e = 0; e < t.nnz(); ++e) {
    if (e >= begin && e < end) continue;
    for (order_t m = 0; m < t.order(); ++m) c[m] = t.index(m, e);
    out.push(std::span<const index_t>(c.data(), c.size()), t.value(e));
  }
  return out;
}

}  // namespace

const std::vector<ExecPath>& conformance_paths() { return build_table(); }

FactorList conformance_factors(const CooTensor& t, index_t rank,
                               std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  f.reserve(t.order());
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

DiffReport check_all_paths(const CooTensor& t, order_t mode,
                           const DiffOptions& opt) {
  SF_CHECK(mode < t.order(), "mode out of range");
  SF_CHECK(opt.rank > 0, "rank must be positive");

  const FactorList factors =
      conformance_factors(t, opt.rank, opt.factor_seed);
  const OracleResult oracle = mttkrp_oracle(t, factors, mode);

  CooTensor sorted = t;
  sorted.sort_by_mode(mode);

  DiffReport rep;
  auto matches_filter = [&](const std::string& name) {
    return opt.path_filter.empty() ||
           name.find(opt.path_filter) != std::string::npos;
  };
  auto run_one = [&](const std::string& name, const CooTensor& input,
                     const decltype(ExecPath::run)& run) {
    Divergence div;
    div.path = name;
    try {
      const DenseMatrix out = run(input, factors, mode);
      const OracleDiff d =
          compare_to_oracle(oracle, out, t.order(), opt.tolerance);
      if (!d.diverged) {
        ++rep.paths_run;
        return false;
      }
      div.row = d.row;
      div.col = d.col;
      div.got = d.got;
      div.want = d.want;
      div.tol = d.tol;
    } catch (const std::exception& ex) {
      div.threw = true;
      div.message = ex.what();
    }
    ++rep.paths_run;
    rep.divergences.push_back(std::move(div));
    return true;
  };

  for (const ExecPath& p : conformance_paths()) {
    if (!matches_filter(p.name)) continue;
    if (p.supports && !p.supports(sorted, mode)) {
      ++rep.paths_skipped;
      continue;
    }
    if (run_one(p.name, sorted, p.run) && opt.stop_at_first) return rep;
  }

  // Order-independent paths additionally run on the raw entry order —
  // only meaningful when the input actually arrived unsorted.
  if (!t.is_sorted_by_mode(mode)) {
    if (matches_filter("coo_ref/raw_order")) {
      const bool failed = run_one(
          "coo_ref/raw_order", t,
          [](const CooTensor& rt, const FactorList& f, order_t m) {
            return mttkrp_coo_ref(rt, f, m);
          });
      if (failed && opt.stop_at_first) return rep;
    }
    if (matches_filter("coo_par/private_reduce/raw_order")) {
      const bool failed = run_one(
          "coo_par/private_reduce/raw_order", t,
          [](const CooTensor& rt, const FactorList& f, order_t m) {
            return run_host_engine(rt, f, m, HostStrategy::PrivateReduce, 4);
          });
      if (failed && opt.stop_at_first) return rep;
    }
  }
  return rep;
}

CooTensor shrink_tensor(const CooTensor& t,
                        const std::function<bool(const CooTensor&)>&
                            still_fails) {
  SF_CHECK(still_fails(t), "shrink_tensor requires a failing input");
  CooTensor cur = t;
  nnz_t chunk = std::max<nnz_t>(1, cur.nnz() / 2);
  for (;;) {
    bool removed = false;
    nnz_t pos = 0;
    while (pos < cur.nnz()) {
      const nnz_t end = std::min<nnz_t>(pos + chunk, cur.nnz());
      CooTensor cand = remove_entry_range(cur, pos, end);
      if (still_fails(cand)) {
        cur = std::move(cand);
        removed = true;
        // Re-test from the same position: the next chunk slid into it.
      } else {
        pos = end;
      }
    }
    if (chunk > 1) {
      chunk = std::max<nnz_t>(1, chunk / 2);
    } else if (!removed) {
      break;  // 1-minimal: no single entry can be removed
    }
  }
  return cur;
}

std::function<bool(const CooTensor&)> divergence_predicate(order_t mode,
                                                           DiffOptions opt) {
  opt.stop_at_first = true;
  return [mode, opt](const CooTensor& t) {
    return !check_all_paths(t, mode, opt).ok();
  };
}

}  // namespace scalfrag::testing
