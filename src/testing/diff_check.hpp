#pragma once
// Differential conformance checker: one table of every MTTKRP
// execution path in the repository, all pinned to the dense oracle.
//
// The ROADMAP's "refactor hot paths fearlessly" is only safe when every
// independently-written backend — reference COO, the parallel host
// engine under each strategy and thread count, CSF/B-CSF/HiCOO/F-COO,
// the ParTI baseline, the segmented pipeline, the CPU–GPU hybrid — is
// mechanically checked against one oracle on the same input. New
// kernels register here once (conformance_paths) and inherit coverage
// from every corpus archetype, the conformance test suite, and the
// fuzz driver for free.
//
// When a path diverges, shrink_tensor() greedily minimizes the failing
// tensor (ddmin-style chunk removal over the entry list) so the repro
// is a handful of non-zeros instead of a fuzz-sized instance.

#include <functional>
#include <string>
#include <vector>

#include "testing/oracle.hpp"
#include "tensor/coo.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag::testing {

/// One registered execution path. `run` receives a mode-sorted tensor
/// with validated factors and must return the full dims[mode] × rank
/// MTTKRP (a path builds whatever format it needs internally).
struct ExecPath {
  std::string name;
  std::function<DenseMatrix(const CooTensor& t, const FactorList& factors,
                            order_t mode)>
      run;
  /// Optional capability predicate; null means "supports everything".
  /// Paths return false for inputs outside their contract (the harness
  /// counts them as skipped rather than divergent).
  std::function<bool(const CooTensor& t, order_t mode)> supports;
};

/// THE conformance table. Add new kernels/formats/executors here — one
/// entry buys coverage in test_diff_check, the conformance suite, and
/// fuzz_mttkrp.
const std::vector<ExecPath>& conformance_paths();

/// Deterministic factor matrices for a tensor (uniform [0,1) rows from
/// the shared Rng) — the same factors every conformance site uses, so a
/// failure reproduces from (tensor, rank, seed) alone.
FactorList conformance_factors(const CooTensor& t, index_t rank,
                               std::uint64_t seed);

struct Divergence {
  std::string path;
  bool threw = false;   // the path raised instead of diverging
  std::string message;  // exception text when threw
  index_t row = 0;
  index_t col = 0;
  double got = 0.0;
  double want = 0.0;
  double tol = 0.0;
};

struct DiffOptions {
  index_t rank = 8;
  std::uint64_t factor_seed = 0x5eedfacau;
  /// Substring filter on path names; empty runs the whole table.
  std::string path_filter;
  /// Stop at the first divergent path (the shrinker wants this);
  /// false collects every divergence for reporting.
  bool stop_at_first = true;
  ToleranceModel tolerance;
};

struct DiffReport {
  std::size_t paths_run = 0;
  std::size_t paths_skipped = 0;
  std::vector<Divergence> divergences;

  bool ok() const noexcept { return divergences.empty(); }
};

/// Run every (filtered) registered path on `t` and compare each output
/// to the oracle. `t` may be unsorted/un-coalesced — a mode-sorted copy
/// is handed to the table, and order-independent paths additionally run
/// on the raw entry order.
DiffReport check_all_paths(const CooTensor& t, order_t mode,
                           const DiffOptions& opt = {});

/// Greedy input minimization: repeatedly remove entry chunks (halving
/// the chunk size down to single entries) while `still_fails` holds.
/// `still_fails(t)` must be true on entry; the result is 1-minimal —
/// removing any single remaining entry makes the failure disappear.
CooTensor shrink_tensor(const CooTensor& t,
                        const std::function<bool(const CooTensor&)>&
                            still_fails);

/// Predicate for shrink_tensor bound to check_all_paths(·, mode, opt):
/// true iff the (filtered) table still diverges on the candidate.
std::function<bool(const CooTensor&)> divergence_predicate(
    order_t mode, DiffOptions opt);

}  // namespace scalfrag::testing
