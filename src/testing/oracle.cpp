#include "testing/oracle.hpp"

#include <cmath>
#include <limits>

namespace scalfrag::testing {

OracleResult mttkrp_oracle(const CooTensor& t, const FactorList& factors,
                           order_t mode) {
  const index_t rank = check_factors(t, factors);
  SF_CHECK(mode < t.order(), "mode out of range");

  OracleResult o;
  o.rows = t.dim(mode);
  o.cols = rank;
  const std::size_t cells = static_cast<std::size_t>(o.rows) * rank;
  o.sum.assign(cells, 0.0);
  o.mag.assign(cells, 0.0);
  o.terms.assign(cells, 0);
  std::vector<double> comp(cells, 0.0);  // Neumaier compensation

  std::vector<double> term(rank);
  for (nnz_t e = 0; e < t.nnz(); ++e) {
    const double val = static_cast<double>(t.value(e));
    for (index_t f = 0; f < rank; ++f) term[f] = val;
    for (order_t m = 0; m < t.order(); ++m) {
      if (m == mode) continue;
      const value_t* frow = factors[m].row(t.index(m, e));
      for (index_t f = 0; f < rank; ++f) {
        term[f] *= static_cast<double>(frow[f]);
      }
    }
    const std::size_t base =
        static_cast<std::size_t>(t.index(mode, e)) * rank;
    for (index_t f = 0; f < rank; ++f) {
      const std::size_t c = base + f;
      const double x = term[f];
      const double s = o.sum[c];
      const double nsum = s + x;
      // Neumaier branch: the compensation recovers the low-order bits
      // of whichever addend was larger.
      comp[c] += std::abs(s) >= std::abs(x) ? (s - nsum) + x : (x - nsum) + s;
      o.sum[c] = nsum;
      o.mag[c] += std::abs(x);
      ++o.terms[c];
    }
  }
  for (std::size_t c = 0; c < cells; ++c) o.sum[c] += comp[c];
  return o;
}

double ToleranceModel::cell_tol(const OracleResult& o, index_t i, index_t f,
                                order_t order) const {
  constexpr double eps32 = 1.1920928955078125e-07;  // 2^-23
  const double n = static_cast<double>(o.term_count(i, f));
  return abs_floor +
         slack * eps32 * (static_cast<double>(order) + n) * o.magnitude(i, f);
}

OracleDiff compare_to_oracle(const OracleResult& oracle,
                             const DenseMatrix& got, order_t order,
                             const ToleranceModel& model) {
  SF_CHECK(got.rows() == oracle.rows && got.cols() == oracle.cols,
           "engine output shape does not match the oracle");
  OracleDiff d;
  for (index_t i = 0; i < oracle.rows; ++i) {
    for (index_t f = 0; f < oracle.cols; ++f) {
      const double want = oracle.value(i, f);
      const double val = static_cast<double>(got(i, f));
      const double tol = model.cell_tol(oracle, i, f, order);
      const double err = std::abs(val - want);
      const double excess =
          tol > 0.0 ? err / tol : (err > 0.0
                                       ? std::numeric_limits<double>::infinity()
                                       : 0.0);
      if (excess > d.worst_excess) d.worst_excess = excess;
      if (err > tol && !d.diverged) {
        d.diverged = true;
        d.row = i;
        d.col = f;
        d.got = val;
        d.want = want;
        d.tol = tol;
      }
    }
  }
  return d;
}

}  // namespace scalfrag::testing
