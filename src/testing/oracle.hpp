#pragma once
// Dense golden oracle for MTTKRP conformance checking.
//
// Every execution path in this repository (reference COO, the parallel
// host engine's strategies, CSF/B-CSF/HiCOO/F-COO, the ParTI baseline,
// the segmented pipeline, the CPU–GPU hybrid) computes the same
// mathematical object:
//
//   M(i_n, f) = Σ_{x ∈ nnz}  val(x) · Π_{m ≠ n} A⁽ᵐ⁾(i_m(x), f)
//
// but each one associates the sum differently, which moves the last
// float bits. The oracle computes the sum by definition in double
// precision with Neumaier-compensated accumulation — several decimal
// digits more accurate than any fp32 engine — and records, per output
// cell, the *magnitude* Σ|term| and the term count. Those two numbers
// feed a first-principles tolerance model (see ToleranceModel): an
// fp32 engine that merely reassociated the sum lands within the bound;
// an engine that dropped, duplicated, or misrouted a term does not.

#include <vector>

#include "tensor/coo.hpp"
#include "tensor/dense_matrix.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag::testing {

/// High-precision MTTKRP output plus per-cell conditioning data.
struct OracleResult {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<double> sum;   // compensated signed sum per cell
  std::vector<double> mag;   // Σ|term| per cell (cancellation measure)
  std::vector<nnz_t> terms;  // contributions per cell

  double value(index_t i, index_t f) const {
    return sum[static_cast<std::size_t>(i) * cols + f];
  }
  double magnitude(index_t i, index_t f) const {
    return mag[static_cast<std::size_t>(i) * cols + f];
  }
  nnz_t term_count(index_t i, index_t f) const {
    return terms[static_cast<std::size_t>(i) * cols + f];
  }
};

/// Compute the mode-`mode` MTTKRP oracle. Accepts any entry order and
/// duplicate coordinates (duplicates simply contribute extra terms).
OracleResult mttkrp_oracle(const CooTensor& t, const FactorList& factors,
                           order_t mode);

/// Per-cell error bound for an fp32 engine versus the oracle.
///
/// A cell is the sum of n terms, each a product of (order−1) fp32
/// factor entries and one fp32 value. First-order rounding analysis:
/// forming one term costs ≤ order·ε_32 relative error, and any
/// summation order (serial, tree, privatized partials) costs
/// ≤ (n−1)·ε_32 · Σ|term|. We allow
///
///   tol(cell) = abs_floor + slack · ε_32 · (order + n) · mag(cell)
///
/// `slack` absorbs second-order effects, FMA contraction differences,
/// and the final fp32 store. Cells no engine touched (n = 0) get only
/// abs_floor, so a misrouted write to an untouched row is always
/// caught.
struct ToleranceModel {
  double abs_floor = 1e-20;
  double slack = 8.0;

  double cell_tol(const OracleResult& o, index_t i, index_t f,
                  order_t order) const;
};

/// First out-of-tolerance cell (row-major scan), plus the worst
/// relative exceedance seen anywhere — `diverged` is false when every
/// cell is within its bound.
struct OracleDiff {
  bool diverged = false;
  index_t row = 0;
  index_t col = 0;
  double got = 0.0;   // engine value at the first divergent cell
  double want = 0.0;  // oracle value there
  double tol = 0.0;   // allowed deviation there
  double worst_excess = 0.0;  // max over cells of |got−want| / tol
};

OracleDiff compare_to_oracle(const OracleResult& oracle,
                             const DenseMatrix& got, order_t order,
                             const ToleranceModel& model = {});

}  // namespace scalfrag::testing
