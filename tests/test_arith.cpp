// Sparse tensor arithmetic tests: union/intersection merges, scaling,
// reductions, pruning.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/arith.hpp"
#include "tensor/generator.hpp"

namespace scalfrag {
namespace {

CooTensor make(std::initializer_list<std::tuple<index_t, index_t, value_t>>
                   entries) {
  CooTensor t({4, 4});
  for (const auto& [i, j, v] : entries) t.push({i, j}, v);
  return t;
}

value_t value_at(const CooTensor& t, index_t i, index_t j) {
  value_t s = 0;
  for (nnz_t e = 0; e < t.nnz(); ++e) {
    if (t.index(0, e) == i && t.index(1, e) == j) s += t.value(e);
  }
  return s;
}

TEST(TensorArith, AddMergesUnionOfSupports) {
  const auto a = make({{0, 0, 1.0f}, {1, 1, 2.0f}});
  const auto b = make({{1, 1, 3.0f}, {2, 2, 4.0f}});
  const auto c = tensor_ops::add(a, b);
  EXPECT_EQ(c.nnz(), 3u);
  EXPECT_FLOAT_EQ(value_at(c, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(value_at(c, 1, 1), 5.0f);
  EXPECT_FLOAT_EQ(value_at(c, 2, 2), 4.0f);
}

TEST(TensorArith, SubKeepsCancelledZeros) {
  const auto a = make({{1, 1, 2.0f}});
  const auto c = tensor_ops::sub(a, a);
  ASSERT_EQ(c.nnz(), 1u);  // structural nonzero survives
  EXPECT_FLOAT_EQ(c.value(0), 0.0f);
}

TEST(TensorArith, HadamardIntersectsSupports) {
  const auto a = make({{0, 0, 2.0f}, {1, 1, 3.0f}});
  const auto b = make({{1, 1, 4.0f}, {2, 2, 5.0f}});
  const auto c = tensor_ops::hadamard(a, b);
  ASSERT_EQ(c.nnz(), 1u);
  EXPECT_FLOAT_EQ(value_at(c, 1, 1), 12.0f);
}

TEST(TensorArith, ShapeMismatchThrows) {
  CooTensor a({4, 4});
  CooTensor b({4, 5});
  EXPECT_THROW(tensor_ops::add(a, b), Error);
  EXPECT_THROW(tensor_ops::hadamard(a, b), Error);
  EXPECT_THROW(tensor_ops::dot(a, b), Error);
}

TEST(TensorArith, MergeHandlesUnsortedDuplicatedInputs) {
  CooTensor a({4, 4});
  a.push({3, 3}, 1.0f);
  a.push({0, 0}, 1.0f);
  a.push({3, 3}, 1.0f);  // duplicate pre-coalesce
  const auto c = tensor_ops::add(a, make({{3, 3, 1.0f}}));
  EXPECT_FLOAT_EQ(value_at(c, 3, 3), 3.0f);
  EXPECT_EQ(c.nnz(), 2u);
}

TEST(TensorArith, ScaleAndNormAndSum) {
  auto a = make({{0, 0, 3.0f}, {1, 1, 4.0f}});
  EXPECT_NEAR(tensor_ops::norm(a), 5.0, 1e-6);
  EXPECT_NEAR(tensor_ops::sum(a), 7.0, 1e-6);
  tensor_ops::scale(a, 2.0f);
  EXPECT_NEAR(tensor_ops::norm(a), 10.0, 1e-5);
}

TEST(TensorArith, DotOverCommonSupport) {
  const auto a = make({{0, 0, 2.0f}, {1, 1, 3.0f}, {2, 2, 7.0f}});
  const auto b = make({{0, 0, 5.0f}, {1, 1, 1.0f}, {3, 3, 9.0f}});
  EXPECT_NEAR(tensor_ops::dot(a, b), 2 * 5 + 3 * 1, 1e-6);
  EXPECT_NEAR(tensor_ops::dot(a, a),
              tensor_ops::norm(a) * tensor_ops::norm(a), 1e-4);
}

TEST(TensorArith, PruneDropsSmallEntries) {
  auto a = make({{0, 0, 0.0f}, {1, 1, 1e-8f}, {2, 2, 1.0f}});
  EXPECT_EQ(tensor_ops::prune(a, 1e-6f), 2u);
  EXPECT_EQ(a.nnz(), 1u);
  EXPECT_FLOAT_EQ(a.value(0), 1.0f);
}

TEST(TensorArith, AlgebraicIdentitiesOnRandomTensors) {
  GeneratorConfig g{.dims = {32, 24, 16}, .nnz = 600, .skew = {}, .seed = 41};
  const CooTensor a = generate_coo(g);
  g.seed = 42;
  const CooTensor b = generate_coo(g);

  // (a + b) - b == a on a's support.
  CooTensor back = tensor_ops::sub(tensor_ops::add(a, b), b);
  tensor_ops::prune(back, 1e-6f);
  const CooTensor a_copy = [&] {
    CooTensor c = a;
    c.sort_by_mode(0);
    return c;
  }();
  ASSERT_EQ(back.nnz(), a_copy.nnz());
  for (nnz_t e = 0; e < back.nnz(); ++e) {
    EXPECT_NEAR(back.value(e), a_copy.value(e), 1e-4);
  }

  // ||a+b||² = ||a||² + 2<a,b> + ||b||².
  const double lhs = std::pow(tensor_ops::norm(tensor_ops::add(a, b)), 2);
  const double rhs = std::pow(tensor_ops::norm(a), 2) +
                     2.0 * tensor_ops::dot(a, b) +
                     std::pow(tensor_ops::norm(b), 2);
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

}  // namespace
}  // namespace scalfrag
