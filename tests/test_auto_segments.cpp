// Auto-segmentation rule tests: the cost-model-driven segment count
// must never lose to the obviously wrong extremes, across scales.

#include <gtest/gtest.h>

#include "parti/parti_executor.hpp"
#include "scalfrag/pipeline.hpp"
#include "tensor/generator.hpp"

namespace scalfrag {
namespace {

const gpusim::DeviceSpec kSpec = gpusim::DeviceSpec::rtx3090();

FactorList random_factors(const CooTensor& t, index_t rank,
                          std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

TEST(AutoSegments, RuleReturnsSaneCounts) {
  gpusim::SimDevice dev(kSpec);
  const ExecConfig opt;
  // Tiny tensor → 1 segment; big tensor → several.
  CooTensor tiny = make_frostt_tensor("nips", 1.0 / 4096, 701);
  CooTensor big = make_frostt_tensor("deli-3d", 1.0 / 256, 702);
  const int k_tiny = auto_segment_count(dev, tiny, 0, 16, opt);
  const int k_big = auto_segment_count(dev, big, 0, 16, opt);
  EXPECT_GE(k_tiny, 1);
  EXPECT_LE(k_tiny, 2);
  EXPECT_GT(k_big, k_tiny);
  EXPECT_LE(k_big, 8);

  CooTensor empty({4, 4});
  EXPECT_EQ(auto_segment_count(dev, empty, 0, 16, opt), 1);
}

// Property over scales: the auto rule must beat (or roughly tie, the
// estimator is a heuristic) both degenerate strategies — no
// segmentation and max segmentation.
class AutoSegmentsScale : public ::testing::TestWithParam<int> {};

TEST_P(AutoSegmentsScale, NeverLosesToExtremes) {
  const int denom = GetParam();
  CooTensor t = make_frostt_tensor("nell-2", 1.0 / denom, 703);
  const auto f = random_factors(t, 16, 704);
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor exec(dev);

  ExecConfig auto_opt;  // num_segments = 0 (auto)
  ExecConfig one;
  one.num_segments = 1;
  ExecConfig many;
  many.num_segments = 16;

  const sim_ns t_auto = exec.run(t, f, 0, auto_opt).total_ns;
  const sim_ns t_one = exec.run(t, f, 0, one).total_ns;
  const sim_ns t_many = exec.run(t, f, 0, many).total_ns;

  EXPECT_LE(static_cast<double>(t_auto), 1.08 * t_one) << "lost to k=1";
  EXPECT_LE(static_cast<double>(t_auto), 1.08 * t_many) << "lost to k=16";
}

INSTANTIATE_TEST_SUITE_P(Scales, AutoSegmentsScale,
                         ::testing::Values(4096, 1024, 512, 256));

TEST(AutoSegments, PipelineBeatsParTiAcrossScales) {
  // The regression the rule exists to prevent: ScalFrag must not lose
  // end-to-end at small scales where over-segmentation used to hurt.
  gpusim::SimDevice dev(kSpec);
  PipelineExecutor exec(dev);
  for (int denom : {4096, 1024, 256}) {
    CooTensor t = make_frostt_tensor("nell-2", 1.0 / denom, 705);
    const auto f = random_factors(t, 16, 706);
    const auto base = parti::run_mttkrp(dev, t, f, 0);
    const auto ours = exec.run(t, f, 0);
    EXPECT_LT(ours.total_ns, base.total_ns) << "1/" << denom;
  }
}

}  // namespace
}  // namespace scalfrag
