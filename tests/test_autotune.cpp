// Adaptive-launch autotuner tests: corpus building, training quality,
// selection feasibility/regret, and the §IV-B timing claims.

#include <gtest/gtest.h>

#include "ml/metrics.hpp"
#include "scalfrag/autotune.hpp"
#include "tensor/generator.hpp"

namespace scalfrag {
namespace {

const gpusim::DeviceSpec kSpec = gpusim::DeviceSpec::rtx3090();

// One small shared tuner per suite — training is cheap but not free.
AutoTuner& shared_tuner() {
  static AutoTuner tuner = [] {
    AutoTunerConfig cfg;
    cfg.corpus_size = 48;
    cfg.seed = 77;
    AutoTuner t(kSpec, cfg);
    t.train();
    return t;
  }();
  return tuner;
}

TEST(AutoTune, FeatureVectorLayout) {
  CooTensor t = make_frostt_tensor("nips", 1.0 / 4096, 61);
  const auto feat = TensorFeatures::extract(t, 0);
  const gpusim::LaunchConfig cfg{1024, 256, 0};
  const auto x = launch_feature_vector(feat, kSpec, cfg, 16);
  ASSERT_EQ(x.size(), TensorFeatures::kVectorSize + 4);
  EXPECT_DOUBLE_EQ(x[TensorFeatures::kVectorSize], 10.0);      // log2 grid
  EXPECT_DOUBLE_EQ(x[TensorFeatures::kVectorSize + 1], 8.0);   // log2 block
  EXPECT_GT(x[TensorFeatures::kVectorSize + 3], 0.0);          // occupancy
}

TEST(AutoTune, DatasetSweepsCandidatesPerTensor) {
  const auto data = AutoTuner::build_dataset(kSpec, 16, 3, 62);
  // ≤ 78 configs per tensor (some shmem-infeasible at big blocks).
  EXPECT_GT(data.size(), 3u * 40);
  EXPECT_LE(data.size(), 3u * 78);
  EXPECT_EQ(data.dim(), TensorFeatures::kVectorSize + 4);
  for (std::size_t i = 0; i < data.size(); ++i) {
    // Targets are log2(GFlops) — finite, and > 0 once a config clears
    // 1 GFlop/s (cannot assert positivity for the starved configs).
    EXPECT_TRUE(std::isfinite(data.target(i)));
    EXPECT_GT(std::exp2(data.target(i)), 0.0);
  }
}

TEST(AutoTune, TrainingMeetsPaperBudgets) {
  AutoTunerConfig cfg;
  cfg.corpus_size = 48;  // the library default corpus size
  cfg.seed = 63;
  AutoTuner tuner(kSpec, cfg);
  const auto rep = tuner.train();
  EXPECT_EQ(rep.model_name, "DecisionTree");
  EXPECT_GT(rep.train_rows, 0u);
  EXPECT_GT(rep.test_rows, 0u);
  // §IV-B: training < 0.5 s, DecisionTree MAPE < 15%. The wall-clock
  // budget only means something without sanitizer instrumentation
  // (ASan/TSan slow training 10-40x and the suite runs in parallel).
#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
  EXPECT_LT(rep.train_seconds, 0.5);
#endif
  EXPECT_LT(rep.mape_test, 15.0);
  EXPECT_GT(rep.r2_test, 0.8);
  EXPECT_TRUE(tuner.trained());
}

TEST(AutoTune, SelectorBeforeTrainingThrows) {
  AutoTuner tuner(kSpec, {});
  EXPECT_THROW(tuner.selector(), Error);
}

TEST(AutoTune, SelectionIsFeasibleAndDeterministic) {
  const LaunchSelector sel = shared_tuner().selector();
  CooTensor t = make_frostt_tensor("vast", 1.0 / 512, 64);
  const auto feat = TensorFeatures::extract(t, 0);
  const Selection a = sel.select(feat);
  const Selection b = sel.select(feat);
  EXPECT_TRUE(a.config == b.config);
  EXPECT_GT(a.predicted_gflops, 0.0);
  // Chosen config must be occupancy-feasible with its shared memory.
  EXPECT_TRUE(gpusim::compute_occupancy(kSpec, a.config).feasible);
  EXPECT_EQ(a.config.shmem_per_block,
            kernel_shmem_bytes(a.config.block, sel.rank()));
}

TEST(AutoTune, SelectionRegretIsBounded) {
  // The selected config must reach ≥60% of the oracle-best GFlops (the
  // paper's model "can be a good guide for the selection").
  const LaunchSelector sel = shared_tuner().selector();
  const gpusim::CostModel cost(kSpec);
  for (const char* name : {"vast", "nips", "uber", "nell-2"}) {
    CooTensor t = make_frostt_tensor(name, 1.0 / 512, 65);
    const auto feat = TensorFeatures::extract(t, 0);
    const auto prof = mttkrp_profile(feat, 16);

    double best = 0.0;
    for (gpusim::LaunchConfig cfg : gpusim::launch_candidates(kSpec)) {
      cfg.shmem_per_block = kernel_shmem_bytes(cfg.block, 16);
      if (!gpusim::compute_occupancy(kSpec, cfg).feasible) continue;
      best = std::max(best, cost.gflops(cfg, prof));
    }
    const Selection s = sel.select(feat);
    const double achieved = cost.gflops(s.config, prof);
    EXPECT_GT(achieved, 0.6 * best) << name;
  }
}

TEST(AutoTune, InferenceIsCheapRelativeToKernel) {
  // §IV-B: "the inference time is less than 1% of the MTTKRP
  // computation" — here: selection wall time (microseconds of host
  // work) stays far below the simulated multi-ms kernel on default
  // FROSTT scales. We assert the selection is sub-10ms on any host.
  const LaunchSelector sel = shared_tuner().selector();
  CooTensor t = make_frostt_tensor("nell-2", 1.0 / 512, 66);
  const auto feat = TensorFeatures::extract(t, 0);
  const Selection s = sel.select(feat);
  EXPECT_LT(s.inference_seconds, 0.01);
}

TEST(AutoTune, SaveLoadSelectorRoundTrip) {
  AutoTuner& tuner = shared_tuner();
  const std::string path = ::testing::TempDir() + "scalfrag_launch_model.txt";
  tuner.save_model(path);
  const LaunchSelector fresh = tuner.selector();
  const LaunchSelector loaded = AutoTuner::load_selector(kSpec, path, 16);
  std::remove(path.c_str());

  for (const char* name : {"vast", "enron", "nips"}) {
    CooTensor t = make_frostt_tensor(name, 1.0 / 1024, 69);
    const auto feat = TensorFeatures::extract(t, 0);
    const Selection a = fresh.select(feat);
    const Selection b = loaded.select(feat);
    EXPECT_TRUE(a.config == b.config) << name;
    EXPECT_DOUBLE_EQ(a.predicted_gflops, b.predicted_gflops) << name;
  }
}

TEST(AutoTune, SaveRequiresTrainedSerializableModel) {
  AutoTuner untrained(kSpec, {});
  EXPECT_THROW(untrained.save_model("/tmp/x.txt"), Error);
  AutoTunerConfig cfg;
  cfg.corpus_size = 4;
  cfg.model = ModelKind::Knn;  // not serializable
  AutoTuner knn_tuner(kSpec, cfg);
  knn_tuner.train();
  EXPECT_THROW(knn_tuner.save_model("/tmp/x.txt"), Error);
}

TEST(AutoTune, ModelFactoryProducesAllKinds) {
  for (ModelKind k :
       {ModelKind::DecisionTree, ModelKind::Bagging, ModelKind::AdaBoost,
        ModelKind::LinearSVR, ModelKind::Knn}) {
    const auto m = make_model(k);
    ASSERT_NE(m, nullptr);
    EXPECT_STREQ(m->name().c_str(), model_kind_name(k));
  }
}

// The shared-memory tile scales with rank; at large ranks big blocks
// fall off the occupancy cliff, and the selector must adapt.
class AutoTuneRank : public ::testing::TestWithParam<int> {};

TEST_P(AutoTuneRank, SelectorStaysFeasibleAcrossRanks) {
  const auto rank = static_cast<index_t>(GetParam());
  AutoTunerConfig cfg;
  cfg.rank = rank;
  cfg.corpus_size = 8;
  cfg.seed = 70 + rank;
  AutoTuner tuner(kSpec, cfg);
  tuner.train();
  const LaunchSelector sel = tuner.selector();

  CooTensor t = make_frostt_tensor("nell-2", 1.0 / 2048, 70);
  const Selection s = sel.select(TensorFeatures::extract(t, 0));
  gpusim::LaunchConfig cfg_check = s.config;
  EXPECT_TRUE(gpusim::compute_occupancy(kSpec, cfg_check).feasible);
  if (rank >= 64) {
    // 1024-thread blocks need (1024+64)·rank·4 B ≥ 278 KB — over the
    // 99 KB cap, so the selector must have picked a smaller block.
    EXPECT_LT(s.config.block, 1024u);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, AutoTuneRank,
                         ::testing::Values(8, 32, 64, 128));

TEST(AutoTune, TreeOutpredictsLinearSvrOnSweepData) {
  // The paper's model ranking: tree-based beats the linear SVM on this
  // strongly non-linear surface.
  const auto data = AutoTuner::build_dataset(kSpec, 16, 12, 67);
  auto [train, test] = data.train_test_split(0.25, 68);
  auto tree = make_model(ModelKind::DecisionTree);
  auto svr = make_model(ModelKind::LinearSVR);
  tree->fit(train);
  svr->fit(train);
  const double tree_mape = ml::mape(test.targets(), tree->predict_all(test));
  const double svr_mape = ml::mape(test.targets(), svr->predict_all(test));
  EXPECT_LT(tree_mape, svr_mape);
}

}  // namespace
}  // namespace scalfrag
