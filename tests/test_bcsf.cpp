// B-CSF tests: slice splitting, balance guarantees, owner mapping, and
// MTTKRP equivalence with the COO reference.

#include <gtest/gtest.h>

#include "tensor/bcsf.hpp"
#include "tensor/features.hpp"
#include "tensor/generator.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {
namespace {

FactorList random_factors(const CooTensor& t, index_t rank,
                          std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

TEST(Bcsf, SplitsHeavySlicesOnly) {
  // Slice 0: 10 nnz; slice 2: 3 nnz. Cap 4 → slice 0 splits into 3.
  CooTensor t({4, 16});
  for (index_t j = 0; j < 10; ++j) t.push({0, j}, 1.0f);
  for (index_t j = 0; j < 3; ++j) t.push({2, j}, 1.0f);
  const BcsfTensor b = BcsfTensor::build(t, 0, 4);
  EXPECT_EQ(b.num_virtual_slices(), 4u);  // 3 + 1
  EXPECT_EQ(b.slices_split(), 1u);
  EXPECT_LE(b.max_virtual_slice_nnz(), 4u);
  EXPECT_EQ(b.owner(0), 0u);
  EXPECT_EQ(b.owner(1), 0u);
  EXPECT_EQ(b.owner(2), 0u);
  EXPECT_EQ(b.owner(3), 2u);
}

TEST(Bcsf, NoSplitWhenUnderThreshold) {
  CooTensor t = make_frostt_tensor("nips", 1.0 / 4096, 411);
  const auto feat = TensorFeatures::extract(t, 0);
  const BcsfTensor b = BcsfTensor::build(t, 0, feat.max_nnz_per_slice + 1);
  EXPECT_EQ(b.slices_split(), 0u);
  EXPECT_EQ(b.num_virtual_slices(), feat.num_slices);
}

TEST(Bcsf, BalanceGuaranteeOnSkewedTensor) {
  CooTensor t = make_frostt_tensor("nell-2", 1.0 / 2048, 412);
  const auto feat = TensorFeatures::extract(t, 0);
  ASSERT_GT(feat.max_nnz_per_slice, 256u) << "fixture not skewed enough";
  const BcsfTensor b = BcsfTensor::build(t, 0, 256);
  EXPECT_LE(b.max_virtual_slice_nnz(), 256u);
  EXPECT_GT(b.slices_split(), 0u);
  EXPECT_GT(b.num_virtual_slices(), feat.num_slices);
  EXPECT_EQ(b.nnz(), t.nnz());
}

TEST(Bcsf, EmptyTensor) {
  CooTensor t({4, 4});
  const BcsfTensor b = BcsfTensor::build(t, 0, 8);
  EXPECT_EQ(b.num_virtual_slices(), 0u);
  EXPECT_EQ(b.max_virtual_slice_nnz(), 0u);
}

TEST(Bcsf, Validation) {
  CooTensor t({4, 4});
  EXPECT_THROW(BcsfTensor::build(t, 5, 8), Error);
  EXPECT_THROW(BcsfTensor::build(t, 0, 0), Error);
}

// Property: B-CSF MTTKRP == reference for every profile × threshold.
class BcsfMttkrp
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(BcsfMttkrp, MatchesReference) {
  const auto [name, cap] = GetParam();
  const CooTensor t = make_frostt_tensor(name, 1.0 / 4096, 413);
  const auto f = random_factors(t, 8, 414);
  const auto expect = mttkrp_coo_ref(t, f, 0);
  const BcsfTensor b = BcsfTensor::build(t, 0, static_cast<nnz_t>(cap));
  DenseMatrix got(t.dim(0), 8);
  b.mttkrp(f, got);
  EXPECT_LT(DenseMatrix::max_abs_diff(expect, got), 2e-3);
  EXPECT_LE(b.max_virtual_slice_nnz(), static_cast<nnz_t>(cap));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BcsfMttkrp,
    ::testing::Combine(::testing::Values("nell-2", "uber", "enron"),
                       ::testing::Values(1, 64, 1 << 20)));

}  // namespace
}  // namespace scalfrag
