// Tests for the common substrate: RNG, thread pool, math helpers,
// formatting, and error macros.

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace scalfrag {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, FloatInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const float v = r.next_float();
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(11);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroBoundIsZero) {
  Rng r(13);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NormalHasReasonableMoments) {
  Rng r(19);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(23);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.next_u64() == child.next_u64();
  EXPECT_LT(same, 2);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 100), 1);
  EXPECT_EQ(ceil_div(0, 5), 0);
}

TEST(MathUtil, RoundUp) {
  EXPECT_EQ(round_up(10, 4), 12);
  EXPECT_EQ(round_up(8, 4), 8);
  EXPECT_EQ(round_up(1, 32), 32);
}

TEST(MathUtil, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1023));
}

TEST(MathUtil, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(MathUtil, RelDiff) {
  EXPECT_DOUBLE_EQ(rel_diff(1.0, 1.0), 0.0);
  EXPECT_NEAR(rel_diff(1.0, 1.1), 0.0909, 1e-3);
  EXPECT_NEAR(rel_diff(-2.0, 2.0), 2.0, 1e-12);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(pool.submit([&] { ++count; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(Format, HumanCount) {
  EXPECT_EQ(human_count(999), "999");
  EXPECT_EQ(human_count(26021854), "26M");
  EXPECT_EQ(human_count(3101609), "3.1M");
  EXPECT_EQ(human_count(1500), "1.5K");
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512.0 B");
  EXPECT_EQ(human_bytes(24ull * 1024 * 1024 * 1024), "24.0 GB");
}

TEST(Format, FmtDouble) {
  EXPECT_EQ(fmt_double(1.30), "1.3");
  EXPECT_EQ(fmt_double(2.0), "2");
  EXPECT_EQ(fmt_double(2.25, 2), "2.25");
}

TEST(Format, FmtDensity) {
  EXPECT_EQ(fmt_density(6.9e-3), "6.9e-3");
  EXPECT_EQ(fmt_density(0.0), "0");
}

TEST(Format, ConsoleTableRendersAlignedRows) {
  ConsoleTable t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.str();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Error, SfCheckThrowsWithContext) {
  try {
    SF_CHECK(false, "context message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context message"),
              std::string::npos);
  }
}

TEST(Error, DeviceOutOfMemoryCarriesSizes) {
  DeviceOutOfMemory e(100, 50);
  EXPECT_EQ(e.requested(), 100u);
  EXPECT_EQ(e.available(), 50u);
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.micros(), t.millis());
}

}  // namespace
}  // namespace scalfrag
