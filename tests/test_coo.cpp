// COO tensor unit tests: construction, mutation, sorting, coalescing,
// slicing, extraction.

#include <gtest/gtest.h>

#include "tensor/coo.hpp"
#include "tensor/generator.hpp"

namespace scalfrag {
namespace {

CooTensor small3d() {
  // 3×4×2 tensor with 5 entries, deliberately unsorted.
  CooTensor t({3, 4, 2});
  t.push({2, 1, 0}, 5.0f);
  t.push({0, 0, 0}, 1.0f);
  t.push({1, 3, 1}, 4.0f);
  t.push({0, 2, 1}, 2.0f);
  t.push({1, 0, 0}, 3.0f);
  return t;
}

TEST(CooTensor, ConstructionValidatesDims) {
  EXPECT_THROW(CooTensor(std::vector<index_t>{}), Error);
  EXPECT_THROW(CooTensor({3, 0, 2}), Error);
  CooTensor t({3, 4});
  EXPECT_EQ(t.order(), 2);
  EXPECT_EQ(t.nnz(), 0u);
  EXPECT_TRUE(t.empty());
}

TEST(CooTensor, PushValidatesCoordinates) {
  CooTensor t({2, 2});
  EXPECT_THROW(t.push({2, 0}, 1.0f), Error);  // out of range
  EXPECT_THROW(t.push({0}, 1.0f), Error);     // wrong arity
  t.push({1, 1}, 1.0f);
  EXPECT_EQ(t.nnz(), 1u);
  EXPECT_EQ(t.index(0, 0), 1u);
  EXPECT_FLOAT_EQ(t.value(0), 1.0f);
}

TEST(CooTensor, SortByMode0IsLexicographic) {
  CooTensor t = small3d();
  EXPECT_FALSE(t.is_sorted_by_mode(0));
  t.sort_by_mode(0);
  EXPECT_TRUE(t.is_sorted_by_mode(0));
  // Expected order: (0,0,0) (0,2,1) (1,0,0) (1,3,1) (2,1,0)
  EXPECT_FLOAT_EQ(t.value(0), 1.0f);
  EXPECT_FLOAT_EQ(t.value(1), 2.0f);
  EXPECT_FLOAT_EQ(t.value(2), 3.0f);
  EXPECT_FLOAT_EQ(t.value(3), 4.0f);
  EXPECT_FLOAT_EQ(t.value(4), 5.0f);
}

TEST(CooTensor, SortByOtherModePutsThatModeFirst) {
  CooTensor t = small3d();
  t.sort_by_mode(2);
  EXPECT_TRUE(t.is_sorted_by_mode(2));
  // Full key order: mode 2 first, ties broken by mode 0, then mode 1.
  for (nnz_t e = 1; e < t.nnz(); ++e) {
    const auto key = [&](nnz_t i) {
      return std::tuple(t.index(2, i), t.index(0, i), t.index(1, i));
    };
    EXPECT_LE(key(e - 1), key(e));
  }
}

TEST(CooTensor, SortPreservesEntryAssociations) {
  CooTensor t = small3d();
  t.sort_by_mode(1);
  // The entry with value 4 must still be at (1,3,1).
  bool found = false;
  for (nnz_t e = 0; e < t.nnz(); ++e) {
    if (t.value(e) == 4.0f) {
      EXPECT_EQ(t.index(0, e), 1u);
      EXPECT_EQ(t.index(1, e), 3u);
      EXPECT_EQ(t.index(2, e), 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CooTensor, CoalesceSumsDuplicates) {
  CooTensor t({2, 2});
  t.push({0, 1}, 1.0f);
  t.push({0, 1}, 2.5f);
  t.push({1, 0}, 3.0f);
  t.push({0, 1}, 0.5f);
  t.sort_by_mode(0);
  const nnz_t removed = t.coalesce_duplicates();
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(t.nnz(), 2u);
  EXPECT_FLOAT_EQ(t.value(0), 4.0f);  // (0,1) summed
  EXPECT_FLOAT_EQ(t.value(1), 3.0f);
}

TEST(CooTensor, CoalesceRequiresSorted) {
  CooTensor t = small3d();
  EXPECT_THROW(t.coalesce_duplicates(), Error);
}

TEST(CooTensor, CoalesceNoDuplicatesIsIdentity) {
  CooTensor t = small3d();
  t.sort_by_mode(0);
  EXPECT_EQ(t.coalesce_duplicates(), 0u);
  EXPECT_EQ(t.nnz(), 5u);
}

TEST(CooTensor, SlicePtrMatchesSliceBoundaries) {
  CooTensor t = small3d();
  t.sort_by_mode(0);
  const auto ptr = t.slice_ptr(0);
  ASSERT_EQ(ptr.size(), 4u);  // dim 3 + 1
  EXPECT_EQ(ptr[0], 0u);
  EXPECT_EQ(ptr[1], 2u);  // slice 0 holds 2 entries
  EXPECT_EQ(ptr[2], 4u);  // slice 1 holds 2 entries
  EXPECT_EQ(ptr[3], 5u);  // slice 2 holds 1 entry
}

TEST(CooTensor, SlicePtrRequiresSorted) {
  CooTensor t = small3d();
  EXPECT_THROW(t.slice_ptr(0), Error);
}

TEST(CooTensor, ExtractCopiesRange) {
  CooTensor t = small3d();
  t.sort_by_mode(0);
  const CooTensor seg = t.extract(1, 4);
  EXPECT_EQ(seg.nnz(), 3u);
  EXPECT_EQ(seg.dims(), t.dims());
  EXPECT_FLOAT_EQ(seg.value(0), 2.0f);
  EXPECT_FLOAT_EQ(seg.value(2), 4.0f);
  EXPECT_TRUE(seg.is_sorted_by_mode(0));
}

TEST(CooTensor, ExtractValidatesRange) {
  CooTensor t = small3d();
  EXPECT_THROW(t.extract(3, 2), Error);
  EXPECT_THROW(t.extract(0, 6), Error);
  EXPECT_EQ(t.extract(2, 2).nnz(), 0u);
}

TEST(CooTensor, BytesAccountsIndicesAndValues) {
  CooTensor t = small3d();
  EXPECT_EQ(t.bytes(), 5 * (3 * sizeof(index_t) + sizeof(value_t)));
}

TEST(CooTensor, DensityIsNnzOverCells) {
  CooTensor t = small3d();
  EXPECT_DOUBLE_EQ(t.density(), 5.0 / (3 * 4 * 2));
}

TEST(CooTensor, ValidatePassesOnGoodTensor) {
  CooTensor t = small3d();
  EXPECT_NO_THROW(t.validate());
}

TEST(CooTensor, EmptyTensorIsSortedAndCoalescible) {
  CooTensor t({4, 4});
  EXPECT_TRUE(t.is_sorted_by_mode(0));
  EXPECT_TRUE(t.is_sorted_by_mode(1));
  EXPECT_EQ(t.coalesce_duplicates(), 0u);
}

// Property-style sweep: sorting by any mode of any order yields a
// sorted tensor with identical multiset of (coords, value).
class CooSortProperty : public ::testing::TestWithParam<
                            std::tuple<int /*order*/, int /*mode*/>> {};

TEST_P(CooSortProperty, SortIsPermutation) {
  const auto [order, mode] = GetParam();
  if (mode >= order) GTEST_SKIP();
  GeneratorConfig g;
  for (int m = 0; m < order; ++m) {
    g.dims.push_back(16 + 8 * m);
    g.skew.push_back(1.0 + 0.5 * m);
  }
  g.nnz = 500;
  g.seed = 99 + order * 10 + mode;
  CooTensor t = generate_coo(g);

  double sum_before = 0.0;
  for (value_t v : t.values()) sum_before += v;
  const nnz_t nnz_before = t.nnz();

  t.sort_by_mode(static_cast<order_t>(mode));
  EXPECT_TRUE(t.is_sorted_by_mode(static_cast<order_t>(mode)));
  EXPECT_EQ(t.nnz(), nnz_before);
  double sum_after = 0.0;
  for (value_t v : t.values()) sum_after += v;
  EXPECT_DOUBLE_EQ(sum_before, sum_after);
  EXPECT_NO_THROW(t.validate());
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndModes, CooSortProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0, 1, 2, 3, 4)));

}  // namespace
}  // namespace scalfrag
