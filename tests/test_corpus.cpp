// Corpus-generator tests: every archetype must exhibit the sparsity
// pathology it is named for, deterministically in its seed.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "testing/corpus.hpp"
#include "tensor/features.hpp"

namespace scalfrag::testing {
namespace {

bool same_tensor(const CooTensor& a, const CooTensor& b) {
  if (a.dims() != b.dims() || a.nnz() != b.nnz()) return false;
  for (nnz_t e = 0; e < a.nnz(); ++e) {
    if (a.value(e) != b.value(e)) return false;
    for (order_t m = 0; m < a.order(); ++m) {
      if (a.index(m, e) != b.index(m, e)) return false;
    }
  }
  return true;
}

TEST(Corpus, RegistryIsNonTrivialAndQueryable) {
  const auto& names = corpus_archetypes();
  EXPECT_GE(names.size(), 10u);
  for (const auto& n : names) EXPECT_TRUE(is_archetype(n)) << n;
  EXPECT_FALSE(is_archetype("no-such-archetype"));
  EXPECT_THROW(make_archetype("no-such-archetype", 1), Error);
  EXPECT_THROW(make_archetype("uniform", 1, 3), Error);
}

TEST(Corpus, DeterministicInSeedAndDistinctAcrossSeeds) {
  for (const auto& name : corpus_archetypes()) {
    const CooTensor a = make_archetype(name, 77, 1);
    const CooTensor b = make_archetype(name, 77, 1);
    EXPECT_TRUE(same_tensor(a, b)) << name;
    if (a.nnz() > 0) {
      const CooTensor c = make_archetype(name, 78, 1);
      EXPECT_FALSE(same_tensor(a, c)) << name << " ignores its seed";
    }
  }
}

TEST(Corpus, EveryArchetypeValidatesAndSizesScale) {
  for (const auto& name : corpus_archetypes()) {
    const CooTensor small = make_archetype(name, 3, 0);
    const CooTensor big = make_archetype(name, 3, 2);
    EXPECT_NO_THROW(small.validate()) << name;
    EXPECT_NO_THROW(big.validate()) << name;
    if (small.nnz() > 1) {
      EXPECT_GT(big.nnz(), small.nnz()) << name;
    }
  }
}

TEST(Corpus, EmptyAndSingleNnz) {
  EXPECT_EQ(make_archetype("empty", 1).nnz(), 0u);
  EXPECT_EQ(make_archetype("single_nnz", 1).nnz(), 1u);
}

TEST(Corpus, MegaSliceConcentratesMassInOneSlice) {
  const CooTensor t = make_archetype("mega_slice", 13, 1);
  const TensorFeatures f = TensorFeatures::extract(t, 0);
  EXPECT_GT(static_cast<double>(f.max_nnz_per_slice),
            0.5 * static_cast<double>(t.nnz()));
}

TEST(Corpus, HypersparseHasFarMoreSlotsThanEntries) {
  const CooTensor t = make_archetype("hypersparse", 13, 1);
  EXPECT_LT(t.density(), 1e-9);
  EXPECT_GT(t.dim(0), 10000u);
}

TEST(Corpus, DuplicatesContainExactRepeatedCoordinates) {
  CooTensor t = make_archetype("duplicates", 13, 1);
  const nnz_t before = t.nnz();
  t.sort_by_mode(0);
  EXPECT_GT(t.coalesce_duplicates(), 0u);
  EXPECT_LT(t.nnz(), before);
}

TEST(Corpus, SkewedFibersAreImbalanced) {
  const CooTensor t = make_archetype("skewed_fibers", 13, 1);
  // Mode 1 carries the heaviest skew exponent: its slice sizes must be
  // far more imbalanced than any uniform draw's (Poisson cv ≈ 0.4).
  const TensorFeatures f = TensorFeatures::extract(t, 1);
  EXPECT_GT(f.cv_nnz_per_slice, 1.0);
}

TEST(Corpus, BoundaryDimsHasSingletonModesAndExtremes) {
  const CooTensor t = make_archetype("boundary_dims", 13, 1);
  EXPECT_EQ(t.dim(0), 1u);
  EXPECT_EQ(t.dim(2), 1u);
  bool saw_zero = false, saw_last = false;
  for (nnz_t e = 0; e < t.nnz(); ++e) {
    saw_zero |= t.index(1, e) == 0;
    saw_last |= t.index(1, e) == t.dim(1) - 1;
  }
  EXPECT_TRUE(saw_zero);
  EXPECT_TRUE(saw_last);
  // Zero-sized modes stay impossible at the type level.
  EXPECT_THROW(CooTensor({0, 4}), Error);
}

TEST(Corpus, UnsortedArrivesOutOfOrder) {
  const CooTensor t = make_archetype("unsorted", 13, 1);
  EXPECT_FALSE(t.is_sorted_by_mode(0));
}

TEST(Corpus, OrderVariantsCoverTwoAndFourWay) {
  EXPECT_EQ(make_archetype("order2", 13).order(), 2);
  EXPECT_EQ(make_archetype("order4", 13).order(), 4);
}

TEST(Corpus, BlockClusteredIsDenserPerBlockThanUniform) {
  // Clustering lives at block granularity, not slice granularity: the
  // mean population of occupied 8^order-aligned blocks must clearly
  // exceed a uniform draw's.
  auto nnz_per_block = [](const CooTensor& t) {
    std::set<std::vector<index_t>> blocks;
    std::vector<index_t> key(t.order());
    for (nnz_t e = 0; e < t.nnz(); ++e) {
      for (order_t m = 0; m < t.order(); ++m) key[m] = t.index(m, e) / 8;
      blocks.insert(key);
    }
    return static_cast<double>(t.nnz()) / static_cast<double>(blocks.size());
  };
  const CooTensor t = make_archetype("block_clustered", 13, 1);
  // A uniform scatter of this nnz over the same dims occupies one block
  // per entry or so (~1.1 nnz/block); clustering must be far denser.
  EXPECT_GT(nnz_per_block(t), 4.0);
}

}  // namespace
}  // namespace scalfrag::testing
