// CPD-ALS tests: recovery of planted low-rank structure, fit
// monotonicity, backend equivalence, prediction.

#include <gtest/gtest.h>

#include "scalfrag/cpd.hpp"
#include "tensor/generator.hpp"
#include "tensor/linalg.hpp"

namespace scalfrag {
namespace {

/// Build a sparse tensor that is *exactly* rank `r` as a sparse object:
/// a sum of r rank-one blocks with disjoint index supports (factor
/// columns are dense only inside their block). Unlike a sparse sample
/// of a dense low-rank tensor — which is NOT low-rank because the
/// implicit zeros break the structure — this is a tensor CPD-ALS at
/// rank ≥ r can fit essentially perfectly.
CooTensor planted_low_rank(std::vector<index_t> dims, index_t r,
                           index_t block_len, std::uint64_t seed) {
  Rng rng(seed);
  const order_t order = static_cast<order_t>(dims.size());
  for (index_t d : dims) {
    SF_CHECK(d >= r * block_len, "dims too small for disjoint blocks");
  }
  // Per-block, per-mode vectors over [f*block_len, (f+1)*block_len).
  std::vector<std::vector<std::vector<double>>> vecs(r);
  for (index_t f = 0; f < r; ++f) {
    vecs[f].resize(order);
    for (order_t m = 0; m < order; ++m) {
      vecs[f][m].resize(block_len);
      for (auto& v : vecs[f][m]) v = 0.25 + rng.next_double();
    }
  }
  CooTensor t(dims);
  std::vector<index_t> coord(order);
  std::vector<index_t> local(order);
  for (index_t f = 0; f < r; ++f) {
    // Enumerate the dense block via mixed-radix counting.
    std::fill(local.begin(), local.end(), 0);
    for (;;) {
      double v = 1.0;
      for (order_t m = 0; m < order; ++m) {
        coord[m] = f * block_len + local[m];
        v *= vecs[f][m][local[m]];
      }
      t.push(std::span<const index_t>(coord.data(), order),
             static_cast<value_t>(v));
      order_t m = 0;
      while (m < order && ++local[m] == block_len) {
        local[m] = 0;
        ++m;
      }
      if (m == order) break;
    }
  }
  t.sort_by_mode(0);
  return t;
}

TEST(Cpd, RecoversPlantedRank2Structure) {
  const CooTensor t = planted_low_rank({30, 25, 20}, 2, 8, 101);
  const auto cfg =
      ExecConfig{}.backend("coo_host").rank(4).max_iters(30).tol(1e-7);
  const CpdResult res = cpd_als(t, cfg);
  EXPECT_GT(res.final_fit, 0.95);
}

TEST(Cpd, FitHistoryIsMostlyIncreasing) {
  const CooTensor t = planted_low_rank({24, 24, 24}, 3, 8, 102);
  const auto cfg = ExecConfig{}.backend("coo_host").rank(4).max_iters(15).tol(
      0.0);  // tol 0 disables the early stop: run all iterations
  const CpdResult res = cpd_als(t, cfg);
  ASSERT_GE(res.fit_history.size(), 5u);
  // ALS is monotone in exact arithmetic; allow tiny float wiggle.
  for (std::size_t i = 1; i < res.fit_history.size(); ++i) {
    EXPECT_GT(res.fit_history[i], res.fit_history[i - 1] - 1e-3);
  }
}

TEST(Cpd, ToleranceStopsEarly) {
  const CooTensor t = planted_low_rank({20, 20, 20}, 1, 8, 103);
  const auto cfg =
      ExecConfig{}.backend("coo_host").rank(2).max_iters(50).tol(1e-3);
  const CpdResult res = cpd_als(t, cfg);
  EXPECT_LT(res.iterations, 50);
}

TEST(Cpd, FactorsAreColumnNormalized) {
  const CooTensor t = planted_low_rank({16, 16, 16}, 2, 8, 104);
  const auto cfg = ExecConfig{}.backend("coo_host").rank(3).max_iters(5);
  const CpdResult res = cpd_als(t, cfg);
  for (const auto& f : res.factors) {
    const auto norms = linalg::column_norms(f);
    for (double n : norms) EXPECT_NEAR(n, 1.0, 0.05);
  }
  for (double l : res.lambda) EXPECT_GT(l, 0.0);
}

TEST(Cpd, PredictReconstructsKnownEntries) {
  const CooTensor t = planted_low_rank({30, 25, 20}, 2, 8, 105);
  const auto cfg =
      ExecConfig{}.backend("coo_host").rank(4).max_iters(30).tol(1e-7);
  const CpdResult res = cpd_als(t, cfg);
  double err = 0.0, norm = 0.0;
  for (nnz_t e = 0; e < t.nnz(); e += 97) {
    const index_t coord[3] = {t.index(0, e), t.index(1, e), t.index(2, e)};
    const double p = cpd_predict(res, coord);
    err += (p - t.value(e)) * (p - t.value(e));
    norm += static_cast<double>(t.value(e)) * t.value(e);
  }
  EXPECT_LT(std::sqrt(err / norm), 0.25);
}

TEST(Cpd, BackendsAgreeOnFit) {
  const CooTensor t = planted_low_rank({20, 18, 16}, 2, 8, 106);
  const auto base = ExecConfig{}.rank(3).max_iters(8).tol(0.0);
  const CpdResult ref = cpd_als(t, ExecConfig{base}.backend("coo_host"));

  gpusim::SimDevice dev(gpusim::DeviceSpec::rtx3090());
  const CpdResult parti =
      cpd_als(t, ExecConfig{base}.backend("parti"), &dev);
  const CpdResult sf = cpd_als(t, ExecConfig{base}.backend("coo"), &dev);

  EXPECT_NEAR(ref.final_fit, parti.final_fit, 5e-3);
  EXPECT_NEAR(ref.final_fit, sf.final_fit, 5e-3);
  // Accelerated backends report simulated MTTKRP time.
  EXPECT_GT(parti.mttkrp_sim_ns, 0u);
  EXPECT_GT(sf.mttkrp_sim_ns, 0u);
  EXPECT_EQ(parti.mttkrp_calls, 8 * 3);
  EXPECT_LT(sf.mttkrp_sim_ns, parti.mttkrp_sim_ns);
}

TEST(Cpd, AcceleratedBackendRequiresDevice) {
  const CooTensor t = planted_low_rank({8, 8, 8}, 1, 4, 107);
  EXPECT_THROW(cpd_als(t, ExecConfig{}.backend("parti"), nullptr), Error);
}

TEST(Cpd, InputValidation) {
  CooTensor empty({4, 4});
  EXPECT_THROW(cpd_als(empty, ExecConfig{}.backend("coo_host")), Error);
  const CooTensor t = planted_low_rank({8, 8, 8}, 1, 4, 108);
  EXPECT_THROW(cpd_als(t, ExecConfig{}.backend("coo_host").rank(0)), Error);
  EXPECT_THROW(cpd_als(t, ExecConfig{}.backend("coo_host").max_iters(-1)),
               Error);
}

TEST(Cpd, PredictValidatesCoordinates) {
  const CooTensor t = planted_low_rank({8, 8, 8}, 1, 4, 109);
  const CpdResult res =
      cpd_als(t, ExecConfig{}.backend("coo_host").rank(2).max_iters(2));
  const index_t bad[3] = {100, 0, 0};
  EXPECT_THROW(cpd_predict(res, bad), Error);
  const index_t wrong_arity[2] = {0, 0};
  EXPECT_THROW(cpd_predict(res, wrong_arity), Error);
}

TEST(Cpd, BackendNames) {
  EXPECT_STREQ(cpd_backend_name(CpdBackend::Reference), "Reference");
  EXPECT_STREQ(cpd_backend_name(CpdBackend::ParTI), "ParTI");
  EXPECT_STREQ(cpd_backend_name(CpdBackend::ScalFrag), "ScalFrag");
}

TEST(Cpd, NonnegativeProjectionKeepsFactorsNonnegative) {
  const CooTensor t = planted_low_rank({16, 16, 16}, 2, 8, 111);
  const CpdResult res = cpd_als(
      t, ExecConfig{}.backend("coo_host").rank(3).max_iters(15).nonneg());
  for (const auto& f : res.factors) {
    for (std::size_t i = 0; i < f.size(); ++i) {
      EXPECT_GE(f.data()[i], 0.0f);
    }
  }
  // Planted data is non-negative, so the constrained fit stays strong.
  EXPECT_GT(res.final_fit, 0.9);
}

TEST(Cpd, NonnegativeFitNoBetterThanUnconstrained) {
  const CooTensor t = planted_low_rank({20, 20, 20}, 2, 8, 112);
  const auto free_cfg =
      ExecConfig{}.backend("coo_host").rank(3).max_iters(12).tol(0.0);
  const double free_fit = cpd_als(t, free_cfg).final_fit;
  const double nn_fit = cpd_als(t, ExecConfig{free_cfg}.nonneg()).final_fit;
  EXPECT_LE(nn_fit, free_fit + 1e-3);
  EXPECT_GT(nn_fit, 0.5);
}

TEST(Cpd, WorksOn4dTensors) {
  const CooTensor t = planted_low_rank({12, 10, 8, 6}, 2, 3, 110);
  const CpdResult res = cpd_als(
      t, ExecConfig{}.backend("coo_host").rank(3).max_iters(20).tol(1e-6));
  EXPECT_GT(res.final_fit, 0.9);
  EXPECT_EQ(res.factors.size(), 4u);
}

}  // namespace
}  // namespace scalfrag
