// CSF format tests: tree structure against hand-computed fixtures and
// MTTKRP equivalence with the COO reference.

#include <gtest/gtest.h>

#include "tensor/csf.hpp"
#include "tensor/dense_matrix.hpp"
#include "tensor/generator.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {
namespace {

// The paper's Fig. 2 example shape: a 4×4×3-ish tensor with clustered
// fibers so compression is visible.
CooTensor fig2_like() {
  CooTensor t({4, 4, 3});
  t.push({0, 0, 0}, 1.0f);
  t.push({0, 0, 2}, 2.0f);
  t.push({0, 1, 1}, 3.0f);
  t.push({1, 2, 0}, 4.0f);
  t.push({1, 2, 1}, 5.0f);
  t.push({1, 2, 2}, 6.0f);
  t.push({3, 3, 0}, 7.0f);
  return t;
}

TEST(Csf, BuildsExpectedTreeForMode0) {
  const CsfTensor c = CsfTensor::build(fig2_like(), 0);
  EXPECT_EQ(c.order(), 3);
  EXPECT_EQ(c.nnz(), 7u);
  ASSERT_EQ(c.mode_order(), (std::vector<order_t>{0, 1, 2}));

  // Slices with nnz: 0, 1, 3.
  ASSERT_EQ(c.num_nodes(0), 3u);
  EXPECT_EQ(c.fids(0), (std::vector<index_t>{0, 1, 3}));

  // Fibers: (0,0) (0,1) (1,2) (3,3).
  ASSERT_EQ(c.num_nodes(1), 4u);
  EXPECT_EQ(c.fids(1), (std::vector<index_t>{0, 1, 2, 3}));
  EXPECT_EQ(c.fptr(0), (std::vector<nnz_t>{0, 2, 3, 4}));

  // Leaves: one per nnz.
  ASSERT_EQ(c.num_nodes(2), 7u);
  EXPECT_EQ(c.fptr(1), (std::vector<nnz_t>{0, 2, 3, 6, 7}));
  EXPECT_EQ(c.fids(2), (std::vector<index_t>{0, 2, 1, 0, 1, 2, 0}));
}

TEST(Csf, RootModeBecomesLevelZero) {
  const CsfTensor c = CsfTensor::build(fig2_like(), 2);
  EXPECT_EQ(c.mode_order(), (std::vector<order_t>{2, 0, 1}));
  // Mode-2 values present: 0,1,2 → 3 slices.
  EXPECT_EQ(c.num_nodes(0), 3u);
}

TEST(Csf, CompressesClusteredTensors) {
  // Long fibers: many nnz share (i, j) prefixes.
  CooTensor t({8, 8, 512});
  for (index_t i = 0; i < 8; ++i) {
    for (index_t k = 0; k < 256; ++k) {
      t.push({i, static_cast<index_t>(i % 4), k}, 1.0f);
    }
  }
  const CsfTensor c = CsfTensor::build(t, 0);
  EXPECT_LT(c.bytes(), t.bytes());
}

TEST(Csf, EmptyTensor) {
  CooTensor t({3, 3, 3});
  const CsfTensor c = CsfTensor::build(t, 0);
  EXPECT_EQ(c.nnz(), 0u);
  EXPECT_EQ(c.num_nodes(0), 0u);
}

TEST(Csf, MttkrpMatchesReferenceOnFixture) {
  const CooTensor t = fig2_like();
  Rng rng(3);
  FactorList factors;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix f(t.dim(m), 8);
    f.randomize(rng);
    factors.push_back(std::move(f));
  }
  const DenseMatrix expect = mttkrp_coo_ref(t, factors, 0);
  const CsfTensor c = CsfTensor::build(t, 0);
  DenseMatrix got(t.dim(0), 8);
  mttkrp_csf(c, factors, got);
  EXPECT_LT(DenseMatrix::max_abs_diff(expect, got), 1e-4);
}

// Parameterized equivalence: CSF MTTKRP == COO reference over orders,
// modes, and ranks.
class CsfMttkrpProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CsfMttkrpProperty, MatchesCooReference) {
  const auto [order, mode, rank] = GetParam();
  if (mode >= order) GTEST_SKIP();
  GeneratorConfig g;
  for (int m = 0; m < order; ++m) {
    g.dims.push_back(24 + 8 * m);
    g.skew.push_back(1.5);
  }
  g.nnz = 800;
  g.seed = 1000 + order * 100 + mode * 10 + rank;
  const CooTensor t = generate_coo(g);

  Rng rng(g.seed);
  FactorList factors;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix f(t.dim(m), static_cast<index_t>(rank));
    f.randomize(rng);
    factors.push_back(std::move(f));
  }

  const DenseMatrix expect =
      mttkrp_coo_ref(t, factors, static_cast<order_t>(mode));
  const CsfTensor c = CsfTensor::build(t, static_cast<order_t>(mode));
  DenseMatrix got(t.dim(static_cast<order_t>(mode)),
                  static_cast<index_t>(rank));
  mttkrp_csf(c, factors, got);
  EXPECT_LT(DenseMatrix::max_abs_diff(expect, got), 2e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CsfMttkrpProperty,
    ::testing::Combine(::testing::Values(2, 3, 4), ::testing::Values(0, 1, 2, 3),
                       ::testing::Values(4, 16)));

}  // namespace
}  // namespace scalfrag
