// CSF tiled backend: tiling invariants (every leaf in exactly one
// tile, budgets respected, shared-slice flags consistent), schedule
// conformance against the COO reference across variants × threads ×
// orders, run-to-run determinism, gather-view bit-identity, the
// serial/COO bit-identity contract, the duplicate-coordinate
// accumulation regression, and the CsfPlan replay path.

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "scalfrag/csf_plan.hpp"
#include "tensor/csf_tiled.hpp"
#include "tensor/generator.hpp"
#include "tensor/mode_views.hpp"
#include "tensor/mttkrp_par.hpp"
#include "tensor/mttkrp_ref.hpp"

namespace scalfrag {
namespace {

CooTensor gen_tensor(int order, nnz_t nnz, std::uint64_t seed) {
  GeneratorConfig g;
  for (int m = 0; m < order; ++m) {
    g.dims.push_back(16 + 4 * m);
    g.skew.push_back(1.5);
  }
  g.nnz = nnz;
  g.seed = seed;
  return generate_coo(g);
}

FactorList random_factors(const CooTensor& t, index_t rank,
                          std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

/// Fully sorted copy with exact coordinate duplicates removed — the
/// precondition of the serial bit-identity contract.
CooTensor dedup(const CooTensor& t) {
  CooTensor s = t;
  s.sort_by_mode(0);
  CooTensor out(s.dims());
  std::vector<index_t> c(s.order());
  for (nnz_t e = 0; e < s.nnz(); ++e) {
    bool same = e > 0;
    for (order_t m = 0; m < s.order() && same; ++m) {
      same = s.index(m, e) == s.index(m, e - 1);
    }
    if (same) continue;
    for (order_t m = 0; m < s.order(); ++m) c[m] = s.index(m, e);
    out.push(std::span<const index_t>(c.data(), c.size()), s.value(e));
  }
  return out;
}

DenseMatrix run_tiled(const CsfTensor& c, const FactorList& f, index_t rank,
                      CsfTiledVariant variant, std::size_t threads,
                      nnz_t budget) {
  DenseMatrix out(c.dims()[c.mode_order()[0]], rank);
  CsfTiledOptions opt;
  opt.variant = variant;
  opt.fiber_budget = budget;
  opt.host.threads = threads;
  opt.host.grain_nnz = 1;  // small test tensors must still tile
  mttkrp_csf_tiled(c, f, out, /*accumulate=*/false, opt);
  return out;
}

bool bit_equal(const DenseMatrix& a, const DenseMatrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(value_t)) == 0;
}

// --- tiling invariants -------------------------------------------------

TEST(CsfTiledTiling, PartitionsEveryLeafExactlyOnce) {
  for (int order : {1, 2, 3, 4}) {
    const CooTensor t = gen_tensor(order, 600, 77 + order);
    const CsfTensor c = CsfTensor::build(t, 0);
    const nnz_t units =
        c.order() >= 2 ? c.num_nodes(1) : c.num_nodes(0);
    for (nnz_t budget : {nnz_t{1}, nnz_t{2}, nnz_t{5}, nnz_t{1} << 20}) {
      const CsfTiling tl = CsfTiling::build(c, budget);
      ASSERT_FALSE(tl.tiles.empty());
      EXPECT_EQ(tl.unit_budget, budget);
      nnz_t prev_unit = 0, prev_leaf = 0;
      for (const CsfTile& tile : tl.tiles) {
        // Contiguous unit/leaf cover: no gap, no overlap.
        EXPECT_EQ(tile.unit_begin, prev_unit);
        EXPECT_EQ(tile.leaf_begin, prev_leaf);
        EXPECT_GT(tile.units(), 0u);
        EXPECT_LE(tile.units(), budget);
        EXPECT_LT(tile.slice_begin, tile.slice_end);
        EXPECT_LE(tile.leaf_begin, tile.leaf_end);
        prev_unit = tile.unit_end;
        prev_leaf = tile.leaf_end;
      }
      EXPECT_EQ(prev_unit, units);
      EXPECT_EQ(prev_leaf, c.nnz());  // every nnz in exactly one tile
    }
  }
}

TEST(CsfTiledTiling, SharedFlagMatchesSliceBoundaries) {
  const CooTensor t = gen_tensor(3, 500, 99);
  const CsfTensor c = CsfTensor::build(t, 0);
  const CsfTiling tl = CsfTiling::build(c, 2);
  ASSERT_GT(tl.tiles.size(), 1u);
  const auto& f0 = c.fptr(0);
  for (std::size_t i = 0; i < tl.tiles.size(); ++i) {
    const CsfTile& tile = tl.tiles[i];
    // slice_begin really contains the tile's first fiber...
    EXPECT_LE(f0[tile.slice_begin], tile.unit_begin);
    EXPECT_GT(f0[tile.slice_begin + 1], tile.unit_begin);
    // ...and the flag is set exactly when that fiber is not the
    // slice's first, which for a contiguous tiling is the same as
    // overlapping the previous tile's last slice.
    EXPECT_EQ(tile.first_slice_shared, tile.unit_begin > f0[tile.slice_begin]);
    const bool overlaps_prev =
        i > 0 && tl.tiles[i - 1].slice_end - 1 == tile.slice_begin;
    EXPECT_EQ(tile.first_slice_shared, overlaps_prev);
  }
}

TEST(CsfTiledTiling, AutoBudgetIsClampedAndCoversAllUnits) {
  const CooTensor t = gen_tensor(3, 400, 17);
  const CsfTensor c = CsfTensor::build(t, 0);
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const nnz_t b = CsfTiling::auto_budget(c, threads);
    EXPECT_GE(b, 1u);
    EXPECT_LE(b, 4096u);
    const CsfTiling tl = CsfTiling::build(c, b);
    EXPECT_EQ(tl.tiles.back().unit_end, c.num_nodes(1));
  }
}

TEST(CsfTiledTiling, RejectsZeroBudget) {
  const CooTensor t = gen_tensor(2, 50, 5);
  const CsfTensor c = CsfTensor::build(t, 0);
  EXPECT_THROW(CsfTiling::build(c, 0), Error);
}

// --- conformance over variants × threads × orders ----------------------

class CsfTiledConformance
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CsfTiledConformance, MatchesCooReference) {
  const auto [variant, threads, order] = GetParam();
  const CooTensor t = gen_tensor(order, 700, 1234 + order);
  const order_t mode = static_cast<order_t>(order > 1 ? 1 : 0);
  const index_t rank = 9;  // odd rank: exercises the SIMD tail lanes
  const FactorList f = random_factors(t, rank, 5);
  const DenseMatrix want = mttkrp_coo_ref(t, f, mode);
  const CsfTensor c = CsfTensor::build(t, mode);
  const DenseMatrix got =
      run_tiled(c, f, rank, static_cast<CsfTiledVariant>(variant),
                static_cast<std::size_t>(threads), /*budget=*/4);
  EXPECT_LT(DenseMatrix::max_abs_diff(want, got), 2e-3);
}

INSTANTIATE_TEST_SUITE_P(
    CsfTiledSweep, CsfTiledConformance,
    ::testing::Combine(::testing::Values(0, 1, 2),  // serial, sync, coop
                       ::testing::Values(1, 4), ::testing::Values(1, 2, 3, 4)));

// Both parallel schedules are deterministic for a fixed tiling: two
// runs must agree BIT-FOR-BIT, not just within tolerance.
TEST(CsfTiledDeterminism, ParallelSchedulesAreRunToRunBitIdentical) {
  const CooTensor t = gen_tensor(3, 900, 2024);
  const FactorList f = random_factors(t, 16, 3);
  const CsfTensor c = CsfTensor::build(t, 0);
  for (CsfTiledVariant v : {CsfTiledVariant::Sync, CsfTiledVariant::Coop}) {
    const DenseMatrix a = run_tiled(c, f, 16, v, 4, 3);
    const DenseMatrix b = run_tiled(c, f, 16, v, 4, 3);
    EXPECT_TRUE(bit_equal(a, b)) << csf_tiled_variant_name(v);
  }
}

TEST(CsfTiledAccumulate, AddsOntoExistingOutput) {
  const CooTensor t = gen_tensor(3, 300, 31);
  const FactorList f = random_factors(t, 8, 9);
  const CsfTensor c = CsfTensor::build(t, 0);
  const DenseMatrix once = mttkrp_coo_ref(t, f, 0);
  DenseMatrix out = once;  // pre-seeded
  CsfTiledOptions opt;
  opt.variant = CsfTiledVariant::Sync;
  opt.fiber_budget = 3;
  opt.host.threads = 4;
  opt.host.grain_nnz = 1;
  mttkrp_csf_tiled(c, f, out, /*accumulate=*/true, opt);
  for (index_t r = 0; r < out.rows(); ++r) {
    for (index_t col = 0; col < out.cols(); ++col) {
      EXPECT_NEAR(out(r, col), 2.0f * once(r, col), 2e-3);
    }
  }
}

// --- gather-view identity ----------------------------------------------

TEST(CsfTiledViews, GatherSpanBuildBitIdenticalToMaterialized) {
  const CooTensor t = gen_tensor(3, 800, 321);
  const FactorList f = random_factors(t, 8, 7);
  const ModeViews views(t);
  for (order_t mode = 0; mode < t.order(); ++mode) {
    const CooSpan v = views.view(mode);
    const CsfTensor from_view = CsfTensor::build(v, mode);

    const CooTensor mat = v.materialize();
    CooSpan flat(mat);
    flat.assume_sorted_by(mode);
    const CsfTensor from_copy = CsfTensor::build(flat, mode);

    const DenseMatrix a =
        run_tiled(from_view, f, 8, CsfTiledVariant::Sync, 4, 3);
    const DenseMatrix b =
        run_tiled(from_copy, f, 8, CsfTiledVariant::Sync, 4, 3);
    EXPECT_TRUE(bit_equal(a, b)) << "mode " << static_cast<int>(mode);
  }
}

TEST(CsfTiledViews, SpanBuildRejectsUnsortedInput) {
  CooTensor t({4, 4});
  t.push({3, 0}, 1.0f);
  t.push({0, 1}, 2.0f);  // not sorted by mode 0
  CooSpan v(t);
  EXPECT_THROW(CsfTensor::build(v, 0), Error);
}

// --- serial bit-identity + duplicate accumulation ----------------------

TEST(CsfTiledBitIdentity, SerialWalkMatchesCooSerialExactly) {
  const CooTensor base = dedup(gen_tensor(3, 700, 555));
  const FactorList f = random_factors(base, 10, 13);
  for (order_t mode = 0; mode < base.order(); ++mode) {
    CooTensor t = base;
    t.sort_by_mode(mode);
    const CsfTensor c = CsfTensor::build(t, mode);
    const DenseMatrix got =
        run_tiled(c, f, 10, CsfTiledVariant::Serial, 1, 0);

    HostExecParams serial;
    serial.strategy = HostStrategy::Serial;
    serial.threads = 1;
    serial.grain_nnz = 1;
    const DenseMatrix want = mttkrp_coo_par(t, f, mode, serial);
    EXPECT_TRUE(bit_equal(got, want)) << "mode " << static_cast<int>(mode);
  }
}

// PR 2 regression: repeated coordinates stay distinct leaves and every
// occurrence accumulates — including entries canceling to zero.
TEST(CsfTiledDuplicates, AccumulatesRepeatedCoordinates) {
  CooTensor t({4, 5, 6});
  t.push({1, 2, 3}, 0.5f);
  t.push({1, 2, 3}, 0.25f);
  t.push({1, 2, 3}, 0.125f);
  t.push({0, 0, 0}, 1.0f);
  t.push({3, 4, 5}, 2.0f);
  t.push({3, 4, 5}, -2.0f);
  const FactorList f = random_factors(t, 8, 11);
  for (order_t mode = 0; mode < t.order(); ++mode) {
    const DenseMatrix want = mttkrp_coo_ref(t, f, mode);
    const CsfTensor c = CsfTensor::build(t, mode);
    EXPECT_EQ(c.num_nodes(c.order() - 1), t.nnz());  // one leaf per entry
    for (CsfTiledVariant v : {CsfTiledVariant::Serial, CsfTiledVariant::Sync,
                              CsfTiledVariant::Coop}) {
      const DenseMatrix got = run_tiled(c, f, 8, v, 4, 1);
      EXPECT_LT(DenseMatrix::max_abs_diff(want, got), 1e-4)
          << csf_tiled_variant_name(v) << " mode " << static_cast<int>(mode);
    }
  }
}

TEST(CsfTiledEmpty, EmptyTensorYieldsZeroOutput) {
  CooTensor t({3, 4, 5});
  const FactorList f = random_factors(t, 8, 1);
  const CsfTensor c = CsfTensor::build(t, 0);
  const DenseMatrix out = run_tiled(c, f, 8, CsfTiledVariant::Sync, 4, 2);
  for (index_t r = 0; r < out.rows(); ++r) {
    for (index_t col = 0; col < out.cols(); ++col) {
      EXPECT_EQ(out(r, col), 0.0f);
    }
  }
}

// --- CsfPlan replay ----------------------------------------------------

TEST(CsfTiledPlan, BuildsAllModesAndMatchesReference) {
  const CooTensor t = gen_tensor(3, 600, 808);
  const FactorList f = random_factors(t, 8, 2);
  CsfPlan plan(t, ExecConfig{}.backend("csf_tiled_coop"));
  EXPECT_EQ(plan.order(), t.order());
  EXPECT_EQ(plan.variant(), CsfTiledVariant::Coop);
  EXPECT_GT(plan.resident_bytes(), 0u);
  EXPECT_GE(plan.prepare_seconds(), 0.0);
  for (order_t m = 0; m < t.order(); ++m) {
    const DenseMatrix want = mttkrp_coo_ref(t, f, m);
    const DenseMatrix got = plan.run(f, m);
    EXPECT_LT(DenseMatrix::max_abs_diff(want, got), 2e-3)
        << "mode " << static_cast<int>(m);
  }
}

TEST(CsfTiledPlan, RejectsMultiDeviceConfigs) {
  const CooTensor t = gen_tensor(3, 100, 6);
  EXPECT_THROW(CsfPlan(t, ExecConfig{}.backend("csf_tiled").devices(2)),
               Error);
}

}  // namespace
}  // namespace scalfrag
