// Cross-validation and feature-importance tests.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ml/cv.hpp"
#include "ml/dtree.hpp"
#include "ml/metrics.hpp"

namespace scalfrag::ml {
namespace {

Dataset linearish_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d(3);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(0, 1), b = rng.uniform(0, 1),
                 c = rng.uniform(0, 1);
    const double row[3] = {a, b, c};
    d.add(row, 4.0 * a + 0.02 * rng.normal());  // only feature 0 matters
  }
  return d;
}

TEST(CrossValidation, EveryRowTestedExactlyOnce) {
  const Dataset d = linearish_data(103, 1);  // deliberately non-divisible
  const auto cv = k_fold_cv(
      d, 5, [] { return std::make_unique<DecisionTreeRegressor>(); }, rmse);
  ASSERT_EQ(cv.fold_metric.size(), 5u);
  // Fold sizes: 4×20 + 23 = 103 — just verify metrics are finite and
  // the summary stats are consistent.
  double mean = 0.0;
  for (double m : cv.fold_metric) {
    EXPECT_TRUE(std::isfinite(m));
    mean += m;
  }
  EXPECT_NEAR(cv.mean, mean / 5.0, 1e-12);
  EXPECT_GE(cv.stddev, 0.0);
  EXPECT_GT(cv.total_train_seconds, 0.0);
}

TEST(CrossValidation, GoodModelScoresWellAcrossFolds) {
  const Dataset d = linearish_data(400, 2);
  const auto cv = k_fold_cv(
      d, 4, [] { return std::make_unique<DecisionTreeRegressor>(); }, rmse);
  // Target stddev is ~1.15 (uniform 0..4); a fitted tree should do far
  // better on every fold.
  for (double m : cv.fold_metric) EXPECT_LT(m, 0.4);
}

TEST(CrossValidation, Validation) {
  const Dataset d = linearish_data(10, 3);
  const auto mk = [] {
    return std::unique_ptr<Regressor>(new DecisionTreeRegressor());
  };
  EXPECT_THROW(k_fold_cv(d, 1, mk, rmse), Error);
  EXPECT_THROW(k_fold_cv(d, 11, mk, rmse), Error);
}

TEST(CrossValidation, SeedControlsFoldAssignment) {
  const Dataset d = linearish_data(120, 4);
  const auto mk = [] {
    return std::unique_ptr<Regressor>(new DecisionTreeRegressor());
  };
  const auto a = k_fold_cv(d, 3, mk, rmse, 7);
  const auto b = k_fold_cv(d, 3, mk, rmse, 7);
  const auto c = k_fold_cv(d, 3, mk, rmse, 8);
  EXPECT_EQ(a.fold_metric, b.fold_metric);
  EXPECT_NE(a.fold_metric, c.fold_metric);
}

TEST(FeatureImportance, ConcentratesOnInformativeFeature) {
  const Dataset d = linearish_data(500, 5);
  DecisionTreeRegressor tree;
  tree.fit(d);
  const auto& imp = tree.feature_importance();
  ASSERT_EQ(imp.size(), 3u);
  double sum = 0.0;
  for (double g : imp) {
    EXPECT_GE(g, 0.0);
    sum += g;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(imp[0], 0.9);  // the only signal-bearing feature
}

TEST(FeatureImportance, SingleLeafIsAllZero) {
  Dataset d(2);
  const double r[2] = {1.0, 2.0};
  d.add(r, 5.0);
  d.add(r, 5.0);
  DecisionTreeRegressor tree;
  tree.fit(d);
  for (double g : tree.feature_importance()) EXPECT_DOUBLE_EQ(g, 0.0);
}

}  // namespace
}  // namespace scalfrag::ml
