// Differential-checker tests: the conformance table agrees with the
// oracle on every corpus archetype, and a deliberately broken kernel
// is both caught and shrunk to a tiny repro.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "testing/corpus.hpp"
#include "testing/diff_check.hpp"
#include "testing/oracle.hpp"

namespace scalfrag::testing {
namespace {

// A realistically broken kernel: the reference computation with an
// off-by-one loop bound, dropping the final entry's contribution.
DenseMatrix broken_mttkrp(const CooTensor& t, const FactorList& f,
                          order_t mode) {
  DenseMatrix out = mttkrp_coo_ref(t, f, mode);
  if (t.nnz() == 0) return out;
  const nnz_t e = t.nnz() - 1;
  for (index_t c = 0; c < out.cols(); ++c) {
    value_t term = t.value(e);
    for (order_t m = 0; m < t.order(); ++m) {
      if (m != mode) term *= f[m](t.index(m, e), c);
    }
    out(t.index(mode, e), c) -= term;
  }
  return out;
}

TEST(DiffCheck, TableCoversEveryPathFamily) {
  const auto& paths = conformance_paths();
  EXPECT_GE(paths.size(), 15u);
  auto has = [&](const std::string& needle) {
    for (const auto& p : paths) {
      if (p.name.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  for (const char* family :
       {"coo_ref", "coo_par", "csf", "bcsf", "hicoo", "fcoo", "parti",
        "pipeline", "hybrid"}) {
    EXPECT_TRUE(has(family)) << family << " missing from the table";
  }
}

TEST(DiffCheck, AllPathsAgreeOnEveryArchetype) {
  for (const auto& name : corpus_archetypes()) {
    const CooTensor t = make_archetype(name, 2024, 0);
    for (order_t mode = 0; mode < t.order(); ++mode) {
      DiffOptions opt;
      opt.rank = 5;
      const DiffReport rep = check_all_paths(t, mode, opt);
      EXPECT_TRUE(rep.ok())
          << name << " mode " << int(mode) << ": "
          << (rep.divergences.empty() ? "" : rep.divergences.front().path);
      EXPECT_GE(rep.paths_run, conformance_paths().size());
    }
  }
}

TEST(DiffCheck, UnsortedInputAlsoRunsRawOrderPaths) {
  const CooTensor t = make_archetype("unsorted", 7, 0);
  ASSERT_FALSE(t.is_sorted_by_mode(0));
  const DiffReport rep = check_all_paths(t, 0);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.paths_run, conformance_paths().size() + 2);
}

TEST(DiffCheck, PathFilterRestrictsTheTable) {
  const CooTensor t = make_archetype("uniform", 7, 0);
  DiffOptions opt;
  opt.path_filter = "pipeline";
  const DiffReport rep = check_all_paths(t, 0, opt);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.paths_run, 8u);  // 7 pipeline/* rows + views/pipeline/s3x2
}

TEST(DiffCheck, TableCoversScheduleAndShmemCombos) {
  // The fuzz surface must include explicit launch schedules, the
  // global-memory kernel variant, the budget planner, and the hybrid
  // combination of all of them.
  std::vector<std::string> names;
  for (const auto& p : conformance_paths()) names.push_back(p.name);
  for (const char* want :
       {"pipeline/s4x2/noshmem", "pipeline/s3x2/scheduled",
        "pipeline/budget", "hybrid/mixed/scheduled_noshmem"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << "missing conformance path " << want;
  }
}

TEST(DiffCheck, ValidatesArguments) {
  const CooTensor t = make_archetype("uniform", 7, 0);
  EXPECT_THROW(check_all_paths(t, t.order()), Error);
  DiffOptions opt;
  opt.rank = 0;
  EXPECT_THROW(check_all_paths(t, 0, opt), Error);
}

TEST(DiffCheck, FactorsAreDeterministicInSeed) {
  const CooTensor t = make_archetype("uniform", 7, 0);
  const FactorList a = conformance_factors(t, 6, 99);
  const FactorList b = conformance_factors(t, 6, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t m = 0; m < a.size(); ++m) {
    for (index_t i = 0; i < a[m].rows(); ++i) {
      for (index_t c = 0; c < a[m].cols(); ++c) {
        ASSERT_EQ(a[m](i, c), b[m](i, c));
      }
    }
  }
}

TEST(DiffCheck, HealthyTensorHasFalsePredicate) {
  const CooTensor t = make_archetype("mega_slice", 11, 0);
  EXPECT_FALSE(divergence_predicate(0, {})(t));
}

// The acceptance-criteria test: a mutated kernel must be caught by the
// oracle comparison and shrunk by the greedy minimizer to a handful of
// non-zeros (<= 8 nnz).
TEST(DiffCheck, BrokenKernelIsCaughtAndShrunkToTinyRepro) {
  const CooTensor t = make_archetype("uniform", 31337, 1);
  const order_t mode = 0;
  DiffOptions opt;
  opt.rank = 8;

  auto broken_fails = [&](const CooTensor& cand) {
    const FactorList f =
        conformance_factors(cand, opt.rank, opt.factor_seed);
    const OracleResult oracle = mttkrp_oracle(cand, f, mode);
    const DenseMatrix out = broken_mttkrp(cand, f, mode);
    return compare_to_oracle(oracle, out, cand.order(), opt.tolerance)
        .diverged;
  };

  ASSERT_TRUE(broken_fails(t)) << "mutated kernel was not caught";

  const CooTensor minimal = shrink_tensor(t, broken_fails);
  EXPECT_LE(minimal.nnz(), 8u)
      << "shrinker left " << minimal.nnz() << " nnz";
  EXPECT_GE(minimal.nnz(), 1u);
  EXPECT_TRUE(broken_fails(minimal)) << "shrunk repro no longer fails";
  // 1-minimality: the shrinker only stops when no single removal fails.
  EXPECT_EQ(minimal.dims(), t.dims()) << "shrinking must preserve dims";
}

TEST(DiffCheck, ShrinkerRejectsPassingInput) {
  const CooTensor t = make_archetype("uniform", 7, 0);
  EXPECT_THROW(shrink_tensor(t, [](const CooTensor&) { return false; }),
               Error);
}

TEST(DiffCheck, ShrinkerIsolatesTheSingleBadEntry) {
  // A kernel wrong only for entries in slice 3 of mode 0: the minimal
  // repro must contain slice-3 entries and nothing else removable.
  const CooTensor t = make_archetype("uniform", 5, 1);
  const order_t mode = 0;
  auto fails = [&](const CooTensor& cand) {
    const FactorList f = conformance_factors(cand, 4, 1);
    const OracleResult oracle = mttkrp_oracle(cand, f, mode);
    DenseMatrix out = mttkrp_coo_ref(cand, f, mode);
    bool touched = false;
    for (nnz_t e = 0; e < cand.nnz(); ++e) touched |= cand.index(0, e) == 3;
    if (touched && out.rows() > 3) {
      for (index_t c = 0; c < out.cols(); ++c) out(3, c) += 1.0f;
    }
    return compare_to_oracle(oracle, out, cand.order()).diverged;
  };
  ASSERT_TRUE(fails(t));
  const CooTensor minimal = shrink_tensor(t, fails);
  EXPECT_EQ(minimal.nnz(), 1u);
  EXPECT_EQ(minimal.index(0, 0), 3u);
}

}  // namespace
}  // namespace scalfrag::testing
