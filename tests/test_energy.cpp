// Energy-model tests: busy/idle decomposition and the overlap-saves-
// energy property the model exists to expose.

#include <gtest/gtest.h>

#include "gpusim/energy.hpp"

namespace scalfrag::gpusim {
namespace {

KernelProfile some_kernel() {
  KernelProfile p;
  p.work_items = 1 << 18;
  p.flops = 1 << 24;
  p.dram_bytes = 64 << 20;
  return p;
}

TEST(Energy, BusyJoulesFollowTimeline) {
  SimDevice dev(DeviceSpec::rtx3090());
  dev.host_task(0, 1'000'000'000, nullptr);  // exactly 1 s of host work
  const PowerModel pm;
  const EnergyEstimate e = estimate_energy(dev, pm);
  EXPECT_NEAR(e.host_j, pm.host_w, 1e-9);
  EXPECT_NEAR(e.idle_j, pm.idle_w, 1e-9);
  EXPECT_DOUBLE_EQ(e.kernel_j, 0.0);
  EXPECT_DOUBLE_EQ(e.transfer_j, 0.0);
  EXPECT_NEAR(e.total_j(), pm.host_w + pm.idle_w, 1e-9);
}

TEST(Energy, EveryOpKindBills) {
  SimDevice dev(DeviceSpec::rtx3090());
  dev.memcpy_h2d(0, 32 << 20, nullptr);
  dev.launch_kernel(0, {1024, 256, 0}, some_kernel(), nullptr);
  dev.memcpy_d2h(0, 32 << 20, nullptr);
  dev.host_task(0, 5000, nullptr);
  const EnergyEstimate e = estimate_energy(dev);
  EXPECT_GT(e.kernel_j, 0.0);
  EXPECT_GT(e.transfer_j, 0.0);
  EXPECT_GT(e.host_j, 0.0);
  EXPECT_GT(e.idle_j, 0.0);
}

TEST(Energy, OverlapSavesIdleEnergyOnly) {
  // Same ops serialized vs overlapped: busy joules equal, idle joules
  // (∝ makespan) shrink.
  const auto run = [&](bool overlap) {
    SimDevice dev(DeviceSpec::rtx3090());
    const StreamId s1 = dev.create_stream();
    const StreamId s2 = overlap ? dev.create_stream() : s1;
    dev.memcpy_h2d(s1, 256 << 20, nullptr);
    dev.launch_kernel(s2, {1024, 256, 0}, some_kernel(), nullptr);
    return estimate_energy(dev);
  };
  const EnergyEstimate serial = run(false);
  const EnergyEstimate piped = run(true);
  EXPECT_NEAR(serial.kernel_j, piped.kernel_j, 1e-12);
  EXPECT_NEAR(serial.transfer_j, piped.transfer_j, 1e-12);
  EXPECT_LT(piped.idle_j, serial.idle_j);
  EXPECT_LT(piped.total_j(), serial.total_j());
}

TEST(Energy, ZeroTimelineIsZeroEnergy) {
  SimDevice dev(DeviceSpec::rtx3090());
  const EnergyEstimate e = estimate_energy(dev);
  EXPECT_DOUBLE_EQ(e.total_j(), 0.0);
}

}  // namespace
}  // namespace scalfrag::gpusim
