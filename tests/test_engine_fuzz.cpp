// Randomized scheduling invariants for the discrete-event engine: for
// arbitrary op sequences across arbitrary streams, the produced
// timeline must satisfy the CUDA-model contracts — per-stream FIFO,
// per-engine mutual exclusion, event ordering, and functional bodies
// executing exactly once each.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.hpp"
#include "gpusim/engine.hpp"

namespace scalfrag::gpusim {
namespace {

DeviceSpec fast_spec() {
  DeviceSpec s = DeviceSpec::rtx3090();
  s.pcie_latency_us = 1.0;
  return s;
}

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, TimelineInvariantsHold) {
  Rng rng(GetParam());
  SimDevice dev(fast_spec());

  const int n_streams = 1 + static_cast<int>(rng.next_below(6));
  std::vector<StreamId> streams{0};
  for (int i = 1; i < n_streams; ++i) streams.push_back(dev.create_stream());

  KernelProfile prof;
  prof.work_items = 1 << 12;
  prof.flops = 1 << 18;
  prof.dram_bytes = 1 << 18;

  int executed = 0;
  std::vector<EventId> events;
  const int n_ops = 60 + static_cast<int>(rng.next_below(60));
  for (int i = 0; i < n_ops; ++i) {
    const StreamId s = streams[rng.next_below(streams.size())];
    switch (rng.next_below(6)) {
      case 0:
      case 1:
        dev.memcpy_h2d(s, 1024 + rng.next_below(1 << 20),
                       [&] { ++executed; });
        break;
      case 2:
        dev.memcpy_d2h(s, 1024 + rng.next_below(1 << 20),
                       [&] { ++executed; });
        break;
      case 3:
        dev.launch_kernel(s, {64u + static_cast<std::uint32_t>(
                                        rng.next_below(1024)),
                              256, 0},
                          prof, [&] { ++executed; });
        break;
      case 4:
        dev.host_task(s, 100 + rng.next_below(100000), [&] { ++executed; });
        break;
      default:
        if (!events.empty() && rng.next_below(2) == 0) {
          dev.wait_event(s, events[rng.next_below(events.size())]);
        } else {
          events.push_back(dev.record_event(s));
        }
        break;
    }
  }

  const auto& tl = dev.timeline();

  // 1. Every functional body ran exactly once (count matches op count).
  EXPECT_EQ(static_cast<std::size_t>(executed), tl.size());

  // 2. Per-stream FIFO: ops of one stream are non-overlapping and in
  //    submission order.
  std::map<int, sim_ns> stream_cursor;
  for (const auto& r : tl) {
    EXPECT_GE(r.start, stream_cursor[r.stream]) << "stream FIFO violated";
    EXPECT_GE(r.end, r.start);
    stream_cursor[r.stream] = r.end;
  }

  // 3. Per-engine mutual exclusion: ops sharing an engine never overlap
  //    (and are served in submission order).
  std::map<OpKind, sim_ns> engine_cursor;
  for (const auto& r : tl) {
    EXPECT_GE(r.start, engine_cursor[r.kind]) << "engine overlap";
    engine_cursor[r.kind] = r.end;
  }

  // 4. Makespan consistency.
  sim_ns max_end = 0;
  for (const auto& r : tl) max_end = std::max(max_end, r.end);
  EXPECT_EQ(dev.synchronize(), max_end);
  const auto b = dev.breakdown();
  EXPECT_EQ(b.makespan, max_end);
  EXPECT_GE(b.serial_sum(), max_end);  // overlap can only shrink makespan
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

}  // namespace
}  // namespace scalfrag::gpusim
