// ExecConfig tests: the unified driver configuration — builder
// coverage, validation, the HostExecParams bridge — and proof that the
// deprecated legacy structs are pure shims (bit-identical execution
// through either surface).

#include <gtest/gtest.h>

#include <cstring>

#include "scalfrag/cpd.hpp"
#include "scalfrag/exec_config.hpp"
#include "scalfrag/multi_pipeline.hpp"
#include "scalfrag/pipeline.hpp"
#include "scalfrag/tucker.hpp"
#include "tensor/generator.hpp"
#include "tensor/mttkrp_par.hpp"

namespace scalfrag {
namespace {

const gpusim::DeviceSpec kSpec = gpusim::DeviceSpec::rtx3090();

FactorList random_factors(const CooTensor& t, index_t rank,
                          std::uint64_t seed) {
  Rng rng(seed);
  FactorList f;
  for (order_t m = 0; m < t.order(); ++m) {
    DenseMatrix a(t.dim(m), rank);
    a.randomize(rng);
    f.push_back(std::move(a));
  }
  return f;
}

TEST(ExecConfig, BuildersMapOntoFields) {
  obs::MetricsRegistry met;
  const gpusim::LaunchConfig lc{64, 256, 0};
  const ExecConfig cfg = ExecConfig{}
                             .devices(4)
                             .reduction(gpusim::ReduceSchedule::Ring)
                             .peer_link(gpusim::LinkSpec::nvlink_bridge())
                             .segments(6)
                             .streams(3)
                             .shared_mem(false)
                             .adaptive(false)
                             .launch(lc)
                             .hybrid_threshold(0)
                             .threads(2)
                             .grain(128)
                             .strategy(HostStrategy::PrivateReduce)
                             .metrics(&met);
  EXPECT_EQ(cfg.num_devices, 4);
  ASSERT_TRUE(cfg.reduce_schedule.has_value());
  EXPECT_EQ(*cfg.reduce_schedule, gpusim::ReduceSchedule::Ring);
  EXPECT_EQ(cfg.link.name, "nvlink-bridge");
  EXPECT_EQ(cfg.num_segments, 6);
  EXPECT_EQ(cfg.num_streams, 3);
  EXPECT_FALSE(cfg.use_shared_mem);
  EXPECT_FALSE(cfg.adaptive_launch);
  ASSERT_TRUE(cfg.launch_override.has_value());
  EXPECT_EQ(cfg.launch_override->grid, lc.grid);
  EXPECT_EQ(cfg.hybrid_cpu_threshold, 0u);
  EXPECT_EQ(cfg.host_exec.threads, 2u);
  EXPECT_EQ(cfg.host_exec.grain_nnz, 128u);
  EXPECT_EQ(cfg.host_exec.strategy, HostStrategy::PrivateReduce);
  EXPECT_EQ(cfg.metrics_sink, &met);
  cfg.validate();
  EXPECT_EQ(ExecConfig{}.segments(5).segments_auto().num_segments, 0);
}

TEST(ExecConfig, ValidateRejectsInconsistentSettings) {
  EXPECT_THROW(ExecConfig{}.devices(0).validate(), Error);
  EXPECT_THROW(ExecConfig{}.streams(0).validate(), Error);
  EXPECT_THROW(ExecConfig{}.segments(-1).validate(), Error);
  // The CPU hybrid split is single-device only.
  EXPECT_THROW(ExecConfig{}.devices(2).hybrid_threshold(100).validate(),
               Error);
  ExecConfig{}.devices(2).validate();
  ExecConfig{}.hybrid_threshold(100).validate();
}

TEST(ExecConfig, HostForRunDefaultsTheMetricsSink) {
  obs::MetricsRegistry met;
  ExecConfig cfg = ExecConfig{}.metrics(&met);
  EXPECT_EQ(cfg.host_for_run().metrics, &met);
  // An explicit engine-level sink wins over the driver-level one.
  obs::MetricsRegistry inner;
  cfg.host_exec.metrics = &inner;
  EXPECT_EQ(cfg.host_for_run().metrics, &inner);
  EXPECT_EQ(ExecConfig{}.host_for_run().metrics, nullptr);
}

// The whole point of the shims: legacy code paths must produce the
// exact same execution, not an approximation. The simulator is
// deterministic, so "same config" means bit-identical outputs and
// identical simulated timelines.
TEST(ExecConfig, LegacyPipelineOptionsShimIsBitIdentical) {
  CooTensor t = make_frostt_tensor("nips", 1.0 / 1024, 701);
  t.sort_by_mode(0);
  const auto f = random_factors(t, 16, 702);

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  PipelineOptions legacy;
  legacy.num_segments = 3;
  legacy.num_streams = 2;
  legacy.use_shared_mem = false;
  legacy.hybrid_cpu_threshold = 16;
  legacy.host_exec.grain_nnz = 64;
  const ExecConfig converted = legacy;
#pragma GCC diagnostic pop

  const ExecConfig direct = ExecConfig{}
                                .segments(3)
                                .streams(2)
                                .shared_mem(false)
                                .hybrid_threshold(16)
                                .grain(64);

  gpusim::SimDevice dev(kSpec);
  const auto a = run_pipeline(dev, t, f, 0, converted);
  const auto b = run_pipeline(dev, t, f, 0, direct);
  ASSERT_EQ(a.output.size(), b.output.size());
  EXPECT_EQ(std::memcmp(a.output.data(), b.output.data(),
                        a.output.size() * sizeof(value_t)),
            0);
  EXPECT_EQ(a.total_ns, b.total_ns);
  EXPECT_EQ(a.launches.size(), b.launches.size());
  EXPECT_EQ(a.cpu_nnz, b.cpu_nnz);
}

TEST(ExecConfig, LegacyHostExecOptionsAliasIsTheSameType) {
  CooTensor t = make_frostt_tensor("uber", 1.0 / 2048, 703);
  t.sort_by_mode(0);
  const auto f = random_factors(t, 8, 704);

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  HostExecOptions legacy;
  legacy.strategy = HostStrategy::Serial;
  static_assert(std::is_same_v<HostExecOptions, HostExecParams>);
#pragma GCC diagnostic pop
  HostExecParams params;
  params.strategy = HostStrategy::Serial;

  const DenseMatrix a = mttkrp_coo_par(CooSpan(t), f, 0, legacy);
  const DenseMatrix b = mttkrp_coo_par(CooSpan(t), f, 0, params);
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(value_t)), 0);
}

// CpdOptions is now a pure conversion shim: driving cpd_als through
// the legacy struct and through the equivalent ExecConfig builders
// must be the same run, bit for bit (factors, weights, fit, timeline).
TEST(ExecConfig, LegacyCpdOptionsShimIsBitIdentical) {
  const CooTensor x = make_frostt_tensor("nips", 1.0 / 2048, 706);
  gpusim::SimDevice dev(kSpec);

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  CpdOptions legacy;
  legacy.rank = 6;
  legacy.max_iters = 4;
  legacy.tol = 0.0;  // legacy "run every iteration" spelling
  legacy.seed = 9;
  legacy.backend = CpdBackend::ScalFrag;
  legacy.nonnegative = true;
  const ExecConfig converted = legacy;
#pragma GCC diagnostic pop

  const ExecConfig direct = ExecConfig{}
                                .backend("coo")
                                .rank(6)
                                .max_iters(4)
                                .tol(0.0)
                                .seed(9)
                                .nonneg();

  gpusim::SimDevice dev2(kSpec);
  const CpdResult a = cpd_als(x, converted, &dev);
  const CpdResult b = cpd_als(x, direct, &dev2);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.iterations, 4);  // tol 0 disables the early stop
  EXPECT_EQ(a.mttkrp_sim_ns, b.mttkrp_sim_ns);
  EXPECT_DOUBLE_EQ(a.final_fit, b.final_fit);
  ASSERT_EQ(a.factors.size(), b.factors.size());
  for (std::size_t m = 0; m < a.factors.size(); ++m) {
    EXPECT_EQ(std::memcmp(a.factors[m].data(), b.factors[m].data(),
                          a.factors[m].size() * sizeof(value_t)),
              0)
        << "factor " << m;
  }
  EXPECT_EQ(a.lambda, b.lambda);

  // Unset decomposition knobs resolve to the legacy defaults, so a
  // default-constructed ExecConfig reproduces a default CpdOptions run.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const ExecConfig legacy_defaults = CpdOptions{};
#pragma GCC diagnostic pop
  EXPECT_EQ(legacy_defaults.decomp_seed, 5u);
  EXPECT_DOUBLE_EQ(legacy_defaults.decomp_tol, 1e-4);
}

TEST(ExecConfig, LegacyTuckerOptionsShimIsBitIdentical) {
  const CooTensor x = make_frostt_tensor("uber", 1.0 / 2048, 707);

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  TuckerOptions legacy;
  legacy.core_dims = {2, 2, 2, 2};
  legacy.max_iters = 3;
  legacy.tol = 0.0;
  legacy.seed = 13;
  const ExecConfig converted = legacy;
#pragma GCC diagnostic pop

  const ExecConfig direct =
      ExecConfig{}.core_dims({2, 2, 2, 2}).max_iters(3).tol(0.0).seed(13);

  const TuckerResult a = tucker_hooi(x, converted);
  const TuckerResult b = tucker_hooi(x, direct);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_DOUBLE_EQ(a.final_fit, b.final_fit);
  ASSERT_EQ(a.factors.size(), b.factors.size());
  for (std::size_t m = 0; m < a.factors.size(); ++m) {
    EXPECT_EQ(std::memcmp(a.factors[m].data(), b.factors[m].data(),
                          a.factors[m].size() * sizeof(value_t)),
              0)
        << "factor " << m;
  }
  EXPECT_EQ(std::memcmp(a.core.data(), b.core.data(),
                        a.core.size() * sizeof(value_t)),
            0);
}

TEST(ExecConfig, CpdDriverShardsWhenDevicesExceedOne) {
  const CooTensor x = make_frostt_tensor("vast", 1.0 / 2048, 705);
  gpusim::SimDevice dev(kSpec);
  obs::MetricsRegistry met;

  const auto base_cfg = ExecConfig{}.backend("coo").rank(8).max_iters(3);
  const CpdResult multi =
      cpd_als(x, ExecConfig{base_cfg}.devices(2).metrics(&met), &dev);
  const CpdResult base = cpd_als(x, base_cfg, &dev);

  // Same ALS math, reassociated reduction: fits agree tightly.
  EXPECT_NEAR(multi.final_fit, base.final_fit, 1e-3);
  EXPECT_GT(multi.mttkrp_sim_ns, 0u);
  EXPECT_GE(met.counter("multidev/runs"),
            static_cast<std::uint64_t>(multi.mttkrp_calls));
}

}  // namespace
}  // namespace scalfrag
