// External merge sort tests (suite ExternalSort): windowed spill +
// k-way merge reproduces sort_by_mode bit-for-bit, chunks cut only on
// slice boundaries, fan-in overflow triggers extra merge passes, and a
// spill run deleted between write and merge is a typed error with no
// partial output.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "obs/metrics.hpp"
#include "tensor/external_sort.hpp"
#include "tensor/generator.hpp"

namespace scalfrag {
namespace {

namespace fs = std::filesystem;

CooTensor test_tensor(std::uint64_t seed, nnz_t nnz = 4000) {
  GeneratorConfig g{.dims = {32, 48, 24},
                    .nnz = nnz,
                    .skew = {1.4, 1.0, 1.1},
                    .seed = seed};
  return generate_coo(g);
}

/// Feed `t` to the sorter as `windows` interleaved slabs (so no window
/// is presorted relative to the others), then merge into chunks.
std::vector<CooTensor> sort_in_windows(ExternalSorter& sorter,
                                       const CooTensor& t,
                                       std::size_t windows,
                                       std::size_t chunk_bytes) {
  const nnz_t per = (t.nnz() + windows - 1) / windows;
  // Reverse window order: window 0 gets the highest entry range, so a
  // merge that just concatenated runs would be badly unsorted.
  for (std::size_t w = windows; w-- > 0;) {
    const nnz_t begin = std::min<nnz_t>(w * per, t.nnz());
    const nnz_t end = std::min<nnz_t>(begin + per, t.nnz());
    if (begin < end) sorter.add_window(t.extract(begin, end));
  }
  std::vector<CooTensor> chunks;
  sorter.merge(t.dims(), chunk_bytes,
               [&](CooTensor&& c) { chunks.push_back(std::move(c)); });
  return chunks;
}

CooTensor concat(const std::vector<CooTensor>& chunks,
                 const std::vector<index_t>& dims) {
  CooTensor all(dims);
  std::vector<index_t> c(dims.size());
  for (const CooTensor& p : chunks) {
    for (nnz_t e = 0; e < p.nnz(); ++e) {
      for (order_t m = 0; m < p.order(); ++m) c[m] = p.index(m, e);
      all.push(std::span<const index_t>(c.data(), c.size()), p.value(e));
    }
  }
  return all;
}

void expect_equals_mode_sort(const std::vector<CooTensor>& chunks,
                             const CooTensor& t, order_t mode) {
  CooTensor want = t;
  want.sort_by_mode(mode);
  const CooTensor got = concat(chunks, t.dims());
  ASSERT_EQ(got.nnz(), want.nnz());
  for (order_t m = 0; m < t.order(); ++m) {
    EXPECT_EQ(got.mode_indices(m), want.mode_indices(m))
        << "mode " << static_cast<int>(m);
  }
  // Spill runs are full-precision .tns text: the values must survive
  // the round trip BIT-exactly, so memcmp, not tolerance.
  EXPECT_EQ(std::memcmp(got.values().data(), want.values().data(),
                        want.nnz() * sizeof(value_t)),
            0);
}

TEST(ExternalSort, MergeReproducesModeSortBitExactly) {
  const CooTensor t = test_tensor(901);
  for (order_t mode = 0; mode < t.order(); ++mode) {
    ExternalSortOptions opt;
    opt.mode = mode;
    ExternalSorter sorter(opt);
    const auto chunks = sort_in_windows(sorter, t, 5, 1 << 13);
    EXPECT_GT(chunks.size(), 1u);
    EXPECT_EQ(sorter.entries(), t.nnz());
    expect_equals_mode_sort(chunks, t, mode);
  }
}

TEST(ExternalSort, ChunksCutOnlyOnSliceBoundaries) {
  const CooTensor t = test_tensor(902);
  const order_t mode = 1;
  ExternalSortOptions opt;
  opt.mode = mode;
  ExternalSorter sorter(opt);
  const auto chunks = sort_in_windows(sorter, t, 4, 1 << 12);
  ASSERT_GT(chunks.size(), 2u);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    const CooTensor& prev = chunks[i - 1];
    const CooTensor& cur = chunks[i];
    ASSERT_GT(prev.nnz(), 0u);
    ASSERT_GT(cur.nnz(), 0u);
    // A mode slice never straddles two chunks.
    EXPECT_NE(prev.index(mode, prev.nnz() - 1), cur.index(mode, 0));
  }
}

TEST(ExternalSort, FanInOverflowAddsMergePasses) {
  const CooTensor t = test_tensor(903);
  obs::MetricsRegistry met;
  ExternalSortOptions opt;
  opt.mode = 0;
  opt.max_open_runs = 2;
  opt.metrics = &met;
  ExternalSorter sorter(opt);
  const auto chunks = sort_in_windows(sorter, t, 6, 1 << 13);
  // 6 runs at fan-in 2 need intermediate folds before the final pass.
  EXPECT_GT(sorter.merge_passes(), 1u);
  EXPECT_EQ(met.counter(kMergePassesCounter), sorter.merge_passes());
  expect_equals_mode_sort(chunks, t, 0);
}

TEST(ExternalSort, RecordsSpillMetrics) {
  const CooTensor t = test_tensor(904, 1000);
  obs::MetricsRegistry met;
  ExternalSortOptions opt;
  opt.mode = 0;
  opt.metrics = &met;
  ExternalSorter sorter(opt);
  const auto chunks = sort_in_windows(sorter, t, 3, 1 << 20);
  EXPECT_EQ(met.counter(kSpillRunsCounter), 3u);
  EXPECT_GT(sorter.spill_bytes(), 0u);
  EXPECT_EQ(met.counter(kSpillBytesCounter), sorter.spill_bytes());
  EXPECT_GE(chunks.size(), 1u);
}

TEST(ExternalSort, DeletedSpillRunIsTypedErrorWithNoPartialOutput) {
  const CooTensor t = test_tensor(905, 600);
  const std::string dir = ::testing::TempDir() + "scalfrag_xsort_del";
  fs::create_directories(dir);
  ExternalSortOptions opt;
  opt.mode = 0;
  opt.temp_dir = dir;
  ExternalSorter sorter(opt);
  sorter.add_window(t.extract(0, t.nnz() / 2));
  sorter.add_window(t.extract(t.nnz() / 2, t.nnz()));
  ASSERT_EQ(sorter.runs(), 2u);

  // Simulate the spill directory being swept between write and merge.
  bool removed = false;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (e.path().filename() == "run-0.tns") {
      fs::remove(e.path());
      removed = true;
    }
  }
  ASSERT_TRUE(removed);

  std::size_t delivered = 0;
  EXPECT_THROW(sorter.merge(t.dims(), 1 << 20,
                            [&](CooTensor&&) { ++delivered; }),
               Error);
  // Typed error, no partial output: the merge opens every run before
  // it emits anything.
  EXPECT_EQ(delivered, 0u);
  fs::remove_all(dir);
}

TEST(ExternalSort, TempFilesAreRemovedAfterMerge) {
  const CooTensor t = test_tensor(906, 500);
  const std::string dir = ::testing::TempDir() + "scalfrag_xsort_tmp";
  fs::create_directories(dir);
  {
    ExternalSortOptions opt;
    opt.mode = 0;
    opt.temp_dir = dir;
    ExternalSorter sorter(opt);
    sort_in_windows(sorter, t, 3, 1 << 20);
  }
  // Destructor + merge cleanup: nothing of ours is left behind.
  std::size_t residue = 0;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    (void)e;
    ++residue;
  }
  EXPECT_EQ(residue, 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace scalfrag
